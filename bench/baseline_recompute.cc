// Ablation A4: the recompute-from-scratch strawman (paper Section 1)
// against Algorithm 1 at the same total budget.
//
// Two comparisons:
//  1. per-release histogram error — similar noise scale (both pay the
//     T-k+1 composition), so recompute is NOT saved by accuracy;
//  2. longitudinal consistency — the fraction of synthetic mass that
//     "teleports" between releases. Algorithm 1's cohort is persistent
//     (zero teleport by construction); the baseline redraws everyone, so
//     individual-level trend queries (e.g. "ever had a full quarter in
//     poverty") are unanswerable from its releases.
//
// Flags: --reps=N (default 200) --rho=R --n=N
#include "bench_common.h"
#include "core/recompute_baseline.h"

namespace longdp {
namespace bench {
namespace {

Status Run(const harness::Flags& flags, harness::BenchReport* report) {
  const int64_t reps = flags.Reps(200);
  const double rho = flags.GetDouble("rho", 0.005);
  LONGDP_ASSIGN_OR_RETURN(auto ds, MakeSippDataset(flags));
  const int64_t T = ds.rounds();
  const int k = 3;

  report->set_description(
      "A4: recompute-from-scratch baseline vs Algorithm 1");
  report->SetParam("n", ds.num_users());
  report->SetParam("T", T);
  report->SetParam("k", k);
  report->SetParam("rho", rho);
  report->SetParam("reps", reps);

  std::cout << "== A4: recompute-from-scratch baseline vs Algorithm 1 ==\n"
            << "SIPP-like data, n=" << ds.num_users() << " T=" << T
            << " k=" << k << " rho=" << rho << " reps=" << reps << "\n\n";

  // Max per-bin |noisy - true| (padding-corrected for Alg 1) across the run,
  // and the "ever in poverty all quarter" trend series feasibility.
  std::vector<double> alg1_errors(static_cast<size_t>(reps), 0.0);
  std::vector<double> base_errors(static_cast<size_t>(reps), 0.0);
  std::vector<double> alg1_ever(static_cast<size_t>(reps), 0.0);

  LONGDP_RETURN_NOT_OK(harness::RunRepetitions(
      reps, kRunSeed + 400, [&](int64_t rep, uint64_t rep_seed) {
        core::FixedWindowSynthesizer::Options fopt;
        fopt.horizon = T;
        fopt.window_k = k;
        fopt.rho = rho;
        fopt.seed = rep_seed;
        LONGDP_ASSIGN_OR_RETURN(auto alg1,
                                core::FixedWindowSynthesizer::Create(fopt));
        core::RecomputeBaseline::Options bopt;
        bopt.horizon = T;
        bopt.window_k = k;
        bopt.rho = rho;
        bopt.seed = rep_seed ^ 0x5DEECE66DULL;
        LONGDP_ASSIGN_OR_RETURN(auto baseline,
                                core::RecomputeBaseline::Create(bopt));
        double alg1_max = 0.0, base_max = 0.0;
        for (int64_t t = 1; t <= T; ++t) {
          LONGDP_RETURN_NOT_OK(alg1->ObserveRound(ds.Round(t)));
          LONGDP_RETURN_NOT_OK(baseline->ObserveRound(ds.Round(t)));
          if (t < k) continue;
          LONGDP_ASSIGN_OR_RETURN(auto truth, ds.WindowHistogram(t, k));
          auto ahist = alg1->SyntheticHistogram();
          const auto& bhist = baseline->CurrentHistogram();
          for (size_t s = 0; s < truth.size(); ++s) {
            alg1_max = std::max(
                alg1_max, std::fabs(static_cast<double>(
                              ahist[s] - (truth[s] + alg1->npad()))));
            base_max = std::max(base_max,
                                std::fabs(static_cast<double>(
                                    bhist[s] - truth[s])));
          }
        }
        alg1_errors[static_cast<size_t>(rep)] = alg1_max;
        base_errors[static_cast<size_t>(rep)] = base_max;

        // Longitudinal trend query only Algorithm 1 supports: fraction of
        // synthetic individuals who EVER had a full-poverty quarter window.
        const auto& cohort = alg1->cohort();
        int64_t ever = 0;
        for (int64_t r = 0; r < cohort.num_records(); ++r) {
          int run = 0;
          bool hit = false;
          for (int64_t tt = 1; tt <= cohort.rounds(); ++tt) {
            run = cohort.Bit(r, tt) ? run + 1 : 0;
            if (run >= k) hit = true;
          }
          if (hit) ++ever;
        }
        alg1_ever[static_cast<size_t>(rep)] =
            static_cast<double>(ever) /
            static_cast<double>(cohort.num_records());
        return Status::OK();
      }));

  // Ground truth for the "ever" query.
  int64_t true_ever = 0;
  for (int64_t i = 0; i < ds.num_users(); ++i) {
    int run = 0;
    bool hit = false;
    for (int64_t t = 1; t <= T; ++t) {
      run = ds.Bit(i, t) ? run + 1 : 0;
      if (run >= k) hit = true;
    }
    if (hit) ++true_ever;
  }
  double true_ever_frac =
      static_cast<double>(true_ever) / static_cast<double>(ds.num_users());

  harness::Table table({"metric", "algorithm1", "recompute-baseline"});
  auto a = harness::Summarize(alg1_errors);
  auto b = harness::Summarize(base_errors);
  LONGDP_RETURN_NOT_OK(table.AddRow({"median max bin error",
                                     harness::Table::Val(a.median, 1),
                                     harness::Table::Val(b.median, 1)}));
  LONGDP_RETURN_NOT_OK(table.AddRow({"q97.5 max bin error",
                                     harness::Table::Val(a.q975, 1),
                                     harness::Table::Val(b.q975, 1)}));
  auto e = harness::Summarize(alg1_ever);
  LONGDP_RETURN_NOT_OK(
      table.AddRow({"'ever full-poverty-quarter' answerable?", "yes",
                    "no (records redrawn each release)"}));
  LONGDP_RETURN_NOT_OK(table.AddRow(
      {"  mean answer (truth=" + harness::Table::Num(true_ever_frac, 4) +
           ")",
       harness::Table::Val(e.mean, 4), "-"}));
  auto& err_series = report->AddSeries("max_bin_error");
  err_series.AddRow().Label("algorithm", "algorithm1").Summary(a);
  err_series.AddRow().Label("algorithm", "recompute-baseline").Summary(b);
  report->AddSeries("ever_full_quarter")
      .AddRow()
      .Label("algorithm", "algorithm1")
      .Value("truth", true_ever_frac)
      .Summary(e);
  table.Print(std::cout);
  std::cout << "\nBoth pay the same sqrt(T-k+1) composition noise; the "
               "baseline additionally\nforfeits every cross-release "
               "longitudinal statistic.\n";
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::Run(flags, &report);
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
