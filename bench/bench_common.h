// Shared experiment drivers for the figure benches. Each paper figure has
// its own thin binary (bench/figN_*.cc) that calls one of these drivers
// with the figure's parameters; the ablation benches reuse them too.
//
// All drivers:
//   * build the SIPP-like (or simulated) dataset once from a fixed seed and
//     treat it as ground truth, exactly as the paper treats its SIPP sample;
//   * run `reps` independent synthesizer executions in parallel;
//   * print the figure's series as an aligned table (ground truth, mean,
//     median, 2.5/97.5 percentiles of the DP estimates) and optionally CSV;
//   * populate a harness::BenchReport with the same series at full double
//     precision, written as JSON when --json[=PATH] is passed (default
//     path BENCH_<binary>.json) for the stored-baseline diff workflow
//     (tools/bench_diff).

#ifndef LONGDP_BENCH_BENCH_COMMON_H_
#define LONGDP_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "core/theory.h"
#include "data/generators.h"
#include "data/sipp_csv.h"
#include "data/sipp_simulator.h"
#include "harness/aggregate.h"
#include "harness/flags.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "query/cumulative_query.h"
#include "query/window_query.h"
#include "util/json.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace longdp {
namespace bench {

inline constexpr uint64_t kDatasetSeed = 20240512;  // fixed ground truth
inline constexpr uint64_t kRunSeed = 1234567;
inline constexpr uint64_t kObserveSeed = 0x0B5E22E5EED;  // observe phases

/// Hot-path timing phases, recorded into the report's per-phase wall-clock
/// (the accuracy series are untouched, so bench_diff against a stored
/// baseline still gates on statistics only). Each phase runs
/// `--observe_reps` (default 20) full continual releases on the bench's own
/// dataset, timing nothing but synthesizer construction and the
/// ObserveRound loop — the number a hot-path PR must move:
///
///   "observe_cumulative"  CumulativeSynthesizer over the full horizon
///   "observe_window"      FixedWindowSynthesizer (when window_k > 0)
///
/// One synthesizer at a time on purpose: the "repetitions" phase fans out
/// across cores, so its wall-clock measures the machine as much as the
/// code. `--threads=P` bounds the bench's total thread usage: it caps the
/// repetitions fan-out (absent flag = hardware concurrency, as before) AND
/// runs the RNG-free stage-1 shards of each observe call here on a P-lane
/// util::ThreadPool (default 1 = serial, recorded in params). The released
/// statistics are bit-identical at every P, so a baseline diff passes at
/// any thread count and the phase timing isolates the sharding speedup.
inline Status TimeObservePhases(const harness::Flags& flags,
                                harness::BenchReport* report,
                                const data::LongitudinalDataset& ds,
                                int64_t horizon, double rho, int window_k) {
  const int64_t observe_reps = flags.GetInt("observe_reps", 20);
  if (observe_reps <= 0) return Status::OK();
  report->SetParam("observe_reps", observe_reps);
  const int64_t threads = flags.Threads(1);
  report->SetParam("threads", threads);
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<util::ThreadPool>(static_cast<int>(threads));
  }
  {
    harness::BenchReport::PhaseTimer timer(report, "observe_cumulative");
    for (int64_t rep = 0; rep < observe_reps; ++rep) {
      core::CumulativeSynthesizer::Options opt;
      opt.horizon = horizon;
      opt.rho = rho;
      opt.seed = kObserveSeed + static_cast<uint64_t>(rep);
      opt.pool = pool.get();
      LONGDP_ASSIGN_OR_RETURN(auto synth,
                              core::CumulativeSynthesizer::Create(opt));
      for (int64_t t = 1; t <= horizon; ++t) {
        LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
      }
    }
  }
  if (window_k > 0) {
    harness::BenchReport::PhaseTimer timer(report, "observe_window");
    for (int64_t rep = 0; rep < observe_reps; ++rep) {
      core::FixedWindowSynthesizer::Options opt;
      opt.horizon = horizon;
      opt.window_k = window_k;
      opt.rho = rho;
      opt.seed = kObserveSeed + 0x100 + static_cast<uint64_t>(rep);
      opt.pool = pool.get();
      LONGDP_ASSIGN_OR_RETURN(auto synth,
                              core::FixedWindowSynthesizer::Create(opt));
      for (int64_t t = 1; t <= horizon; ++t) {
        LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
      }
    }
  }
  return Status::OK();
}

/// Resolves the --json flag: "" when absent, the given path when
/// --json=PATH, and BENCH_<binary>.json when passed bare.
inline std::string JsonOutputPath(const harness::Flags& flags) {
  if (!flags.Has("json")) return "";
  std::string v = flags.GetString("json", "");
  if (v.empty() || v == "1") {
    const std::string& name = flags.program_name();
    return "BENCH_" + (name.empty() ? std::string("bench") : name) + ".json";
  }
  return v;
}

/// Builds the report every bench main hands to its driver: named after the
/// binary, with the raw command line recorded.
inline harness::BenchReport MakeReport(const harness::Flags& flags) {
  const std::string& name = flags.program_name();
  harness::BenchReport report(name.empty() ? std::string("bench") : name);
  report.RecordFlags(flags);
  return report;
}

/// Prints a status and converts to a process exit code.
inline int ExitWith(const Status& status) {
  if (!status.ok()) {
    std::cerr << "bench failed: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

/// Writes the report when --json was requested, then exits with `st`.
inline int FinishAndExit(const harness::Flags& flags,
                         const harness::BenchReport& report, Status st) {
  if (st.ok()) {
    std::string path = JsonOutputPath(flags);
    if (!path.empty()) {
      st = report.WriteJson(path);
      if (st.ok()) std::cout << "# wrote JSON report to " << path << "\n";
    }
  }
  return ExitWith(st);
}

/// Loads the real SIPP extract if --sipp_csv=... is given, otherwise
/// simulates the calibrated SIPP-like panel (DESIGN.md substitution).
inline Result<data::LongitudinalDataset> MakeSippDataset(
    const harness::Flags& flags) {
  std::string path = flags.GetString("sipp_csv", "");
  if (!path.empty()) {
    std::cout << "# loading real SIPP extract from " << path << "\n";
    return data::LoadSippBitsCsv(path);
  }
  data::SippOptions opt;
  opt.num_households = flags.GetInt("n", opt.num_households);
  return data::SimulateSipp(opt, kDatasetSeed);
}

/// The four quarterly poverty queries of Figure 1 (window k = 3).
inline std::vector<query::WindowPredicatePtr> QuarterlyPredicates() {
  return {
      query::MakeAtLeastOnes(3, 1),      // >= 1 month of the quarter
      query::MakeAtLeastOnes(3, 2),      // >= 2 months
      query::MakeConsecutiveOnes(3, 2),  // >= 2 consecutive months
      query::MakeAllOnes(3),             // all three months
  };
}

inline const char* QuarterlyPredicateLabel(size_t i) {
  static const char* kLabels[] = {">=1 month", ">=2 months", ">=2 consec",
                                  "all 3 months"};
  return kLabels[i];
}

/// Runs the paper's SIPP quarterly experiment (Figures 1, 5, 6, 7): window
/// k = 3, queries evaluated at quarter ends t = 3, 6, 9, 12, `reps`
/// repetitions. Prints the biased ("Synthetic Data Results") and/or
/// debiased panels.
inline Status RunSippQuarterly(const harness::Flags& flags,
                               harness::BenchReport* report, double rho,
                               bool print_biased, bool print_debiased,
                               const std::string& figure_label) {
  const int64_t reps = flags.Reps(1000);
  LONGDP_ASSIGN_OR_RETURN(auto ds, MakeSippDataset(flags));
  const auto preds = QuarterlyPredicates();
  const std::vector<int64_t> quarter_ends = {3, 6, 9, 12};

  report->set_description(figure_label);
  report->SetParam("n", ds.num_users());
  report->SetParam("T", static_cast<int64_t>(12));
  report->SetParam("k", static_cast<int64_t>(3));
  report->SetParam("rho", rho);
  report->SetParam("reps", reps);

  std::cout << "== " << figure_label << " ==\n"
            << "SIPP quarterly poverty, n=" << ds.num_users()
            << " T=12 k=3 rho=" << rho << " reps=" << reps << "\n\n";

  // samples[panel][pred][quarter][rep]; panel 0 = biased, 1 = debiased.
  auto make_store = [&]() {
    return std::vector<std::vector<std::vector<double>>>(
        preds.size(), std::vector<std::vector<double>>(
                          quarter_ends.size(),
                          std::vector<double>(static_cast<size_t>(reps))));
  };
  auto biased = make_store();
  auto debiased = make_store();

  {
    harness::BenchReport::PhaseTimer timer(report, "repetitions");
    LONGDP_RETURN_NOT_OK(harness::RunRepetitions(
        reps, kRunSeed, [&](int64_t rep, uint64_t rep_seed) {
          core::FixedWindowSynthesizer::Options opt;
          opt.horizon = 12;
          opt.window_k = 3;
          opt.rho = rho;
          opt.seed = rep_seed;
          LONGDP_ASSIGN_OR_RETURN(auto synth,
                                  core::FixedWindowSynthesizer::Create(opt));
          size_t quarter = 0;
          for (int64_t t = 1; t <= 12; ++t) {
            LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
            if (quarter < quarter_ends.size() && t == quarter_ends[quarter]) {
              for (size_t p = 0; p < preds.size(); ++p) {
                LONGDP_ASSIGN_OR_RETURN(
                    double b, synth->BiasedAnswer(*preds[p]));
                LONGDP_ASSIGN_OR_RETURN(
                    double d, synth->DebiasedAnswer(*preds[p]));
                biased[p][quarter][static_cast<size_t>(rep)] = b;
                debiased[p][quarter][static_cast<size_t>(rep)] = d;
              }
              ++quarter;
            }
          }
          return Status::OK();
        },
        static_cast<int>(flags.Threads(0))));
  }

  auto print_panel =
      [&](const char* title,
          const std::vector<std::vector<std::vector<double>>>& samples,
          const std::string& series_name) -> Status {
    std::cout << "-- " << title << " --\n";
    harness::Table table({"query", "quarter", "truth", "mean", "median",
                          "q2.5", "q97.5"});
    auto& series = report->AddSeries(series_name);
    for (size_t p = 0; p < preds.size(); ++p) {
      for (size_t q = 0; q < quarter_ends.size(); ++q) {
        LONGDP_ASSIGN_OR_RETURN(
            double truth,
            query::EvaluateOnDataset(*preds[p], ds, quarter_ends[q]));
        auto s = harness::Summarize(samples[p][q]);
        LONGDP_RETURN_NOT_OK(table.AddRow(
            {QuarterlyPredicateLabel(p), std::to_string(q + 1),
             harness::Table::Val(truth), harness::Table::Val(s.mean),
             harness::Table::Val(s.median), harness::Table::Val(s.q025),
             harness::Table::Val(s.q975)}));
        series.AddRow()
            .Label("query", QuarterlyPredicateLabel(p))
            .Label("quarter", std::to_string(q + 1))
            .Value("truth", truth)
            .Summary(s);
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
    std::string csv = flags.GetString("csv", "");
    if (!csv.empty()) {
      LONGDP_RETURN_NOT_OK(table.WriteCsv(csv + "." + series_name + ".csv"));
    }
    return Status::OK();
  };

  if (print_biased) {
    LONGDP_RETURN_NOT_OK(print_panel(
        "Synthetic Data Results (biased, count/n*)", biased, "biased"));
  }
  if (print_debiased) {
    LONGDP_RETURN_NOT_OK(print_panel(
        "Debiased Results (padding subtracted, /n)", debiased, "debiased"));
  }
  return TimeObservePhases(flags, report, ds, /*horizon=*/12, rho,
                           /*window_k=*/3);
}

/// Runs the paper's SIPP cumulative experiment (Figures 2 and 8): fraction
/// of households in poverty for at least b = 3 months by month t = 1..12.
inline Status RunSippCumulative(const harness::Flags& flags,
                                harness::BenchReport* report, double rho,
                                const std::string& figure_label) {
  const int64_t reps = flags.Reps(1000);
  const int64_t b = flags.GetInt("b", 3);
  LONGDP_ASSIGN_OR_RETURN(auto ds, MakeSippDataset(flags));
  const int64_t T = 12;

  report->set_description(figure_label);
  report->SetParam("n", ds.num_users());
  report->SetParam("T", T);
  report->SetParam("b", b);
  report->SetParam("rho", rho);
  report->SetParam("reps", reps);

  std::cout << "== " << figure_label << " ==\n"
            << "SIPP cumulative poverty (>= " << b << " months), n="
            << ds.num_users() << " T=12 rho=" << rho << " reps=" << reps
            << "\n\n";

  std::vector<std::vector<double>> samples(
      static_cast<size_t>(T),
      std::vector<double>(static_cast<size_t>(reps)));
  {
    harness::BenchReport::PhaseTimer timer(report, "repetitions");
    LONGDP_RETURN_NOT_OK(harness::RunRepetitions(
        reps, kRunSeed + 1, [&](int64_t rep, uint64_t rep_seed) {
          core::CumulativeSynthesizer::Options opt;
          opt.horizon = T;
          opt.rho = rho;
          opt.seed = rep_seed;
          LONGDP_ASSIGN_OR_RETURN(auto synth,
                                  core::CumulativeSynthesizer::Create(opt));
          for (int64_t t = 1; t <= T; ++t) {
            LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
            LONGDP_ASSIGN_OR_RETURN(
                samples[static_cast<size_t>(t - 1)][static_cast<size_t>(rep)],
                synth->Answer(b));
          }
          return Status::OK();
        },
        static_cast<int>(flags.Threads(0))));
  }

  harness::Table table(
      {"month", "truth", "mean", "median", "q2.5", "q97.5"});
  auto& series = report->AddSeries("cumulative");
  for (int64_t t = 1; t <= T; ++t) {
    LONGDP_ASSIGN_OR_RETURN(double truth,
                            query::EvaluateCumulativeOnDataset(ds, t, b));
    auto s = harness::Summarize(samples[static_cast<size_t>(t - 1)]);
    LONGDP_RETURN_NOT_OK(table.AddRow(
        {std::to_string(t), harness::Table::Val(truth),
         harness::Table::Val(s.mean), harness::Table::Val(s.median),
         harness::Table::Val(s.q025), harness::Table::Val(s.q975)}));
    series.AddRow()
        .Label("month", std::to_string(t))
        .Value("truth", truth)
        .Summary(s);
  }
  table.Print(std::cout);
  std::cout << "\n";
  std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    LONGDP_RETURN_NOT_OK(table.WriteCsv(csv + ".csv"));
  }
  return TimeObservePhases(flags, report, ds, T, rho, /*window_k=*/0);
}

/// Runs the simulated-data error experiment of Figures 3-4: all-ones data,
/// n = 25000, T = 12, synthesizer k = 3, queries of width 3 / 2 / 4
/// ("matching", "smaller", "larger"), per-timestep |error| percentiles
/// against the theoretical bound. `debias` selects Figure 3 vs Figure 4.
inline Status RunSimulatedError(const harness::Flags& flags,
                                harness::BenchReport* report, bool debias,
                                const std::string& figure_label) {
  const int64_t reps = flags.Reps(1000);
  const int64_t n = flags.GetInt("n", 25000);
  const int64_t T = flags.GetInt("T", 12);
  const int synth_k = static_cast<int>(flags.GetInt("k", 3));
  const double rho = flags.GetDouble("rho", 0.005);
  const double beta = 0.05;

  LONGDP_ASSIGN_OR_RETURN(auto ds, data::ExtremeAllOnes(n, T));

  report->set_description(figure_label);
  report->SetParam("n", n);
  report->SetParam("T", T);
  report->SetParam("k", static_cast<int64_t>(synth_k));
  report->SetParam("rho", rho);
  report->SetParam("reps", reps);
  report->SetParam("debias", debias ? "true" : "false");

  std::cout << "== " << figure_label << " ==\n"
            << "simulated all-ones data, n=" << n << " T=" << T
            << " synthesizer k=" << synth_k << " rho=" << rho
            << " reps=" << reps << (debias ? " (debiased)" : " (biased)")
            << "\n\n";

  struct QueryCase {
    const char* label;
    query::WindowPredicatePtr pred;
  };
  // The paper evaluates the all-ones query at each width: the fraction of
  // individuals whose last k' bits are all ones.
  std::vector<QueryCase> cases = {
      {"matching k'=3", query::MakeAllOnes(3)},
      {"smaller  k'=2", query::MakeAllOnes(2)},
      {"larger   k'=4", query::MakeAllOnes(4)},
  };

  // errors[case][t][rep] = |estimate - truth| at timestep t (t >= k').
  std::vector<std::vector<std::vector<double>>> errors(
      cases.size(),
      std::vector<std::vector<double>>(
          static_cast<size_t>(T) + 1,
          std::vector<double>(static_cast<size_t>(reps), -1.0)));

  {
    harness::BenchReport::PhaseTimer timer(report, "repetitions");
    LONGDP_RETURN_NOT_OK(harness::RunRepetitions(
        reps, kRunSeed + 2, [&](int64_t rep, uint64_t rep_seed) {
          core::FixedWindowSynthesizer::Options opt;
          opt.horizon = T;
          opt.window_k = synth_k;
          opt.rho = rho;
          opt.seed = rep_seed;
          LONGDP_ASSIGN_OR_RETURN(auto synth,
                                  core::FixedWindowSynthesizer::Create(opt));
          for (int64_t t = 1; t <= T; ++t) {
            LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
            if (!synth->has_release()) continue;
            for (size_t c = 0; c < cases.size(); ++c) {
              const auto& pred = cases[c].pred;
              if (pred->width() > synth_k) {
                // The "larger query" case: evaluate the best the analyst can
                // do — chain the k-window release as if bits were
                // exchangeable. We evaluate the all-ones width-4 query on the
                // materialized synthetic records directly.
                if (t < pred->width()) continue;
                const auto& cohort = synth->cohort();
                int64_t count = 0;
                for (int64_t r = 0; r < cohort.num_records(); ++r) {
                  bool all = true;
                  for (int64_t tt = cohort.rounds() - pred->width() + 1;
                       tt <= cohort.rounds(); ++tt) {
                    if (cohort.Bit(r, tt) == 0) all = false;
                  }
                  if (all) ++count;
                }
                double truth;
                LONGDP_ASSIGN_OR_RETURN(
                    truth, query::EvaluateOnDataset(*pred, ds, t));
                double estimate;
                if (debias) {
                  // No exact debiaser exists beyond width k — the padding's
                  // contribution to a width-4 count depends on the noise
                  // path. Subtracting npad (the suffix-111 padding mass) is
                  // the analyst's best guess; the figure's point is that the
                  // error is large regardless.
                  estimate = (static_cast<double>(count) -
                              static_cast<double>(synth->npad())) /
                             static_cast<double>(ds.num_users());
                } else {
                  estimate = static_cast<double>(count) /
                             static_cast<double>(cohort.num_records());
                }
                errors[c][static_cast<size_t>(t)][static_cast<size_t>(rep)] =
                    std::fabs(estimate - truth);
                continue;
              }
              if (t < synth_k) continue;
              double truth;
              LONGDP_ASSIGN_OR_RETURN(truth,
                                      query::EvaluateOnDataset(*pred, ds, t));
              double estimate;
              if (debias) {
                LONGDP_ASSIGN_OR_RETURN(estimate,
                                        synth->DebiasedAnswer(*pred));
              } else {
                LONGDP_ASSIGN_OR_RETURN(estimate,
                                        synth->BiasedAnswer(*pred));
              }
              errors[c][static_cast<size_t>(t)][static_cast<size_t>(rep)] =
                  std::fabs(estimate - truth);
            }
          }
          return Status::OK();
        },
        static_cast<int>(flags.Threads(0))));
  }

  LONGDP_ASSIGN_OR_RETURN(
      double bound_debiased,
      core::theory::DebiasedFractionErrorBound(T, synth_k, rho, beta, n));
  report->SetParam("theory_bound", bound_debiased);

  harness::Table table({"query", "t", "median|err|", "q2.5", "q97.5",
                        "theory_bound"});
  auto& series = report->AddSeries("abs_error");
  for (size_t c = 0; c < cases.size(); ++c) {
    for (int64_t t = 1; t <= T; ++t) {
      std::vector<double> at_t;
      for (double e : errors[c][static_cast<size_t>(t)]) {
        if (e >= 0.0) at_t.push_back(e);
      }
      if (at_t.empty()) continue;
      auto s = harness::Summarize(at_t);
      LONGDP_RETURN_NOT_OK(table.AddRow(
          {cases[c].label, std::to_string(t), harness::Table::Val(s.median),
           harness::Table::Val(s.q025), harness::Table::Val(s.q975),
           harness::Table::Val(bound_debiased)}));
      series.AddRow()
          .Label("query", cases[c].label)
          .Label("t", std::to_string(t))
          .Value("theory_bound", bound_debiased)
          .Summary(s);
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
  std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    LONGDP_RETURN_NOT_OK(table.WriteCsv(csv + ".csv"));
  }
  return Status::OK();
}

}  // namespace bench
}  // namespace longdp

#endif  // LONGDP_BENCH_BENCH_COMMON_H_
