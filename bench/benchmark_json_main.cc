// Replacement for benchmark_main in the micro benches so they honor the
// repo-wide --json[=PATH] flag: it is translated into Google Benchmark's
// native --benchmark_out=PATH --benchmark_out_format=json (same default
// path convention as the figure benches: BENCH_<binary>.json), and every
// other argument is forwarded untouched.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/flags.h"

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);

  std::vector<std::string> forwarded;
  forwarded.emplace_back(argc > 0 ? argv[0] : "bench");
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) continue;
    if (arg == "--json") {
      // Mirror Flags::Parse: a bare --json may consume the next token as
      // its value (--json out.json).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) ++i;
      continue;
    }
    forwarded.push_back(std::move(arg));
  }
  std::string path = longdp::bench::JsonOutputPath(flags);
  if (!path.empty()) {
    forwarded.push_back("--benchmark_out=" + path);
    forwarded.push_back("--benchmark_out_format=json");
  }

  std::vector<char*> fwd_argv;
  fwd_argv.reserve(forwarded.size());
  for (auto& s : forwarded) fwd_argv.push_back(s.data());
  int fwd_argc = static_cast<int>(fwd_argv.size());

  benchmark::Initialize(&fwd_argc, fwd_argv.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
