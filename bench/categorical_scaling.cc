// Ablation A8: the categorical extension of Algorithm 1 — error and cost
// as the alphabet size A grows (the paper claims the fixed-window solution
// "naturally extends" to A > 2; this bench quantifies the A^k price).
//
// Flags: --reps=N (default 100) --rho=R --n=N
#include <chrono>

#include "bench_common.h"
#include "core/categorical_synthesizer.h"

namespace longdp {
namespace bench {
namespace {

Status Run(const harness::Flags& flags, harness::BenchReport* report) {
  const int64_t reps = flags.Reps(100);
  const double rho = flags.GetDouble("rho", 0.01);
  const int64_t n = flags.GetInt("n", 20000);
  const int64_t T = 12;
  const int k = 2;

  report->set_description(
      "A8: categorical window synthesis, alphabet sweep");
  report->SetParam("n", n);
  report->SetParam("T", T);
  report->SetParam("k", k);
  report->SetParam("rho", rho);
  report->SetParam("reps", reps);

  std::cout << "== A8: categorical window synthesis, alphabet sweep ==\n"
            << "n=" << n << " T=" << T << " k=" << k << " rho=" << rho
            << " reps=" << reps << "\n\n";

  harness::Table table({"A", "bins(A^k)", "npad", "mean|bin err|(debiased)",
                        "q97.5|bin err|", "ms/run"});
  auto& series = report->AddSeries("alphabet_sweep");
  harness::BenchReport::PhaseTimer timer(report, "sweep");
  for (int alphabet : {2, 3, 4, 6, 8}) {
    // Stationary categorical rounds (uniform over the alphabet).
    util::SubstreamRng data_rng(kDatasetSeed + static_cast<uint64_t>(alphabet),
                                util::substream::kDataset);
    std::vector<std::vector<uint8_t>> rounds;
    {
      std::vector<uint8_t> state(static_cast<size_t>(n));
      for (auto& s : state) {
        s = static_cast<uint8_t>(
            data_rng.UniformInt(static_cast<uint64_t>(alphabet)));
      }
      for (int64_t t = 0; t < T; ++t) {
        // Sticky chain: 85% stay, 15% resample uniformly.
        if (t > 0) {
          for (auto& s : state) {
            if (data_rng.Bernoulli(0.15)) {
              s = static_cast<uint8_t>(
                  data_rng.UniformInt(static_cast<uint64_t>(alphabet)));
            }
          }
        }
        rounds.push_back(state);
      }
    }
    // True final histogram.
    uint64_t bins =
        core::CategoricalWindowSynthesizer::NumBins(k, alphabet).value();
    std::vector<int64_t> truth(bins, 0);
    for (int64_t i = 0; i < n; ++i) {
      uint64_t code = 0;
      for (int64_t tt = T - k; tt < T; ++tt) {
        code = code * static_cast<uint64_t>(alphabet) +
               rounds[static_cast<size_t>(tt)][static_cast<size_t>(i)];
      }
      ++truth[code];
    }

    std::vector<double> errors(static_cast<size_t>(reps), 0.0);
    int64_t npad_used = 0;
    auto start = std::chrono::steady_clock::now();
    LONGDP_RETURN_NOT_OK(harness::RunRepetitions(
        reps, kRunSeed + 800, [&](int64_t rep, uint64_t rep_seed) {
          core::CategoricalWindowSynthesizer::Options opt;
          opt.horizon = T;
          opt.window_k = k;
          opt.alphabet = alphabet;
          opt.rho = rho;
          opt.seed = rep_seed;
          LONGDP_ASSIGN_OR_RETURN(
              auto synth, core::CategoricalWindowSynthesizer::Create(opt));
          npad_used = synth->npad();
          for (int64_t t = 0; t < T; ++t) {
            LONGDP_RETURN_NOT_OK(
                synth->ObserveRound(rounds[static_cast<size_t>(t)]));
          }
          double max_err = 0.0;
          for (uint64_t s = 0; s < bins; ++s) {
            LONGDP_ASSIGN_OR_RETURN(double est,
                                    synth->DebiasedBinFraction(s));
            double tr =
                static_cast<double>(truth[s]) / static_cast<double>(n);
            max_err = std::max(max_err, std::fabs(est - tr));
          }
          errors[static_cast<size_t>(rep)] = max_err;
          return Status::OK();
        }));
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    auto s = harness::Summarize(errors);
    double ms_per_run =
        static_cast<double>(elapsed) / static_cast<double>(reps);
    LONGDP_RETURN_NOT_OK(table.AddRow(
        {std::to_string(alphabet), std::to_string(bins),
         std::to_string(npad_used), harness::Table::Val(s.mean, 5),
         harness::Table::Val(s.q975, 5),
         harness::Table::Val(ms_per_run, 2)}));
    series.AddRow()
        .Label("A", std::to_string(alphabet))
        .Value("bins", static_cast<double>(bins))
        .Value("npad", static_cast<double>(npad_used))
        .Value("ms_per_run", ms_per_run)
        .Summary(s);
  }
  timer.Stop();
  table.Print(std::cout);
  std::cout << "\nPer-bin error grows only with log(A^k) (the union bound); "
               "the padding mass\nand runtime grow with A^k — the practical "
               "ceiling on the categorical extension.\n";
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::Run(flags, &report);
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
