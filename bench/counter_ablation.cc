// Ablation A3: stream counter choice inside Algorithm 2 (the paper's
// Section 1.1 remark that better counters may yield better practical
// results). Runs the SIPP cumulative experiment with every registered
// counter at the same budget and reports the max fraction error, plus the
// counters' standalone error on a long synthetic stream.
//
// Flags: --reps=N (default 200) --rho=R --n=N
#include "bench_common.h"
#include "stream/counter_factory.h"

namespace longdp {
namespace bench {
namespace {

Status Run(const harness::Flags& flags, harness::BenchReport* report) {
  const int64_t reps = flags.Reps(200);
  const double rho = flags.GetDouble("rho", 0.005);
  LONGDP_ASSIGN_OR_RETURN(auto ds, MakeSippDataset(flags));
  const int64_t T = ds.rounds();

  report->set_description("A3: stream counter ablation inside Algorithm 2");
  report->SetParam("n", ds.num_users());
  report->SetParam("T", T);
  report->SetParam("rho", rho);
  report->SetParam("reps", reps);

  std::cout << "== A3: stream counter ablation inside Algorithm 2 ==\n"
            << "SIPP-like data, n=" << ds.num_users() << " T=" << T
            << " rho=" << rho << " reps=" << reps << "\n\n";

  // Precompute truths.
  std::vector<std::vector<double>> truth(static_cast<size_t>(T) + 1);
  for (int64_t t = 1; t <= T; ++t) {
    truth[static_cast<size_t>(t)].resize(static_cast<size_t>(T) + 1);
    for (int64_t b = 1; b <= T; ++b) {
      LONGDP_ASSIGN_OR_RETURN(
          truth[static_cast<size_t>(t)][static_cast<size_t>(b)],
          query::EvaluateCumulativeOnDataset(ds, t, b));
    }
  }

  harness::Table table({"counter", "median_max_err", "q97.5_max_err",
                        "mean_err(b=3,t=12)"});
  auto& synth_series = report->AddSeries("synthesizer_max_error");
  harness::BenchReport::PhaseTimer synth_timer(report, "synthesizer");
  for (const auto& name : stream::RegisteredCounterNames()) {
    LONGDP_ASSIGN_OR_RETURN(auto factory, stream::MakeCounterFactory(name));
    std::vector<double> max_errors(static_cast<size_t>(reps), 0.0);
    std::vector<double> b3_errors(static_cast<size_t>(reps), 0.0);
    LONGDP_RETURN_NOT_OK(harness::RunRepetitions(
        reps, kRunSeed + 300, [&](int64_t rep, uint64_t rep_seed) {
          core::CumulativeSynthesizer::Options opt;
          opt.horizon = T;
          opt.rho = rho;
          opt.seed = rep_seed;
          opt.counter_factory = factory;
          LONGDP_ASSIGN_OR_RETURN(auto synth,
                                  core::CumulativeSynthesizer::Create(opt));
          double max_err = 0.0;
          for (int64_t t = 1; t <= T; ++t) {
            LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
            for (int64_t b = 1; b <= t; ++b) {
              LONGDP_ASSIGN_OR_RETURN(double est, synth->Answer(b));
              double err = std::fabs(
                  est - truth[static_cast<size_t>(t)][static_cast<size_t>(b)]);
              max_err = std::max(max_err, err);
              if (t == T && b == 3) {
                b3_errors[static_cast<size_t>(rep)] = err;
              }
            }
          }
          max_errors[static_cast<size_t>(rep)] = max_err;
          return Status::OK();
        }));
    auto s = harness::Summarize(max_errors);
    auto s3 = harness::Summarize(b3_errors);
    LONGDP_RETURN_NOT_OK(table.AddRow(
        {name, harness::Table::Val(s.median), harness::Table::Val(s.q975),
         harness::Table::Val(s3.mean)}));
    synth_series.AddRow()
        .Label("counter", name)
        .Value("mean_err_b3_t12", s3.mean)
        .Summary(s);
  }
  synth_timer.Stop();
  table.Print(std::cout);

  // Standalone counter comparison on a long stream, where the asymptotic
  // gaps are visible (T = 1024).
  std::cout << "\n-- standalone counters, stream length 1024, rho=0.5, "
               "final-step |error| over "
            << reps << " trials --\n";
  harness::Table solo({"counter", "median|err|", "q97.5|err|",
                       "bound(beta=.05)"});
  auto& solo_series = report->AddSeries("standalone_counters");
  harness::BenchReport::PhaseTimer solo_timer(report, "standalone");
  const int64_t kLongT = 1024;
  for (const auto& name : stream::RegisteredCounterNames()) {
    LONGDP_ASSIGN_OR_RETURN(auto factory, stream::MakeCounterFactory(name));
    std::vector<double> errors(static_cast<size_t>(reps), 0.0);
    double bound = 0.0;
    {
      const util::SubstreamRng probe_stream(0, util::substream::kCounterNoise);
      LONGDP_ASSIGN_OR_RETURN(auto probe,
                              factory->Create(kLongT, 0.5, probe_stream));
      bound = probe->ErrorBound(0.05, kLongT);
    }
    LONGDP_RETURN_NOT_OK(harness::RunRepetitions(
        reps, kRunSeed + 301, [&](int64_t rep, uint64_t rep_seed) {
          const util::SubstreamRng stream(rep_seed,
                                          util::substream::kCounterNoise);
          LONGDP_ASSIGN_OR_RETURN(auto counter,
                                  factory->Create(kLongT, 0.5, stream));
          int64_t truth_sum = 0;
          int64_t released = 0;
          for (int64_t t = 1; t <= kLongT; ++t) {
            int64_t z = t % 3;
            truth_sum += z;
            LONGDP_ASSIGN_OR_RETURN(released, counter->Observe(z));
          }
          errors[static_cast<size_t>(rep)] =
              std::fabs(static_cast<double>(released - truth_sum));
          return Status::OK();
        }));
    auto s = harness::Summarize(errors);
    LONGDP_RETURN_NOT_OK(solo.AddRow(
        {name, harness::Table::Val(s.median, 1),
         harness::Table::Val(s.q975, 1), harness::Table::Val(bound, 1)}));
    solo_series.AddRow()
        .Label("counter", name)
        .Value("theory_bound", bound)
        .Summary(s);
  }
  solo_timer.Stop();
  solo.Print(std::cout);
  std::cout << "\ntree/honaker scale polylog(T); input-perturbation and "
               "recompute pay sqrt(T).\n";
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::Run(flags, &report);
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
