// Durability-layer overhead: what snapshot + WAL cost per released round,
// at SIPP scale (n = 23,374) and at a million users, for the cumulative
// and fixed-window synthesizers.
//
// For each (algorithm, n) cell the bench runs the same keyed dataset three
// ways and reports wall-clock phases:
//
//   observe_*   plain synthesizer, no durability (the baseline)
//   durable_*   DurableRun: every round fsyncs one WAL frame, every 4th
//               round atomically replaces the snapshot
//   recover_*   reopening the finished session directory: tolerant WAL
//               read + snapshot restore (the replay region is empty at a
//               snapshot boundary, so this isolates pure recovery cost)
//
// The gated JSON series records only deterministic facts — WAL frame
// count, WAL bytes, snapshot bytes — so a stored-baseline diff is immune
// to machine noise; all timings land in the (ungated) phase table. The
// bench also hard-fails unless the durable run's WAL read back STRICTLY
// clean with exactly T frames: an accidental semantics change in the
// persistence layer can't hide behind a timing table.
//
// Flags: --full (adds n=5M) --threads=P (pool lanes, default 4)
//        --snapshot_every=K (default 4) --json[=PATH] --csv=prefix

#include <sys/stat.h>

#include <cstdlib>

#include "bench_common.h"
#include "persist/bindings.h"
#include "persist/session.h"
#include "persist/wal.h"

namespace longdp {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Result<int64_t> FileBytes(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("stat '" + path + "' failed");
  }
  return static_cast<int64_t>(st.st_size);
}

struct CellResult {
  double observe_s = 0.0;
  double durable_s = 0.0;
  double recover_s = 0.0;
  int64_t wal_frames = 0;
  int64_t wal_bytes = 0;
  int64_t snapshot_bytes = 0;
};

// One (algorithm, n) cell: baseline, durable, and recovery runs over the
// same pre-extracted rounds.
template <typename Run, typename Opts>
Result<CellResult> RunCell(const std::vector<std::vector<uint8_t>>& rounds,
                           const std::string& dir, const Opts& sopts,
                           int64_t snapshot_every) {
  CellResult out;
  const int64_t T = static_cast<int64_t>(rounds.size());

  // Baseline: the bare synthesizer over the same vector-overload feed.
  {
    const auto start = std::chrono::steady_clock::now();
    LONGDP_ASSIGN_OR_RETURN(auto synth, Run::Synth::Create(sopts));
    for (int64_t t = 1; t <= T; ++t) {
      LONGDP_RETURN_NOT_OK(
          synth->ObserveRound(rounds[static_cast<size_t>(t - 1)]));
    }
    out.observe_s = Seconds(start);
  }

  persist::DurableSession::Options dopts;
  dopts.dir = dir;
  dopts.snapshot_every = snapshot_every;

  // Durable: identical feed, plus one fsynced WAL frame per round and a
  // snapshot cut every `snapshot_every` rounds.
  {
    const auto start = std::chrono::steady_clock::now();
    LONGDP_ASSIGN_OR_RETURN(auto run, Run::Open(dopts, sopts));
    for (int64_t t = 1; t <= T; ++t) {
      LONGDP_RETURN_NOT_OK(
          run->ObserveRound(rounds[static_cast<size_t>(t - 1)]));
    }
    out.durable_s = Seconds(start);
  }

  // Recovery: reopen the finished directory. With T divisible by
  // snapshot_every the snapshot is current, so this times the tolerant
  // WAL read + checksum verify + full checkpoint restore alone.
  {
    const auto start = std::chrono::steady_clock::now();
    LONGDP_ASSIGN_OR_RETURN(auto run, Run::Open(dopts, sopts));
    out.recover_s = Seconds(start);
    if (run->session().replay_remaining() != 0) {
      return Status::Internal(
          "recovery of a snapshot-aligned run left a replay region");
    }
  }

  LONGDP_ASSIGN_OR_RETURN(
      auto wal, persist::ReadWal(persist::DurableSession::WalPath(dir),
                                 persist::WalReadMode::kStrict));
  out.wal_frames = static_cast<int64_t>(wal.records.size());
  if (out.wal_frames != T) {
    return Status::Internal("durable run left " +
                            std::to_string(out.wal_frames) +
                            " WAL frames, expected " + std::to_string(T));
  }
  LONGDP_ASSIGN_OR_RETURN(
      out.wal_bytes, FileBytes(persist::DurableSession::WalPath(dir)));
  LONGDP_ASSIGN_OR_RETURN(
      out.snapshot_bytes,
      FileBytes(persist::DurableSession::SnapshotPath(dir)));
  return out;
}

Status Run(const harness::Flags& flags, harness::BenchReport* report) {
  const int64_t T = 12;
  const int k = 3;
  const double rho = 0.005;
  const int64_t threads = flags.Threads(4);
  const int64_t snapshot_every = flags.GetInt("snapshot_every", 4);
  if (snapshot_every <= 0 || T % snapshot_every != 0) {
    return Status::InvalidArgument(
        "--snapshot_every must divide T=12 so the recovery phase has no "
        "replay region");
  }
  std::vector<int64_t> sizes = {23374, 1000000};
  if (flags.Has("full")) sizes.push_back(5000000);

  char tmpl[] = "/tmp/longdp_durability_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    return Status::IOError("mkdtemp failed");
  }
  const std::string root = tmpl;

  report->set_description(
      "snapshot+WAL overhead per round and recovery cost at SIPP and "
      "million-user scale");
  report->SetParam("T", T);
  report->SetParam("k", k);
  report->SetParam("rho", rho);
  report->SetParam("threads", threads);
  report->SetParam("snapshot_every", snapshot_every);
  report->SetParam("full", flags.Has("full") ? "true" : "false");

  std::cout << "== durability: per-round snapshot+WAL overhead ==\n"
            << "T=" << T << " k=" << k << " rho=" << rho
            << " pool lanes=" << threads
            << " snapshot_every=" << snapshot_every << "\n\n";

  harness::Table table({"n", "algo", "observe_s", "durable_s",
                        "overhead_ms_per_round", "recover_s", "wal_bytes",
                        "snapshot_bytes"});
  struct SizeRow {
    std::string algo;
    int64_t n;
    CellResult cell;
  };
  std::vector<SizeRow> size_rows;

  for (int64_t n : sizes) {
    util::ThreadPool gen_pool(static_cast<int>(threads));
    data::MarkovParams params;
    params.initial_rate = 0.10;
    params.entry_prob = 0.03;
    params.exit_prob = 0.25;
    LONGDP_ASSIGN_OR_RETURN(
        auto ds, data::TwoStateMarkov(n, T, params,
                                      kDatasetSeed + static_cast<uint64_t>(n),
                                      &gen_pool));
    // Pre-extract the rounds once: both the baseline and the durable run
    // feed the same vector overload, so the copy cost cancels out.
    std::vector<std::vector<uint8_t>> rounds;
    for (int64_t t = 1; t <= T; ++t) {
      std::vector<uint8_t> bits(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        bits[static_cast<size_t>(i)] = static_cast<uint8_t>(ds.Bit(i, t));
      }
      rounds.push_back(std::move(bits));
    }

    util::ThreadPool pool(static_cast<int>(threads));
    for (const char* algo : {"cumulative", "fixed_window"}) {
      const bool fixed = std::string(algo) == "fixed_window";
      const std::string dir =
          root + "/" + algo + "_n" + std::to_string(n);
      CellResult cell;
      if (fixed) {
        core::FixedWindowSynthesizer::Options opt;
        opt.horizon = T;
        opt.window_k = k;
        opt.rho = rho;
        opt.seed = kRunSeed + 910;
        opt.pool = &pool;
        LONGDP_ASSIGN_OR_RETURN(
            cell, (RunCell<persist::DurableFixedWindow>(rounds, dir, opt,
                                                        snapshot_every)));
      } else {
        core::CumulativeSynthesizer::Options opt;
        opt.horizon = T;
        opt.rho = rho;
        opt.seed = kRunSeed + 911;
        opt.pool = &pool;
        LONGDP_ASSIGN_OR_RETURN(
            cell, (RunCell<persist::DurableCumulative>(rounds, dir, opt,
                                                       snapshot_every)));
      }

      const std::string suffix =
          std::string(algo) + "_n" + std::to_string(n);
      report->RecordPhaseSeconds("observe_" + suffix, cell.observe_s);
      report->RecordPhaseSeconds("durable_" + suffix, cell.durable_s);
      report->RecordPhaseSeconds("recover_" + suffix, cell.recover_s);
      const double overhead_ms =
          (cell.durable_s - cell.observe_s) * 1000.0 /
          static_cast<double>(T);
      LONGDP_RETURN_NOT_OK(table.AddRow(
          {std::to_string(n), algo, harness::Table::Val(cell.observe_s, 3),
           harness::Table::Val(cell.durable_s, 3),
           harness::Table::Val(overhead_ms, 2),
           harness::Table::Val(cell.recover_s, 3),
           std::to_string(cell.wal_bytes),
           std::to_string(cell.snapshot_bytes)}));
      size_rows.push_back({algo, n, cell});
    }
  }

  // Deterministic facts only: byte sizes and frame counts are a pure
  // function of (options, seeds, data), so they gate cleanly.
  auto& series = report->AddSeries("durable_files");
  for (const SizeRow& sr : size_rows) {
    series.AddRow()
        .Label("algo", sr.algo)
        .Label("n", std::to_string(sr.n))
        .Value("wal_frames", static_cast<double>(sr.cell.wal_frames))
        .Value("wal_bytes", static_cast<double>(sr.cell.wal_bytes))
        .Value("snapshot_bytes",
               static_cast<double>(sr.cell.snapshot_bytes));
  }

  table.Print(std::cout);
  std::cout << "\nevery durable run read back strictly clean with exactly "
            << T << " WAL frames\n";
  std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    LONGDP_RETURN_NOT_OK(table.WriteCsv(csv + ".csv"));
  }
  const std::string cleanup = "rm -rf '" + root + "'";
  if (std::system(cleanup.c_str()) != 0) {
    std::cout << "warning: failed to clean up " << root << "\n";
  }
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::Run(flags, &report);
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
