// Figure 1: proportions of SIPP households in poverty per quarter (2021),
// computed on the synthetic data (biased panel), rho = 0.005, 1000 reps.
//
// Flags: --reps=N --rho=R --n=N --csv=prefix --sipp_csv=path
//        --observe_reps=N (serial hot-path timing phases; 0 disables)
#include "bench_common.h"

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  double rho = flags.GetDouble("rho", 0.005);
  auto st = longdp::bench::RunSippQuarterly(
      flags, &report, rho, /*print_biased=*/true, /*print_debiased=*/false,
      "Figure 1: SIPP quarterly poverty, synthetic-data results, rho=" +
          std::to_string(rho));
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
