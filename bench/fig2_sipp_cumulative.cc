// Figure 2: proportion of SIPP households in poverty for at least three
// months up to any given month (2021), rho = 0.005, 1000 reps.
//
// Flags: --reps=N --rho=R --b=B --n=N --csv=prefix --sipp_csv=path
//        --observe_reps=N (serial hot-path timing phases; 0 disables)
#include "bench_common.h"

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  double rho = flags.GetDouble("rho", 0.005);
  auto st = longdp::bench::RunSippCumulative(
      flags, &report, rho,
      "Figure 2: SIPP cumulative poverty (>= b months), rho=" +
          std::to_string(rho));
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
