// Figure 3: empirical error of Algorithm 1 on simulated all-ones data with
// the debiasing step, for queries of width 3 (matching), 2 (smaller), and 4
// (larger than the synthesizer's k = 3). Median and 2.5/97.5 percentiles per
// timestep, against the theoretical bound.
//
// Flags: --reps=N --rho=R --n=N --T=T --k=K --csv=prefix
#include "bench_common.h"

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::RunSimulatedError(
      flags, &report, /*debias=*/true,
      "Figure 3: simulated data, debiased error vs timestep");
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
