// Figure 4: same experiment as Figure 3 but without the debiasing step —
// proportions computed directly on the padded synthetic data, showing the
// substantially larger error the paper warns about.
//
// Flags: --reps=N --rho=R --n=N --T=T --k=K --csv=prefix
#include "bench_common.h"

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::RunSimulatedError(
      flags, &report, /*debias=*/false,
      "Figure 4: simulated data, biased (no debias) error vs timestep");
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
