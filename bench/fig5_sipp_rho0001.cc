// Figure 5: SIPP quarterly poverty at rho = 0.001 — left panel computed on
// the synthetic data (biased), right panel debiased by subtracting the
// padding query answer.
//
// Flags: --reps=N --n=N --csv=prefix --sipp_csv=path
#include "bench_common.h"

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  return longdp::bench::ExitWith(longdp::bench::RunSippQuarterly(
      flags, /*rho=*/0.001, /*print_biased=*/true, /*print_debiased=*/true,
      "Figure 5: SIPP quarterly poverty, rho=0.001, biased + debiased"));
}
