// Figure 5: SIPP quarterly poverty at rho = 0.001 — left panel computed on
// the synthetic data (biased), right panel debiased by subtracting the
// padding query answer.
//
// Flags: --reps=N --n=N --csv=prefix --sipp_csv=path
#include "bench_common.h"

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::RunSippQuarterly(
      flags, &report, /*rho=*/0.001, /*print_biased=*/true,
      /*print_debiased=*/true,
      "Figure 5: SIPP quarterly poverty, rho=0.001, biased + debiased");
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
