// Figure 6: SIPP quarterly poverty at rho = 0.005 — biased and debiased
// panels (the rho used by Figure 1 in the main text).
//
// Flags: --reps=N --n=N --csv=prefix --sipp_csv=path
#include "bench_common.h"

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::RunSippQuarterly(
      flags, &report, /*rho=*/0.005, /*print_biased=*/true,
      /*print_debiased=*/true,
      "Figure 6: SIPP quarterly poverty, rho=0.005, biased + debiased");
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
