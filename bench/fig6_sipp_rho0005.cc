// Figure 6: SIPP quarterly poverty at rho = 0.005 — biased and debiased
// panels (the rho used by Figure 1 in the main text).
//
// Flags: --reps=N --n=N --csv=prefix --sipp_csv=path
#include "bench_common.h"

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  return longdp::bench::ExitWith(longdp::bench::RunSippQuarterly(
      flags, /*rho=*/0.005, /*print_biased=*/true, /*print_debiased=*/true,
      "Figure 6: SIPP quarterly poverty, rho=0.005, biased + debiased"));
}
