// Figure 8 (appendix twin of Figure 2): SIPP cumulative poverty with the
// threshold fixed at b = 3, rho = 0.005. Algorithm 2 releases all
// thresholds simultaneously; this binary additionally prints the full
// b-sweep at the final month to make that point.
//
// Flags: --reps=N --rho=R --n=N --csv=prefix --sipp_csv=path
#include "bench_common.h"

namespace longdp {
namespace bench {
namespace {

Status PrintFinalMonthThresholdSweep(const harness::Flags& flags,
                                     harness::BenchReport* report,
                                     double rho) {
  const int64_t reps = std::min<int64_t>(flags.Reps(1000), 200);
  // The sweep runs at its own (capped) repetition count; record it so the
  // threshold_sweep quantiles aren't misread against params.reps.
  report->SetParam("sweep_reps", reps);
  LONGDP_ASSIGN_OR_RETURN(auto ds, MakeSippDataset(flags));
  const int64_t T = 12;
  std::vector<std::vector<double>> samples(
      static_cast<size_t>(T) + 1,
      std::vector<double>(static_cast<size_t>(reps)));
  LONGDP_RETURN_NOT_OK(harness::RunRepetitions(
      reps, kRunSeed + 8, [&](int64_t rep, uint64_t rep_seed) {
        core::CumulativeSynthesizer::Options opt;
        opt.horizon = T;
        opt.rho = rho;
        opt.seed = rep_seed;
        LONGDP_ASSIGN_OR_RETURN(auto synth,
                                core::CumulativeSynthesizer::Create(opt));
        for (int64_t t = 1; t <= T; ++t) {
          LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
        }
        for (int64_t b = 0; b <= T; ++b) {
          LONGDP_ASSIGN_OR_RETURN(
              samples[static_cast<size_t>(b)][static_cast<size_t>(rep)],
              synth->Answer(b));
        }
        return Status::OK();
      }));
  std::cout << "-- all thresholds b at the final month (t = 12), "
            << reps << " reps --\n";
  harness::Table table({"b", "truth", "mean", "q2.5", "q97.5"});
  auto& series = report->AddSeries("threshold_sweep");
  for (int64_t b = 0; b <= T; ++b) {
    LONGDP_ASSIGN_OR_RETURN(double truth,
                            query::EvaluateCumulativeOnDataset(ds, T, b));
    auto s = harness::Summarize(samples[static_cast<size_t>(b)]);
    LONGDP_RETURN_NOT_OK(table.AddRow(
        {std::to_string(b), harness::Table::Val(truth),
         harness::Table::Val(s.mean), harness::Table::Val(s.q025),
         harness::Table::Val(s.q975)}));
    series.AddRow()
        .Label("b", std::to_string(b))
        .Value("truth", truth)
        .Summary(s);
  }
  table.Print(std::cout);
  std::cout << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  double rho = flags.GetDouble("rho", 0.005);
  longdp::Status st = longdp::bench::RunSippCumulative(
      flags, &report, rho,
      "Figure 8 (appendix): SIPP cumulative poverty, b=3, rho=" +
          std::to_string(rho));
  if (st.ok()) {
    st = longdp::bench::PrintFinalMonthThresholdSweep(flags, &report, rho);
  }
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
