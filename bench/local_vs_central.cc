// Ablation A7: local-model randomized response (RAPPOR-style, the paper's
// Section 1.1 related work) vs the central Algorithm 1, on the k = 1
// problem both can solve — tracking the monthly poverty rate.
//
// At matched privacy (the central run's rho converted to an (epsilon,
// delta) guarantee), the central model's error is independent of T while
// the local fresh-per-round error grows with T and with 1/sqrt(n); the
// memoized variant avoids the T-dependence only under the bounded-flips
// heuristic and answers nothing beyond the k = 1 mean.
//
// Flags: --reps=N (default 300) --rho=R --n=N
#include "bench_common.h"
#include "dp/mechanisms.h"
#include "local/randomized_response.h"

namespace longdp {
namespace bench {
namespace {

Status Run(const harness::Flags& flags, harness::BenchReport* report) {
  const int64_t reps = flags.Reps(300);
  const double rho = flags.GetDouble("rho", 0.005);
  LONGDP_ASSIGN_OR_RETURN(auto ds, MakeSippDataset(flags));
  const int64_t T = ds.rounds();
  const double delta = 1e-6;
  const double epsilon = dp::ZCdpToApproxDpEpsilon(rho, delta);

  report->set_description(
      "A7: local randomized response vs central Algorithm 1 (k = 1)");
  report->SetParam("n", ds.num_users());
  report->SetParam("T", T);
  report->SetParam("rho", rho);
  report->SetParam("epsilon", epsilon);
  report->SetParam("delta", delta);
  report->SetParam("reps", reps);

  std::cout << "== A7: local randomized response vs central Algorithm 1 "
               "(k = 1: monthly poverty rate) ==\n"
            << "n=" << ds.num_users() << " T=" << T << " rho=" << rho
            << " -> (eps=" << epsilon << ", delta=" << delta
            << ")-DP equivalent; reps=" << reps << "\n\n";

  // Truth at each month.
  std::vector<double> truth(static_cast<size_t>(T) + 1, 0.0);
  auto current = query::MakeAtLeastOnes(1, 1);
  for (int64_t t = 1; t <= T; ++t) {
    LONGDP_ASSIGN_OR_RETURN(truth[static_cast<size_t>(t)],
                            query::EvaluateOnDataset(*current, ds, t));
  }

  struct Arm {
    std::string label;
    std::vector<double> max_errors;
  };
  std::vector<Arm> arms = {
      {"central Alg.1 (debiased, k=1)", {}},
      {"local fresh-per-round", {}},
      {"local memoized (flip_bound=3)", {}},
  };
  for (auto& arm : arms) {
    arm.max_errors.assign(static_cast<size_t>(reps), 0.0);
  }

  LONGDP_RETURN_NOT_OK(harness::RunRepetitions(
      reps, kRunSeed + 700, [&](int64_t rep, uint64_t rep_seed) {
        // Central Algorithm 1 with k = 1.
        core::FixedWindowSynthesizer::Options copt;
        copt.horizon = T;
        copt.window_k = 1;
        copt.rho = rho;
        copt.seed = rep_seed;
        LONGDP_ASSIGN_OR_RETURN(auto central,
                                core::FixedWindowSynthesizer::Create(copt));
        // Local oracles at the matched epsilon.
        local::LocalFrequencyOracle::Options fresh_opt;
        fresh_opt.horizon = T;
        fresh_opt.epsilon = epsilon;
        fresh_opt.strategy = local::ReportStrategy::kFreshPerRound;
        LONGDP_ASSIGN_OR_RETURN(auto fresh,
                                local::LocalFrequencyOracle::Create(
                                    fresh_opt));
        local::LocalFrequencyOracle::Options memo_opt = fresh_opt;
        memo_opt.strategy = local::ReportStrategy::kMemoized;
        memo_opt.flip_bound = 3;
        LONGDP_ASSIGN_OR_RETURN(
            auto memo, local::LocalFrequencyOracle::Create(memo_opt));

        // The local oracles keep the mutable Rng* interface; key a
        // per-repetition local stream off the repetition seed.
        util::SubstreamRng lrng(rep_seed, util::substream::kLocal);
        double central_max = 0.0, fresh_max = 0.0, memo_max = 0.0;
        for (int64_t t = 1; t <= T; ++t) {
          LONGDP_RETURN_NOT_OK(central->ObserveRound(ds.Round(t)));
          LONGDP_ASSIGN_OR_RETURN(double c,
                                  central->DebiasedAnswer(*current));
          LONGDP_ASSIGN_OR_RETURN(double f,
                                  fresh->ObserveRound(ds.Round(t), &lrng));
          LONGDP_ASSIGN_OR_RETURN(double m,
                                  memo->ObserveRound(ds.Round(t), &lrng));
          double tr = truth[static_cast<size_t>(t)];
          central_max = std::max(central_max, std::fabs(c - tr));
          fresh_max = std::max(fresh_max, std::fabs(f - tr));
          memo_max = std::max(memo_max, std::fabs(m - tr));
        }
        arms[0].max_errors[static_cast<size_t>(rep)] = central_max;
        arms[1].max_errors[static_cast<size_t>(rep)] = fresh_max;
        arms[2].max_errors[static_cast<size_t>(rep)] = memo_max;
        return Status::OK();
      }));

  harness::Table table({"model", "median_max_err", "q97.5_max_err"});
  auto& series = report->AddSeries("max_error");
  for (const auto& arm : arms) {
    auto s = harness::Summarize(arm.max_errors);
    LONGDP_RETURN_NOT_OK(table.AddRow({arm.label,
                                       harness::Table::Val(s.median, 5),
                                       harness::Table::Val(s.q975, 5)}));
    series.AddRow().Label("model", arm.label).Summary(s);
  }
  table.Print(std::cout);
  std::cout << "\nThe memoized variant is competitive on the k=1 mean (its "
               "reports are constant\nbetween flips) but supports no wider "
               "windows and no cumulative queries, and its\nguarantee rests "
               "on the bounded-flips heuristic — the gap the paper's "
               "central\nmodel closes.\n";
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::Run(flags, &report);
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
