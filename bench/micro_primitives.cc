// Ablation A6 (part 1): google-benchmark microbenchmarks for the DP and
// stream-counter primitives — the per-operation costs that determine
// whether the synthesizers can run at survey scale in real time.

#include <benchmark/benchmark.h>

#include "dp/discrete_gaussian.h"
#include "stream/counter_factory.h"
#include "util/rng.h"

namespace {

using longdp::util::Rng;

void BM_DiscreteGaussianSample(benchmark::State& state) {
  const double sigma2 = static_cast<double>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(longdp::dp::SampleDiscreteGaussian(sigma2, &rng));
  }
}
BENCHMARK(BM_DiscreteGaussianSample)->Arg(1)->Arg(100)->Arg(1000)->Arg(5000);

void BM_DiscreteLaplaceSample(benchmark::State& state) {
  const double s = static_cast<double>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(longdp::dp::SampleDiscreteLaplace(s, &rng));
  }
}
BENCHMARK(BM_DiscreteLaplaceSample)->Arg(1)->Arg(10)->Arg(100);

void BM_BernoulliExpNeg(benchmark::State& state) {
  const double gamma = static_cast<double>(state.range(0)) / 10.0;
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(longdp::dp::SampleBernoulliExpNeg(gamma, &rng));
  }
}
BENCHMARK(BM_BernoulliExpNeg)->Arg(1)->Arg(10)->Arg(30);

void BM_StreamCounterFullRun(benchmark::State& state) {
  const int64_t T = state.range(0);
  const std::string name =
      longdp::stream::RegisteredCounterNames()[static_cast<size_t>(
          state.range(1))];
  auto factory = longdp::stream::MakeCounterFactory(name).value();
  Rng rng(4);
  for (auto _ : state) {
    auto counter = factory->Create(T, 0.1).value();
    for (int64_t t = 1; t <= T; ++t) {
      benchmark::DoNotOptimize(counter->Observe(t % 3, &rng).value());
    }
  }
  state.SetItemsProcessed(state.iterations() * T);
  state.SetLabel(name);
}
BENCHMARK(BM_StreamCounterFullRun)
    ->ArgsProduct({{12, 256, 4096}, {0, 1, 2, 3}});

void BM_RngUniformInt(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformInt(12345));
  }
}
BENCHMARK(BM_RngUniformInt);

}  // namespace
