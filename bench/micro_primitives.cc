// Ablation A6 (part 1): google-benchmark microbenchmarks for the DP and
// stream-counter primitives — the per-operation costs that determine
// whether the synthesizers can run at survey scale in real time.

#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "dp/discrete_gaussian.h"
#include "dp/noise_sampler.h"
#include "stream/counter_factory.h"
#include "util/batch_sampler.h"
#include "util/flat_groups.h"
#include "util/rng.h"
#include "util/simd/simd.h"
#include "util/substream.h"

namespace {

using longdp::util::BatchSampler;
using longdp::util::FlatGroups;
using longdp::util::Rng;

void BM_DiscreteGaussianSample(benchmark::State& state) {
  const double sigma2 = static_cast<double>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(longdp::dp::SampleDiscreteGaussian(sigma2, &rng));
  }
}
BENCHMARK(BM_DiscreteGaussianSample)->Arg(1)->Arg(100)->Arg(1000)->Arg(5000);

void BM_DiscreteLaplaceSample(benchmark::State& state) {
  const double s = static_cast<double>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(longdp::dp::SampleDiscreteLaplace(s, &rng));
  }
}
BENCHMARK(BM_DiscreteLaplaceSample)->Arg(1)->Arg(10)->Arg(100);

void BM_BernoulliExpNeg(benchmark::State& state) {
  const double gamma = static_cast<double>(state.range(0)) / 10.0;
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(longdp::dp::SampleBernoulliExpNeg(gamma, &rng));
  }
}
BENCHMARK(BM_BernoulliExpNeg)->Arg(1)->Arg(10)->Arg(30);

void BM_StreamCounterFullRun(benchmark::State& state) {
  const int64_t T = state.range(0);
  const std::string name =
      longdp::stream::RegisteredCounterNames()[static_cast<size_t>(
          state.range(1))];
  auto factory = longdp::stream::MakeCounterFactory(name).value();
  const longdp::util::SubstreamRng stream(
      4, longdp::util::substream::kCounterNoise);
  for (auto _ : state) {
    auto counter = factory->Create(T, 0.1, stream).value();
    for (int64_t t = 1; t <= T; ++t) {
      benchmark::DoNotOptimize(counter->Observe(t % 3).value());
    }
  }
  state.SetItemsProcessed(state.iterations() * T);
  state.SetLabel(name);
}
BENCHMARK(BM_StreamCounterFullRun)
    ->ArgsProduct({{12, 256, 4096}, {0, 1, 2, 3}});

void BM_RngUniformInt(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformInt(12345));
  }
}
BENCHMARK(BM_RngUniformInt);

// ---------------------------------------------------------------------------
// Batched stage-2 sampling phases: the per-draw Rng::UniformInt baseline
// (one rejection-threshold division per draw — the pre-BatchSampler stage-2
// idiom) against util::BatchSampler's Lemire multiply-shift bulk path. The
// acceptance bar for the batched engine is >= 1.5x on the bounded-uniform
// fill at stage-2-typical bounds.

void BM_BoundedUniformPerDraw(benchmark::State& state) {
  const uint64_t bound = static_cast<uint64_t>(state.range(0));
  Rng rng(6);
  std::vector<uint64_t> out(4096);
  for (auto _ : state) {
    for (auto& v : out) v = rng.UniformInt(bound);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_BoundedUniformPerDraw)->Arg(713)->Arg(12345)->Arg(1 << 20);

void BM_BoundedUniformBatched(benchmark::State& state) {
  const uint64_t bound = static_cast<uint64_t>(state.range(0));
  Rng rng(6);
  BatchSampler sampler(&rng);
  std::vector<uint64_t> out(4096);
  for (auto _ : state) {
    sampler.BoundedBulk(bound, out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_BoundedUniformBatched)->Arg(713)->Arg(12345)->Arg(1 << 20);

// The stage-2 selection shapes: a partial Fisher-Yates promoting k of n
// records, hand-rolled on Rng::UniformInt (old) vs BatchSampler (new).

void BM_PartialShufflePerDraw(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t k = state.range(1);
  Rng rng(7);
  std::vector<int64_t> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  for (auto _ : state) {
    int64_t* data = v.data();
    for (int64_t i = 0; i < k; ++i) {
      int64_t j = i + static_cast<int64_t>(
                          rng.UniformInt(static_cast<uint64_t>(n - i)));
      std::swap(data[i], data[j]);
    }
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_PartialShufflePerDraw)
    ->ArgsProduct({{4096, 65536}, {1024, 4096}});

void BM_PartialShuffleBatched(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t k = state.range(1);
  Rng rng(7);
  BatchSampler sampler(&rng);
  std::vector<int64_t> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  for (auto _ : state) {
    sampler.PartialShuffle(v.data(), n, k);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_PartialShuffleBatched)
    ->ArgsProduct({{4096, 65536}, {1024, 4096}});

// Record regrouping for the categorical slide: ragged vector<vector>
// push_back (old) vs the FlatGroups counting-sort scatter (new). Keys are
// a fixed pseudo-random overlap assignment. As in the synthesizers, the
// per-group totals are known up front (from the slide targets), so the
// counting-sort phase declares counts per group rather than re-counting
// records.

void BM_RegroupRagged(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t groups = static_cast<size_t>(state.range(1));
  Rng key_rng(8);
  std::vector<uint32_t> key(m);
  for (auto& k : key) {
    k = static_cast<uint32_t>(key_rng.UniformInt(groups));
  }
  std::vector<std::vector<int64_t>> out(groups);
  for (auto _ : state) {
    for (auto& g : out) g.clear();
    for (size_t r = 0; r < m; ++r) {
      out[key[r]].push_back(static_cast<int64_t>(r));
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m));
}
BENCHMARK(BM_RegroupRagged)->ArgsProduct({{1 << 16, 1 << 20}, {256}});

void BM_RegroupCountingSort(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t groups = static_cast<size_t>(state.range(1));
  Rng key_rng(8);
  std::vector<uint32_t> key(m);
  for (auto& k : key) {
    k = static_cast<uint32_t>(key_rng.UniformInt(groups));
  }
  std::vector<int64_t> group_counts(groups, 0);
  for (size_t r = 0; r < m; ++r) ++group_counts[key[r]];
  FlatGroups out;
  for (auto _ : state) {
    out.Reset(groups);
    for (size_t g = 0; g < groups; ++g) out.AddCount(g, group_counts[g]);
    out.BuildOffsets();
    for (size_t r = 0; r < m; ++r) {
      out.Place(key[r], static_cast<int64_t>(r));
    }
    benchmark::DoNotOptimize(out.group_data(0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m));
}
BENCHMARK(BM_RegroupCountingSort)->ArgsProduct({{1 << 16, 1 << 20}, {256}});

// ---------------------------------------------------------------------------
// Batched noise phases: the per-leaf one-shot discrete Gaussian (the old
// NoisyPaddedHistogram idiom — one keyed leaf substream and one
// SampleDiscreteGaussian call per bin) against dp::NoiseSampler::FillLeaves,
// which runs the identical sampling chain from chunked
// util::simd::FillStreamWords buffers. Values are bit-identical by the
// stream-compatibility contract; only the wall-clock differs.

void BM_DiscreteGaussianPerDraw(benchmark::State& state) {
  const double sigma2 = static_cast<double>(state.range(0));
  const longdp::util::SubstreamRng parent(
      9, longdp::util::substream::kHistogramNoise);
  std::vector<int64_t> out(4096);
  for (auto _ : state) {
    for (size_t b = 0; b < out.size(); ++b) {
      longdp::util::SubstreamRng leaf =
          parent.Leaf(static_cast<uint64_t>(b));
      out[b] = longdp::dp::SampleDiscreteGaussian(sigma2, &leaf);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_DiscreteGaussianPerDraw)->Arg(100)->Arg(1000)->Arg(6000);

void BM_DiscreteGaussianBatched(benchmark::State& state) {
  const double sigma2 = static_cast<double>(state.range(0));
  const longdp::dp::NoiseSampler sampler =
      longdp::dp::NoiseSampler::Gaussian(sigma2);
  const longdp::util::SubstreamRng parent(
      9, longdp::util::substream::kHistogramNoise);
  std::vector<int64_t> out(4096);
  for (auto _ : state) {
    sampler.FillLeaves(parent, out.size(), out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_DiscreteGaussianBatched)->Arg(100)->Arg(1000)->Arg(6000);

// The fused observe-phase histogram: per-user window-code counting (the
// old slide-and-count inner loop) against the bit-plane PlaneHistogram
// kernel on whatever backend this host dispatches to. k=4 is the paper's
// quarterly window (2^k = 16 bins), where the kernel's cost — O(2^k) plane
// intersections over the packed words — is far below one pass over the
// lanes. The k=8 point is the adversarial end: uniformly random codes
// defeat the zero-branch pruning, so the per-lane loop wins there; the
// synthesizers' real histograms are clustered (and the experiments run
// k <= 4), which is the regime the kernel is dispatched in. The label
// records the active backend so the forced-scalar CI job's table is
// self-describing.

void BM_HistogramScalar(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const size_t lanes = size_t{1} << 18;
  longdp::util::SubstreamRng rng(10, longdp::util::substream::kGeneric);
  std::vector<uint32_t> code(lanes);
  const uint32_t mask = (uint32_t{1} << k) - 1;
  for (auto& c : code) c = static_cast<uint32_t>(rng.Next()) & mask;
  std::vector<int64_t> hist(size_t{1} << k);
  for (auto _ : state) {
    hist.assign(hist.size(), 0);
    for (uint32_t c : code) ++hist[c];
    benchmark::DoNotOptimize(hist.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(lanes));
}
BENCHMARK(BM_HistogramScalar)->Arg(4)->Arg(8);

void BM_HistogramSimd(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const size_t lanes = size_t{1} << 18;
  const size_t num_words = lanes / 64;
  longdp::util::SubstreamRng rng(10, longdp::util::substream::kGeneric);
  // Same codes as the scalar variant, bit-sliced across k planes.
  std::vector<std::vector<uint64_t>> plane_words(
      static_cast<size_t>(k), std::vector<uint64_t>(num_words, 0));
  const uint32_t mask = (uint32_t{1} << k) - 1;
  for (size_t l = 0; l < lanes; ++l) {
    const uint32_t c = static_cast<uint32_t>(rng.Next()) & mask;
    for (int j = 0; j < k; ++j) {
      if ((c >> j) & 1) {
        plane_words[static_cast<size_t>(j)][l / 64] |= uint64_t{1}
                                                       << (l % 64);
      }
    }
  }
  std::vector<const uint64_t*> planes;
  for (int j = 0; j < k; ++j) {
    planes.push_back(plane_words[static_cast<size_t>(j)].data());
  }
  std::vector<int64_t> hist(size_t{1} << k);
  for (auto _ : state) {
    hist.assign(hist.size(), 0);
    longdp::util::simd::PlaneHistogram(planes.data(), k, nullptr, num_words,
                                       hist.data());
    benchmark::DoNotOptimize(hist.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(lanes));
  state.SetLabel(longdp::util::simd::IsaLevelName(
      longdp::util::simd::ActiveIsaLevel()));
}
BENCHMARK(BM_HistogramSimd)->Arg(4)->Arg(8);

}  // namespace
