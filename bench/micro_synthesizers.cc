// Ablation A6 (part 2): end-to-end synthesizer throughput vs n, T, k —
// the cost of one full continual release at survey scale.

#include <benchmark/benchmark.h>

#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "data/generators.h"
#include "util/substream.h"

namespace {

using longdp::core::CumulativeSynthesizer;
using longdp::core::FixedWindowSynthesizer;
using longdp::util::SubstreamRng;
namespace substream = longdp::util::substream;

void BM_FixedWindowFullRun(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t T = state.range(1);
  const int k = static_cast<int>(state.range(2));
  SubstreamRng data_rng(1, substream::kDataset);
  auto ds = longdp::data::BernoulliIid(n, T, 0.2, &data_rng).value();
  for (auto _ : state) {
    FixedWindowSynthesizer::Options opt;
    opt.horizon = T;
    opt.window_k = k;
    opt.rho = 0.005;
    opt.seed = 2;
    auto synth = FixedWindowSynthesizer::Create(opt).value();
    for (int64_t t = 1; t <= T; ++t) {
      benchmark::DoNotOptimize(synth->ObserveRound(ds.Round(t)).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * n * T);
}
BENCHMARK(BM_FixedWindowFullRun)
    ->Args({1000, 12, 3})
    ->Args({23374, 12, 3})
    ->Args({100000, 12, 3})
    ->Args({23374, 12, 5})
    ->Args({23374, 12, 8})
    ->Args({23374, 48, 3})
    ->Unit(benchmark::kMillisecond);

void BM_CumulativeFullRun(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t T = state.range(1);
  SubstreamRng data_rng(3, substream::kDataset);
  auto ds = longdp::data::BernoulliIid(n, T, 0.2, &data_rng).value();
  for (auto _ : state) {
    CumulativeSynthesizer::Options opt;
    opt.horizon = T;
    opt.rho = 0.005;
    opt.seed = 4;
    auto synth = CumulativeSynthesizer::Create(opt).value();
    for (int64_t t = 1; t <= T; ++t) {
      benchmark::DoNotOptimize(synth->ObserveRound(ds.Round(t)).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * n * T);
}
BENCHMARK(BM_CumulativeFullRun)
    ->Args({1000, 12})
    ->Args({23374, 12})
    ->Args({100000, 12})
    ->Args({23374, 48})
    ->Unit(benchmark::kMillisecond);

void BM_FixedWindowSingleRound(benchmark::State& state) {
  // Steady-state per-round cost at SIPP scale (T large so rounds dominate).
  const int64_t n = state.range(0);
  const int64_t T = 1 << 20;
  SubstreamRng data_rng(5, substream::kDataset);
  std::vector<uint8_t> round(static_cast<size_t>(n));
  for (auto& b : round) b = data_rng.Bernoulli(0.2) ? 1 : 0;
  FixedWindowSynthesizer::Options opt;
  opt.horizon = T;
  opt.window_k = 3;
  opt.rho = 0.5;
  opt.seed = 6;
  auto synth = FixedWindowSynthesizer::Create(opt).value();
  for (auto _ : state) {
    if (synth->t() >= T) break;
    benchmark::DoNotOptimize(synth->ObserveRound(round).ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FixedWindowSingleRound)->Arg(23374)->Arg(100000);

}  // namespace
