// Ablation A5: padding sweep. n_pad trades off failure probability
// (negative counts that must be clamped, breaking the synthetic-data
// guarantee) against bias on the raw synthetic answers. The paper's
// recommended n_pad (Theorem 3.2) should show ~zero clamps; fractions of it
// should start failing.
//
// Flags: --reps=N (default 200) --rho=R --n=N
#include "bench_common.h"

namespace longdp {
namespace bench {
namespace {

Status Run(const harness::Flags& flags, harness::BenchReport* report) {
  const int64_t reps = flags.Reps(200);
  const double rho = flags.GetDouble("rho", 0.005);
  const int64_t n = flags.GetInt("n", 25000);
  const int64_t T = 12;
  const int k = 3;
  LONGDP_ASSIGN_OR_RETURN(auto ds, data::ExtremeAllZeros(n, T));
  LONGDP_ASSIGN_OR_RETURN(int64_t recommended,
                          core::theory::RecommendedNpad(T, k, rho, 0.05));

  report->set_description("A5: padding sweep on all-zeros data");
  report->SetParam("n", n);
  report->SetParam("T", T);
  report->SetParam("k", k);
  report->SetParam("rho", rho);
  report->SetParam("reps", reps);
  report->SetParam("recommended_npad", recommended);

  std::cout << "== A5: padding sweep (all-zeros data: 7 of 8 bins at true "
               "count 0, the hardest case for negativity) ==\n"
            << "n=" << n << " T=" << T << " k=" << k << " rho=" << rho
            << " reps=" << reps << " recommended npad=" << recommended
            << "\n\n";

  harness::Table table({"npad", "runs_with_clamps", "mean_clamps/run",
                        "biased_err(all3)", "debiased_err(all3)"});
  auto& series = report->AddSeries("padding_sweep");
  harness::BenchReport::PhaseTimer timer(report, "sweep");
  std::vector<int64_t> npads = {0, recommended / 4, recommended / 2,
                                recommended, recommended * 2};
  auto pred = query::MakeAllOnes(3);
  double truth = 0.0;  // all-zeros data: nobody in poverty all quarter
  for (int64_t npad : npads) {
    std::vector<double> clamps(static_cast<size_t>(reps), 0.0);
    std::vector<double> biased_err(static_cast<size_t>(reps), 0.0);
    std::vector<double> debiased_err(static_cast<size_t>(reps), 0.0);
    LONGDP_RETURN_NOT_OK(harness::RunRepetitions(
        reps, kRunSeed + 500, [&](int64_t rep, uint64_t rep_seed) {
          core::FixedWindowSynthesizer::Options opt;
          opt.horizon = T;
          opt.window_k = k;
          opt.rho = rho;
          opt.npad = npad;
          opt.seed = rep_seed;
          LONGDP_ASSIGN_OR_RETURN(
              auto synth, core::FixedWindowSynthesizer::Create(opt));
          for (int64_t t = 1; t <= T; ++t) {
            LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
          }
          clamps[static_cast<size_t>(rep)] =
              static_cast<double>(synth->stats().negative_clamps);
          LONGDP_ASSIGN_OR_RETURN(double b, synth->BiasedAnswer(*pred));
          LONGDP_ASSIGN_OR_RETURN(double d, synth->DebiasedAnswer(*pred));
          biased_err[static_cast<size_t>(rep)] = std::fabs(b - truth);
          debiased_err[static_cast<size_t>(rep)] = std::fabs(d - truth);
          return Status::OK();
        }));
    int64_t runs_with_clamps = 0;
    for (double c : clamps) {
      if (c > 0) ++runs_with_clamps;
    }
    double mean_clamps = harness::Summarize(clamps).mean;
    double mean_biased = harness::Summarize(biased_err).mean;
    double mean_debiased = harness::Summarize(debiased_err).mean;
    LONGDP_RETURN_NOT_OK(table.AddRow(
        {std::to_string(npad), std::to_string(runs_with_clamps),
         harness::Table::Val(mean_clamps, 2),
         harness::Table::Val(mean_biased, 5),
         harness::Table::Val(mean_debiased, 5)}));
    series.AddRow()
        .Label("npad", std::to_string(npad))
        .Value("runs_with_clamps", static_cast<double>(runs_with_clamps))
        .Value("mean_clamps_per_run", mean_clamps)
        .Value("biased_err_all3", mean_biased)
        .Value("debiased_err_all3", mean_debiased);
  }
  timer.Stop();
  table.Print(std::cout);
  std::cout << "\nDebiasing removes the padding bias regardless of npad; "
               "small npad trades\nbias for clamp failures that break the "
               "per-bin guarantee.\n";
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::Run(flags, &report);
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
