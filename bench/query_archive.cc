// Archive query serving vs per-query CSV reload, over 1000+ stored
// releases.
//
// The curator phase runs `--runs` (default 46) independent synthesizer
// executions over the same SIPP-like ground truth — each contributing 10
// window + 12 cumulative releases (1012 releases at the default) — and
// persists every run twice: as a per-run release-log CSV and as label
// "run<i>" in ONE columnar archive, which also stores run 0's synthetic
// panel as packed round columns. The analyst phase then answers the same
// query batch both ways:
//
//   csv path      re-loads the run's CSV (and, for spells, re-loads the
//                 panel CSV) for EVERY query — the pre-archive workflow;
//   archive path  one mmap open, then Exec serves each query in place.
//
// Every answer pair is required to be bit-identical (Status::Internal on
// the first mismatch) and the archive throughput must be >= 5x the CSV
// path — both gates run inside the bench, every time, before the report
// is written. The gated "answers" series stores the per-family means; the
// "throughput" series (queries/sec) is informational and CI diffs with
// --ignore=throughput.
//
// Flags: --runs=N --rho=R --json[=PATH]
#include <chrono>
#include <cstdio>

#include "archive/exec.h"
#include "archive/reader.h"
#include "archive/writer.h"
#include "bench_common.h"
#include "core/release_analyzer.h"
#include "core/release_log.h"
#include "query/spells.h"

namespace longdp {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Status Run(const harness::Flags& flags, harness::BenchReport* report) {
  const int64_t T = 12;
  const int k = 3;
  const int64_t runs = flags.GetInt("runs", 46);
  const double rho = flags.GetDouble("rho", 0.005);
  const std::string dir = flags.GetString("tmpdir", "/tmp");
  const std::string archive_path = dir + "/longdp_bench_query_archive.ldpa";
  const std::string panel_path = dir + "/longdp_bench_query_archive_panel.csv";
  auto run_csv = [&](int64_t i) {
    return dir + "/longdp_bench_query_archive_run" + std::to_string(i) +
           ".csv";
  };

  report->set_description(
      "query serving from the columnar archive vs per-query CSV reload; "
      "answers gated bit-identical, throughput gated >= 5x");
  report->SetParam("T", T);
  report->SetParam("k", k);
  report->SetParam("runs", runs);
  report->SetParam("rho", rho);

  // ---- Curator phase: build the archive and the CSV twins ----------------
  data::SippOptions sipp;
  sipp.num_households = 2000;
  LONGDP_ASSIGN_OR_RETURN(auto ds, data::SimulateSipp(sipp, kDatasetSeed));

  const auto curate_start = std::chrono::steady_clock::now();
  LONGDP_ASSIGN_OR_RETURN(auto writer,
                          archive::ArchiveWriter::Create(archive_path));
  int64_t releases = 0;
  for (int64_t i = 0; i < runs; ++i) {
    core::FixedWindowSynthesizer::Options fopt;
    fopt.horizon = T;
    fopt.window_k = k;
    fopt.rho = rho;
    fopt.seed = kRunSeed + static_cast<uint64_t>(i);
    LONGDP_ASSIGN_OR_RETURN(auto fsynth,
                            core::FixedWindowSynthesizer::Create(fopt));
    core::CumulativeSynthesizer::Options copt;
    copt.horizon = T;
    copt.rho = rho;
    copt.seed = kRunSeed + 100000 + static_cast<uint64_t>(i);
    LONGDP_ASSIGN_OR_RETURN(auto csynth,
                            core::CumulativeSynthesizer::Create(copt));
    core::ReleaseLog log;
    for (int64_t t = 1; t <= T; ++t) {
      LONGDP_RETURN_NOT_OK(fsynth->ObserveRound(ds.Round(t)));
      LONGDP_RETURN_NOT_OK(csynth->ObserveRound(ds.Round(t)));
      LONGDP_RETURN_NOT_OK(log.Capture(*fsynth));
      LONGDP_RETURN_NOT_OK(log.Capture(*csynth));
    }
    releases += static_cast<int64_t>(log.window_releases().size() +
                                     log.cumulative_releases().size());
    LONGDP_RETURN_NOT_OK(log.WriteCsv(run_csv(i)));
    LONGDP_RETURN_NOT_OK(
        writer.AppendReleaseLog("run" + std::to_string(i), log));
    if (i == 0) {
      LONGDP_ASSIGN_OR_RETURN(auto panel, fsynth->cohort().ToDataset(T));
      LONGDP_RETURN_NOT_OK(data::WriteSippBitsCsv(panel, panel_path));
      LONGDP_RETURN_NOT_OK(writer.AppendCohort("panel", panel));
    }
  }
  LONGDP_RETURN_NOT_OK(writer.Finish());
  report->RecordPhaseSeconds("curate", Seconds(curate_start));

  // ---- Analyst phase: the same query batch, both ways --------------------
  auto pred_quarter = query::MakeAtLeastOnes(k, 2);
  auto pred_all = query::MakeAllOnes(k);
  const std::vector<int64_t> cumulative_bs = {1, 3, 5};

  struct Answers {
    std::vector<double> window;      // per run x pred
    std::vector<double> cumulative;  // per run x b
    std::vector<double> spells;      // the 3 spell statistics
  };

  // CSV path: one LoadCsv (or panel reload) per query, the workflow this
  // subsystem replaces.
  Answers csv;
  const auto csv_start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < runs; ++i) {
    for (const auto& pred : {pred_quarter, pred_all}) {
      LONGDP_ASSIGN_OR_RETURN(auto log, core::ReleaseLog::LoadCsv(run_csv(i)));
      core::ReleaseAnalyzer analyzer(log);
      LONGDP_ASSIGN_OR_RETURN(const double v,
                              analyzer.WindowFraction(T, *pred));
      csv.window.push_back(v);
    }
    for (int64_t b : cumulative_bs) {
      LONGDP_ASSIGN_OR_RETURN(auto log, core::ReleaseLog::LoadCsv(run_csv(i)));
      core::ReleaseAnalyzer analyzer(log);
      LONGDP_ASSIGN_OR_RETURN(const double v, analyzer.CumulativeFraction(T, b));
      csv.cumulative.push_back(v);
    }
  }
  {
    LONGDP_ASSIGN_OR_RETURN(auto panel, data::LoadSippBitsCsv(panel_path));
    LONGDP_ASSIGN_OR_RETURN(const double v, query::EverHadSpell(panel, T, 3));
    csv.spells.push_back(v);
  }
  {
    LONGDP_ASSIGN_OR_RETURN(auto panel, data::LoadSippBitsCsv(panel_path));
    LONGDP_ASSIGN_OR_RETURN(const double v,
                            query::OngoingSpellAtLeast(panel, T, 2));
    csv.spells.push_back(v);
  }
  {
    LONGDP_ASSIGN_OR_RETURN(auto panel, data::LoadSippBitsCsv(panel_path));
    LONGDP_ASSIGN_OR_RETURN(const double v, query::MeanSpellLength(panel, T));
    csv.spells.push_back(v);
  }
  const double csv_seconds = Seconds(csv_start);
  const int64_t num_queries =
      static_cast<int64_t>(csv.window.size() + csv.cumulative.size() +
                           csv.spells.size());

  // Archive path: one verified open, then everything served in place.
  Answers arch;
  const auto arch_start = std::chrono::steady_clock::now();
  LONGDP_ASSIGN_OR_RETURN(auto reader,
                          archive::ArchiveReader::Open(archive_path));
  archive::Exec exec(reader);
  for (int64_t i = 0; i < runs; ++i) {
    LONGDP_ASSIGN_OR_RETURN(const uint32_t label,
                            reader.FindLabel("run" + std::to_string(i)));
    archive::Exec::Filter windows;
    windows.kind = archive::EntryKind::kWindow;
    windows.label_id = label;
    windows.t_min = T;
    archive::Exec::Filter cumulative;
    cumulative.kind = archive::EntryKind::kCumulative;
    cumulative.label_id = label;
    cumulative.t_min = T;
    const auto wsel = exec.Select(windows);
    const auto csel = exec.Select(cumulative);
    if (wsel.size() != 1 || csel.size() != 1) {
      return Status::Internal("expected one t=T entry per kind per run");
    }
    for (const auto& pred : {pred_quarter, pred_all}) {
      LONGDP_ASSIGN_OR_RETURN(const double v,
                              exec.DebiasedWindowFraction(*wsel[0], *pred));
      arch.window.push_back(v);
    }
    for (int64_t b : cumulative_bs) {
      LONGDP_ASSIGN_OR_RETURN(const double v,
                              exec.CumulativeFraction(*csel[0], b));
      arch.cumulative.push_back(v);
    }
  }
  {
    archive::Exec::Filter cohorts;
    cohorts.kind = archive::EntryKind::kCohort;
    const auto sel = exec.Select(cohorts);
    if (sel.size() != 1) return Status::Internal("expected one stored panel");
    LONGDP_ASSIGN_OR_RETURN(const double ever,
                            exec.CohortEverHadSpell(*sel[0], T, 3));
    arch.spells.push_back(ever);
    LONGDP_ASSIGN_OR_RETURN(const double ongoing,
                            exec.CohortOngoingSpellAtLeast(*sel[0], T, 2));
    arch.spells.push_back(ongoing);
    LONGDP_ASSIGN_OR_RETURN(const double mean,
                            exec.CohortMeanSpellLength(*sel[0], T));
    arch.spells.push_back(mean);
  }
  const double arch_seconds = Seconds(arch_start);
  report->RecordPhaseSeconds("serve_csv", csv_seconds);
  report->RecordPhaseSeconds("serve_archive", arch_seconds);

  // ---- Gates (run in-bench, before any report is written) ----------------
  auto require_identical = [](const std::vector<double>& a,
                              const std::vector<double>& b,
                              const char* family) {
    if (a.size() != b.size()) {
      return Status::Internal(std::string(family) + ": answer count differs");
    }
    for (size_t j = 0; j < a.size(); ++j) {
      if (a[j] != b[j]) {
        return Status::Internal(std::string(family) + " answer " +
                                std::to_string(j) +
                                " differs between archive and CSV paths");
      }
    }
    return Status::OK();
  };
  LONGDP_RETURN_NOT_OK(require_identical(csv.window, arch.window, "window"));
  LONGDP_RETURN_NOT_OK(
      require_identical(csv.cumulative, arch.cumulative, "cumulative"));
  LONGDP_RETURN_NOT_OK(require_identical(csv.spells, arch.spells, "spells"));

  const double csv_qps = static_cast<double>(num_queries) / csv_seconds;
  const double arch_qps = static_cast<double>(num_queries) / arch_seconds;
  if (arch_qps < 5.0 * csv_qps) {
    return Status::Internal(
        "archive throughput regression: " + std::to_string(arch_qps) +
        " qps vs CSV " + std::to_string(csv_qps) + " qps (< 5x)");
  }

  auto mean = [](const std::vector<double>& v) {
    double sum = 0.0;
    for (double x : v) sum += x;
    return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
  };
  auto& answers = report->AddSeries("answers");
  answers.AddRow()
      .Label("family", "window")
      .Value("mean", mean(arch.window));
  answers.AddRow()
      .Label("family", "cumulative")
      .Value("mean", mean(arch.cumulative));
  answers.AddRow()
      .Label("family", "spells")
      .Value("mean", mean(arch.spells));
  auto& throughput = report->AddSeries("throughput");
  throughput.AddRow()
      .Label("path", "csv_reload")
      .Value("qps", csv_qps);
  throughput.AddRow()
      .Label("path", "archive")
      .Value("qps", arch_qps);

  std::printf("== query_archive: %lld releases across %lld runs ==\n",
              static_cast<long long>(releases),
              static_cast<long long>(runs));
  std::printf("queries: %lld per path, answers bit-identical\n",
              static_cast<long long>(num_queries));
  std::printf("csv reload: %8.1f queries/sec (%.3fs)\n", csv_qps,
              csv_seconds);
  std::printf("archive:    %8.1f queries/sec (%.3fs)  -> %.1fx\n", arch_qps,
              arch_seconds, arch_qps / csv_qps);

  for (int64_t i = 0; i < runs; ++i) std::remove(run_csv(i).c_str());
  std::remove(panel_path.c_str());
  std::remove(archive_path.c_str());
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::Run(flags, &report);
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
