// Million-user scale-out: observe+release wall-clock and peak RSS for both
// synthesizers at n in {23374, 1M, 5M} (plus 10M with --full), each run at
// shard counts {1, 4, 16} on the same keyed dataset.
//
// The substream RNG makes the released values a pure function of
// (seed, purpose, shard-invariant address), so this bench doubles as an
// equality gate: for every (algorithm, n) cell it folds the FULL release
// log (every round, every bin/threshold) into a digest and fails hard if
// any shard count produces a different log. The gated JSON series records
// the final-round release values once per (algorithm, n); the per-cell
// wall-clock lands in the report's phase table and peak RSS in the
// "peak_rss_mb" series (informational — CI diffs with
// --ignore=peak_rss_mb, timings are never gated).
//
// Flags: --full (adds n=10M) --threads=P (pool lanes, default 4)
//        --json[=PATH] --csv=prefix
#include <sys/resource.h>

#include "bench_common.h"

namespace longdp {
namespace bench {
namespace {

double PeakRssMb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  // Linux reports ru_maxrss in kilobytes (macOS in bytes; this bench's
  // baseline is recorded on Linux, where the CI gate runs).
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

struct CellResult {
  double seconds = 0.0;
  uint64_t digest = 0;              // full release log, every round
  std::vector<int64_t> final_row;   // last release (histogram/thresholds)
  int64_t npad = 0;
};

Result<CellResult> RunFixedWindow(const data::LongitudinalDataset& ds,
                                  int64_t T, int k, double rho,
                                  util::ThreadPool* pool) {
  CellResult out;
  core::FixedWindowSynthesizer::Options opt;
  opt.horizon = T;
  opt.window_k = k;
  opt.rho = rho;
  opt.seed = kRunSeed + 900;
  opt.pool = pool;
  const auto start = std::chrono::steady_clock::now();
  LONGDP_ASSIGN_OR_RETURN(auto synth,
                          core::FixedWindowSynthesizer::Create(opt));
  uint64_t digest = 0;
  for (int64_t t = 1; t <= T; ++t) {
    LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
    if (!synth->has_release()) continue;
    out.final_row = synth->SyntheticHistogram();
    for (int64_t v : out.final_row) {
      digest = Mix(digest, static_cast<uint64_t>(v));
    }
  }
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out.digest = digest;
  out.npad = synth->npad();
  return out;
}

Result<CellResult> RunCumulative(const data::LongitudinalDataset& ds,
                                 int64_t T, double rho,
                                 util::ThreadPool* pool) {
  CellResult out;
  core::CumulativeSynthesizer::Options opt;
  opt.horizon = T;
  opt.rho = rho;
  opt.seed = kRunSeed + 901;
  opt.pool = pool;
  const auto start = std::chrono::steady_clock::now();
  LONGDP_ASSIGN_OR_RETURN(auto synth,
                          core::CumulativeSynthesizer::Create(opt));
  uint64_t digest = 0;
  for (int64_t t = 1; t <= T; ++t) {
    LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
    out.final_row = synth->released_thresholds();
    for (int64_t v : out.final_row) {
      digest = Mix(digest, static_cast<uint64_t>(v));
    }
  }
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out.digest = digest;
  return out;
}

Status Run(const harness::Flags& flags, harness::BenchReport* report) {
  const int64_t T = 12;
  const int k = 3;
  const double rho = 0.005;
  const int64_t threads = flags.Threads(4);
  std::vector<int64_t> sizes = {23374, 1000000, 5000000};
  if (flags.Has("full")) sizes.push_back(10000000);
  const std::vector<int> shard_counts = {1, 4, 16};

  report->set_description(
      "million-user scale-out: wall-clock, peak RSS, and shard-count "
      "equality of the full release log");
  report->SetParam("T", T);
  report->SetParam("k", k);
  report->SetParam("rho", rho);
  report->SetParam("threads", threads);
  report->SetParam("full", flags.Has("full") ? "true" : "false");

  std::cout << "== scaling_users: observe+release at survey scale ==\n"
            << "T=" << T << " k=" << k << " rho=" << rho
            << " pool lanes=" << threads << " shards={1,4,16}\n\n";

  harness::Table table({"n", "algo", "shards", "observe_s", "peak_rss_mb",
                        "log_digest"});
  // Row data is buffered and emitted after the sweep: BenchReport::AddSeries
  // returns a reference into a vector, so the two series must be built one
  // after the other, not interleaved.
  struct RssRow {
    std::string algo;
    int64_t n;
    int shards;
    double rss_mb;
  };
  std::vector<RssRow> rss_rows;
  struct FinalRow {
    std::string algo;
    int64_t n;
    std::vector<int64_t> values;
    int64_t npad;
    bool fixed;
  };
  std::vector<FinalRow> final_rows;

  for (int64_t n : sizes) {
    // Keyed dataset generation is itself sharded and shard-invariant; the
    // pool only affects wall-clock.
    util::ThreadPool gen_pool(static_cast<int>(threads));
    data::MarkovParams params;
    params.initial_rate = 0.10;
    params.entry_prob = 0.03;
    params.exit_prob = 0.25;
    LONGDP_ASSIGN_OR_RETURN(
        auto ds, data::TwoStateMarkov(n, T, params,
                                      kDatasetSeed + static_cast<uint64_t>(n),
                                      &gen_pool));

    for (const char* algo : {"fixed_window", "cumulative"}) {
      const bool fixed = std::string(algo) == "fixed_window";
      uint64_t reference_digest = 0;
      CellResult reference;
      for (size_t si = 0; si < shard_counts.size(); ++si) {
        const int shards = shard_counts[si];
        std::unique_ptr<util::ThreadPool> pool;
        if (shards > 1) {
          pool = std::make_unique<util::ThreadPool>(
              static_cast<int>(threads), shards);
        }
        CellResult cell;
        LONGDP_ASSIGN_OR_RETURN(
            cell, fixed ? RunFixedWindow(ds, T, k, rho, pool.get())
                        : RunCumulative(ds, T, rho, pool.get()));
        const std::string cell_name = std::string("observe_") + algo + "_n" +
                                      std::to_string(n) + "_s" +
                                      std::to_string(shards);
        report->RecordPhaseSeconds(cell_name, cell.seconds);
        const double rss = PeakRssMb();
        rss_rows.push_back({algo, n, shards, rss});
        std::ostringstream digest_hex;
        digest_hex << std::hex << cell.digest;
        LONGDP_RETURN_NOT_OK(table.AddRow(
            {std::to_string(n), algo, std::to_string(shards),
             harness::Table::Val(cell.seconds, 3),
             harness::Table::Val(rss, 1), digest_hex.str()}));
        if (si == 0) {
          reference_digest = cell.digest;
          reference = cell;
        } else if (cell.digest != reference_digest) {
          return Status::Internal(
              "release log diverged: " + std::string(algo) + " n=" +
              std::to_string(n) + " shards=" + std::to_string(shards) +
              " does not reproduce the shards=1 log");
        }
      }
      // One gated row per (algo, n): the final-round release values, which
      // the digest check above proved shard-count-invariant.
      final_rows.push_back({algo, n, reference.final_row, reference.npad,
                            fixed});
    }
  }

  auto& series = report->AddSeries("final_release");
  for (const FinalRow& fr : final_rows) {
    auto& row = series.AddRow()
                    .Label("algo", fr.algo)
                    .Label("n", std::to_string(fr.n));
    for (size_t b = 0; b < fr.values.size(); ++b) {
      std::string key = "v";
      key += std::to_string(b);
      row.Value(key, static_cast<double>(fr.values[b]));
    }
    if (fr.fixed) row.Value("npad", static_cast<double>(fr.npad));
  }
  auto& rss_series = report->AddSeries("peak_rss_mb");
  for (const RssRow& rr : rss_rows) {
    rss_series.AddRow()
        .Label("algo", rr.algo)
        .Label("n", std::to_string(rr.n))
        .Label("shards", std::to_string(rr.shards))
        .Value("peak_rss_mb", rr.rss_mb);
  }

  table.Print(std::cout);
  std::cout << "\nevery (algo, n) cell released a byte-identical log at "
               "shards 1, 4, and 16\n";
  std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    LONGDP_RETURN_NOT_OK(table.WriteCsv(csv + ".csv"));
  }
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::Run(flags, &report);
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
