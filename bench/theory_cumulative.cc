// Ablation A2: Algorithm 2's measured max fraction error vs the Corollary
// B.1 closed form, and the cubic-log budget split vs a uniform split.
//
// Flags: --reps=N (default 200) --n=N --rho=R
#include "bench_common.h"

namespace longdp {
namespace bench {
namespace {

Result<std::vector<double>> MeasureMaxErrors(
    const data::LongitudinalDataset& ds, int64_t reps, double rho,
    stream::BudgetSplit split) {
  const int64_t T = ds.rounds();
  std::vector<double> max_errors(static_cast<size_t>(reps), 0.0);
  // Precompute truths.
  std::vector<std::vector<double>> truth(static_cast<size_t>(T) + 1);
  for (int64_t t = 1; t <= T; ++t) {
    truth[static_cast<size_t>(t)].resize(static_cast<size_t>(T) + 1);
    for (int64_t b = 1; b <= T; ++b) {
      LONGDP_ASSIGN_OR_RETURN(
          truth[static_cast<size_t>(t)][static_cast<size_t>(b)],
          query::EvaluateCumulativeOnDataset(ds, t, b));
    }
  }
  LONGDP_RETURN_NOT_OK(harness::RunRepetitions(
      reps, kRunSeed + 200, [&](int64_t rep, uint64_t rep_seed) {
        core::CumulativeSynthesizer::Options opt;
        opt.horizon = T;
        opt.rho = rho;
        opt.split = split;
        opt.seed = rep_seed;
        LONGDP_ASSIGN_OR_RETURN(auto synth,
                                core::CumulativeSynthesizer::Create(opt));
        double max_err = 0.0;
        for (int64_t t = 1; t <= T; ++t) {
          LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
          for (int64_t b = 1; b <= t; ++b) {
            LONGDP_ASSIGN_OR_RETURN(double est, synth->Answer(b));
            max_err = std::max(
                max_err,
                std::fabs(est - truth[static_cast<size_t>(t)]
                                      [static_cast<size_t>(b)]));
          }
        }
        max_errors[static_cast<size_t>(rep)] = max_err;
        return Status::OK();
      }));
  return max_errors;
}

Status Run(const harness::Flags& flags, harness::BenchReport* report) {
  const int64_t reps = flags.Reps(200);
  const double rho = flags.GetDouble("rho", 0.005);
  const double beta = 0.05;
  LONGDP_ASSIGN_OR_RETURN(auto ds, MakeSippDataset(flags));

  report->set_description("A2: Corollary B.1 bound & budget-split ablation");
  report->SetParam("n", ds.num_users());
  report->SetParam("T", ds.rounds());
  report->SetParam("rho", rho);
  report->SetParam("reps", reps);
  report->SetParam("beta", beta);

  std::cout << "== A2: Corollary B.1 bound & budget-split ablation ==\n"
            << "SIPP-like data, n=" << ds.num_users() << " T=12 rho=" << rho
            << " reps=" << reps << "\n\n";

  LONGDP_ASSIGN_OR_RETURN(
      double bound, core::theory::CumulativeFractionErrorBound(
                        ds.rounds(), rho, beta, ds.num_users()));

  harness::Table table({"budget_split", "median_max_err", "q97.5_max_err",
                        "mean_max_err", "theory_bound(beta=0.05)"});
  auto& series = report->AddSeries("budget_split");
  harness::BenchReport::PhaseTimer timer(report, "repetitions");
  for (auto split : {stream::BudgetSplit::kCubicLogLevels,
                     stream::BudgetSplit::kUniform}) {
    LONGDP_ASSIGN_OR_RETURN(auto errors,
                            MeasureMaxErrors(ds, reps, rho, split));
    auto s = harness::Summarize(errors);
    LONGDP_RETURN_NOT_OK(table.AddRow(
        {stream::BudgetSplitName(split), harness::Table::Val(s.median),
         harness::Table::Val(s.q975), harness::Table::Val(s.mean),
         harness::Table::Val(bound)}));
    series.AddRow()
        .Label("budget_split", stream::BudgetSplitName(split))
        .Value("theory_bound", bound)
        .Summary(s);
  }
  timer.Stop();
  table.Print(std::cout);
  std::cout << "\nThe cubic-log split (Corollary B.1) equalizes per-counter "
               "worst cases;\nthe uniform split over-provisions "
               "short-stream counters.\n";
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::Run(flags, &report);
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
