// Ablation A1: empirical max bin error of Algorithm 1 vs the Theorem 3.2
// closed form, across a (T, k, rho) grid, plus the empirical failure rate
// (how often the max error exceeds the bound; should be < beta).
//
// Flags: --reps=N (default 100) --n=N
#include "bench_common.h"

namespace longdp {
namespace bench {
namespace {

Status Run(const harness::Flags& flags, harness::BenchReport* report) {
  const int64_t reps = flags.Reps(100);
  const int64_t n = flags.GetInt("n", 10000);
  const double beta = 0.05;

  report->set_description(
      "A1: Theorem 3.2 bound vs measured max bin error");
  report->SetParam("n", n);
  report->SetParam("reps", reps);
  report->SetParam("beta", beta);

  struct GridPoint {
    int64_t T;
    int k;
    double rho;
  };
  std::vector<GridPoint> grid = {
      {12, 3, 0.001}, {12, 3, 0.005}, {12, 3, 0.05}, {12, 2, 0.005},
      {12, 5, 0.005}, {24, 3, 0.005}, {6, 3, 0.005},
  };

  std::cout << "== A1: Theorem 3.2 bound vs measured max bin error ==\n"
            << "all-ones data, n=" << n << ", reps=" << reps
            << ", beta=" << beta << "\n\n";
  harness::Table table({"T", "k", "rho", "theory_bound", "median_max_err",
                        "q97.5_max_err", "exceed_rate"});
  auto& series = report->AddSeries("max_bin_error");
  harness::BenchReport::PhaseTimer timer(report, "grid");

  for (const auto& g : grid) {
    LONGDP_ASSIGN_OR_RETURN(auto ds, data::ExtremeAllOnes(n, g.T));
    LONGDP_ASSIGN_OR_RETURN(
        double bound,
        core::theory::MaxBinCountErrorBound(g.T, g.k, g.rho, beta));
    std::vector<double> max_errors(static_cast<size_t>(reps), 0.0);
    LONGDP_RETURN_NOT_OK(harness::RunRepetitions(
        reps, kRunSeed + 100, [&](int64_t rep, uint64_t rep_seed) {
          core::FixedWindowSynthesizer::Options opt;
          opt.horizon = g.T;
          opt.window_k = g.k;
          opt.rho = g.rho;
          opt.seed = rep_seed;
          LONGDP_ASSIGN_OR_RETURN(
              auto synth, core::FixedWindowSynthesizer::Create(opt));
          double max_err = 0.0;
          for (int64_t t = 1; t <= g.T; ++t) {
            LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
            if (!synth->has_release()) continue;
            auto hist = synth->SyntheticHistogram();
            LONGDP_ASSIGN_OR_RETURN(auto truth,
                                    ds.WindowHistogram(t, g.k));
            for (size_t s = 0; s < hist.size(); ++s) {
              max_err = std::max(
                  max_err,
                  std::fabs(static_cast<double>(
                      hist[s] - (truth[s] + synth->npad()))));
            }
          }
          max_errors[static_cast<size_t>(rep)] = max_err;
          return Status::OK();
        }));
    auto s = harness::Summarize(max_errors);
    int64_t exceed = 0;
    for (double e : max_errors) {
      if (e > bound) ++exceed;
    }
    double exceed_rate =
        static_cast<double>(exceed) / static_cast<double>(reps);
    LONGDP_RETURN_NOT_OK(table.AddRow(
        {std::to_string(g.T), std::to_string(g.k), harness::Table::Num(g.rho, 4),
         harness::Table::Val(bound, 1), harness::Table::Val(s.median, 1),
         harness::Table::Val(s.q975, 1),
         harness::Table::Val(exceed_rate, 3)}));
    series.AddRow()
        .Label("T", std::to_string(g.T))
        .Label("k", std::to_string(g.k))
        .Label("rho", util::FormatDoubleRoundTrip(g.rho))
        .Value("theory_bound", bound)
        .Value("exceed_rate", exceed_rate)
        .Summary(s);
  }
  timer.Stop();
  table.Print(std::cout);
  std::cout << "\nexceed_rate should stay below beta = " << beta
            << " (the bound is a high-probability guarantee).\n";
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  auto report = longdp::bench::MakeReport(flags);
  auto st = longdp::bench::Run(flags, &report);
  return longdp::bench::FinishAndExit(flags, report, std::move(st));
}
