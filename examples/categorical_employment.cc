// Categorical extension of Algorithm 1: monthly employment *status* with
// three categories (employed / unemployed / out of labor force), window
// k = 2 — the "more than 2 categories" generalization the paper notes.
//
//   $ ./build/examples/categorical_employment [--rho=0.01]

#include <cstdio>
#include <vector>

#include "harness/flags.h"
#include "longdp.h"

namespace {

// Simple 3-state monthly transition chain.
constexpr int kEmployed = 0, kUnemployed = 1, kOutOfLf = 2;

std::vector<std::vector<uint8_t>> SimulatePanel(int64_t n, int64_t horizon,
                                                longdp::util::Rng* rng) {
  // Transition matrix rows (from-state): to employed/unemployed/out.
  const double P[3][3] = {
      {0.96, 0.02, 0.02},  // employed is sticky
      {0.25, 0.65, 0.10},  // unemployed resolves or discourages
      {0.05, 0.03, 0.92},  // out of labor force is sticky
  };
  std::vector<uint8_t> state(static_cast<size_t>(n));
  for (auto& s : state) {
    double u = rng->UniformDouble();
    s = u < 0.62 ? kEmployed : (u < 0.68 ? kUnemployed : kOutOfLf);
  }
  std::vector<std::vector<uint8_t>> rounds;
  for (int64_t t = 0; t < horizon; ++t) {
    if (t > 0) {
      for (auto& s : state) {
        double u = rng->UniformDouble();
        const double* row = P[s];
        s = u < row[0] ? kEmployed
                       : (u < row[0] + row[1] ? kUnemployed : kOutOfLf);
      }
    }
    rounds.push_back(state);
  }
  return rounds;
}

const char* StateName(int s) {
  switch (s) {
    case kEmployed:
      return "E";
    case kUnemployed:
      return "U";
    default:
      return "O";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace longdp;
  auto flags = harness::Flags::Parse(argc, argv);
  const double rho = flags.GetDouble("rho", 0.01);
  const int64_t kN = 20000, kT = 12;
  const int kK = 2, kA = 3;

  util::SubstreamRng rng(9, util::substream::kDataset);
  auto rounds = SimulatePanel(kN, kT, &rng);

  core::CategoricalWindowSynthesizer::Options options;
  options.horizon = kT;
  options.window_k = kK;
  options.alphabet = kA;
  options.rho = rho;
  options.seed = 11;
  auto synth = core::CategoricalWindowSynthesizer::Create(options).value();
  std::printf("%lld workers x %lld months, alphabet {E,U,O}, k=%d, "
              "rho=%g, npad=%lld\n\n",
              static_cast<long long>(kN), static_cast<long long>(kT), kK,
              rho, static_cast<long long>(synth->npad()));

  for (int64_t t = 0; t < kT; ++t) {
    Status st = synth->ObserveRound(rounds[static_cast<size_t>(t)]);
    if (!st.ok()) {
      std::fprintf(stderr, "release failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Month-over-month transition shares from the final window release:
  // the 9 two-month patterns, debiased, vs ground truth.
  std::printf("two-month pattern shares at t=%lld (prev -> current):\n",
              static_cast<long long>(kT));
  std::printf("%-10s %-10s %-10s\n", "pattern", "truth", "DP debiased");
  std::vector<int64_t> truth(9, 0);
  for (int64_t i = 0; i < kN; ++i) {
    int prev = rounds[static_cast<size_t>(kT - 2)][static_cast<size_t>(i)];
    int cur = rounds[static_cast<size_t>(kT - 1)][static_cast<size_t>(i)];
    ++truth[static_cast<size_t>(prev * 3 + cur)];
  }
  for (uint64_t s = 0; s < 9; ++s) {
    double truth_frac =
        static_cast<double>(truth[s]) / static_cast<double>(kN);
    double estimate = synth->DebiasedBinFraction(s).value();
    std::printf("%s->%-7s %-10.4f %-10.4f\n",
                StateName(static_cast<int>(s / 3)),
                StateName(static_cast<int>(s % 3)), truth_frac, estimate);
  }
  std::printf("\nnegative clamps: %lld, remainder draws: %lld, zCDP spent: "
              "%.6f\n",
              static_cast<long long>(synth->stats().negative_clamps),
              static_cast<long long>(synth->stats().remainder_draws),
              synth->accountant().spent());
  return 0;
}
