// Checkpointed monthly release pipeline: in production, the 12-month
// horizon is 12 separate batch jobs months apart. This example simulates
// that: each "job" loads the previous checkpoint, ingests one month of
// reports, publishes the release, saves the checkpoint, and EXITS (here:
// destroys the synthesizer object). Both algorithms run side by side; the
// invariants survive every restart.
//
//   $ ./build/examples/monthly_pipeline [--rho=0.01]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/flags.h"
#include "longdp.h"

namespace {

using namespace longdp;

// One month's batch job for Algorithm 1. Returns the debiased quarterly
// answer when a quarter completes.
Status RunWindowJob(const std::string& checkpoint_path, int64_t month,
                    data::RoundView reports, double rho, uint64_t seed) {
  std::unique_ptr<core::FixedWindowSynthesizer> synth;
  if (month == 1) {
    core::FixedWindowSynthesizer::Options opt;
    opt.horizon = 12;
    opt.window_k = 3;
    opt.rho = rho;
    opt.seed = seed;
    LONGDP_ASSIGN_OR_RETURN(synth,
                            core::FixedWindowSynthesizer::Create(opt));
  } else {
    std::ifstream in(checkpoint_path);
    if (!in) return Status::IOError("missing checkpoint " + checkpoint_path);
    LONGDP_ASSIGN_OR_RETURN(synth,
                            core::FixedWindowSynthesizer::LoadCheckpoint(in));
    if (synth->t() != month - 1) {
      return Status::FailedPrecondition("checkpoint is from month " +
                                        std::to_string(synth->t()));
    }
  }
  LONGDP_RETURN_NOT_OK(synth->ObserveRound(reports));
  if (month % 3 == 0) {
    auto pred = query::MakeAllOnes(3);
    LONGDP_ASSIGN_OR_RETURN(double answer, synth->DebiasedAnswer(*pred));
    std::printf("  [job %2lld] quarter complete: poverty all quarter = "
                "%.4f (budget spent %.6f)\n",
                static_cast<long long>(month), answer,
                synth->accountant().spent());
  }
  std::ofstream out(checkpoint_path);
  LONGDP_RETURN_NOT_OK(synth->SaveCheckpoint(out));
  return Status::OK();
}

// One month's batch job for Algorithm 2.
Status RunCumulativeJob(const std::string& checkpoint_path, int64_t month,
                        data::RoundView reports, double rho, uint64_t seed) {
  std::unique_ptr<core::CumulativeSynthesizer> synth;
  if (month == 1) {
    core::CumulativeSynthesizer::Options opt;
    opt.horizon = 12;
    opt.rho = rho;
    opt.seed = seed;
    LONGDP_ASSIGN_OR_RETURN(synth, core::CumulativeSynthesizer::Create(opt));
  } else {
    std::ifstream in(checkpoint_path);
    if (!in) return Status::IOError("missing checkpoint " + checkpoint_path);
    LONGDP_ASSIGN_OR_RETURN(synth,
                            core::CumulativeSynthesizer::LoadCheckpoint(in));
  }
  LONGDP_RETURN_NOT_OK(synth->ObserveRound(reports));
  if (month % 4 == 0) {
    LONGDP_ASSIGN_OR_RETURN(double answer, synth->Answer(3));
    std::printf("  [job %2lld] >=3 months so far = %.4f\n",
                static_cast<long long>(month), answer);
  }
  std::ofstream out(checkpoint_path);
  LONGDP_RETURN_NOT_OK(synth->SaveCheckpoint(out));
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = harness::Flags::Parse(argc, argv);
  const double rho = flags.GetDouble("rho", 0.01);
  const std::string window_ckpt = "/tmp/longdp_window.ckpt";
  const std::string cumulative_ckpt = "/tmp/longdp_cumulative.ckpt";

  data::SippOptions sipp;
  sipp.num_households = 8000;
  auto dataset = data::SimulateSipp(sipp, uint64_t{777}).value();

  std::printf("simulating 12 independent monthly batch jobs "
              "(checkpoint -> ingest -> release -> checkpoint)\n\n");
  // Seeds only matter for the month-1 job; every later job re-derives its
  // noise substreams from the checkpointed seed + cursors.
  for (int64_t month = 1; month <= 12; ++month) {
    Status st = RunWindowJob(window_ckpt, month, dataset.Round(month),
                             rho / 2, /*seed=*/888);
    if (st.ok()) {
      st = RunCumulativeJob(cumulative_ckpt, month, dataset.Round(month),
                            rho / 2, /*seed=*/889);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "month %lld failed: %s\n",
                   static_cast<long long>(month), st.ToString().c_str());
      return 1;
    }
  }

  // Final verification against ground truth.
  std::ifstream in(window_ckpt);
  auto final_synth =
      core::FixedWindowSynthesizer::LoadCheckpoint(in).value();
  auto pred = query::MakeAllOnes(3);
  double truth = query::EvaluateOnDataset(*pred, dataset, 12).value();
  double estimate = final_synth->DebiasedAnswer(*pred).value();
  std::printf("\nfinal state after 12 restarts: t=%lld, estimate %.4f vs "
              "truth %.4f, rho spent %.6f\n",
              static_cast<long long>(final_synth->t()), estimate, truth,
              final_synth->accountant().spent());
  std::remove(window_ckpt.c_str());
  std::remove(cumulative_ckpt.c_str());
  return 0;
}
