// Quickstart: continually release private synthetic data from a small
// longitudinal panel and answer a window query at every release.
//
//   $ ./build/examples/quickstart
//
// Walks through the full API surface in ~60 lines: generate data, create a
// FixedWindowSynthesizer (Algorithm 1), stream the rounds in, and read off
// biased / debiased answers plus the privacy ledger.

#include <cstdio>

#include "longdp.h"

int main() {
  using namespace longdp;

  // 1. A longitudinal panel: 5000 people, 12 monthly binary reports,
  //    two-state Markov trajectories ("in poverty" / "not in poverty").
  data::MarkovParams params;
  params.initial_rate = 0.10;  // 10% start in poverty
  params.entry_prob = 0.03;    // 3%/month enter
  params.exit_prob = 0.25;     // 25%/month exit
  auto dataset =
      data::TwoStateMarkov(5000, 12, params, /*seed=*/uint64_t{42}).value();

  // 2. A continual synthesizer for quarterly (k = 3) window queries under
  //    0.05-zCDP over the whole 12-month horizon.
  core::FixedWindowSynthesizer::Options options;
  options.horizon = 12;
  options.window_k = 3;
  options.rho = 0.05;
  options.seed = 42;  // all noise is keyed off this one root seed
  auto synth = core::FixedWindowSynthesizer::Create(options).value();
  std::printf("padding per bin (public): %lld records\n\n",
              static_cast<long long>(synth->npad()));

  // 3. Stream the months in; from month k = 3 on, every call updates the
  //    persistent synthetic cohort.
  auto in_poverty_all_quarter = query::MakeAllOnes(3);
  std::printf("%-6s %-12s %-12s %-12s\n", "month", "truth", "debiased",
              "biased");
  for (int64_t t = 1; t <= 12; ++t) {
    Status st = synth->ObserveRound(dataset.Round(t));
    if (!st.ok()) {
      std::fprintf(stderr, "release failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!synth->has_release()) continue;
    double truth =
        query::EvaluateOnDataset(*in_poverty_all_quarter, dataset, t).value();
    double debiased = synth->DebiasedAnswer(*in_poverty_all_quarter).value();
    double biased = synth->BiasedAnswer(*in_poverty_all_quarter).value();
    std::printf("%-6lld %-12.4f %-12.4f %-12.4f\n",
                static_cast<long long>(t), truth, debiased, biased);
  }

  // 4. Privacy accounting: the full run consumed exactly rho.
  std::printf("\nzCDP spent: %.6f of %.6f (%zu ledger entries)\n",
              synth->accountant().spent(), options.rho,
              synth->accountant().ledger().size());
  std::printf("equivalent (eps, delta=1e-6)-DP: eps = %.3f\n",
              dp::ZCdpToApproxDpEpsilon(options.rho, 1e-6));

  // 5. The synthetic cohort is a real dataset: materialize and reuse it in
  //    any existing pipeline.
  auto synthetic = synth->cohort().ToDataset(12).value();
  std::printf("synthetic panel: %lld records x %lld months\n",
              static_cast<long long>(synthetic.num_users()),
              static_cast<long long>(synthetic.rounds()));
  return 0;
}
