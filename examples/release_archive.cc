// Release archive workflow: a data curator runs both synthesizers over the
// survey year, captures every release into a ReleaseLog, and persists it;
// an analyst later reloads the log — with no access to the curator's
// process — and answers debiased window queries, cumulative queries, and
// spell statistics purely from the released artifacts (all
// post-processing, zero additional privacy cost).
//
//   $ ./build/examples/release_archive [--rho=0.01]

#include <cstdio>
#include <string>

#include "harness/flags.h"
#include "longdp.h"

int main(int argc, char** argv) {
  using namespace longdp;
  auto flags = harness::Flags::Parse(argc, argv);
  const double rho = flags.GetDouble("rho", 0.01);
  const std::string log_path = flags.GetString("log", "/tmp/longdp_releases.csv");
  const std::string synth_path =
      flags.GetString("synthetic", "/tmp/longdp_synthetic_panel.csv");

  // ---- Curator side -------------------------------------------------------
  data::SippOptions sipp;
  sipp.num_households = 10000;
  auto dataset = data::SimulateSipp(sipp, uint64_t{321}).value();

  core::FixedWindowSynthesizer::Options fopt;
  fopt.horizon = 12;
  fopt.window_k = 3;
  fopt.rho = rho / 2;  // split the budget across the two synthesizers
  fopt.seed = 654;
  auto window_synth = core::FixedWindowSynthesizer::Create(fopt).value();

  core::CumulativeSynthesizer::Options copt;
  copt.horizon = 12;
  copt.rho = rho / 2;
  copt.seed = 655;
  auto cumulative_synth = core::CumulativeSynthesizer::Create(copt).value();

  core::ReleaseLog log;
  for (int64_t t = 1; t <= 12; ++t) {
    Status st = window_synth->ObserveRound(dataset.Round(t));
    if (st.ok()) st = cumulative_synth->ObserveRound(dataset.Round(t));
    if (st.ok()) st = log.Capture(*window_synth);
    if (st.ok()) st = log.Capture(*cumulative_synth);
    if (!st.ok()) {
      std::fprintf(stderr, "curator step %lld failed: %s\n",
                   static_cast<long long>(t), st.ToString().c_str());
      return 1;
    }
  }
  if (!log.WriteCsv(log_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", log_path.c_str());
    return 1;
  }
  // The synthetic microdata panel itself is also a release.
  auto synthetic_panel = window_synth->cohort().ToDataset(12).value();
  if (Status st = data::WriteSippBitsCsv(synthetic_panel, synth_path);
      !st.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", synth_path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("curator: wrote %zu window + %zu cumulative releases to %s\n",
              log.window_releases().size(), log.cumulative_releases().size(),
              log_path.c_str());
  std::printf("curator: wrote synthetic panel (%lld records) to %s\n",
              static_cast<long long>(synthetic_panel.num_users()),
              synth_path.c_str());
  std::printf("curator: total zCDP spent %.6f (= %.6f + %.6f)\n\n",
              window_synth->accountant().spent() +
                  cumulative_synth->accountant().spent(),
              window_synth->accountant().spent(),
              cumulative_synth->accountant().spent());

  // ---- Analyst side -------------------------------------------------------
  auto reloaded = core::ReleaseLog::LoadCsv(log_path).value();
  std::printf("analyst: reloaded %zu window releases\n",
              reloaded.window_releases().size());

  // Debiased quarterly statistic from the reloaded histograms alone.
  auto pred = query::MakeAtLeastOnes(3, 2);
  std::printf("analyst: 'poverty >= 2 months of quarter' per quarter:\n");
  for (const auto& release : reloaded.window_releases()) {
    if (release.t % 3 != 0) continue;
    query::PaddingSpec spec;
    spec.synth_width = release.window_k;
    spec.npad = release.npad;
    spec.true_n = release.true_n;
    int64_t count =
        query::CountOnHistogram(*pred, release.histogram, release.window_k)
            .value();
    double estimate = query::DebiasedFraction(count, *pred, spec).value();
    double truth =
        query::EvaluateOnDataset(*pred, dataset, release.t).value();
    std::printf("  t=%-3lld estimate %.4f (truth %.4f)\n",
                static_cast<long long>(release.t), estimate, truth);
  }

  // Cumulative series from the reloaded threshold rows.
  std::printf("analyst: 'poverty >= 3 of first t months' (from log):\n");
  for (const auto& release : reloaded.cumulative_releases()) {
    if (release.t % 4 != 0) continue;
    double estimate = static_cast<double>(release.thresholds[3]) /
                      static_cast<double>(dataset.num_users());
    double truth =
        query::EvaluateCumulativeOnDataset(dataset, release.t, 3).value();
    std::printf("  t=%-3lld estimate %.4f (truth %.4f)\n",
                static_cast<long long>(release.t), estimate, truth);
  }

  // Spell statistics on the reloaded synthetic microdata.
  auto panel = data::LoadSippBitsCsv(synth_path).value();
  double synth_spell =
      query::EverHadSpell(panel, panel.rounds(), 3).value();
  double true_spell =
      query::EverHadSpell(dataset, dataset.rounds(), 3).value();
  std::printf("analyst: 'ever a >=3-month poverty spell' on synthetic "
              "panel: %.4f (truth %.4f)\n",
              synth_spell, true_spell);
  std::printf("         (raw synthetic value; includes padding records "
              "by design)\n");
  return 0;
}
