// Release archive workflow: a data curator runs the fixed-window,
// cumulative, and categorical synthesizers over the survey year, captures
// every release into a ReleaseLog, and seals everything — release columns
// AND the synthetic microdata panel — into one columnar archive file; an
// analyst later mmaps the archive (with no access to the curator's
// process) and serves debiased window queries, cumulative queries,
// categorical bin fractions, and spell statistics straight off the stored
// columns, with no CSV reload and no panel rehydration (all
// post-processing, zero additional privacy cost).
//
//   $ ./build/examples/release_archive [--rho=0.01]

#include <cstdio>
#include <string>
#include <vector>

#include "harness/flags.h"
#include "longdp.h"

int main(int argc, char** argv) {
  using namespace longdp;
  auto flags = harness::Flags::Parse(argc, argv);
  const double rho = flags.GetDouble("rho", 0.01);
  const std::string log_path =
      flags.GetString("log", "/tmp/longdp_releases.csv");
  const std::string archive_path =
      flags.GetString("archive", "/tmp/longdp_releases.ldpa");

  // ---- Curator side -------------------------------------------------------
  data::SippOptions sipp;
  sipp.num_households = 10000;
  auto dataset = data::SimulateSipp(sipp, uint64_t{321}).value();

  core::FixedWindowSynthesizer::Options fopt;
  fopt.horizon = 12;
  fopt.window_k = 3;
  fopt.rho = rho / 3;  // split the budget across the three synthesizers
  fopt.seed = 654;
  auto window_synth = core::FixedWindowSynthesizer::Create(fopt).value();

  core::CumulativeSynthesizer::Options copt;
  copt.horizon = 12;
  copt.rho = rho / 3;
  copt.seed = 655;
  auto cumulative_synth = core::CumulativeSynthesizer::Create(copt).value();

  // A 3-category "poverty depth" stream derived from the same panel:
  // 0 = not poor this month, 1 = newly poor, 2 = poor this and last month.
  core::CategoricalWindowSynthesizer::Options gopt;
  gopt.horizon = 12;
  gopt.window_k = 2;
  gopt.alphabet = 3;
  gopt.rho = rho / 3;
  gopt.seed = 656;
  auto categorical_synth =
      core::CategoricalWindowSynthesizer::Create(gopt).value();

  core::ReleaseLog log;
  for (int64_t t = 1; t <= 12; ++t) {
    std::vector<uint8_t> symbols(static_cast<size_t>(dataset.num_users()));
    for (int64_t i = 0; i < dataset.num_users(); ++i) {
      const int now = dataset.Bit(i, t);
      const int before = t > 1 ? dataset.Bit(i, t - 1) : 0;
      symbols[static_cast<size_t>(i)] =
          static_cast<uint8_t>(now == 0 ? 0 : 1 + before);
    }
    Status st = window_synth->ObserveRound(dataset.Round(t));
    if (st.ok()) st = cumulative_synth->ObserveRound(dataset.Round(t));
    if (st.ok()) st = categorical_synth->ObserveRound(symbols);
    if (st.ok()) st = log.Capture(*window_synth);
    if (st.ok()) st = log.Capture(*cumulative_synth);
    if (st.ok()) st = log.Capture(*categorical_synth);
    if (!st.ok()) {
      std::fprintf(stderr, "curator step %lld failed: %s\n",
                   static_cast<long long>(t), st.ToString().c_str());
      return 1;
    }
  }
  // The CSV remains the portable text form of the release columns...
  if (!log.WriteCsv(log_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", log_path.c_str());
    return 1;
  }
  // ...and the archive is the served form: every release column plus the
  // synthetic microdata panel, sealed under one checksummed footer.
  auto synthetic_panel = window_synth->cohort().ToDataset(12).value();
  {
    auto writer = archive::ArchiveWriter::Create(archive_path);
    if (!writer.ok()) {
      std::fprintf(stderr, "cannot create %s: %s\n", archive_path.c_str(),
                   writer.status().ToString().c_str());
      return 1;
    }
    Status st = writer.value().AppendReleaseLog("sipp2026", log);
    if (st.ok()) st = writer.value().AppendCohort("sipp2026", synthetic_panel);
    if (st.ok()) st = writer.value().Finish();
    if (!st.ok()) {
      std::fprintf(stderr, "cannot seal %s: %s\n", archive_path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }
  std::printf(
      "curator: archived %zu window + %zu cumulative + %zu categorical "
      "releases\n         and a %lld-record panel to %s\n",
      log.window_releases().size(), log.cumulative_releases().size(),
      log.categorical_releases().size(),
      static_cast<long long>(synthetic_panel.num_users()),
      archive_path.c_str());
  std::printf("curator: total zCDP spent %.6f\n\n",
              window_synth->accountant().spent() +
                  cumulative_synth->accountant().spent() +
                  categorical_synth->accountant().spent());

  // ---- Analyst side -------------------------------------------------------
  // One mmap + checksum sweep at open; every query below is served in place
  // from the stored columns.
  auto reader = archive::ArchiveReader::Open(archive_path).value();
  archive::Exec exec(reader);

  archive::Exec::Filter windows;
  windows.kind = archive::EntryKind::kWindow;
  archive::Exec::Filter cohorts;
  cohorts.kind = archive::EntryKind::kCohort;
  std::printf("analyst: archive holds %lld entries (%lld window, %lld "
              "cohort) under %zu labels\n",
              static_cast<long long>(exec.CountEntries({})),
              static_cast<long long>(exec.CountEntries(windows)),
              static_cast<long long>(exec.CountEntries(cohorts)),
              reader.labels().size());

  // Debiased quarterly statistic straight off the stored histograms.
  auto pred = query::MakeAtLeastOnes(3, 2);
  std::printf("analyst: 'poverty >= 2 months of quarter' per quarter:\n");
  for (const archive::ArchiveEntry* e : exec.Select(windows)) {
    if (e->t % 3 != 0) continue;
    double estimate = exec.DebiasedWindowFraction(*e, *pred).value();
    double truth = query::EvaluateOnDataset(*pred, dataset, e->t).value();
    std::printf("  t=%-3lld estimate %.4f (truth %.4f)\n",
                static_cast<long long>(e->t), estimate, truth);
  }

  // Cumulative series from the stored threshold rows.
  archive::Exec::Filter cumulative;
  cumulative.kind = archive::EntryKind::kCumulative;
  std::printf("analyst: 'poverty >= 3 of first t months':\n");
  for (const archive::ArchiveEntry* e : exec.Select(cumulative)) {
    if (e->t % 4 != 0) continue;
    double estimate = exec.CumulativeFraction(*e, 3).value();
    double truth =
        query::EvaluateCumulativeOnDataset(dataset, e->t, 3).value();
    std::printf("  t=%-3lld estimate %.4f (truth %.4f)\n",
                static_cast<long long>(e->t), estimate, truth);
  }

  // Categorical: fraction persistently poor (code 2,2 in the base-3
  // window) at year end, debiased from the stored histogram.
  archive::Exec::Filter categorical;
  categorical.kind = archive::EntryKind::kCategorical;
  categorical.t_min = 12;
  for (const archive::ArchiveEntry* e : exec.Select(categorical)) {
    const uint64_t code = 2 * 3 + 2;  // base-3 window "22"
    std::printf("analyst: 'persistently poor' (categorical bin 22) at "
                "t=12: %.4f\n",
                exec.CategoricalBinFraction(*e, code).value());
  }

  // Spell statistics on the stored panel — word loops over the mmap'd
  // round columns; the panel is never rehydrated into a dataset.
  for (const archive::ArchiveEntry* e : exec.Select(cohorts)) {
    double synth_spell = exec.CohortEverHadSpell(*e, e->rounds, 3).value();
    double true_spell =
        query::EverHadSpell(dataset, dataset.rounds(), 3).value();
    std::printf("analyst: 'ever a >=3-month poverty spell' on stored "
                "panel: %.4f (truth %.4f)\n",
                synth_spell, true_spell);
    std::printf("         (raw synthetic value; includes padding records "
                "by design)\n");
  }
  return 0;
}
