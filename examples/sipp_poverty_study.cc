// The paper's Section 5 case study as a runnable program: quarterly poverty
// statistics from a SIPP-like panel of 23,374 households under 0.005-zCDP,
// with the debiasing post-processing step an analyst would apply.
//
//   $ ./build/examples/sipp_poverty_study [--rho=0.005] [--sipp_csv=path]
//
// Pass --sipp_csv to run on a real preprocessed SIPP extract (one row per
// household: id plus 12 binary monthly poverty indicators).

#include <cstdio>
#include <string>

#include "harness/flags.h"
#include "longdp.h"

int main(int argc, char** argv) {
  using namespace longdp;
  auto flags = harness::Flags::Parse(argc, argv);
  const double rho = flags.GetDouble("rho", 0.005);

  // Ground-truth panel: real extract if provided, calibrated simulation
  // otherwise (see DESIGN.md section 3 for the substitution rationale).
  data::LongitudinalDataset dataset = [&] {
    std::string path = flags.GetString("sipp_csv", "");
    if (!path.empty()) {
      auto loaded = data::LoadSippBitsCsv(path);
      if (loaded.ok()) return std::move(loaded).value();
      std::fprintf(stderr, "failed to load %s: %s; simulating instead\n",
                   path.c_str(), loaded.status().ToString().c_str());
    }
    return data::SimulateSippDefault(uint64_t{2021}).value();
  }();
  std::printf("panel: %lld households x %lld months, rho = %g\n\n",
              static_cast<long long>(dataset.num_users()),
              static_cast<long long>(dataset.rounds()), rho);

  core::FixedWindowSynthesizer::Options options;
  options.horizon = dataset.rounds();
  options.window_k = 3;
  options.rho = rho;
  options.seed = 7;
  auto synth = core::FixedWindowSynthesizer::Create(options).value();

  struct QueryDef {
    const char* label;
    query::WindowPredicatePtr pred;
  };
  QueryDef queries[] = {
      {"in poverty >= 1 month of quarter", query::MakeAtLeastOnes(3, 1)},
      {"in poverty >= 2 months", query::MakeAtLeastOnes(3, 2)},
      {"in poverty >= 2 consecutive months", query::MakeConsecutiveOnes(3, 2)},
      {"in poverty all 3 months", query::MakeAllOnes(3)},
  };

  int quarter = 0;
  for (int64_t t = 1; t <= dataset.rounds(); ++t) {
    Status st = synth->ObserveRound(dataset.Round(t));
    if (!st.ok()) {
      std::fprintf(stderr, "release failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (t % 3 != 0) continue;
    ++quarter;
    std::printf("Quarter %d (months %lld-%lld)\n", quarter,
                static_cast<long long>(t - 2), static_cast<long long>(t));
    std::printf("  %-38s %-9s %-10s %-9s\n", "query", "truth", "debiased",
                "biased");
    for (const auto& q : queries) {
      double truth = query::EvaluateOnDataset(*q.pred, dataset, t).value();
      double debiased = synth->DebiasedAnswer(*q.pred).value();
      double biased = synth->BiasedAnswer(*q.pred).value();
      std::printf("  %-38s %-9.4f %-10.4f %-9.4f\n", q.label, truth,
                  debiased, biased);
    }
  }

  // Bonus: a weighted linear-combination query ("expected months in poverty
  // this quarter") answered from the same release at no extra privacy cost.
  std::vector<double> weights(8);
  for (util::Pattern s = 0; s < 8; ++s) {
    weights[s] = static_cast<double>(util::Popcount(s));
  }
  auto months_query = query::LinearWindowQuery::Create(3, weights).value();
  double synth_val =
      months_query.EvaluateOnHistogram(synth->SyntheticHistogram()).value();
  double debiased =
      query::DebiasedLinearValue(synth_val, months_query,
                                 synth->padding_spec())
          .value();
  double truth = months_query.EvaluateOnDataset(dataset, 12).value();
  std::printf("\nexpected months in poverty, Q4: truth %.4f, debiased DP "
              "estimate %.4f\n",
              truth, debiased);
  std::printf("negative-count clamps over the whole run: %lld (padding did "
              "its job if 0)\n",
              static_cast<long long>(synth->stats().negative_clamps));
  return 0;
}
