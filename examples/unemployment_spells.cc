// Cumulative time queries (Algorithm 2) on an unemployment panel: "what
// fraction of workers have been unemployed for at least b of the first t
// months?", released every month with user-level zCDP.
//
//   $ ./build/examples/unemployment_spells [--rho=0.005] [--counter=tree]
//
// Also demonstrates swapping the stream counter implementation (the paper's
// Section 1.1 remark) and the CountOcc reduction of Ghazi et al.

#include <cstdio>
#include <string>

#include "harness/flags.h"
#include "longdp.h"

int main(int argc, char** argv) {
  using namespace longdp;
  auto flags = harness::Flags::Parse(argc, argv);
  const double rho = flags.GetDouble("rho", 0.005);
  const std::string counter_name = flags.GetString("counter", "tree");

  // 30,000 workers, 24 monthly unemployment indicators. Two groups: a
  // small long-term-unemployed population and a majority with short spells.
  std::vector<data::MixtureComponent> components = {
      {0.05, {0.80, 0.40, 0.05}},   // long-term unemployed
      {0.95, {0.04, 0.015, 0.35}},  // frictional unemployment
  };
  auto dataset =
      data::SubpopulationMixture(30000, 24, components, uint64_t{1848})
          .value();

  auto factory = stream::MakeCounterFactory(counter_name);
  if (!factory.ok()) {
    std::fprintf(stderr, "%s\n", factory.status().ToString().c_str());
    return 1;
  }

  core::CumulativeSynthesizer::Options options;
  options.horizon = dataset.rounds();
  options.rho = rho;
  options.counter_factory = factory.value();
  options.seed = 7;
  auto synth = core::CumulativeSynthesizer::Create(options).value();

  std::printf("30000 workers x 24 months, rho = %g, counter = %s\n\n", rho,
              counter_name.c_str());
  std::printf("%-6s %-26s %-26s\n", "month", ">=3 months unemployed",
              ">=6 months unemployed");
  std::printf("%-6s %-12s %-13s %-12s %-13s\n", "", "truth", "DP synth",
              "truth", "DP synth");

  std::vector<std::vector<int64_t>> released_rows;
  for (int64_t t = 1; t <= dataset.rounds(); ++t) {
    Status st = synth->ObserveRound(dataset.Round(t));
    if (!st.ok()) {
      std::fprintf(stderr, "release failed: %s\n", st.ToString().c_str());
      return 1;
    }
    released_rows.push_back(synth->released_thresholds());
    if (t % 2 != 0) continue;
    double truth3 =
        query::EvaluateCumulativeOnDataset(dataset, t, 3).value();
    double truth6 =
        query::EvaluateCumulativeOnDataset(dataset, t, 6).value();
    std::printf("%-6lld %-12.4f %-13.4f %-12.4f %-13.4f\n",
                static_cast<long long>(t), truth3,
                synth->Answer(3).value(), truth6, synth->Answer(6).value());
  }

  // The CountOcc_{=b} reduction (paper Section 1.1): "exactly 4 months
  // unemployed" derived from two released threshold rows by
  // post-processing — no additional privacy cost.
  auto exact4 = query::CountOccExactFromThresholds(
      released_rows[23], released_rows[11], 4);
  if (exact4.ok()) {
    std::printf("\nCountOcc reduction (post-processing only): "
                "thresholds[t=24][b=4] - thresholds[t=12][b=3] = %lld\n",
                static_cast<long long>(exact4.value()));
  }

  // Theory check: Corollary B.1's error envelope for these parameters.
  double bound = core::theory::CumulativeFractionErrorBound(
                     dataset.rounds(), rho, 0.05, dataset.num_users())
                     .value();
  std::printf("Corollary B.1 error bound (beta=0.05): %.5f\n", bound);
  std::printf("zCDP spent: %.6f across %zu counters\n",
              synth->accountant().spent(),
              synth->accountant().ledger().size());
  return 0;
}
