#include "archive/exec.h"

#include <string>

#include "query/cumulative_query.h"
#include "query/debias.h"
#include "query/spells.h"
#include "util/bits.h"
#include "util/simd/simd.h"

namespace longdp {
namespace archive {

std::vector<const ArchiveEntry*> Exec::Select(const Filter& filter) const {
  std::vector<const ArchiveEntry*> out;
  for (const ArchiveEntry& e : reader_->entries()) {
    if (filter.Matches(e)) out.push_back(&e);
  }
  return out;
}

int64_t Exec::CountEntries(const Filter& filter) const {
  int64_t count = 0;
  for (const ArchiveEntry& e : reader_->entries()) {
    if (filter.Matches(e)) ++count;
  }
  return count;
}

std::vector<int64_t> Exec::GroupCountByLabel(const Filter& filter) const {
  std::vector<int64_t> counts(reader_->labels().size(), 0);
  for (const ArchiveEntry& e : reader_->entries()) {
    if (filter.Matches(e)) ++counts[e.label_id];
  }
  return counts;
}

Status Exec::RequireKind(const ArchiveEntry& entry, EntryKind kind) const {
  if (entry.kind != kind) {
    return Status::InvalidArgument("archive entry has the wrong kind for "
                                   "this query");
  }
  return Status::OK();
}

Result<int64_t> Exec::WindowCount(const ArchiveEntry& entry,
                                  const query::WindowPredicate& pred) const {
  LONGDP_RETURN_NOT_OK(RequireKind(entry, EntryKind::kWindow));
  return query::CountOnHistogram(pred, reader_->Values(entry),
                                 entry.window_k);
}

Result<double> Exec::DebiasedWindowFraction(
    const ArchiveEntry& entry, const query::WindowPredicate& pred) const {
  LONGDP_ASSIGN_OR_RETURN(const int64_t count, WindowCount(entry, pred));
  query::PaddingSpec spec;
  spec.synth_width = entry.window_k;
  spec.npad = entry.npad;
  spec.true_n = entry.true_n;
  return query::DebiasedFraction(count, pred, spec);
}

Result<double> Exec::BiasedWindowFraction(
    const ArchiveEntry& entry, const query::WindowPredicate& pred) const {
  LONGDP_ASSIGN_OR_RETURN(const int64_t count, WindowCount(entry, pred));
  int64_t population = 0;
  for (int64_t c : reader_->Values(entry)) population += c;
  return query::BiasedFraction(count, population);
}

Result<double> Exec::CumulativeFraction(const ArchiveEntry& entry,
                                        int64_t b) const {
  LONGDP_RETURN_NOT_OK(RequireKind(entry, EntryKind::kCumulative));
  const std::span<const int64_t> thresholds = reader_->Values(entry);
  if (b < 0 || static_cast<size_t>(b) >= thresholds.size()) {
    return Status::OutOfRange("threshold b out of range");
  }
  const int64_t population = thresholds[0];
  // ReleaseAnalyzer::CumulativeFraction answers 0.0 for an empty released
  // population; mirrored here so the two paths stay bit-identical.
  if (population <= 0) return 0.0;
  return static_cast<double>(thresholds[static_cast<size_t>(b)]) /
         static_cast<double>(population);
}

Result<int64_t> Exec::CountOccExact(const ArchiveEntry& entry_t1,
                                    const ArchiveEntry& entry_t2,
                                    int64_t b) const {
  LONGDP_RETURN_NOT_OK(RequireKind(entry_t1, EntryKind::kCumulative));
  LONGDP_RETURN_NOT_OK(RequireKind(entry_t2, EntryKind::kCumulative));
  if (entry_t1.t >= entry_t2.t) {
    return Status::InvalidArgument("requires t1 < t2");
  }
  return query::CountOccExactFromThresholds(reader_->Values(entry_t2),
                                            reader_->Values(entry_t1), b);
}

Result<double> Exec::CategoricalBinFraction(const ArchiveEntry& entry,
                                            uint64_t code) const {
  LONGDP_RETURN_NOT_OK(RequireKind(entry, EntryKind::kCategorical));
  const std::span<const int64_t> hist = reader_->Values(entry);
  if (code >= hist.size()) {
    return Status::OutOfRange("pattern code out of range");
  }
  if (entry.true_n <= 0) {
    return Status::InvalidArgument("released true_n must be > 0");
  }
  // int64 subtract, then cast — the synthesizer's and ReleaseAnalyzer's
  // exact arithmetic.
  return static_cast<double>(hist[code] - entry.npad) /
         static_cast<double>(entry.true_n);
}

Result<std::vector<data::RoundView>> Exec::CohortRounds(
    const ArchiveEntry& entry, int64_t t) const {
  LONGDP_RETURN_NOT_OK(RequireKind(entry, EntryKind::kCohort));
  if (t < 1 || t > entry.rounds) {
    return Status::OutOfRange("time t must be in [1, rounds]");
  }
  std::vector<data::RoundView> rounds;
  rounds.reserve(static_cast<size_t>(t));
  for (int64_t tt = 1; tt <= t; ++tt) {
    rounds.push_back(reader_->CohortRound(entry, tt));
  }
  return rounds;
}

Result<std::vector<int64_t>> Exec::CohortWindowHistogram(
    const ArchiveEntry& entry, int64_t t, int k) const {
  LONGDP_RETURN_NOT_OK(RequireKind(entry, EntryKind::kCohort));
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(k));
  if (k > 16) {
    return Status::InvalidArgument(
        "CohortWindowHistogram supports k <= 16 (PlaneHistogram plane cap)");
  }
  if (t < k || t > entry.rounds) {
    return Status::OutOfRange("requires k <= t <= rounds");
  }
  // Code bit j is the panel bit from j rounds ago (util::Pattern encodes
  // the newest bit lowest), so plane j is simply the packed words of round
  // t - j — the stored columns ARE the bit-sliced planes.
  std::vector<const uint64_t*> planes(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    planes[static_cast<size_t>(j)] =
        reader_->CohortRound(entry, t - j).words();
  }
  const size_t num_words = CohortWordsPerRound(entry.count);
  std::vector<int64_t> hist(util::NumPatterns(k), 0);
  util::simd::PlaneHistogram(planes.data(), k, nullptr, num_words,
                             hist.data());
  // Unmasked tail lanes past the population all counted into hist[0]
  // (their planes are zero by the RoundView trailing-bit invariant).
  hist[0] -= static_cast<int64_t>(num_words) * 64 - entry.count;
  return hist;
}

Result<double> Exec::CohortEverHadSpell(const ArchiveEntry& entry, int64_t t,
                                        int64_t min_len) const {
  LONGDP_ASSIGN_OR_RETURN(const auto rounds, CohortRounds(entry, t));
  return query::EverHadSpell(std::span<const data::RoundView>(rounds), t,
                             min_len);
}

Result<double> Exec::CohortOngoingSpellAtLeast(const ArchiveEntry& entry,
                                               int64_t t,
                                               int64_t min_len) const {
  LONGDP_ASSIGN_OR_RETURN(const auto rounds, CohortRounds(entry, t));
  return query::OngoingSpellAtLeast(std::span<const data::RoundView>(rounds),
                                    t, min_len);
}

Result<std::vector<int64_t>> Exec::CohortSpellLengthHistogram(
    const ArchiveEntry& entry, int64_t t) const {
  LONGDP_ASSIGN_OR_RETURN(const auto rounds, CohortRounds(entry, t));
  return query::SpellLengthHistogram(std::span<const data::RoundView>(rounds),
                                     t);
}

Result<double> Exec::CohortMeanSpellLength(const ArchiveEntry& entry,
                                           int64_t t) const {
  LONGDP_ASSIGN_OR_RETURN(const auto rounds, CohortRounds(entry, t));
  return query::MeanSpellLength(std::span<const data::RoundView>(rounds), t);
}

}  // namespace archive
}  // namespace longdp
