// Vectorized query executor over an open archive: filter/count/groupby
// over the entry index, plus the analyst-side window / debias / cumulative
// / categorical / spell queries served straight off the mapping.
//
// Answer-path guarantees (pinned by the archive test suites):
//   * DebiasedWindowFraction / BiasedWindowFraction / CumulativeFraction /
//     CountOccExact / CategoricalBinFraction are bit-identical to running
//     ReleaseAnalyzer over the CSV-rehydrated ReleaseLog of the same
//     stream — same validation, same integer arithmetic, same cast order.
//   * Spell queries run the same span-of-RoundView word loops as the
//     dataset path (query/spells.h), over zero-copy views of the stored
//     panel.
//   * CohortWindowHistogram equals LongitudinalDataset::WindowHistogram,
//     computed with the bit-sliced util::simd::PlaneHistogram kernel over
//     the packed round columns (plane j = the round t-j words).
//
// Exec is a thin non-owning view; the reader must outlive it. All methods
// are const and thread-safe for concurrent readers.

#ifndef LONGDP_ARCHIVE_EXEC_H_
#define LONGDP_ARCHIVE_EXEC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "archive/reader.h"
#include "query/window_query.h"
#include "util/status.h"

namespace longdp {
namespace archive {

class Exec {
 public:
  explicit Exec(const ArchiveReader& reader) : reader_(&reader) {}

  /// Conjunctive entry filter; unset fields match everything.
  struct Filter {
    std::optional<EntryKind> kind;
    std::optional<uint32_t> label_id;
    std::optional<int64_t> t_min;
    std::optional<int64_t> t_max;

    bool Matches(const ArchiveEntry& entry) const {
      if (kind.has_value() && entry.kind != *kind) return false;
      if (label_id.has_value() && entry.label_id != *label_id) return false;
      if (t_min.has_value() && entry.t < *t_min) return false;
      if (t_max.has_value() && entry.t > *t_max) return false;
      return true;
    }
  };

  /// Entries matching the filter, in append order. Pointers into the
  /// reader's index; valid while the reader lives.
  std::vector<const ArchiveEntry*> Select(const Filter& filter) const;

  /// Number of matching entries.
  int64_t CountEntries(const Filter& filter) const;

  /// Matching-entry counts grouped by dictionary label: result[id] = count
  /// for label id (size = reader.labels().size()).
  std::vector<int64_t> GroupCountByLabel(const Filter& filter) const;

  /// Synthetic records matching `pred` in a window release (the raw count
  /// CountOnHistogram computes, served in place).
  Result<int64_t> WindowCount(const ArchiveEntry& entry,
                              const query::WindowPredicate& pred) const;

  /// Debiased population fraction — ReleaseAnalyzer::WindowFraction twin.
  Result<double> DebiasedWindowFraction(
      const ArchiveEntry& entry, const query::WindowPredicate& pred) const;

  /// Raw fraction on the padded counts — BiasedWindowFraction twin.
  Result<double> BiasedWindowFraction(
      const ArchiveEntry& entry, const query::WindowPredicate& pred) const;

  /// Threshold fraction Shat^t_b / Shat^t_0 — CumulativeFraction twin.
  Result<double> CumulativeFraction(const ArchiveEntry& entry,
                                    int64_t b) const;

  /// CountOcc_{=b} between two cumulative entries with t1 < t2.
  Result<int64_t> CountOccExact(const ArchiveEntry& entry_t1,
                                const ArchiveEntry& entry_t2,
                                int64_t b) const;

  /// Debiased base-A bin fraction — CategoricalBinFraction twin.
  Result<double> CategoricalBinFraction(const ArchiveEntry& entry,
                                        uint64_t code) const;

  /// Zero-copy views of cohort rounds 1..t (inputs to the span-based
  /// query::spells and query window evaluators).
  Result<std::vector<data::RoundView>> CohortRounds(const ArchiveEntry& entry,
                                                    int64_t t) const;

  /// Width-k window histogram of the stored panel at time t (requires
  /// k <= t <= rounds and k <= 16, the PlaneHistogram plane cap), equal to
  /// ToDataset().WindowHistogram(t, k) with no rehydration.
  Result<std::vector<int64_t>> CohortWindowHistogram(const ArchiveEntry& entry,
                                                     int64_t t, int k) const;

  /// Spell statistics on the stored panel through round t — the span-based
  /// query::spells primitives over the mapped round columns.
  Result<double> CohortEverHadSpell(const ArchiveEntry& entry, int64_t t,
                                    int64_t min_len) const;
  Result<double> CohortOngoingSpellAtLeast(const ArchiveEntry& entry,
                                           int64_t t, int64_t min_len) const;
  Result<std::vector<int64_t>> CohortSpellLengthHistogram(
      const ArchiveEntry& entry, int64_t t) const;
  Result<double> CohortMeanSpellLength(const ArchiveEntry& entry,
                                       int64_t t) const;

 private:
  Status RequireKind(const ArchiveEntry& entry, EntryKind kind) const;

  const ArchiveReader* reader_;
};

}  // namespace archive
}  // namespace longdp

#endif  // LONGDP_ARCHIVE_EXEC_H_
