#include "archive/format.h"

#include <cstring>

#include "util/bits.h"

namespace longdp {
namespace archive {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

// Bounds-checked sequential decoder over the footer bytes. Every read that
// would run past the end fails instead of reading garbage — a truncated
// footer with a forged CRC must not crash the reader.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }

  Status ReadString(size_t len, std::string* out) {
    if (data_.size() - pos_ < len) {
      return Status::DataLoss("archive footer truncated");
    }
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status ReadRaw(void* v, size_t len) {
    if (data_.size() - pos_ < len) {
      return Status::DataLoss("archive footer truncated");
    }
    std::memcpy(v, data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t ExpectedPayloadBytes(const ArchiveEntry& entry) {
  if (entry.kind == EntryKind::kCohort) {
    return uint64_t{8} * static_cast<uint64_t>(entry.rounds) *
           CohortWordsPerRound(entry.count);
  }
  return uint64_t{8} * static_cast<uint64_t>(entry.count);
}

std::string EncodeHeader() {
  std::string out;
  AppendU64(&out, kMagic);
  AppendU32(&out, kFormatVersion);
  AppendU32(&out, 0);  // reserved
  return out;
}

std::string EncodeTail(uint64_t footer_offset, uint32_t footer_crc) {
  std::string out;
  AppendU64(&out, footer_offset);
  AppendU32(&out, footer_crc);
  AppendU32(&out, kFormatVersion);
  AppendU64(&out, kMagic);
  return out;
}

std::string EncodeFooter(const std::vector<std::string>& labels,
                         const std::vector<ArchiveEntry>& entries) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(labels.size()));
  for (const std::string& label : labels) {
    AppendU32(&out, static_cast<uint32_t>(label.size()));
    out.append(label);
  }
  AppendU32(&out, static_cast<uint32_t>(entries.size()));
  for (const ArchiveEntry& e : entries) {
    AppendU32(&out, static_cast<uint32_t>(e.kind));
    AppendU32(&out, e.label_id);
    AppendI64(&out, e.t);
    AppendI64(&out, e.window_k);
    AppendI64(&out, e.alphabet);
    AppendI64(&out, e.npad);
    AppendI64(&out, e.true_n);
    AppendI64(&out, e.count);
    AppendI64(&out, e.rounds);
    AppendU64(&out, e.offset);
    AppendU64(&out, e.bytes);
    AppendU32(&out, e.crc32c);
  }
  return out;
}

Status DecodeFooter(std::string_view footer, std::vector<std::string>* labels,
                    std::vector<ArchiveEntry>* entries) {
  Cursor cur(footer);
  labels->clear();
  entries->clear();

  uint32_t num_labels = 0;
  LONGDP_RETURN_NOT_OK(cur.ReadU32(&num_labels));
  labels->reserve(num_labels);
  for (uint32_t i = 0; i < num_labels; ++i) {
    uint32_t len = 0;
    LONGDP_RETURN_NOT_OK(cur.ReadU32(&len));
    std::string label;
    LONGDP_RETURN_NOT_OK(cur.ReadString(len, &label));
    labels->push_back(std::move(label));
  }

  uint32_t num_entries = 0;
  LONGDP_RETURN_NOT_OK(cur.ReadU32(&num_entries));
  entries->reserve(num_entries);
  for (uint32_t i = 0; i < num_entries; ++i) {
    ArchiveEntry e;
    uint32_t kind = 0;
    int64_t window_k = 0;
    int64_t alphabet = 0;
    LONGDP_RETURN_NOT_OK(cur.ReadU32(&kind));
    LONGDP_RETURN_NOT_OK(cur.ReadU32(&e.label_id));
    LONGDP_RETURN_NOT_OK(cur.ReadI64(&e.t));
    LONGDP_RETURN_NOT_OK(cur.ReadI64(&window_k));
    LONGDP_RETURN_NOT_OK(cur.ReadI64(&alphabet));
    LONGDP_RETURN_NOT_OK(cur.ReadI64(&e.npad));
    LONGDP_RETURN_NOT_OK(cur.ReadI64(&e.true_n));
    LONGDP_RETURN_NOT_OK(cur.ReadI64(&e.count));
    LONGDP_RETURN_NOT_OK(cur.ReadI64(&e.rounds));
    LONGDP_RETURN_NOT_OK(cur.ReadU64(&e.offset));
    LONGDP_RETURN_NOT_OK(cur.ReadU64(&e.bytes));
    LONGDP_RETURN_NOT_OK(cur.ReadU32(&e.crc32c));
    const std::string at = " in archive entry " + std::to_string(i);
    if (kind < static_cast<uint32_t>(EntryKind::kWindow) ||
        kind > static_cast<uint32_t>(EntryKind::kCohort)) {
      return Status::DataLoss("unknown entry kind " + std::to_string(kind) +
                              at);
    }
    e.kind = static_cast<EntryKind>(kind);
    if (e.label_id >= labels->size()) {
      return Status::DataLoss("label id out of range" + at);
    }
    if (window_k < 0 || window_k > util::kMaxWindow || alphabet < 0 ||
        alphabet > (1 << 24)) {
      return Status::DataLoss("implausible window/alphabet field" + at);
    }
    e.window_k = static_cast<int>(window_k);
    e.alphabet = static_cast<int>(alphabet);
    if (e.count < 0 || e.rounds < 0 ||
        (e.kind != EntryKind::kCohort && e.rounds != 0)) {
      return Status::DataLoss("negative or misplaced size field" + at);
    }
    if (e.bytes != ExpectedPayloadBytes(e)) {
      return Status::DataLoss("payload length disagrees with entry shape" +
                              at);
    }
    entries->push_back(e);
  }
  if (!cur.AtEnd()) {
    return Status::DataLoss("trailing bytes after archive footer index");
  }
  return Status::OK();
}

}  // namespace archive
}  // namespace longdp
