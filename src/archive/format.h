// On-disk format of the columnar release archive (`.ldpa` files).
//
// An archive is an append-only store of everything a curator ever
// published: fixed-window / categorical / cumulative release histograms
// (one int64 column per release) and synthetic cohort panels (bit-packed
// round columns — the on-disk twin of data::RoundView). Because it holds
// only released, post-DP values, the file can be shared and served freely:
// every query over it is pure post-processing.
//
// Layout (all integers little-endian; enforced by a static_assert below):
//
//   [header 16B]  u64 magic "LDPARCH1", u32 version, u32 reserved
//   [payload blocks ...]   each 8-byte aligned, zero-padded between blocks
//   [footer]      dictionary (label strings) + entry index, variable length
//   [tail 24B]    u64 footer_offset, u32 footer_crc32c, u32 version,
//                 u64 magic
//
// Payloads are raw columns: int64 arrays for histogram/threshold releases,
// and rounds() x words_per_round packed uint64 words for cohorts (round-
// major, matching LongitudinalDataset's storage), so a reader can mmap the
// file and serve word-level kernels with zero deserialization. Every
// payload and the footer carry a CRC32C (reusing src/persist/'s Castagnoli
// implementation); a reader verifies all of them at open and reports
// damage as kDataLoss, the durable-state layer's "stop and page a human"
// code. The fixed-size tail at EOF means appending is cheap: truncate the
// old footer+tail, append blocks, rewrite footer+tail.

#ifndef LONGDP_ARCHIVE_FORMAT_H_
#define LONGDP_ARCHIVE_FORMAT_H_

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace longdp {
namespace archive {

// The mmap reader casts payload bytes straight to int64/uint64 columns, so
// the in-memory and on-disk byte orders must agree. Every deployment target
// (x86-64, aarch64 Linux) is little-endian; fail the build loudly anywhere
// else rather than silently writing incompatible files.
static_assert(std::endian::native == std::endian::little,
              "the archive format requires a little-endian host");

/// "LDPARCH1" read as a little-endian u64.
inline constexpr uint64_t kMagic = 0x3148'4352'4150'444cULL;
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kHeaderBytes = 16;
inline constexpr size_t kTailBytes = 24;
/// An empty footer still encodes two u32 counts.
inline constexpr size_t kMinFooterBytes = 8;
inline constexpr size_t kBlockAlign = 8;

/// What a stored column is. Values are part of the on-disk format.
enum class EntryKind : uint8_t {
  kWindow = 1,       ///< fixed-window synthetic histogram (2^k int64s)
  kCumulative = 2,   ///< monotonized threshold row Shat^t (int64s)
  kCategorical = 3,  ///< base-A window histogram (A^k int64s)
  kCohort = 4,       ///< bit-packed synthetic panel (rounds x wpr u64 words)
};

/// One footer index record describing a stored column.
struct ArchiveEntry {
  EntryKind kind = EntryKind::kWindow;
  uint32_t label_id = 0;  ///< dictionary code of the release-stream label
  int64_t t = 0;          ///< release time (0 for cohorts)
  int window_k = 0;       ///< window width k (window/categorical)
  int alphabet = 0;       ///< alphabet size A (categorical only, else 0)
  int64_t npad = 0;       ///< public per-bin padding (window/categorical)
  int64_t true_n = 0;     ///< public true population size n
  /// Histogram/threshold kinds: number of int64 values. Cohorts: number of
  /// synthetic records (64 packed per word per round).
  int64_t count = 0;
  int64_t rounds = 0;  ///< cohort only: rounds of history; 0 otherwise
  uint64_t offset = 0;  ///< payload byte offset from file start (8-aligned)
  uint64_t bytes = 0;   ///< payload byte length
  uint32_t crc32c = 0;  ///< CRC32C of the payload bytes
};

/// Packed words per cohort round for `num_records` records.
inline size_t CohortWordsPerRound(int64_t num_records) {
  return static_cast<size_t>((num_records + 63) >> 6);
}

/// The byte length AppendBlock must have written for this entry's
/// (kind, count, rounds); readers reject entries whose `bytes` disagree.
uint64_t ExpectedPayloadBytes(const ArchiveEntry& entry);

std::string EncodeHeader();
std::string EncodeTail(uint64_t footer_offset, uint32_t footer_crc);
std::string EncodeFooter(const std::vector<std::string>& labels,
                         const std::vector<ArchiveEntry>& entries);

/// Parses a footer previously produced by EncodeFooter. Purely structural
/// validation (bounds-checked decode, known kinds, label ids in range,
/// non-negative sizes, bytes == ExpectedPayloadBytes); file-level checks
/// (offsets inside the payload region, payload CRCs) are the reader's job.
/// Any malformation is kDataLoss: the footer CRC already matched, so a
/// parse failure means a writer bug or damage the checksum missed.
Status DecodeFooter(std::string_view footer, std::vector<std::string>* labels,
                    std::vector<ArchiveEntry>* entries);

}  // namespace archive
}  // namespace longdp

#endif  // LONGDP_ARCHIVE_FORMAT_H_
