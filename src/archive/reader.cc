#include "archive/reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "persist/crc32c.h"
#include "persist/posix_io.h"

namespace longdp {
namespace archive {

namespace {

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Result<ArchiveReader> ArchiveReader::Open(const std::string& path) {
  LONGDP_ASSIGN_OR_RETURN(int fd, persist::OpenFd(path, O_RDONLY, 0));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat failed for '" + path + "'");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderBytes + kMinFooterBytes + kTailBytes) {
    ::close(fd);
    return Status::InvalidArgument("not a release archive (too small): " +
                                   path);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping outlives the descriptor
  if (map == MAP_FAILED) {
    return Status::IOError("mmap failed for '" + path + "'");
  }
  ArchiveReader reader;
  reader.path_ = path;
  reader.map_ = map;
  reader.map_len_ = size;

  const char* base = reader.base();
  if (LoadU64(base) != kMagic) {
    return Status::InvalidArgument("not a release archive (bad magic): " +
                                   path);
  }
  if (LoadU32(base + 8) != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported archive format version " +
        std::to_string(LoadU32(base + 8)) + ": " + path);
  }
  // Tail: written last, fsynced — a file without a valid one was never
  // sealed (or was cut short), so nothing after the header can be trusted.
  const char* tail = base + size - kTailBytes;
  if (LoadU64(tail + 16) != kMagic || LoadU32(tail + 12) != kFormatVersion) {
    return Status::DataLoss("archive tail missing or corrupt (unsealed or "
                            "truncated file): " +
                            path);
  }
  const uint64_t footer_offset = LoadU64(tail);
  if (footer_offset < kHeaderBytes ||
      footer_offset + kMinFooterBytes + kTailBytes > size) {
    return Status::DataLoss("archive footer offset out of bounds: " + path);
  }
  const size_t footer_len = size - kTailBytes - footer_offset;
  const char* footer = base + footer_offset;
  if (persist::Crc32c(footer, footer_len) != LoadU32(tail + 8)) {
    return Status::DataLoss("archive footer checksum mismatch: " + path);
  }
  LONGDP_RETURN_NOT_OK(DecodeFooter(std::string_view(footer, footer_len),
                                    &reader.labels_, &reader.entries_));
  reader.footer_offset_ = footer_offset;

  // Whole-file payload sweep: every column must verify before anything is
  // served. (Opening touches every page once; queries afterwards are pure
  // reads with no checks on the hot path.)
  for (size_t i = 0; i < reader.entries_.size(); ++i) {
    const ArchiveEntry& e = reader.entries_[i];
    if (e.offset % kBlockAlign != 0 || e.offset < kHeaderBytes ||
        e.offset + e.bytes > footer_offset) {
      return Status::DataLoss("archive entry " + std::to_string(i) +
                              " payload out of bounds: " + path);
    }
    if (persist::Crc32c(base + e.offset, e.bytes) != e.crc32c) {
      return Status::DataLoss("archive entry " + std::to_string(i) +
                              " payload checksum mismatch: " + path);
    }
  }
  return reader;
}

ArchiveReader::ArchiveReader(ArchiveReader&& other) noexcept
    : path_(std::move(other.path_)),
      map_(std::exchange(other.map_, nullptr)),
      map_len_(std::exchange(other.map_len_, 0)),
      footer_offset_(other.footer_offset_),
      labels_(std::move(other.labels_)),
      entries_(std::move(other.entries_)) {}

ArchiveReader& ArchiveReader::operator=(ArchiveReader&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_len_);
    path_ = std::move(other.path_);
    map_ = std::exchange(other.map_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    footer_offset_ = other.footer_offset_;
    labels_ = std::move(other.labels_);
    entries_ = std::move(other.entries_);
  }
  return *this;
}

ArchiveReader::~ArchiveReader() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

Result<uint32_t> ArchiveReader::FindLabel(const std::string& label) const {
  for (uint32_t id = 0; id < labels_.size(); ++id) {
    if (labels_[id] == label) return id;
  }
  return Status::NotFound("no label '" + label + "' in archive " + path_);
}

std::span<const int64_t> ArchiveReader::Values(
    const ArchiveEntry& entry) const {
  if (entry.bytes == 0) return {};
  // Entry offsets are 8-aligned on top of a page-aligned mapping, so the
  // cast yields a properly aligned int64 column served in place.
  return std::span<const int64_t>(
      reinterpret_cast<const int64_t*>(base() + entry.offset),
      static_cast<size_t>(entry.count));
}

data::RoundView ArchiveReader::CohortRound(const ArchiveEntry& entry,
                                           int64_t t) const {
  const size_t wpr = CohortWordsPerRound(entry.count);
  const char* round = base() + entry.offset +
                      static_cast<size_t>(t - 1) * wpr * sizeof(uint64_t);
  return data::RoundView(reinterpret_cast<const uint64_t*>(round),
                         entry.count);
}

Result<core::WindowRelease> ArchiveReader::ToWindowRelease(
    const ArchiveEntry& entry) const {
  if (entry.kind != EntryKind::kWindow) {
    return Status::InvalidArgument("entry is not a window release");
  }
  core::WindowRelease release;
  release.t = entry.t;
  release.window_k = entry.window_k;
  release.npad = entry.npad;
  release.true_n = entry.true_n;
  const std::span<const int64_t> values = Values(entry);
  release.histogram.assign(values.begin(), values.end());
  return release;
}

Result<core::CumulativeRelease> ArchiveReader::ToCumulativeRelease(
    const ArchiveEntry& entry) const {
  if (entry.kind != EntryKind::kCumulative) {
    return Status::InvalidArgument("entry is not a cumulative release");
  }
  core::CumulativeRelease release;
  release.t = entry.t;
  const std::span<const int64_t> values = Values(entry);
  release.thresholds.assign(values.begin(), values.end());
  return release;
}

Result<core::CategoricalRelease> ArchiveReader::ToCategoricalRelease(
    const ArchiveEntry& entry) const {
  if (entry.kind != EntryKind::kCategorical) {
    return Status::InvalidArgument("entry is not a categorical release");
  }
  core::CategoricalRelease release;
  release.t = entry.t;
  release.window_k = entry.window_k;
  release.alphabet = entry.alphabet;
  release.npad = entry.npad;
  release.true_n = entry.true_n;
  const std::span<const int64_t> values = Values(entry);
  release.histogram.assign(values.begin(), values.end());
  return release;
}

Result<core::ReleaseLog> ArchiveReader::ToReleaseLog(uint32_t label_id) const {
  core::ReleaseLog log;
  for (const ArchiveEntry& e : entries_) {
    if (e.label_id != label_id) continue;
    switch (e.kind) {
      case EntryKind::kWindow: {
        LONGDP_ASSIGN_OR_RETURN(core::WindowRelease r, ToWindowRelease(e));
        LONGDP_RETURN_NOT_OK(log.Append(std::move(r)));
        break;
      }
      case EntryKind::kCumulative: {
        LONGDP_ASSIGN_OR_RETURN(core::CumulativeRelease r,
                                ToCumulativeRelease(e));
        LONGDP_RETURN_NOT_OK(log.Append(std::move(r)));
        break;
      }
      case EntryKind::kCategorical: {
        LONGDP_ASSIGN_OR_RETURN(core::CategoricalRelease r,
                                ToCategoricalRelease(e));
        LONGDP_RETURN_NOT_OK(log.Append(std::move(r)));
        break;
      }
      case EntryKind::kCohort:
        break;  // panels are served via CohortRound, not the log
    }
  }
  return log;
}

}  // namespace archive
}  // namespace longdp
