// Analyst-side mmap reader. Open() maps the file read-only and verifies
// everything once — header/tail magic, footer CRC, footer structure, every
// payload CRC — so all accessors afterwards are infallible pointer math
// over the mapping: Values() hands back the int64 column in place and
// CohortRound() wraps a stored panel round in a zero-copy data::RoundView.
// Damage anywhere is kDataLoss at open; nothing is served from a file that
// does not fully verify.

#ifndef LONGDP_ARCHIVE_READER_H_
#define LONGDP_ARCHIVE_READER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "archive/format.h"
#include "core/release_log.h"
#include "data/round_view.h"
#include "util/status.h"

namespace longdp {
namespace archive {

class ArchiveReader {
 public:
  /// Maps and fully verifies an archive. NotFound for a missing file,
  /// InvalidArgument for a file that is not an archive at all (bad magic /
  /// too small), kDataLoss for an archive that is damaged or truncated.
  static Result<ArchiveReader> Open(const std::string& path);

  ArchiveReader(ArchiveReader&& other) noexcept;
  ArchiveReader& operator=(ArchiveReader&& other) noexcept;
  ArchiveReader(const ArchiveReader&) = delete;
  ArchiveReader& operator=(const ArchiveReader&) = delete;
  ~ArchiveReader();

  const std::string& path() const { return path_; }
  const std::vector<ArchiveEntry>& entries() const { return entries_; }
  const std::vector<std::string>& labels() const { return labels_; }
  const std::string& label(uint32_t id) const {
    return labels_[static_cast<size_t>(id)];
  }
  /// Dictionary code of `label`; NotFound if no entry carries it.
  Result<uint32_t> FindLabel(const std::string& label) const;

  /// The int64 column of a histogram/threshold entry, served in place from
  /// the mapping (entry must not be a cohort). Valid while the reader lives.
  std::span<const int64_t> Values(const ArchiveEntry& entry) const;

  /// Zero-copy view of round `t` (1-based, t <= entry.rounds) of a stored
  /// cohort panel. Trailing bits past entry.count are zero on disk (written
  /// from RoundView words, which guarantee it), so word-level kernels --
  /// popcount loops, PlaneHistogram -- run directly on the mapping.
  data::RoundView CohortRound(const ArchiveEntry& entry, int64_t t) const;

  /// Materializes an entry back into the in-memory release structs (the
  /// round-trip tests compare these field-for-field with what was
  /// captured). InvalidArgument on a kind mismatch.
  Result<core::WindowRelease> ToWindowRelease(const ArchiveEntry& entry) const;
  Result<core::CumulativeRelease> ToCumulativeRelease(
      const ArchiveEntry& entry) const;
  Result<core::CategoricalRelease> ToCategoricalRelease(
      const ArchiveEntry& entry) const;

  /// Rebuilds the full ReleaseLog stored under one label (entries in
  /// append order), equivalent to what ReleaseLog::LoadCsv would return
  /// from the CSV twin of the same stream.
  Result<core::ReleaseLog> ToReleaseLog(uint32_t label_id) const;

  /// Byte offset where the footer starts (== end of the payload region);
  /// OpenForAppend truncates here.
  uint64_t footer_offset() const { return footer_offset_; }

 private:
  ArchiveReader() = default;

  const char* base() const { return static_cast<const char*>(map_); }

  std::string path_;
  void* map_ = nullptr;
  size_t map_len_ = 0;
  uint64_t footer_offset_ = 0;
  std::vector<std::string> labels_;
  std::vector<ArchiveEntry> entries_;
};

}  // namespace archive
}  // namespace longdp

#endif  // LONGDP_ARCHIVE_READER_H_
