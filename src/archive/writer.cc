#include "archive/writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "archive/reader.h"
#include "persist/crc32c.h"
#include "persist/posix_io.h"

namespace longdp {
namespace archive {

Result<ArchiveWriter> ArchiveWriter::Create(const std::string& path) {
  LONGDP_ASSIGN_OR_RETURN(
      int fd, persist::OpenFd(path, O_WRONLY | O_CREAT | O_TRUNC, 0644));
  const std::string header = EncodeHeader();
  if (Status st = persist::WriteAllFd(fd, path, header.data(), header.size());
      !st.ok()) {
    ::close(fd);
    return st;
  }
  return ArchiveWriter(path, fd, header.size());
}

Result<ArchiveWriter> ArchiveWriter::OpenForAppend(const std::string& path) {
  // Reuse the reader's full open-time verification (magic, footer CRC,
  // per-payload CRC sweep): appending to a damaged archive would bury the
  // damage under a fresh valid tail.
  uint64_t payload_end = 0;
  std::vector<std::string> labels;
  std::vector<ArchiveEntry> entries;
  {
    LONGDP_ASSIGN_OR_RETURN(ArchiveReader reader, ArchiveReader::Open(path));
    payload_end = reader.footer_offset();
    labels = reader.labels();
    entries = reader.entries();
  }
  // O_APPEND: after the truncate below, every write lands at EOF, which is
  // exactly the old footer offset.
  LONGDP_ASSIGN_OR_RETURN(int fd,
                          persist::OpenFd(path, O_WRONLY | O_APPEND, 0));
  if (Status st =
          persist::TruncateFd(fd, path, static_cast<int64_t>(payload_end));
      !st.ok()) {
    ::close(fd);
    return st;
  }
  ArchiveWriter writer(path, fd, payload_end);
  writer.labels_ = std::move(labels);
  for (uint32_t id = 0; id < writer.labels_.size(); ++id) {
    writer.label_ids_[writer.labels_[id]] = id;
  }
  writer.entries_ = std::move(entries);
  return writer;
}

ArchiveWriter::ArchiveWriter(ArchiveWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      offset_(other.offset_),
      broken_(other.broken_),
      finished_(other.finished_),
      labels_(std::move(other.labels_)),
      label_ids_(std::move(other.label_ids_)),
      entries_(std::move(other.entries_)) {}

ArchiveWriter& ArchiveWriter::operator=(ArchiveWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    offset_ = other.offset_;
    broken_ = other.broken_;
    finished_ = other.finished_;
    labels_ = std::move(other.labels_);
    label_ids_ = std::move(other.label_ids_);
    entries_ = std::move(other.entries_);
  }
  return *this;
}

ArchiveWriter::~ArchiveWriter() {
  if (fd_ >= 0) ::close(fd_);
}

uint32_t ArchiveWriter::InternLabel(const std::string& label) {
  auto it = label_ids_.find(label);
  if (it != label_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(labels_.size());
  labels_.push_back(label);
  label_ids_[label] = id;
  return id;
}

Status ArchiveWriter::Poisoned() const {
  if (finished_) {
    return Status::FailedPrecondition("archive writer already finished: " +
                                      path_);
  }
  if (broken_) {
    return Status::FailedPrecondition(
        "archive writer poisoned by an earlier write failure: " + path_);
  }
  return Status::OK();
}

Status ArchiveWriter::AppendBlock(ArchiveEntry entry, const void* payload) {
  LONGDP_RETURN_NOT_OK(Poisoned());
  static constexpr char kZeros[kBlockAlign] = {};
  const size_t pad =
      (kBlockAlign - offset_ % kBlockAlign) % kBlockAlign;
  if (pad != 0) {
    if (Status st = persist::WriteAllFd(fd_, path_, kZeros, pad); !st.ok()) {
      broken_ = true;
      return st;
    }
    offset_ += pad;
  }
  entry.offset = offset_;
  entry.crc32c = persist::Crc32c(payload, entry.bytes);
  if (entry.bytes > 0) {
    if (Status st = persist::WriteAllFd(
            fd_, path_, static_cast<const char*>(payload), entry.bytes);
        !st.ok()) {
      broken_ = true;
      return st;
    }
  }
  offset_ += entry.bytes;
  entries_.push_back(entry);
  return Status::OK();
}

Status ArchiveWriter::AppendWindowRelease(const std::string& label,
                                          const core::WindowRelease& release) {
  ArchiveEntry entry;
  entry.kind = EntryKind::kWindow;
  entry.label_id = InternLabel(label);
  entry.t = release.t;
  entry.window_k = release.window_k;
  entry.npad = release.npad;
  entry.true_n = release.true_n;
  entry.count = static_cast<int64_t>(release.histogram.size());
  entry.bytes = ExpectedPayloadBytes(entry);
  return AppendBlock(entry, release.histogram.data());
}

Status ArchiveWriter::AppendCumulativeRelease(
    const std::string& label, const core::CumulativeRelease& release) {
  ArchiveEntry entry;
  entry.kind = EntryKind::kCumulative;
  entry.label_id = InternLabel(label);
  entry.t = release.t;
  entry.count = static_cast<int64_t>(release.thresholds.size());
  entry.bytes = ExpectedPayloadBytes(entry);
  return AppendBlock(entry, release.thresholds.data());
}

Status ArchiveWriter::AppendCategoricalRelease(
    const std::string& label, const core::CategoricalRelease& release) {
  ArchiveEntry entry;
  entry.kind = EntryKind::kCategorical;
  entry.label_id = InternLabel(label);
  entry.t = release.t;
  entry.window_k = release.window_k;
  entry.alphabet = release.alphabet;
  entry.npad = release.npad;
  entry.true_n = release.true_n;
  entry.count = static_cast<int64_t>(release.histogram.size());
  entry.bytes = ExpectedPayloadBytes(entry);
  return AppendBlock(entry, release.histogram.data());
}

Status ArchiveWriter::AppendReleaseLog(const std::string& label,
                                       const core::ReleaseLog& log) {
  for (const core::WindowRelease& r : log.window_releases()) {
    LONGDP_RETURN_NOT_OK(AppendWindowRelease(label, r));
  }
  for (const core::CumulativeRelease& r : log.cumulative_releases()) {
    LONGDP_RETURN_NOT_OK(AppendCumulativeRelease(label, r));
  }
  for (const core::CategoricalRelease& r : log.categorical_releases()) {
    LONGDP_RETURN_NOT_OK(AppendCategoricalRelease(label, r));
  }
  return Status::OK();
}

Status ArchiveWriter::AppendCohort(const std::string& label,
                                   const data::LongitudinalDataset& panel) {
  LONGDP_RETURN_NOT_OK(Poisoned());
  ArchiveEntry entry;
  entry.kind = EntryKind::kCohort;
  entry.label_id = InternLabel(label);
  entry.count = panel.num_users();
  entry.rounds = panel.rounds();
  entry.bytes = ExpectedPayloadBytes(entry);
  // Streamed rather than routed through AppendBlock: the panel's rounds are
  // written one packed stretch at a time with a running CRC, so archiving a
  // million-user panel needs no contiguous staging copy.
  static constexpr char kZeros[kBlockAlign] = {};
  const size_t pad = (kBlockAlign - offset_ % kBlockAlign) % kBlockAlign;
  if (pad != 0) {
    if (Status st = persist::WriteAllFd(fd_, path_, kZeros, pad); !st.ok()) {
      broken_ = true;
      return st;
    }
    offset_ += pad;
  }
  entry.offset = offset_;
  const size_t round_bytes = 8 * CohortWordsPerRound(entry.count);
  uint32_t crc = 0;
  for (int64_t t = 1; t <= entry.rounds; ++t) {
    const uint64_t* words = panel.Round(t).words();
    crc = persist::Crc32cExtend(crc, words, round_bytes);
    if (Status st = persist::WriteAllFd(
            fd_, path_, reinterpret_cast<const char*>(words), round_bytes);
        !st.ok()) {
      broken_ = true;
      return st;
    }
  }
  entry.crc32c = crc;
  offset_ += entry.bytes;
  entries_.push_back(entry);
  return Status::OK();
}

Status ArchiveWriter::Finish() {
  LONGDP_RETURN_NOT_OK(Poisoned());
  const std::string footer = EncodeFooter(labels_, entries_);
  const uint64_t footer_offset = offset_;
  if (Status st =
          persist::WriteAllFd(fd_, path_, footer.data(), footer.size());
      !st.ok()) {
    broken_ = true;
    return st;
  }
  const std::string tail =
      EncodeTail(footer_offset, persist::Crc32c(footer.data(), footer.size()));
  if (Status st = persist::WriteAllFd(fd_, path_, tail.data(), tail.size());
      !st.ok()) {
    broken_ = true;
    return st;
  }
  if (Status st = persist::SyncFd(fd_, path_); !st.ok()) {
    broken_ = true;
    return st;
  }
  ::close(fd_);
  fd_ = -1;
  finished_ = true;
  return persist::SyncParentDir(path_);
}

}  // namespace archive
}  // namespace longdp
