// Curator-side archive builder: appends release columns and cohort panels,
// then seals the file with the footer index + checksummed tail.
//
// A writer is append-only and single-owner. Columns are grouped under a
// free-form label (e.g. one label per release stream or experiment run);
// labels are dictionary-encoded in the footer so a thousand runs cost a
// thousand strings once, not once per column. Finish() writes the footer
// and tail and fsyncs; an archive that was never Finish()ed has no valid
// tail and will not open. OpenForAppend() reopens a finished archive,
// truncates the old footer+tail, and continues appending — the payload
// blocks already on disk are never rewritten.

#ifndef LONGDP_ARCHIVE_WRITER_H_
#define LONGDP_ARCHIVE_WRITER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "archive/format.h"
#include "core/release_log.h"
#include "data/longitudinal_dataset.h"
#include "util/status.h"

namespace longdp {
namespace archive {

class ArchiveWriter {
 public:
  /// Creates (or truncates) an archive at `path` and writes the header.
  static Result<ArchiveWriter> Create(const std::string& path);

  /// Reopens a finished archive for further appends: verifies it (full
  /// CRC sweep, like ArchiveReader::Open), restores the label dictionary
  /// and entry index, and truncates the footer+tail so new blocks extend
  /// the payload region. Finish() must be called again to re-seal.
  static Result<ArchiveWriter> OpenForAppend(const std::string& path);

  ArchiveWriter(ArchiveWriter&& other) noexcept;
  ArchiveWriter& operator=(ArchiveWriter&& other) noexcept;
  ArchiveWriter(const ArchiveWriter&) = delete;
  ArchiveWriter& operator=(const ArchiveWriter&) = delete;
  /// Closes the fd. An unfinished writer leaves a tail-less (unopenable)
  /// file behind — deliberate: a crash mid-build must not look sealed.
  ~ArchiveWriter();

  /// Appends one release column. The structs are archived field-for-field
  /// with no semantic validation (the archive preserves whatever the log
  /// holds, including degenerate releases); Finish-time readers only check
  /// structure and checksums.
  Status AppendWindowRelease(const std::string& label,
                             const core::WindowRelease& release);
  Status AppendCumulativeRelease(const std::string& label,
                                 const core::CumulativeRelease& release);
  Status AppendCategoricalRelease(const std::string& label,
                                  const core::CategoricalRelease& release);

  /// Appends every release in the log under one label.
  Status AppendReleaseLog(const std::string& label,
                          const core::ReleaseLog& log);

  /// Appends a materialized synthetic panel as bit-packed round columns
  /// (rounds-major, words_per_round words each — RoundView's layout, so
  /// readers serve word kernels straight off the mmap).
  Status AppendCohort(const std::string& label,
                      const data::LongitudinalDataset& panel);

  /// Writes the footer index + tail, fsyncs file and parent directory, and
  /// closes the fd. The writer is unusable afterwards.
  Status Finish();

  int64_t num_entries() const { return static_cast<int64_t>(entries_.size()); }

 private:
  ArchiveWriter(std::string path, int fd, uint64_t offset)
      : path_(std::move(path)), fd_(fd), offset_(offset) {}

  /// Interns `label` into the footer dictionary.
  uint32_t InternLabel(const std::string& label);

  /// Pads to the block alignment, writes `bytes` of payload, and records
  /// the completed entry. `entry.bytes`/`entry.count`/`entry.rounds` must
  /// already describe the payload; offset and crc32c are filled in here.
  Status AppendBlock(ArchiveEntry entry, const void* payload);

  /// Any failed write poisons the writer: offsets and file contents can no
  /// longer be trusted, so every later call fails fast.
  Status Poisoned() const;

  std::string path_;
  int fd_ = -1;
  uint64_t offset_ = 0;  ///< bytes written so far (== current EOF)
  bool broken_ = false;
  bool finished_ = false;
  std::vector<std::string> labels_;
  std::map<std::string, uint32_t> label_ids_;
  std::vector<ArchiveEntry> entries_;
};

}  // namespace archive
}  // namespace longdp

#endif  // LONGDP_ARCHIVE_WRITER_H_
