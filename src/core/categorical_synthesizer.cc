#include "core/categorical_synthesizer.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "core/observe_shard.h"
#include "stream/state_io.h"
#include "util/batch_sampler.h"
#include "util/thread_pool.h"

namespace longdp {
namespace core {

namespace {
// Floor division for possibly-negative numerators.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b) != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

// v1: the first checkpoint format for the categorical synthesizer, born
// with the strict-parse discipline — every numeric field is a whole token
// and the file ends in a format-specific sentinel. The header stores the
// RESOLVED padding (npad_), so reloading never re-derives it from
// beta_target. No RNG cursors: all draws are keyed by round number.
constexpr char kCategoricalMagicPrefix[] = "longdp-categorical-checkpoint-";
constexpr char kCategoricalMagic[] = "longdp-categorical-checkpoint-v1";
constexpr char kCategoricalEnd[] = "end-longdp-categorical-checkpoint-v1";
}  // namespace

Result<uint64_t> CategoricalWindowSynthesizer::NumBins(int window_k,
                                                       int alphabet) {
  if (window_k < 1) {
    return Status::InvalidArgument("window k must be >= 1");
  }
  if (alphabet < 2) {
    return Status::InvalidArgument("alphabet size must be >= 2");
  }
  uint64_t bins = 1;
  for (int j = 0; j < window_k; ++j) {
    bins *= static_cast<uint64_t>(alphabet);
    if (bins > (uint64_t{1} << 24)) {
      return Status::InvalidArgument(
          "A^k exceeds 2^24 bins; reduce k or the alphabet");
    }
  }
  return bins;
}

CategoricalWindowSynthesizer::CategoricalWindowSynthesizer(
    const Options& options, int64_t npad, double sigma2, double rho_per_step)
    : options_(options),
      npad_(npad),
      sigma2_(sigma2),
      rho_per_step_(rho_per_step),
      accountant_(options.rho),
      noise_root_(options.seed, util::substream::kHistogramNoise),
      selection_root_(options.seed, util::substream::kSelection),
      noise_sampler_(dp::NoiseSampler::Gaussian(sigma2)) {}

Result<std::unique_ptr<CategoricalWindowSynthesizer>>
CategoricalWindowSynthesizer::Create(const Options& options) {
  LONGDP_ASSIGN_OR_RETURN(uint64_t bins,
                          NumBins(options.window_k, options.alphabet));
  if (options.horizon < options.window_k) {
    return Status::InvalidArgument("horizon T must be >= window k");
  }
  if (!(options.rho > 0.0)) {
    return Status::InvalidArgument("rho must be > 0");
  }
  double steps = static_cast<double>(options.horizon - options.window_k + 1);
  double sigma2 = std::isinf(options.rho) ? 0.0 : steps / (2.0 * options.rho);
  int64_t npad = options.npad;
  if (npad < 0) {
    if (!(options.beta_target > 0.0) || options.beta_target >= 1.0) {
      return Status::InvalidArgument("beta_target must be in (0,1)");
    }
    if (std::isinf(options.rho)) {
      npad = 0;
    } else {
      // Generalized Theorem 3.2 padding: 2^k -> A^k inside the log.
      double lead = std::sqrt(steps / options.rho) + 1.0 / std::sqrt(2.0);
      double bound = lead * std::sqrt(std::log(static_cast<double>(bins) *
                                               steps /
                                               options.beta_target));
      npad = static_cast<int64_t>(std::ceil(bound));
    }
  }
  double rho_per_step = std::isinf(options.rho) ? 0.0 : options.rho / steps;
  auto synth = std::unique_ptr<CategoricalWindowSynthesizer>(
      new CategoricalWindowSynthesizer(options, npad, sigma2, rho_per_step));
  synth->num_bins_ = bins;
  synth->num_overlaps_ = bins / static_cast<uint64_t>(options.alphabet);
  return synth;
}

Status CategoricalWindowSynthesizer::ObserveRound(
    const std::vector<uint8_t>& symbols) {
  if (t_ >= options_.horizon) {
    return Status::OutOfRange("synthesizer past its horizon");
  }
  if (n_ < 0) {
    n_ = static_cast<int64_t>(symbols.size());
    user_window_.assign(symbols.size(), 0);
  } else if (symbols.size() != static_cast<size_t>(n_)) {
    return Status::InvalidArgument("round size changed");
  }
  // Validate before mutating: a rejected round must not slide any window.
  for (uint8_t s : symbols) {
    if (s >= options_.alphabet) {
      return Status::InvalidArgument("symbol out of alphabet range");
    }
  }
  // Stage 1, fused per-user base-A slide + histogram count (RNG-free and
  // index-disjoint; see core/observe_shard.h for the sharding branches and
  // the thread-count-invariance argument — the per-shard histogram gate
  // matters here because A^k bins can dwarf a small population).
  const uint64_t a = static_cast<uint64_t>(options_.alphabet);
  const bool releasing = (t_ + 1 >= options_.window_k);
  ShardedSlideAndCount(
      options_.pool, n_, releasing, num_bins_, &window_hist_, &shard_hist_,
      [&](int64_t i) {
        const size_t ii = static_cast<size_t>(i);
        const uint64_t w = (user_window_[ii] * a + symbols[ii]) % num_bins_;
        user_window_[ii] = w;
        return w;
      },
      [&](int64_t i) { return user_window_[static_cast<size_t>(i)]; });
  ++t_;
  if (t_ < options_.window_k) return Status::OK();
  if (t_ == options_.window_k) return InitialRelease();
  return SlideRelease();
}

std::vector<int64_t>& CategoricalWindowSynthesizer::NoisyPaddedHistogram() {
  // The exact histogram was counted by the fused observe pass; pad and
  // noise it here. Bin s of round t draws from the keyed substream
  // (seed, kHistogramNoise, t, s), so the per-bin draws shard freely and
  // the noise vector is identical at any shard or thread count.
  noisy_scratch_ = window_hist_;
  noise_scratch_.resize(noisy_scratch_.size());
  const util::SubstreamRng round_noise =
      noise_root_.Derive(static_cast<uint64_t>(t_));
  noise_sampler_.FillLeaves(round_noise, noise_scratch_.size(),
                            noise_scratch_.data(), options_.pool);
  for (size_t s = 0; s < noisy_scratch_.size(); ++s) {
    noisy_scratch_[s] += npad_ + noise_scratch_[s];
  }
  return noisy_scratch_;
}

Status CategoricalWindowSynthesizer::InitialRelease() {
  LONGDP_RETURN_NOT_OK(accountant_.Charge(
      rho_per_step_, "categorical histogram t=" + std::to_string(t_)));
  std::vector<int64_t>& noisy = NoisyPaddedHistogram();
  ++stats_.releases;
  for (auto& c : noisy) {
    if (c < 0) {
      c = 0;
      ++stats_.negative_clamps;
    }
  }
  counts_ = noisy;
  // Counting-sort build of the flat overlap groups: per-overlap totals are
  // one pass over the noisy census, then records scatter into place.
  groups_.Reset(num_overlaps_);
  for (uint64_t s = 0; s < num_bins_; ++s) {
    groups_.AddCount(s % num_overlaps_, noisy[s]);
  }
  groups_.BuildOffsets();
  groups_next_.Reset(num_overlaps_);
  counts_scratch_.assign(num_bins_, 0);
  targets_.assign(static_cast<size_t>(options_.alphabet), 0);
  child_order_.assign(static_cast<size_t>(options_.alphabet), 0);
  num_records_ = 0;
  for (int64_t c : noisy) num_records_ += c;
  const int k = options_.window_k;
  const uint64_t a = static_cast<uint64_t>(options_.alphabet);
  const size_t m = static_cast<size_t>(num_records_);
  history_symbols_.clear();
  history_symbols_.reserve(m * static_cast<size_t>(options_.horizon));
  history_symbols_.resize(m * static_cast<size_t>(k), 0);
  int64_t next_record = 0;
  std::vector<uint8_t> digits(static_cast<size_t>(k));
  for (uint64_t s = 0; s < num_bins_; ++s) {
    uint64_t code = s;
    for (int j = k - 1; j >= 0; --j) {
      digits[static_cast<size_t>(j)] = static_cast<uint8_t>(code % a);
      code /= a;
    }
    uint64_t overlap = s % num_overlaps_;
    for (int64_t c = 0; c < noisy[s]; ++c) {
      const size_t rec = static_cast<size_t>(next_record++);
      groups_.Place(overlap, static_cast<int64_t>(rec));
      for (int j = 0; j < k; ++j) {
        history_symbols_[static_cast<size_t>(j) * m + rec] =
            digits[static_cast<size_t>(j)];
      }
    }
  }
  initialized_ = true;
  return Status::OK();
}

Status CategoricalWindowSynthesizer::SlideRelease() {
  LONGDP_RETURN_NOT_OK(accountant_.Charge(
      rho_per_step_, "categorical histogram t=" + std::to_string(t_)));
  std::vector<int64_t>& noisy = NoisyPaddedHistogram();
  ++stats_.releases;

  const int64_t a = options_.alphabet;
  std::vector<int64_t>& new_counts = counts_scratch_;
  new_counts.assign(num_bins_, 0);
  std::vector<int64_t>& targets = targets_;
  std::vector<size_t>& child_order = child_order_;
  // All stage-2 draws of round t (remainder children, promotion subsets)
  // come from the round's keyed selection substream, in overlap order.
  util::SubstreamRng selection =
      selection_root_.Derive(static_cast<uint64_t>(t_));
  util::BatchSampler sampler(&selection);

  // Pass 1 — targets: the per-child assignment counts for every overlap
  // depend only on the noisy census and the current group sizes, not on
  // which record goes where. Computing them all up front makes the next-
  // round histogram (and so every next-round overlap group size) known
  // before a single record moves, which is what lets the regroup below be
  // a counting sort. Remainder draws stay serial, in overlap order.
  for (uint64_t z = 0; z < num_overlaps_; ++z) {
    const int64_t group = groups_.size(z);
    // Children bins of overlap z: codes z*A + a'.
    int64_t noisy_sum = 0;
    for (int64_t c = 0; c < a; ++c) {
      noisy_sum += noisy[z * static_cast<uint64_t>(a) +
                         static_cast<uint64_t>(c)];
    }
    int64_t num = group - noisy_sum;  // A * Delta_z
    int64_t base = FloorDiv(num, a);
    int64_t rem = num - base * a;  // in [0, A)
    for (int64_t c = 0; c < a; ++c) {
      targets[static_cast<size_t>(c)] =
          noisy[z * static_cast<uint64_t>(a) + static_cast<uint64_t>(c)] +
          base;
    }
    if (rem != 0) {
      ++stats_.remainder_draws;
      // Give +1 to `rem` uniformly chosen distinct children.
      for (size_t c = 0; c < child_order.size(); ++c) child_order[c] = c;
      sampler.Shuffle(&child_order);
      for (int64_t r = 0; r < rem; ++r) {
        ++targets[child_order[static_cast<size_t>(r)]];
      }
    }
    // Water-fill any negatives back from the positive targets, preserving
    // the group sum (the categorical analogue of the pairwise clamp).
    // Afterwards the targets sum to the group size exactly: base/rem
    // construction makes the raw sum equal to `group`, and the fill moves
    // mass without creating or destroying it.
    for (size_t c = 0; c < targets.size(); ++c) {
      if (targets[c] < 0) {
        int64_t deficit = -targets[c];
        targets[c] = 0;
        ++stats_.negative_clamps;
        for (size_t d = 0; d < targets.size() && deficit > 0; ++d) {
          if (targets[d] > 0) {
            int64_t take = std::min(targets[d], deficit);
            targets[d] -= take;
            deficit -= take;
          }
        }
      }
    }
    for (int64_t c = 0; c < a; ++c) {
      new_counts[z * static_cast<uint64_t>(a) + static_cast<uint64_t>(c)] =
          targets[static_cast<size_t>(c)];
    }
  }

  // Pass 2 — counting-sort regroup plan: next-round overlap sizes are the
  // column sums of the target matrix (children with the same low k-1
  // digits share an overlap), prefix-summed into flat offsets.
  groups_next_.Reset(num_overlaps_);
  for (uint64_t child = 0; child < num_bins_; ++child) {
    groups_next_.AddCount(child % num_overlaps_, new_counts[child]);
  }
  groups_next_.BuildOffsets();

  // Pass 3 — assign and scatter. One zero-filled column append for round
  // t_; promoted symbols are written record-by-record. Instead of a full
  // shuffle per overlap group, each child takes a uniformly chosen subset
  // of the records still unassigned (a batched partial shuffle of the
  // remaining span); the final child absorbs the rest without a draw.
  const size_t m = static_cast<size_t>(num_records_);
  const size_t col_base = static_cast<size_t>(t_ - 1) * m;
  history_symbols_.resize(col_base + m, 0);
  uint8_t* col = history_symbols_.data() + col_base;

  for (uint64_t z = 0; z < num_overlaps_; ++z) {
    int64_t* members = groups_.group_data(z);
    const int64_t group = groups_.size(z);
    if (group == 0) continue;
    int64_t idx = 0;
    for (int64_t c = 0; c < a; ++c) {
      const uint64_t child =
          z * static_cast<uint64_t>(a) + static_cast<uint64_t>(c);
      const int64_t take = new_counts[child];
      const int64_t remaining = group - idx;
      if (take > remaining) {
        return Status::Internal(
            "categorical slide target overruns overlap group " +
            std::to_string(z));
      }
      if (take > 0 && take < remaining) {
        sampler.PartialShuffle(members + idx, remaining, take);
      }
      for (int64_t j = 0; j < take; ++j) {
        const int64_t rec = members[idx + j];
        col[rec] = static_cast<uint8_t>(c);
        groups_next_.Place(child % num_overlaps_, rec);
      }
      idx += take;
    }
    if (idx != group) {
      return Status::Internal(
          "categorical slide targets do not cover overlap group " +
          std::to_string(z) + ": assigned " + std::to_string(idx) + " of " +
          std::to_string(group));
    }
  }
  groups_.swap(groups_next_);
  counts_.swap(new_counts);
  return Status::OK();
}

Status CategoricalWindowSynthesizer::SaveCheckpoint(std::ostream& out) const {
  namespace sio = stream::state_io;
  out << kCategoricalMagic << "\n";
  out << options_.horizon << " " << options_.window_k << " "
      << options_.alphabet << " ";
  sio::WriteDouble(out, options_.rho);
  out << " " << npad_ << " ";
  sio::WriteDouble(out, options_.beta_target);
  out << " " << options_.seed << "\n";
  out << t_ << " " << n_ << " " << (initialized_ ? 1 : 0) << " "
      << num_records_ << " " << stats_.releases << " "
      << stats_.negative_clamps << " " << stats_.remainder_draws << " ";
  sio::WriteDouble(out, accountant_.spent());
  out << "\n";
  if (n_ >= 0) {
    out << "windows";
    for (uint64_t w : user_window_) out << " " << w;
    out << "\n";
  }
  if (initialized_) {
    out << "counts ";
    sio::WriteIntVector(out, counts_);
    out << "\n";
    const size_t m = static_cast<size_t>(num_records_);
    out << "history\n";
    for (int64_t tt = 1; tt <= t_; ++tt) {
      const uint8_t* col =
          history_symbols_.data() + static_cast<size_t>(tt - 1) * m;
      for (size_t j = 0; j < m; ++j) {
        if (j > 0) out << " ";
        out << static_cast<int>(col[j]);
      }
      out << "\n";
    }
    // The overlap groups' exact member ORDER is load-bearing: the slide's
    // partial shuffles permute it, so a resumed run must see the same
    // member sequence the uninterrupted run would.
    out << "groups ";
    std::vector<int64_t> sizes(static_cast<size_t>(num_overlaps_));
    for (uint64_t z = 0; z < num_overlaps_; ++z) {
      sizes[static_cast<size_t>(z)] = groups_.size(static_cast<size_t>(z));
    }
    sio::WriteIntVector(out, sizes);
    out << "\n";
    std::vector<int64_t> members;
    members.reserve(m);
    for (uint64_t z = 0; z < num_overlaps_; ++z) {
      const int64_t* g = groups_.group_data(static_cast<size_t>(z));
      members.insert(members.end(), g,
                     g + groups_.size(static_cast<size_t>(z)));
    }
    sio::WriteIntVector(out, members);
    out << "\n";
  }
  out << kCategoricalEnd << "\n";
  return out.good() ? Status::OK()
                    : Status::IOError("checkpoint write failed");
}

Result<std::unique_ptr<CategoricalWindowSynthesizer>>
CategoricalWindowSynthesizer::LoadCheckpoint(std::istream& in) {
  namespace sio = stream::state_io;
  std::string magic;
  if (!std::getline(in, magic)) {
    return Status::InvalidArgument("not a categorical checkpoint");
  }
  if (magic != kCategoricalMagic) {
    // Version skew gets its own message: a future-format checkpoint is a
    // real checkpoint this build cannot restore, not arbitrary garbage.
    if (magic.rfind(kCategoricalMagicPrefix, 0) == 0) {
      return Status::InvalidArgument(
          "unsupported categorical checkpoint version '" + magic +
          "'; this build reads " + kCategoricalMagic);
    }
    return Status::InvalidArgument("not a categorical checkpoint");
  }
  Options options;
  LONGDP_ASSIGN_OR_RETURN(options.horizon, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(int64_t window_k, sio::ReadInt(in));
  options.window_k = static_cast<int>(window_k);
  LONGDP_ASSIGN_OR_RETURN(int64_t alphabet, sio::ReadInt(in));
  options.alphabet = static_cast<int>(alphabet);
  LONGDP_ASSIGN_OR_RETURN(options.rho, sio::ReadDouble(in));
  LONGDP_ASSIGN_OR_RETURN(options.npad, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(options.beta_target, sio::ReadDouble(in));
  LONGDP_ASSIGN_OR_RETURN(options.seed, sio::ReadCursor(in));
  if (options.npad < 0) {
    return Status::InvalidArgument(
        "categorical checkpoint must store the resolved npad");
  }
  LONGDP_ASSIGN_OR_RETURN(auto synth, Create(options));

  LONGDP_ASSIGN_OR_RETURN(int64_t t, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(int64_t n, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(int64_t initialized, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(int64_t num_records, sio::ReadInt(in));
  Stats stats;
  LONGDP_ASSIGN_OR_RETURN(stats.releases, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(stats.negative_clamps, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(stats.remainder_draws, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(const double spent, sio::ReadDouble(in));
  if (t < 0 || t > options.horizon ||
      (initialized != 0 && initialized != 1) || num_records < 0) {
    return Status::InvalidArgument("corrupt categorical checkpoint state");
  }
  const bool inited = initialized == 1;
  if (inited != (t >= options.window_k && n >= 0)) {
    return Status::InvalidArgument(
        "categorical checkpoint initialized flag inconsistent with t");
  }
  if ((t == 0) != (n < 0)) {
    return Status::InvalidArgument(
        "categorical checkpoint population inconsistent with t");
  }
  if (!inited && num_records != 0) {
    return Status::InvalidArgument(
        "categorical checkpoint has records before the first release");
  }
  // A garbage spent token restoring as 0.0 would silently reset the
  // privacy budget; ReadDouble already hard-fails, so only charge here.
  if (spent > 0.0) {
    LONGDP_RETURN_NOT_OK(
        synth->accountant_.Charge(spent, "restored-checkpoint"));
  }
  if (n >= 0) {
    LONGDP_RETURN_NOT_OK(
        sio::ExpectToken(in, "windows", "categorical checkpoint"));
    synth->user_window_.resize(static_cast<size_t>(n));
    for (auto& w : synth->user_window_) {
      LONGDP_ASSIGN_OR_RETURN(w, sio::ReadCursor(in));
      if (w >= synth->num_bins_) {
        return Status::InvalidArgument("window pattern out of range");
      }
    }
  }
  if (inited) {
    LONGDP_RETURN_NOT_OK(
        sio::ExpectToken(in, "counts", "categorical checkpoint"));
    LONGDP_RETURN_NOT_OK(sio::ReadIntVector(in, &synth->counts_));
    if (synth->counts_.size() != static_cast<size_t>(synth->num_bins_)) {
      return Status::InvalidArgument("categorical histogram wrong size");
    }
    int64_t total = 0;
    for (int64_t c : synth->counts_) {
      if (c < 0) {
        return Status::InvalidArgument("categorical histogram negative bin");
      }
      total += c;
    }
    if (total != num_records) {
      return Status::InvalidArgument(
          "categorical histogram does not sum to the record count");
    }
    LONGDP_RETURN_NOT_OK(
        sio::ExpectToken(in, "history", "categorical checkpoint"));
    const size_t m = static_cast<size_t>(num_records);
    synth->history_symbols_.assign(m * static_cast<size_t>(t), 0);
    for (int64_t tt = 1; tt <= t; ++tt) {
      uint8_t* col =
          synth->history_symbols_.data() + static_cast<size_t>(tt - 1) * m;
      for (size_t j = 0; j < m; ++j) {
        LONGDP_ASSIGN_OR_RETURN(int64_t sym, sio::ReadInt(in));
        if (sym < 0 || sym >= options.alphabet) {
          return Status::InvalidArgument("history symbol out of range");
        }
        col[j] = static_cast<uint8_t>(sym);
      }
    }
    LONGDP_RETURN_NOT_OK(
        sio::ExpectToken(in, "groups", "categorical checkpoint"));
    std::vector<int64_t> sizes;
    LONGDP_RETURN_NOT_OK(sio::ReadIntVector(in, &sizes));
    if (sizes.size() != static_cast<size_t>(synth->num_overlaps_)) {
      return Status::InvalidArgument("overlap group sizes wrong length");
    }
    int64_t group_total = 0;
    for (int64_t s : sizes) {
      if (s < 0) {
        return Status::InvalidArgument("negative overlap group size");
      }
      group_total += s;
    }
    if (group_total != num_records) {
      return Status::InvalidArgument(
          "overlap groups do not cover the record count");
    }
    std::vector<int64_t> members;
    LONGDP_RETURN_NOT_OK(sio::ReadIntVector(in, &members));
    if (members.size() != m) {
      return Status::InvalidArgument("overlap group members wrong length");
    }
    std::vector<uint8_t> seen(m, 0);
    for (int64_t r : members) {
      if (r < 0 || r >= num_records || seen[static_cast<size_t>(r)]) {
        return Status::InvalidArgument(
            "overlap group members are not a permutation of the records");
      }
      seen[static_cast<size_t>(r)] = 1;
    }
    synth->groups_.Reset(static_cast<size_t>(synth->num_overlaps_));
    for (size_t z = 0; z < sizes.size(); ++z) {
      synth->groups_.AddCount(z, sizes[z]);
    }
    synth->groups_.BuildOffsets();
    size_t idx = 0;
    for (size_t z = 0; z < sizes.size(); ++z) {
      for (int64_t j = 0; j < sizes[z]; ++j) {
        synth->groups_.Place(z, members[idx++]);
      }
    }
    // Re-arm the per-round scratch exactly as InitialRelease would; the
    // next SlideRelease assumes these are sized.
    synth->groups_next_.Reset(static_cast<size_t>(synth->num_overlaps_));
    synth->counts_scratch_.assign(static_cast<size_t>(synth->num_bins_), 0);
    synth->targets_.assign(static_cast<size_t>(options.alphabet), 0);
    synth->child_order_.assign(static_cast<size_t>(options.alphabet), 0);
    synth->initialized_ = true;
  }
  LONGDP_RETURN_NOT_OK(
      sio::ExpectToken(in, kCategoricalEnd, "categorical checkpoint"));
  synth->t_ = t;
  synth->n_ = n;
  synth->num_records_ = num_records;
  synth->stats_ = stats;
  return synth;
}

Result<double> CategoricalWindowSynthesizer::DebiasedBinFraction(
    uint64_t s) const {
  if (!initialized_) {
    return Status::FailedPrecondition("no release yet");
  }
  if (s >= num_bins_) {
    return Status::OutOfRange("pattern code out of range");
  }
  return static_cast<double>(counts_[s] - npad_) / static_cast<double>(n_);
}

}  // namespace core
}  // namespace longdp
