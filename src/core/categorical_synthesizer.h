// Categorical generalization of Algorithm 1.
//
// The paper notes (Section 1, "Our results") that the fixed-time-window
// solution "naturally extends to handle categorical data with more than 2
// categories". This module implements that extension for an alphabet of
// size A: window patterns are base-A strings of length k (A^k histogram
// bins), and the sliding-window consistency constraint generalizes to
//
//   sum_{a in A} p^t_{z a}  =  sum_{a in A} p^{t-1}_{a z}
//
// for every overlap z in A^{k-1}. The correction term Delta_z spreads the
// discrepancy evenly over the A children with the integer remainder
// assigned to uniformly chosen children (the A = 2 case reduces exactly to
// Algorithm 1's +-1/2 rounding).

#ifndef LONGDP_CORE_CATEGORICAL_SYNTHESIZER_H_
#define LONGDP_CORE_CATEGORICAL_SYNTHESIZER_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "dp/accountant.h"
#include "dp/noise_sampler.h"
#include "util/flat_groups.h"
#include "util/status.h"
#include "util/substream.h"

namespace longdp {
namespace util {
class ThreadPool;
}  // namespace util

namespace core {

class CategoricalWindowSynthesizer {
 public:
  struct Options {
    int64_t horizon = 0;   ///< T
    int window_k = 0;      ///< window width k
    int alphabet = 2;      ///< A >= 2; bins = A^k (must stay <= 2^24)
    double rho = 0.0;      ///< total zCDP budget
    int64_t npad = -1;     ///< -1: auto-size from beta_target
    double beta_target = 0.05;
    /// Root seed for every substream the synthesizer draws from: per-bin
    /// histogram noise is keyed (seed, kHistogramNoise, round, bin, draw)
    /// and the stage-2 selection draws (remainder children, promotion
    /// subsets) are keyed (seed, kSelection, round, draw). The release log
    /// is a pure function of (options, input data) at any shard count.
    uint64_t seed = 0;
    /// Optional worker pool for the stage-1 shards (per-user base-A window
    /// updates and histogram accumulation) and the per-bin noise draws.
    /// Non-owning; must outlive the synthesizer. Null runs serially.
    /// Releases are bit-identical at any shard or thread count: noise is
    /// keyed per bin, stage-2 draws stay serial, and shard histograms
    /// reduce in shard order.
    util::ThreadPool* pool = nullptr;
  };

  struct Stats {
    int64_t negative_clamps = 0;
    int64_t remainder_draws = 0;
    int64_t releases = 0;
  };

  static Result<std::unique_ptr<CategoricalWindowSynthesizer>> Create(
      const Options& options);

  /// Consumes round t's symbols (each in [0, A)). Randomness comes from
  /// the synthesizer's own substreams (Options::seed).
  Status ObserveRound(const std::vector<uint8_t>& symbols);

  bool has_release() const { return initialized_; }
  int64_t t() const { return t_; }
  int64_t npad() const { return npad_; }
  int64_t population() const { return n_; }
  int64_t synthetic_population() const { return num_records_; }
  int window_k() const { return options_.window_k; }
  int alphabet() const { return options_.alphabet; }
  double sigma2() const { return sigma2_; }

  /// Current synthetic histogram over the A^k window patterns (base-A codes,
  /// oldest symbol most significant).
  const std::vector<int64_t>& SyntheticHistogram() const { return counts_; }

  /// Debiased estimate of the fraction of the original population whose
  /// current window equals base-A pattern code `s`.
  Result<double> DebiasedBinFraction(uint64_t s) const;

  /// Symbol of synthetic record `r` at round `tt` (1-based, tt <= t()).
  int Symbol(int64_t r, int64_t tt) const {
    return history_symbols_[static_cast<size_t>(tt - 1) *
                                static_cast<size_t>(num_records_) +
                            static_cast<size_t>(r)];
  }

  const Stats& stats() const { return stats_; }
  const dp::ZCdpAccountant& accountant() const { return accountant_; }

  /// Serializes the full synthesizer state (options with the resolved
  /// padding, accountant, per-user windows, synthetic cohort, and overlap
  /// group member order) as a text checkpoint ending in a format-specific
  /// sentinel token. No RNG cursors are needed: every draw stream is keyed
  /// by its round number.
  Status SaveCheckpoint(std::ostream& out) const;

  /// Restores a synthesizer saved by SaveCheckpoint. The worker pool is not
  /// persisted; the restored synthesizer runs serially until set_pool()
  /// re-attaches one.
  static Result<std::unique_ptr<CategoricalWindowSynthesizer>> LoadCheckpoint(
      std::istream& in);

  /// Re-attaches a worker pool (e.g. after LoadCheckpoint). Non-owning;
  /// must outlive the synthesizer. Null runs serially.
  void set_pool(util::ThreadPool* pool) { options_.pool = pool; }

  /// Number of width-k base-A patterns, A^k.
  static Result<uint64_t> NumBins(int window_k, int alphabet);

 private:
  CategoricalWindowSynthesizer(const Options& options, int64_t npad,
                               double sigma2, double rho_per_step);

  Status InitialRelease();
  Status SlideRelease();
  /// Fills and returns noisy_scratch_ (persistent, never reallocated);
  /// one keyed discrete Gaussian per bin, sharded across Options::pool.
  std::vector<int64_t>& NoisyPaddedHistogram();

  Options options_;
  int64_t npad_;
  double sigma2_;
  double rho_per_step_;
  dp::ZCdpAccountant accountant_;
  /// Substream roots; round t uses root.Derive(t), so every release's
  /// draws are addressable without any mutable shared stream.
  util::SubstreamRng noise_root_;
  util::SubstreamRng selection_root_;
  /// Batched per-bin histogram noise (same draws as the one-shot sampler).
  dp::NoiseSampler noise_sampler_;

  uint64_t num_bins_ = 0;      ///< A^k
  uint64_t num_overlaps_ = 0;  ///< A^(k-1)
  int64_t n_ = -1;
  int64_t t_ = 0;
  bool initialized_ = false;
  int64_t num_records_ = 0;
  std::vector<uint64_t> user_window_;  ///< base-A window code per user

  // Synthetic cohort state (flattened into the synthesizer: categorical
  // grouping logic differs enough from the binary cohort to keep separate).
  // Records live in one flat column-major symbol matrix — round tt's
  // column is [(tt-1)*m, tt*m) for m = num_records_ — so a round append is
  // one zero-filled resize plus per-record writes into a contiguous column.
  std::vector<uint8_t> history_symbols_;
  /// Records grouped by overlap code, as one flat counting-sorted array.
  /// The slide regroup knows every next-round group size from the child
  /// targets alone, so it is a count/prefix-sum/scatter pass into the
  /// double buffer followed by a swap.
  util::FlatGroups groups_;
  util::FlatGroups groups_next_;              ///< regroup double buffer
  std::vector<int64_t> counts_;               ///< current histogram p_s
  Stats stats_;

  // Persistent per-round scratch (sized once, reused every release) so the
  // pattern-histogram update allocates nothing in steady state.
  std::vector<int64_t> noisy_scratch_;              ///< A^k noisy histogram
  std::vector<int64_t> noise_scratch_;              ///< A^k bulk noise draws
  std::vector<int64_t> counts_scratch_;             ///< next-round histogram
  std::vector<int64_t> targets_;                    ///< per-child targets
  std::vector<size_t> child_order_;                 ///< remainder shuffle
  /// Exact window histogram from the fused slide+count observe pass.
  std::vector<int64_t> window_hist_;
  std::vector<std::vector<int64_t>> shard_hist_;    ///< per-shard histograms
};

}  // namespace core
}  // namespace longdp

#endif  // LONGDP_CORE_CATEGORICAL_SYNTHESIZER_H_
