#include "core/cumulative_synthesizer.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <istream>
#include <ostream>

#include "stream/counter_factory.h"
#include "stream/state_io.h"
#include "util/batch_sampler.h"
#include "util/csv.h"
#include "util/simd/simd.h"
#include "util/thread_pool.h"

namespace longdp {
namespace core {

Result<std::unique_ptr<CumulativeSynthesizer>> CumulativeSynthesizer::Create(
    const Options& options) {
  if (options.horizon < 1) {
    return Status::InvalidArgument("horizon T must be >= 1");
  }
  if (!(options.rho > 0.0)) {
    return Status::InvalidArgument("rho must be > 0");
  }
  return std::unique_ptr<CumulativeSynthesizer>(
      new CumulativeSynthesizer(options));
}

Status CumulativeSynthesizer::InitializeForPopulation(int64_t n) {
  n_ = n;
  // Weights reach at most horizon, so bit_width(horizon) planes hold every
  // value; the bit-plane kernels cap at 16 planes, so horizons at or past
  // 2^16 keep the scalar weight vector.
  num_weight_planes_ =
      options_.horizon < (int64_t{1} << 16)
          ? std::bit_width(static_cast<uint64_t>(options_.horizon))
          : 0;
  if (num_weight_planes_ > 0) {
    const size_t num_words = static_cast<size_t>((n + 63) >> 6);
    weight_planes_.assign(static_cast<size_t>(num_weight_planes_),
                          std::vector<uint64_t>(num_words, 0));
    plane_hist_.assign(size_t{1} << num_weight_planes_, 0);
    orig_weight_.clear();
  } else {
    orig_weight_.assign(static_cast<size_t>(n), 0);
  }
  history_bits_.clear();
  history_bits_.reserve(static_cast<size_t>(n) *
                        static_cast<size_t>(options_.horizon));
  weight_groups_.assign(static_cast<size_t>(options_.horizon) + 1, {});
  group_head_.assign(static_cast<size_t>(options_.horizon) + 1, 0);
  z_.assign(static_cast<size_t>(options_.horizon), 0);
  auto& zero_group = weight_groups_[0];
  zero_group.reserve(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) zero_group.push_back(r);

  stream::CounterBank::Options bank_options;
  bank_options.horizon = options_.horizon;
  bank_options.population = n;
  bank_options.total_rho = options_.rho;
  bank_options.split = options_.split;
  bank_options.factory = options_.counter_factory;
  bank_options.seed = options_.seed;
  bank_options.pool = options_.pool;
  LONGDP_ASSIGN_OR_RETURN(
      bank_, stream::CounterBank::Create(bank_options, &accountant_));

  prev_released_.assign(static_cast<size_t>(options_.horizon) + 1, 0);
  prev_released_[0] = n;
  released_ = prev_released_;
  return Status::OK();
}

Status CumulativeSynthesizer::ObserveRound(const std::vector<uint8_t>& bits) {
  // Packing validates: a round with any entry other than 0/1 is rejected
  // here, before any state changes. (The pre-validation variant
  // incremented weights up to the bad entry, which corrupted the
  // weight->z indexing of every later round — an ASan-visible overflow.)
  LONGDP_RETURN_NOT_OK(packed_scratch_.Assign(bits));
  return ObserveRound(packed_scratch_.view());
}

Status CumulativeSynthesizer::ObserveRound(data::RoundView round) {
  if (t_ >= options_.horizon) {
    return Status::OutOfRange("synthesizer past its horizon T=" +
                              std::to_string(options_.horizon));
  }
  if (n_ < 0) {
    LONGDP_RETURN_NOT_OK(InitializeForPopulation(round.size()));
  } else if (round.size() != n_) {
    return Status::InvalidArgument(
        "round size changed; the population is fixed over the horizon");
  }

  // Stage 1 input: z^t_b = #{ i : weight_i(t-1) = b-1 and x^t_i = 1 }.
  // z_ is persistent scratch — zeroed, never reallocated.
  //
  // Bit-plane path: the weight histogram of the round's set lanes is one
  // masked PlaneHistogram over the weight planes (mask = the round's
  // packed words), and the weight increments are one bit-sliced
  // ripple-carry PlaneAdd of those same words. Both kernels are exact
  // integer popcount/logic over word ranges, so the word-range shards
  // below (per-shard histograms reduced in shard order, disjoint PlaneAdd
  // ranges) are identical at every thread count. Lanes past n never count:
  // their mask bits are zero by the RoundView packing invariant.
  const int shards = util::NumShards(options_.pool);
  if (num_weight_planes_ > 0) {
    const int p = num_weight_planes_;
    const size_t num_words = round.num_words();
    const uint64_t* planes[16];
    uint64_t* mut_planes[16];
    for (int j = 0; j < p; ++j) {
      planes[j] = weight_planes_[static_cast<size_t>(j)].data();
      mut_planes[j] = weight_planes_[static_cast<size_t>(j)].data();
    }
    std::fill(plane_hist_.begin(), plane_hist_.end(), 0);
    if (shards > 1 && num_words >= static_cast<size_t>(shards)) {
      if (shard_z_.size() != static_cast<size_t>(shards)) {
        shard_z_.assign(static_cast<size_t>(shards),
                        std::vector<int64_t>(plane_hist_.size(), 0));
      }
      options_.pool->ParallelFor(
          static_cast<int64_t>(num_words),
          [&](int s, int64_t lo, int64_t hi) {
            auto& h = shard_z_[static_cast<size_t>(s)];
            std::fill(h.begin(), h.end(), 0);
            const uint64_t* sub[16];
            uint64_t* mut_sub[16];
            for (int j = 0; j < p; ++j) {
              sub[j] = planes[j] + lo;
              mut_sub[j] = mut_planes[j] + lo;
            }
            const size_t span = static_cast<size_t>(hi - lo);
            util::simd::PlaneHistogram(sub, p, round.words() + lo, span,
                                       h.data());
            util::simd::PlaneAdd(mut_sub, p, round.words() + lo, span);
          });
      for (const auto& h : shard_z_) {
        for (size_t b = 0; b < plane_hist_.size(); ++b) {
          plane_hist_[b] += h[b];
        }
      }
    } else {
      util::simd::PlaneHistogram(planes, p, round.words(), num_words,
                                 plane_hist_.data());
      util::simd::PlaneAdd(mut_planes, p, round.words(), num_words);
    }
    // Masked lanes carry weights < t <= horizon, so the histogram's tail
    // past z_'s horizon entries is always zero.
    std::copy(plane_hist_.begin(),
              plane_hist_.begin() + static_cast<int64_t>(z_.size()),
              z_.begin());
  } else if (shards == 1) {
    std::fill(z_.begin(), z_.end(), 0);
    round.ForEachOne([&](int64_t i) {
      ++z_[static_cast<size_t>(orig_weight_[static_cast<size_t>(i)])];
      ++orig_weight_[static_cast<size_t>(i)];
    });
  } else {
    if (shard_z_.size() != static_cast<size_t>(shards)) {
      shard_z_.assign(static_cast<size_t>(shards),
                      std::vector<int64_t>(z_.size(), 0));
    }
    options_.pool->ParallelFor(n_, [&](int s, int64_t lo, int64_t hi) {
      auto& z = shard_z_[static_cast<size_t>(s)];
      std::fill(z.begin(), z.end(), 0);
      round.ForEachOneInRange(lo, hi, [&](int64_t i) {
        ++z[static_cast<size_t>(orig_weight_[static_cast<size_t>(i)])];
        ++orig_weight_[static_cast<size_t>(i)];
      });
    });
    std::fill(z_.begin(), z_.end(), 0);
    for (const auto& z : shard_z_) {
      for (size_t b = 0; b < z_.size(); ++b) z_[b] += z[b];
    }
  }
  ++t_;
  LONGDP_RETURN_NOT_OK(bank_->ObserveRoundBatched(z_));
  released_ = bank_->monotone_row();

  // Stage 2: extend every record with a provisional 0 (one zero-filled
  // column append into the flat matrix), then flip the promoted records.
  // Descending b keeps selections against the time-(t-1) weight groups
  // (promotions only move records upward into groups already processed).
  const size_t col_base =
      static_cast<size_t>(t_ - 1) * static_cast<size_t>(n_);
  history_bits_.resize(col_base + static_cast<size_t>(n_), 0);
  uint8_t* col = history_bits_.data() + col_base;
  util::SubstreamRng selection =
      selection_root_.Derive(static_cast<uint64_t>(t_));
  util::BatchSampler sampler(&selection);
  for (int64_t b = std::min<int64_t>(t_, options_.horizon); b >= 1; --b) {
    size_t ib = static_cast<size_t>(b);
    int64_t zhat = released_[ib] - prev_released_[ib];
    if (zhat < 0) {
      return Status::Internal(
          "monotonization violated: zhat < 0 at b=" + std::to_string(b));
    }
    if (zhat == 0) continue;
    auto& source = weight_groups_[ib - 1];
    size_t& head = group_head_[ib - 1];
    int64_t group = static_cast<int64_t>(source.size() - head);
    if (zhat > group) {
      return Status::Internal(
          "monotonization violated: zhat exceeds weight-(b-1) group at b=" +
          std::to_string(b));
    }
    // Uniformly choose zhat records to promote: batched partial
    // Fisher-Yates over the live suffix [head, end). The sampler handles
    // the zhat == group (full-group promotion) edge internally, skipping
    // the degenerate final draw.
    int64_t* live = source.data() + head;
    sampler.PartialShuffle(live, group, zhat);
    auto& target = weight_groups_[ib];
    for (int64_t i = 0; i < zhat; ++i) col[live[i]] = 1;
    // One ranged append instead of zhat push_backs (same member order).
    target.insert(target.end(), live, live + zhat);
    head += zhat;
    // Amortized compaction keeps the spent prefix from growing past the
    // live region, bounding memory without per-round memmoves.
    if (head == source.size()) {
      source.clear();
      head = 0;
    } else if (head > 64 && head * 2 > source.size()) {
      source.erase(source.begin(),
                   source.begin() + static_cast<int64_t>(head));
      head = 0;
    }
  }
  prev_released_ = released_;
  return Status::OK();
}

int64_t CumulativeSynthesizer::OrigWeight(int64_t i) const {
  if (num_weight_planes_ == 0) {
    return orig_weight_[static_cast<size_t>(i)];
  }
  int64_t w = 0;
  for (int j = 0; j < num_weight_planes_; ++j) {
    w |= static_cast<int64_t>(
             (weight_planes_[static_cast<size_t>(j)][static_cast<size_t>(
                  i >> 6)] >>
              (i & 63)) &
             1)
         << j;
  }
  return w;
}

void CumulativeSynthesizer::SetOrigWeight(int64_t i, int64_t w) {
  if (num_weight_planes_ == 0) {
    orig_weight_[static_cast<size_t>(i)] = static_cast<int32_t>(w);
    return;
  }
  for (int j = 0; j < num_weight_planes_; ++j) {
    uint64_t& word =
        weight_planes_[static_cast<size_t>(j)][static_cast<size_t>(i >> 6)];
    const uint64_t bit = uint64_t{1} << (i & 63);
    if ((w >> j) & 1) {
      word |= bit;
    } else {
      word &= ~bit;
    }
  }
}

const std::vector<int64_t>& CumulativeSynthesizer::raw_thresholds() const {
  static const std::vector<int64_t> kEmpty;
  return bank_ ? bank_->raw_row() : kEmpty;
}

Result<double> CumulativeSynthesizer::Answer(int64_t b) const {
  if (t_ < 1) {
    return Status::FailedPrecondition("no rounds observed yet");
  }
  if (b < 0 || b > options_.horizon) {
    return Status::OutOfRange("threshold b must be in [0, T]");
  }
  if (n_ == 0) return 0.0;
  return static_cast<double>(released_[static_cast<size_t>(b)]) /
         static_cast<double>(n_);
}

std::vector<int64_t> CumulativeSynthesizer::SyntheticThresholdCounts() const {
  std::vector<int64_t> counts(static_cast<size_t>(options_.horizon) + 1, 0);
  if (n_ < 0) return counts;
  // Group sizes give the exact-weight histogram; suffix-sum to thresholds.
  // Live size = stored size minus the spent head prefix.
  int64_t running = 0;
  for (int64_t b = options_.horizon; b >= 0; --b) {
    running += static_cast<int64_t>(
        weight_groups_[static_cast<size_t>(b)].size() -
        group_head_[static_cast<size_t>(b)]);
    counts[static_cast<size_t>(b)] = running;
  }
  return counts;
}

Result<data::LongitudinalDataset> CumulativeSynthesizer::ToDataset() const {
  if (t_ < 1) {
    return Status::FailedPrecondition("no rounds observed yet");
  }
  LONGDP_ASSIGN_OR_RETURN(
      auto ds, data::LongitudinalDataset::Create(n_, options_.horizon));
  std::vector<uint8_t> round(static_cast<size_t>(n_));
  for (int64_t tt = 1; tt <= t_; ++tt) {
    // Column-major storage: round tt is one contiguous copy.
    const uint8_t* col = history_bits_.data() +
                         static_cast<size_t>(tt - 1) *
                             static_cast<size_t>(n_);
    round.assign(col, col + n_);
    LONGDP_RETURN_NOT_OK(ds.AppendRound(round));
  }
  return ds;
}


namespace {
// v2: the header carries the substream seed, and counter states embed
// their substream cursors — a restored run resumes the exact remaining
// noise/selection sequence (v1 checkpoints predate keyed substreams and
// are rejected).
// v3 adds the weight-group member order and spent heads: the promotion
// shuffles permute the live suffixes, so without them a resumed run
// promotes different record identities than the uninterrupted run
// (released thresholds match, record histories don't).
// v4 replaces the generic "end" trailer with the format-specific sentinel
// below (consumed strictly by the loader) and parses every numeric field
// as a strict whole token — trailing garbage inside a token, or a
// checkpoint truncated after a valid prefix, now hard-fails instead of
// restoring a plausible-but-wrong state.
constexpr char kCumulativeMagicPrefix[] = "longdp-cumulative-checkpoint-";
constexpr char kCumulativeMagic[] = "longdp-cumulative-checkpoint-v4";
constexpr char kCumulativeEnd[] = "end-longdp-cumulative-checkpoint-v4";

std::string CumulativeDoubleToken(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}
}  // namespace

void CumulativeSynthesizer::set_pool(util::ThreadPool* pool) {
  options_.pool = pool;
  // The counter bank captured the pool at creation; keep it in step.
  if (bank_ != nullptr) bank_->set_pool(pool);
}

Status CumulativeSynthesizer::SaveCheckpoint(std::ostream& out) const {
  out << kCumulativeMagic << "\n";
  std::string counter_name =
      options_.counter_factory ? options_.counter_factory->name() : "tree";
  out << options_.horizon << " " << CumulativeDoubleToken(options_.rho)
      << " " << stream::BudgetSplitName(options_.split) << " "
      << counter_name << " " << options_.seed << "\n";
  out << t_ << " " << n_ << "\n";
  if (n_ >= 0) {
    out << "weights";
    // Materialized per-record weights: the bit-plane layout is an
    // in-memory choice, not checkpoint format.
    for (int64_t i = 0; i < n_; ++i) out << " " << OrigWeight(i);
    out << "\n";
    out << "released";
    for (int64_t v : released_) out << " " << v;
    out << "\n";
    out << "histories " << n_ << " " << t_ << "\n";
    for (int64_t r = 0; r < n_; ++r) {
      std::string line(static_cast<size_t>(t_), '0');
      for (int64_t j = 0; j < t_; ++j) {
        if (history_bits_[static_cast<size_t>(j) * static_cast<size_t>(n_) +
                          static_cast<size_t>(r)]) {
          line[static_cast<size_t>(j)] = '1';
        }
      }
      out << line << "\n";
    }
    out << "groups\n";
    for (size_t b = 0; b < weight_groups_.size(); ++b) {
      const auto& group = weight_groups_[b];
      out << group.size() << " " << group_head_[b];
      for (int64_t r : group) out << " " << r;
      out << "\n";
    }
    out << "bank\n";
    LONGDP_RETURN_NOT_OK(bank_->SaveState(out));
  }
  out << kCumulativeEnd << "\n";
  return out.good() ? Status::OK()
                    : Status::IOError("checkpoint write failed");
}

Result<std::unique_ptr<CumulativeSynthesizer>>
CumulativeSynthesizer::LoadCheckpoint(std::istream& in) {
  std::string magic;
  if (!std::getline(in, magic)) {
    return Status::InvalidArgument("not a cumulative checkpoint");
  }
  if (magic != kCumulativeMagic) {
    // Version skew gets its own message: a v1-v3 checkpoint is a real
    // checkpoint this build cannot restore, not arbitrary garbage.
    if (magic.rfind(kCumulativeMagicPrefix, 0) == 0) {
      return Status::InvalidArgument(
          "unsupported cumulative checkpoint version '" + magic +
          "'; this build reads " + kCumulativeMagic);
    }
    return Status::InvalidArgument("not a cumulative checkpoint");
  }
  namespace sio = stream::state_io;
  Options options;
  std::string rho_tok, split_name, counter_name;
  LONGDP_ASSIGN_OR_RETURN(options.horizon, sio::ReadInt(in));
  if (!(in >> rho_tok >> split_name >> counter_name)) {
    return Status::InvalidArgument("corrupt checkpoint header");
  }
  LONGDP_ASSIGN_OR_RETURN(options.seed, sio::ReadCursor(in));
  // Strict parse: a corrupted rho token must reject the checkpoint, not
  // restore as rho=0 and zero out the privacy budget.
  LONGDP_ASSIGN_OR_RETURN(options.rho, util::ParseDoubleField(rho_tok));
  LONGDP_ASSIGN_OR_RETURN(options.split,
                          stream::BudgetSplitFromName(split_name));
  LONGDP_ASSIGN_OR_RETURN(options.counter_factory,
                          stream::MakeCounterFactory(counter_name));
  LONGDP_ASSIGN_OR_RETURN(auto synth, Create(options));
  LONGDP_ASSIGN_OR_RETURN(int64_t t, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(int64_t n, sio::ReadInt(in));
  if (t < 0 || t > options.horizon) {
    return Status::InvalidArgument("checkpoint time out of range");
  }
  if (n >= 0) {
    // InitializeForPopulation creates the bank and charges the full budget,
    // exactly as the original run did at its first round.
    LONGDP_RETURN_NOT_OK(synth->InitializeForPopulation(n));
    std::string tag;
    if (!(in >> tag) || tag != "weights") {
      return Status::InvalidArgument("corrupt checkpoint: expected weights");
    }
    for (int64_t i = 0; i < n; ++i) {
      LONGDP_ASSIGN_OR_RETURN(int64_t wv, sio::ReadInt(in));
      if (wv < 0 || wv > t) {
        return Status::InvalidArgument("corrupt checkpoint weights");
      }
      synth->SetOrigWeight(i, wv);
    }
    if (!(in >> tag) || tag != "released") {
      return Status::InvalidArgument("corrupt checkpoint: expected released");
    }
    for (auto& v : synth->released_) {
      LONGDP_ASSIGN_OR_RETURN(v, sio::ReadInt(in));
    }
    synth->prev_released_ = synth->released_;
    LONGDP_RETURN_NOT_OK(sio::ExpectToken(in, "histories", "checkpoint"));
    LONGDP_ASSIGN_OR_RETURN(int64_t num_records, sio::ReadInt(in));
    LONGDP_ASSIGN_OR_RETURN(int64_t rounds, sio::ReadInt(in));
    if (num_records != n || rounds != t) {
      return Status::InvalidArgument("corrupt checkpoint histories header");
    }
    std::string line;
    std::getline(in, line);
    for (auto& group : synth->weight_groups_) group.clear();
    std::fill(synth->group_head_.begin(), synth->group_head_.end(), 0);
    synth->history_bits_.assign(
        static_cast<size_t>(t) * static_cast<size_t>(n), 0);
    std::vector<int64_t> hist_weight(static_cast<size_t>(n), 0);
    for (int64_t r = 0; r < n; ++r) {
      if (!std::getline(in, line) ||
          line.size() != static_cast<size_t>(t)) {
        return Status::InvalidArgument("corrupt checkpoint history line");
      }
      int64_t weight = 0;
      for (size_t j = 0; j < line.size(); ++j) {
        if (line[j] != '0' && line[j] != '1') {
          return Status::InvalidArgument("history bits must be 0/1");
        }
        if (line[j] == '1') {
          synth->history_bits_[j * static_cast<size_t>(n) +
                               static_cast<size_t>(r)] = 1;
          ++weight;
        }
      }
      hist_weight[static_cast<size_t>(r)] = weight;
    }
    // The groups section replays the exact member order the promotion
    // shuffles left behind, spent prefixes included — rebuilding in
    // record order would change which records later rounds promote.
    if (!(in >> tag) || tag != "groups") {
      return Status::InvalidArgument("corrupt checkpoint: expected groups");
    }
    std::vector<uint8_t> live_seen(static_cast<size_t>(n), 0);
    for (size_t b = 0; b < synth->weight_groups_.size(); ++b) {
      LONGDP_ASSIGN_OR_RETURN(int64_t size, sio::ReadInt(in));
      LONGDP_ASSIGN_OR_RETURN(int64_t head, sio::ReadInt(in));
      if (size < 0 || head < 0 || head > size) {
        return Status::InvalidArgument("corrupt checkpoint group header");
      }
      auto& group = synth->weight_groups_[b];
      group.resize(static_cast<size_t>(size));
      for (int64_t i = 0; i < size; ++i) {
        LONGDP_ASSIGN_OR_RETURN(int64_t r, sio::ReadInt(in));
        if (r < 0 || r >= n) {
          return Status::InvalidArgument("corrupt checkpoint group member");
        }
        if (i >= head) {
          // Live members must be a partition of the records consistent
          // with the restored histories; the spent prefix is inert.
          if (live_seen[static_cast<size_t>(r)] ||
              hist_weight[static_cast<size_t>(r)] !=
                  static_cast<int64_t>(b)) {
            return Status::InvalidArgument(
                "checkpoint groups inconsistent with histories");
          }
          live_seen[static_cast<size_t>(r)] = 1;
        }
        group[static_cast<size_t>(i)] = r;
      }
      synth->group_head_[b] = static_cast<size_t>(head);
    }
    for (int64_t r = 0; r < n; ++r) {
      if (!live_seen[static_cast<size_t>(r)]) {
        return Status::InvalidArgument(
            "checkpoint groups missing a live record");
      }
    }
    if (!(in >> tag) || tag != "bank") {
      return Status::InvalidArgument("corrupt checkpoint: expected bank");
    }
    LONGDP_RETURN_NOT_OK(synth->bank_->RestoreState(in));
    // Consistency: materialized records must reproduce the released row.
    synth->t_ = t;
    if (synth->SyntheticThresholdCounts() != synth->released_) {
      return Status::InvalidArgument(
          "checkpoint histories inconsistent with released thresholds");
    }
  }
  synth->t_ = t;
  LONGDP_RETURN_NOT_OK(
      sio::ExpectToken(in, kCumulativeEnd, "cumulative checkpoint"));
  return synth;
}

}  // namespace core
}  // namespace longdp
