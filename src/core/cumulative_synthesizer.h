// Algorithm 2 of the paper: continual private synthetic data preserving
// cumulative time queries (Hamming-weight thresholds).
//
// Stage 1 (stream/CounterBank): T stream counters — one per threshold b —
// consume the increment streams z^t_b and release monotonized threshold
// counts Shat^t_b with Shat^{t-1}_b <= Shat^t_b <= Shat^{t-1}_{b-1}.
//
// Stage 2 (here): the synthetic cohort of m = n records is updated so that
// exactly Shat^t_b records have Hamming weight >= b at every time t: for b
// descending, zhat^t_b = Shat^t_b - Shat^{t-1}_b randomly chosen records of
// weight b-1 are extended by a 1; everyone else gets a 0. Monotonization
// guarantees zhat^t_b >= 0 and never exceeds the weight-(b-1) group size, so
// the update is always feasible (Section 4.1).

#ifndef LONGDP_CORE_CUMULATIVE_SYNTHESIZER_H_
#define LONGDP_CORE_CUMULATIVE_SYNTHESIZER_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "data/longitudinal_dataset.h"
#include "data/round_view.h"
#include "dp/accountant.h"
#include "stream/counter_bank.h"
#include "util/status.h"
#include "util/substream.h"

namespace longdp {
namespace util {
class ThreadPool;
}  // namespace util

namespace core {

class CumulativeSynthesizer {
 public:
  struct Options {
    int64_t horizon = 0;  ///< T
    double rho = 0.0;     ///< total zCDP budget (+infinity = zero-noise)
    stream::BudgetSplit split = stream::BudgetSplit::kCubicLogLevels;
    /// Stream counter implementation; tree counter when null.
    std::shared_ptr<const stream::StreamCounterFactory> counter_factory;
    /// Root seed for every substream the synthesizer draws from: counter
    /// noise is keyed (seed, kCounterNoise, b, level, draw) and stage-2
    /// selection (seed, kSelection, round, draw). The full release log is
    /// a pure function of (options, input data) — including this seed —
    /// at any shard or thread count.
    uint64_t seed = 0;
    /// Optional worker pool for the sharded stage-1 work (true-weight
    /// updates, increment-histogram accumulation) and the bank's parallel
    /// counter advance. Non-owning; must outlive the synthesizer. Null
    /// runs serially. The released output is bit-identical at any shard or
    /// thread count: draws are keyed by substream addresses, and the
    /// sharded histograms reduce in shard order. Not serialized by
    /// checkpoints (a restored synthesizer runs serially unless re-given a
    /// pool).
    util::ThreadPool* pool = nullptr;
  };

  static Result<std::unique_ptr<CumulativeSynthesizer>> Create(
      const Options& options);

  /// Consumes round t's original-data bits; population size n is fixed by
  /// the first call. Every round produces a release. Randomness comes from
  /// the synthesizer's own substreams (Options::seed).
  Status ObserveRound(data::RoundView round);

  /// Byte-per-bit convenience overload: validates and bit-packs `bits`
  /// (rejecting entries other than 0/1 before any state changes), then
  /// runs the packed path above.
  Status ObserveRound(const std::vector<uint8_t>& bits);

  int64_t t() const { return t_; }
  int64_t horizon() const { return options_.horizon; }
  int64_t population() const { return n_; }

  /// The released (monotonized) threshold counts Shat^t_b, indexed b = 0..T,
  /// from the most recent round.
  const std::vector<int64_t>& released_thresholds() const {
    return released_;
  }

  /// Raw pre-monotonization counter outputs from the most recent round
  /// (exposed for the Lemma 4.2 experiments).
  const std::vector<int64_t>& raw_thresholds() const;

  /// The cumulative query answer c^t_b on the synthetic data:
  /// Shat^t_b / n. Requires at least one round and 0 <= b <= T.
  Result<double> Answer(int64_t b) const;

  /// Threshold counts recomputed from the materialized synthetic records;
  /// tests assert this equals released_thresholds() exactly (invariant 4).
  std::vector<int64_t> SyntheticThresholdCounts() const;

  /// Bit of synthetic record `r` at round `tt` (1-based, tt <= t()).
  int Bit(int64_t r, int64_t tt) const {
    return history_bits_[static_cast<size_t>(tt - 1) *
                             static_cast<size_t>(n_) +
                         static_cast<size_t>(r)];
  }

  /// Materializes the synthetic records as a dataset (n users, t() rounds).
  Result<data::LongitudinalDataset> ToDataset() const;

  const dp::ZCdpAccountant& accountant() const { return accountant_; }

  /// Serializes the complete synthesizer state — options, original-data
  /// weight state, synthetic records, and every stream counter's internal
  /// (noise-bearing) state — so a release spanning months of wall clock can
  /// resume in a later process. Checkpoints are curator state, not
  /// releases: protect them like the input data.
  Status SaveCheckpoint(std::ostream& out) const;

  /// Restores a synthesizer from SaveCheckpoint output. The worker pool is
  /// runtime configuration, not curator state, so it is NOT persisted: a
  /// restored synthesizer runs serially until set_pool() re-attaches one.
  static Result<std::unique_ptr<CumulativeSynthesizer>> LoadCheckpoint(
      std::istream& in);

  /// Re-attaches a worker pool (e.g. after LoadCheckpoint). Non-owning;
  /// must outlive the synthesizer. Null reverts to serial. Because all
  /// draws are keyed substreams, the shard grid — this pool's or any
  /// other's — never changes the release log.
  void set_pool(util::ThreadPool* pool);

 private:
  explicit CumulativeSynthesizer(const Options& options)
      : options_(options),
        accountant_(options.rho),
        selection_root_(options.seed, util::substream::kSelection) {}

  Status InitializeForPopulation(int64_t n);

  /// True prefix weight of original record i (materialized from the weight
  /// planes, or read directly on the wide-horizon scalar path).
  int64_t OrigWeight(int64_t i) const;
  /// Sets record i's true prefix weight in whichever representation is
  /// active (checkpoint restore).
  void SetOrigWeight(int64_t i, int64_t w);

  Options options_;
  dp::ZCdpAccountant accountant_;
  /// Root of the stage-2 selection substreams; round t draws from
  /// selection_root_.Derive(t), so a restored synthesizer resumes the
  /// exact remaining selection sequence with no cursor to persist.
  util::SubstreamRng selection_root_;
  std::unique_ptr<stream::CounterBank> bank_;

  int64_t n_ = -1;
  int64_t t_ = 0;
  /// True prefix weights, bit-sliced: bit j of record i's weight is bit
  /// i%64 of weight_planes_[j][i/64]. Stage 1's weight histogram is then a
  /// masked SIMD bit-plane count and the weight increments are one
  /// bit-sliced ripple-carry add over the round's packed words, instead of
  /// two scattered per-set-bit updates. Horizons at or past 2^16 (beyond
  /// the bit-plane kernel's 16-plane cap) fall back to the scalar
  /// orig_weight_ vector; num_weight_planes_ == 0 marks that mode.
  int num_weight_planes_ = 0;
  std::vector<std::vector<uint64_t>> weight_planes_;
  std::vector<int64_t> plane_hist_;   ///< 2^num_weight_planes_ scratch
  std::vector<int32_t> orig_weight_;  ///< scalar-path true prefix weights
  /// Synthetic records as one flat column-major bit matrix: round tt's
  /// column occupies [(tt-1)*n, tt*n). A round extension is then a single
  /// zero-filled resize plus scattered writes for the promoted records,
  /// instead of n separate vector push_backs (the dominant cost of the
  /// pre-optimization observe loop).
  std::vector<uint8_t> history_bits_;
  /// Records by current synthetic weight. Promotions consume a group's
  /// prefix; group_head_[b] marks how much of weight_groups_[b] is spent,
  /// so per-round maintenance is O(promotions) with amortized compaction
  /// instead of an O(group) erase-from-front every round. The live members
  /// of group b are weight_groups_[b][group_head_[b]..].
  std::vector<std::vector<int64_t>> weight_groups_;
  std::vector<size_t> group_head_;
  std::vector<int64_t> z_;              ///< per-round increment scratch
  std::vector<int64_t> released_;       ///< Shat^t (b = 0..T)
  std::vector<int64_t> prev_released_;  ///< Shat^{t-1}
  /// Per-shard stage-1 increment histograms (reduced into z_ in shard
  /// order) and the byte-overload packing buffer; both persistent scratch.
  std::vector<std::vector<int64_t>> shard_z_;
  data::PackedRound packed_scratch_;
};

}  // namespace core
}  // namespace longdp

#endif  // LONGDP_CORE_CUMULATIVE_SYNTHESIZER_H_
