#include "core/fixed_window_synthesizer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/theory.h"
#include "stream/state_io.h"
#include "util/csv.h"
#include "util/simd/simd.h"
#include "util/thread_pool.h"

namespace longdp {
namespace core {

FixedWindowSynthesizer::FixedWindowSynthesizer(const Options& options,
                                               int64_t npad, double sigma2,
                                               double rho_per_step)
    : options_(options),
      npad_(npad),
      sigma2_(sigma2),
      rho_per_step_(rho_per_step),
      accountant_(options.rho),
      noise_root_(options.seed, util::substream::kHistogramNoise),
      rounding_root_(options.seed, util::substream::kRounding),
      cohort_root_(options.seed, util::substream::kCohort),
      noise_sampler_(dp::NoiseSampler::Gaussian(sigma2)) {}

Result<std::unique_ptr<FixedWindowSynthesizer>> FixedWindowSynthesizer::Create(
    const Options& options) {
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(options.window_k));
  if (options.horizon < options.window_k) {
    return Status::InvalidArgument("horizon T must be >= window k");
  }
  if (!(options.rho > 0.0)) {
    return Status::InvalidArgument("rho must be > 0");
  }
  LONGDP_ASSIGN_OR_RETURN(
      double sigma2, theory::FixedWindowSigma2(options.horizon,
                                               options.window_k, options.rho));
  int64_t npad = options.npad;
  if (npad < 0) {
    if (!(options.beta_target > 0.0) || options.beta_target >= 1.0) {
      return Status::InvalidArgument("beta_target must be in (0,1)");
    }
    LONGDP_ASSIGN_OR_RETURN(
        npad, theory::RecommendedNpad(options.horizon, options.window_k,
                                      options.rho, options.beta_target));
  }
  double steps = static_cast<double>(options.horizon - options.window_k + 1);
  double rho_per_step =
      std::isinf(options.rho) ? 0.0 : options.rho / steps;
  return std::unique_ptr<FixedWindowSynthesizer>(new FixedWindowSynthesizer(
      options, npad, sigma2, rho_per_step));
}

Status FixedWindowSynthesizer::ObserveRound(const std::vector<uint8_t>& bits) {
  // Packing validates before anything mutates: a rejected round must not
  // slide any window.
  LONGDP_RETURN_NOT_OK(packed_scratch_.Assign(bits));
  return ObserveRound(packed_scratch_.view());
}

Status FixedWindowSynthesizer::ObserveRound(data::RoundView round) {
  if (t_ >= options_.horizon) {
    return Status::OutOfRange("synthesizer past its horizon T=" +
                              std::to_string(options_.horizon));
  }
  const int k = options_.window_k;
  if (n_ < 0) {
    n_ = round.size();
    window_planes_.assign(static_cast<size_t>(k),
                          std::vector<uint64_t>(round.num_words(), 0));
    plane_head_ = 0;
  } else if (round.size() != n_) {
    return Status::InvalidArgument(
        "round size changed; the population is fixed over the horizon");
  }
  // Stage 1, the per-user slide: every window code drops its oldest bit
  // and gains this round's bit. Bit-sliced, that is one ring-head rotation
  // (the slot holding the expiring oldest plane becomes the new newest
  // plane) plus a copy of the round's packed words — no per-user work at
  // all. Warm-up rounds (t < k) skip the histogram.
  plane_head_ = (plane_head_ + k - 1) % k;
  std::copy(round.words(), round.words() + round.num_words(),
            window_planes_[static_cast<size_t>(plane_head_)].begin());
  ++t_;
  if (t_ < options_.window_k) return Status::OK();
  CountWindowHistogram();
  if (t_ == options_.window_k) return InitialRelease();
  return SlideRelease();
}

util::Pattern FixedWindowSynthesizer::WindowPattern(int64_t i) const {
  const int k = options_.window_k;
  util::Pattern w = 0;
  for (int j = 0; j < k; ++j) {
    const std::vector<uint64_t>& plane =
        window_planes_[static_cast<size_t>((plane_head_ + j) % k)];
    w |= ((plane[static_cast<size_t>(i >> 6)] >> (i & 63)) & 1) << j;
  }
  return w;
}

void FixedWindowSynthesizer::CountWindowHistogram() {
  const int k = options_.window_k;
  const size_t bins = util::NumPatterns(k);
  window_hist_.assign(bins, 0);
  if (n_ <= 0) return;
  if (k > 16) {
    // The bit-plane kernel caps at 16 planes; wider windows (legal up to
    // k = 30, far past the tractable-histogram regime) materialize codes.
    for (int64_t i = 0; i < n_; ++i) {
      ++window_hist_[static_cast<size_t>(WindowPattern(i))];
    }
    return;
  }
  const size_t num_words = window_planes_[0].size();
  // Plane pointers in bit order: plane 0 (the newest round) is the ring
  // head, matching util::SlideAppend's newest-bit-is-bit-0 encoding.
  const uint64_t* planes[16];
  for (int j = 0; j < k; ++j) {
    planes[j] =
        window_planes_[static_cast<size_t>((plane_head_ + j) % k)].data();
  }
  const int shards = util::NumShards(options_.pool);
  if (shards > 1 && num_words >= static_cast<size_t>(shards)) {
    // Word-range shards: exact integer popcounts over a contiguous
    // partition, reduced in shard order — identical at every thread count.
    if (shard_hist_.size() != static_cast<size_t>(shards)) {
      shard_hist_.assign(static_cast<size_t>(shards),
                         std::vector<int64_t>(bins, 0));
    }
    options_.pool->ParallelFor(
        static_cast<int64_t>(num_words), [&](int s, int64_t lo, int64_t hi) {
          auto& h = shard_hist_[static_cast<size_t>(s)];
          std::fill(h.begin(), h.end(), 0);
          const uint64_t* sub[16];
          for (int j = 0; j < k; ++j) sub[j] = planes[j] + lo;
          util::simd::PlaneHistogram(sub, k, nullptr,
                                     static_cast<size_t>(hi - lo), h.data());
        });
    for (const auto& h : shard_hist_) {
      for (size_t b = 0; b < bins; ++b) window_hist_[b] += h[b];
    }
  } else {
    util::simd::PlaneHistogram(planes, k, nullptr, num_words,
                               window_hist_.data());
  }
  // Tail lanes past n in the last word are all-zero in every plane (the
  // RoundView packing invariant) and were counted into bin 0; remove them.
  window_hist_[0] -= static_cast<int64_t>(num_words * 64) - n_;
}

std::vector<int64_t>& FixedWindowSynthesizer::NoisyPaddedHistogram() {
  // The exact histogram was counted from the bit-plane ring; pad and noise
  // it here. Bin s of round t draws from substream
  // noise_root_.Derive(t).Leaf(s) — every bin's rejection chain is an
  // independently addressed stream, so the batched sampler's bulk pass
  // (and any sharding of it) is bit-identical to the old per-bin one-shot
  // draws at any shard/thread count.
  noisy_scratch_ = window_hist_;
  noise_scratch_.resize(noisy_scratch_.size());
  const util::SubstreamRng round_noise =
      noise_root_.Derive(static_cast<uint64_t>(t_));
  noise_sampler_.FillLeaves(round_noise, noise_scratch_.size(),
                            noise_scratch_.data(), options_.pool);
  for (size_t s = 0; s < noisy_scratch_.size(); ++s) {
    noisy_scratch_[s] += npad_ + noise_scratch_[s];
  }
  return noisy_scratch_;
}

Status FixedWindowSynthesizer::InitialRelease() {
  LONGDP_RETURN_NOT_OK(accountant_.Charge(
      rho_per_step_, "fixed-window histogram t=" + std::to_string(t_)));
  std::vector<int64_t>& noisy = NoisyPaddedHistogram();
  ++stats_.releases;
  // Negative initial counts cannot seed records; clamp to zero and record
  // the failure event (Theorem 3.2 makes this improbable given n_pad).
  for (auto& c : noisy) {
    if (c < 0) {
      c = 0;
      ++stats_.negative_clamps;
    }
  }
  LONGDP_ASSIGN_OR_RETURN(auto cohort,
                          SyntheticCohort::Create(options_.window_k, noisy));
  cohort_.emplace(std::move(cohort));
  cohort_->ReserveRounds(options_.horizon);
  return Status::OK();
}

Status FixedWindowSynthesizer::SlideRelease() {
  LONGDP_RETURN_NOT_OK(accountant_.Charge(
      rho_per_step_, "fixed-window histogram t=" + std::to_string(t_)));
  std::vector<int64_t>& noisy = NoisyPaddedHistogram();
  ++stats_.releases;
  // Half-integer roundings draw sequentially (in z order) from this
  // round's keyed rounding substream.
  util::SubstreamRng rounding =
      rounding_root_.Derive(static_cast<uint64_t>(t_));

  const int k = options_.window_k;
  const size_t num_overlaps = util::NumPatterns(k - 1);
  ones_target_.assign(num_overlaps, 0);
  std::vector<int64_t>& ones_target = ones_target_;
  for (util::Pattern z = 0; z < num_overlaps; ++z) {
    // Records currently ending in overlap z must split between z0 and z1.
    int64_t group = cohort_->GroupSize(z);
    util::Pattern z0 = (z << 1);          // width-k pattern z then 0
    util::Pattern z1 = (z << 1) | 1;      // width-k pattern z then 1
    int64_t c_z0 = noisy[z0];
    int64_t c_z1 = noisy[z1];
    // Delta_z = (group - (Chat_{z0} + Chat_{z1})) / 2, possibly half-integer.
    int64_t num = group - c_z0 - c_z1;  // 2 * Delta_z
    int64_t p_z0;
    if ((num % 2) == 0) {
      p_z0 = c_z0 + num / 2;
    } else {
      ++stats_.rounding_draws;
      int64_t b = rounding.Coin() ? 1 : -1;  // b_z = +-1/2, scaled by 2
      // Integer form of p_z0 = Chat_z0 + Delta_z + b_z.
      p_z0 = c_z0 + (num + b) / 2;
    }
    int64_t p_z1 = group - p_z0;
    // Pairwise clamp: keep the group-sum constraint, forbid negatives.
    if (p_z1 < 0) {
      p_z1 = 0;
      ++stats_.negative_clamps;
    } else if (p_z1 > group) {
      p_z1 = group;
      ++stats_.negative_clamps;  // p_z0 would have been negative
    }
    ones_target[z] = p_z1;
  }
  return cohort_->AdvanceRound(ones_target,
                               cohort_root_.Derive(static_cast<uint64_t>(t_)),
                               options_.pool);
}

std::vector<int64_t> FixedWindowSynthesizer::SyntheticHistogram() const {
  if (!cohort_.has_value()) {
    return std::vector<int64_t>(util::NumPatterns(options_.window_k), 0);
  }
  return cohort_->WindowHistogram();
}

query::PaddingSpec FixedWindowSynthesizer::padding_spec() const {
  query::PaddingSpec spec;
  spec.synth_width = options_.window_k;
  spec.npad = npad_;
  spec.true_n = n_ > 0 ? n_ : 1;
  return spec;
}

Result<int64_t> FixedWindowSynthesizer::SyntheticCount(
    const query::WindowPredicate& pred) const {
  if (!has_release()) {
    return Status::FailedPrecondition(
        "no release yet: fewer than k rounds observed");
  }
  return query::CountOnHistogram(pred, cohort_->WindowHistogram(),
                                 options_.window_k);
}

Result<double> FixedWindowSynthesizer::BiasedAnswer(
    const query::WindowPredicate& pred) const {
  LONGDP_ASSIGN_OR_RETURN(int64_t count, SyntheticCount(pred));
  return query::BiasedFraction(count, cohort_->num_records());
}

Result<double> FixedWindowSynthesizer::DebiasedAnswer(
    const query::WindowPredicate& pred) const {
  LONGDP_ASSIGN_OR_RETURN(int64_t count, SyntheticCount(pred));
  return query::DebiasedFraction(count, pred, padding_spec());
}

namespace {
// v2: the header carries the substream seed (v1 checkpoints predate keyed
// substreams and are rejected). No cursors are needed: every draw stream
// is keyed by its round number, so resuming at round t + 1 re-derives the
// exact remaining sequences.
// v3 adds the cohort's overlap-group member order: the selection shuffles
// permute it, so without it a resumed run promotes different record
// identities than the uninterrupted run (releases match, records don't).
// v4 replaces the generic "end" trailer with the format-specific sentinel
// below and parses every numeric field as a strict whole token (window
// patterns are unsigned, so a corrupted "-1" no longer wraps to 2^64 - 1).
constexpr char kCheckpointMagicPrefix[] = "longdp-fixed-window-checkpoint-";
constexpr char kCheckpointMagic[] = "longdp-fixed-window-checkpoint-v4";
constexpr char kCheckpointEnd[] = "end-longdp-fixed-window-checkpoint-v4";

std::string DoubleToken(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}
}  // namespace

Status FixedWindowSynthesizer::SaveCheckpoint(std::ostream& out) const {
  out << kCheckpointMagic << "\n";
  out << options_.horizon << " " << options_.window_k << " "
      << DoubleToken(options_.rho) << " " << npad_ << " "
      << DoubleToken(options_.beta_target) << " " << options_.seed << "\n";
  out << t_ << " " << n_ << " " << stats_.releases << " "
      << stats_.negative_clamps << " " << stats_.rounding_draws << " "
      << DoubleToken(accountant_.spent()) << "\n";
  out << "windows";
  // The v4 "windows" line is materialized per-user codes: the bit-plane
  // ring is an in-memory layout choice, not checkpoint format.
  for (int64_t i = 0; i < (n_ < 0 ? 0 : n_); ++i) {
    out << " " << WindowPattern(i);
  }
  out << "\n";
  if (cohort_.has_value()) {
    out << "cohort " << cohort_->num_records() << " " << cohort_->rounds()
        << "\n";
    for (int64_t r = 0; r < cohort_->num_records(); ++r) {
      std::string line(static_cast<size_t>(cohort_->rounds()), '0');
      for (int64_t tt = 1; tt <= cohort_->rounds(); ++tt) {
        if (cohort_->Bit(r, tt)) line[static_cast<size_t>(tt - 1)] = '1';
      }
      out << line << "\n";
    }
    std::vector<int64_t> order;
    cohort_->AppendGroupOrder(&order);
    out << "order";
    for (int64_t r : order) out << " " << r;
    out << "\n";
  } else {
    out << "cohort 0 0\n";
  }
  out << kCheckpointEnd << "\n";
  return out.good() ? Status::OK()
                    : Status::IOError("checkpoint write failed");
}

Result<std::unique_ptr<FixedWindowSynthesizer>>
FixedWindowSynthesizer::LoadCheckpoint(std::istream& in) {
  std::string magic;
  if (!std::getline(in, magic)) {
    return Status::InvalidArgument("not a fixed-window checkpoint");
  }
  if (magic != kCheckpointMagic) {
    // Version skew gets its own message: a v1-v3 checkpoint is a real
    // checkpoint this build cannot restore, not arbitrary garbage.
    if (magic.rfind(kCheckpointMagicPrefix, 0) == 0) {
      return Status::InvalidArgument(
          "unsupported fixed-window checkpoint version '" + magic +
          "'; this build reads " + kCheckpointMagic);
    }
    return Status::InvalidArgument("not a fixed-window checkpoint");
  }
  namespace sio = stream::state_io;
  Options options;
  std::string rho_tok, beta_tok;
  LONGDP_ASSIGN_OR_RETURN(options.horizon, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(int64_t window_k, sio::ReadInt(in));
  options.window_k = static_cast<int>(window_k);
  if (!(in >> rho_tok)) {
    return Status::InvalidArgument("corrupt checkpoint header");
  }
  LONGDP_ASSIGN_OR_RETURN(options.npad, sio::ReadInt(in));
  if (!(in >> beta_tok)) {
    return Status::InvalidArgument("corrupt checkpoint header");
  }
  LONGDP_ASSIGN_OR_RETURN(options.seed, sio::ReadCursor(in));
  // Strict parses: a corrupted rho/beta token must reject the checkpoint,
  // not restore as 0.0 (which would silently reset the privacy budget).
  LONGDP_ASSIGN_OR_RETURN(options.rho, util::ParseDoubleField(rho_tok));
  LONGDP_ASSIGN_OR_RETURN(options.beta_target,
                          util::ParseDoubleField(beta_tok));

  LONGDP_ASSIGN_OR_RETURN(auto synth, Create(options));
  Stats stats;
  LONGDP_ASSIGN_OR_RETURN(int64_t t, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(int64_t n, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(stats.releases, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(stats.negative_clamps, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(stats.rounding_draws, sio::ReadInt(in));
  std::string spent_tok;
  if (!(in >> spent_tok)) {
    return Status::InvalidArgument("corrupt checkpoint state line");
  }
  // A garbage spent token restoring as 0.0 is exactly the "accountant
  // forgets spent budget on restart" correctness bug — hard-fail instead.
  LONGDP_ASSIGN_OR_RETURN(const double spent,
                          util::ParseDoubleField(spent_tok));
  if (spent > 0.0) {
    LONGDP_RETURN_NOT_OK(
        synth->accountant_.Charge(spent, "restored-checkpoint"));
  }
  std::string tag;
  if (!(in >> tag) || tag != "windows") {
    return Status::InvalidArgument("corrupt checkpoint: expected windows");
  }
  if (n >= 0) {
    const int k = options.window_k;
    const size_t num_words = static_cast<size_t>((n + 63) >> 6);
    synth->window_planes_.assign(static_cast<size_t>(k),
                                 std::vector<uint64_t>(num_words, 0));
    synth->plane_head_ = 0;
    for (int64_t i = 0; i < n; ++i) {
      // Patterns are unsigned: ReadCursor rejects signed tokens instead of
      // letting stream extraction wrap "-1" to 2^64 - 1.
      util::Pattern w = 0;
      LONGDP_ASSIGN_OR_RETURN(w, sio::ReadCursor(in));
      if (w >= util::NumPatterns(options.window_k)) {
        return Status::InvalidArgument("window pattern out of range");
      }
      for (int j = 0; j < k; ++j) {
        if ((w >> j) & 1) {
          synth->window_planes_[static_cast<size_t>(j)][static_cast<size_t>(
              i >> 6)] |= uint64_t{1} << (i & 63);
        }
      }
    }
  }
  if (!(in >> tag) || tag != "cohort") {
    return Status::InvalidArgument("corrupt checkpoint: expected cohort");
  }
  LONGDP_ASSIGN_OR_RETURN(int64_t num_records, sio::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(int64_t rounds, sio::ReadInt(in));
  if (num_records < 0 || rounds < 0) {
    return Status::InvalidArgument("corrupt checkpoint cohort header");
  }
  if (t >= options.window_k) {
    if (rounds != t) {
      return Status::InvalidArgument(
          "cohort rounds inconsistent with time t");
    }
    std::vector<std::vector<uint8_t>> histories;
    histories.reserve(static_cast<size_t>(num_records));
    std::string line;
    std::getline(in, line);  // consume end of cohort header line
    for (int64_t r = 0; r < num_records; ++r) {
      if (!std::getline(in, line) ||
          line.size() != static_cast<size_t>(rounds)) {
        return Status::InvalidArgument("corrupt checkpoint history line");
      }
      std::vector<uint8_t> h(static_cast<size_t>(rounds));
      for (size_t j = 0; j < h.size(); ++j) {
        if (line[j] != '0' && line[j] != '1') {
          return Status::InvalidArgument("history bits must be 0/1");
        }
        h[j] = line[j] == '1' ? 1 : 0;
      }
      histories.push_back(std::move(h));
    }
    LONGDP_ASSIGN_OR_RETURN(
        auto cohort,
        SyntheticCohort::Restore(options.window_k, std::move(histories)));
    if (!(in >> tag) || tag != "order") {
      return Status::InvalidArgument("corrupt checkpoint: expected order");
    }
    std::vector<int64_t> order(static_cast<size_t>(num_records));
    for (auto& r : order) {
      LONGDP_ASSIGN_OR_RETURN(r, sio::ReadInt(in));
    }
    LONGDP_RETURN_NOT_OK(cohort.RestoreGroupOrder(order));
    synth->cohort_.emplace(std::move(cohort));
  }
  LONGDP_RETURN_NOT_OK(
      sio::ExpectToken(in, kCheckpointEnd, "fixed-window checkpoint"));
  synth->t_ = t;
  synth->n_ = n;
  synth->stats_ = stats;
  return synth;
}

}  // namespace core
}  // namespace longdp
