// Algorithm 1 of the paper: continual private synthetic data preserving
// fixed time window queries.
//
// Per round t = k..T the synthesizer
//   (stage 1) releases a padded noisy histogram of the original data's
//             width-k window:  Chat^t_s = C^t_s + n_pad + N_Z(0, sigma^2),
//             sigma^2 = (T-k+1)/(2 rho); and
//   (stage 2) solves the sliding-window consistency constraints
//             p^t_{z0} + p^t_{z1} = p^{t-1}_{0z} + p^{t-1}_{1z} via the
//             correction terms Delta_z (+/- the random half-integer
//             rounding), then extends the persistent synthetic cohort.
//
// The entire run is rho-zCDP (Theorem 3.1): each of the T-k+1 histogram
// releases is charged rho/(T-k+1) against an internal accountant.
//
// Negative targets — which the n_pad padding makes improbable (Theorem 3.2)
// but not impossible — are clamped pairwise (preserving the consistency
// sums) and counted in stats(); experiments report that count as the
// algorithm's empirical failure indicator.

#ifndef LONGDP_CORE_FIXED_WINDOW_SYNTHESIZER_H_
#define LONGDP_CORE_FIXED_WINDOW_SYNTHESIZER_H_

#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "core/synthetic_cohort.h"
#include "data/round_view.h"
#include "dp/accountant.h"
#include "dp/noise_sampler.h"
#include "query/debias.h"
#include "query/window_query.h"
#include "util/status.h"
#include "util/substream.h"

namespace longdp {
namespace util {
class ThreadPool;
}  // namespace util

namespace core {

class FixedWindowSynthesizer {
 public:
  struct Options {
    int64_t horizon = 0;  ///< T (known in advance, as in the paper's model)
    int window_k = 0;     ///< window width k
    double rho = 0.0;     ///< total zCDP budget (+infinity = zero-noise path)
    /// Padding per bin; -1 selects theory::RecommendedNpad(beta_target).
    int64_t npad = -1;
    /// Target failure probability used to auto-size npad.
    double beta_target = 0.05;
    /// Root seed for every substream the synthesizer draws from: per-bin
    /// histogram noise is keyed (seed, kHistogramNoise, round, bin, draw),
    /// half-integer roundings (seed, kRounding, round, draw), and cohort
    /// extensions (seed, kCohort, round, overlap, draw). The full release
    /// log is a pure function of (options, input data) at any shard or
    /// thread count.
    uint64_t seed = 0;
    /// Optional worker pool for the sharded stage-1 work (per-user window
    /// slides, window-histogram accumulation), the per-bin noise, and the
    /// cohort's per-overlap selection shuffles. Non-owning; must outlive
    /// the synthesizer. Null runs serially. Releases are bit-identical at
    /// any shard or thread count: draws are keyed by substream addresses,
    /// and sharded histograms reduce in shard order. Not serialized by
    /// checkpoints.
    util::ThreadPool* pool = nullptr;
  };

  struct Stats {
    /// Target pairs (p_{z0}, p_{z1}) clamped because a value went negative.
    int64_t negative_clamps = 0;
    /// Random half-integer roundings performed (the b_z draws).
    int64_t rounding_draws = 0;
    /// Histogram releases performed so far (update steps).
    int64_t releases = 0;
  };

  static Result<std::unique_ptr<FixedWindowSynthesizer>> Create(
      const Options& options);

  /// Consumes round t's original-data bits (one 0/1 entry per individual;
  /// the population size n is fixed by the first call). Before t = k the
  /// data is only buffered; from t = k onward each call performs one
  /// release + cohort update. Randomness comes from the synthesizer's own
  /// substreams (Options::seed).
  Status ObserveRound(data::RoundView round);

  /// Byte-per-bit convenience overload: validates and bit-packs `bits`
  /// (rejecting entries other than 0/1 before any state changes), then
  /// runs the packed path above.
  Status ObserveRound(const std::vector<uint8_t>& bits);

  /// True once the initial synthetic dataset exists (t >= k).
  bool has_release() const { return cohort_.has_value(); }

  /// Rounds observed so far.
  int64_t t() const { return t_; }
  int64_t horizon() const { return options_.horizon; }
  int window_k() const { return options_.window_k; }
  int64_t npad() const { return npad_; }
  int64_t population() const { return n_; }
  double sigma2() const { return sigma2_; }

  /// The persistent synthetic cohort (valid once has_release()).
  const SyntheticCohort& cohort() const { return *cohort_; }

  /// Current synthetic histogram p^t over width-k patterns.
  std::vector<int64_t> SyntheticHistogram() const;

  /// Public padding facts for the debiaser.
  query::PaddingSpec padding_spec() const;

  /// Count of synthetic records currently matching `pred` (width <= k).
  Result<int64_t> SyntheticCount(const query::WindowPredicate& pred) const;

  /// pred's proportion computed directly on the synthetic data
  /// (count / n*) — the paper's "Synthetic Data Results" panels.
  Result<double> BiasedAnswer(const query::WindowPredicate& pred) const;

  /// pred's proportion after subtracting the padding query answer and
  /// normalizing by n — the paper's "Debiased Results" panels.
  Result<double> DebiasedAnswer(const query::WindowPredicate& pred) const;

  const Stats& stats() const { return stats_; }
  const dp::ZCdpAccountant& accountant() const { return accountant_; }

  /// Serializes the complete synthesizer state — options, consumed budget,
  /// the buffered per-user window state of the ORIGINAL data, and the
  /// synthetic cohort — so a continual release spanning months of wall
  /// clock can resume in a later process. The checkpoint embeds raw input
  /// state: protect the file like the survey data itself (it is not a
  /// release). Restoring and continuing consumes the remaining budget
  /// normally; the accountant's ledger records the restored charge.
  Status SaveCheckpoint(std::ostream& out) const;

  /// Restores a synthesizer from SaveCheckpoint output. The worker pool is
  /// runtime configuration, not curator state, so it is NOT persisted: a
  /// restored synthesizer runs serially until set_pool() re-attaches one.
  static Result<std::unique_ptr<FixedWindowSynthesizer>> LoadCheckpoint(
      std::istream& in);

  /// Re-attaches a worker pool (e.g. after LoadCheckpoint). Non-owning;
  /// must outlive the synthesizer. Null reverts to serial. Because all
  /// draws are keyed substreams, the shard grid — this pool's or any
  /// other's — never changes the release log.
  void set_pool(util::ThreadPool* pool) { options_.pool = pool; }

 private:
  explicit FixedWindowSynthesizer(const Options& options, int64_t npad,
                                  double sigma2, double rho_per_step);

  /// Performs the t = k initialization release.
  Status InitialRelease();
  /// Performs one t > k sliding-window release.
  Status SlideRelease();

  /// Stage 1: noisy padded histogram of the current true window counts,
  /// one keyed discrete Gaussian per bin (bulk-drawn by the batched
  /// NoiseSampler, sharded across Options::pool). Fills and returns
  /// noisy_scratch_ (persistent, never reallocated).
  std::vector<int64_t>& NoisyPaddedHistogram();

  /// Counts the exact window histogram from the bit-plane ring into
  /// window_hist_ (sharded over word ranges; per-shard histograms reduce
  /// in shard order, so the result is thread-count invariant).
  void CountWindowHistogram();

  /// Materializes user i's width-k window code from the bit-plane ring
  /// (checkpoint serialization and the small-k fallback paths).
  util::Pattern WindowPattern(int64_t i) const;

  Options options_;
  int64_t npad_;
  double sigma2_;
  double rho_per_step_;
  dp::ZCdpAccountant accountant_;
  /// Substream roots; round t uses root.Derive(t), so restored runs
  /// resume the exact remaining draw sequences with no cursors to persist.
  util::SubstreamRng noise_root_;
  util::SubstreamRng rounding_root_;
  util::SubstreamRng cohort_root_;
  /// Batched per-bin histogram noise (same draws as the one-shot sampler).
  dp::NoiseSampler noise_sampler_;

  int64_t n_ = -1;  ///< original population size; fixed by first round
  int64_t t_ = 0;
  /// The buffered original-data window state, bit-sliced: plane j of user
  /// i's window code (the bit from j rounds ago; bit 0 is the newest, per
  /// util::SlideAppend's encoding) is bit i%64 of
  /// window_planes_[(plane_head_ + j) % k][i/64]. Sliding every user's
  /// window is a head rotation plus one packed-round word copy instead of
  /// n per-user shift-and-mask updates, and the window histogram is a
  /// SIMD bit-plane kernel instead of n scattered increments.
  std::vector<std::vector<uint64_t>> window_planes_;
  int plane_head_ = 0;
  std::optional<SyntheticCohort> cohort_;
  Stats stats_;
  // Persistent per-round scratch for the histogram release hot path.
  std::vector<int64_t> noisy_scratch_;  ///< 2^k noisy padded histogram
  std::vector<int64_t> noise_scratch_;  ///< 2^k bulk noise draws
  std::vector<int64_t> ones_target_;    ///< 2^(k-1) stage-2 targets
  /// Exact window histogram counted from the bit-plane ring on releasing
  /// rounds; NoisyPaddedHistogram starts from it.
  std::vector<int64_t> window_hist_;
  /// Per-shard window histograms (reduced in shard order) and the byte-
  /// overload packing buffer.
  std::vector<std::vector<int64_t>> shard_hist_;
  data::PackedRound packed_scratch_;
};

}  // namespace core
}  // namespace longdp

#endif  // LONGDP_CORE_FIXED_WINDOW_SYNTHESIZER_H_
