// Shared fused stage-1 kernel for the window synthesizers: one pass that
// slides every user's window state AND counts the updated windows into a
// histogram, sharded over a util::ThreadPool when one is configured.
//
// The branch structure (and its determinism argument) lives here once so
// the binary and categorical synthesizers cannot diverge:
//
//  * no histogram wanted (warm-up round)  -> sharded slide only;
//  * pool present and n >= bins * shards  -> fused slide + per-shard
//    histograms, reduced into `hist` in shard order (ordered integer sums
//    over a fixed contiguous partition — identical at every thread count);
//  * serial                               -> fused single pass;
//  * pool present but population too small for per-shard zero-fills
//    (gate depends only on (n, bins, shards), never on timing)
//                                         -> sharded slide, serial count.
//
// `update(i)` must advance record i's window state and return its new bin;
// `bin_of(i)` must return record i's current (already-updated) bin. Both
// must be RNG-free and touch only record i's state — that disjointness is
// what makes the shards race-free and the output thread-count invariant.

#ifndef LONGDP_CORE_OBSERVE_SHARD_H_
#define LONGDP_CORE_OBSERVE_SHARD_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/thread_pool.h"

namespace longdp {
namespace core {

template <typename UpdateFn, typename BinOfFn>
void ShardedSlideAndCount(util::ThreadPool* pool, int64_t n,
                          bool want_histogram, size_t bins,
                          std::vector<int64_t>* hist,
                          std::vector<std::vector<int64_t>>* shard_hist,
                          UpdateFn&& update, BinOfFn&& bin_of) {
  const int shards = util::NumShards(pool);
  if (!want_histogram) {
    util::ShardedFor(pool, n, [&](int, int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) update(i);
    });
    return;
  }
  if (shards > 1 &&
      static_cast<uint64_t>(n) >=
          static_cast<uint64_t>(bins) * static_cast<uint64_t>(shards)) {
    if (shard_hist->size() != static_cast<size_t>(shards)) {
      shard_hist->assign(static_cast<size_t>(shards),
                         std::vector<int64_t>(bins, 0));
    }
    pool->ParallelFor(n, [&](int s, int64_t lo, int64_t hi) {
      auto& h = (*shard_hist)[static_cast<size_t>(s)];
      std::fill(h.begin(), h.end(), 0);
      for (int64_t i = lo; i < hi; ++i) ++h[update(i)];
    });
    hist->assign(bins, 0);
    for (const auto& h : *shard_hist) {
      for (size_t b = 0; b < bins; ++b) (*hist)[b] += h[b];
    }
    return;
  }
  hist->assign(bins, 0);
  if (shards == 1) {
    for (int64_t i = 0; i < n; ++i) ++(*hist)[update(i)];
    return;
  }
  util::ShardedFor(pool, n, [&](int, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) update(i);
  });
  for (int64_t i = 0; i < n; ++i) ++(*hist)[bin_of(i)];
}

}  // namespace core
}  // namespace longdp

#endif  // LONGDP_CORE_OBSERVE_SHARD_H_
