#include "core/recompute_baseline.h"

#include <cmath>

namespace longdp {
namespace core {

Result<std::unique_ptr<RecomputeBaseline>> RecomputeBaseline::Create(
    const Options& options) {
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(options.window_k));
  if (options.horizon < options.window_k) {
    return Status::InvalidArgument("horizon T must be >= window k");
  }
  if (!(options.rho > 0.0)) {
    return Status::InvalidArgument("rho must be > 0");
  }
  auto baseline =
      std::unique_ptr<RecomputeBaseline>(new RecomputeBaseline(options));
  double steps = static_cast<double>(options.horizon - options.window_k + 1);
  baseline->sigma2_ =
      std::isinf(options.rho) ? 0.0 : steps / (2.0 * options.rho);
  baseline->rho_per_step_ =
      std::isinf(options.rho) ? 0.0 : options.rho / steps;
  baseline->noise_ = dp::NoiseSampler::Gaussian(baseline->sigma2_);
  return baseline;
}

Status RecomputeBaseline::ObserveRound(const std::vector<uint8_t>& bits) {
  // Packing validates before anything mutates: a rejected round must not
  // slide any window.
  LONGDP_RETURN_NOT_OK(packed_scratch_.Assign(bits));
  return ObserveRound(packed_scratch_.view());
}

Status RecomputeBaseline::ObserveRound(data::RoundView round) {
  if (t_ >= options_.horizon) {
    return Status::OutOfRange("baseline past its horizon");
  }
  if (n_ < 0) {
    n_ = round.size();
    user_window_.assign(static_cast<size_t>(n_), 0);
  } else if (round.size() != n_) {
    return Status::InvalidArgument("round size changed");
  }
  for (int64_t i = 0; i < n_; ++i) {
    user_window_[static_cast<size_t>(i)] = util::SlideAppend(
        user_window_[static_cast<size_t>(i)], options_.window_k,
        round.bit(i));
  }
  ++t_;
  if (t_ < options_.window_k) return Status::OK();

  LONGDP_RETURN_NOT_OK(accountant_.Charge(
      rho_per_step_, "recompute histogram t=" + std::to_string(t_)));
  std::vector<int64_t> hist(util::NumPatterns(options_.window_k), 0);
  for (util::Pattern w : user_window_) ++hist[w];
  const util::SubstreamRng round_noise =
      noise_root_.Derive(static_cast<uint64_t>(t_));
  std::vector<int64_t> noise(hist.size());
  noise_.FillLeaves(round_noise, noise.size(), noise.data());
  for (size_t b = 0; b < hist.size(); ++b) {
    hist[b] += noise[b];
    if (hist[b] < 0) {
      hist[b] = 0;
      ++clamped_;
    }
  }
  current_ = std::move(hist);
  return Status::OK();
}

int64_t RecomputeBaseline::SyntheticPopulation() const {
  int64_t total = 0;
  for (int64_t c : current_) total += c;
  return total;
}

}  // namespace core
}  // namespace longdp
