// The recompute-from-scratch strawman the paper's introduction warns about.
//
// At every update step t = k..T it runs an independent single-shot noisy-
// histogram synthesis of the current width-k window with budget
// rho/(T-k+1) (so the whole run is rho-zCDP by composition, like Algorithm
// 1), materializing a *fresh* synthetic population each time. There is no
// padding, no consistency solve, and no record persistence: the synthetic
// individuals at time t+1 bear no relation to those at time t, so
// longitudinal statistics ("has ever experienced a 6-month spell") are not
// even well-defined across releases — the failure mode
// bench/baseline_recompute quantifies against Algorithm 1.

#ifndef LONGDP_CORE_RECOMPUTE_BASELINE_H_
#define LONGDP_CORE_RECOMPUTE_BASELINE_H_

#include <memory>
#include <vector>

#include "data/round_view.h"
#include "dp/accountant.h"
#include "dp/noise_sampler.h"
#include "util/bits.h"
#include "util/status.h"
#include "util/substream.h"

namespace longdp {
namespace core {

class RecomputeBaseline {
 public:
  struct Options {
    int64_t horizon = 0;
    int window_k = 0;
    double rho = 0.0;
    /// Root seed: round t's noise draws come from the keyed substream
    /// (seed, kHistogramNoise, t, bin, draw).
    uint64_t seed = 0;
  };

  static Result<std::unique_ptr<RecomputeBaseline>> Create(
      const Options& options);

  /// Consumes one round of original bits. From t = k on, each call produces
  /// a fresh synthetic histogram (noise keyed by Options::seed).
  Status ObserveRound(data::RoundView round);

  /// Byte-per-bit convenience overload: validates and bit-packs `bits`
  /// (rejecting entries other than 0/1 before any window slides), then
  /// runs the packed path above.
  Status ObserveRound(const std::vector<uint8_t>& bits);

  bool has_release() const { return !current_.empty(); }
  int64_t t() const { return t_; }

  /// The latest fresh synthetic histogram over width-k patterns (noisy
  /// counts clamped at zero — no padding, so clamping bias is intrinsic).
  const std::vector<int64_t>& CurrentHistogram() const { return current_; }

  /// Number of records in the latest fresh synthetic population.
  int64_t SyntheticPopulation() const;

  /// Count of clamped-to-zero bins so far (the baseline's consistency-free
  /// answer to negativity).
  int64_t clamped_bins() const { return clamped_; }

  const dp::ZCdpAccountant& accountant() const { return accountant_; }

 private:
  explicit RecomputeBaseline(const Options& options)
      : options_(options),
        accountant_(options.rho),
        noise_root_(options.seed, util::substream::kHistogramNoise) {}

  Options options_;
  dp::ZCdpAccountant accountant_;
  util::SubstreamRng noise_root_;
  int64_t n_ = -1;
  int64_t t_ = 0;
  double sigma2_ = 0.0;
  double rho_per_step_ = 0.0;
  // Batched per-bin noise; assigned in Create alongside sigma2_.
  dp::NoiseSampler noise_ = dp::NoiseSampler::Gaussian(0.0);
  int64_t clamped_ = 0;
  std::vector<util::Pattern> user_window_;
  std::vector<int64_t> current_;
  data::PackedRound packed_scratch_;
};

}  // namespace core
}  // namespace longdp

#endif  // LONGDP_CORE_RECOMPUTE_BASELINE_H_
