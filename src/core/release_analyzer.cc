#include "core/release_analyzer.h"

#include "query/cumulative_query.h"

namespace longdp {
namespace core {

ReleaseAnalyzer::ReleaseAnalyzer(const ReleaseLog& log) : log_(log) {
  for (const auto& r : log.window_releases()) {
    window_by_t_[r.t] = &r;
  }
  for (const auto& r : log.cumulative_releases()) {
    cumulative_by_t_[r.t] = &r;
  }
  for (const auto& r : log.categorical_releases()) {
    categorical_by_t_[r.t] = &r;
  }
}

std::vector<int64_t> ReleaseAnalyzer::WindowTimes() const {
  std::vector<int64_t> times;
  times.reserve(window_by_t_.size());
  for (const auto& [t, r] : window_by_t_) times.push_back(t);
  return times;
}

std::vector<int64_t> ReleaseAnalyzer::CumulativeTimes() const {
  std::vector<int64_t> times;
  times.reserve(cumulative_by_t_.size());
  for (const auto& [t, r] : cumulative_by_t_) times.push_back(t);
  return times;
}

std::vector<int64_t> ReleaseAnalyzer::CategoricalTimes() const {
  std::vector<int64_t> times;
  times.reserve(categorical_by_t_.size());
  for (const auto& [t, r] : categorical_by_t_) times.push_back(t);
  return times;
}

Result<double> ReleaseAnalyzer::WindowFraction(
    int64_t t, const query::WindowPredicate& pred) const {
  auto it = window_by_t_.find(t);
  if (it == window_by_t_.end()) {
    return Status::NotFound("no window release at t=" + std::to_string(t));
  }
  const WindowRelease& release = *it->second;
  LONGDP_ASSIGN_OR_RETURN(
      int64_t count,
      query::CountOnHistogram(pred, release.histogram, release.window_k));
  query::PaddingSpec spec;
  spec.synth_width = release.window_k;
  spec.npad = release.npad;
  spec.true_n = release.true_n;
  return query::DebiasedFraction(count, pred, spec);
}

Result<double> ReleaseAnalyzer::BiasedWindowFraction(
    int64_t t, const query::WindowPredicate& pred) const {
  auto it = window_by_t_.find(t);
  if (it == window_by_t_.end()) {
    return Status::NotFound("no window release at t=" + std::to_string(t));
  }
  const WindowRelease& release = *it->second;
  LONGDP_ASSIGN_OR_RETURN(
      int64_t count,
      query::CountOnHistogram(pred, release.histogram, release.window_k));
  int64_t population = 0;
  for (int64_t c : release.histogram) population += c;
  return query::BiasedFraction(count, population);
}

Result<double> ReleaseAnalyzer::CumulativeFraction(int64_t t,
                                                   int64_t b) const {
  auto it = cumulative_by_t_.find(t);
  if (it == cumulative_by_t_.end()) {
    return Status::NotFound("no cumulative release at t=" +
                            std::to_string(t));
  }
  const CumulativeRelease& release = *it->second;
  if (b < 0 || static_cast<size_t>(b) >= release.thresholds.size()) {
    return Status::OutOfRange("threshold b out of range");
  }
  int64_t population = release.thresholds[0];
  if (population <= 0) return 0.0;
  return static_cast<double>(release.thresholds[static_cast<size_t>(b)]) /
         static_cast<double>(population);
}

Result<int64_t> ReleaseAnalyzer::CountOccExact(int64_t t1, int64_t t2,
                                               int64_t b) const {
  if (t1 >= t2) {
    return Status::InvalidArgument("requires t1 < t2");
  }
  auto it1 = cumulative_by_t_.find(t1);
  auto it2 = cumulative_by_t_.find(t2);
  if (it1 == cumulative_by_t_.end() || it2 == cumulative_by_t_.end()) {
    return Status::NotFound("missing cumulative release at t1 or t2");
  }
  return query::CountOccExactFromThresholds(it2->second->thresholds,
                                            it1->second->thresholds, b);
}

Result<double> ReleaseAnalyzer::CategoricalBinFraction(int64_t t,
                                                       uint64_t code) const {
  auto it = categorical_by_t_.find(t);
  if (it == categorical_by_t_.end()) {
    return Status::NotFound("no categorical release at t=" +
                            std::to_string(t));
  }
  const CategoricalRelease& release = *it->second;
  if (code >= release.histogram.size()) {
    return Status::OutOfRange("pattern code out of range");
  }
  if (release.true_n <= 0) {
    return Status::InvalidArgument("released true_n must be > 0");
  }
  // Subtract in int64 and THEN cast, exactly as the synthesizer's
  // DebiasedBinFraction does — the archive executor mirrors this too, so
  // all three paths agree bit-for-bit.
  return static_cast<double>(release.histogram[code] - release.npad) /
         static_cast<double>(release.true_n);
}

}  // namespace core
}  // namespace longdp
