// Analyst-side query interface over a ReleaseLog: answers fixed-window and
// cumulative queries AT ANY RELEASED TIME from the persisted artifacts
// alone — no synthesizer, no raw data, pure post-processing. This is the
// API an analyst who only ever receives the releases programs against.

#ifndef LONGDP_CORE_RELEASE_ANALYZER_H_
#define LONGDP_CORE_RELEASE_ANALYZER_H_

#include <cstdint>
#include <map>

#include "core/release_log.h"
#include "query/debias.h"
#include "query/window_query.h"
#include "util/status.h"

namespace longdp {
namespace core {

class ReleaseAnalyzer {
 public:
  /// Indexes the log's releases by time. The log must outlive the analyzer.
  explicit ReleaseAnalyzer(const ReleaseLog& log);

  /// Times with a window (fixed-window histogram) release, ascending.
  std::vector<int64_t> WindowTimes() const;
  /// Times with a cumulative (threshold row) release, ascending.
  std::vector<int64_t> CumulativeTimes() const;
  /// Times with a categorical (base-A histogram) release, ascending.
  std::vector<int64_t> CategoricalTimes() const;

  /// Debiased estimate of pred's population fraction at released time t.
  /// pred.width() must not exceed the release's k. NotFound if no window
  /// release exists at t.
  Result<double> WindowFraction(int64_t t,
                                const query::WindowPredicate& pred) const;

  /// Raw (biased) fraction computed on the padded synthetic counts.
  Result<double> BiasedWindowFraction(
      int64_t t, const query::WindowPredicate& pred) const;

  /// Cumulative fraction c^t_b from the threshold row released at time t,
  /// normalized by the (released) population Shat^t_0.
  Result<double> CumulativeFraction(int64_t t, int64_t b) const;

  /// The Ghazi et al. CountOcc_{=b} reduction between two released times
  /// t1 < t2, as a count (paper Section 1.1).
  Result<int64_t> CountOccExact(int64_t t1, int64_t t2, int64_t b) const;

  /// Debiased fraction of the population whose base-A window equals pattern
  /// code `code` at released time t, (hist[code] - npad) / true_n — the
  /// analyst-side twin of CategoricalWindowSynthesizer::DebiasedBinFraction.
  Result<double> CategoricalBinFraction(int64_t t, uint64_t code) const;

 private:
  const ReleaseLog& log_;
  std::map<int64_t, const WindowRelease*> window_by_t_;
  std::map<int64_t, const CumulativeRelease*> cumulative_by_t_;
  std::map<int64_t, const CategoricalRelease*> categorical_by_t_;
};

}  // namespace core
}  // namespace longdp

#endif  // LONGDP_CORE_RELEASE_ANALYZER_H_
