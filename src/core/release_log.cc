#include "core/release_log.h"

#include <fstream>
#include <limits>

#include "util/csv.h"

namespace longdp {
namespace core {

Status ReleaseLog::Capture(const FixedWindowSynthesizer& synth) {
  if (!synth.has_release()) return Status::OK();
  WindowRelease release;
  release.t = synth.t();
  release.window_k = synth.window_k();
  release.npad = synth.npad();
  release.true_n = synth.population();
  release.histogram = synth.SyntheticHistogram();
  return Append(std::move(release));
}

Status ReleaseLog::Capture(const CumulativeSynthesizer& synth) {
  if (synth.t() < 1) {
    return Status::FailedPrecondition("no cumulative release yet");
  }
  CumulativeRelease release;
  release.t = synth.t();
  release.thresholds = synth.released_thresholds();
  return Append(std::move(release));
}

Status ReleaseLog::Capture(const CategoricalWindowSynthesizer& synth) {
  if (!synth.has_release()) return Status::OK();
  CategoricalRelease release;
  release.t = synth.t();
  release.window_k = synth.window_k();
  release.alphabet = synth.alphabet();
  release.npad = synth.npad();
  release.true_n = synth.population();
  release.histogram = synth.SyntheticHistogram();
  return Append(std::move(release));
}

Status ReleaseLog::Append(WindowRelease release) {
  if (!window_.empty() && window_.back().t == release.t) {
    return Status::AlreadyExists("release for t=" + std::to_string(release.t) +
                                 " already captured");
  }
  window_.push_back(std::move(release));
  return Status::OK();
}

Status ReleaseLog::Append(CumulativeRelease release) {
  if (!cumulative_.empty() && cumulative_.back().t == release.t) {
    return Status::AlreadyExists("release for t=" + std::to_string(release.t) +
                                 " already captured");
  }
  cumulative_.push_back(std::move(release));
  return Status::OK();
}

Status ReleaseLog::Append(CategoricalRelease release) {
  if (!categorical_.empty() && categorical_.back().t == release.t) {
    return Status::AlreadyExists("release for t=" + std::to_string(release.t) +
                                 " already captured");
  }
  categorical_.push_back(std::move(release));
  return Status::OK();
}

Status ReleaseLog::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  util::CsvWriter writer(&out);
  writer.WriteRow({"kind", "t", "k", "alphabet", "npad", "true_n", "index",
                   "value"});
  for (const auto& r : window_) {
    for (size_t s = 0; s < r.histogram.size(); ++s) {
      writer.WriteRow({"window", std::to_string(r.t),
                       std::to_string(r.window_k), "0", std::to_string(r.npad),
                       std::to_string(r.true_n), std::to_string(s),
                       std::to_string(r.histogram[s])});
    }
  }
  for (const auto& r : cumulative_) {
    for (size_t b = 0; b < r.thresholds.size(); ++b) {
      writer.WriteRow({"cumulative", std::to_string(r.t), "0", "0", "0", "0",
                       std::to_string(b), std::to_string(r.thresholds[b])});
    }
  }
  for (const auto& r : categorical_) {
    for (size_t s = 0; s < r.histogram.size(); ++s) {
      writer.WriteRow({"categorical", std::to_string(r.t),
                       std::to_string(r.window_k),
                       std::to_string(r.alphabet), std::to_string(r.npad),
                       std::to_string(r.true_n), std::to_string(s),
                       std::to_string(r.histogram[s])});
    }
  }
  // An ofstream buffers; without an explicit flush a full disk or closed
  // descriptor would only surface in the destructor, after OK was returned.
  out.flush();
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

namespace {

// Per-kind accumulation state for the strict sequential loader. A release's
// rows must be contiguous, indexed 0,1,2,... with identical metadata, and
// release times per kind must be strictly increasing — the shape WriteCsv
// always produces. Anything else (a duplicated block, an out-of-order
// concatenation, a dropped row) used to be silently absorbed into a
// plausible-looking log; now it fails with the offending row number.
struct ReleaseBuilder {
  bool open = false;
  int64_t last_t = std::numeric_limits<int64_t>::min();
  int64_t t = 0;
  int64_t k = 0;
  int64_t alphabet = 0;
  int64_t npad = 0;
  int64_t true_n = 0;
  std::vector<int64_t> values;
};

std::string RowRef(size_t rownum) {
  return " in row " + std::to_string(rownum);
}

Status CloseBuilder(const std::string& kind, ReleaseBuilder* b,
                    ReleaseLog* log) {
  Status append = Status::OK();
  if (kind == "window") {
    LONGDP_RETURN_NOT_OK(util::ValidateWindow(static_cast<int>(b->k)));
    if (b->values.size() != util::NumPatterns(static_cast<int>(b->k))) {
      return Status::InvalidArgument(
          "incomplete window release t=" + std::to_string(b->t) + ": got " +
          std::to_string(b->values.size()) + " of 2^" + std::to_string(b->k) +
          " histogram rows");
    }
    WindowRelease release;
    release.t = b->t;
    release.window_k = static_cast<int>(b->k);
    release.npad = b->npad;
    release.true_n = b->true_n;
    release.histogram = std::move(b->values);
    append = log->Append(std::move(release));
  } else if (kind == "cumulative") {
    CumulativeRelease release;
    release.t = b->t;
    release.thresholds = std::move(b->values);
    append = log->Append(std::move(release));
  } else {  // categorical
    LONGDP_ASSIGN_OR_RETURN(
        const uint64_t bins,
        CategoricalWindowSynthesizer::NumBins(static_cast<int>(b->k),
                                              static_cast<int>(b->alphabet)));
    if (b->values.size() != bins) {
      return Status::InvalidArgument(
          "incomplete categorical release t=" + std::to_string(b->t) +
          ": got " + std::to_string(b->values.size()) + " of " +
          std::to_string(bins) + " histogram rows");
    }
    CategoricalRelease release;
    release.t = b->t;
    release.window_k = static_cast<int>(b->k);
    release.alphabet = static_cast<int>(b->alphabet);
    release.npad = b->npad;
    release.true_n = b->true_n;
    release.histogram = std::move(b->values);
    append = log->Append(std::move(release));
  }
  b->last_t = b->t;
  b->open = false;
  b->values.clear();
  return append;
}

}  // namespace

Result<ReleaseLog> ReleaseLog::LoadCsv(const std::string& path) {
  LONGDP_ASSIGN_OR_RETURN(auto rows, util::ReadCsvFile(path));
  if (rows.empty() || rows[0].size() != 8 || rows[0][0] != "kind") {
    return Status::InvalidArgument(
        "not a release log CSV (expected the 8-column "
        "kind,t,k,alphabet,npad,true_n,index,value header): " +
        path);
  }
  ReleaseLog log;
  ReleaseBuilder window_b, cumulative_b, categorical_b;
  for (size_t r = 1; r < rows.size(); ++r) {
    const size_t rownum = r + 1;  // 1-based, counting the header as row 1
    const auto& row = rows[r];
    if (row.size() != 8) {
      return Status::InvalidArgument("malformed row " +
                                     std::to_string(rownum));
    }
    // Strict parses: a corrupted field must fail the load, not silently
    // parse to 0 (which would e.g. merge rows into release t=0).
    const std::string& kind = row[0];
    ReleaseBuilder* b = nullptr;
    if (kind == "window") {
      b = &window_b;
    } else if (kind == "cumulative") {
      b = &cumulative_b;
    } else if (kind == "categorical") {
      b = &categorical_b;
    } else {
      return Status::InvalidArgument("unknown release kind '" + kind + "'" +
                                     RowRef(rownum));
    }
    LONGDP_ASSIGN_OR_RETURN(const int64_t t, util::ParseInt64Field(row[1]));
    LONGDP_ASSIGN_OR_RETURN(const int64_t k, util::ParseInt64Field(row[2]));
    LONGDP_ASSIGN_OR_RETURN(const int64_t alphabet,
                            util::ParseInt64Field(row[3]));
    LONGDP_ASSIGN_OR_RETURN(const int64_t npad, util::ParseInt64Field(row[4]));
    LONGDP_ASSIGN_OR_RETURN(const int64_t true_n,
                            util::ParseInt64Field(row[5]));
    LONGDP_ASSIGN_OR_RETURN(const int64_t index, util::ParseInt64Field(row[6]));
    LONGDP_ASSIGN_OR_RETURN(const int64_t value, util::ParseInt64Field(row[7]));
    if (index < 0) {
      return Status::InvalidArgument("negative bucket index" + RowRef(rownum));
    }
    // Fields a kind never uses must be zero; a nonzero one is the signature
    // of a column shift or a file written by a different schema.
    if (kind == "cumulative" &&
        (k != 0 || alphabet != 0 || npad != 0 || true_n != 0)) {
      return Status::InvalidArgument("nonzero metadata in cumulative row" +
                                     RowRef(rownum));
    }
    if (kind == "window" && alphabet != 0) {
      return Status::InvalidArgument("nonzero alphabet in window row" +
                                     RowRef(rownum));
    }

    // An index restarting at 0 under the same t is not a continuation: it
    // is the first row of a second block (a duplicated release), so it
    // falls through to the new-block path where the duplicate check fires.
    const bool restarts = index == 0 && !b->values.empty();
    if (b->open && t == b->t && !restarts) {
      if (k != b->k || alphabet != b->alphabet || npad != b->npad ||
          true_n != b->true_n) {
        return Status::InvalidArgument(
            "inconsistent metadata within release t=" + std::to_string(t) +
            RowRef(rownum));
      }
      const int64_t expected = static_cast<int64_t>(b->values.size());
      if (index < expected) {
        return Status::InvalidArgument(
            "duplicate bucket index " + std::to_string(index) +
            " in release t=" + std::to_string(t) + RowRef(rownum));
      }
      if (index > expected) {
        return Status::InvalidArgument(
            "gap in bucket indices (expected " + std::to_string(expected) +
            ", got " + std::to_string(index) + ") in release t=" +
            std::to_string(t) + RowRef(rownum));
      }
      b->values.push_back(value);
      continue;
    }

    if (b->open) {
      LONGDP_RETURN_NOT_OK(CloseBuilder(kind, b, &log));
    }
    if (t == b->last_t) {
      return Status::InvalidArgument("duplicate " + kind + " release t=" +
                                     std::to_string(t) + RowRef(rownum));
    }
    if (t < b->last_t) {
      return Status::InvalidArgument(
          "out-of-order " + kind + " release t=" + std::to_string(t) +
          " after t=" + std::to_string(b->last_t) + RowRef(rownum));
    }
    if (index != 0) {
      return Status::InvalidArgument(
          "release t=" + std::to_string(t) + " must start at bucket index 0" +
          RowRef(rownum));
    }
    b->open = true;
    b->t = t;
    b->k = k;
    b->alphabet = alphabet;
    b->npad = npad;
    b->true_n = true_n;
    b->values.push_back(value);
  }
  if (window_b.open) {
    LONGDP_RETURN_NOT_OK(CloseBuilder("window", &window_b, &log));
  }
  if (cumulative_b.open) {
    LONGDP_RETURN_NOT_OK(CloseBuilder("cumulative", &cumulative_b, &log));
  }
  if (categorical_b.open) {
    LONGDP_RETURN_NOT_OK(CloseBuilder("categorical", &categorical_b, &log));
  }
  return log;
}

}  // namespace core
}  // namespace longdp
