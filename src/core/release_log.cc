#include "core/release_log.h"

#include <fstream>
#include <map>

#include "util/csv.h"

namespace longdp {
namespace core {

Status ReleaseLog::Capture(const FixedWindowSynthesizer& synth) {
  if (!synth.has_release()) return Status::OK();
  WindowRelease release;
  release.t = synth.t();
  release.window_k = synth.window_k();
  release.npad = synth.npad();
  release.true_n = synth.population();
  release.histogram = synth.SyntheticHistogram();
  if (!window_.empty() && window_.back().t == release.t) {
    return Status::AlreadyExists("release for t=" + std::to_string(release.t) +
                                 " already captured");
  }
  window_.push_back(std::move(release));
  return Status::OK();
}

Status ReleaseLog::Capture(const CumulativeSynthesizer& synth) {
  if (synth.t() < 1) {
    return Status::FailedPrecondition("no cumulative release yet");
  }
  if (!cumulative_.empty() && cumulative_.back().t == synth.t()) {
    return Status::AlreadyExists("release for t=" + std::to_string(synth.t()) +
                                 " already captured");
  }
  CumulativeRelease release;
  release.t = synth.t();
  release.thresholds = synth.released_thresholds();
  cumulative_.push_back(std::move(release));
  return Status::OK();
}

Status ReleaseLog::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  util::CsvWriter writer(&out);
  writer.WriteRow({"kind", "t", "k", "npad", "true_n", "index", "value"});
  for (const auto& r : window_) {
    for (size_t s = 0; s < r.histogram.size(); ++s) {
      writer.WriteRow({"window", std::to_string(r.t),
                       std::to_string(r.window_k), std::to_string(r.npad),
                       std::to_string(r.true_n), std::to_string(s),
                       std::to_string(r.histogram[s])});
    }
  }
  for (const auto& r : cumulative_) {
    for (size_t b = 0; b < r.thresholds.size(); ++b) {
      writer.WriteRow({"cumulative", std::to_string(r.t), "0", "0", "0",
                       std::to_string(b), std::to_string(r.thresholds[b])});
    }
  }
  // An ofstream buffers; without an explicit flush a full disk or closed
  // descriptor would only surface in the destructor, after OK was returned.
  out.flush();
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<ReleaseLog> ReleaseLog::LoadCsv(const std::string& path) {
  LONGDP_ASSIGN_OR_RETURN(auto rows, util::ReadCsvFile(path));
  if (rows.empty() || rows[0].size() != 7) {
    return Status::InvalidArgument("not a release log CSV: " + path);
  }
  ReleaseLog log;
  // (kind, t) -> accumulating rows; rows for one release are contiguous in
  // files we write, but accept any order.
  std::map<int64_t, WindowRelease> window_by_t;
  std::map<int64_t, CumulativeRelease> cumulative_by_t;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 7) {
      return Status::InvalidArgument("malformed row " + std::to_string(r + 1));
    }
    // Strict parses: a corrupted field must fail the load, not silently
    // parse to 0 (which would e.g. merge rows into release t=0).
    const std::string& kind = row[0];
    LONGDP_ASSIGN_OR_RETURN(const int64_t t, util::ParseInt64Field(row[1]));
    LONGDP_ASSIGN_OR_RETURN(const int64_t index_raw,
                            util::ParseInt64Field(row[5]));
    LONGDP_ASSIGN_OR_RETURN(const int64_t value,
                            util::ParseInt64Field(row[6]));
    if (index_raw < 0) {
      return Status::InvalidArgument("negative bucket index in row " +
                                     std::to_string(r + 1));
    }
    const size_t index = static_cast<size_t>(index_raw);
    if (kind == "window") {
      auto& rel = window_by_t[t];
      rel.t = t;
      LONGDP_ASSIGN_OR_RETURN(const int64_t window_k,
                              util::ParseInt64Field(row[2]));
      rel.window_k = static_cast<int>(window_k);
      LONGDP_ASSIGN_OR_RETURN(rel.npad, util::ParseInt64Field(row[3]));
      LONGDP_ASSIGN_OR_RETURN(rel.true_n, util::ParseInt64Field(row[4]));
      if (rel.histogram.size() <= index) rel.histogram.resize(index + 1, 0);
      rel.histogram[index] = value;
    } else if (kind == "cumulative") {
      auto& rel = cumulative_by_t[t];
      rel.t = t;
      if (rel.thresholds.size() <= index) rel.thresholds.resize(index + 1, 0);
      rel.thresholds[index] = value;
    } else {
      return Status::InvalidArgument("unknown release kind '" + kind + "'");
    }
  }
  for (auto& [t, rel] : window_by_t) log.window_.push_back(std::move(rel));
  for (auto& [t, rel] : cumulative_by_t) {
    log.cumulative_.push_back(std::move(rel));
  }
  return log;
}

}  // namespace core
}  // namespace longdp
