// Release log: a durable record of everything a synthesizer published.
//
// In a deployment the continual releases are what analysts actually
// receive, so the library captures them in a replayable, CSV-serializable
// log: per round, the fixed-window synthetic histogram (plus the public
// padding facts) or the cumulative threshold row. Because the log contains
// only released (post-DP) values, persisting and sharing it costs no
// additional privacy — it is pure post-processing.

#ifndef LONGDP_CORE_RELEASE_LOG_H_
#define LONGDP_CORE_RELEASE_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/categorical_synthesizer.h"
#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "util/status.h"

namespace longdp {
namespace core {

/// One fixed-window release: the width-k synthetic histogram at time t.
struct WindowRelease {
  int64_t t = 0;
  int window_k = 0;
  int64_t npad = 0;
  int64_t true_n = 0;
  std::vector<int64_t> histogram;  ///< 2^k synthetic pattern counts p^t_s
};

/// One cumulative release: the monotonized threshold row at time t.
struct CumulativeRelease {
  int64_t t = 0;
  std::vector<int64_t> thresholds;  ///< Shat^t_b for b = 0..T
};

/// One categorical release: the base-A window histogram at time t.
struct CategoricalRelease {
  int64_t t = 0;
  int window_k = 0;
  int alphabet = 0;  ///< A >= 2
  int64_t npad = 0;
  int64_t true_n = 0;
  std::vector<int64_t> histogram;  ///< A^k base-A pattern counts
};

class ReleaseLog {
 public:
  /// Appends the synthesizer's current release (no-op before the first
  /// release at t = k).
  Status Capture(const FixedWindowSynthesizer& synth);
  /// Appends the synthesizer's current release (requires t >= 1).
  Status Capture(const CumulativeSynthesizer& synth);
  /// Appends the synthesizer's current release (no-op before the first
  /// release at t = k).
  Status Capture(const CategoricalWindowSynthesizer& synth);

  /// Appends an already-materialized release (e.g. read back from an
  /// archive). Same same-t duplicate check as the Capture overloads.
  Status Append(WindowRelease release);
  Status Append(CumulativeRelease release);
  Status Append(CategoricalRelease release);

  const std::vector<WindowRelease>& window_releases() const {
    return window_;
  }
  const std::vector<CumulativeRelease>& cumulative_releases() const {
    return cumulative_;
  }
  const std::vector<CategoricalRelease>& categorical_releases() const {
    return categorical_;
  }

  /// Serializes to CSV with rows: kind,t,k,alphabet,npad,true_n,index,value
  /// (alphabet is 0 for window and cumulative rows).
  Status WriteCsv(const std::string& path) const;

  /// Loads a log previously written by WriteCsv. Strict: rows of one
  /// release must be contiguous with indices running 0,1,2,... and
  /// consistent metadata, release times per kind must be strictly
  /// increasing, and each release must close complete (2^k / A^k bins) —
  /// duplicated, reordered, gapped, or truncated logs (e.g. a corrupted or
  /// carelessly concatenated file) are rejected with the offending
  /// 1-based row number instead of yielding a plausible-looking sequence.
  static Result<ReleaseLog> LoadCsv(const std::string& path);

 private:
  std::vector<WindowRelease> window_;
  std::vector<CumulativeRelease> cumulative_;
  std::vector<CategoricalRelease> categorical_;
};

}  // namespace core
}  // namespace longdp

#endif  // LONGDP_CORE_RELEASE_LOG_H_
