#include "core/synthetic_cohort.h"

#include <algorithm>

namespace longdp {
namespace core {

Result<SyntheticCohort> SyntheticCohort::Create(
    int window_k, const std::vector<int64_t>& initial_counts) {
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(window_k));
  if (initial_counts.size() != util::NumPatterns(window_k)) {
    return Status::InvalidArgument("initial_counts size must be 2^k");
  }
  for (int64_t c : initial_counts) {
    if (c < 0) {
      return Status::InvalidArgument(
          "initial cohort counts must be non-negative (pad the histogram)");
    }
  }
  SyntheticCohort cohort;
  cohort.k_ = window_k;
  cohort.rounds_ = window_k;
  cohort.pattern_count_ = initial_counts;
  cohort.groups_.assign(util::NumPatterns(window_k - 1), {});
  cohort.group_scratch_.assign(util::NumPatterns(window_k - 1), {});
  int64_t total = 0;
  for (int64_t c : initial_counts) total += c;
  cohort.num_records_ = total;
  const size_t m = static_cast<size_t>(total);
  cohort.history_bits_.assign(m * static_cast<size_t>(window_k), 0);
  int64_t next_record = 0;
  for (util::Pattern s = 0; s < initial_counts.size(); ++s) {
    util::Pattern overlap = util::Overlap(s, window_k);
    for (int64_t c = 0; c < initial_counts[s]; ++c) {
      const size_t rec = static_cast<size_t>(next_record++);
      cohort.groups_[overlap].push_back(static_cast<int64_t>(rec));
      for (int j = 0; j < window_k; ++j) {
        cohort.history_bits_[static_cast<size_t>(j) * m + rec] =
            static_cast<uint8_t>((s >> (window_k - 1 - j)) & 1);
      }
    }
  }
  return cohort;
}

Result<SyntheticCohort> SyntheticCohort::Restore(
    int window_k, std::vector<std::vector<uint8_t>> histories) {
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(window_k));
  SyntheticCohort cohort;
  cohort.k_ = window_k;
  cohort.num_records_ = static_cast<int64_t>(histories.size());
  cohort.groups_.assign(util::NumPatterns(window_k - 1), {});
  cohort.group_scratch_.assign(util::NumPatterns(window_k - 1), {});
  cohort.pattern_count_.assign(util::NumPatterns(window_k), 0);
  size_t rounds = histories.empty() ? static_cast<size_t>(window_k)
                                    : histories[0].size();
  if (rounds < static_cast<size_t>(window_k)) {
    return Status::InvalidArgument(
        "restored histories must span at least k rounds");
  }
  const size_t m = histories.size();
  cohort.history_bits_.assign(m * rounds, 0);
  for (size_t r = 0; r < histories.size(); ++r) {
    const auto& h = histories[r];
    if (h.size() != rounds) {
      return Status::InvalidArgument(
          "restored histories must all have equal length");
    }
    for (size_t j = 0; j < rounds; ++j) {
      if (h[j] > 1) {
        return Status::InvalidArgument("history bits must be 0 or 1");
      }
      cohort.history_bits_[j * m + r] = h[j];
    }
    util::Pattern p = 0;
    for (size_t j = rounds - static_cast<size_t>(window_k); j < rounds;
         ++j) {
      p = (p << 1) | static_cast<util::Pattern>(h[j]);
    }
    ++cohort.pattern_count_[p];
    cohort.groups_[util::Overlap(p, window_k)].push_back(
        static_cast<int64_t>(r));
  }
  cohort.rounds_ = static_cast<int64_t>(rounds);
  return cohort;
}

Status SyntheticCohort::AdvanceRound(const std::vector<int64_t>& ones_target,
                                     util::Rng* rng) {
  size_t num_overlaps = util::NumPatterns(k_ - 1);
  if (ones_target.size() != num_overlaps) {
    return Status::InvalidArgument("ones_target size must be 2^(k-1)");
  }
  for (util::Pattern z = 0; z < num_overlaps; ++z) {
    int64_t target = ones_target[z];
    int64_t group = GroupSize(z);
    if (target < 0 || target > group) {
      return Status::InvalidArgument(
          "ones_target[" + util::PatternToString(z, k_ - 1) + "]=" +
          std::to_string(target) + " outside [0, group=" +
          std::to_string(group) + "]");
    }
  }

  // Select extensions per overlap group against the *current* groups, then
  // rebuild the group index for the next round. Scratch vectors persist
  // across rounds (cleared, not reallocated), and the new round is one
  // zero-filled column append into the flat history matrix.
  std::vector<std::vector<int64_t>>& new_groups = group_scratch_;
  for (auto& g : new_groups) g.clear();
  std::vector<int64_t>& new_counts = count_scratch_;
  new_counts.assign(util::NumPatterns(k_), 0);
  const size_t m = static_cast<size_t>(num_records_);
  const size_t col_base = static_cast<size_t>(rounds_) * m;
  history_bits_.resize(col_base + m, 0);
  uint8_t* col = history_bits_.data() + col_base;
  for (util::Pattern z = 0; z < num_overlaps; ++z) {
    std::vector<int64_t>& members = groups_[z];
    int64_t target = ones_target[z];
    int64_t group = static_cast<int64_t>(members.size());
    if (group == 0) continue;
    // Uniformly choose which records get the 1-extension: partial shuffle
    // puts a random `target`-subset at the front.
    if (target > 0 && target < group) {
      for (int64_t i = 0; i < target; ++i) {
        int64_t j = i + static_cast<int64_t>(rng->UniformInt(
                            static_cast<uint64_t>(group - i)));
        std::swap(members[static_cast<size_t>(i)],
                  members[static_cast<size_t>(j)]);
      }
    }
    for (int64_t i = 0; i < group; ++i) {
      int bit = (i < target) ? 1 : 0;
      int64_t rec = members[static_cast<size_t>(i)];
      col[rec] = static_cast<uint8_t>(bit);
      util::Pattern new_pattern =
          (z << 1) | static_cast<util::Pattern>(bit);  // width k
      ++new_counts[new_pattern];
      new_groups[util::Overlap(new_pattern, k_)].push_back(rec);
    }
  }
  groups_.swap(new_groups);
  pattern_count_.swap(new_counts);
  ++rounds_;
  return Status::OK();
}

std::vector<int64_t> SyntheticCohort::WindowHistogram() const {
  return pattern_count_;
}

Result<data::LongitudinalDataset> SyntheticCohort::ToDataset(
    int64_t horizon) const {
  if (horizon < rounds_) {
    return Status::InvalidArgument("horizon must be >= rounds()");
  }
  LONGDP_ASSIGN_OR_RETURN(
      auto ds, data::LongitudinalDataset::Create(num_records_, horizon));
  std::vector<uint8_t> round(static_cast<size_t>(num_records_));
  for (int64_t t = 1; t <= rounds_; ++t) {
    // Column-major storage: each round is one contiguous copy.
    const uint8_t* col = history_bits_.data() +
                         static_cast<size_t>(t - 1) *
                             static_cast<size_t>(num_records_);
    round.assign(col, col + num_records_);
    LONGDP_RETURN_NOT_OK(ds.AppendRound(round));
  }
  return ds;
}

}  // namespace core
}  // namespace longdp
