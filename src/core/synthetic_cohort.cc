#include "core/synthetic_cohort.h"

#include <algorithm>
#include <cstring>

#include "util/batch_sampler.h"

namespace longdp {
namespace core {

Result<SyntheticCohort> SyntheticCohort::Create(
    int window_k, const std::vector<int64_t>& initial_counts) {
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(window_k));
  if (initial_counts.size() != util::NumPatterns(window_k)) {
    return Status::InvalidArgument("initial_counts size must be 2^k");
  }
  for (int64_t c : initial_counts) {
    if (c < 0) {
      return Status::InvalidArgument(
          "initial cohort counts must be non-negative (pad the histogram)");
    }
  }
  SyntheticCohort cohort;
  cohort.k_ = window_k;
  cohort.rounds_ = window_k;
  cohort.pattern_count_ = initial_counts;
  // Counting-sort build: per-overlap totals are one pass over the census,
  // then records scatter straight into their flat group slots.
  cohort.groups_.Reset(util::NumPatterns(window_k - 1));
  for (util::Pattern s = 0; s < initial_counts.size(); ++s) {
    cohort.groups_.AddCount(util::Overlap(s, window_k), initial_counts[s]);
  }
  cohort.groups_.BuildOffsets();
  cohort.groups_next_.Reset(util::NumPatterns(window_k - 1));
  int64_t total = 0;
  for (int64_t c : initial_counts) total += c;
  cohort.num_records_ = total;
  const size_t m = static_cast<size_t>(total);
  cohort.history_bits_.assign(m * static_cast<size_t>(window_k), 0);
  // Pattern s seeds initial_counts[s] consecutive record ids, so each
  // group placement is one sequence append and each record's history is a
  // per-round run fill (the matrix is already zero-filled; only 1-runs
  // need writes). Same record ids, member order, and bits as the
  // per-record loop this replaces.
  int64_t next_record = 0;
  for (util::Pattern s = 0; s < initial_counts.size(); ++s) {
    const int64_t c = initial_counts[s];
    if (c == 0) continue;
    cohort.groups_.PlaceSequence(util::Overlap(s, window_k), next_record, c);
    const size_t base = static_cast<size_t>(next_record);
    for (int j = 0; j < window_k; ++j) {
      if ((s >> (window_k - 1 - j)) & 1) {
        std::memset(&cohort.history_bits_[static_cast<size_t>(j) * m + base],
                    1, static_cast<size_t>(c));
      }
    }
    next_record += c;
  }
  return cohort;
}

Result<SyntheticCohort> SyntheticCohort::Restore(
    int window_k, std::vector<std::vector<uint8_t>> histories) {
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(window_k));
  SyntheticCohort cohort;
  cohort.k_ = window_k;
  cohort.num_records_ = static_cast<int64_t>(histories.size());
  cohort.pattern_count_.assign(util::NumPatterns(window_k), 0);
  size_t rounds = histories.empty() ? static_cast<size_t>(window_k)
                                    : histories[0].size();
  if (rounds < static_cast<size_t>(window_k)) {
    return Status::InvalidArgument(
        "restored histories must span at least k rounds");
  }
  const size_t m = histories.size();
  cohort.history_bits_.assign(m * rounds, 0);
  // Pass 1: validate, fill the bit matrix, and remember each record's
  // suffix pattern so the flat group build is a counting sort.
  std::vector<util::Pattern> suffix(m);
  for (size_t r = 0; r < histories.size(); ++r) {
    const auto& h = histories[r];
    if (h.size() != rounds) {
      return Status::InvalidArgument(
          "restored histories must all have equal length");
    }
    for (size_t j = 0; j < rounds; ++j) {
      if (h[j] > 1) {
        return Status::InvalidArgument("history bits must be 0 or 1");
      }
      cohort.history_bits_[j * m + r] = h[j];
    }
    util::Pattern p = 0;
    for (size_t j = rounds - static_cast<size_t>(window_k); j < rounds;
         ++j) {
      p = (p << 1) | static_cast<util::Pattern>(h[j]);
    }
    suffix[r] = p;
    ++cohort.pattern_count_[p];
  }
  // Pass 2: counting-sort the records into flat overlap groups, in record
  // order (same member order the ragged build produced).
  cohort.groups_.Reset(util::NumPatterns(window_k - 1));
  for (util::Pattern p = 0; p < cohort.pattern_count_.size(); ++p) {
    cohort.groups_.AddCount(util::Overlap(p, window_k),
                            cohort.pattern_count_[p]);
  }
  cohort.groups_.BuildOffsets();
  for (size_t r = 0; r < m; ++r) {
    cohort.groups_.Place(util::Overlap(suffix[r], window_k),
                         static_cast<int64_t>(r));
  }
  cohort.groups_next_.Reset(util::NumPatterns(window_k - 1));
  cohort.rounds_ = static_cast<int64_t>(rounds);
  return cohort;
}

Status SyntheticCohort::AdvanceRound(const std::vector<int64_t>& ones_target,
                                     const util::SubstreamRng& stream,
                                     util::ThreadPool* pool) {
  size_t num_overlaps = util::NumPatterns(k_ - 1);
  if (ones_target.size() != num_overlaps) {
    return Status::InvalidArgument("ones_target size must be 2^(k-1)");
  }
  for (util::Pattern z = 0; z < num_overlaps; ++z) {
    int64_t target = ones_target[z];
    int64_t group = GroupSize(z);
    if (target < 0 || target > group) {
      return Status::InvalidArgument(
          "ones_target[" + util::PatternToString(z, k_ - 1) + "]=" +
          std::to_string(target) + " outside [0, group=" +
          std::to_string(group) + "]");
    }
  }

  // Counting-sort regroup: every next-round pattern count — and therefore
  // every next-round overlap group size — is known arithmetically from the
  // targets before any record moves, so the regroup is count/prefix-sum/
  // scatter into the flat double buffer. The new round itself is one
  // zero-filled column append into the flat history matrix.
  const util::Pattern half = util::Pattern{1} << (k_ - 1);
  std::vector<int64_t>& new_counts = count_scratch_;
  new_counts.assign(util::NumPatterns(k_), 0);
  groups_next_.Reset(num_overlaps);
  for (util::Pattern z = 0; z < num_overlaps; ++z) {
    const int64_t group = GroupSize(z);
    const int64_t target = ones_target[z];
    new_counts[(z << 1)] = group - target;      // width-k pattern z then 0
    new_counts[(z << 1) | 1] = target;          // width-k pattern z then 1
  }
  for (util::Pattern o = 0; o < num_overlaps; ++o) {
    // Width-k patterns whose low k-1 bits equal o: o itself and o | half.
    groups_next_.AddCount(o, new_counts[o] + new_counts[o | half]);
  }
  groups_next_.BuildOffsets();

  const size_t m = static_cast<size_t>(num_records_);
  const size_t col_base = static_cast<size_t>(rounds_) * m;
  history_bits_.resize(col_base + m, 0);
  uint8_t* col = history_bits_.data() + col_base;
  // Pass 1 — the draws: uniformly choose which records get the
  // 1-extension by a batched partial shuffle that puts a random
  // `target`-subset at the group's front. Overlap z draws only from its
  // keyed substream stream.Leaf(z) and mutates only its own member slice,
  // so the groups shard freely; the target == 0 and target == group
  // (whole-group) edges need no draw at all.
  util::ShardedFor(
      pool, static_cast<int64_t>(num_overlaps),
      [&](int /*shard*/, int64_t begin, int64_t end) {
        for (int64_t zi = begin; zi < end; ++zi) {
          const util::Pattern z = static_cast<util::Pattern>(zi);
          const int64_t target = ones_target[z];
          const int64_t group = groups_.size(z);
          if (target > 0 && target < group) {
            util::SubstreamRng group_stream =
                stream.Leaf(static_cast<uint64_t>(z));
            util::BatchSampler sampler(&group_stream);
            sampler.PartialShuffle(groups_.group_data(z), group, target);
          }
        }
      });
  // Pass 2 — the scatter: destination groups interleave across source
  // overlaps (z0 and z1 of different z can share an overlap), so the
  // regroup stays serial, in overlap order. Within a source overlap the
  // shuffle left the promoted subset at the front, so the per-record loop
  // collapses to two ranged appends (ones first, zeros second — the same
  // member order) plus the 1-bit column writes; the zero extensions need
  // no writes at all, the appended column is already zero-filled.
  for (util::Pattern z = 0; z < num_overlaps; ++z) {
    int64_t* members = groups_.group_data(z);
    const int64_t target = ones_target[z];
    const int64_t group = groups_.size(z);
    for (int64_t i = 0; i < target; ++i) col[members[i]] = 1;
    groups_next_.PlaceRange(util::Overlap((z << 1) | 1, k_), members,
                            target);
    groups_next_.PlaceRange(util::Overlap(z << 1, k_), members + target,
                            group - target);
  }
  groups_.swap(groups_next_);
  pattern_count_.swap(new_counts);
  ++rounds_;
  return Status::OK();
}

std::vector<int64_t> SyntheticCohort::WindowHistogram() const {
  return pattern_count_;
}

Result<data::LongitudinalDataset> SyntheticCohort::ToDataset(
    int64_t horizon) const {
  if (horizon < rounds_) {
    return Status::InvalidArgument("horizon must be >= rounds()");
  }
  LONGDP_ASSIGN_OR_RETURN(
      auto ds, data::LongitudinalDataset::Create(num_records_, horizon));
  std::vector<uint8_t> round(static_cast<size_t>(num_records_));
  for (int64_t t = 1; t <= rounds_; ++t) {
    // Column-major storage: each round is one contiguous copy.
    const uint8_t* col = history_bits_.data() +
                         static_cast<size_t>(t - 1) *
                             static_cast<size_t>(num_records_);
    round.assign(col, col + num_records_);
    LONGDP_RETURN_NOT_OK(ds.AppendRound(round));
  }
  return ds;
}

void SyntheticCohort::AppendGroupOrder(std::vector<int64_t>* out) const {
  out->reserve(out->size() + static_cast<size_t>(num_records_));
  for (size_t z = 0; z < groups_.num_groups(); ++z) {
    const int64_t* members = groups_.group_data(z);
    const int64_t size = groups_.size(z);
    for (int64_t i = 0; i < size; ++i) out->push_back(members[i]);
  }
}

Status SyntheticCohort::RestoreGroupOrder(const std::vector<int64_t>& order) {
  if (static_cast<int64_t>(order.size()) != num_records_) {
    return Status::InvalidArgument(
        "group order must list every record exactly once");
  }
  const size_t m = static_cast<size_t>(num_records_);
  // Each record's current overlap, recomputed from its last k bits.
  std::vector<util::Pattern> overlap(m);
  for (size_t r = 0; r < m; ++r) {
    util::Pattern p = 0;
    for (int64_t t = rounds_ - k_ + 1; t <= rounds_; ++t) {
      p = (p << 1) |
          static_cast<util::Pattern>(
              history_bits_[static_cast<size_t>(t - 1) * m + r]);
    }
    overlap[r] = util::Overlap(p, k_);
  }
  std::vector<uint8_t> seen(m, 0);
  util::FlatGroups rebuilt;
  rebuilt.Reset(util::NumPatterns(k_ - 1));
  for (int64_t rec : order) {
    if (rec < 0 || rec >= num_records_ || seen[static_cast<size_t>(rec)]) {
      return Status::InvalidArgument("group order is not a permutation");
    }
    seen[static_cast<size_t>(rec)] = 1;
    rebuilt.AddCount(overlap[static_cast<size_t>(rec)], 1);
  }
  rebuilt.BuildOffsets();
  for (int64_t rec : order) {
    rebuilt.Place(overlap[static_cast<size_t>(rec)], rec);
  }
  groups_.swap(rebuilt);
  return Status::OK();
}

}  // namespace core
}  // namespace longdp
