// The persistent synthetic population maintained by FixedWindowSynthesizer.
//
// A cohort is a set of synthetic records whose bit histories are append-only
// (the paper's central consistency requirement: records persist and are only
// extended, never rewritten). The cohort indexes records by their current
// (k-1)-bit window overlap so that Algorithm 1's stage 2 — "extend p^t_{z1}
// of the records ending in z by 1 and the rest by 0" — is O(group size) per
// overlap.

#ifndef LONGDP_CORE_SYNTHETIC_COHORT_H_
#define LONGDP_CORE_SYNTHETIC_COHORT_H_

#include <cstdint>
#include <vector>

#include "data/longitudinal_dataset.h"
#include "util/bits.h"
#include "util/flat_groups.h"
#include "util/status.h"
#include "util/substream.h"
#include "util/thread_pool.h"

namespace longdp {
namespace core {

class SyntheticCohort {
 public:
  /// Creates the initial cohort at time t = k from a per-pattern census:
  /// `initial_counts[s]` records are created with history equal to the k
  /// bits of pattern s. Counts must be non-negative; size must be 2^k.
  static Result<SyntheticCohort> Create(
      int window_k, const std::vector<int64_t>& initial_counts);

  /// Rebuilds a cohort from fully materialized record histories (used by
  /// checkpoint restore). Every history must have the same length >= k;
  /// the overlap index and histogram are reconstructed from the last k
  /// bits.
  static Result<SyntheticCohort> Restore(
      int window_k, std::vector<std::vector<uint8_t>> histories);

  int window_k() const { return k_; }
  int64_t num_records() const { return num_records_; }
  /// Rounds of history each record currently carries (>= k).
  int64_t rounds() const { return rounds_; }

  /// Advances one round. `ones_target[z]` says how many of the records whose
  /// current overlap is z must be extended by 1 (selected uniformly at
  /// random); the remainder get 0. Requires 0 <= ones_target[z] <=
  /// group size for every z (the synthesizer's consistency solve guarantees
  /// this). Size must be 2^(k-1).
  ///
  /// Overlap z's selection draws from stream.Leaf(z), so the per-group
  /// shuffles are independent and shard across `pool` (may be null) — the
  /// extended histories are bit-identical at any shard or thread count.
  /// The caller passes a fresh per-round stream (e.g. root.Derive(t)).
  Status AdvanceRound(const std::vector<int64_t>& ones_target,
                      const util::SubstreamRng& stream,
                      util::ThreadPool* pool = nullptr);

  /// Current histogram over width-k suffix patterns; result[s] = number of
  /// records whose last k bits equal s. O(2^k).
  std::vector<int64_t> WindowHistogram() const;

  /// Number of records whose current overlap (last k-1 bits) equals z.
  int64_t GroupSize(util::Pattern z) const {
    return groups_.size(static_cast<size_t>(z));
  }

  /// Bit of record `r` at round `t` (both 1-based times; t <= rounds()).
  int Bit(int64_t r, int64_t t) const {
    return history_bits_[static_cast<size_t>(t - 1) *
                             static_cast<size_t>(num_records_) +
                         static_cast<size_t>(r)];
  }

  /// Pre-sizes the flat history storage for `total_rounds` rounds so the
  /// per-round column appends of AdvanceRound never reallocate. Optional —
  /// the synthesizer calls it with its horizon at the initial release.
  void ReserveRounds(int64_t total_rounds) {
    if (total_rounds > rounds_) {
      history_bits_.reserve(static_cast<size_t>(total_rounds) *
                            static_cast<size_t>(num_records_));
    }
  }

  /// Materializes the cohort as a LongitudinalDataset of num_records()
  /// users and rounds() rounds (horizon is set to `horizon`, which must be
  /// >= rounds()).
  Result<data::LongitudinalDataset> ToDataset(int64_t horizon) const;

  /// Appends the flat overlap-group member order (groups in overlap order,
  /// members in current within-group order) — exactly num_records()
  /// entries. AdvanceRound's selection shuffles permute this order, so a
  /// checkpoint must persist it: a cohort rebuilt in record-index order
  /// releases the same histograms but promotes DIFFERENT record
  /// identities on resume.
  void AppendGroupOrder(std::vector<int64_t>* out) const;

  /// Restores an AppendGroupOrder permutation onto a cohort rebuilt by
  /// Restore(). Rejects anything that is not a permutation of
  /// [0, num_records()); each record lands in the group its current
  /// overlap dictates, in the listed order.
  Status RestoreGroupOrder(const std::vector<int64_t>& order);

 private:
  SyntheticCohort() = default;

  int k_ = 0;
  int64_t num_records_ = 0;
  int64_t rounds_ = 0;
  /// All record histories as one flat column-major bit matrix: round t's
  /// column is [(t-1)*m, t*m) for m = num_records_. Extending the cohort by
  /// a round is a single zero-filled resize plus scattered writes for the
  /// 1-extensions — no per-record vector churn on the hot path.
  std::vector<uint8_t> history_bits_;
  /// Records grouped by current overlap z, as one flat counting-sorted
  /// array. AdvanceRound knows every next-round group size from the
  /// targets alone, so the regroup is a count/prefix-sum/scatter pass into
  /// groups_next_ followed by a swap — no ragged per-group vectors.
  util::FlatGroups groups_;
  util::FlatGroups groups_next_;                      // double buffer
  std::vector<int64_t> pattern_count_;                // current histogram p_s
  // Persistent AdvanceRound scratch (overwritten, never reallocated).
  std::vector<int64_t> count_scratch_;
};

}  // namespace core
}  // namespace longdp

#endif  // LONGDP_CORE_SYNTHETIC_COHORT_H_
