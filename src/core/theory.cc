#include "core/theory.h"

#include <cmath>

#include "stream/budget_split.h"
#include "util/bits.h"

namespace longdp {
namespace core {
namespace theory {

namespace {
Status ValidateFixedWindowArgs(int64_t horizon, int window_k, double rho,
                               double beta) {
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(window_k));
  if (horizon < window_k) {
    return Status::InvalidArgument("horizon T must be >= window k");
  }
  if (!(rho > 0.0)) {
    return Status::InvalidArgument("rho must be > 0");
  }
  if (!(beta > 0.0) || beta >= 1.0) {
    return Status::InvalidArgument("beta must be in (0,1)");
  }
  return Status::OK();
}
}  // namespace

Result<double> FixedWindowSigma2(int64_t horizon, int window_k, double rho) {
  LONGDP_RETURN_NOT_OK(ValidateFixedWindowArgs(horizon, window_k, rho, 0.5));
  if (std::isinf(rho)) return 0.0;
  double steps = static_cast<double>(horizon - window_k + 1);
  return steps / (2.0 * rho);
}

Result<double> MaxBinCountErrorBound(int64_t horizon, int window_k, double rho,
                                     double beta) {
  LONGDP_RETURN_NOT_OK(ValidateFixedWindowArgs(horizon, window_k, rho, beta));
  if (std::isinf(rho)) return 0.0;
  double steps = static_cast<double>(horizon - window_k + 1);
  double lead = std::sqrt(steps / rho) + 1.0 / std::sqrt(2.0);
  double log_arg =
      std::log(static_cast<double>(util::NumPatterns(window_k)) * steps /
               beta);
  return lead * std::sqrt(log_arg);
}

Result<int64_t> RecommendedNpad(int64_t horizon, int window_k, double rho,
                                double beta) {
  if (std::isinf(rho)) return int64_t{0};
  LONGDP_ASSIGN_OR_RETURN(
      double bound, MaxBinCountErrorBound(horizon, window_k, rho, beta));
  return static_cast<int64_t>(std::ceil(bound));
}

Result<double> DebiasedFractionErrorBound(int64_t horizon, int window_k,
                                          double rho, double beta,
                                          int64_t n) {
  if (n <= 0) {
    return Status::InvalidArgument("population n must be > 0");
  }
  LONGDP_ASSIGN_OR_RETURN(
      double bound, MaxBinCountErrorBound(horizon, window_k, rho, beta));
  return bound / static_cast<double>(n);
}

Result<double> BiasedFractionErrorBound(int64_t horizon, int window_k,
                                        double rho, double beta, int64_t n,
                                        double bin_fraction) {
  if (n <= 0) {
    return Status::InvalidArgument("population n must be > 0");
  }
  if (bin_fraction < 0.0 || bin_fraction > 1.0) {
    return Status::InvalidArgument("bin_fraction must be in [0,1]");
  }
  LONGDP_ASSIGN_OR_RETURN(
      double lambda, MaxBinCountErrorBound(horizon, window_k, rho, beta));
  double dn = static_cast<double>(n);
  double pow_k1 = static_cast<double>(util::NumPatterns(window_k)) * 2.0;
  return 2.0 * lambda / dn + pow_k1 * lambda / dn * bin_fraction;
}

Result<double> CumulativeFractionErrorBound(int64_t horizon, double rho,
                                            double beta, int64_t n) {
  if (horizon < 1) {
    return Status::InvalidArgument("horizon must be >= 1");
  }
  if (!(rho > 0.0)) {
    return Status::InvalidArgument("rho must be > 0");
  }
  if (!(beta > 0.0) || beta >= 1.0) {
    return Status::InvalidArgument("beta must be in (0,1)");
  }
  if (n <= 0) {
    return Status::InvalidArgument("population n must be > 0");
  }
  if (std::isinf(rho)) return 0.0;
  double sum_l3 = 0.0;
  for (int64_t b = 1; b <= horizon; ++b) {
    double l = static_cast<double>(stream::LevelsForThreshold(horizon, b));
    sum_l3 += l * l * l;
  }
  return std::sqrt(sum_l3 / rho * std::log(1.0 / beta)) /
         static_cast<double>(n);
}

Result<double> RecomputePerStepSigma(int64_t horizon, int window_k,
                                     double rho) {
  LONGDP_ASSIGN_OR_RETURN(double sigma2,
                          FixedWindowSigma2(horizon, window_k, rho));
  return std::sqrt(sigma2);
}

}  // namespace theory
}  // namespace core
}  // namespace longdp
