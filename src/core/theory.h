// Closed-form quantities from the paper's analysis, used for calibration
// (n_pad), for the dashed theoretical-bound lines in Figures 3-4, and by the
// theory benches that compare measured error against the proofs.

#ifndef LONGDP_CORE_THEORY_H_
#define LONGDP_CORE_THEORY_H_

#include <cstdint>

#include "util/status.h"

namespace longdp {
namespace core {
namespace theory {

/// Per-update-step noise variance of Algorithm 1 (Section 3.1):
///   sigma^2 = (T - k + 1) / (2 rho).
Result<double> FixedWindowSigma2(int64_t horizon, int window_k, double rho);

/// The paper's recommended padding (Section 3.1):
///   n_pad = ( sqrt((T-k+1)/rho) + 1/sqrt(2) ) * sqrt( log(2^k (T-k+1)/beta) ),
/// which by Theorem 3.2 keeps every noisy count non-negative with
/// probability >= 1 - beta over the whole run. Returned rounded up.
Result<int64_t> RecommendedNpad(int64_t horizon, int window_k, double rho,
                                double beta);

/// Theorem 3.2: with probability >= 1 - beta,
///   max_{s,t} | p^t_s - (C^t_s + n_pad) |
///     <= ( sqrt((T-k+1)/rho) + 1/sqrt(2) ) * sqrt( log(2^k (T-k+1)/beta) ).
Result<double> MaxBinCountErrorBound(int64_t horizon, int window_k, double rho,
                                     double beta);

/// Corollary 3.3 (debiased form): the maximum error of debiased proportions,
/// MaxBinCountErrorBound / n.
Result<double> DebiasedFractionErrorBound(int64_t horizon, int window_k,
                                          double rho, double beta, int64_t n);

/// Corollary 3.3 (biased form): upper bound on |p^t_s/n* - C^t_s/n| given a
/// worst-case bin fraction `bin_fraction` = C^t_s / n, using
/// n <= n* <= n + 2^{k+1} lambda:  2 lambda / n + 2^{k+1} lambda/n * frac.
Result<double> BiasedFractionErrorBound(int64_t horizon, int window_k,
                                        double rho, double beta, int64_t n,
                                        double bin_fraction);

/// Corollary B.1: Algorithm 2 with tree counters and the cubic-log budget
/// split is (alpha*, T beta)-accurate with
///   alpha* = (1/n) sqrt( (sum_b L_b^3) / rho * log(1/beta) ),
///   L_b = max(ceil(log2(T - b + 1)), 1).
Result<double> CumulativeFractionErrorBound(int64_t horizon, double rho,
                                            double beta, int64_t n);

/// The sqrt(T)-composition error floor of the recompute-from-scratch
/// baseline (Section 1 strawman): each of the R = T - k + 1 re-syntheses
/// gets rho/R, so per-release bin-count noise stdev is
/// sqrt(R/(2 rho)) — identical in order to Algorithm 1's, but with no
/// record persistence (the point of bench/baseline_recompute).
Result<double> RecomputePerStepSigma(int64_t horizon, int window_k,
                                     double rho);

}  // namespace theory
}  // namespace core
}  // namespace longdp

#endif  // LONGDP_CORE_THEORY_H_
