#include "data/generators.h"

#include <cmath>

#include "util/thread_pool.h"

namespace longdp {
namespace data {

namespace {
Result<LongitudinalDataset> ConstantDataset(int64_t num_users, int64_t horizon,
                                            uint8_t value) {
  LONGDP_ASSIGN_OR_RETURN(auto ds,
                          LongitudinalDataset::Create(num_users, horizon));
  std::vector<uint8_t> round(static_cast<size_t>(num_users), value);
  for (int64_t t = 1; t <= horizon; ++t) {
    LONGDP_RETURN_NOT_OK(ds.AppendRound(round));
  }
  return ds;
}

Status ValidateMixture(const std::vector<MixtureComponent>& components) {
  if (components.empty()) {
    return Status::InvalidArgument("mixture needs at least one component");
  }
  double total_share = 0.0;
  for (const auto& c : components) {
    if (c.share < 0.0) {
      return Status::InvalidArgument("mixture shares must be >= 0");
    }
    LONGDP_RETURN_NOT_OK(ValidateMarkovParams(c.params));
    total_share += c.share;
  }
  if (std::fabs(total_share - 1.0) > 1e-6) {
    return Status::InvalidArgument("mixture shares must sum to 1, got " +
                                   std::to_string(total_share));
  }
  return Status::OK();
}

// Assigns users to components by contiguous index blocks (deterministic;
// the rounding remainder goes to the last component).
std::vector<size_t> AssignComponents(
    int64_t num_users, const std::vector<MixtureComponent>& components) {
  std::vector<size_t> component_of(static_cast<size_t>(num_users),
                                   components.size() - 1);
  size_t next = 0;
  for (size_t c = 0; c + 1 < components.size(); ++c) {
    size_t count = static_cast<size_t>(
        std::llround(components[c].share * static_cast<double>(num_users)));
    for (size_t j = 0; j < count && next < component_of.size(); ++j) {
      component_of[next++] = c;
    }
  }
  return component_of;
}
}  // namespace

Result<LongitudinalDataset> ExtremeAllOnes(int64_t num_users,
                                           int64_t horizon) {
  return ConstantDataset(num_users, horizon, 1);
}

Result<LongitudinalDataset> ExtremeAllZeros(int64_t num_users,
                                            int64_t horizon) {
  return ConstantDataset(num_users, horizon, 0);
}

Result<LongitudinalDataset> BernoulliIid(int64_t num_users, int64_t horizon,
                                         double p, util::Rng* rng) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("Bernoulli p must be in [0,1]");
  }
  LONGDP_ASSIGN_OR_RETURN(auto ds,
                          LongitudinalDataset::Create(num_users, horizon));
  std::vector<uint8_t> round(static_cast<size_t>(num_users));
  for (int64_t t = 1; t <= horizon; ++t) {
    for (auto& b : round) b = rng->Bernoulli(p) ? 1 : 0;
    LONGDP_RETURN_NOT_OK(ds.AppendRound(round));
  }
  return ds;
}

Result<LongitudinalDataset> BernoulliIid(int64_t num_users, int64_t horizon,
                                         double p, uint64_t seed,
                                         util::ThreadPool* pool) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("Bernoulli p must be in [0,1]");
  }
  LONGDP_ASSIGN_OR_RETURN(auto ds,
                          LongitudinalDataset::Create(num_users, horizon));
  const util::SubstreamRng root(seed, util::substream::kDataset);
  std::vector<uint8_t> round(static_cast<size_t>(num_users));
  for (int64_t t = 1; t <= horizon; ++t) {
    const util::SubstreamRng round_stream =
        root.Derive(static_cast<uint64_t>(t));
    util::ShardedFor(pool, num_users,
                     [&](int /*shard*/, int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) {
                         util::SubstreamRng user_stream =
                             round_stream.Leaf(static_cast<uint64_t>(i));
                         round[static_cast<size_t>(i)] =
                             user_stream.Bernoulli(p) ? 1 : 0;
                       }
                     });
    LONGDP_RETURN_NOT_OK(ds.AppendRound(round));
  }
  return ds;
}

Status ValidateMarkovParams(const MarkovParams& params) {
  auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in01(params.initial_rate) || !in01(params.entry_prob) ||
      !in01(params.exit_prob)) {
    return Status::InvalidArgument(
        "Markov probabilities must all lie in [0,1]");
  }
  return Status::OK();
}

Result<LongitudinalDataset> TwoStateMarkov(int64_t num_users, int64_t horizon,
                                           const MarkovParams& params,
                                           util::Rng* rng) {
  LONGDP_RETURN_NOT_OK(ValidateMarkovParams(params));
  std::vector<MixtureComponent> one = {{1.0, params}};
  return SubpopulationMixture(num_users, horizon, one, rng);
}

Result<LongitudinalDataset> TwoStateMarkov(int64_t num_users, int64_t horizon,
                                           const MarkovParams& params,
                                           uint64_t seed,
                                           util::ThreadPool* pool) {
  LONGDP_RETURN_NOT_OK(ValidateMarkovParams(params));
  std::vector<MixtureComponent> one = {{1.0, params}};
  return SubpopulationMixture(num_users, horizon, one, seed, pool);
}

Result<LongitudinalDataset> SubpopulationMixture(
    int64_t num_users, int64_t horizon,
    const std::vector<MixtureComponent>& components, util::Rng* rng) {
  LONGDP_RETURN_NOT_OK(ValidateMixture(components));
  std::vector<size_t> component_of = AssignComponents(num_users, components);

  LONGDP_ASSIGN_OR_RETURN(auto ds,
                          LongitudinalDataset::Create(num_users, horizon));
  std::vector<uint8_t> state(static_cast<size_t>(num_users), 0);
  for (size_t i = 0; i < state.size(); ++i) {
    state[i] =
        rng->Bernoulli(components[component_of[i]].params.initial_rate) ? 1
                                                                        : 0;
  }
  LONGDP_RETURN_NOT_OK(ds.AppendRound(state));
  for (int64_t t = 2; t <= horizon; ++t) {
    for (size_t i = 0; i < state.size(); ++i) {
      const MarkovParams& p = components[component_of[i]].params;
      if (state[i]) {
        if (rng->Bernoulli(p.exit_prob)) state[i] = 0;
      } else {
        if (rng->Bernoulli(p.entry_prob)) state[i] = 1;
      }
    }
    LONGDP_RETURN_NOT_OK(ds.AppendRound(state));
  }
  return ds;
}

Result<LongitudinalDataset> SubpopulationMixture(
    int64_t num_users, int64_t horizon,
    const std::vector<MixtureComponent>& components, uint64_t seed,
    util::ThreadPool* pool) {
  LONGDP_RETURN_NOT_OK(ValidateMixture(components));
  std::vector<size_t> component_of = AssignComponents(num_users, components);

  LONGDP_ASSIGN_OR_RETURN(auto ds,
                          LongitudinalDataset::Create(num_users, horizon));
  const util::SubstreamRng root(seed, util::substream::kDataset);
  std::vector<uint8_t> state(static_cast<size_t>(num_users), 0);
  for (int64_t t = 1; t <= horizon; ++t) {
    const util::SubstreamRng round_stream =
        root.Derive(static_cast<uint64_t>(t));
    util::ShardedFor(
        pool, num_users, [&](int /*shard*/, int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            const size_t ii = static_cast<size_t>(i);
            const MarkovParams& p = components[component_of[ii]].params;
            util::SubstreamRng user_stream =
                round_stream.Leaf(static_cast<uint64_t>(i));
            if (t == 1) {
              state[ii] = user_stream.Bernoulli(p.initial_rate) ? 1 : 0;
            } else if (state[ii]) {
              if (user_stream.Bernoulli(p.exit_prob)) state[ii] = 0;
            } else {
              if (user_stream.Bernoulli(p.entry_prob)) state[ii] = 1;
            }
          }
        });
    LONGDP_RETURN_NOT_OK(ds.AppendRound(state));
  }
  return ds;
}

}  // namespace data
}  // namespace longdp
