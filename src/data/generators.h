// Synthetic workload generators for the paper's simulated experiments
// (Appendix C.1) and for stress/property testing.
//
// All generators produce a full LongitudinalDataset from an explicit Rng, so
// experiments are reproducible. Each corresponds to a distinct stochastic
// model of individual trajectories:
//
//  * ExtremeAllOnes   — every bit 1 (Appendix C.1's "rather extreme" data):
//                       concentrates all mass in one histogram bin, the
//                       worst case for relative error on small bins.
//  * BernoulliIid     — each bit i.i.d. Bernoulli(p); null model.
//  * TwoStateMarkov   — per-user 2-state chain with entry probability
//                       (0 -> 1) and exit probability (1 -> 0); the natural
//                       model for poverty/unemployment spells.
//  * SubpopulationMix — users split across components, each with its own
//                       Markov parameters (e.g. chronic vs transient
//                       poverty); the Joseph-Roth-Ullman-Waggoner style
//                       evolving-subpopulation setting.

#ifndef LONGDP_DATA_GENERATORS_H_
#define LONGDP_DATA_GENERATORS_H_

#include <vector>

#include "data/longitudinal_dataset.h"
#include "util/rng.h"
#include "util/substream.h"

namespace longdp {
namespace util {
class ThreadPool;
}  // namespace util

namespace data {

/// Every individual reports 1 in every round.
Result<LongitudinalDataset> ExtremeAllOnes(int64_t num_users, int64_t horizon);

/// Every individual reports 0 in every round.
Result<LongitudinalDataset> ExtremeAllZeros(int64_t num_users,
                                            int64_t horizon);

/// Each bit independently Bernoulli(p). Draws sequentially from `rng`.
Result<LongitudinalDataset> BernoulliIid(int64_t num_users, int64_t horizon,
                                         double p, util::Rng* rng);

/// Keyed overload: the bit of user i at round t draws from the addressable
/// substream (seed, kDataset, t, i), so generation shards across `pool`
/// (may be null) and the dataset is bit-identical at any shard or thread
/// count — the scale-out path for multi-million-user benchmarks.
Result<LongitudinalDataset> BernoulliIid(int64_t num_users, int64_t horizon,
                                         double p, uint64_t seed,
                                         util::ThreadPool* pool = nullptr);

/// Parameters of a two-state (0 = out, 1 = in) Markov trajectory.
struct MarkovParams {
  double initial_rate = 0.1;  ///< Pr[x^1 = 1]
  double entry_prob = 0.05;   ///< Pr[x^{t+1} = 1 | x^t = 0]
  double exit_prob = 0.3;     ///< Pr[x^{t+1} = 0 | x^t = 1]
};

/// Validates probabilities are in [0, 1].
Status ValidateMarkovParams(const MarkovParams& params);

/// Per-user independent two-state Markov chains.
Result<LongitudinalDataset> TwoStateMarkov(int64_t num_users, int64_t horizon,
                                           const MarkovParams& params,
                                           util::Rng* rng);

/// Keyed overload (see BernoulliIid above for the addressing contract).
Result<LongitudinalDataset> TwoStateMarkov(int64_t num_users, int64_t horizon,
                                           const MarkovParams& params,
                                           uint64_t seed,
                                           util::ThreadPool* pool = nullptr);

/// One mixture component: a weight share and its Markov parameters.
struct MixtureComponent {
  double share = 0.0;  ///< fraction of users; shares must sum to ~1
  MarkovParams params;
};

/// Users are assigned to components by share (deterministically by index,
/// remainder to the last component) and evolve independently.
Result<LongitudinalDataset> SubpopulationMixture(
    int64_t num_users, int64_t horizon,
    const std::vector<MixtureComponent>& components, util::Rng* rng);

/// Keyed overload (see BernoulliIid above for the addressing contract).
Result<LongitudinalDataset> SubpopulationMixture(
    int64_t num_users, int64_t horizon,
    const std::vector<MixtureComponent>& components, uint64_t seed,
    util::ThreadPool* pool = nullptr);

}  // namespace data
}  // namespace longdp

#endif  // LONGDP_DATA_GENERATORS_H_
