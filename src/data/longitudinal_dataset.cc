#include "data/longitudinal_dataset.h"

namespace longdp {
namespace data {

Result<LongitudinalDataset> LongitudinalDataset::Create(int64_t num_users,
                                                        int64_t horizon) {
  if (num_users < 0) {
    return Status::InvalidArgument("num_users must be >= 0");
  }
  if (horizon < 1) {
    return Status::InvalidArgument("horizon must be >= 1");
  }
  return LongitudinalDataset(num_users, horizon);
}

Status LongitudinalDataset::AppendRound(const std::vector<uint8_t>& bits) {
  if (rounds_ >= horizon_) {
    return Status::OutOfRange("dataset already holds all " +
                              std::to_string(horizon_) + " rounds");
  }
  if (bits.size() != static_cast<size_t>(num_users_)) {
    return Status::InvalidArgument(
        "round must contain exactly one bit per user (" +
        std::to_string(num_users_) + "), got " + std::to_string(bits.size()));
  }
  for (uint8_t b : bits) {
    if (b > 1) {
      return Status::InvalidArgument("round entries must be 0 or 1");
    }
  }
  std::vector<int32_t> w(static_cast<size_t>(num_users_), 0);
  if (!weights_.empty()) {
    const auto& prev = weights_.back();
    for (size_t i = 0; i < w.size(); ++i) w[i] = prev[i] + bits[i];
  } else {
    for (size_t i = 0; i < w.size(); ++i) w[i] = bits[i];
  }
  const size_t col = words_.size();
  words_.resize(col + words_per_round_, 0);
  for (size_t i = 0; i < bits.size(); ++i) {
    words_[col + (i >> 6)] |= static_cast<uint64_t>(bits[i]) << (i & 63);
  }
  weights_.push_back(std::move(w));
  ++rounds_;
  return Status::OK();
}

util::Pattern LongitudinalDataset::SuffixPattern(int64_t user, int64_t t,
                                                 int k) const {
  util::Pattern p = 0;
  for (int64_t tt = t - k + 1; tt <= t; ++tt) {
    int bit = (tt >= 1 && tt <= rounds_) ? Bit(user, tt) : 0;
    p = (p << 1) | static_cast<util::Pattern>(bit);
  }
  return p;
}

int64_t LongitudinalDataset::HammingWeight(int64_t user, int64_t t) const {
  if (t <= 0) return 0;
  return weights_[static_cast<size_t>(t - 1)][static_cast<size_t>(user)];
}

Result<std::vector<int64_t>> LongitudinalDataset::WindowHistogram(
    int64_t t, int k) const {
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(k));
  if (t < k || t > rounds_) {
    return Status::OutOfRange("WindowHistogram requires k <= t <= rounds()");
  }
  std::vector<int64_t> hist(util::NumPatterns(k), 0);
  ForEachSuffixPattern(t, k,
                       [&](int64_t, util::Pattern p) { ++hist[p]; });
  return hist;
}

Result<std::vector<int64_t>> LongitudinalDataset::CumulativeCounts(
    int64_t t) const {
  if (t < 1 || t > rounds_) {
    return Status::OutOfRange("CumulativeCounts requires 1 <= t <= rounds()");
  }
  std::vector<int64_t> exact(static_cast<size_t>(horizon_) + 1, 0);
  const auto& w = weights_[static_cast<size_t>(t - 1)];
  for (int64_t i = 0; i < num_users_; ++i) {
    ++exact[static_cast<size_t>(w[static_cast<size_t>(i)])];
  }
  // Suffix-sum the exact-weight histogram into >=-threshold counts.
  std::vector<int64_t> cum(static_cast<size_t>(horizon_) + 1, 0);
  int64_t running = 0;
  for (int64_t b = horizon_; b >= 0; --b) {
    running += exact[static_cast<size_t>(b)];
    cum[static_cast<size_t>(b)] = running;
  }
  return cum;
}

Result<std::vector<int64_t>> LongitudinalDataset::WeightIncrements(
    int64_t t) const {
  if (t < 1 || t > rounds_) {
    return Status::OutOfRange("WeightIncrements requires 1 <= t <= rounds()");
  }
  std::vector<int64_t> z(static_cast<size_t>(horizon_), 0);
  // Only the round's set bits contribute; the packed view skips the rest.
  if (t == 1) {
    z[0] = Round(1).CountOnes();
    return z;
  }
  const auto& w_prev = weights_[static_cast<size_t>(t - 2)];
  Round(t).ForEachOne([&](int64_t i) {
    // The user reaches weight w_prev + 1 = b exactly at time t.
    z[static_cast<size_t>(w_prev[static_cast<size_t>(i)])] += 1;
  });
  return z;
}

}  // namespace data
}  // namespace longdp
