// The longitudinal data model of Section 2.1: n individuals, each reporting
// one bit per period t = 1..T. The dataset is stored column-major (one
// vector per round) because both synthesizers consume it one round at a
// time; per-user prefix Hamming weights are maintained incrementally so the
// cumulative-query statistics of Algorithm 2 are O(n) per round.
//
// The same container is used for original data and for materialized
// synthetic data (the synthetic population size m may differ from n).

#ifndef LONGDP_DATA_LONGITUDINAL_DATASET_H_
#define LONGDP_DATA_LONGITUDINAL_DATASET_H_

#include <cstdint>
#include <vector>

#include "util/bits.h"
#include "util/status.h"

namespace longdp {
namespace data {

class LongitudinalDataset {
 public:
  /// An empty dataset over `num_users` individuals and a horizon of at most
  /// `horizon` rounds. Rounds are appended via AppendRound.
  static Result<LongitudinalDataset> Create(int64_t num_users,
                                            int64_t horizon);

  int64_t num_users() const { return num_users_; }
  int64_t horizon() const { return horizon_; }
  /// Rounds appended so far (the current time t).
  int64_t rounds() const { return static_cast<int64_t>(bits_.size()); }

  /// Appends round t+1. `bits` must have one 0/1 entry per user.
  Status AppendRound(const std::vector<uint8_t>& bits);

  /// Bit of `user` at round `t` (1-based, t <= rounds()).
  int Bit(int64_t user, int64_t t) const {
    return bits_[static_cast<size_t>(t - 1)][static_cast<size_t>(user)];
  }

  /// The user's most recent k bits at time t, encoded oldest-bit-first
  /// (util::Pattern convention). Bits before t = 1 are taken as 0, matching
  /// the paper's convention x^t = 0 for t <= 0.
  util::Pattern SuffixPattern(int64_t user, int64_t t, int k) const;

  /// Prefix Hamming weight of `user` through round t (0 for t == 0).
  int64_t HammingWeight(int64_t user, int64_t t) const;

  /// Histogram over {0,1}^k of users' length-k suffixes at time t:
  /// result[s] = #{ i : (x^{t-k+1}_i, ..., x^t_i) = s }. Requires t >= k.
  Result<std::vector<int64_t>> WindowHistogram(int64_t t, int k) const;

  /// Cumulative threshold counts S^t_b = #{ i : weight_i(t) >= b } for
  /// b = 0..horizon (so the result has horizon+1 entries; entry 0 is n).
  Result<std::vector<int64_t>> CumulativeCounts(int64_t t) const;

  /// The Algorithm-2 increments for round t:
  /// result[b-1] = z^t_b = #{ i : weight_i(t-1) = b-1 and x^t_i = 1 },
  /// for b = 1..horizon. Requires 1 <= t <= rounds().
  Result<std::vector<int64_t>> WeightIncrements(int64_t t) const;

  /// The full row of bits reported at round t.
  const std::vector<uint8_t>& Round(int64_t t) const {
    return bits_[static_cast<size_t>(t - 1)];
  }

 private:
  LongitudinalDataset(int64_t num_users, int64_t horizon)
      : num_users_(num_users), horizon_(horizon) {}

  int64_t num_users_;
  int64_t horizon_;
  std::vector<std::vector<uint8_t>> bits_;     // [t-1][user]
  std::vector<std::vector<int32_t>> weights_;  // [t-1][user] prefix weights
};

}  // namespace data
}  // namespace longdp

#endif  // LONGDP_DATA_LONGITUDINAL_DATASET_H_
