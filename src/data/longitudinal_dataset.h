// The longitudinal data model of Section 2.1: n individuals, each reporting
// one bit per period t = 1..T. Rounds are stored column-major as bit-packed
// uint64_t words (64 users per word) because both synthesizers consume the
// data one round at a time: Round(t) is a zero-copy RoundView whose
// word-level iteration and popcount counting replace the old byte-per-bit
// column scans. Per-user prefix Hamming weights are maintained incrementally
// so the cumulative-query statistics of Algorithm 2 are O(n) per round.
//
// The same container is used for original data and for materialized
// synthetic data (the synthetic population size m may differ from n).

#ifndef LONGDP_DATA_LONGITUDINAL_DATASET_H_
#define LONGDP_DATA_LONGITUDINAL_DATASET_H_

#include <array>
#include <cstdint>
#include <vector>

#include "data/round_view.h"
#include "util/bits.h"
#include "util/status.h"

namespace longdp {
namespace data {

class LongitudinalDataset {
 public:
  /// An empty dataset over `num_users` individuals and a horizon of at most
  /// `horizon` rounds. Rounds are appended via AppendRound.
  static Result<LongitudinalDataset> Create(int64_t num_users,
                                            int64_t horizon);

  int64_t num_users() const { return num_users_; }
  int64_t horizon() const { return horizon_; }
  /// Rounds appended so far (the current time t).
  int64_t rounds() const { return rounds_; }

  /// Appends round t+1. `bits` must have one 0/1 entry per user.
  Status AppendRound(const std::vector<uint8_t>& bits);

  /// Bit of `user` at round `t` (1-based, t <= rounds()).
  int Bit(int64_t user, int64_t t) const {
    return static_cast<int>(
        (words_[(static_cast<size_t>(t) - 1) * words_per_round_ +
                static_cast<size_t>(user >> 6)] >>
         (user & 63)) &
        1);
  }

  /// The user's most recent k bits at time t, encoded oldest-bit-first
  /// (util::Pattern convention). Bits before t = 1 are taken as 0, matching
  /// the paper's convention x^t = 0 for t <= 0.
  util::Pattern SuffixPattern(int64_t user, int64_t t, int k) const;

  /// Prefix Hamming weight of `user` through round t (0 for t == 0).
  int64_t HammingWeight(int64_t user, int64_t t) const;

  /// Histogram over {0,1}^k of users' length-k suffixes at time t:
  /// result[s] = #{ i : (x^{t-k+1}_i, ..., x^t_i) = s }. Requires t >= k.
  Result<std::vector<int64_t>> WindowHistogram(int64_t t, int k) const;

  /// Cumulative threshold counts S^t_b = #{ i : weight_i(t) >= b } for
  /// b = 0..horizon (so the result has horizon+1 entries; entry 0 is n).
  Result<std::vector<int64_t>> CumulativeCounts(int64_t t) const;

  /// The Algorithm-2 increments for round t:
  /// result[b-1] = z^t_b = #{ i : weight_i(t-1) = b-1 and x^t_i = 1 },
  /// for b = 1..horizon. Requires 1 <= t <= rounds().
  Result<std::vector<int64_t>> WeightIncrements(int64_t t) const;

  /// Zero-copy packed view of the bits reported at round t (1-based). The
  /// view is valid until the next AppendRound call (appending may
  /// reallocate the packed storage); re-fetch it after appending.
  RoundView Round(int64_t t) const {
    return RoundView(
        words_.data() + (static_cast<size_t>(t) - 1) * words_per_round_,
        num_users_);
  }

  /// Invokes fn(user, SuffixPattern(user, t, k)) for every user in
  /// increasing order, extracting each 64-user block's patterns from k
  /// round words instead of k per-user Bit() loads. Requires
  /// 1 <= t <= rounds() and k >= 1 (bits before t = 1 read as 0).
  template <typename Fn>
  void ForEachSuffixPattern(int64_t t, int k, Fn&& fn) const {
    for (size_t blk = 0; blk < words_per_round_; ++blk) {
      const int64_t base = static_cast<int64_t>(blk) << 6;
      const int count =
          static_cast<int>(num_users_ - base < 64 ? num_users_ - base : 64);
      std::array<util::Pattern, 64> pat{};
      for (int64_t tt = t - k + 1; tt <= t; ++tt) {
        // Rounds before t = 1 contribute 0 bits; the patterns are still 0
        // until the first real round, so the shift-in of a zero is a no-op
        // and the round can be skipped outright.
        if (tt < 1) continue;
        const uint64_t w =
            words_[(static_cast<size_t>(tt) - 1) * words_per_round_ + blk];
        for (int j = 0; j < count; ++j) {
          pat[static_cast<size_t>(j)] =
              (pat[static_cast<size_t>(j)] << 1) | ((w >> j) & 1);
        }
      }
      for (int j = 0; j < count; ++j) {
        fn(base + j, pat[static_cast<size_t>(j)]);
      }
    }
  }

 private:
  LongitudinalDataset(int64_t num_users, int64_t horizon)
      : num_users_(num_users),
        horizon_(horizon),
        words_per_round_(static_cast<size_t>((num_users + 63) >> 6)) {}

  int64_t num_users_;
  int64_t horizon_;
  size_t words_per_round_;
  int64_t rounds_ = 0;
  /// Bit-packed rounds, one words_per_round_ stretch per round: bit of
  /// `user` at round t is words_[(t-1)*wpr + user/64] >> (user%64) & 1.
  std::vector<uint64_t> words_;
  std::vector<std::vector<int32_t>> weights_;  // [t-1][user] prefix weights
};

}  // namespace data
}  // namespace longdp

#endif  // LONGDP_DATA_LONGITUDINAL_DATASET_H_
