#include "data/round_view.h"

namespace longdp {
namespace data {

Status PackedRound::Assign(const std::vector<uint8_t>& bits) {
  for (uint8_t b : bits) {
    if (b > 1) {
      return Status::InvalidArgument("round entries must be 0 or 1");
    }
  }
  const int64_t n = static_cast<int64_t>(bits.size());
  words_.assign(static_cast<size_t>((n + 63) >> 6), 0);
  for (int64_t i = 0; i < n; ++i) {
    words_[static_cast<size_t>(i >> 6)] |=
        static_cast<uint64_t>(bits[static_cast<size_t>(i)]) << (i & 63);
  }
  num_bits_ = n;
  return Status::OK();
}

}  // namespace data
}  // namespace longdp
