// Bit-packed round representation: one 0/1 report per individual, packed 64
// per uint64_t word (bit i of the round lives at word i/64, position i%64).
//
// RoundView is the non-owning, trivially-copyable handle the observe hot
// paths consume. Word-level access is what removes the byte-per-bit column
// scans: counting a round is popcount over n/64 words, and iterating the
// set bits (the only records stage 1 of the cumulative synthesizer touches)
// is a countr_zero loop that skips zero words entirely.
//
// PackedRound owns a packed buffer and is the validation boundary: Assign
// rejects any byte other than 0/1 before a single bit is published, so a
// RoundView is 0/1-clean by construction and downstream code never
// re-validates. Trailing bits past size() in the last word are always zero
// (CountOnes and word-level consumers rely on it).

#ifndef LONGDP_DATA_ROUND_VIEW_H_
#define LONGDP_DATA_ROUND_VIEW_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace longdp {
namespace data {

class RoundView {
 public:
  RoundView() = default;
  /// `words` must hold (num_bits + 63) / 64 entries and stay alive for the
  /// lifetime of the view; bits past num_bits in the last word must be 0.
  RoundView(const uint64_t* words, int64_t num_bits)
      : words_(words), num_bits_(num_bits) {}

  int64_t size() const { return num_bits_; }
  const uint64_t* words() const { return words_; }
  size_t num_words() const {
    return static_cast<size_t>((num_bits_ + 63) >> 6);
  }

  /// Bit `i` (0-based), 0 or 1.
  int bit(int64_t i) const {
    return static_cast<int>((words_[i >> 6] >> (i & 63)) & 1);
  }

  /// Number of 1-bits in the round.
  int64_t CountOnes() const {
    int64_t ones = 0;
    const size_t nw = num_words();
    for (size_t w = 0; w < nw; ++w) ones += std::popcount(words_[w]);
    return ones;
  }

  /// Invokes fn(i) for every set bit i in [begin, end), in increasing
  /// order. Zero words are skipped with no per-bit work.
  template <typename Fn>
  void ForEachOneInRange(int64_t begin, int64_t end, Fn&& fn) const {
    if (begin >= end) return;
    const int64_t w_first = begin >> 6;
    const int64_t w_last = (end - 1) >> 6;
    for (int64_t w = w_first; w <= w_last; ++w) {
      uint64_t word = words_[w];
      if (w == w_first) word &= ~uint64_t{0} << (begin & 63);
      if (w == w_last && (end & 63) != 0) {
        word &= ~uint64_t{0} >> (64 - (end & 63));
      }
      while (word != 0) {
        fn((w << 6) + std::countr_zero(word));
        word &= word - 1;
      }
    }
  }

  /// Invokes fn(i) for every set bit i, in increasing order.
  template <typename Fn>
  void ForEachOne(Fn&& fn) const {
    ForEachOneInRange(0, num_bits_, fn);
  }

 private:
  const uint64_t* words_ = nullptr;
  int64_t num_bits_ = 0;
};

class PackedRound {
 public:
  PackedRound() = default;

  /// Packs a byte-per-bit round, rejecting any entry other than 0 or 1
  /// (InvalidArgument, with the buffer left unchanged on failure). Reuses
  /// the word buffer's capacity across calls, so repacking every round of a
  /// stream allocates only on growth.
  Status Assign(const std::vector<uint8_t>& bits);

  static Result<PackedRound> FromBytes(const std::vector<uint8_t>& bits) {
    PackedRound round;
    LONGDP_RETURN_NOT_OK(round.Assign(bits));
    return round;
  }

  int64_t size() const { return num_bits_; }
  RoundView view() const { return RoundView(words_.data(), num_bits_); }

 private:
  std::vector<uint64_t> words_;
  int64_t num_bits_ = 0;
};

}  // namespace data
}  // namespace longdp

#endif  // LONGDP_DATA_ROUND_VIEW_H_
