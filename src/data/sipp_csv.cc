#include "data/sipp_csv.h"

#include <fstream>

#include "util/csv.h"

namespace longdp {
namespace data {

namespace {
bool IsBitField(const std::string& f) { return f == "0" || f == "1"; }

// True iff `f` is a well-formed decimal number: an optional leading '-',
// at most one '.', and at least one digit. The old check accepted any mix
// of digits, '-', and '.' anywhere, so lone "-" / "." fields and
// dash-joined names like "2024-01" counted as numeric and their row was
// silently ingested as data instead of being recognized as a header.
bool LooksNumeric(const std::string& f) {
  size_t i = (f[0] == '-') ? 1 : 0;
  bool any_digit = false;
  bool seen_dot = false;
  for (; i < f.size(); ++i) {
    const char c = f[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      any_digit = true;
    } else if (c == '.' && !seen_dot) {
      seen_dot = true;
    } else {
      return false;
    }
  }
  return any_digit;
}

bool LooksLikeHeader(const std::vector<std::string>& row) {
  // A header contains at least one field that is neither a bit nor a number
  // (numeric column names like "id,1,2,3" are caught by the "id" field).
  for (const auto& f : row) {
    if (f.empty()) continue;
    if (!LooksNumeric(f)) return true;
  }
  return false;
}
}  // namespace

Result<LongitudinalDataset> LoadSippBitsCsv(const std::string& path) {
  LONGDP_ASSIGN_OR_RETURN(auto rows, util::ReadCsvFile(path));
  if (rows.empty()) {
    return Status::InvalidArgument("CSV file is empty: " + path);
  }
  size_t first = 0;
  if (LooksLikeHeader(rows[0])) first = 1;
  if (first >= rows.size()) {
    return Status::InvalidArgument("CSV has a header but no data rows: " +
                                   path);
  }
  // Detect an id column: present iff any data row's first field is not a
  // bit (ids like "0" and "1" are ambiguous row by row, so scan them all).
  const auto& probe = rows[first];
  if (probe.empty()) {
    return Status::InvalidArgument("empty data row in " + path);
  }
  size_t skip = 0;
  for (size_t r = first; r < rows.size(); ++r) {
    if (!rows[r].empty() && !IsBitField(rows[r][0])) {
      skip = 1;
      break;
    }
  }
  if (probe.size() <= skip) {
    return Status::InvalidArgument("no period columns found in " + path);
  }
  size_t horizon = probe.size() - skip;

  int64_t n = static_cast<int64_t>(rows.size() - first);
  LONGDP_ASSIGN_OR_RETURN(
      auto ds, LongitudinalDataset::Create(n, static_cast<int64_t>(horizon)));
  // The dataset is column-major; buffer rows then append per round.
  std::vector<std::vector<uint8_t>> cols(
      horizon, std::vector<uint8_t>(static_cast<size_t>(n), 0));
  for (size_t r = first; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != skip + horizon) {
      return Status::InvalidArgument(
          "row " + std::to_string(r + 1) + " has " +
          std::to_string(row.size()) + " fields, expected " +
          std::to_string(skip + horizon));
    }
    for (size_t t = 0; t < horizon; ++t) {
      const std::string& f = row[skip + t];
      if (!IsBitField(f)) {
        return Status::InvalidArgument("non-binary value '" + f + "' at row " +
                                       std::to_string(r + 1));
      }
      cols[t][r - first] = (f == "1") ? 1 : 0;
    }
  }
  for (size_t t = 0; t < horizon; ++t) {
    LONGDP_RETURN_NOT_OK(ds.AppendRound(cols[t]));
  }
  return ds;
}

Status WriteSippBitsCsv(const LongitudinalDataset& dataset,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  util::CsvWriter writer(&out);
  std::vector<std::string> header = {"id"};
  for (int64_t t = 1; t <= dataset.rounds(); ++t) {
    header.push_back("month" + std::to_string(t));
  }
  writer.WriteRow(header);
  for (int64_t i = 0; i < dataset.num_users(); ++i) {
    std::vector<std::string> row = {std::to_string(i)};
    for (int64_t t = 1; t <= dataset.rounds(); ++t) {
      row.push_back(dataset.Bit(i, t) ? "1" : "0");
    }
    writer.WriteRow(row);
  }
  // An ofstream buffers; without an explicit flush a full disk or closed
  // descriptor would only surface in the destructor, after OK was returned.
  out.flush();
  return out.good() ? Status::OK()
                    : Status::IOError("write failed: " + path);
}

}  // namespace data
}  // namespace longdp
