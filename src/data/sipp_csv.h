// CSV ingestion/export for preprocessed longitudinal bit panels.
//
// Format: one row per individual; an optional leading non-numeric header
// row is skipped; an optional first "id" column is detected and skipped; the
// remaining fields must all be 0/1 and every row must have the same number
// of periods. This matches the preprocessed SIPP extract described in the
// paper's Section 5 (one binarized poverty indicator per household-month),
// so users holding the real data can reproduce the figures on it directly.

#ifndef LONGDP_DATA_SIPP_CSV_H_
#define LONGDP_DATA_SIPP_CSV_H_

#include <string>

#include "data/longitudinal_dataset.h"

namespace longdp {
namespace data {

/// Loads a bit panel from `path`. Fails with IOError if unreadable and
/// InvalidArgument on malformed rows.
Result<LongitudinalDataset> LoadSippBitsCsv(const std::string& path);

/// Writes `dataset` as id,month1..monthT rows with a header.
Status WriteSippBitsCsv(const LongitudinalDataset& dataset,
                        const std::string& path);

}  // namespace data
}  // namespace longdp

#endif  // LONGDP_DATA_SIPP_CSV_H_
