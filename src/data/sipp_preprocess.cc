#include "data/sipp_preprocess.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/csv.h"

namespace longdp {
namespace data {

Result<SippPreprocessResult> PreprocessSipp(
    const std::vector<SippRawRecord>& records, int64_t horizon) {
  if (horizon < 1) {
    return Status::InvalidArgument("horizon must be >= 1");
  }
  SippPreprocessStats stats;
  stats.raw_records = static_cast<int64_t>(records.size());

  // Per household: the first person id seen and that person's month series.
  struct Series {
    int64_t person_id;
    std::vector<double> ratio;   // indexed month-1; NaN until observed
    std::vector<bool> observed;
  };
  std::map<int64_t, Series> by_household;

  for (const auto& r : records) {
    if (r.month < 1 || r.month > horizon) {
      return Status::OutOfRange(
          "month " + std::to_string(r.month) + " outside [1, " +
          std::to_string(horizon) + "] for household " +
          std::to_string(r.household_id));
    }
    auto [it, inserted] = by_household.try_emplace(r.household_id);
    Series& s = it->second;
    if (inserted) {
      s.person_id = r.person_id;
      s.ratio.assign(static_cast<size_t>(horizon),
                     std::nan(""));
      s.observed.assign(static_cast<size_t>(horizon), false);
    }
    if (r.person_id != s.person_id) {
      // Paper step 1: one series per household; keep the first person.
      ++stats.dropped_extra_person_series;
      continue;
    }
    size_t idx = static_cast<size_t>(r.month - 1);
    if (s.observed[idx]) {
      bool same = (std::isnan(s.ratio[idx]) && std::isnan(r.poverty_ratio)) ||
                  s.ratio[idx] == r.poverty_ratio;
      if (!same) {
        return Status::InvalidArgument(
            "conflicting duplicate observation for household " +
            std::to_string(r.household_id) + " month " +
            std::to_string(r.month));
      }
      continue;
    }
    s.observed[idx] = true;
    s.ratio[idx] = r.poverty_ratio;
  }
  stats.households_seen = static_cast<int64_t>(by_household.size());

  // Paper steps 3-4: drop households with any missing or unobserved month.
  std::vector<int64_t> kept_ids;
  std::vector<const Series*> kept_series;
  for (const auto& [id, s] : by_household) {
    bool complete = true;
    bool missing = false;
    for (int64_t m = 0; m < horizon; ++m) {
      if (!s.observed[static_cast<size_t>(m)]) {
        complete = false;
      } else if (std::isnan(s.ratio[static_cast<size_t>(m)])) {
        missing = true;
      }
    }
    if (missing) {
      ++stats.dropped_missing_value;
      continue;
    }
    if (!complete) {
      ++stats.dropped_incomplete_series;
      continue;
    }
    kept_ids.push_back(id);
    kept_series.push_back(&s);
  }
  stats.households_kept = static_cast<int64_t>(kept_ids.size());

  LONGDP_ASSIGN_OR_RETURN(
      auto ds, LongitudinalDataset::Create(stats.households_kept, horizon));
  std::vector<uint8_t> round(kept_series.size());
  for (int64_t m = 0; m < horizon; ++m) {
    for (size_t i = 0; i < kept_series.size(); ++i) {
      // Paper step 2: binarize — ratio < 1 means in poverty.
      round[i] =
          kept_series[i]->ratio[static_cast<size_t>(m)] < 1.0 ? 1 : 0;
    }
    LONGDP_RETURN_NOT_OK(ds.AppendRound(round));
  }
  SippPreprocessResult result{std::move(ds), stats, std::move(kept_ids)};
  return result;
}

Result<std::vector<SippRawRecord>> LoadSippLongCsv(const std::string& path) {
  LONGDP_ASSIGN_OR_RETURN(auto rows, util::ReadCsvFile(path));
  if (rows.empty()) {
    return Status::InvalidArgument("empty CSV: " + path);
  }
  const auto& header = rows[0];
  auto find_col = [&](const std::string& name) -> int {
    for (size_t c = 0; c < header.size(); ++c) {
      if (header[c] == name) return static_cast<int>(c);
    }
    return -1;
  };
  int c_hh = find_col("SSUID");
  int c_pn = find_col("PNUM");
  int c_month = find_col("MONTHCODE");
  int c_ratio = find_col("THINCPOVT2");
  if (c_hh < 0 || c_pn < 0 || c_month < 0 || c_ratio < 0) {
    return Status::InvalidArgument(
        "CSV header must contain SSUID, PNUM, MONTHCODE, THINCPOVT2");
  }
  std::vector<SippRawRecord> records;
  records.reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    size_t needed = static_cast<size_t>(
        std::max(std::max(c_hh, c_pn), std::max(c_month, c_ratio)));
    if (row.size() <= needed) {
      return Status::InvalidArgument("short row " + std::to_string(r + 1) +
                                     " in " + path);
    }
    // Strict parses: a garbage SSUID would otherwise become household 0 and
    // silently merge unrelated people into one privacy unit.
    SippRawRecord rec;
    LONGDP_ASSIGN_OR_RETURN(
        rec.household_id,
        util::ParseInt64Field(row[static_cast<size_t>(c_hh)]));
    LONGDP_ASSIGN_OR_RETURN(
        rec.person_id, util::ParseInt64Field(row[static_cast<size_t>(c_pn)]));
    LONGDP_ASSIGN_OR_RETURN(
        rec.month, util::ParseInt64Field(row[static_cast<size_t>(c_month)]));
    const std::string& ratio_str = row[static_cast<size_t>(c_ratio)];
    if (ratio_str.empty()) {
      rec.poverty_ratio = std::nan("");  // missing income is expected
    } else {
      LONGDP_ASSIGN_OR_RETURN(rec.poverty_ratio,
                              util::ParseDoubleField(ratio_str));
    }
    records.push_back(rec);
  }
  return records;
}

}  // namespace data
}  // namespace longdp
