// Preprocessing pipeline mirroring the paper's Section 5 exactly:
//
//   1. subset to one longitudinal series per household (multiple persons
//      per household may be surveyed; keep the first series seen);
//   2. binarize THINCPOVT2 (household income-to-poverty-threshold ratio):
//      ratio < 1 codes as 1 ("in poverty this month");
//   3. delete every household that has at least one missing value;
//   4. require a complete T-month series for the survey year.
//
// Input is a long-format record stream (household id, month, ratio), with
// NaN marking a missing ratio — the shape of the raw SIPP pu2021 extract
// after column selection. The output is the LongitudinalDataset the
// synthesizers consume, plus drop statistics so an analyst can audit the
// selection step.

#ifndef LONGDP_DATA_SIPP_PREPROCESS_H_
#define LONGDP_DATA_SIPP_PREPROCESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/longitudinal_dataset.h"
#include "util/status.h"

namespace longdp {
namespace data {

/// One raw observation: (household, person, month, income/poverty ratio).
struct SippRawRecord {
  int64_t household_id = 0;
  int64_t person_id = 0;
  int64_t month = 0;      ///< 1-based reference month
  double poverty_ratio = 0.0;  ///< THINCPOVT2; NaN = missing
};

struct SippPreprocessStats {
  int64_t raw_records = 0;
  int64_t households_seen = 0;
  int64_t dropped_extra_person_series = 0;  ///< records from non-first persons
  int64_t dropped_missing_value = 0;        ///< households with >=1 missing
  int64_t dropped_incomplete_series = 0;    ///< households missing months
  int64_t households_kept = 0;
};

struct SippPreprocessResult {
  LongitudinalDataset dataset;
  SippPreprocessStats stats;
  /// Kept household ids in dataset row order (for joins back to microdata).
  std::vector<int64_t> household_ids;
};

/// Runs the full pipeline for a survey year of `horizon` months. Records
/// may arrive in any order. Fails on months outside [1, horizon] or on
/// duplicate (household, person, month) observations with conflicting
/// values.
Result<SippPreprocessResult> PreprocessSipp(
    const std::vector<SippRawRecord>& records, int64_t horizon);

/// Parses a long-format CSV with a header naming at least the columns
/// SSUID (household), PNUM (person), MONTHCODE (month), THINCPOVT2
/// (ratio; empty field = missing), in any column order — the raw SIPP CSV
/// shape. Other columns are ignored.
Result<std::vector<SippRawRecord>> LoadSippLongCsv(const std::string& path);

}  // namespace data
}  // namespace longdp

#endif  // LONGDP_DATA_SIPP_PREPROCESS_H_
