#include "data/sipp_simulator.h"

namespace longdp {
namespace data {

Result<LongitudinalDataset> SimulateSipp(const SippOptions& options,
                                         util::Rng* rng) {
  if (options.chronic_share < 0.0 || options.chronic_share > 1.0) {
    return Status::InvalidArgument("chronic_share must be in [0,1]");
  }
  std::vector<MixtureComponent> components = {
      {options.chronic_share, options.chronic},
      {1.0 - options.chronic_share, options.transient},
  };
  return SubpopulationMixture(options.num_households, options.horizon,
                              components, rng);
}

Result<LongitudinalDataset> SimulateSippDefault(util::Rng* rng) {
  return SimulateSipp(SippOptions{}, rng);
}

Result<LongitudinalDataset> SimulateSipp(const SippOptions& options,
                                         uint64_t seed,
                                         util::ThreadPool* pool) {
  if (options.chronic_share < 0.0 || options.chronic_share > 1.0) {
    return Status::InvalidArgument("chronic_share must be in [0,1]");
  }
  std::vector<MixtureComponent> components = {
      {options.chronic_share, options.chronic},
      {1.0 - options.chronic_share, options.transient},
  };
  return SubpopulationMixture(options.num_households, options.horizon,
                              components, seed, pool);
}

Result<LongitudinalDataset> SimulateSippDefault(uint64_t seed,
                                                util::ThreadPool* pool) {
  return SimulateSipp(SippOptions{}, seed, pool);
}

}  // namespace data
}  // namespace longdp
