// SIPP-like survey simulator.
//
// The paper's Section 5 evaluates on a preprocessed extract of the U.S.
// Census Bureau's Survey of Income and Program Participation (SIPP) 2021:
// 23,374 households x 12 monthly binary poverty indicators (THINCPOVT2 < 1).
// That extract cannot be redistributed or downloaded here, so this module
// provides the documented substitution (see DESIGN.md section 3): a
// two-component mixture of per-household Markov poverty trajectories —
// "chronic" households that are almost always in poverty and "transient"
// households with short spells — calibrated so that the ground-truth
// statistics the paper's figures plot land where the paper's X marks do:
//
//   * monthly poverty rate               ~ 0.11
//   * quarterly "poverty >= 1 month"     ~ 0.15       (Fig 1, topmost series)
//   * quarterly "poverty >= 2 months"    ~ 0.10
//   * quarterly ">= 2 consecutive"       ~ 0.09
//   * quarterly "all three months"       ~ 0.07       (Fig 1, lowest series)
//   * ">= 3 months in poverty" by Dec    ~ 0.10       (Fig 2)
//
// Because both of the paper's algorithms have data-independent error
// distributions (the noise does not depend on the data; Theorem 3.2), the
// empirical error spread of every reproduced figure depends only on
// (n, T, k, rho), which we match exactly. The simulator only needs to place
// the ground-truth marks, which the calibration above does.
//
// Use data::LoadSippBitsCsv (sipp_csv.h) to run the benches on the real
// extract if you have it.

#ifndef LONGDP_DATA_SIPP_SIMULATOR_H_
#define LONGDP_DATA_SIPP_SIMULATOR_H_

#include "data/generators.h"
#include "data/longitudinal_dataset.h"
#include "util/rng.h"

namespace longdp {
namespace data {

struct SippOptions {
  /// Matches the paper's final sample: N = 23374 households, T = 12 months.
  int64_t num_households = 23374;
  int64_t horizon = 12;

  /// Share of chronically poor households.
  double chronic_share = 0.07;
  /// Chronic households: nearly always in poverty, rare exits.
  MarkovParams chronic{/*initial_rate=*/0.92, /*entry_prob=*/0.60,
                       /*exit_prob=*/0.04};
  /// Transient households: rare entries, quick exits.
  MarkovParams transient{/*initial_rate=*/0.035, /*entry_prob=*/0.02,
                         /*exit_prob=*/0.45};
};

/// Generates a SIPP-like dataset with the calibration above.
Result<LongitudinalDataset> SimulateSipp(const SippOptions& options,
                                         util::Rng* rng);

/// SimulateSipp with default options.
Result<LongitudinalDataset> SimulateSippDefault(util::Rng* rng);

/// Keyed overload: household i's round-t indicator draws from the
/// addressable substream (seed, kDataset, t, i), so generation shards
/// across `pool` (may be null) with a bit-identical dataset at any shard
/// or thread count — the path the million-household scaling benches use.
Result<LongitudinalDataset> SimulateSipp(const SippOptions& options,
                                         uint64_t seed,
                                         util::ThreadPool* pool = nullptr);

/// SimulateSipp keyed overload with default options.
Result<LongitudinalDataset> SimulateSippDefault(uint64_t seed,
                                                util::ThreadPool* pool =
                                                    nullptr);

}  // namespace data
}  // namespace longdp

#endif  // LONGDP_DATA_SIPP_SIMULATOR_H_
