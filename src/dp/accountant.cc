#include "dp/accountant.h"

#include <cmath>
#include <limits>

namespace longdp {
namespace dp {

ZCdpAccountant::ZCdpAccountant(double total_rho) : total_(total_rho) {}

Status ZCdpAccountant::Charge(double rho, std::string label) {
  if (rho < 0.0 || std::isnan(rho)) {
    return Status::InvalidArgument("cannot charge negative/NaN rho under '" +
                                   label + "'");
  }
  if (!std::isinf(total_)) {
    double allowance = total_ * (1.0 + kRelTolerance) +
                       std::numeric_limits<double>::epsilon();
    if (spent_ + rho > allowance) {
      return Status::ResourceExhausted(
          "zCDP budget exhausted: spent " + std::to_string(spent_) +
          " + charge " + std::to_string(rho) + " > total " +
          std::to_string(total_) + " (label: " + label + ")");
    }
  }
  spent_ += rho;
  ledger_.push_back(LedgerEntry{rho, std::move(label)});
  return Status::OK();
}

double ZCdpAccountant::remaining() const {
  if (std::isinf(total_)) return total_;
  double r = total_ - spent_;
  return r > 0.0 ? r : 0.0;
}

}  // namespace dp
}  // namespace longdp
