// zCDP privacy accounting with an itemized ledger.
//
// Every mechanism invocation in the synthesizers charges the accountant
// before sampling noise (the "budget gate before the data touch" idiom).
// Tests assert that a full run of either algorithm charges exactly the
// configured rho.

#ifndef LONGDP_DP_ACCOUNTANT_H_
#define LONGDP_DP_ACCOUNTANT_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace longdp {
namespace dp {

/// \brief Tracks cumulative rho-zCDP consumption against a budget.
///
/// zCDP composes additively (Theorem 2.1 of the paper), so the accountant is
/// a guarded running sum with a small relative tolerance to absorb the
/// floating-point error of splitting a budget T ways and re-summing.
class ZCdpAccountant {
 public:
  /// `total_rho` may be +infinity for the non-private test path.
  explicit ZCdpAccountant(double total_rho);

  /// Charges `rho` to the budget under a human-readable label. Returns
  /// ResourceExhausted (and does not charge) if this would exceed the budget
  /// beyond tolerance, InvalidArgument for negative rho.
  Status Charge(double rho, std::string label);

  /// Total rho consumed so far.
  double spent() const { return spent_; }

  /// Budget remaining (may be +infinity).
  double remaining() const;

  double total() const { return total_; }

  struct LedgerEntry {
    double rho;
    std::string label;
  };
  const std::vector<LedgerEntry>& ledger() const { return ledger_; }

  /// Relative slack allowed when comparing spent against total. Exists only
  /// to absorb double rounding when a budget is split into many pieces.
  static constexpr double kRelTolerance = 1e-9;

 private:
  double total_;
  double spent_ = 0.0;
  std::vector<LedgerEntry> ledger_;
};

}  // namespace dp
}  // namespace longdp

#endif  // LONGDP_DP_ACCOUNTANT_H_
