#include "dp/discrete_gaussian.h"

#include <cmath>

namespace longdp {
namespace dp {

bool SampleBernoulliExpNeg(double gamma, util::Rng* rng) {
  if (gamma <= 0.0) return true;
  if (gamma <= 1.0) {
    // CKS'20 Algorithm 1: K <- 1; while Bernoulli(gamma/K) succeeds, K++.
    // The loop exits at K with probability gamma^{K-1}/(K-1)! - gamma^K/K!,
    // and Pr[K odd at exit] = exp(-gamma).
    uint64_t k = 1;
    for (;;) {
      if (!rng->Bernoulli(gamma / static_cast<double>(k))) break;
      ++k;
    }
    return (k % 2) == 1;
  }
  // gamma > 1: exp(-gamma) = exp(-1)^floor(gamma) * exp(-(gamma - floor)).
  double whole = std::floor(gamma);
  for (double i = 0; i < whole; ++i) {
    if (!SampleBernoulliExpNeg(1.0, rng)) return false;
  }
  return SampleBernoulliExpNeg(gamma - whole, rng);
}

int64_t SampleDiscreteLaplace(double s, util::Rng* rng) {
  // !(s > 0.0) instead of s <= 0.0: also catches NaN. Identical behavior in
  // debug and release — see the header contract.
  if (!(s > 0.0)) return 0;
  const uint64_t t = static_cast<uint64_t>(std::floor(s)) + 1;
  for (;;) {
    // Offset U in {0,...,t-1}, accepted with probability exp(-U/s).
    uint64_t u = rng->UniformInt(t);
    if (!SampleBernoulliExpNeg(static_cast<double>(u) / s, rng)) continue;
    // Geometric tail: V counts consecutive successes of Bernoulli(exp(-t/s)).
    uint64_t v = 0;
    while (SampleBernoulliExpNeg(static_cast<double>(t) / s, rng)) ++v;
    uint64_t magnitude = u + t * v;
    bool negative = rng->Coin();
    if (negative && magnitude == 0) continue;  // avoid double-counting zero
    return negative ? -static_cast<int64_t>(magnitude)
                    : static_cast<int64_t>(magnitude);
  }
}

int64_t SampleDiscreteGaussian(double sigma2, util::Rng* rng) {
  // !(sigma2 > 0.0) instead of sigma2 <= 0.0: also catches NaN. Identical
  // behavior in debug and release — see the header contract.
  if (!(sigma2 > 0.0)) return 0;
  const double sigma = std::sqrt(sigma2);
  const double t = std::floor(sigma) + 1.0;
  for (;;) {
    int64_t y = SampleDiscreteLaplace(t, rng);
    double ay = std::fabs(static_cast<double>(y));
    double diff = ay - sigma2 / t;
    double gamma = diff * diff / (2.0 * sigma2);
    if (SampleBernoulliExpNeg(gamma, rng)) return y;
  }
}

double DiscreteGaussianPmf(int64_t x, double sigma2) {
  if (sigma2 <= 0.0) return x == 0 ? 1.0 : 0.0;
  // Normalizer: sum over y of exp(-y^2 / (2 sigma2)); terms decay fast, so
  // truncating at 20 standard deviations loses < 1e-80 of the mass.
  const int64_t radius =
      static_cast<int64_t>(std::ceil(20.0 * std::sqrt(sigma2))) + 1;
  double z = 0.0;
  for (int64_t y = -radius; y <= radius; ++y) {
    z += std::exp(-static_cast<double>(y) * static_cast<double>(y) /
                  (2.0 * sigma2));
  }
  double num = std::exp(-static_cast<double>(x) * static_cast<double>(x) /
                        (2.0 * sigma2));
  return num / z;
}

double DiscreteGaussianTailBound(double lambda, double sigma2) {
  if (sigma2 <= 0.0) return lambda > 0 ? 0.0 : 1.0;
  if (lambda <= 0.0) return 1.0;
  return std::exp(-lambda * lambda / (2.0 * sigma2));
}

}  // namespace dp
}  // namespace longdp
