// Samplers for the discrete Gaussian N_Z(0, sigma^2) and its building
// blocks, following Canonne, Kamath & Steinke, "The Discrete Gaussian for
// Differential Privacy" (NeurIPS 2020).
//
// The sampling chain is
//
//   Bernoulli(exp(-gamma))  ->  discrete Laplace(scale s)  ->  rejection
//   -> discrete Gaussian(sigma^2),
//
// with no evaluation of transcendental CDFs and no inverse-transform
// sampling, so the output distribution's tails are faithful for any sigma.
// Parameters are doubles (per-call probabilities are formed as exact ratios
// of small quantities); a production deployment concerned about
// floating-point side channels would swap in rational arithmetic, which this
// API deliberately keeps behind one function boundary.
//
// All samplers take an explicit util::Rng for reproducibility.

#ifndef LONGDP_DP_DISCRETE_GAUSSIAN_H_
#define LONGDP_DP_DISCRETE_GAUSSIAN_H_

#include <cstdint>

#include "util/rng.h"
#include "util/status.h"

namespace longdp {
namespace dp {

/// Samples Bernoulli(exp(-gamma)) exactly (up to double rounding) for any
/// gamma >= 0, via the alternating-series acceptance loop of CKS'20 Alg. 1.
/// gamma < 0 is treated as 0 (always returns true).
bool SampleBernoulliExpNeg(double gamma, util::Rng* rng);

/// Samples the discrete Laplace distribution with scale s > 0:
///   Pr[X = x] proportional to exp(-|x| / s),  x in Z.
/// CKS'20 Alg. 2 structure: uniform offset + geometric tail + sign, with the
/// double-counted zero rejected.
///
/// Degenerate scales are guarded in every build mode: any s that is not
/// strictly positive (zero, negative, or NaN) returns 0 deterministically
/// without consuming a draw. Before this guard a negative s underflowed the
/// offset bound computation (undefined negative-double-to-uint64 cast).
int64_t SampleDiscreteLaplace(double s, util::Rng* rng);

/// Samples the discrete Gaussian N_Z(0, sigma2):
///   Pr[X = x] proportional to exp(-x^2 / (2 sigma2)),  x in Z.
/// Rejection from discrete Laplace (CKS'20 Alg. 3).
///
/// Degenerate variances are guarded in every build mode (not just debug):
/// any sigma2 that is not strictly positive (zero, negative, or NaN)
/// returns 0 deterministically without consuming a draw. sigma2 == 0 is the
/// documented zero-noise path; negative/NaN indicate a caller bug upstream
/// (e.g. a corrupted budget) and degrade to the same harmless zero rather
/// than debug-abort/release-UB. Pinned by dp_edge_case regression tests.
int64_t SampleDiscreteGaussian(double sigma2, util::Rng* rng);

/// Exact probability mass Pr[X = x] for X ~ N_Z(0, sigma2). Computed by
/// direct series normalization; used only by tests (goodness-of-fit).
double DiscreteGaussianPmf(int64_t x, double sigma2);

/// Upper tail bound Pr[X >= lambda] <= exp(-lambda^2 / (2 sigma2)) for
/// X ~ N_Z(0, sigma2) (subgaussian; CKS'20 Prop. 25 gives this bound).
double DiscreteGaussianTailBound(double lambda, double sigma2);

}  // namespace dp
}  // namespace longdp

#endif  // LONGDP_DP_DISCRETE_GAUSSIAN_H_
