#include "dp/mechanisms.h"

#include <cmath>
#include <limits>

#include "util/thread_pool.h"

namespace longdp {
namespace dp {

Result<double> GaussianSigma2ForZCdp(double rho, double sensitivity) {
  if (!(rho > 0.0)) {
    return Status::InvalidArgument("privacy parameter rho must be > 0, got " +
                                   std::to_string(rho));
  }
  if (sensitivity < 0.0) {
    return Status::InvalidArgument("sensitivity must be >= 0");
  }
  if (std::isinf(rho) || sensitivity == 0.0) return 0.0;
  return sensitivity * sensitivity / (2.0 * rho);
}

double ZCdpCostOfGaussian(double sigma2, double sensitivity) {
  if (sigma2 <= 0.0) {
    return sensitivity == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return sensitivity * sensitivity / (2.0 * sigma2);
}

double ZCdpToApproxDpEpsilon(double rho, double delta) {
  if (rho <= 0.0) return 0.0;
  if (delta <= 0.0 || delta >= 1.0) return std::numeric_limits<double>::infinity();
  return rho + 2.0 * std::sqrt(rho * std::log(1.0 / delta));
}

std::vector<int64_t> NoisyHistogramMechanism::Release(
    const std::vector<int64_t>& counts, int64_t offset,
    util::Rng* rng) const {
  std::vector<int64_t> out(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    out[i] = counts[i] + offset + SampleDiscreteGaussian(sigma2_, rng);
  }
  return out;
}

std::vector<int64_t> NoisyHistogramMechanism::Release(
    const std::vector<int64_t>& counts, int64_t offset,
    const util::SubstreamRng& stream, util::ThreadPool* pool) const {
  std::vector<int64_t> out(counts.size());
  // Bulk per-leaf noise (bin i's draw comes from stream.Leaf(i), exactly as
  // the old per-bin SampleDiscreteGaussian call did), then the pad/count
  // add runs as a straight-line pass.
  sampler_.FillLeaves(stream, counts.size(), out.data(), pool);
  for (size_t i = 0; i < counts.size(); ++i) {
    out[i] += counts[i] + offset;
  }
  return out;
}

}  // namespace dp
}  // namespace longdp
