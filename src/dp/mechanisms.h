// Basic zCDP mechanisms built on the discrete Gaussian sampler: noisy
// counts, noisy histograms, and the sigma^2 calibration rules the paper
// uses (Section 2.2 and Section 3.1).

#ifndef LONGDP_DP_MECHANISMS_H_
#define LONGDP_DP_MECHANISMS_H_

#include <cstdint>
#include <vector>

#include "dp/discrete_gaussian.h"
#include "dp/noise_sampler.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/substream.h"

namespace longdp {
namespace util {
class ThreadPool;
}  // namespace util

namespace dp {

/// Variance of the discrete Gaussian mechanism achieving rho-zCDP for a
/// query with L2 sensitivity `sensitivity`:
///     sigma^2 = sensitivity^2 / (2 rho).
/// rho == +infinity (or <= 0 sensitivity) yields 0 (the zero-noise test
/// path). Returns InvalidArgument for rho <= 0.
Result<double> GaussianSigma2ForZCdp(double rho, double sensitivity);

/// zCDP cost of adding discrete Gaussian noise with variance sigma2 to a
/// sensitivity-`sensitivity` query: rho = sensitivity^2 / (2 sigma2).
/// sigma2 == 0 costs infinity.
double ZCdpCostOfGaussian(double sigma2, double sensitivity);

/// Converts a rho-zCDP guarantee into an (epsilon, delta)-DP guarantee via
/// epsilon = rho + 2 sqrt(rho log(1/delta))  (Bun-Steinke'16 Prop. 1.3).
double ZCdpToApproxDpEpsilon(double rho, double delta);

/// \brief Adds discrete Gaussian noise to a single integer count.
///
/// The noise variance is fixed at construction; the mechanism is stateless
/// across calls (fresh noise each invocation).
class NoisyCountMechanism {
 public:
  /// sigma2 >= 0; sigma2 == 0 is the exact (non-private) test path.
  explicit NoisyCountMechanism(double sigma2) : sigma2_(sigma2) {}

  int64_t Release(int64_t true_count, util::Rng* rng) const {
    return true_count + SampleDiscreteGaussian(sigma2_, rng);
  }

  double sigma2() const { return sigma2_; }

 private:
  double sigma2_;
};

/// \brief Adds independent discrete Gaussian noise to every bin of a
/// histogram (the paper's stage-1 primitive for Algorithm 1).
///
/// A single individual changes at most one bin of the histogram per release
/// by +/-1... in the longitudinal setting of Algorithm 1 an individual
/// changes one bin at each of the T-k+1 update steps, which is accounted by
/// the caller via composition (each release here is charged
/// rho_step = 1/(2 sigma2)).
class NoisyHistogramMechanism {
 public:
  explicit NoisyHistogramMechanism(double sigma2)
      : sigma2_(sigma2), sampler_(NoiseSampler::Gaussian(sigma2)) {}

  /// Returns counts[i] + N_Z(0, sigma2) + offset for every bin. `offset`
  /// carries the paper's n_pad padding so padded and noised counts are
  /// produced in one pass. Draws sequentially from `rng` in bin order.
  std::vector<int64_t> Release(const std::vector<int64_t>& counts,
                               int64_t offset, util::Rng* rng) const;

  /// Keyed overload: bin i draws from the addressable substream
  /// stream.Leaf(i), so the per-bin noise shards across `pool` (may be
  /// null) and the released histogram is bit-identical at any shard or
  /// thread count. Pass a fresh per-release stream (e.g. root.Derive(t)).
  /// Noise comes from the batched NoiseSampler — same draws as the
  /// one-shot sampler, with per-draw setup and word generation amortized.
  std::vector<int64_t> Release(const std::vector<int64_t>& counts,
                               int64_t offset,
                               const util::SubstreamRng& stream,
                               util::ThreadPool* pool = nullptr) const;

  double sigma2() const { return sigma2_; }

 private:
  double sigma2_;
  NoiseSampler sampler_;
};

}  // namespace dp
}  // namespace longdp

#endif  // LONGDP_DP_MECHANISMS_H_
