#include "dp/noise_sampler.h"

#include <algorithm>
#include <cmath>

#include "util/simd/simd.h"

namespace longdp {
namespace dp {

namespace {

// Offsets beyond this are computed inline (identical division) instead of
// from the table; bounds the constructor cost for enormous scales.
constexpr uint64_t kMaxGammaTable = 4096;

// Rng::UniformDouble's exact mapping of a raw word to [0, 1).
inline double ToUnitDouble(uint64_t word) {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

}  // namespace

/// Chunked reader of the substream at (key, cursor): words are produced
/// kChunk at a time by the SIMD bulk block function and consumed one at a
/// time by the accept/reject logic. Overshooting the chain's actual
/// consumption is harmless — substream words are addressed, not destroyed —
/// and the owner advances the real cursor by consumed(), not by what was
/// prefetched.
struct NoiseSampler::WordBuffer {
  static constexpr size_t kChunk = 32;

  WordBuffer(uint64_t key, uint64_t cursor)
      : key_(key), next_cursor_(cursor) {}

  uint64_t Next() {
    if (pos_ == len_) {
      util::simd::FillStreamWords(key_, next_cursor_, buf_, kChunk);
      next_cursor_ += kChunk;
      pos_ = 0;
      len_ = kChunk;
    }
    ++consumed_;
    return buf_[pos_++];
  }

  uint64_t consumed() const { return consumed_; }

 private:
  uint64_t key_;
  uint64_t next_cursor_;
  uint64_t consumed_ = 0;
  size_t pos_ = 0;
  size_t len_ = 0;
  uint64_t buf_[kChunk];
};

NoiseSampler::NoiseSampler(Kind kind, double param)
    : kind_(kind), param_(param), degenerate_(!(param > 0.0)) {
  if (degenerate_) return;
  if (kind_ == Kind::kGaussian) {
    // CKS'20 Alg. 3: reject from discrete Laplace(t), t = floor(sigma) + 1.
    const double sigma = std::sqrt(param_);
    s_ = std::floor(sigma) + 1.0;
    sigma2_over_t_ = param_ / s_;
    two_sigma2_ = 2.0 * param_;
  } else {
    s_ = param_;
  }
  t_ = static_cast<uint64_t>(std::floor(s_)) + 1;
  threshold_ = (0 - t_) % t_;
  // The geometric-tail gamma t/s > 1 (mathematically; huge s can round the
  // ratio to exactly 1.0, in which case the one-shot chain takes its <= 1
  // branch — mirror that split so the word stream matches).
  const double geo_gamma = static_cast<double>(t_) / s_;
  if (geo_gamma <= 1.0) {
    geo_whole_ = 0;
    geo_frac_ = geo_gamma;
  } else {
    const double whole = std::floor(geo_gamma);
    geo_whole_ = static_cast<int64_t>(whole);
    geo_frac_ = geo_gamma - whole;
  }
  const uint64_t table = std::min<uint64_t>(t_, kMaxGammaTable);
  gamma_u_.resize(static_cast<size_t>(table));
  for (uint64_t u = 0; u < table; ++u) {
    // The same division the one-shot chain performs per attempt — cached,
    // not rewritten (no reciprocal multiply), so results are bit-equal.
    gamma_u_[static_cast<size_t>(u)] =
        static_cast<double>(u) / s_;
  }
}

// Mirrors SampleBernoulliExpNeg's gamma <= 1 branch (the k-loop of CKS'20
// Alg. 1), including Rng::Bernoulli's no-word shortcuts: p >= 1 succeeds
// without consuming a word (reachable at k == 1 with gamma == 1.0).
bool NoiseSampler::ExpNegLE1(double gamma, WordBuffer& wb) const {
  if (gamma <= 0.0) return true;
  uint64_t k = 1;
  for (;;) {
    const double p = gamma / static_cast<double>(k);
    if (p < 1.0) {
      if (!(ToUnitDouble(wb.Next()) < p)) break;
    }
    ++k;
  }
  return (k % 2) == 1;
}

// Mirrors SampleBernoulliExpNeg for arbitrary gamma >= 0: exp(-gamma) =
// exp(-1)^floor(gamma) * exp(-(gamma - floor(gamma))).
bool NoiseSampler::ExpNegGeneral(double gamma, WordBuffer& wb) const {
  if (gamma <= 0.0) return true;
  if (gamma <= 1.0) return ExpNegLE1(gamma, wb);
  const double whole = std::floor(gamma);
  for (double i = 0; i < whole; ++i) {
    if (!ExpNegLE1(1.0, wb)) return false;
  }
  return ExpNegLE1(gamma - whole, wb);
}

// Bernoulli(exp(-t/s)) with the whole/fraction split precomputed.
bool NoiseSampler::ExpNegGeo(WordBuffer& wb) const {
  for (int64_t i = 0; i < geo_whole_; ++i) {
    if (!ExpNegLE1(1.0, wb)) return false;
  }
  return ExpNegLE1(geo_frac_, wb);
}

int64_t NoiseSampler::DrawLaplace(WordBuffer& wb) const {
  for (;;) {
    // Offset U ~ Uniform{0..t-1}: Rng::UniformInt's exact rejection loop.
    uint64_t u;
    for (;;) {
      const uint64_t r = wb.Next();
      if (r >= threshold_) {
        u = r % t_;
        break;
      }
    }
    const double gamma_u = u < gamma_u_.size()
                               ? gamma_u_[static_cast<size_t>(u)]
                               : static_cast<double>(u) / s_;
    // u <= floor(s), so gamma_u <= 1 always: the LE1 branch suffices.
    if (!ExpNegLE1(gamma_u, wb)) continue;
    uint64_t v = 0;
    while (ExpNegGeo(wb)) ++v;
    const uint64_t magnitude = u + t_ * v;
    const bool negative = (wb.Next() >> 63) != 0;  // Rng::Coin
    if (negative && magnitude == 0) continue;  // avoid double-counting zero
    return negative ? -static_cast<int64_t>(magnitude)
                    : static_cast<int64_t>(magnitude);
  }
}

int64_t NoiseSampler::DrawGaussian(WordBuffer& wb) const {
  for (;;) {
    const int64_t y = DrawLaplace(wb);
    const double ay = std::fabs(static_cast<double>(y));
    const double diff = ay - sigma2_over_t_;
    const double gamma = diff * diff / two_sigma2_;
    if (ExpNegGeneral(gamma, wb)) return y;
  }
}

int64_t NoiseSampler::Draw(util::SubstreamRng* stream) const {
  if (degenerate_) return 0;
  WordBuffer wb(stream->key(), stream->cursor());
  const int64_t value =
      kind_ == Kind::kGaussian ? DrawGaussian(wb) : DrawLaplace(wb);
  stream->set_cursor(stream->cursor() + wb.consumed());
  return value;
}

void NoiseSampler::FillLeaves(const util::SubstreamRng& parent, size_t count,
                              int64_t* out, util::ThreadPool* pool) const {
  if (degenerate_) {
    std::fill(out, out + count, int64_t{0});
    return;
  }
  util::ShardedFor(pool, static_cast<int64_t>(count),
                   [&](int /*shard*/, int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i) {
                       WordBuffer wb(
                           parent.Leaf(static_cast<uint64_t>(i)).key(), 0);
                       out[i] = kind_ == Kind::kGaussian ? DrawGaussian(wb)
                                                         : DrawLaplace(wb);
                     }
                   });
}

}  // namespace dp
}  // namespace longdp
