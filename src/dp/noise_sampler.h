// Batched discrete-noise sampler: the production engine for every noise
// draw in the library.
//
// dp::NoiseSampler runs exactly the CKS'20 sampling chain of
// dp/discrete_gaussian.h — Bernoulli(exp(-gamma)) -> discrete Laplace ->
// rejection -> discrete Gaussian — but amortizes everything that the
// one-shot functions recompute per draw:
//
//   * all scale-derived constants (sqrt/floor of sigma, the uniform-offset
//     bound and its Lemire rejection threshold, the geometric-tail gamma's
//     whole/fraction split, a table of the per-offset gammas u/s) are
//     computed once at construction;
//   * raw words are generated in chunks through util::simd::FillStreamWords
//     (the BatchSampler chunked-word discipline) instead of one virtual
//     Next() per word, then handed to the accept/reject logic from a local
//     buffer.
//
// Stream-compatibility contract (pinned by dp_noise_sampler_test): a Draw()
// from a SubstreamRng at cursor c consumes exactly the words
// word(key, c+1), word(key, c+2), ... that SampleDiscreteGaussian /
// SampleDiscreteLaplace would consume, applies the identical arithmetic
// (every division is performed with the same operands — precomputed values
// are cached results of the same operation, never reciprocal-multiply
// rewrites), and leaves the cursor advanced by the same count. The sampler
// is therefore a drop-in replacement: releases are bit-identical to the
// scalar path, on every backend, with no golden re-record.
//
// Degenerate scales follow the hardened dp:: contract: a non-positive (or
// NaN) sigma2/s yields a sampler whose every draw is 0 and consumes no
// words, in every build mode.

#ifndef LONGDP_DP_NOISE_SAMPLER_H_
#define LONGDP_DP_NOISE_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/substream.h"
#include "util/thread_pool.h"

namespace longdp {
namespace dp {

class NoiseSampler {
 public:
  enum class Kind {
    kGaussian,  ///< discrete Gaussian N_Z(0, sigma2); param is sigma2
    kLaplace,   ///< discrete Laplace with scale s; param is s
  };

  NoiseSampler(Kind kind, double param);

  static NoiseSampler Gaussian(double sigma2) {
    return NoiseSampler(Kind::kGaussian, sigma2);
  }
  static NoiseSampler Laplace(double s) {
    return NoiseSampler(Kind::kLaplace, s);
  }

  /// One draw from `stream`, word-for-word identical to the matching
  /// one-shot dp:: function: same words consumed from the same cursor
  /// positions, same value, cursor advanced by the same count.
  int64_t Draw(util::SubstreamRng* stream) const;

  /// Bulk fill addressed by leaf index: out[i] = the draw the one-shot
  /// function would produce from parent.Leaf(i) at cursor 0, for i in
  /// [0, count). Sharded over `pool` when given — each leaf's draw is a
  /// pure function of its key, so the partition cannot change any value.
  void FillLeaves(const util::SubstreamRng& parent, size_t count,
                  int64_t* out, util::ThreadPool* pool = nullptr) const;

  Kind kind() const { return kind_; }
  /// The construction parameter: sigma2 for kGaussian, s for kLaplace.
  double param() const { return param_; }
  /// True when the parameter was degenerate (<= 0 or NaN): draws are 0.
  bool degenerate() const { return degenerate_; }

 private:
  struct WordBuffer;  // chunked stream reader, defined in noise_sampler.cc

  int64_t DrawGaussian(WordBuffer& wb) const;
  int64_t DrawLaplace(WordBuffer& wb) const;
  bool ExpNegLE1(double gamma, WordBuffer& wb) const;
  bool ExpNegGeneral(double gamma, WordBuffer& wb) const;
  bool ExpNegGeo(WordBuffer& wb) const;

  Kind kind_;
  double param_;
  bool degenerate_;

  // Constants of the discrete-Laplace stage (for kGaussian these describe
  // the inner Laplace(t) of CKS'20 Alg. 3). Every cached value is the
  // result of the exact operation the one-shot chain performs per draw.
  double s_ = 0.0;           // Laplace scale used by the chain
  uint64_t t_ = 1;           // floor(s_) + 1: uniform-offset bound
  uint64_t threshold_ = 0;   // (-t_) % t_: UniformInt rejection threshold
  int64_t geo_whole_ = 0;    // floor(t_ / s_) when t_/s_ > 1, else 0
  double geo_frac_ = 0.0;    // the remaining exponent of the tail gamma
  std::vector<double> gamma_u_;  // gamma_u_[u] = u / s_ (capped table)

  // Gaussian-only rejection constants.
  double sigma2_over_t_ = 0.0;  // sigma2 / t (t = floor(sigma) + 1.0)
  double two_sigma2_ = 0.0;     // 2.0 * sigma2
};

}  // namespace dp
}  // namespace longdp

#endif  // LONGDP_DP_NOISE_SAMPLER_H_
