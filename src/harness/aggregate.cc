#include "harness/aggregate.h"

#include <cmath>

namespace longdp {
namespace harness {

QuantileSummary Summarize(const std::vector<double>& samples) {
  QuantileSummary s;
  s.count = static_cast<int64_t>(samples.size());
  if (samples.empty()) return s;
  util::MomentAccumulator acc;
  for (double v : samples) acc.Add(v);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = util::Median(samples);
  s.q025 = util::Quantile(samples, 0.025);
  s.q975 = util::Quantile(samples, 0.975);
  return s;
}

QuantileSummary SummarizeAbsError(const std::vector<double>& samples,
                                  double truth) {
  std::vector<double> errors;
  errors.reserve(samples.size());
  for (double v : samples) errors.push_back(std::fabs(v - truth));
  return Summarize(errors);
}

}  // namespace harness
}  // namespace longdp
