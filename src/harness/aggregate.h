// Aggregation of per-repetition experiment samples into the summary
// statistics the paper's figures display: median with 2.5/97.5 percentile
// envelopes (Figures 3-4) and empirical densities around ground truth
// (Figures 1-2, 5-8, summarized here by mean/quantiles).

#ifndef LONGDP_HARNESS_AGGREGATE_H_
#define LONGDP_HARNESS_AGGREGATE_H_

#include <string>
#include <vector>

#include "util/mathutil.h"

namespace longdp {
namespace harness {

struct QuantileSummary {
  int64_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double q025 = 0.0;   ///< 2.5th percentile
  double q975 = 0.0;   ///< 97.5th percentile
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};

/// Summarizes a vector of repetition samples.
QuantileSummary Summarize(const std::vector<double>& samples);

/// Summarizes |sample - truth| across repetitions (error-curve figures).
QuantileSummary SummarizeAbsError(const std::vector<double>& samples,
                                  double truth);

}  // namespace harness
}  // namespace longdp

#endif  // LONGDP_HARNESS_AGGREGATE_H_
