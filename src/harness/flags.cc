#include "harness/flags.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iostream>

namespace longdp {
namespace harness {

namespace {

// Parses `s` as a full base-10 integer token. Returns false (leaving *out
// untouched) on empty input, trailing garbage, or overflow — strtoll alone
// would silently return a prefix parse ("1o00" -> 1) or 0.
bool ParseFullInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseFullDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  // ERANGE covers both overflow and underflow; a subnormal result (e.g.
  // --tol=1e-310) is a valid double, so only reject overflow.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) return false;
  *out = v;
  return true;
}

std::string Basename(const std::string& path) {
  auto slash = path.find_last_of("/\\");
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  if (argc > 0) flags.program_name_ = Basename(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string raw = argv[i];
    if (raw.rfind("--", 0) != 0) {
      flags.positional_.push_back(raw);
      continue;
    }
    std::string arg = raw.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[++i];
    } else {
      // Boolean flag. Move-assign a temporary: GCC 12 at -O3 mis-analyzes
      // operator=(const char*) here and emits a bogus fatal -Wrestrict
      // (GCC bug 105329).
      flags.values_[arg] = std::string("1");
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  int64_t v = 0;
  if (!ParseFullInt(it->second, &v)) {
    std::cerr << "warning: malformed integer for --" << key << "='"
              << it->second << "'; using default " << def << "\n";
    return def;
  }
  return v;
}

double Flags::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  double v = 0.0;
  if (!ParseFullDouble(it->second, &v)) {
    std::cerr << "warning: malformed double for --" << key << "='"
              << it->second << "'; using default " << def << "\n";
    return def;
  }
  return v;
}

int64_t Flags::Reps(int64_t def) const {
  if (Has("reps")) {
    int64_t v = GetInt("reps", def);
    if (v <= 0) {
      std::cerr << "warning: --reps must be positive, got " << v
                << "; using default " << def << "\n";
      return def;
    }
    return v;
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup, before any
  // worker thread exists; nothing in this process calls setenv.
  const char* env = std::getenv("LONGDP_REPS");
  if (env != nullptr) {
    int64_t v = 0;
    if (ParseFullInt(env, &v) && v > 0) return v;
    std::cerr << "warning: ignoring invalid LONGDP_REPS='" << env << "'\n";
  }
  return def;
}

int64_t Flags::Threads(int64_t def) const {
  if (Has("threads")) {
    int64_t v = GetInt("threads", def);
    if (v <= 0) {
      std::cerr << "warning: --threads must be positive, got " << v
                << "; using default " << def << "\n";
      return def;
    }
    return v;
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup, before any
  // worker thread exists; nothing in this process calls setenv.
  const char* env = std::getenv("LONGDP_THREADS");
  if (env != nullptr) {
    int64_t v = 0;
    if (ParseFullInt(env, &v) && v > 0) return v;
    std::cerr << "warning: ignoring invalid LONGDP_THREADS='" << env
              << "'\n";
  }
  return def;
}

}  // namespace harness
}  // namespace longdp
