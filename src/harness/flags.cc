#include "harness/flags.h"

#include <cstdlib>

namespace longdp {
namespace harness {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string raw = argv[i];
    if (raw.rfind("--", 0) != 0) continue;
    std::string arg = raw.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[++i];
    } else {
      // Boolean flag. Move-assign a temporary: GCC 12 at -O3 mis-analyzes
      // operator=(const char*) here and emits a bogus fatal -Wrestrict
      // (GCC bug 105329).
      flags.values_[arg] = std::string("1");
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

int64_t Flags::Reps(int64_t def) const {
  if (Has("reps")) return GetInt("reps", def);
  const char* env = std::getenv("LONGDP_REPS");
  if (env != nullptr) {
    int64_t v = std::strtoll(env, nullptr, 10);
    if (v > 0) return v;
  }
  return def;
}

}  // namespace harness
}  // namespace longdp
