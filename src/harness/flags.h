// Minimal --key=value flag parsing for bench/example binaries. Environment
// variable LONGDP_REPS, when set, overrides the default repetition count of
// every bench (handy for quick smoke runs: LONGDP_REPS=10 ./fig1_...).
//
// Malformed numeric values (--reps=1o00) and non-positive repetition counts
// (--reps=-5) are rejected with a stderr warning and fall back to the
// default instead of silently parsing to garbage.

#ifndef LONGDP_HARNESS_FLAGS_H_
#define LONGDP_HARNESS_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace longdp {
namespace harness {

class Flags {
 public:
  /// Parses argv entries of the form --key=value (or --key value). A --key
  /// followed by another --flag (or nothing) is a boolean flag with value
  /// "1". Arguments not starting with "--" are collected as positionals.
  static Flags Parse(int argc, char** argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& def) const;

  /// Returns the parsed integer value, or `def` (with a stderr warning) if
  /// the value is not a fully-formed base-10 integer or is out of range.
  int64_t GetInt(const std::string& key, int64_t def) const;

  /// Returns the parsed double value, or `def` (with a stderr warning) if
  /// the value is not a fully-formed floating-point literal.
  double GetDouble(const std::string& key, double def) const;

  /// Default repetition count: --reps flag, else LONGDP_REPS env var, else
  /// `def`. Malformed or non-positive counts are rejected with a stderr
  /// warning (a negative count would otherwise flow into vector sizes as a
  /// ~2^64 allocation).
  int64_t Reps(int64_t def) const;

  /// Thread count for the sharded observe phases: --threads flag, else
  /// LONGDP_THREADS env var, else `def`. 1 means serial. Malformed or
  /// non-positive counts warn on stderr and fall back to `def`. The
  /// released statistics are thread-count invariant by design; --threads
  /// only moves wall-clock.
  int64_t Threads(int64_t def) const;

  /// Basename of argv[0] ("" if argv was empty). Names the default JSON
  /// report path (BENCH_<program_name>.json) and the report itself.
  const std::string& program_name() const { return program_name_; }

  /// Non-flag arguments, in order (e.g. the two report files of bench_diff).
  const std::vector<std::string>& positional() const { return positional_; }

  /// All parsed --key=value pairs, for recording into bench reports.
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace harness
}  // namespace longdp

#endif  // LONGDP_HARNESS_FLAGS_H_
