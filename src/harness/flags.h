// Minimal --key=value flag parsing for bench/example binaries. Environment
// variable LONGDP_REPS, when set, overrides the default repetition count of
// every bench (handy for quick smoke runs: LONGDP_REPS=10 ./fig1_...).

#ifndef LONGDP_HARNESS_FLAGS_H_
#define LONGDP_HARNESS_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace longdp {
namespace harness {

class Flags {
 public:
  /// Parses argv entries of the form --key=value (or --key value). Unknown
  /// positional arguments are ignored.
  static Flags Parse(int argc, char** argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;

  /// Default repetition count: --reps flag, else LONGDP_REPS env var, else
  /// `def`.
  int64_t Reps(int64_t def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace harness
}  // namespace longdp

#endif  // LONGDP_HARNESS_FLAGS_H_
