#include "harness/report.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/build_info.h"
#include "util/json.h"

namespace longdp {
namespace harness {

namespace {
constexpr const char* kSchemaName = "longdp-bench-report";
constexpr int64_t kSchemaVersion = 1;
}  // namespace

BenchReport::Row& BenchReport::Row::Summary(const QuantileSummary& s) {
  Value("mean", s.mean);
  Value("median", s.median);
  Value("q2.5", s.q025);
  Value("q97.5", s.q975);
  Value("count", static_cast<double>(s.count));
  return *this;
}

void BenchReport::SetParam(const std::string& key, const std::string& value) {
  for (auto& p : params_) {
    if (p.key == key) {
      p.text = value;
      p.quoted = true;
      return;
    }
  }
  params_.push_back(Param{key, value, /*quoted=*/true});
}

void BenchReport::SetParam(const std::string& key, int64_t value) {
  for (auto& p : params_) {
    if (p.key == key) {
      p.text = std::to_string(value);
      p.quoted = false;
      return;
    }
  }
  params_.push_back(Param{key, std::to_string(value), /*quoted=*/false});
}

void BenchReport::SetParam(const std::string& key, double value) {
  std::string text = util::FormatDoubleRoundTrip(value);
  for (auto& p : params_) {
    if (p.key == key) {
      p.text = text;
      p.quoted = false;
      return;
    }
  }
  params_.push_back(Param{key, std::move(text), /*quoted=*/false});
}

BenchReport::Series& BenchReport::AddSeries(const std::string& name) {
  for (auto& s : series_) {
    if (s.name == name) return s;
  }
  series_.push_back(Series{name, {}});
  return series_.back();
}

const BenchReport::Series* BenchReport::FindSeries(
    const std::string& name) const {
  for (const auto& s : series_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void BenchReport::RecordPhaseSeconds(const std::string& name,
                                     double seconds) {
  phases_.push_back(Phase{name, seconds});
}

void BenchReport::PhaseTimer::Stop() {
  if (report_ == nullptr) return;
  auto elapsed = std::chrono::steady_clock::now() - start_;
  report_->RecordPhaseSeconds(
      name_,
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count());
  report_ = nullptr;
}

std::string BenchReport::ToJsonString() const {
  std::ostringstream out;
  util::JsonWriter w(&out);
  w.BeginObject();
  w.KeyValue("schema", kSchemaName);
  w.KeyValue("schema_version", kSchemaVersion);
  w.KeyValue("bench", bench_name_);
  w.KeyValue("description", description_);

  w.Key("build");
  w.BeginObject();
  w.KeyValue("git_describe", LONGDP_BUILD_GIT_DESCRIBE);
  w.KeyValue("compiler", LONGDP_BUILD_COMPILER);
  w.KeyValue("build_type", LONGDP_BUILD_TYPE);
  w.KeyValue("version", LONGDP_BUILD_VERSION);
  w.EndObject();

  w.Key("flags");
  w.BeginObject();
  for (const auto& [k, v] : flags_) w.KeyValue(k, v);
  w.EndObject();

  w.Key("params");
  w.BeginObject();
  for (const auto& p : params_) {
    w.Key(p.key);
    if (p.quoted) {
      w.Value(p.text);
    } else {
      // Already serialized with round-trip formatting; emit verbatim as a
      // JSON number by re-parsing (keeps the writer interface uniform).
      w.Value(std::strtod(p.text.c_str(), nullptr));
    }
  }
  w.EndObject();

  w.Key("phases");
  w.BeginArray();
  for (const auto& ph : phases_) {
    w.BeginObject();
    w.KeyValue("name", ph.name);
    w.KeyValue("seconds", ph.seconds);
    w.EndObject();
  }
  w.EndArray();

  w.Key("series");
  w.BeginArray();
  for (const auto& s : series_) {
    w.BeginObject();
    w.KeyValue("name", s.name);
    w.Key("rows");
    w.BeginArray();
    for (const auto& row : s.rows) {
      w.BeginObject();
      w.Key("labels");
      w.BeginObject();
      for (const auto& [k, v] : row.labels) w.KeyValue(k, v);
      w.EndObject();
      w.Key("values");
      w.BeginObject();
      for (const auto& [k, v] : row.values) w.KeyValue(k, v);
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  out << "\n";
  return out.str();
}

Status BenchReport::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << ToJsonString();
  out.flush();
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<BenchReport> BenchReport::FromJsonString(const std::string& text) {
  LONGDP_ASSIGN_OR_RETURN(util::JsonValue doc, util::ParseJson(text));
  if (!doc.is_object()) {
    return Status::InvalidArgument("bench report: document is not an object");
  }
  const util::JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string_value() != kSchemaName) {
    return Status::InvalidArgument(
        "bench report: missing or unexpected \"schema\" marker");
  }
  const util::JsonValue* bench = doc.Find("bench");
  if (bench == nullptr || !bench->is_string()) {
    return Status::InvalidArgument("bench report: missing \"bench\" name");
  }
  BenchReport report(bench->string_value());

  if (const auto* desc = doc.Find("description");
      desc != nullptr && desc->is_string()) {
    report.set_description(desc->string_value());
  }
  if (const auto* flags = doc.Find("flags");
      flags != nullptr && flags->is_object()) {
    for (const auto& [k, v] : flags->object_items()) {
      if (v.is_string()) report.flags_[k] = v.string_value();
    }
  }
  if (const auto* params = doc.Find("params");
      params != nullptr && params->is_object()) {
    for (const auto& [k, v] : params->object_items()) {
      if (v.is_string()) {
        report.SetParam(k, v.string_value());
      } else if (v.is_number()) {
        report.SetParam(k, v.number_value());
      }
    }
  }
  if (const auto* phases = doc.Find("phases");
      phases != nullptr && phases->is_array()) {
    for (const auto& ph : phases->array_items()) {
      const auto* name = ph.Find("name");
      const auto* seconds = ph.Find("seconds");
      double secs = 0.0;
      if (name != nullptr && name->is_string() && seconds != nullptr &&
          util::JsonNumberValue(*seconds, &secs)) {
        report.RecordPhaseSeconds(name->string_value(), secs);
      }
    }
  }
  const util::JsonValue* series = doc.Find("series");
  if (series == nullptr || !series->is_array()) {
    return Status::InvalidArgument("bench report: missing \"series\" array");
  }
  for (const auto& s : series->array_items()) {
    const auto* name = s.Find("name");
    if (name == nullptr || !name->is_string()) {
      return Status::InvalidArgument("bench report: series without a name");
    }
    Series& out = report.AddSeries(name->string_value());
    const auto* rows = s.Find("rows");
    if (rows == nullptr || !rows->is_array()) {
      return Status::InvalidArgument("bench report: series \"" +
                                     out.name + "\" without a rows array");
    }
    for (const auto& r : rows->array_items()) {
      Row& row = out.AddRow();
      if (const auto* labels = r.Find("labels");
          labels != nullptr && labels->is_object()) {
        for (const auto& [k, v] : labels->object_items()) {
          if (!v.is_string()) {
            return Status::InvalidArgument(
                "bench report: non-string label \"" + k + "\"");
          }
          row.Label(k, v.string_value());
        }
      }
      if (const auto* values = r.Find("values");
          values != nullptr && values->is_object()) {
        for (const auto& [k, v] : values->object_items()) {
          double d = 0.0;
          if (!util::JsonNumberValue(v, &d)) {
            return Status::InvalidArgument(
                "bench report: non-numeric value \"" + k + "\"");
          }
          row.Value(k, d);
        }
      }
    }
  }
  return report;
}

Result<BenchReport> BenchReport::FromJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failed: " + path);
  }
  LONGDP_ASSIGN_OR_RETURN(BenchReport report, FromJsonString(buf.str()));
  return report;
}

}  // namespace harness
}  // namespace longdp
