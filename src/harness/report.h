// Machine-readable benchmark reports. Each bench driver populates a
// BenchReport alongside its aligned-text tables: named series of labeled
// rows (truth/mean/median/quantiles per query x timestep), run parameters
// (n/T/k/rho/reps), the raw command-line flags, per-phase wall-clock, and
// build provenance (git describe, compiler, build type). The report
// serializes as stable, round-trip-precision JSON so future perf PRs diff
// against a stored baseline with tools/bench_diff instead of eyeballing
// aligned text.
//
// Schema (schema_version 1):
//   {
//     "schema": "longdp-bench-report", "schema_version": 1,
//     "bench": "<name>", "description": "<figure label>",
//     "build": {"git_describe", "compiler", "build_type", "version"},
//     "flags": {"<flag>": "<raw value>", ...},
//     "params": {"n": 23374, "rho": 0.005, ...},
//     "phases": [{"name": "repetitions", "seconds": 1.25}, ...],
//     "series": [{"name": "biased", "rows": [
//        {"labels": {"query": ">=1 month", "quarter": "1"},
//         "values": {"truth": ..., "mean": ..., "median": ...,
//                    "q2.5": ..., "q97.5": ...}}]}]
//   }
//
// Non-finite doubles travel as the strings "NaN"/"Infinity"/"-Infinity"
// (JSON has no literals for them) and are mapped back on load.

#ifndef LONGDP_HARNESS_REPORT_H_
#define LONGDP_HARNESS_REPORT_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness/aggregate.h"
#include "harness/flags.h"
#include "util/status.h"

namespace longdp {
namespace harness {

class BenchReport {
 public:
  /// One measurement row: ordered string labels identifying the point
  /// (query, quarter, ...) and ordered named double values (truth, mean,
  /// quantiles, ...).
  struct Row {
    std::vector<std::pair<std::string, std::string>> labels;
    std::vector<std::pair<std::string, double>> values;

    Row& Label(const std::string& key, const std::string& value) {
      labels.emplace_back(key, value);
      return *this;
    }
    Row& Value(const std::string& key, double v) {
      values.emplace_back(key, v);
      return *this;
    }
    /// Appends the figure-standard summary stats: mean, median, q2.5,
    /// q97.5, count.
    Row& Summary(const QuantileSummary& s);
  };

  struct Series {
    std::string name;
    std::vector<Row> rows;

    Row& AddRow() {
      rows.emplace_back();
      return rows.back();
    }
  };

  struct Phase {
    std::string name;
    double seconds = 0.0;
  };

  /// Typed run parameter, kept as serialized text + quoting kind so output
  /// is stable and comparable.
  struct Param {
    std::string key;
    std::string text;
    bool quoted = false;  // true: JSON string; false: JSON number
  };

  explicit BenchReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  const std::string& bench_name() const { return bench_name_; }

  void set_description(std::string description) {
    description_ = std::move(description);
  }
  const std::string& description() const { return description_; }

  /// Records the raw command-line flags (stable map order).
  void RecordFlags(const Flags& flags) { flags_ = flags.values(); }
  const std::map<std::string, std::string>& flags() const { return flags_; }

  void SetParam(const std::string& key, const std::string& value);
  void SetParam(const std::string& key, const char* value) {
    SetParam(key, std::string(value));
  }
  void SetParam(const std::string& key, int64_t value);
  void SetParam(const std::string& key, int value) {
    SetParam(key, static_cast<int64_t>(value));
  }
  void SetParam(const std::string& key, double value);
  const std::vector<Param>& params() const { return params_; }

  /// Adds (or returns the existing) series named `name`.
  Series& AddSeries(const std::string& name);
  const std::vector<Series>& series() const { return series_; }
  const Series* FindSeries(const std::string& name) const;

  void RecordPhaseSeconds(const std::string& name, double seconds);
  const std::vector<Phase>& phases() const { return phases_; }

  /// RAII wall-clock timer: records the elapsed seconds of a named phase
  /// into the report on destruction (or on an explicit Stop()).
  class PhaseTimer {
   public:
    PhaseTimer(BenchReport* report, std::string name)
        : report_(report),
          name_(std::move(name)),
          start_(std::chrono::steady_clock::now()) {}
    PhaseTimer(const PhaseTimer&) = delete;
    PhaseTimer& operator=(const PhaseTimer&) = delete;
    ~PhaseTimer() { Stop(); }

    void Stop();

   private:
    BenchReport* report_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Serializes the report as JSON (see the schema above).
  std::string ToJsonString() const;

  /// Writes the JSON document to `path`, flushing and checking the stream.
  Status WriteJson(const std::string& path) const;

  /// Loads a report previously written by WriteJson.
  static Result<BenchReport> FromJsonString(const std::string& text);
  static Result<BenchReport> FromJsonFile(const std::string& path);

 private:
  std::string bench_name_;
  std::string description_;
  std::map<std::string, std::string> flags_;
  std::vector<Param> params_;
  std::vector<Phase> phases_;
  std::vector<Series> series_;
};

}  // namespace harness
}  // namespace longdp

#endif  // LONGDP_HARNESS_REPORT_H_
