#include "harness/runner.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "util/substream.h"

namespace longdp {
namespace harness {

Status RunRepetitions(int64_t reps, uint64_t base_seed,
                      const std::function<Status(int64_t, uint64_t)>& body,
                      int max_threads) {
  if (reps <= 0) return Status::OK();
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  unsigned threads = (max_threads > 0)
                         ? static_cast<unsigned>(max_threads)
                         : hw;
  if (threads > static_cast<unsigned>(reps)) {
    threads = static_cast<unsigned>(reps);
  }

  std::atomic<int64_t> next{0};
  std::mutex status_mu;
  Status first_error;

  const util::SubstreamRng rep_root(base_seed,
                                    util::substream::kRepetition);
  auto worker = [&]() {
    for (;;) {
      int64_t rep = next.fetch_add(1);
      if (rep >= reps) return;
      // Deterministic per-repetition seed independent of scheduling: the
      // key of the addressable substream (base_seed, kRepetition, rep).
      const uint64_t rep_seed =
          rep_root.Derive(static_cast<uint64_t>(rep)).key();
      Status st = body(rep, rep_seed);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(status_mu);
        if (first_error.ok()) first_error = st;
        return;
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  return first_error;
}

}  // namespace harness
}  // namespace longdp
