// Parallel repetition runner. The paper's figures aggregate 1000
// repetitions of each synthesizer; repetitions are embarrassingly parallel,
// so we shard them across hardware threads, each with an independently
// keyed repetition seed (deterministic per (base_seed, repetition)).

#ifndef LONGDP_HARNESS_RUNNER_H_
#define LONGDP_HARNESS_RUNNER_H_

#include <cstdint>
#include <functional>

#include "util/status.h"

namespace longdp {
namespace harness {

/// Runs `body(rep, rep_seed)` for rep = 0..reps-1, sharded across up to
/// `max_threads` threads (0 = hardware concurrency). Each repetition's seed
/// is the substream key (base_seed, kRepetition, rep), so results are
/// independent of the thread schedule; bodies feed the seed to a
/// synthesizer's Options::seed or construct util::SubstreamRng from it.
/// The body must only write to per-repetition slots. Returns the first
/// non-OK status produced, if any.
Status RunRepetitions(
    int64_t reps, uint64_t base_seed,
    const std::function<Status(int64_t, uint64_t)>& body,
    int max_threads = 0);

}  // namespace harness
}  // namespace longdp

#endif  // LONGDP_HARNESS_RUNNER_H_
