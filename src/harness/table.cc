#include "harness/table.h"

#include <cstdio>
#include <fstream>

#include "util/csv.h"

namespace longdp {
namespace harness {

Status Table::AddRow(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != header arity " +
        std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(int64_t v) { return std::to_string(v); }

void Table::Print(std::ostream& out) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  util::CsvWriter writer(&out);
  writer.WriteRow(headers_);
  for (const auto& row : rows_) writer.WriteRow(row);
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace harness
}  // namespace longdp
