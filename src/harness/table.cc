#include "harness/table.h"

#include <cstdio>
#include <fstream>

#include "util/csv.h"
#include "util/json.h"

namespace longdp {
namespace harness {

Status Table::AddRow(std::vector<Cell> row) {
  if (row.size() != headers_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != header arity " +
        std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(int64_t v) { return std::to_string(v); }

Table::Cell Table::Val(double v, int precision) {
  return Cell(Num(v, precision), v);
}

void Table::Print(std::ostream& out) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].text.size());
    }
  }
  auto print_cell = [&](const std::string& text, size_t c, size_t arity) {
    out << text;
    if (c + 1 < arity) {
      out << std::string(width[c] - text.size() + 2, ' ');
    }
  };
  for (size_t c = 0; c < headers_.size(); ++c) {
    print_cell(headers_[c], c, headers_.size());
  }
  out << '\n';
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      print_cell(row[c].text, c, row.size());
    }
    out << '\n';
  }
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  util::CsvWriter writer(&out);
  writer.WriteRow(headers_);
  std::vector<std::string> fields;
  for (const auto& row : rows_) {
    fields.clear();
    for (const auto& cell : row) {
      fields.push_back(cell.numeric ? util::FormatDoubleRoundTrip(cell.value)
                                    : cell.text);
    }
    writer.WriteRow(fields);
  }
  // An ofstream buffers; without an explicit flush a full disk or closed
  // pipe after the last buffered write would still report success here.
  out.flush();
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace harness
}  // namespace longdp
