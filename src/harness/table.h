// Aligned-column table printer for bench output, with optional CSV export,
// so every figure's series is readable in a terminal and loadable in R /
// pandas for plotting.

#ifndef LONGDP_HARNESS_TABLE_H_
#define LONGDP_HARNESS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace longdp {
namespace harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; must match the header arity.
  Status AddRow(std::vector<std::string> row);

  /// Convenience formatting helpers.
  static std::string Num(double v, int precision = 6);
  static std::string Int(int64_t v);

  /// Prints with aligned columns.
  void Print(std::ostream& out) const;

  /// Writes as CSV to `path` (headers first).
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace harness
}  // namespace longdp

#endif  // LONGDP_HARNESS_TABLE_H_
