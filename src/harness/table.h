// Aligned-column table printer for bench output, with optional CSV export,
// so every figure's series is readable in a terminal and loadable in R /
// pandas for plotting.
//
// Cells built with Table::Val carry the raw double alongside the rounded
// display text: the terminal shows the usual 6 decimals, while CSV export
// emits full round-trip precision (a rho-scale value truncated to 6
// decimals would corrupt any stored baseline diffed against it).

#ifndef LONGDP_HARNESS_TABLE_H_
#define LONGDP_HARNESS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace longdp {
namespace harness {

class Table {
 public:
  /// One table cell: display text, plus the raw value for numeric cells.
  struct Cell {
    // Rows are brace lists of mixed literals; implicit conversion is the
    // whole point of Cell.
    // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
    Cell(std::string t) : text(std::move(t)) {}
    // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
    Cell(const char* t) : text(t) {}
    Cell(std::string t, double v)
        : text(std::move(t)), numeric(true), value(v) {}

    std::string text;
    bool numeric = false;
    double value = 0.0;
  };

  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; must match the header arity.
  Status AddRow(std::vector<Cell> row);

  /// Convenience formatting helpers (display text only).
  static std::string Num(double v, int precision = 6);
  static std::string Int(int64_t v);

  /// Numeric cell: rounded display text plus the raw value, so machine
  /// exports (CSV) keep round-trip precision.
  static Cell Val(double v, int precision = 6);

  /// Prints with aligned columns.
  void Print(std::ostream& out) const;

  /// Writes as CSV to `path` (headers first). Numeric cells are written
  /// with round-trip precision; the stream is flushed and checked so disk
  /// errors after the last buffered write are still reported.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace harness
}  // namespace longdp

#endif  // LONGDP_HARNESS_TABLE_H_
