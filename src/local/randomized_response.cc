#include "local/randomized_response.h"

#include <cmath>

namespace longdp {
namespace local {

const char* ReportStrategyName(ReportStrategy strategy) {
  switch (strategy) {
    case ReportStrategy::kFreshPerRound:
      return "fresh-per-round";
    case ReportStrategy::kMemoized:
      return "memoized";
  }
  return "?";
}

LocalFrequencyOracle::LocalFrequencyOracle(const Options& options)
    : options_(options) {
  switch (options.strategy) {
    case ReportStrategy::kFreshPerRound:
      // One fresh report per round; user-level budget splits across T.
      eps0_ = options.epsilon / static_cast<double>(options.horizon);
      break;
    case ReportStrategy::kMemoized:
      // One permanent response per (user, true value); a user with at most
      // F flips exposes at most 2F + 1 "fresh" uses — budget per memoized
      // draw epsilon / (2 flip_bound).
      eps0_ = options.epsilon /
              (2.0 * static_cast<double>(options.flip_bound));
      break;
  }
  // Binary randomized response achieving eps0-DP per report:
  //   report truth with prob e^eps0 / (1 + e^eps0).
  double e = std::exp(eps0_);
  p_ = e / (1.0 + e);
  q_ = 1.0 - p_;
}

Result<std::unique_ptr<LocalFrequencyOracle>> LocalFrequencyOracle::Create(
    const Options& options) {
  if (options.horizon < 1) {
    return Status::InvalidArgument("horizon must be >= 1");
  }
  if (!(options.epsilon > 0.0) || std::isinf(options.epsilon)) {
    return Status::InvalidArgument(
        "local model requires a finite epsilon > 0");
  }
  if (options.strategy == ReportStrategy::kMemoized &&
      options.flip_bound < 1) {
    return Status::InvalidArgument("flip_bound must be >= 1");
  }
  return std::unique_ptr<LocalFrequencyOracle>(
      new LocalFrequencyOracle(options));
}

Result<double> LocalFrequencyOracle::ObserveRound(
    const std::vector<uint8_t>& bits, util::Rng* rng) {
  // Packing validates: entries other than 0/1 are rejected before any
  // state changes.
  LONGDP_RETURN_NOT_OK(packed_scratch_.Assign(bits));
  return ObserveRound(packed_scratch_.view(), rng);
}

Result<double> LocalFrequencyOracle::ObserveRound(data::RoundView round,
                                                  util::Rng* rng) {
  if (t_ >= options_.horizon) {
    return Status::OutOfRange("local oracle past its horizon");
  }
  if (n_ < 0) {
    n_ = round.size();
    if (options_.strategy == ReportStrategy::kMemoized) {
      memo_zero_.assign(static_cast<size_t>(n_), -1);
      memo_one_.assign(static_cast<size_t>(n_), -1);
    }
  } else if (round.size() != n_) {
    return Status::InvalidArgument("round size changed");
  }
  ++t_;
  if (n_ == 0) return 0.0;

  int64_t report_ones = 0;
  for (int64_t i = 0; i < n_; ++i) {
    const int bit = round.bit(i);
    int report;
    if (options_.strategy == ReportStrategy::kFreshPerRound) {
      bool keep = rng->Bernoulli(p_);
      report = keep ? bit : 1 - bit;
    } else {
      auto& memo = bit ? memo_one_ : memo_zero_;
      if (memo[static_cast<size_t>(i)] < 0) {
        bool keep = rng->Bernoulli(p_);
        memo[static_cast<size_t>(i)] =
            static_cast<int8_t>(keep ? bit : 1 - bit);
      }
      report = memo[static_cast<size_t>(i)];
    }
    report_ones += report;
  }
  double mean_report =
      static_cast<double>(report_ones) / static_cast<double>(n_);
  return (mean_report - q_) / (p_ - q_);
}

double LocalFrequencyOracle::EstimateStddevBound(int64_t n) const {
  if (n <= 0) return 0.0;
  return 1.0 / (2.0 * (p_ - q_) * std::sqrt(static_cast<double>(n)));
}

}  // namespace local
}  // namespace longdp
