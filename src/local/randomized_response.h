// Local-model baselines for longitudinal frequency tracking — the related
// work the paper's Section 1.1 discusses (Google's RAPPOR, Erlingsson et
// al. '19, Joseph et al. '18). These solve (only) the k = 1 fixed-window
// problem: tracking the population-level mean of one evolving bit, with
// each user randomizing locally before reporting.
//
// Two report strategies are provided:
//
//  * kFreshPerRound — classic binary randomized response each round with
//    per-round budget epsilon_0 = epsilon / T. User-level epsilon-DP for
//    the whole horizon unconditionally; error scales like
//    T / (epsilon sqrt(n)), the poly(T) hit the central model avoids.
//
//  * kMemoized — RAPPOR's permanent response: each user draws ONE
//    randomized value per true value (memoizing both the response for 0
//    and the response for 1, with per-value budget epsilon / (2 F) for an
//    assumed bound F on the number of times the bit flips) and replays it
//    whenever the true bit repeats. Under the paper-noted heuristic that
//    bits flip at most F times, the whole sequence is user-level
//    epsilon-DP, and the error does not grow with T — but correlated
//    reports leak trajectory structure beyond the k=1 mean, which is
//    precisely why the central algorithms of this library exist.
//
// The aggregate estimator unbiases the mean report:
//    p_hat = (mean_report - q) / (p - q),
// where p = Pr[report 1 | true 1], q = Pr[report 1 | true 0].

#ifndef LONGDP_LOCAL_RANDOMIZED_RESPONSE_H_
#define LONGDP_LOCAL_RANDOMIZED_RESPONSE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/longitudinal_dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace longdp {
namespace local {

enum class ReportStrategy {
  kFreshPerRound,
  kMemoized,
};

const char* ReportStrategyName(ReportStrategy strategy);

/// \brief Simulates a fleet of local randomizers and the server-side
/// aggregator for one evolving bit per user.
class LocalFrequencyOracle {
 public:
  struct Options {
    int64_t horizon = 0;     ///< T
    double epsilon = 0.0;    ///< total user-level (pure) DP budget
    ReportStrategy strategy = ReportStrategy::kFreshPerRound;
    /// kMemoized only: assumed bound on per-user bit flips (the paper's
    /// Section 1.1 notes the Erlingsson et al. error scales with this).
    int64_t flip_bound = 3;
  };

  static Result<std::unique_ptr<LocalFrequencyOracle>> Create(
      const Options& options);

  /// Consumes round t's true bits (population fixed by the first call) and
  /// returns the server's unbiased estimate of the round-t mean.
  Result<double> ObserveRound(data::RoundView round, util::Rng* rng);

  /// Byte-per-bit convenience overload: validates and bit-packs `bits`
  /// (rejecting entries other than 0/1 before any state changes), then
  /// runs the packed path above.
  Result<double> ObserveRound(const std::vector<uint8_t>& bits,
                              util::Rng* rng);

  int64_t t() const { return t_; }

  /// Pr[report 1 | true 1] for the per-report randomizer in use.
  double flip_keep_prob() const { return p_; }
  /// Pr[report 1 | true 0].
  double flip_lie_prob() const { return q_; }
  /// Per-report pure-DP budget.
  double per_report_epsilon() const { return eps0_; }

  /// Standard deviation of the round estimate for population n (used by
  /// the bench to draw the theory line): sqrt(p(1-p)... ) upper bounded by
  /// 1 / (2 (p - q) sqrt(n)).
  double EstimateStddevBound(int64_t n) const;

 private:
  explicit LocalFrequencyOracle(const Options& options);

  Options options_;
  double eps0_ = 0.0;
  double p_ = 0.0;
  double q_ = 0.0;
  int64_t n_ = -1;
  int64_t t_ = 0;
  // kMemoized: per-user memoized responses for true values 0 and 1;
  // -1 = not drawn yet.
  std::vector<int8_t> memo_zero_;
  std::vector<int8_t> memo_one_;
  data::PackedRound packed_scratch_;
};

}  // namespace local
}  // namespace longdp

#endif  // LONGDP_LOCAL_RANDOMIZED_RESPONSE_H_
