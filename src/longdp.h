// Umbrella header for the longdp library: continual release of
// differentially private synthetic data from longitudinal data collections
// (Bun, Gaboardi, Neunhoeffer & Zhang, PACMMOD/PODS 2024).
//
// Typical usage (see examples/quickstart.cc for a complete program):
//
//   longdp::core::FixedWindowSynthesizer::Options opt;
//   opt.horizon = 12; opt.window_k = 3; opt.rho = 0.005;
//   opt.seed = seed;  // every noise draw is keyed off this one root seed
//   auto synth = longdp::core::FixedWindowSynthesizer::Create(opt).value();
//   for (each month) synth->ObserveRound(bits_for_month);
//   auto poverty = synth->DebiasedAnswer(*longdp::query::MakeAtLeastOnes(3, 1));

#ifndef LONGDP_LONGDP_H_
#define LONGDP_LONGDP_H_

#include "archive/exec.h"
#include "archive/format.h"
#include "archive/reader.h"
#include "archive/writer.h"
#include "core/categorical_synthesizer.h"
#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "core/recompute_baseline.h"
#include "core/release_analyzer.h"
#include "core/release_log.h"
#include "core/synthetic_cohort.h"
#include "core/theory.h"
#include "data/generators.h"
#include "data/longitudinal_dataset.h"
#include "data/round_view.h"
#include "data/sipp_csv.h"
#include "data/sipp_preprocess.h"
#include "data/sipp_simulator.h"
#include "dp/accountant.h"
#include "dp/discrete_gaussian.h"
#include "dp/mechanisms.h"
#include "query/cumulative_query.h"
#include "query/debias.h"
#include "local/randomized_response.h"
#include "query/spells.h"
#include "query/window_query.h"
#include "stream/budget_split.h"
#include "stream/counter_bank.h"
#include "stream/counter_factory.h"
#include "stream/honaker_counter.h"
#include "stream/laplace_tree_counter.h"
#include "stream/matrix_counter.h"
#include "stream/naive_counters.h"
#include "stream/stream_counter.h"
#include "stream/tree_counter.h"
#include "util/bits.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/mathutil.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/substream.h"
#include "util/thread_pool.h"

#endif  // LONGDP_LONGDP_H_
