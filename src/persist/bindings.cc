#include "persist/bindings.h"

#include <sstream>

namespace longdp {
namespace persist {

namespace {
std::string HistogramRecord(int64_t t, bool has_release,
                            const std::vector<int64_t>& hist) {
  std::ostringstream out;
  out << t;
  if (!has_release) {
    // Buffering rounds (t < k) publish nothing; the frame still exists so
    // WAL index i always holds round i+1.
    out << " -";
    return out.str();
  }
  for (int64_t h : hist) out << " " << h;
  return out.str();
}
}  // namespace

std::string CumulativeTraits::ReleaseRecord(const Synth& synth) {
  return HistogramRecord(synth.t(), /*has_release=*/true,
                         synth.released_thresholds());
}

std::string FixedWindowTraits::ReleaseRecord(const Synth& synth) {
  // SyntheticHistogram() materializes by value; skip it pre-release.
  if (!synth.has_release()) {
    return HistogramRecord(synth.t(), false, {});
  }
  return HistogramRecord(synth.t(), true, synth.SyntheticHistogram());
}

std::string CategoricalTraits::ReleaseRecord(const Synth& synth) {
  if (!synth.has_release()) {
    return HistogramRecord(synth.t(), false, {});
  }
  return HistogramRecord(synth.t(), true, synth.SyntheticHistogram());
}

}  // namespace persist
}  // namespace longdp
