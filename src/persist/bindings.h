// Concrete durable-session bindings for the three synthesizers.
//
// DurableRun<Synth, Traits> owns a synthesizer plus a DurableSession whose
// hooks close over it: save/restore map to the synthesizer's
// SaveCheckpoint/LoadCheckpoint, observe feeds a round of per-user data,
// and release_record serializes the round's published output for the WAL.
// The worker pool is runtime configuration: it is captured at Open and
// re-attached after every restore (set_pool), so a run can recover onto a
// completely different shards x threads grid — keyed substreams make the
// replayed releases byte-identical regardless.
//
// Release record formats (one WAL frame per observed round):
//   cumulative:   "<t> S0 S1 ... ST"      released threshold counts
//   fixed-window: "<t> h0 ... h{2^k-1}"   synthetic histogram, or
//                 "<t> -"                 before the first release (t < k)
//   categorical:  "<t> c0 ... c{A^k-1}"   synthetic histogram, or "<t> -"

#ifndef LONGDP_PERSIST_BINDINGS_H_
#define LONGDP_PERSIST_BINDINGS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/categorical_synthesizer.h"
#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "persist/session.h"
#include "util/status.h"

namespace longdp {
namespace util {
class ThreadPool;
}  // namespace util

namespace persist {

struct CumulativeTraits {
  using Synth = core::CumulativeSynthesizer;
  static constexpr const char* kKind = "cumulative";
  static constexpr int64_t kFormatVersion = 4;
  static std::string ReleaseRecord(const Synth& synth);
};

struct FixedWindowTraits {
  using Synth = core::FixedWindowSynthesizer;
  static constexpr const char* kKind = "fixed-window";
  static constexpr int64_t kFormatVersion = 4;
  static std::string ReleaseRecord(const Synth& synth);
};

struct CategoricalTraits {
  using Synth = core::CategoricalWindowSynthesizer;
  static constexpr const char* kKind = "categorical";
  static constexpr int64_t kFormatVersion = 1;
  static std::string ReleaseRecord(const Synth& synth);
};

template <typename Traits>
class DurableRun {
 public:
  using Synth = typename Traits::Synth;

  /// Creates the synthesizer and opens its durable session (running
  /// recovery, including the restore-from-snapshot that replaces the
  /// fresh synthesizer). After Open, re-feed `session().replay_remaining()`
  /// rounds of input before new data.
  static Result<std::unique_ptr<DurableRun>> Open(
      const DurableSession::Options& dopts,
      const typename Synth::Options& sopts) {
    LONGDP_ASSIGN_OR_RETURN(auto synth, Synth::Create(sopts));
    auto run = std::unique_ptr<DurableRun>(new DurableRun());
    run->pool_ = sopts.pool;
    run->synth_ = std::move(synth);

    SynthesizerHooks hooks;
    hooks.kind = Traits::kKind;
    hooks.format_version = Traits::kFormatVersion;
    hooks.seed = sopts.seed;
    DurableRun* self = run.get();
    hooks.save = [self](std::ostream& out) {
      return self->synth_->SaveCheckpoint(out);
    };
    hooks.restore = [self](std::istream& in) -> Status {
      auto restored = Synth::LoadCheckpoint(in);
      if (!restored.ok()) return restored.status();
      self->synth_ = std::move(restored).value();
      self->synth_->set_pool(self->pool_);
      return Status::OK();
    };
    hooks.observe = [self](const std::vector<uint8_t>& data) {
      return self->synth_->ObserveRound(data);
    };
    hooks.round = [self]() { return self->synth_->t(); };
    hooks.release_record = [self]() {
      return Traits::ReleaseRecord(*self->synth_);
    };
    LONGDP_ASSIGN_OR_RETURN(run->session_,
                            DurableSession::Open(dopts, std::move(hooks)));
    return run;
  }

  /// One durable round: observe + WAL verify/append + maybe snapshot.
  Status ObserveRound(const std::vector<uint8_t>& data) {
    return session_->ObserveRound(data);
  }

  Synth& synth() { return *synth_; }
  const Synth& synth() const { return *synth_; }
  DurableSession& session() { return *session_; }
  const DurableSession& session() const { return *session_; }

 private:
  DurableRun() = default;

  util::ThreadPool* pool_ = nullptr;
  std::unique_ptr<Synth> synth_;
  std::unique_ptr<DurableSession> session_;
};

using DurableCumulative = DurableRun<CumulativeTraits>;
using DurableFixedWindow = DurableRun<FixedWindowTraits>;
using DurableCategorical = DurableRun<CategoricalTraits>;

}  // namespace persist
}  // namespace longdp

#endif  // LONGDP_PERSIST_BINDINGS_H_
