#include "persist/crc32c.h"

#include <array>

namespace longdp {
namespace persist {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

// Slicing-by-4 tables: table[0] is the classic byte-at-a-time table,
// table[j] advances a byte that sits j positions deeper in the word. Built
// once at startup; 4 KiB total, giving ~4x the throughput of the byte loop
// on snapshot-sized payloads without any hardware-CRC intrinsics (the
// build targets plain portable C++).
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int j = 0; j < 8; ++j) {
        c = (c & 1u) ? (c >> 1) ^ kPoly : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (size_t j = 1; j < 4; ++j) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[j][i] = c;
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const Tables& tb = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~crc;
  while (len >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = tb.t[3][c & 0xFFu] ^ tb.t[2][(c >> 8) & 0xFFu] ^
        tb.t[1][(c >> 16) & 0xFFu] ^ tb.t[0][c >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace persist
}  // namespace longdp
