// CRC32C (Castagnoli) checksums for the durable state layer.
//
// Snapshot payloads and WAL frames carry a CRC32C so recovery can tell a
// torn or bit-flipped file from a valid one. Castagnoli (polynomial
// 0x1EDC6F41, reflected 0x82F63B78) rather than the zlib CRC32 because it
// is the de-facto storage checksum (iSCSI, ext4, RocksDB, LevelDB) with
// strictly better error-detection properties at these block sizes.

#ifndef LONGDP_PERSIST_CRC32C_H_
#define LONGDP_PERSIST_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace longdp {
namespace persist {

/// Extends a running CRC32C with `len` bytes. Start a fresh checksum with
/// `crc = 0`; the streaming form satisfies
/// `Crc32c(a+b) == Crc32cExtend(Crc32c(a), b)`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

/// One-shot checksum of a buffer.
inline uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

}  // namespace persist
}  // namespace longdp

#endif  // LONGDP_PERSIST_CRC32C_H_
