#include "persist/posix_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace longdp {
namespace persist {

namespace {
std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " failed for '" + path + "': " + std::strerror(errno);
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}
}  // namespace

Result<int> OpenFd(const std::string& path, int flags, int mode) {
  int fd;
  do {
    fd = ::open(path.c_str(), flags, mode);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == ENOENT && (flags & O_CREAT) == 0) {
      return Status::NotFound("no file at '" + path + "'");
    }
    return Status::IOError(ErrnoMessage("open", path));
  }
  return fd;
}

Status WriteAllFd(int fd, const std::string& path, const char* data,
                  size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write", path));
    }
    if (n == 0) {
      return Status::IOError("write stalled for '" + path + "'");
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TruncateFd(int fd, const std::string& path, int64_t len) {
  int rc;
  do {
    rc = ::ftruncate(fd, static_cast<off_t>(len));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::IOError(ErrnoMessage("ftruncate", path));
  }
  return Status::OK();
}

Status SyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    return Status::IOError(ErrnoMessage("fsync", path));
  }
  return Status::OK();
}

Status SyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  LONGDP_ASSIGN_OR_RETURN(int dfd, OpenFd(dir, O_RDONLY, 0));
  Status sync = SyncFd(dfd, dir);
  ::close(dfd);
  return sync;
}

Status ReadFileBytes(const std::string& path, std::string* out) {
  LONGDP_ASSIGN_OR_RETURN(int fd, OpenFd(path, O_RDONLY, 0));
  out->clear();
  char buf[1 << 16];
  Status status = Status::OK();
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      status = Status::IOError(ErrnoMessage("read", path));
      break;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return status;
}

}  // namespace persist
}  // namespace longdp
