// Thin POSIX file helpers shared by the snapshot and WAL implementations.
//
// All functions translate errno into Status::IOError with the failing
// operation and path in the message. Short writes are retried (write(2)
// may write fewer bytes than asked on signals or near-full devices — the
// /dev/full injection tests exercise exactly that edge).

#ifndef LONGDP_PERSIST_POSIX_IO_H_
#define LONGDP_PERSIST_POSIX_IO_H_

#include <string>

#include "util/status.h"

namespace longdp {
namespace persist {

/// open(2) wrapper. `flags`/`mode` as in open; the returned fd is owned by
/// the caller. A missing file under O_RDONLY maps to NotFound, everything
/// else to IOError.
Result<int> OpenFd(const std::string& path, int flags, int mode);

/// Writes all `len` bytes, retrying short writes and EINTR.
Status WriteAllFd(int fd, const std::string& path, const char* data,
                  size_t len);

/// ftruncate(2) wrapper; `len` is the new file length in bytes. Used by
/// append-mode reopens that cut a finished file back to its payload region
/// before extending it.
Status TruncateFd(int fd, const std::string& path, int64_t len);

/// fsync(2) wrapper.
Status SyncFd(int fd, const std::string& path);

/// Opens the parent directory of `path` and fsyncs it, making a rename or
/// file creation in that directory durable.
Status SyncParentDir(const std::string& path);

/// Reads the entire file into `out`. Missing file maps to NotFound.
Status ReadFileBytes(const std::string& path, std::string* out);

}  // namespace persist
}  // namespace longdp

#endif  // LONGDP_PERSIST_POSIX_IO_H_
