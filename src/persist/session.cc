#include "persist/session.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "persist/snapshot.h"
#include "stream/state_io.h"

namespace longdp {
namespace persist {

namespace {
Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IOError("mkdir failed for '" + dir + "': " +
                         std::strerror(errno));
}

Status CheckHooks(const SynthesizerHooks& hooks) {
  if (!hooks.save || !hooks.restore || !hooks.observe || !hooks.round ||
      !hooks.release_record) {
    return Status::InvalidArgument("SynthesizerHooks has unset callbacks");
  }
  return Status::OK();
}
}  // namespace

Result<RecoveryReport> RecoveryManager::Recover(
    const std::string& snapshot_path, const std::string& wal_path,
    const SynthesizerHooks& hooks, std::vector<std::string>* replay) {
  LONGDP_RETURN_NOT_OK(CheckHooks(hooks));
  RecoveryReport report;
  replay->clear();

  // 1. The WAL, tolerantly: a torn tail is the one damage a crash is
  // allowed to leave behind, and it is repaired by truncation. Anything a
  // truncated tail cannot explain (a snapshot ahead of the log, below)
  // stays fatal.
  WalContents wal;
  Result<WalContents> wal_read = ReadWal(wal_path, WalReadMode::kTolerateTornTail);
  if (wal_read.ok()) {
    wal = std::move(wal_read).value();
  } else if (!wal_read.status().IsNotFound()) {
    return wal_read.status();
  }
  if (wal.torn_tail) {
    LONGDP_RETURN_NOT_OK(TruncateWal(wal_path, wal.valid_bytes));
    report.torn_tail_truncated = true;
  }
  report.wal_rounds = static_cast<int64_t>(wal.records.size());

  // 2. The snapshot. Missing is fine (recover from round 0 by replaying
  // the whole log); damaged or mismatched is not.
  Result<Snapshot> snap_read = ReadSnapshot(snapshot_path);
  if (snap_read.ok()) {
    const Snapshot& snap = snap_read.value();
    if (snap.meta.kind != hooks.kind) {
      return Status::InvalidArgument(
          "snapshot is for synthesizer kind '" + snap.meta.kind +
          "', session expects '" + hooks.kind + "'");
    }
    if (snap.meta.format_version != hooks.format_version) {
      return Status::InvalidArgument(
          "snapshot payload format v" +
          std::to_string(snap.meta.format_version) +
          " does not match this build's v" +
          std::to_string(hooks.format_version));
    }
    if (snap.meta.seed != hooks.seed) {
      return Status::InvalidArgument(
          "snapshot was taken under a different seed; refusing a replay "
          "that would diverge from the release log");
    }
    std::istringstream payload(snap.payload);
    LONGDP_RETURN_NOT_OK(hooks.restore(payload));
    LONGDP_RETURN_NOT_OK(
        stream::state_io::ExpectExhausted(payload, "snapshot payload"));
    if (hooks.round() != snap.meta.round) {
      return Status::DataLoss(
          "snapshot header says round " + std::to_string(snap.meta.round) +
          " but the restored state is at round " +
          std::to_string(hooks.round()));
    }
    report.had_snapshot = true;
    report.snapshot_round = snap.meta.round;
  } else if (!snap_read.status().IsNotFound()) {
    return snap_read.status();
  }

  // 3. The replay region. The WAL frame for a round is written before any
  // snapshot at that round, so a snapshot ahead of the log means frames
  // were lost — unrecoverable, not a torn tail.
  if (report.snapshot_round > report.wal_rounds) {
    return Status::DataLoss(
        "snapshot is at round " + std::to_string(report.snapshot_round) +
        " but the WAL only holds " + std::to_string(report.wal_rounds) +
        " rounds; release-log frames are missing");
  }
  replay->assign(
      wal.records.begin() + static_cast<size_t>(report.snapshot_round),
      wal.records.end());
  report.replay_rounds = static_cast<int64_t>(replay->size());
  return report;
}

Result<std::unique_ptr<DurableSession>> DurableSession::Open(
    const Options& options, SynthesizerHooks hooks) {
  LONGDP_RETURN_NOT_OK(CheckHooks(hooks));
  if (options.dir.empty()) {
    return Status::InvalidArgument("DurableSession needs a directory");
  }
  if (options.snapshot_every < 0) {
    return Status::InvalidArgument("snapshot_every must be >= 0");
  }
  LONGDP_RETURN_NOT_OK(EnsureDir(options.dir));

  auto session = std::unique_ptr<DurableSession>(new DurableSession());
  session->options_ = options;
  session->snapshot_path_ = SnapshotPath(options.dir);
  const std::string wal_path = WalPath(options.dir);
  session->hooks_ = std::move(hooks);

  LONGDP_ASSIGN_OR_RETURN(
      session->report_,
      RecoveryManager::Recover(session->snapshot_path_, wal_path,
                               session->hooks_, &session->replay_records_));
  session->wal_rounds_ = session->report_.wal_rounds;
  LONGDP_ASSIGN_OR_RETURN(session->wal_, WalWriter::Open(wal_path));
  return session;
}

Status DurableSession::ObserveRound(const std::vector<uint8_t>& data) {
  LONGDP_RETURN_NOT_OK(hooks_.observe(data));
  const std::string record = hooks_.release_record();
  if (replay_pos_ < replay_records_.size()) {
    // Replay-with-verification: this round was already released and its
    // frame is durable. The re-observed record must match byte for byte —
    // a divergence means the recovered state would rewrite published
    // history, which is exactly what the durability layer exists to make
    // impossible.
    if (record != replay_records_[replay_pos_]) {
      return Status::DataLoss(
          "replayed round " + std::to_string(hooks_.round()) +
          " produced a release that differs from the WAL frame");
    }
    ++replay_pos_;
  } else {
    LONGDP_RETURN_NOT_OK(wal_->Append(record));
    ++wal_rounds_;
  }
  if (options_.snapshot_every > 0 &&
      hooks_.round() % options_.snapshot_every == 0) {
    // After the append, so the on-disk snapshot never leads the log.
    LONGDP_RETURN_NOT_OK(Checkpoint());
  }
  return Status::OK();
}

Status DurableSession::Checkpoint() {
  std::ostringstream payload;
  LONGDP_RETURN_NOT_OK(hooks_.save(payload));
  SnapshotMeta meta;
  meta.kind = hooks_.kind;
  meta.format_version = hooks_.format_version;
  meta.seed = hooks_.seed;
  meta.round = hooks_.round();
  return WriteSnapshot(snapshot_path_, meta, payload.str());
}

}  // namespace persist
}  // namespace longdp
