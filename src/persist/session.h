// Durable continual-release sessions: snapshot + WAL + crash recovery.
//
// A session owns two files in its directory:
//
//   snapshot.longdp — the synthesizer's full checkpoint, wrapped in the
//                     checksummed snapshot format (persist/snapshot.h);
//                     atomically replaced every `snapshot_every` rounds.
//   wal.longdp      — one checksummed frame per observed round holding the
//                     round's release record (persist/wal.h). Never
//                     truncated by snapshotting: it IS the durable release
//                     log of the run.
//
// Ordering invariant: the WAL frame for round t is fsynced BEFORE any
// snapshot at round t is cut, so on disk snapshot_round <= wal_rounds
// always holds. A crash between the two leaves a snapshot that is merely
// stale, never ahead of the log.
//
// Recovery (RecoveryManager): read the WAL tolerantly and truncate a torn
// tail (the one legitimate damage a crash can cause); restore the
// synthesizer from the snapshot if present (fresh otherwise); the rounds
// between the snapshot and the WAL head become the REPLAY REGION. The
// caller re-feeds those rounds' input data (deterministic pipelines can
// regenerate it); the session verifies each re-observed release record is
// byte-identical to the WAL frame — any divergence is DataLoss, because
// it means the rebuilt state would contradict what was already published.
// Since all synthesizer randomness is keyed by (seed, round), replay is
// exact at ANY shard/thread grid, including one different from the
// original run's.

#ifndef LONGDP_PERSIST_SESSION_H_
#define LONGDP_PERSIST_SESSION_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "persist/wal.h"
#include "util/status.h"

namespace longdp {
namespace persist {

/// Type-erased view of a synthesizer for the durability layer. The
/// bindings in persist/bindings.h construct these for the three concrete
/// synthesizers; tests construct cut-down ones directly.
struct SynthesizerHooks {
  /// Synthesizer family token stored in the snapshot header
  /// (e.g. "cumulative"); recovery refuses a snapshot of another kind.
  std::string kind;
  /// The SaveCheckpoint format version, for the snapshot header.
  int64_t format_version = 0;
  /// Substream root seed of the run; recovery refuses a snapshot taken
  /// under a different seed (its replay would diverge from the WAL).
  uint64_t seed = 0;
  /// Serializes the synthesizer (SaveCheckpoint).
  std::function<Status(std::ostream&)> save;
  /// Replaces the synthesizer with one restored from the stream
  /// (LoadCheckpoint); must consume the entire payload.
  std::function<Status(std::istream&)> restore;
  /// Feeds one round of per-user input data.
  std::function<Status(const std::vector<uint8_t>&)> observe;
  /// Rounds observed so far (t).
  std::function<int64_t()> round;
  /// The just-observed round's release record — the bytes that go in the
  /// WAL frame and are compared during replay.
  std::function<std::string()> release_record;
};

struct RecoveryReport {
  bool had_snapshot = false;
  int64_t snapshot_round = 0;  ///< round the synthesizer was restored to
  int64_t wal_rounds = 0;      ///< valid frames found in the log
  bool torn_tail_truncated = false;
  /// wal_rounds - snapshot_round: input rounds the caller must re-feed
  /// before the session starts appending new frames.
  int64_t replay_rounds = 0;
};

/// The recovery half of the session, usable standalone in tests: reads the
/// log and snapshot, repairs the one crash-legitimate damage (torn WAL
/// tail), restores the synthesizer, and hands back the release records the
/// caller must replay through ObserveRound verification.
class RecoveryManager {
 public:
  static Result<RecoveryReport> Recover(const std::string& snapshot_path,
                                        const std::string& wal_path,
                                        const SynthesizerHooks& hooks,
                                        std::vector<std::string>* replay);
};

class DurableSession {
 public:
  struct Options {
    /// Directory holding snapshot.longdp and wal.longdp; created (one
    /// level) if missing.
    std::string dir;
    /// Cut a snapshot every this many rounds (after the WAL append).
    /// 0 disables automatic snapshots (Checkpoint() still works).
    int64_t snapshot_every = 16;
  };

  /// Opens the session, running recovery first (see RecoveryManager).
  static Result<std::unique_ptr<DurableSession>> Open(
      const Options& options, SynthesizerHooks hooks);

  /// Feeds one round: observe, then verify-against-WAL (replay region) or
  /// append-to-WAL (new rounds), then maybe snapshot.
  Status ObserveRound(const std::vector<uint8_t>& data);

  /// Cuts a snapshot of the current state immediately.
  Status Checkpoint();

  /// Rounds the synthesizer has observed (including replayed ones).
  int64_t round() const { return hooks_.round(); }
  /// Rounds durable in the WAL.
  int64_t wal_rounds() const { return wal_rounds_; }
  /// Replay-region rounds the caller still must re-feed.
  int64_t replay_remaining() const {
    return static_cast<int64_t>(replay_records_.size() - replay_pos_);
  }
  const RecoveryReport& recovery() const { return report_; }

  static std::string SnapshotPath(const std::string& dir) {
    return dir + "/snapshot.longdp";
  }
  static std::string WalPath(const std::string& dir) {
    return dir + "/wal.longdp";
  }

 private:
  DurableSession() = default;

  Options options_;
  SynthesizerHooks hooks_;
  std::string snapshot_path_;
  std::unique_ptr<WalWriter> wal_;
  std::vector<std::string> replay_records_;
  size_t replay_pos_ = 0;
  int64_t wal_rounds_ = 0;
  RecoveryReport report_;
};

}  // namespace persist
}  // namespace longdp

#endif  // LONGDP_PERSIST_SESSION_H_
