#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "persist/crc32c.h"
#include "persist/posix_io.h"
#include "stream/state_io.h"

namespace longdp {
namespace persist {

namespace {
constexpr char kSnapshotMagicPrefix[] = "longdp-snapshot-";
constexpr char kSnapshotMagic[] = "longdp-snapshot-v1";

bool ValidKindToken(const std::string& kind) {
  if (kind.empty()) return false;
  for (char c : kind) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

Status WriteEncodedToFd(int fd, const std::string& path,
                        const std::string& bytes) {
  LONGDP_RETURN_NOT_OK(WriteAllFd(fd, path, bytes.data(), bytes.size()));
  return SyncFd(fd, path);
}
}  // namespace

std::string EncodeSnapshot(const SnapshotMeta& meta,
                           const std::string& payload) {
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x",
                Crc32c(payload.data(), payload.size()));
  std::ostringstream out;
  out << kSnapshotMagic << " " << meta.kind << " " << meta.format_version
      << " " << meta.seed << " " << meta.round << " " << payload.size()
      << " " << crc_hex << "\n";
  out << payload;
  return out.str();
}

Result<Snapshot> DecodeSnapshot(const std::string& bytes) {
  const size_t eol = bytes.find('\n');
  if (eol == std::string::npos) {
    return Status::InvalidArgument("not a snapshot: no header line");
  }
  std::istringstream header(bytes.substr(0, eol));
  std::string magic;
  if (!(header >> magic)) {
    return Status::InvalidArgument("not a snapshot: empty header");
  }
  if (magic != kSnapshotMagic) {
    if (magic.rfind(kSnapshotMagicPrefix, 0) == 0) {
      return Status::InvalidArgument("unsupported snapshot version '" +
                                     magic + "'; this build reads " +
                                     kSnapshotMagic);
    }
    return Status::InvalidArgument("not a snapshot");
  }
  namespace sio = longdp::stream::state_io;
  Snapshot snap;
  if (!(header >> snap.meta.kind) || !ValidKindToken(snap.meta.kind)) {
    return Status::InvalidArgument("malformed snapshot kind");
  }
  LONGDP_ASSIGN_OR_RETURN(snap.meta.format_version, sio::ReadInt(header));
  LONGDP_ASSIGN_OR_RETURN(snap.meta.seed, sio::ReadCursor(header));
  LONGDP_ASSIGN_OR_RETURN(snap.meta.round, sio::ReadInt(header));
  LONGDP_ASSIGN_OR_RETURN(int64_t declared, sio::ReadInt(header));
  std::string crc_tok;
  if (!(header >> crc_tok) || crc_tok.size() != 8) {
    return Status::InvalidArgument("malformed snapshot checksum field");
  }
  LONGDP_RETURN_NOT_OK(sio::ExpectExhausted(header, "snapshot header"));
  if (snap.meta.format_version < 0 || snap.meta.round < 0 || declared < 0) {
    return Status::InvalidArgument("malformed snapshot header");
  }
  char* end = nullptr;
  const unsigned long declared_crc = std::strtoul(crc_tok.c_str(), &end, 16);
  if (*end != '\0') {
    return Status::InvalidArgument("malformed snapshot checksum field");
  }

  const size_t have = bytes.size() - (eol + 1);
  const size_t want = static_cast<size_t>(declared);
  if (have < want) {
    return Status::DataLoss("snapshot truncated: header declares " +
                            std::to_string(want) + " payload bytes, file has " +
                            std::to_string(have));
  }
  if (have > want) {
    return Status::DataLoss("snapshot has " + std::to_string(have - want) +
                            " trailing bytes past the declared payload");
  }
  snap.payload = bytes.substr(eol + 1, want);
  const uint32_t actual_crc =
      Crc32c(snap.payload.data(), snap.payload.size());
  if (actual_crc != static_cast<uint32_t>(declared_crc)) {
    char actual_hex[16];
    std::snprintf(actual_hex, sizeof(actual_hex), "%08x", actual_crc);
    return Status::DataLoss("snapshot checksum mismatch: header " + crc_tok +
                            ", payload " + actual_hex);
  }
  return snap;
}

Status WriteSnapshot(const std::string& path, const SnapshotMeta& meta,
                     const std::string& payload) {
  const std::string encoded = EncodeSnapshot(meta, payload);
  const std::string tmp = path + ".tmp";
  LONGDP_ASSIGN_OR_RETURN(
      int fd, OpenFd(tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644));
  Status write_status = WriteEncodedToFd(fd, tmp, encoded);
  ::close(fd);
  if (!write_status.ok()) {
    ::unlink(tmp.c_str());  // best-effort cleanup of the partial temp file
    return write_status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Status::IOError("rename '" + tmp + "' over '" + path +
                                "' failed");
    ::unlink(tmp.c_str());
    return st;
  }
  // The rename itself must survive a crash: fsync the directory entry.
  return SyncParentDir(path);
}

Status WriteSnapshotDirect(const std::string& path, const SnapshotMeta& meta,
                           const std::string& payload) {
  const std::string encoded = EncodeSnapshot(meta, payload);
  LONGDP_ASSIGN_OR_RETURN(
      int fd, OpenFd(path, O_WRONLY | O_CREAT | O_TRUNC, 0644));
  Status write_status = WriteEncodedToFd(fd, path, encoded);
  ::close(fd);
  return write_status;
}

Result<Snapshot> ReadSnapshot(const std::string& path) {
  std::string bytes;
  LONGDP_RETURN_NOT_OK(ReadFileBytes(path, &bytes));
  return DecodeSnapshot(bytes);
}

}  // namespace persist
}  // namespace longdp
