// Versioned, checksummed snapshot files for synthesizer state.
//
// A snapshot is a single file:
//
//   longdp-snapshot-v1 <kind> <format_version> <seed> <round> <bytes> <crc>\n
//   <payload: exactly <bytes> bytes>
//
// The header line is plain text (kind is a token like "cumulative"; crc is
// the 8-hex-digit CRC32C of the payload). The payload is the synthesizer's
// own SaveCheckpoint output, treated here as opaque bytes — the snapshot
// layer adds integrity (checksum, exact length) and identity (kind, format
// version, seed, round) on top, so recovery can refuse a snapshot from the
// wrong synthesizer, seed, or format before feeding it to a parser.
//
// Durability: WriteSnapshot writes to `<path>.tmp`, fsyncs the file,
// renames over `path`, and fsyncs the parent directory — after a crash the
// path holds either the complete old snapshot or the complete new one,
// never a prefix. (Single writer per path; the fixed temp name is not
// concurrency-safe.)
//
// Status taxonomy (tests pin these):
//   NotFound         — no file at path
//   InvalidArgument  — not a snapshot, unsupported snapshot version,
//                      malformed header, identity mismatch
//   DataLoss         — payload shorter/longer than the header declares, or
//                      checksum mismatch (torn write / bit rot)
//   IOError          — the OS call itself failed (open/read/write/fsync)

#ifndef LONGDP_PERSIST_SNAPSHOT_H_
#define LONGDP_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace longdp {
namespace persist {

struct SnapshotMeta {
  std::string kind;            ///< synthesizer family, e.g. "cumulative"
  int64_t format_version = 0;  ///< the payload's checkpoint format version
  uint64_t seed = 0;           ///< substream root seed of the run
  int64_t round = 0;           ///< rounds observed when the snapshot was cut
};

struct Snapshot {
  SnapshotMeta meta;
  std::string payload;
};

/// Serializes meta + payload into the wire format (header line + payload).
std::string EncodeSnapshot(const SnapshotMeta& meta,
                           const std::string& payload);

/// Parses wire-format bytes. See the status taxonomy above.
Result<Snapshot> DecodeSnapshot(const std::string& bytes);

/// Atomically replaces `path` with the encoded snapshot (temp + fsync +
/// rename + directory fsync).
Status WriteSnapshot(const std::string& path, const SnapshotMeta& meta,
                     const std::string& payload);

/// Writes the encoded snapshot straight to `path` with no temp/rename —
/// NOT crash-atomic. For character devices and write-failure injection
/// (e.g. /dev/full) where the atomic dance cannot apply; production
/// snapshots use WriteSnapshot.
Status WriteSnapshotDirect(const std::string& path, const SnapshotMeta& meta,
                           const std::string& payload);

/// Reads and decodes the snapshot at `path`.
Result<Snapshot> ReadSnapshot(const std::string& path);

}  // namespace persist
}  // namespace longdp

#endif  // LONGDP_PERSIST_SNAPSHOT_H_
