#include "persist/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "persist/crc32c.h"
#include "persist/posix_io.h"

namespace longdp {
namespace persist {

namespace {
constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

void PutU32Le(uint32_t v, char* out) {
  out[0] = static_cast<char>(v & 0xFFu);
  out[1] = static_cast<char>((v >> 8) & 0xFFu);
  out[2] = static_cast<char>((v >> 16) & 0xFFu);
  out[3] = static_cast<char>((v >> 24) & 0xFFu);
}

uint32_t GetU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}
}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path) {
  // O_APPEND keeps every frame write at the tail even if recovery and the
  // writer race on the same fd-level offset.
  LONGDP_ASSIGN_OR_RETURN(
      int fd, OpenFd(path, O_WRONLY | O_CREAT | O_APPEND, 0644));
  Status dir_sync = SyncParentDir(path);
  if (!dir_sync.ok()) {
    ::close(fd);
    return dir_sync;
  }
  return std::unique_ptr<WalWriter>(new WalWriter(fd, path));
}

WalWriter::~WalWriter() {
  // Close without fsync: Append already synced everything it promised.
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(const std::string& record) {
  if (record.size() > kMaxWalRecordBytes) {
    return Status::InvalidArgument(
        "WAL record of " + std::to_string(record.size()) +
        " bytes exceeds the frame cap");
  }
  // One buffered write per frame: header and payload land in a single
  // write(2) so a crash tears at most one frame, never interleaves two.
  std::string frame;
  frame.resize(kFrameHeaderBytes);
  PutU32Le(static_cast<uint32_t>(record.size()), &frame[0]);
  PutU32Le(Crc32c(record.data(), record.size()), &frame[4]);
  frame += record;
  LONGDP_RETURN_NOT_OK(WriteAllFd(fd_, path_, frame.data(), frame.size()));
  return SyncFd(fd_, path_);
}

Result<WalContents> ReadWal(const std::string& path, WalReadMode mode) {
  std::string bytes;
  LONGDP_RETURN_NOT_OK(ReadFileBytes(path, &bytes));
  WalContents out;
  size_t pos = 0;
  while (pos < bytes.size()) {
    std::string bad;
    if (bytes.size() - pos < kFrameHeaderBytes) {
      bad = "torn frame header at offset " + std::to_string(pos);
    } else {
      const uint32_t len = GetU32Le(&bytes[pos]);
      const uint32_t declared_crc = GetU32Le(&bytes[pos + 4]);
      if (len > kMaxWalRecordBytes) {
        bad = "implausible frame length " + std::to_string(len) +
              " at offset " + std::to_string(pos);
      } else if (bytes.size() - pos - kFrameHeaderBytes < len) {
        bad = "torn frame payload at offset " + std::to_string(pos);
      } else {
        const char* payload = bytes.data() + pos + kFrameHeaderBytes;
        if (Crc32c(payload, len) != declared_crc) {
          bad = "frame checksum mismatch at offset " + std::to_string(pos);
        }
      }
    }
    if (!bad.empty()) {
      if (mode == WalReadMode::kStrict) {
        return Status::DataLoss("WAL '" + path + "': " + bad);
      }
      out.torn_tail = true;
      out.valid_bytes = pos;
      return out;
    }
    const uint32_t len = GetU32Le(&bytes[pos]);
    out.records.emplace_back(bytes, pos + kFrameHeaderBytes, len);
    pos += kFrameHeaderBytes + len;
  }
  out.valid_bytes = pos;
  return out;
}

Status TruncateWal(const std::string& path, uint64_t valid_bytes) {
  LONGDP_ASSIGN_OR_RETURN(int fd, OpenFd(path, O_WRONLY, 0));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat failed for '" + path + "': " +
                           std::strerror(errno));
  }
  if (static_cast<uint64_t>(st.st_size) < valid_bytes) {
    ::close(fd);
    return Status::InvalidArgument("refusing to grow WAL '" + path +
                                   "' by truncation");
  }
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    ::close(fd);
    return Status::IOError("ftruncate failed for '" + path + "': " +
                           std::strerror(errno));
  }
  Status sync = SyncFd(fd, path);
  ::close(fd);
  return sync;
}

}  // namespace persist
}  // namespace longdp
