// Append-only write-ahead log of per-round release records.
//
// The WAL is the system of record for what was RELEASED: each frame holds
// one round's release record (opaque bytes, in practice the text row the
// synthesizer published). Frames are length-prefixed and checksummed:
//
//   u32 LE payload length | u32 LE CRC32C(payload) | payload
//
// Recovery semantics: a crash mid-append leaves a torn final frame
// (short header, short payload, or bad checksum). kTolerateTornTail stops
// at the first bad frame and reports where the valid prefix ends so the
// caller can truncate and resume appending; kStrict turns any bad frame
// into DataLoss (used when the log is read as an archive, where damage
// must page a human rather than silently shorten history). Because
// snapshots never truncate the WAL, the log doubles as the complete,
// durable release history of the run.
//
// Status taxonomy: NotFound (no file), DataLoss (strict mode, any bad
// frame — torn header, torn payload, checksum mismatch, or an absurd
// length field, which the frame cap rejects before allocating), IOError
// (OS call failed).

#ifndef LONGDP_PERSIST_WAL_H_
#define LONGDP_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace longdp {
namespace persist {

/// Upper bound on a single frame's payload. Release records are rows of
/// text (well under a megabyte even at census scale); a length field past
/// this is corruption, not a big record.
constexpr uint32_t kMaxWalRecordBytes = 1u << 30;

class WalWriter {
 public:
  /// Opens (creating if needed) the log for appending. Creation is made
  /// durable with a parent-directory fsync.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one framed record and fsyncs. On return the record is
  /// durable; on error the file may hold a torn frame, which the next
  /// recovery will detect and truncate.
  Status Append(const std::string& record);

  const std::string& path() const { return path_; }

 private:
  WalWriter(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
};

enum class WalReadMode {
  kStrict,            ///< any bad frame is DataLoss
  kTolerateTornTail,  ///< stop at the first bad frame, report the cut
};

struct WalContents {
  std::vector<std::string> records;
  /// True when tolerant reading stopped before the end of the file.
  bool torn_tail = false;
  /// Byte offset of the end of the last valid frame (== file size when
  /// the log is clean).
  uint64_t valid_bytes = 0;
};

/// Reads every frame of the log at `path`. An empty or missing-at-creation
/// log is valid (zero records); a missing FILE is NotFound.
Result<WalContents> ReadWal(const std::string& path, WalReadMode mode);

/// Truncates the log to `valid_bytes` (recovery cutting a torn tail) and
/// fsyncs. Refuses to grow the file.
Status TruncateWal(const std::string& path, uint64_t valid_bytes);

}  // namespace persist
}  // namespace longdp

#endif  // LONGDP_PERSIST_WAL_H_
