#include "query/cumulative_query.h"

namespace longdp {
namespace query {

Result<double> EvaluateCumulativeOnDataset(
    const data::LongitudinalDataset& dataset, int64_t t, int64_t b) {
  if (t < 1 || t > dataset.rounds()) {
    return Status::OutOfRange("query time t must be in [1, rounds()]");
  }
  if (b < 0 || b > dataset.horizon()) {
    return Status::OutOfRange("threshold b must be in [0, horizon]");
  }
  if (dataset.num_users() == 0) return 0.0;
  if (b == 0) return 1.0;
  int64_t count = 0;
  for (int64_t i = 0; i < dataset.num_users(); ++i) {
    if (dataset.HammingWeight(i, t) >= b) ++count;
  }
  return static_cast<double>(count) /
         static_cast<double>(dataset.num_users());
}

Result<int64_t> CountOccExactFromThresholds(
    std::span<const int64_t> thresholds_t2,
    std::span<const int64_t> thresholds_t1, int64_t b) {
  if (b < 1) {
    return Status::InvalidArgument("CountOcc_=b requires b >= 1");
  }
  if (thresholds_t1.size() != thresholds_t2.size() ||
      static_cast<size_t>(b) >= thresholds_t2.size()) {
    return Status::InvalidArgument(
        "threshold rows must have equal size > b");
  }
  return thresholds_t2[static_cast<size_t>(b)] -
         thresholds_t1[static_cast<size_t>(b - 1)];
}

Result<int64_t> CountOccExactFromThresholds(
    const std::vector<int64_t>& thresholds_t2,
    const std::vector<int64_t>& thresholds_t1, int64_t b) {
  return CountOccExactFromThresholds(std::span<const int64_t>(thresholds_t2),
                                     std::span<const int64_t>(thresholds_t1),
                                     b);
}

}  // namespace query
}  // namespace longdp
