// Cumulative time queries (paper Section 2.1):
//   c^t_b(x) = I( x^1 + ... + x^t >= b ),
// averaged over users — "what fraction of individuals have been in state 1
// for at least b of the first t periods".

#ifndef LONGDP_QUERY_CUMULATIVE_QUERY_H_
#define LONGDP_QUERY_CUMULATIVE_QUERY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/longitudinal_dataset.h"
#include "util/status.h"

namespace longdp {
namespace data {
class LongitudinalDataset;
}

namespace query {

/// Fraction of users in `dataset` with Hamming weight >= b through round t.
/// b = 0 always answers 1. Requires 1 <= t <= rounds(), 0 <= b <= horizon.
Result<double> EvaluateCumulativeOnDataset(
    const data::LongitudinalDataset& dataset, int64_t t, int64_t b);

/// The "exactly b ones between t1 and t2" count that the paper's Section 1.1
/// derives from cumulative counts: CountOcc_{=b}(t1, t2) =
/// (#weight >= b at t2) - (#weight >= b-1 at t1), evaluated on threshold-
/// count rows (index = b, as produced by CumulativeCounts or a synthesizer's
/// released Shat rows). Requires b >= 1 and both rows of equal size > b.
/// The span form is the primitive; it serves threshold rows in place (e.g.
/// straight off an mmap'd release archive).
Result<int64_t> CountOccExactFromThresholds(
    std::span<const int64_t> thresholds_t2,
    std::span<const int64_t> thresholds_t1, int64_t b);
Result<int64_t> CountOccExactFromThresholds(
    const std::vector<int64_t>& thresholds_t2,
    const std::vector<int64_t>& thresholds_t1, int64_t b);

}  // namespace query
}  // namespace longdp

#endif  // LONGDP_QUERY_CUMULATIVE_QUERY_H_
