#include "query/debias.h"

namespace longdp {
namespace query {

namespace {
Status ValidateSpec(const PaddingSpec& spec, int pred_width) {
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(spec.synth_width));
  if (pred_width > spec.synth_width) {
    return Status::InvalidArgument(
        "cannot debias a query wider than the synthesizer window");
  }
  if (spec.npad < 0) {
    return Status::InvalidArgument("npad must be >= 0");
  }
  if (spec.true_n <= 0) {
    return Status::InvalidArgument("true population size must be > 0");
  }
  return Status::OK();
}
}  // namespace

Result<int64_t> PaddingCount(const WindowPredicate& pred,
                             const PaddingSpec& spec) {
  LONGDP_RETURN_NOT_OK(ValidateSpec(spec, pred.width()));
  const int64_t lift = static_cast<int64_t>(
      util::NumPatterns(spec.synth_width - pred.width()));
  // npad * lift * matching can exceed int64 for large public padding and
  // wide windows; an unchecked wrap here would silently debias by a garbage
  // (possibly negative) pad. Checked multiplies turn that into a hard error.
  int64_t pad = 0;
  if (__builtin_mul_overflow(spec.npad, lift, &pad) ||
      __builtin_mul_overflow(pad, pred.MatchingPatternCount(), &pad)) {
    return Status::InvalidArgument(
        "padding count overflows int64 (npad=" + std::to_string(spec.npad) +
        ", lift=2^" + std::to_string(spec.synth_width - pred.width()) +
        ", matching=" + std::to_string(pred.MatchingPatternCount()) + ")");
  }
  return pad;
}

Result<double> DebiasedFraction(int64_t synthetic_count,
                                const WindowPredicate& pred,
                                const PaddingSpec& spec) {
  LONGDP_ASSIGN_OR_RETURN(int64_t pad, PaddingCount(pred, spec));
  return static_cast<double>(synthetic_count - pad) /
         static_cast<double>(spec.true_n);
}

Result<double> BiasedFraction(int64_t synthetic_count,
                              int64_t synthetic_population) {
  if (synthetic_population <= 0) {
    // Previously this silently answered 0.0, which made an empty or corrupt
    // release indistinguishable from genuine 0% prevalence.
    return Status::InvalidArgument(
        "synthetic population must be > 0 (got " +
        std::to_string(synthetic_population) + ")");
  }
  return static_cast<double>(synthetic_count) /
         static_cast<double>(synthetic_population);
}

Result<double> PaddingValue(const LinearWindowQuery& q,
                            const PaddingSpec& spec) {
  LONGDP_RETURN_NOT_OK(ValidateSpec(spec, q.width()));
  if (q.width() != spec.synth_width) {
    return Status::InvalidArgument(
        "linear queries must be expressed over the synthesizer width k");
  }
  double sum_w = 0.0;
  for (double w : q.weights()) sum_w += w;
  return static_cast<double>(spec.npad) * sum_w;
}

Result<double> DebiasedLinearValue(double synthetic_value,
                                   const LinearWindowQuery& q,
                                   const PaddingSpec& spec) {
  LONGDP_ASSIGN_OR_RETURN(double pad, PaddingValue(q, spec));
  return (synthetic_value - pad) / static_cast<double>(spec.true_n);
}

}  // namespace query
}  // namespace longdp
