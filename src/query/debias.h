// Padding debiaser (paper Section 3.2, Corollary 3.3 discussion).
//
// Algorithm 1 pads every width-k histogram bin with n_pad fake records, so a
// raw proportion computed on the synthetic data is biased upward. The
// padding parameters (n_pad, k) are public, so an analyst can subtract the
// query's answer on the padding data:
//
//   debiased count  =  count on synthetic data  -  n_pad * (number of
//                      width-k patterns the query matches)
//
// and normalize by the true population size n (also public in the paper's
// setting). For a width-k' predicate lifted to width k, the padding matches
// 2^(k-k') * |{k'-patterns satisfying the predicate}| bins.

#ifndef LONGDP_QUERY_DEBIAS_H_
#define LONGDP_QUERY_DEBIAS_H_

#include <cstdint>

#include "query/window_query.h"
#include "util/status.h"

namespace longdp {
namespace query {

/// Public padding facts of a fixed-window synthesizer release.
struct PaddingSpec {
  int synth_width = 0;   ///< the synthesizer's k
  int64_t npad = 0;      ///< fake records added per width-k bin
  int64_t true_n = 0;    ///< original population size n
};

/// The number of synthetic records the padding alone contributes to the
/// predicate's count (n_pad per matching extended width-k bin).
/// InvalidArgument if the product overflows int64 — an overflow would
/// otherwise wrap into a garbage (possibly negative) debiased estimate.
Result<int64_t> PaddingCount(const WindowPredicate& pred,
                             const PaddingSpec& spec);

/// Debiased proportion estimate: (synthetic_count - PaddingCount) / true_n.
Result<double> DebiasedFraction(int64_t synthetic_count,
                                const WindowPredicate& pred,
                                const PaddingSpec& spec);

/// Raw (biased) proportion: synthetic_count / synthetic_population. Provided
/// for symmetry so experiment code reads declaratively. InvalidArgument when
/// synthetic_population <= 0: an empty (or corrupt) release must surface as
/// an error, not masquerade as 0% prevalence.
Result<double> BiasedFraction(int64_t synthetic_count,
                              int64_t synthetic_population);

/// Padding contribution to a real-weighted linear query: n_pad * sum_s w_s.
Result<double> PaddingValue(const LinearWindowQuery& q,
                            const PaddingSpec& spec);

/// Debiased value of a linear query: (value_on_synth - PaddingValue)/true_n,
/// where value_on_synth is the unnormalized sum over synthetic records.
Result<double> DebiasedLinearValue(double synthetic_value,
                                   const LinearWindowQuery& q,
                                   const PaddingSpec& spec);

}  // namespace query
}  // namespace longdp

#endif  // LONGDP_QUERY_DEBIAS_H_
