#include "query/spells.h"

namespace longdp {
namespace query {

namespace {
Status ValidateTime(const data::LongitudinalDataset& dataset, int64_t t) {
  if (t < 1 || t > dataset.rounds()) {
    return Status::OutOfRange("time t must be in [1, rounds()]");
  }
  return Status::OK();
}

// Invokes fn(user, spell_length) for every maximal 1-run in rounds 1..t.
template <typename Fn>
void ForEachSpell(const data::LongitudinalDataset& dataset, int64_t t,
                  Fn&& fn) {
  for (int64_t i = 0; i < dataset.num_users(); ++i) {
    int64_t run = 0;
    for (int64_t tt = 1; tt <= t; ++tt) {
      if (dataset.Bit(i, tt)) {
        ++run;
      } else if (run > 0) {
        fn(i, run);
        run = 0;
      }
    }
    if (run > 0) fn(i, run);  // spell ongoing at t
  }
}
}  // namespace

Result<std::vector<int64_t>> SpellLengthHistogram(
    const data::LongitudinalDataset& dataset, int64_t t) {
  LONGDP_RETURN_NOT_OK(ValidateTime(dataset, t));
  std::vector<int64_t> hist(static_cast<size_t>(t) + 1, 0);
  ForEachSpell(dataset, t, [&](int64_t, int64_t len) {
    ++hist[static_cast<size_t>(len)];
  });
  return hist;
}

Result<double> EverHadSpell(const data::LongitudinalDataset& dataset,
                            int64_t t, int64_t min_len) {
  LONGDP_RETURN_NOT_OK(ValidateTime(dataset, t));
  if (min_len < 1) {
    return Status::InvalidArgument("min_len must be >= 1");
  }
  if (dataset.num_users() == 0) return 0.0;
  std::vector<uint8_t> hit(static_cast<size_t>(dataset.num_users()), 0);
  ForEachSpell(dataset, t, [&](int64_t user, int64_t len) {
    if (len >= min_len) hit[static_cast<size_t>(user)] = 1;
  });
  int64_t count = 0;
  for (uint8_t h : hit) count += h;
  return static_cast<double>(count) /
         static_cast<double>(dataset.num_users());
}

Result<double> OngoingSpellAtLeast(const data::LongitudinalDataset& dataset,
                                   int64_t t, int64_t min_len) {
  LONGDP_RETURN_NOT_OK(ValidateTime(dataset, t));
  if (min_len < 1) {
    return Status::InvalidArgument("min_len must be >= 1");
  }
  if (dataset.num_users() == 0) return 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < dataset.num_users(); ++i) {
    int64_t run = 0;
    for (int64_t tt = t; tt >= 1 && dataset.Bit(i, tt); --tt) ++run;
    if (run >= min_len) ++count;
  }
  return static_cast<double>(count) /
         static_cast<double>(dataset.num_users());
}

Result<double> MeanSpellLength(const data::LongitudinalDataset& dataset,
                               int64_t t) {
  LONGDP_RETURN_NOT_OK(ValidateTime(dataset, t));
  int64_t total_len = 0, spells = 0;
  ForEachSpell(dataset, t, [&](int64_t, int64_t len) {
    total_len += len;
    ++spells;
  });
  if (spells == 0) return 0.0;
  return static_cast<double>(total_len) / static_cast<double>(spells);
}

}  // namespace query
}  // namespace longdp
