#include "query/spells.h"

#include <algorithm>
#include <bit>
#include <vector>

namespace longdp {
namespace query {

namespace {

// The span form validates shape once up front: a panel is rectangular, so
// every round view must cover the same population. (Dataset wrappers are
// rectangular by construction; archive-served views are re-checked here
// because the entries could come from anywhere.)
Status ValidateRounds(std::span<const data::RoundView> rounds, int64_t t) {
  if (t < 1 || t > static_cast<int64_t>(rounds.size())) {
    return Status::OutOfRange("time t must be in [1, rounds.size()]");
  }
  for (size_t tt = 1; tt < static_cast<size_t>(t); ++tt) {
    if (rounds[tt].size() != rounds[0].size()) {
      return Status::InvalidArgument(
          "all rounds must cover the same population");
    }
  }
  return Status::OK();
}

// Invokes fn(user, spell_length) for every maximal 1-run in rounds 1..t.
// Iterates round-outer over the packed columns (each 64-user block is one
// word load, and the storage is contiguous in that order), carrying one
// running spell length per user; spells are therefore emitted in order of
// the round where they END, not grouped by user — all callers aggregate
// order-insensitively.
template <typename Fn>
void ForEachSpell(std::span<const data::RoundView> rounds, int64_t t,
                  Fn&& fn) {
  const int64_t n = rounds.empty() ? 0 : rounds[0].size();
  std::vector<int64_t> run(static_cast<size_t>(n), 0);
  for (int64_t tt = 1; tt <= t; ++tt) {
    const data::RoundView round = rounds[static_cast<size_t>(tt - 1)];
    const uint64_t* words = round.words();
    const size_t num_words = round.num_words();
    for (size_t w = 0; w < num_words; ++w) {
      const uint64_t bits = words[w];
      const int64_t base = static_cast<int64_t>(w) << 6;
      const int count = static_cast<int>(std::min<int64_t>(64, n - base));
      if (bits == ~uint64_t{0} && count == 64) {
        // Whole block reported 1: every spell extends, nothing ends.
        for (int j = 0; j < 64; ++j) ++run[static_cast<size_t>(base + j)];
        continue;
      }
      for (int j = 0; j < count; ++j) {
        const int64_t i = base + j;
        if ((bits >> j) & 1) {
          ++run[static_cast<size_t>(i)];
        } else if (run[static_cast<size_t>(i)] > 0) {
          fn(i, run[static_cast<size_t>(i)]);
          run[static_cast<size_t>(i)] = 0;
        }
      }
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    if (run[static_cast<size_t>(i)] > 0) {
      fn(i, run[static_cast<size_t>(i)]);  // spell ongoing at t
    }
  }
}

// Collects the zero-copy round views of a dataset so the dataset overloads
// can forward to the span primitives.
std::vector<data::RoundView> DatasetRounds(
    const data::LongitudinalDataset& dataset) {
  std::vector<data::RoundView> rounds;
  rounds.reserve(static_cast<size_t>(dataset.rounds()));
  for (int64_t tt = 1; tt <= dataset.rounds(); ++tt) {
    rounds.push_back(dataset.Round(tt));
  }
  return rounds;
}

}  // namespace

Result<std::vector<int64_t>> SpellLengthHistogram(
    std::span<const data::RoundView> rounds, int64_t t) {
  LONGDP_RETURN_NOT_OK(ValidateRounds(rounds, t));
  std::vector<int64_t> hist(static_cast<size_t>(t) + 1, 0);
  ForEachSpell(rounds, t, [&](int64_t, int64_t len) {
    ++hist[static_cast<size_t>(len)];
  });
  return hist;
}

Result<std::vector<int64_t>> SpellLengthHistogram(
    const data::LongitudinalDataset& dataset, int64_t t) {
  return SpellLengthHistogram(std::span<const data::RoundView>(
                                  DatasetRounds(dataset)),
                              t);
}

Result<double> EverHadSpell(std::span<const data::RoundView> rounds,
                            int64_t t, int64_t min_len) {
  LONGDP_RETURN_NOT_OK(ValidateRounds(rounds, t));
  if (min_len < 1) {
    return Status::InvalidArgument("min_len must be >= 1");
  }
  const int64_t n = rounds[0].size();
  if (n == 0) return 0.0;
  std::vector<uint8_t> hit(static_cast<size_t>(n), 0);
  ForEachSpell(rounds, t, [&](int64_t user, int64_t len) {
    if (len >= min_len) hit[static_cast<size_t>(user)] = 1;
  });
  int64_t count = 0;
  for (uint8_t h : hit) count += h;
  return static_cast<double>(count) / static_cast<double>(n);
}

Result<double> EverHadSpell(const data::LongitudinalDataset& dataset,
                            int64_t t, int64_t min_len) {
  return EverHadSpell(
      std::span<const data::RoundView>(DatasetRounds(dataset)), t, min_len);
}

Result<double> OngoingSpellAtLeast(std::span<const data::RoundView> rounds,
                                   int64_t t, int64_t min_len) {
  LONGDP_RETURN_NOT_OK(ValidateRounds(rounds, t));
  if (min_len < 1) {
    return Status::InvalidArgument("min_len must be >= 1");
  }
  const int64_t n = rounds[0].size();
  if (n == 0) return 0.0;
  if (t < min_len) return 0.0;
  // A trailing run of >= min_len ones ending at t is exactly the bitwise
  // AND of the last min_len round words: fully word-parallel, 64 users at
  // a time, with early exit once a block's survivors hit zero.
  const size_t num_words = rounds[static_cast<size_t>(t - 1)].num_words();
  int64_t count = 0;
  for (size_t w = 0; w < num_words; ++w) {
    const int64_t base = static_cast<int64_t>(w) << 6;
    const int valid = static_cast<int>(std::min<int64_t>(64, n - base));
    uint64_t survivors =
        valid == 64 ? ~uint64_t{0} : (uint64_t{1} << valid) - 1;
    for (int64_t tt = t - min_len + 1; tt <= t && survivors != 0; ++tt) {
      survivors &= rounds[static_cast<size_t>(tt - 1)].words()[w];
    }
    count += std::popcount(survivors);
  }
  return static_cast<double>(count) / static_cast<double>(n);
}

Result<double> OngoingSpellAtLeast(const data::LongitudinalDataset& dataset,
                                   int64_t t, int64_t min_len) {
  return OngoingSpellAtLeast(
      std::span<const data::RoundView>(DatasetRounds(dataset)), t, min_len);
}

Result<double> MeanSpellLength(std::span<const data::RoundView> rounds,
                               int64_t t) {
  LONGDP_RETURN_NOT_OK(ValidateRounds(rounds, t));
  int64_t total_len = 0, spells = 0;
  ForEachSpell(rounds, t, [&](int64_t, int64_t len) {
    total_len += len;
    ++spells;
  });
  if (spells == 0) return 0.0;
  return static_cast<double>(total_len) / static_cast<double>(spells);
}

Result<double> MeanSpellLength(const data::LongitudinalDataset& dataset,
                               int64_t t) {
  return MeanSpellLength(
      std::span<const data::RoundView>(DatasetRounds(dataset)), t);
}

}  // namespace query
}  // namespace longdp
