// Spell statistics — the individual-level trend queries the paper's
// introduction motivates ("lengths of unemployment spells", "number of
// synthetic individuals who have ever experienced a 6-month unemployment
// spell"). These are evaluated on any LongitudinalDataset, so the same
// analysis code runs on original and synthetic panels; on Algorithm 1's
// persistent cohort they are monotone over time by construction, the
// property the recompute baseline destroys.

#ifndef LONGDP_QUERY_SPELLS_H_
#define LONGDP_QUERY_SPELLS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/longitudinal_dataset.h"
#include "data/round_view.h"
#include "util/status.h"

namespace longdp {
namespace query {

// Every query comes in two forms. The span-of-RoundView form is the
// primitive: rounds[i] is the packed round i+1 of some panel, all views the
// same size, so the same word-level loops run over an in-memory dataset OR
// over bit-packed round columns served zero-copy from an mmap'd release
// archive — no rehydration into a LongitudinalDataset. The dataset form is
// a thin wrapper that collects the views and forwards, bit-identical by
// construction.

/// Histogram of maximal-run ("spell") lengths among 1-runs completed or
/// ongoing in rounds 1..t: result[l] = number of spells of length exactly
/// l, for l = 1..t (index 0 unused). A user contributes one entry per
/// maximal run of consecutive 1s. Requires 1 <= t <= rounds.size().
Result<std::vector<int64_t>> SpellLengthHistogram(
    std::span<const data::RoundView> rounds, int64_t t);
Result<std::vector<int64_t>> SpellLengthHistogram(
    const data::LongitudinalDataset& dataset, int64_t t);

/// Fraction of users who have EVER (within rounds 1..t) experienced a spell
/// of at least `min_len` consecutive 1s.
Result<double> EverHadSpell(std::span<const data::RoundView> rounds,
                            int64_t t, int64_t min_len);
Result<double> EverHadSpell(const data::LongitudinalDataset& dataset,
                            int64_t t, int64_t min_len);

/// Fraction of users whose CURRENT spell (a 1-run ending exactly at round
/// t) has length at least `min_len`.
Result<double> OngoingSpellAtLeast(std::span<const data::RoundView> rounds,
                                   int64_t t, int64_t min_len);
Result<double> OngoingSpellAtLeast(const data::LongitudinalDataset& dataset,
                                   int64_t t, int64_t min_len);

/// Mean spell length among all maximal 1-runs within rounds 1..t; 0 when no
/// spells exist.
Result<double> MeanSpellLength(std::span<const data::RoundView> rounds,
                               int64_t t);
Result<double> MeanSpellLength(const data::LongitudinalDataset& dataset,
                               int64_t t);

}  // namespace query
}  // namespace longdp

#endif  // LONGDP_QUERY_SPELLS_H_
