#include "query/window_query.h"

#include <cmath>

namespace longdp {
namespace query {

namespace {

class PatternEqualsPredicate : public WindowPredicate {
 public:
  PatternEqualsPredicate(util::Pattern s, int k) : s_(s), k_(k) {}
  int width() const override { return k_; }
  bool Matches(util::Pattern suffix) const override { return suffix == s_; }
  std::string name() const override {
    return "pattern=" + util::PatternToString(s_, k_);
  }

 private:
  util::Pattern s_;
  int k_;
};

class AtLeastOnesPredicate : public WindowPredicate {
 public:
  AtLeastOnesPredicate(int k, int m) : k_(k), m_(m) {}
  int width() const override { return k_; }
  bool Matches(util::Pattern suffix) const override {
    return util::Popcount(suffix) >= m_;
  }
  std::string name() const override {
    return ">=" + std::to_string(m_) + "-ones/" + std::to_string(k_);
  }

 private:
  int k_;
  int m_;
};

class ConsecutiveOnesPredicate : public WindowPredicate {
 public:
  ConsecutiveOnesPredicate(int k, int run) : k_(k), run_(run) {}
  int width() const override { return k_; }
  bool Matches(util::Pattern suffix) const override {
    return util::HasOnesRun(suffix, k_, run_);
  }
  std::string name() const override {
    return ">=" + std::to_string(run_) + "-consecutive/" + std::to_string(k_);
  }

 private:
  int k_;
  int run_;
};

class CustomPredicate : public WindowPredicate {
 public:
  CustomPredicate(int k, std::string name,
                  std::function<bool(util::Pattern)> fn)
      : k_(k), name_(std::move(name)), fn_(std::move(fn)) {}
  int width() const override { return k_; }
  bool Matches(util::Pattern suffix) const override { return fn_(suffix); }
  std::string name() const override { return name_; }

 private:
  int k_;
  std::string name_;
  std::function<bool(util::Pattern)> fn_;
};

}  // namespace

int64_t WindowPredicate::MatchingPatternCount() const {
  int64_t count = 0;
  for (util::Pattern s = 0; s < util::NumPatterns(width()); ++s) {
    if (Matches(s)) ++count;
  }
  return count;
}

WindowPredicatePtr MakePatternEquals(util::Pattern s, int k) {
  return std::make_shared<PatternEqualsPredicate>(s, k);
}

WindowPredicatePtr MakeAtLeastOnes(int k, int m) {
  return std::make_shared<AtLeastOnesPredicate>(k, m);
}

WindowPredicatePtr MakeConsecutiveOnes(int k, int run) {
  return std::make_shared<ConsecutiveOnesPredicate>(k, run);
}

WindowPredicatePtr MakeAllOnes(int k) {
  return std::make_shared<AtLeastOnesPredicate>(k, k);
}

WindowPredicatePtr MakeCustomPredicate(int k, std::string name,
                                       std::function<bool(util::Pattern)> fn) {
  return std::make_shared<CustomPredicate>(k, std::move(name), std::move(fn));
}

Result<double> EvaluateOnDataset(const WindowPredicate& pred,
                                 const data::LongitudinalDataset& dataset,
                                 int64_t t) {
  if (t < 1 || t > dataset.rounds()) {
    return Status::OutOfRange("query time t must be in [1, rounds()]");
  }
  if (dataset.num_users() == 0) return 0.0;
  int64_t count = 0;
  // Block pattern extraction: 64 users' suffixes from width-many packed
  // round words instead of per-user Bit() loads.
  dataset.ForEachSuffixPattern(t, pred.width(),
                               [&](int64_t, util::Pattern p) {
                                 if (pred.Matches(p)) ++count;
                               });
  return static_cast<double>(count) /
         static_cast<double>(dataset.num_users());
}

Result<int64_t> CountOnHistogram(const WindowPredicate& pred,
                                 std::span<const int64_t> hist,
                                 int hist_width) {
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(hist_width));
  if (pred.width() > hist_width) {
    return Status::InvalidArgument(
        "predicate width exceeds histogram width; only queries of width <= k "
        "are supported by a width-k synthesizer");
  }
  if (hist.size() != util::NumPatterns(hist_width)) {
    return Status::InvalidArgument("histogram size must be 2^hist_width");
  }
  int64_t count = 0;
  for (util::Pattern s = 0; s < hist.size(); ++s) {
    if (pred.Matches(util::Suffix(s, pred.width()))) {
      count += hist[s];
    }
  }
  return count;
}

Result<int64_t> CountOnHistogram(const WindowPredicate& pred,
                                 const std::vector<int64_t>& hist,
                                 int hist_width) {
  return CountOnHistogram(pred, std::span<const int64_t>(hist), hist_width);
}

Result<LinearWindowQuery> LinearWindowQuery::Create(
    int k, std::vector<double> weights) {
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(k));
  if (weights.size() != util::NumPatterns(k)) {
    return Status::InvalidArgument("weights size must be 2^k");
  }
  return LinearWindowQuery(k, std::move(weights));
}

Result<LinearWindowQuery> LinearWindowQuery::FromPredicate(
    const WindowPredicate& pred, int k) {
  LONGDP_RETURN_NOT_OK(util::ValidateWindow(k));
  if (pred.width() > k) {
    return Status::InvalidArgument("predicate width exceeds k");
  }
  std::vector<double> w(util::NumPatterns(k), 0.0);
  for (util::Pattern s = 0; s < w.size(); ++s) {
    if (pred.Matches(util::Suffix(s, pred.width()))) w[s] = 1.0;
  }
  return LinearWindowQuery(k, std::move(w));
}

double LinearWindowQuery::WeightL2Norm() const {
  double s = 0.0;
  for (double w : weights_) s += w * w;
  return std::sqrt(s);
}

Result<double> LinearWindowQuery::EvaluateOnHistogram(
    const std::vector<int64_t>& hist) const {
  if (hist.size() != weights_.size()) {
    return Status::InvalidArgument("histogram size must be 2^k");
  }
  double v = 0.0;
  for (size_t s = 0; s < hist.size(); ++s) {
    v += weights_[s] * static_cast<double>(hist[s]);
  }
  return v;
}

Result<double> LinearWindowQuery::EvaluateOnDataset(
    const data::LongitudinalDataset& dataset, int64_t t) const {
  if (t < 1 || t > dataset.rounds()) {
    return Status::OutOfRange("query time t must be in [1, rounds()]");
  }
  if (dataset.num_users() == 0) return 0.0;
  double v = 0.0;
  dataset.ForEachSuffixPattern(
      t, k_, [&](int64_t, util::Pattern p) { v += weights_[p]; });
  return v / static_cast<double>(dataset.num_users());
}

}  // namespace query
}  // namespace longdp
