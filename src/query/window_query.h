// Fixed time window queries (paper Section 2.1).
//
// A width-k' window predicate q maps the most recent k' bits of a user's
// stream to {0,1}; it extends to a counting query by averaging over users.
// Any predicate of width k' <= k is a 0/1-weighted linear combination of the
// width-k histogram bins a FixedWindowSynthesizer preserves, so it can be
// answered from the synthetic data at no extra privacy cost — the property
// the paper's Figure 1/3 experiments exercise.

#ifndef LONGDP_QUERY_WINDOW_QUERY_H_
#define LONGDP_QUERY_WINDOW_QUERY_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/longitudinal_dataset.h"
#include "util/bits.h"
#include "util/status.h"

namespace longdp {
namespace query {

/// \brief Predicate over the most recent `width()` bits of a stream.
class WindowPredicate {
 public:
  virtual ~WindowPredicate() = default;

  /// The window width k' of this predicate.
  virtual int width() const = 0;

  /// Whether the width()-bit suffix pattern satisfies the predicate.
  virtual bool Matches(util::Pattern suffix) const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// Number of width()-bit patterns satisfying the predicate. Used by the
  /// debiaser (the padding contributes n_pad per matching extended bin).
  int64_t MatchingPatternCount() const;
};

using WindowPredicatePtr = std::shared_ptr<const WindowPredicate>;

/// q^t_s: the window equals the specific pattern `s` of width k.
WindowPredicatePtr MakePatternEquals(util::Pattern s, int k);

/// At least `m` ones in the window (e.g. "in poverty at least m months of
/// the quarter").
WindowPredicatePtr MakeAtLeastOnes(int k, int m);

/// At least `run` consecutive ones in the window.
WindowPredicatePtr MakeConsecutiveOnes(int k, int run);

/// All `k` window bits are one.
WindowPredicatePtr MakeAllOnes(int k);

/// Arbitrary predicate from a function (for tests and custom analyses).
WindowPredicatePtr MakeCustomPredicate(int k, std::string name,
                                       std::function<bool(util::Pattern)> fn);

/// Fraction of users in `dataset` whose width-k' window ending at time t
/// satisfies the predicate (bits before round 1 read as 0, the paper's
/// convention). Requires 1 <= t <= dataset.rounds().
Result<double> EvaluateOnDataset(const WindowPredicate& pred,
                                 const data::LongitudinalDataset& dataset,
                                 int64_t t);

/// Count of records matching the predicate given a histogram over width-
/// `hist_width` patterns (hist_width >= pred.width()): sums the bins whose
/// suffix matches. The span form is the primitive — it runs in place over
/// any contiguous int64 column (including a release served straight off an
/// mmap'd archive, with no rehydration copy).
Result<int64_t> CountOnHistogram(const WindowPredicate& pred,
                                 std::span<const int64_t> hist,
                                 int hist_width);
Result<int64_t> CountOnHistogram(const WindowPredicate& pred,
                                 const std::vector<int64_t>& hist,
                                 int hist_width);

/// \brief Real-weighted linear combination of width-k pattern indicators,
/// q(x) = sum_s w_s * I(window = s) — the general query family of
/// Section 3's "linear combination" discussion.
class LinearWindowQuery {
 public:
  /// weights.size() must be 2^k.
  static Result<LinearWindowQuery> Create(int k, std::vector<double> weights);

  /// Builds the 0/1-weight representation of a predicate, lifted to width
  /// `k >= pred.width()`.
  static Result<LinearWindowQuery> FromPredicate(const WindowPredicate& pred,
                                                 int k);

  int width() const { return k_; }
  const std::vector<double>& weights() const { return weights_; }

  /// L2 norm of the weights (the paper's error bound scales with ||w||_2).
  double WeightL2Norm() const;

  /// sum_s w_s * hist[s]; hist must be over width-k patterns.
  Result<double> EvaluateOnHistogram(const std::vector<int64_t>& hist) const;

  /// Average of weights over users' width-k windows at time t.
  Result<double> EvaluateOnDataset(const data::LongitudinalDataset& dataset,
                                   int64_t t) const;

 private:
  LinearWindowQuery(int k, std::vector<double> weights)
      : k_(k), weights_(std::move(weights)) {}
  int k_;
  std::vector<double> weights_;
};

}  // namespace query
}  // namespace longdp

#endif  // LONGDP_QUERY_WINDOW_QUERY_H_
