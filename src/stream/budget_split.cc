#include "stream/budget_split.h"

#include <cmath>
#include <limits>

#include "util/mathutil.h"

namespace longdp {
namespace stream {

const char* BudgetSplitName(BudgetSplit split) {
  switch (split) {
    case BudgetSplit::kCubicLogLevels:
      return "cubic-log";
    case BudgetSplit::kUniform:
      return "uniform";
  }
  return "?";
}

Result<BudgetSplit> BudgetSplitFromName(const std::string& name) {
  if (name == "cubic-log") return BudgetSplit::kCubicLogLevels;
  if (name == "uniform") return BudgetSplit::kUniform;
  return Status::NotFound("unknown budget split '" + name +
                          "'; known: cubic-log, uniform");
}

int LevelsForThreshold(int64_t horizon, int64_t b) {
  int64_t len = horizon - b + 1;
  if (len < 1) len = 1;
  return util::TreeLevels(static_cast<uint64_t>(len));
}

Result<std::vector<double>> SplitBudget(BudgetSplit split, int64_t horizon,
                                        double total_rho) {
  if (horizon < 1) {
    return Status::InvalidArgument("horizon must be >= 1, got " +
                                   std::to_string(horizon));
  }
  if (!(total_rho > 0.0)) {
    return Status::InvalidArgument("total rho must be > 0");
  }
  size_t n = static_cast<size_t>(horizon);
  std::vector<double> shares(n);
  if (std::isinf(total_rho)) {
    for (auto& s : shares) s = std::numeric_limits<double>::infinity();
    return shares;
  }
  switch (split) {
    case BudgetSplit::kUniform: {
      for (auto& s : shares) s = total_rho / static_cast<double>(n);
      break;
    }
    case BudgetSplit::kCubicLogLevels: {
      double denom = 0.0;
      std::vector<double> w(n);
      for (size_t i = 0; i < n; ++i) {
        double l = static_cast<double>(
            LevelsForThreshold(horizon, static_cast<int64_t>(i) + 1));
        w[i] = l * l * l;
        denom += w[i];
      }
      for (size_t i = 0; i < n; ++i) {
        shares[i] = total_rho * w[i] / denom;
      }
      break;
    }
  }
  // Make the shares re-sum to the total exactly: the largest share absorbs
  // the (tiny) floating-point residue so accountants see a clean budget.
  double sum = 0.0;
  size_t imax = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += shares[i];
    if (shares[i] > shares[imax]) imax = i;
  }
  shares[imax] += total_rho - sum;
  return shares;
}

}  // namespace stream
}  // namespace longdp
