// Privacy budget splits across the T per-threshold stream counters of
// Algorithm 2.
//
// Corollary B.1 of the paper equalizes the worst-case error bounds of all T
// tree counters by giving counter b (which runs over a stream of length
// T - b + 1) a share proportional to the cube of its level count:
//
//   rho_b = rho * L_b^3 / sum_{b'} L_{b'}^3,   L_b = max(ceil(log2(T-b+1)), 1).
//
// The uniform split rho_b = rho / T is also provided; bench/theory_cumulative
// compares the two.

#ifndef LONGDP_STREAM_BUDGET_SPLIT_H_
#define LONGDP_STREAM_BUDGET_SPLIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace longdp {
namespace stream {

enum class BudgetSplit {
  kCubicLogLevels,  // Corollary B.1 (default)
  kUniform,
};

const char* BudgetSplitName(BudgetSplit split);
Result<BudgetSplit> BudgetSplitFromName(const std::string& name);

/// Returns (rho_1, ..., rho_T) summing to total_rho (exactly, up to double
/// rounding; the last share absorbs residue). total_rho may be +infinity,
/// in which case every share is +infinity (zero-noise test path).
Result<std::vector<double>> SplitBudget(BudgetSplit split, int64_t horizon,
                                        double total_rho);

/// The level count L_b = max(ceil(log2(T-b+1)), 1) for counter b in 1..T.
int LevelsForThreshold(int64_t horizon, int64_t b);

}  // namespace stream
}  // namespace longdp

#endif  // LONGDP_STREAM_BUDGET_SPLIT_H_
