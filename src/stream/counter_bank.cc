#include "stream/counter_bank.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "stream/state_io.h"
#include "stream/tree_counter.h"
#include "util/substream.h"

namespace longdp {
namespace stream {

namespace {
// The bank embeds mid-stream inside synthesizer checkpoints, so its own
// trailer sentinel is what catches a truncation that happens to land on a
// per-counter boundary (every counter restored, but fewer than horizon_).
constexpr char kBankEnd[] = "end-longdp-counter-bank";
}  // namespace

Result<std::unique_ptr<CounterBank>> CounterBank::Create(
    const Options& options, dp::ZCdpAccountant* accountant) {
  if (options.horizon < 1) {
    return Status::InvalidArgument("CounterBank horizon must be >= 1");
  }
  if (options.population < 0) {
    return Status::InvalidArgument("CounterBank population must be >= 0");
  }
  if (!(options.total_rho > 0.0)) {
    return Status::InvalidArgument("CounterBank total_rho must be > 0");
  }
  std::shared_ptr<const StreamCounterFactory> factory = options.factory;
  if (!factory) factory = std::make_shared<TreeCounterFactory>();

  LONGDP_ASSIGN_OR_RETURN(
      auto shares,
      SplitBudget(options.split, options.horizon, options.total_rho));

  auto bank = std::unique_ptr<CounterBank>(new CounterBank());
  bank->horizon_ = options.horizon;
  bank->population_ = options.population;
  bank->pool_ = options.pool;
  bank->shares_ = shares;
  bank->counters_.reserve(static_cast<size_t>(options.horizon));
  const util::SubstreamRng noise_root(options.seed,
                                      util::substream::kCounterNoise);
  for (int64_t b = 1; b <= options.horizon; ++b) {
    int64_t stream_len = options.horizon - b + 1;
    double rho_b = shares[static_cast<size_t>(b - 1)];
    if (accountant != nullptr) {
      LONGDP_RETURN_NOT_OK(accountant->Charge(
          rho_b, "stream-counter b=" + std::to_string(b)));
    }
    LONGDP_ASSIGN_OR_RETURN(
        auto counter,
        factory->Create(stream_len, rho_b,
                        noise_root.Derive(static_cast<uint64_t>(b))));
    bank->counters_.push_back(std::move(counter));
  }
  bank->tree_fast_.reserve(bank->counters_.size());
  for (const auto& counter : bank->counters_) {
    bank->tree_fast_.push_back(dynamic_cast<TreeCounter*>(counter.get()));
  }
  size_t row = static_cast<size_t>(options.horizon) + 1;
  bank->raw_.assign(row, 0);
  bank->monotone_.assign(row, 0);
  bank->prev_monotone_.assign(row, 0);
  bank->raw_[0] = options.population;
  bank->monotone_[0] = options.population;
  // Shat^0: row (n, 0, 0, ..., 0) — nobody has >= 1 ones before any data.
  bank->prev_monotone_[0] = options.population;
  return bank;
}

Result<std::vector<int64_t>> CounterBank::ObserveRound(
    const std::vector<int64_t>& z) {
  LONGDP_RETURN_NOT_OK(ObserveRoundBatched(z));
  return monotone_;
}

Status CounterBank::ObserveRoundBatched(const std::vector<int64_t>& z) {
  if (t_ >= horizon_) {
    return Status::OutOfRange("CounterBank past its horizon T=" +
                              std::to_string(horizon_));
  }
  if (z.size() != static_cast<size_t>(horizon_)) {
    return Status::InvalidArgument(
        "ObserveRound expects one increment per threshold b=1..T");
  }
  // Validate before advancing the clock: a rejected round must leave the
  // bank untouched (t_ and the counters in lockstep).
  for (int64_t b = t_ + 2; b <= horizon_; ++b) {
    if (z[static_cast<size_t>(b - 1)] != 0) {
      return Status::InvalidArgument(
          "increment for threshold b=" + std::to_string(b) +
          " must be 0 at time t=" + std::to_string(t_ + 1) +
          " (weight cannot exceed elapsed time)");
    }
  }
  ++t_;

  raw_[0] = population_;
  monotone_[0] = population_;
  // One pass over the active counters b = 1..min(t, T). Counters beyond t
  // have not started (their streams begin at t = b) and stay at raw 0.
  // Each counter owns keyed substreams, so the pass shards cleanly: shard
  // boundaries only decide WHO advances counter b, never WHICH noise it
  // draws. Statuses are collected per shard and checked after the barrier
  // (a failed counter is a programming error, not a data race).
  const int64_t active = std::min(t_, horizon_);
  const int num_shards = util::NumShards(pool_);
  std::vector<Status> shard_status(static_cast<size_t>(num_shards),
                                   Status::OK());
  util::ShardedFor(
      pool_, active, [&](int shard, int64_t begin, int64_t end) {
        for (int64_t k = begin; k < end; ++k) {
          const size_t ib = static_cast<size_t>(k) + 1;
          if (TreeCounter* tree = tree_fast_[ib - 1]) {
            // Bank invariant (t_ <= T implies counter b took <= T-b+1
            // steps) guarantees the counter is within its horizon; Step
            // skips the virtual call and the per-call range check.
            raw_[ib] = tree->Step(z[ib - 1]);
          } else {
            Result<int64_t> s = counters_[ib - 1]->Observe(z[ib - 1]);
            if (!s.ok()) {
              shard_status[static_cast<size_t>(shard)] = s.status();
              return;
            }
            raw_[ib] = s.value();
          }
        }
      });
  for (const Status& s : shard_status) {
    LONGDP_RETURN_NOT_OK(s);
  }
  for (int64_t b = active + 1; b <= horizon_; ++b) {
    raw_[static_cast<size_t>(b)] = 0;
  }
  for (int64_t b = 1; b <= horizon_; ++b) {
    size_t ib = static_cast<size_t>(b);
    // Monotonize: Shat^{t-1}_b <= Shat^t_b <= Shat^{t-1}_{b-1}.
    int64_t lower = prev_monotone_[ib];
    int64_t upper = prev_monotone_[ib - 1];
    monotone_[ib] = std::min(std::max(raw_[ib], lower), upper);
  }
  prev_monotone_ = monotone_;
  return Status::OK();
}

Status CounterBank::SaveState(std::ostream& out) const {
  out << t_ << " ";
  state_io::WriteIntVector(out, raw_);
  out << " ";
  state_io::WriteIntVector(out, monotone_);
  out << " ";
  state_io::WriteIntVector(out, prev_monotone_);
  out << "\n";
  for (const auto& counter : counters_) {
    LONGDP_RETURN_NOT_OK(counter->SaveState(out));
  }
  out << kBankEnd << "\n";
  return out.good() ? Status::OK() : Status::IOError("bank state write");
}

Status CounterBank::RestoreState(std::istream& in) {
  LONGDP_ASSIGN_OR_RETURN(t_, state_io::ReadInt(in));
  LONGDP_RETURN_NOT_OK(state_io::ReadIntVector(in, &raw_));
  LONGDP_RETURN_NOT_OK(state_io::ReadIntVector(in, &monotone_));
  LONGDP_RETURN_NOT_OK(state_io::ReadIntVector(in, &prev_monotone_));
  size_t row = static_cast<size_t>(horizon_) + 1;
  if (t_ < 0 || t_ > horizon_ || raw_.size() != row ||
      monotone_.size() != row || prev_monotone_.size() != row) {
    return Status::InvalidArgument("counter bank state inconsistent");
  }
  for (const auto& counter : counters_) {
    LONGDP_RETURN_NOT_OK(counter->RestoreState(in));
  }
  return state_io::ExpectToken(in, kBankEnd, "counter bank state");
}

double CounterBank::CounterErrorBound(int64_t b, int64_t t,
                                      double beta) const {
  if (b < 1 || b > horizon_) return 0.0;
  int64_t local_t = t - b + 1;  // counter b's own clock
  if (local_t < 1) return 0.0;
  return counters_[static_cast<size_t>(b - 1)]->ErrorBound(beta, local_t);
}

}  // namespace stream
}  // namespace longdp
