// Stage 1 of the paper's Algorithm 2: a bank of T stream counters (one per
// Hamming-weight threshold b = 1..T) plus the cross-counter monotonization
// of Section 4.1 / Lemma 4.2.
//
// Counter b tracks S^t_b = #{ users whose first t bits contain >= b ones }
// via the increment stream z^t_b (users reaching weight b exactly at time
// t). Counter b's stream effectively starts at t = b and has length
// T - b + 1, which the Corollary B.1 budget split exploits.
//
// Randomness: counter b draws from the substream family
// SubstreamRng(seed, kCounterNoise).Derive(b) — every counter's noise is
// addressed, not sequenced, so the bank can advance its counters in
// parallel across ThreadPool shards (Options::pool) and release exactly
// the same rows as the serial walk, bit for bit.
//
// Monotonization (computed here, releasing both raw and clamped rows):
//
//   Shat^t_b = min( max( Stilde^t_b, Shat^{t-1}_b ), Shat^{t-1}_{b-1} ),
//
// with boundary rows Shat^t_0 = n (every user trivially has >= 0 ones) and
// Shat^0_b = 0 for b >= 1. The clamp guarantees, for every t:
//   (a) Shat^t_b >= Shat^{t-1}_b        (weights only grow), and
//   (b) Shat^t_b <= Shat^{t-1}_{b-1}    (weights grow by at most 1/step),
// which is exactly what makes consistent synthetic data exist in stage 2.

#ifndef LONGDP_STREAM_COUNTER_BANK_H_
#define LONGDP_STREAM_COUNTER_BANK_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "dp/accountant.h"
#include "stream/budget_split.h"
#include "stream/stream_counter.h"
#include "util/thread_pool.h"

namespace longdp {
namespace stream {

class TreeCounter;

class CounterBank {
 public:
  struct Options {
    int64_t horizon = 0;     ///< T, number of reporting periods
    int64_t population = 0;  ///< n, number of (synthetic) individuals
    double total_rho = 0.0;  ///< zCDP budget across all counters
    BudgetSplit split = BudgetSplit::kCubicLogLevels;
    /// Counter implementation; defaults to the tree counter when null.
    std::shared_ptr<const StreamCounterFactory> factory;
    /// Root seed for the bank's noise substreams: counter b draws from
    /// SubstreamRng(seed, substream::kCounterNoise).Derive(b).
    uint64_t seed = 0;
    /// Optional pool for advancing counters in parallel (not owned, may be
    /// null). Results are bit-identical with or without it — counters
    /// carry keyed substreams, so no draw order exists to perturb.
    util::ThreadPool* pool = nullptr;
  };

  /// Validates options, splits the budget, creates the T counters, and (if
  /// an accountant is supplied) charges each counter's share.
  static Result<std::unique_ptr<CounterBank>> Create(
      const Options& options, dp::ZCdpAccountant* accountant = nullptr);

  /// Consumes round t's increments: z[b-1] = z^t_b for b = 1..T (entries for
  /// b > t must be 0). Returns the monotonized row Shat^t indexed by b =
  /// 0..T (so the result has T+1 entries, entry 0 fixed at n).
  /// Convenience wrapper over ObserveRoundBatched that copies the row out.
  Result<std::vector<int64_t>> ObserveRound(const std::vector<int64_t>& z);

  /// The allocation-free batched observe path the synthesizer hot loop runs
  /// on: advances every active counter in one pass (sharded across
  /// Options::pool when set) and monotonizes into the bank-owned rows
  /// (read them back via monotone_row() / raw_row(); they are valid until
  /// the next call). Counters built by the default tree factory advance
  /// through TreeCounter::Step with their noise scales precomputed at
  /// Create — no per-counter virtual dispatch; other implementations fall
  /// back to the virtual Observe. Every counter's noise is keyed by
  /// (seed, b, level, draw-index), so serial and sharded advances release
  /// identical rows.
  Status ObserveRoundBatched(const std::vector<int64_t>& z);

  /// Raw (pre-monotonization) row Stilde^t from the last ObserveRound,
  /// indexed b = 0..T. Used by tests of Lemma 4.2.
  const std::vector<int64_t>& raw_row() const { return raw_; }

  /// Monotonized row Shat^t from the last ObserveRound, indexed b = 0..T.
  const std::vector<int64_t>& monotone_row() const { return monotone_; }

  int64_t steps() const { return t_; }
  int64_t horizon() const { return horizon_; }
  const std::vector<double>& budget_shares() const { return shares_; }

  /// High-probability error bound of counter b at its step count when the
  /// global time is t (paper Appendix B form). beta is per-(b, t).
  double CounterErrorBound(int64_t b, int64_t t, double beta) const;

  /// Serializes the bank's mutable state (round clock, monotonization rows,
  /// every counter's state including its substream cursors) for
  /// checkpointing. Construction parameters are the caller's to persist.
  Status SaveState(std::ostream& out) const;

  /// Restores SaveState output into a bank created with identical options.
  Status RestoreState(std::istream& in);

  /// Swaps the worker pool (non-owning; null reverts to serial). Noise is
  /// keyed per (b, level, draw), so the shard grid never changes a row.
  void set_pool(util::ThreadPool* pool) { pool_ = pool; }

 private:
  CounterBank() = default;

  int64_t horizon_ = 0;
  int64_t population_ = 0;
  int64_t t_ = 0;
  util::ThreadPool* pool_ = nullptr;  // not owned
  std::vector<double> shares_;
  std::vector<std::unique_ptr<StreamCounter>> counters_;  // index b-1
  /// Non-owning fast-path view of counters_: entry b-1 is non-null iff
  /// counter b is a TreeCounter (resolved once at Create so the per-round
  /// loop never pays dynamic dispatch for the default configuration).
  std::vector<TreeCounter*> tree_fast_;
  std::vector<int64_t> raw_;
  std::vector<int64_t> monotone_;
  std::vector<int64_t> prev_monotone_;
};

}  // namespace stream
}  // namespace longdp

#endif  // LONGDP_STREAM_COUNTER_BANK_H_
