#include "stream/counter_factory.h"

#include "stream/honaker_counter.h"
#include "stream/laplace_tree_counter.h"
#include "stream/matrix_counter.h"
#include "stream/naive_counters.h"
#include "stream/tree_counter.h"

namespace longdp {
namespace stream {

Result<std::shared_ptr<const StreamCounterFactory>> MakeCounterFactory(
    const std::string& name) {
  if (name == "tree") {
    return std::shared_ptr<const StreamCounterFactory>(
        std::make_shared<TreeCounterFactory>());
  }
  if (name == "honaker") {
    return std::shared_ptr<const StreamCounterFactory>(
        std::make_shared<HonakerCounterFactory>());
  }
  if (name == "input-perturbation") {
    return std::shared_ptr<const StreamCounterFactory>(
        std::make_shared<InputPerturbationCounterFactory>());
  }
  if (name == "recompute") {
    return std::shared_ptr<const StreamCounterFactory>(
        std::make_shared<RecomputeCounterFactory>());
  }
  if (name == "laplace-tree") {
    return std::shared_ptr<const StreamCounterFactory>(
        std::make_shared<LaplaceTreeCounterFactory>());
  }
  if (name == "sqrt-matrix") {
    return std::shared_ptr<const StreamCounterFactory>(
        std::make_shared<MatrixCounterFactory>());
  }
  return Status::NotFound("unknown stream counter '" + name +
                          "'; known: tree, honaker, input-perturbation, "
                          "recompute, laplace-tree, sqrt-matrix");
}

std::vector<std::string> RegisteredCounterNames() {
  return {"tree", "honaker", "input-perturbation", "recompute",
          "laplace-tree", "sqrt-matrix"};
}

}  // namespace stream
}  // namespace longdp
