// Name-based registry for stream counter implementations, so experiment
// configs and CLI flags can select a counter by string.

#ifndef LONGDP_STREAM_COUNTER_FACTORY_H_
#define LONGDP_STREAM_COUNTER_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "stream/stream_counter.h"

namespace longdp {
namespace stream {

/// Returns a factory for "tree", "honaker", "input-perturbation", or
/// "recompute"; NotFound otherwise.
Result<std::shared_ptr<const StreamCounterFactory>> MakeCounterFactory(
    const std::string& name);

/// All registered counter names (for ablation sweeps and --help text).
std::vector<std::string> RegisteredCounterNames();

}  // namespace stream
}  // namespace longdp

#endif  // LONGDP_STREAM_COUNTER_FACTORY_H_
