#include "stream/honaker_counter.h"

#include <cmath>

#include "stream/state_io.h"
#include "util/mathutil.h"

namespace longdp {
namespace stream {

HonakerCounter::HonakerCounter(int64_t horizon, double rho,
                               const util::SubstreamRng& stream)
    : horizon_(horizon),
      rho_(rho),
      levels_(util::FloorLog2(static_cast<uint64_t>(horizon)) + 1),
      sigma2_(std::isinf(rho) ? 0.0
                              : static_cast<double>(levels_) / (2.0 * rho)),
      noise_(dp::NoiseSampler::Gaussian(sigma2_)),
      true_sum_(static_cast<size_t>(levels_), 0),
      estimate_(static_cast<size_t>(levels_), 0.0),
      occupied_(static_cast<size_t>(levels_), false),
      level_var_(static_cast<size_t>(levels_), 0.0) {
  // Refined variance recurrence: leaves carry the raw node variance; an
  // internal node combines its own noise with the two refined children.
  if (sigma2_ > 0.0) {
    level_var_[0] = sigma2_;
    for (int j = 1; j < levels_; ++j) {
      double child_sum_var = 2.0 * level_var_[static_cast<size_t>(j - 1)];
      level_var_[static_cast<size_t>(j)] =
          1.0 / (1.0 / sigma2_ + 1.0 / child_sum_var);
    }
  }
  level_streams_.reserve(static_cast<size_t>(levels_));
  for (int j = 0; j < levels_; ++j) {
    level_streams_.push_back(stream.Leaf(static_cast<uint64_t>(j)));
  }
}

Result<int64_t> HonakerCounter::Observe(int64_t z) {
  if (t_ >= horizon_) {
    return Status::OutOfRange("honaker counter past its horizon T=" +
                              std::to_string(horizon_));
  }
  ++t_;
  // New leaf node: a level-0 completion.
  int64_t cur_true = z;
  double cur_est = static_cast<double>(z) +
                   static_cast<double>(noise_.Draw(&level_streams_[0]));
  int level = 0;
  // Binary-counter carry: merge equal-sized completed subtrees upward. The
  // carry forming a node at level `level + 1` must stay inside the level
  // table (and its substreams), so the overflow check runs before the draw.
  while (level < levels_ && occupied_[static_cast<size_t>(level)]) {
    if (level + 1 >= levels_) {
      return Status::Internal("honaker counter carry overflowed its levels");
    }
    size_t l = static_cast<size_t>(level);
    int64_t parent_true = true_sum_[l] + cur_true;
    double children_est = estimate_[l] + cur_est;
    occupied_[l] = false;
    true_sum_[l] = 0;
    estimate_[l] = 0.0;
    double parent_noisy =
        static_cast<double>(parent_true) +
        static_cast<double>(noise_.Draw(&level_streams_[l + 1]));
    if (sigma2_ > 0.0) {
      double child_sum_var = 2.0 * level_var_[l];
      double w_node = 1.0 / sigma2_;
      double w_children = 1.0 / child_sum_var;
      cur_est = (parent_noisy * w_node + children_est * w_children) /
                (w_node + w_children);
    } else {
      cur_est = static_cast<double>(parent_true);
    }
    cur_true = parent_true;
    ++level;
  }
  size_t l = static_cast<size_t>(level);
  occupied_[l] = true;
  true_sum_[l] = cur_true;
  estimate_[l] = cur_est;

  double s = 0.0;
  for (int j = 0; j < levels_; ++j) {
    if (occupied_[static_cast<size_t>(j)]) {
      s += estimate_[static_cast<size_t>(j)];
    }
  }
  return static_cast<int64_t>(std::llround(s));
}

double HonakerCounter::LevelVariance(int level) const {
  if (level < 0 || level >= levels_) return 0.0;
  return level_var_[static_cast<size_t>(level)];
}

double HonakerCounter::ErrorBound(double beta, int64_t t) const {
  if (sigma2_ == 0.0) return 0.0;
  if (t < 1) t = 1;
  if (beta <= 0.0) beta = 1e-12;
  double var = 0.0;
  for (int j = 0; j < levels_; ++j) {
    if ((t >> j) & 1) var += level_var_[static_cast<size_t>(j)];
  }
  // +0.5 accounts for the final integer rounding of the estimate.
  return std::sqrt(2.0 * var * std::log(2.0 / beta)) + 0.5;
}

Status HonakerCounter::SaveState(std::ostream& out) const {
  out << t_ << " ";
  state_io::WriteIntVector(out, true_sum_);
  out << " ";
  state_io::WriteDoubleVector(out, estimate_);
  out << " " << occupied_.size();
  for (bool b : occupied_) out << " " << (b ? 1 : 0);
  out << " ";
  std::vector<uint64_t> cursors;
  cursors.reserve(level_streams_.size());
  for (const auto& s : level_streams_) cursors.push_back(s.cursor());
  state_io::WriteCursorVector(out, cursors);
  out << "\n";
  return out.good() ? Status::OK() : Status::IOError("state write failed");
}

Status HonakerCounter::RestoreState(std::istream& in) {
  LONGDP_ASSIGN_OR_RETURN(t_, state_io::ReadInt(in));
  LONGDP_RETURN_NOT_OK(state_io::ReadIntVector(in, &true_sum_));
  LONGDP_RETURN_NOT_OK(state_io::ReadDoubleVector(in, &estimate_));
  std::vector<int64_t> occ;
  LONGDP_RETURN_NOT_OK(state_io::ReadIntVector(in, &occ));
  std::vector<uint64_t> cursors;
  LONGDP_RETURN_NOT_OK(state_io::ReadCursorVector(in, &cursors));
  if (t_ < 0 || t_ > horizon_ ||
      true_sum_.size() != static_cast<size_t>(levels_) ||
      estimate_.size() != static_cast<size_t>(levels_) ||
      occ.size() != static_cast<size_t>(levels_) ||
      cursors.size() != static_cast<size_t>(levels_)) {
    return Status::InvalidArgument("honaker counter state inconsistent");
  }
  occupied_.assign(occ.size(), false);
  for (size_t i = 0; i < occ.size(); ++i) occupied_[i] = occ[i] != 0;
  for (size_t i = 0; i < cursors.size(); ++i) {
    level_streams_[i].set_cursor(cursors[i]);
  }
  return Status::OK();
}

Result<std::unique_ptr<StreamCounter>> HonakerCounterFactory::Create(
    int64_t horizon, double rho, const util::SubstreamRng& stream) const {
  if (horizon < 1) {
    return Status::InvalidArgument("stream horizon must be >= 1, got " +
                                   std::to_string(horizon));
  }
  if (!(rho > 0.0)) {
    return Status::InvalidArgument("stream counter rho must be > 0");
  }
  return std::unique_ptr<StreamCounter>(
      new HonakerCounter(horizon, rho, stream));
}

}  // namespace stream
}  // namespace longdp
