// Variance-reduced tree counter using Honaker's bottom-up estimator
// ("Efficient Use of Differentially Private Binary Trees", 2015) — the kind
// of improved concrete-accuracy counter the paper's Section 1.1 suggests
// plugging into Algorithm 2.
//
// Same noisy binary tree as TreeCounter (same privacy cost: refinement is
// pure post-processing of already-released node values). Each completed
// internal node's estimate combines its own noisy value with the sum of its
// children's refined estimates by inverse-variance weighting:
//
//   e_v   = (y_v / s^2 + (e_l + e_r) / (v_l + v_r)) / (1/s^2 + 1/(v_l+v_r))
//   var_v = 1 / (1/s^2 + 1/(v_l + v_r))
//
// so a level-j node's refined variance is strictly below s^2 for j >= 1, and
// prefix-sum error improves by a constant factor over the plain tree.
//
// Randomness: a node completing at level j draws its noise from substream
// stream.Leaf(j) — the leaf inserted at step t is a level-0 completion, and
// each binary-counter carry that merges two level-(j-1) subtrees completes
// a level-j node.

#ifndef LONGDP_STREAM_HONAKER_COUNTER_H_
#define LONGDP_STREAM_HONAKER_COUNTER_H_

#include <vector>

#include "dp/noise_sampler.h"
#include "stream/stream_counter.h"

namespace longdp {
namespace stream {

class HonakerCounter : public StreamCounter {
 public:
  HonakerCounter(int64_t horizon, double rho,
                 const util::SubstreamRng& stream);

  Result<int64_t> Observe(int64_t z) override;
  int64_t steps() const override { return t_; }
  int64_t horizon() const override { return horizon_; }
  double rho() const override { return rho_; }
  double ErrorBound(double beta, int64_t t) const override;
  std::string name() const override { return "honaker"; }
  Status SaveState(std::ostream& out) const override;
  Status RestoreState(std::istream& in) override;

  /// Refined estimator variance of a completed level-j node.
  double LevelVariance(int level) const;

 private:
  int64_t horizon_;
  double rho_;
  int levels_;
  double sigma2_;
  // Batched sampler for sigma2_ — bit-identical draws to the one-shot
  // function with the per-draw setup amortized (dp/noise_sampler.h).
  dp::NoiseSampler noise_;
  int64_t t_ = 0;
  // Pending completed-subtree state per level: true sum, refined estimate
  // (kept in double: it is a weighted average of integers), and occupancy.
  std::vector<int64_t> true_sum_;
  std::vector<double> estimate_;
  std::vector<bool> occupied_;
  std::vector<double> level_var_;  // refined variance by level (precomputed)
  // Per-level noise substreams, keyed stream.Leaf(j) at construction.
  std::vector<util::SubstreamRng> level_streams_;
};

class HonakerCounterFactory : public StreamCounterFactory {
 public:
  Result<std::unique_ptr<StreamCounter>> Create(
      int64_t horizon, double rho,
      const util::SubstreamRng& stream) const override;
  std::string name() const override { return "honaker"; }
};

}  // namespace stream
}  // namespace longdp

#endif  // LONGDP_STREAM_HONAKER_COUNTER_H_
