#include "stream/laplace_tree_counter.h"

#include <cmath>

#include "stream/state_io.h"
#include "util/bits.h"
#include "util/mathutil.h"

namespace longdp {
namespace stream {

LaplaceTreeCounter::LaplaceTreeCounter(int64_t horizon, double rho,
                                       const util::SubstreamRng& stream)
    : horizon_(horizon),
      rho_(rho),
      epsilon_(std::isinf(rho) ? 0.0 : std::sqrt(2.0 * rho)),
      levels_(util::FloorLog2(static_cast<uint64_t>(horizon)) + 1),
      scale_(std::isinf(rho) ? 0.0
                             : static_cast<double>(levels_) / epsilon_),
      noise_(dp::NoiseSampler::Laplace(scale_)),
      alpha_(static_cast<size_t>(levels_), 0),
      alpha_noisy_(static_cast<size_t>(levels_), 0) {
  level_streams_.reserve(static_cast<size_t>(levels_));
  for (int j = 0; j < levels_; ++j) {
    level_streams_.push_back(stream.Leaf(static_cast<uint64_t>(j)));
  }
}

Result<int64_t> LaplaceTreeCounter::Observe(int64_t z) {
  if (t_ >= horizon_) {
    return Status::OutOfRange("laplace tree counter past its horizon T=" +
                              std::to_string(horizon_));
  }
  ++t_;
  int i = 0;
  while (((t_ >> i) & 1) == 0) ++i;
  int64_t acc = z;
  for (int j = 0; j < i; ++j) {
    acc += alpha_[static_cast<size_t>(j)];
    alpha_[static_cast<size_t>(j)] = 0;
    alpha_noisy_[static_cast<size_t>(j)] = 0;
  }
  alpha_[static_cast<size_t>(i)] = acc;
  alpha_noisy_[static_cast<size_t>(i)] =
      acc + noise_.Draw(&level_streams_[static_cast<size_t>(i)]);
  int64_t s = 0;
  for (int j = 0; j < levels_; ++j) {
    if ((t_ >> j) & 1) s += alpha_noisy_[static_cast<size_t>(j)];
  }
  return s;
}

double LaplaceTreeCounter::ErrorBound(double beta, int64_t t) const {
  if (scale_ <= 0.0) return 0.0;
  if (t < 1) t = 1;
  if (beta <= 0.0) beta = 1e-12;
  // Sum of m independent discrete Laplace(scale) variables. Each is
  // subexponential; a simple per-term union bound gives
  // |X_i| <= scale * ln(2m/beta) each with prob 1 - beta/m.
  int m = util::Popcount(static_cast<uint64_t>(t));
  return static_cast<double>(m) * scale_ *
         std::log(2.0 * static_cast<double>(m) / beta);
}

Status LaplaceTreeCounter::SaveState(std::ostream& out) const {
  out << t_ << " ";
  state_io::WriteIntVector(out, alpha_);
  out << " ";
  state_io::WriteIntVector(out, alpha_noisy_);
  out << " ";
  std::vector<uint64_t> cursors;
  cursors.reserve(level_streams_.size());
  for (const auto& s : level_streams_) cursors.push_back(s.cursor());
  state_io::WriteCursorVector(out, cursors);
  out << "\n";
  return out.good() ? Status::OK() : Status::IOError("state write failed");
}

Status LaplaceTreeCounter::RestoreState(std::istream& in) {
  LONGDP_ASSIGN_OR_RETURN(t_, state_io::ReadInt(in));
  LONGDP_RETURN_NOT_OK(state_io::ReadIntVector(in, &alpha_));
  LONGDP_RETURN_NOT_OK(state_io::ReadIntVector(in, &alpha_noisy_));
  std::vector<uint64_t> cursors;
  LONGDP_RETURN_NOT_OK(state_io::ReadCursorVector(in, &cursors));
  if (t_ < 0 || t_ > horizon_ ||
      alpha_.size() != static_cast<size_t>(levels_) ||
      alpha_noisy_.size() != static_cast<size_t>(levels_) ||
      cursors.size() != static_cast<size_t>(levels_)) {
    return Status::InvalidArgument("laplace tree counter state inconsistent");
  }
  for (size_t i = 0; i < cursors.size(); ++i) {
    level_streams_[i].set_cursor(cursors[i]);
  }
  return Status::OK();
}

Result<std::unique_ptr<StreamCounter>> LaplaceTreeCounterFactory::Create(
    int64_t horizon, double rho, const util::SubstreamRng& stream) const {
  if (horizon < 1) {
    return Status::InvalidArgument("stream horizon must be >= 1, got " +
                                   std::to_string(horizon));
  }
  if (!(rho > 0.0)) {
    return Status::InvalidArgument("stream counter rho must be > 0");
  }
  return std::unique_ptr<StreamCounter>(
      new LaplaceTreeCounter(horizon, rho, stream));
}

}  // namespace stream
}  // namespace longdp
