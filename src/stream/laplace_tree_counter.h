// Tree-based aggregation with discrete Laplace noise — the original
// pure-epsilon-DP instantiation of Algorithm 3 (Dwork-Naor-Pitassi-Rothblum
// '10, Chan-Shi-Song '11), which the paper notes preceded the Gaussian
// variant.
//
// Budget interface: to stay interchangeable behind StreamCounter (whose
// budget is rho-zCDP), the counter converts the zCDP budget to a pure-DP
// budget via the tight implication "epsilon-DP implies (epsilon^2/2)-zCDP"
// (Bun-Steinke'16 Prop. 1.4): it targets epsilon = sqrt(2 rho) total, split
// evenly across the L tree levels, so its release sequence is
// (epsilon, 0)-DP AND rho-zCDP simultaneously. Per-node noise is discrete
// Laplace with scale L / epsilon (sensitivity 1 per node).
//
// Randomness: level j's noise comes from its own substream stream.Leaf(j),
// mirroring TreeCounter's addressing.
//
// Compared with the Gaussian tree at equal rho, the Laplace tree pays
// heavier tails — visible in bench/counter_ablation — but offers the
// strictly stronger pure-DP guarantee.

#ifndef LONGDP_STREAM_LAPLACE_TREE_COUNTER_H_
#define LONGDP_STREAM_LAPLACE_TREE_COUNTER_H_

#include <vector>

#include "dp/noise_sampler.h"
#include "stream/stream_counter.h"

namespace longdp {
namespace stream {

class LaplaceTreeCounter : public StreamCounter {
 public:
  LaplaceTreeCounter(int64_t horizon, double rho,
                     const util::SubstreamRng& stream);

  Result<int64_t> Observe(int64_t z) override;
  int64_t steps() const override { return t_; }
  int64_t horizon() const override { return horizon_; }
  double rho() const override { return rho_; }
  double ErrorBound(double beta, int64_t t) const override;
  std::string name() const override { return "laplace-tree"; }
  Status SaveState(std::ostream& out) const override;
  Status RestoreState(std::istream& in) override;

  /// Total pure-DP budget epsilon = sqrt(2 rho).
  double epsilon() const { return epsilon_; }
  /// Per-node discrete Laplace scale, L / epsilon.
  double node_scale() const { return scale_; }
  int levels() const { return levels_; }

 private:
  int64_t horizon_;
  double rho_;
  double epsilon_;
  int levels_;
  double scale_;
  // Batched Laplace sampler for scale_; degenerate (scale_ <= 0) draws 0
  // without consuming words, matching the old "skip the call" guard.
  dp::NoiseSampler noise_;
  int64_t t_ = 0;
  std::vector<int64_t> alpha_;
  std::vector<int64_t> alpha_noisy_;
  // Per-level noise substreams, keyed stream.Leaf(j) at construction.
  std::vector<util::SubstreamRng> level_streams_;
};

class LaplaceTreeCounterFactory : public StreamCounterFactory {
 public:
  Result<std::unique_ptr<StreamCounter>> Create(
      int64_t horizon, double rho,
      const util::SubstreamRng& stream) const override;
  std::string name() const override { return "laplace-tree"; }
};

}  // namespace stream
}  // namespace longdp

#endif  // LONGDP_STREAM_LAPLACE_TREE_COUNTER_H_
