#include "stream/matrix_counter.h"

#include <cmath>

#include "stream/state_io.h"

namespace longdp {
namespace stream {

MatrixCounter::MatrixCounter(int64_t horizon, double rho,
                             const util::SubstreamRng& stream)
    : horizon_(horizon), rho_(rho), stream_(stream.Leaf(0)) {
  f_.resize(static_cast<size_t>(horizon));
  prefix_f2_.resize(static_cast<size_t>(horizon));
  f_[0] = 1.0;
  for (int64_t k = 1; k < horizon; ++k) {
    f_[static_cast<size_t>(k)] =
        f_[static_cast<size_t>(k - 1)] *
        (2.0 * static_cast<double>(k) - 1.0) / (2.0 * static_cast<double>(k));
  }
  double acc = 0.0;
  for (int64_t k = 0; k < horizon; ++k) {
    acc += f_[static_cast<size_t>(k)] * f_[static_cast<size_t>(k)];
    prefix_f2_[static_cast<size_t>(k)] = acc;
  }
  delta2_ = acc;
  sigma2_ = std::isinf(rho) ? 0.0 : delta2_ / (2.0 * rho);
  noise_ = dp::NoiseSampler::Gaussian(sigma2_);
  x_.reserve(static_cast<size_t>(horizon));
  noisy_u_.reserve(static_cast<size_t>(horizon));
}

Result<int64_t> MatrixCounter::Observe(int64_t z) {
  if (t_ >= horizon_) {
    return Status::OutOfRange("matrix counter past its horizon T=" +
                              std::to_string(horizon_));
  }
  x_.push_back(z);
  ++t_;
  // u_t = (M x)_t = sum_{j=1..t} f_{t-j} x_j.
  double u = 0.0;
  for (int64_t j = 0; j < t_; ++j) {
    u += f_[static_cast<size_t>(t_ - 1 - j)] *
         static_cast<double>(x_[static_cast<size_t>(j)]);
  }
  // Discrete noise keeps the released reconstruction integer-friendly and
  // matches the rest of the library's integer-noise policy.
  double noise = static_cast<double>(noise_.Draw(&stream_));
  noisy_u_.push_back(u + noise);
  // Stilde_t = (M (u + z))_t.
  double s = 0.0;
  for (int64_t j = 0; j < t_; ++j) {
    s += f_[static_cast<size_t>(t_ - 1 - j)] *
         noisy_u_[static_cast<size_t>(j)];
  }
  return static_cast<int64_t>(std::llround(s));
}

double MatrixCounter::ErrorBound(double beta, int64_t t) const {
  if (sigma2_ == 0.0) return 0.0;
  if (t < 1) t = 1;
  if (t > horizon_) t = horizon_;
  if (beta <= 0.0) beta = 1e-12;
  // (M z)_t is a weighted sum of t independent discrete Gaussians with
  // variance sigma^2 * sum_{k<t} f_k^2; +0.5 for the final rounding.
  double var = sigma2_ * prefix_f2_[static_cast<size_t>(t - 1)];
  return std::sqrt(2.0 * var * std::log(2.0 / beta)) + 0.5;
}

Status MatrixCounter::SaveState(std::ostream& out) const {
  out << t_ << " ";
  state_io::WriteIntVector(out, x_);
  out << " ";
  state_io::WriteDoubleVector(out, noisy_u_);
  out << " " << stream_.cursor() << "\n";
  return out.good() ? Status::OK() : Status::IOError("state write failed");
}

Status MatrixCounter::RestoreState(std::istream& in) {
  LONGDP_ASSIGN_OR_RETURN(t_, state_io::ReadInt(in));
  LONGDP_RETURN_NOT_OK(state_io::ReadIntVector(in, &x_));
  LONGDP_RETURN_NOT_OK(state_io::ReadDoubleVector(in, &noisy_u_));
  LONGDP_ASSIGN_OR_RETURN(uint64_t cursor, state_io::ReadCursor(in));
  if (t_ < 0 || t_ > horizon_ ||
      x_.size() != static_cast<size_t>(t_) ||
      noisy_u_.size() != static_cast<size_t>(t_)) {
    return Status::InvalidArgument("matrix counter state inconsistent");
  }
  stream_.set_cursor(cursor);
  return Status::OK();
}

Result<std::unique_ptr<StreamCounter>> MatrixCounterFactory::Create(
    int64_t horizon, double rho, const util::SubstreamRng& stream) const {
  if (horizon < 1) {
    return Status::InvalidArgument("stream horizon must be >= 1, got " +
                                   std::to_string(horizon));
  }
  if (!(rho > 0.0)) {
    return Status::InvalidArgument("stream counter rho must be > 0");
  }
  if (horizon > (int64_t{1} << 16)) {
    return Status::InvalidArgument(
        "sqrt-matrix counter is O(T^2); use the tree counter beyond T=65536");
  }
  return std::unique_ptr<StreamCounter>(
      new MatrixCounter(horizon, rho, stream));
}

}  // namespace stream
}  // namespace longdp
