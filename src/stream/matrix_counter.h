// Square-root matrix-factorization stream counter — the improved-constant
// continual counter of Fichtenberger, Henzinger & Upadhyay '22 and
// Henzinger, Upadhyay & Upadhyay '23, which the paper's Section 1.1 cites
// as a drop-in replacement for the binary tree inside Algorithm 2.
//
// The prefix-sum operator A (lower-triangular all-ones) factors as
// A = M * M where M is lower-triangular Toeplitz with the Taylor
// coefficients of (1 - x)^{-1/2}:
//
//   f_0 = 1,   f_k = f_{k-1} * (2k - 1) / (2k)  ( = binom(2k,k) / 4^k ).
//
// Mechanism: maintain u = M x streamed, perturb each u_t once with
// discrete Gaussian noise z_t, and release Stilde_t = sum_j f_{t-j}(u_j +
// z_j) = (A x)_t + (M z)_t. One user changes one stream entry x_j by 1,
// which moves u by M's j-th column, of squared L2 norm
// Delta^2 = sum_{k<T} f_k^2 ~ ln(T)/pi + O(1) — so sigma^2 =
// Delta^2/(2 rho) gives rho-zCDP, and the released error std at step t is
// sigma * sqrt(sum_{k<=t} f_k^2) ~ ln(T)/pi / sqrt(2 rho): better
// constants than the tree's sqrt(log^2 T) at every horizon.
//
// Cost: O(t) per step (the Toeplitz convolution), O(T^2) per stream —
// perfectly fine for the T <= a few thousand regime of longitudinal
// surveys; use the tree for very long horizons.

#ifndef LONGDP_STREAM_MATRIX_COUNTER_H_
#define LONGDP_STREAM_MATRIX_COUNTER_H_

#include <vector>

#include "dp/noise_sampler.h"
#include "stream/stream_counter.h"

namespace longdp {
namespace stream {

class MatrixCounter : public StreamCounter {
 public:
  MatrixCounter(int64_t horizon, double rho,
                const util::SubstreamRng& stream);

  Result<int64_t> Observe(int64_t z) override;
  int64_t steps() const override { return t_; }
  int64_t horizon() const override { return horizon_; }
  double rho() const override { return rho_; }
  double ErrorBound(double beta, int64_t t) const override;
  std::string name() const override { return "sqrt-matrix"; }
  Status SaveState(std::ostream& out) const override;
  Status RestoreState(std::istream& in) override;

  /// Squared sensitivity Delta^2 = sum_{k<T} f_k^2.
  double sensitivity2() const { return delta2_; }
  /// Per-entry noise variance sigma^2 = Delta^2 / (2 rho).
  double sigma2() const { return sigma2_; }
  /// The factorization coefficient f_k.
  double Coefficient(int64_t k) const {
    return f_[static_cast<size_t>(k)];
  }

 private:
  int64_t horizon_;
  double rho_;
  double delta2_;
  double sigma2_;
  // Batched sampler for sigma2_; assigned in the constructor body because
  // sigma2_ itself is computed there (after the coefficient table).
  dp::NoiseSampler noise_ = dp::NoiseSampler::Gaussian(0.0);
  int64_t t_ = 0;
  std::vector<double> f_;        ///< f_0 .. f_{T-1}
  std::vector<double> prefix_f2_;  ///< sum_{k<=j} f_k^2
  std::vector<int64_t> x_;       ///< raw stream (needed for u_t = (Mx)_t)
  std::vector<double> noisy_u_;  ///< u_j + z_j for j <= t
  util::SubstreamRng stream_;    ///< one draw per step (no level structure)
};

class MatrixCounterFactory : public StreamCounterFactory {
 public:
  Result<std::unique_ptr<StreamCounter>> Create(
      int64_t horizon, double rho,
      const util::SubstreamRng& stream) const override;
  std::string name() const override { return "sqrt-matrix"; }
};

}  // namespace stream
}  // namespace longdp

#endif  // LONGDP_STREAM_MATRIX_COUNTER_H_
