#include "stream/naive_counters.h"

#include <cmath>

#include "stream/state_io.h"

namespace longdp {
namespace stream {

namespace {
Status ValidateCounterArgs(int64_t horizon, double rho) {
  if (horizon < 1) {
    return Status::InvalidArgument("stream horizon must be >= 1, got " +
                                   std::to_string(horizon));
  }
  if (!(rho > 0.0)) {
    return Status::InvalidArgument("stream counter rho must be > 0");
  }
  return Status::OK();
}
}  // namespace

InputPerturbationCounter::InputPerturbationCounter(
    int64_t horizon, double rho, const util::SubstreamRng& stream)
    : horizon_(horizon),
      rho_(rho),
      sigma2_(std::isinf(rho) ? 0.0 : 1.0 / (2.0 * rho)),
      noise_(dp::NoiseSampler::Gaussian(sigma2_)),
      stream_(stream.Leaf(0)) {}

Result<int64_t> InputPerturbationCounter::Observe(int64_t z) {
  if (t_ >= horizon_) {
    return Status::OutOfRange("counter past its horizon");
  }
  ++t_;
  noisy_sum_ += z + noise_.Draw(&stream_);
  return noisy_sum_;
}

double InputPerturbationCounter::ErrorBound(double beta, int64_t t) const {
  if (sigma2_ == 0.0) return 0.0;
  if (t < 1) t = 1;
  if (beta <= 0.0) beta = 1e-12;
  double var = static_cast<double>(t) * sigma2_;
  return std::sqrt(2.0 * var * std::log(2.0 / beta));
}

RecomputeCounter::RecomputeCounter(int64_t horizon, double rho,
                                   const util::SubstreamRng& stream)
    : horizon_(horizon),
      rho_(rho),
      sigma2_(std::isinf(rho) ? 0.0
                              : static_cast<double>(horizon) / (2.0 * rho)),
      noise_(dp::NoiseSampler::Gaussian(sigma2_)),
      stream_(stream.Leaf(0)) {}

Result<int64_t> RecomputeCounter::Observe(int64_t z) {
  if (t_ >= horizon_) {
    return Status::OutOfRange("counter past its horizon");
  }
  ++t_;
  true_sum_ += z;
  return true_sum_ + noise_.Draw(&stream_);
}

double RecomputeCounter::ErrorBound(double beta, int64_t t) const {
  (void)t;
  if (sigma2_ == 0.0) return 0.0;
  if (beta <= 0.0) beta = 1e-12;
  return std::sqrt(2.0 * sigma2_ * std::log(2.0 / beta));
}

Status InputPerturbationCounter::SaveState(std::ostream& out) const {
  out << t_ << " " << noisy_sum_ << " " << stream_.cursor() << "\n";
  return out.good() ? Status::OK() : Status::IOError("state write failed");
}

Status InputPerturbationCounter::RestoreState(std::istream& in) {
  LONGDP_ASSIGN_OR_RETURN(t_, state_io::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(noisy_sum_, state_io::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(uint64_t cursor, state_io::ReadCursor(in));
  if (t_ < 0 || t_ > horizon_) {
    return Status::InvalidArgument("counter state inconsistent");
  }
  stream_.set_cursor(cursor);
  return Status::OK();
}

Status RecomputeCounter::SaveState(std::ostream& out) const {
  out << t_ << " " << true_sum_ << " " << stream_.cursor() << "\n";
  return out.good() ? Status::OK() : Status::IOError("state write failed");
}

Status RecomputeCounter::RestoreState(std::istream& in) {
  LONGDP_ASSIGN_OR_RETURN(t_, state_io::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(true_sum_, state_io::ReadInt(in));
  LONGDP_ASSIGN_OR_RETURN(uint64_t cursor, state_io::ReadCursor(in));
  if (t_ < 0 || t_ > horizon_) {
    return Status::InvalidArgument("counter state inconsistent");
  }
  stream_.set_cursor(cursor);
  return Status::OK();
}

Result<std::unique_ptr<StreamCounter>> InputPerturbationCounterFactory::Create(
    int64_t horizon, double rho, const util::SubstreamRng& stream) const {
  LONGDP_RETURN_NOT_OK(ValidateCounterArgs(horizon, rho));
  return std::unique_ptr<StreamCounter>(
      new InputPerturbationCounter(horizon, rho, stream));
}

Result<std::unique_ptr<StreamCounter>> RecomputeCounterFactory::Create(
    int64_t horizon, double rho, const util::SubstreamRng& stream) const {
  LONGDP_RETURN_NOT_OK(ValidateCounterArgs(horizon, rho));
  return std::unique_ptr<StreamCounter>(
      new RecomputeCounter(horizon, rho, stream));
}

}  // namespace stream
}  // namespace longdp
