// Two baseline stream counters the paper's introduction and related work
// implicitly compare against:
//
//  * InputPerturbationCounter — noise each increment z_t once with variance
//    1/(2 rho) and release running sums of the noisy increments. Privacy is
//    immediate (one user touches one increment), but the error stdev grows
//    like sqrt(t) * sqrt(1/(2 rho)).
//
//  * RecomputeCounter — release a freshly noised prefix sum at every step.
//    One user's increment sits inside up to T released sums, so each release
//    needs variance T/(2 rho); per-release error is sqrt(T/(2 rho)),
//    uniformly worse than the tree counter's polylog(T) factor.
//
// Both draw one discrete Gaussian per step from a single owned substream
// (no level structure to address). Both are used by bench/counter_ablation
// to show why the tree counter (and its Honaker refinement) is the right
// default.

#ifndef LONGDP_STREAM_NAIVE_COUNTERS_H_
#define LONGDP_STREAM_NAIVE_COUNTERS_H_

#include "dp/noise_sampler.h"
#include "stream/stream_counter.h"

namespace longdp {
namespace stream {

class InputPerturbationCounter : public StreamCounter {
 public:
  InputPerturbationCounter(int64_t horizon, double rho,
                           const util::SubstreamRng& stream);

  Result<int64_t> Observe(int64_t z) override;
  int64_t steps() const override { return t_; }
  int64_t horizon() const override { return horizon_; }
  double rho() const override { return rho_; }
  double ErrorBound(double beta, int64_t t) const override;
  std::string name() const override { return "input-perturbation"; }
  Status SaveState(std::ostream& out) const override;
  Status RestoreState(std::istream& in) override;

 private:
  int64_t horizon_;
  double rho_;
  double sigma2_;
  dp::NoiseSampler noise_;  // batched sampler for sigma2_, bit-identical
  int64_t t_ = 0;
  int64_t noisy_sum_ = 0;
  util::SubstreamRng stream_;
};

class RecomputeCounter : public StreamCounter {
 public:
  RecomputeCounter(int64_t horizon, double rho,
                   const util::SubstreamRng& stream);

  Result<int64_t> Observe(int64_t z) override;
  int64_t steps() const override { return t_; }
  int64_t horizon() const override { return horizon_; }
  double rho() const override { return rho_; }
  double ErrorBound(double beta, int64_t t) const override;
  std::string name() const override { return "recompute"; }
  Status SaveState(std::ostream& out) const override;
  Status RestoreState(std::istream& in) override;

 private:
  int64_t horizon_;
  double rho_;
  double sigma2_;
  dp::NoiseSampler noise_;  // batched sampler for sigma2_, bit-identical
  int64_t t_ = 0;
  int64_t true_sum_ = 0;
  util::SubstreamRng stream_;
};

class InputPerturbationCounterFactory : public StreamCounterFactory {
 public:
  Result<std::unique_ptr<StreamCounter>> Create(
      int64_t horizon, double rho,
      const util::SubstreamRng& stream) const override;
  std::string name() const override { return "input-perturbation"; }
};

class RecomputeCounterFactory : public StreamCounterFactory {
 public:
  Result<std::unique_ptr<StreamCounter>> Create(
      int64_t horizon, double rho,
      const util::SubstreamRng& stream) const override;
  std::string name() const override { return "recompute"; }
};

}  // namespace stream
}  // namespace longdp

#endif  // LONGDP_STREAM_NAIVE_COUNTERS_H_
