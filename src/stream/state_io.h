// Token-based state (de)serialization helpers shared by the stream counter
// checkpoint implementations. Doubles round-trip via %.17g so restored
// noise values are bit-identical.

#ifndef LONGDP_STREAM_STATE_IO_H_
#define LONGDP_STREAM_STATE_IO_H_

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace longdp {
namespace stream {
namespace state_io {

inline void WriteDouble(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

inline Result<double> ReadDouble(std::istream& in) {
  std::string tok;
  if (!(in >> tok)) {
    return Status::InvalidArgument("truncated state (double)");
  }
  // strtod with a null endptr would swallow the error path: a corrupted
  // token ("garbage") silently parses as 0.0 and a checkpoint restores to a
  // wrong-but-plausible state. Require the whole token to be consumed.
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') {
    return Status::InvalidArgument("malformed double in state: '" +
                                   tok + "'");
  }
  return v;
}

inline Result<int64_t> ReadInt(std::istream& in) {
  std::string tok;
  if (!(in >> tok)) {
    return Status::InvalidArgument("truncated state (int)");
  }
  // Stream extraction (`in >> v`) parses "12abc" as 12 and leaves "abc" in
  // the stream, misaligning every later field into a plausible-but-wrong
  // state. Strict whole-token parse instead (same discipline as ReadDouble
  // and util::ParseInt64Field).
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0') {
    return Status::InvalidArgument("malformed int in state: '" + tok +
                                   "'");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("int overflows in state: '" + tok +
                                   "'");
  }
  return static_cast<int64_t>(v);
}

inline void WriteIntVector(std::ostream& out,
                           const std::vector<int64_t>& v) {
  out << v.size();
  for (int64_t x : v) out << " " << x;
}

inline Status ReadIntVector(std::istream& in, std::vector<int64_t>* v) {
  LONGDP_ASSIGN_OR_RETURN(int64_t count, ReadInt(in));
  if (count < 0 || count > (int64_t{1} << 32)) {
    return Status::InvalidArgument("implausible counter state vector size");
  }
  v->resize(static_cast<size_t>(count));
  for (auto& x : *v) {
    LONGDP_ASSIGN_OR_RETURN(x, ReadInt(in));
  }
  return Status::OK();
}

inline void WriteDoubleVector(std::ostream& out,
                              const std::vector<double>& v) {
  out << v.size();
  for (double x : v) {
    out << " ";
    WriteDouble(out, x);
  }
}

inline Status ReadDoubleVector(std::istream& in, std::vector<double>* v) {
  LONGDP_ASSIGN_OR_RETURN(int64_t count, ReadInt(in));
  if (count < 0 || count > (int64_t{1} << 32)) {
    return Status::InvalidArgument("implausible counter state vector size");
  }
  v->resize(static_cast<size_t>(count));
  for (auto& x : *v) {
    LONGDP_ASSIGN_OR_RETURN(x, ReadDouble(in));
  }
  return Status::OK();
}

// Substream cursor persistence: counters checkpoint only their draw counts
// (util::SubstreamRng::cursor()); keys never hit disk because they are a
// pure function of the construction seed. Cursors are unsigned 64-bit.

inline Result<uint64_t> ReadCursor(std::istream& in) {
  std::string tok;
  if (!(in >> tok)) {
    return Status::InvalidArgument("truncated state (cursor)");
  }
  // Stream extraction of an unsigned silently NEGATES a signed token: a
  // corrupted "-1" restores as 2^64 - 1 without setting failbit, and the
  // counter replays from a cursor 18 quintillion draws ahead. Cursors are
  // draw counts, so any leading sign ('-' or '+') is rejected outright,
  // and the whole token must parse.
  if (!std::isdigit(static_cast<unsigned char>(tok[0]))) {
    return Status::InvalidArgument("malformed cursor in state: '" +
                                   tok + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (*end != '\0') {
    return Status::InvalidArgument("malformed cursor in state: '" +
                                   tok + "'");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("cursor overflows in state: '" +
                                   tok + "'");
  }
  return static_cast<uint64_t>(v);
}

inline void WriteCursorVector(std::ostream& out,
                              const std::vector<uint64_t>& v) {
  out << v.size();
  for (uint64_t x : v) out << " " << x;
}

inline Status ReadCursorVector(std::istream& in, std::vector<uint64_t>* v) {
  LONGDP_ASSIGN_OR_RETURN(int64_t count, ReadInt(in));
  if (count < 0 || count > (int64_t{1} << 32)) {
    return Status::InvalidArgument("implausible counter state vector size");
  }
  v->resize(static_cast<size_t>(count));
  for (auto& x : *v) {
    LONGDP_ASSIGN_OR_RETURN(x, ReadCursor(in));
  }
  return Status::OK();
}

// Checkpoint sentinels. Every SaveCheckpoint format ends with a
// format-specific trailer token; loaders consume it with ExpectToken and
// hard-fail otherwise, so a checkpoint truncated after a syntactically
// valid prefix can never load. Whole-file loaders additionally call
// ExpectExhausted: trailing bytes after the sentinel (a concatenated second
// checkpoint, appended garbage) are an error for a file that is supposed
// to BE a checkpoint, while mid-stream embedding (the counter bank inside
// a synthesizer checkpoint) skips that call.

inline Status ExpectToken(std::istream& in, const std::string& expected,
                          const std::string& what) {
  std::string tok;
  if (!(in >> tok)) {
    return Status::InvalidArgument("truncated " + what + ": expected '" +
                                   expected + "'");
  }
  if (tok != expected) {
    return Status::InvalidArgument("corrupt " + what + ": expected '" +
                                   expected + "', got '" + tok + "'");
  }
  return Status::OK();
}

inline Status ExpectExhausted(std::istream& in, const std::string& what) {
  std::string tok;
  if (in >> tok) {
    return Status::InvalidArgument("trailing data after " + what + ": '" +
                                   tok + "'");
  }
  return Status::OK();
}

}  // namespace state_io
}  // namespace stream
}  // namespace longdp

#endif  // LONGDP_STREAM_STATE_IO_H_
