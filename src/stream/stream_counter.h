// Generic private stream counter interface (paper Appendix A).
//
// A stream counter consumes a stream z_1, z_2, ..., z_T of non-negative
// integers and, at every step, releases a private estimate of the prefix sum
// S_t = z_1 + ... + z_t. Neighboring streams differ in one entry by at most
// 1, and the released sequence must be rho-zCDP with respect to that
// relation.
//
// Randomness: every counter owns keyed substreams derived from the
// SubstreamRng handed to its factory (util/substream.h) — tree-shaped
// counters hold one substream per binary level, flat counters hold one.
// Observe therefore takes no RNG: the noise at (counter, level, draw-index)
// is a pure function of the construction key, which is what lets a bank of
// counters advance in parallel across ThreadPool shards and still release
// bit-identical values at any shard or thread count. Checkpoints persist
// only the substream cursors (keys are re-derived from construction
// parameters), so a restored counter resumes the exact remaining noise
// sequence.
//
// Algorithm 2 of the paper is written against this interface (its Section
// 1.1 explicitly notes the tree counter can be swapped for any stream
// counter); bench/counter_ablation exercises all implementations.

#ifndef LONGDP_STREAM_STREAM_COUNTER_H_
#define LONGDP_STREAM_STREAM_COUNTER_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "util/status.h"
#include "util/substream.h"

namespace longdp {
namespace stream {

/// \brief Interface for rho-zCDP continual counting.
///
/// Implementations are single-use: construct, then call Observe exactly once
/// per time step in order. They are deliberately not thread-safe (one counter
/// per stream; CounterBank parallelizes across counters, the harness across
/// repetitions).
class StreamCounter {
 public:
  virtual ~StreamCounter() = default;

  /// Feeds the next stream element (z_t >= 0) and returns the noisy running
  /// sum estimate S~_t, drawing noise from the counter's own substreams.
  /// Returns OutOfRange once more than T elements have been observed.
  virtual Result<int64_t> Observe(int64_t z) = 0;

  /// Time steps observed so far.
  virtual int64_t steps() const = 0;

  /// The stream length bound this counter was built for.
  virtual int64_t horizon() const = 0;

  /// The total zCDP cost of the counter's entire output sequence.
  virtual double rho() const = 0;

  /// Per-time-step high-probability additive error bound: with probability
  /// at least 1 - beta, |S~_t - S_t| <= ErrorBound(beta, t) for the single
  /// step t (union-bounding across steps is the caller's job).
  virtual double ErrorBound(double beta, int64_t t) const = 0;

  /// Implementation name for reports ("tree", "honaker", ...).
  virtual std::string name() const = 0;

  /// Serializes the counter's mutable state (NOT its construction
  /// parameters) as whitespace-separated tokens, for checkpointing a
  /// continual release mid-horizon. Substream positions are persisted as
  /// cursors only — the keys are a function of the construction seed. The
  /// stream may contain already-drawn noise values — a checkpoint is
  /// curator state, not a release.
  virtual Status SaveState(std::ostream& out) const = 0;

  /// Restores state previously written by SaveState into a counter that
  /// was constructed with the same (horizon, rho, substream).
  virtual Status RestoreState(std::istream& in) = 0;
};

/// Factory signature used by CounterBank / CumulativeSynthesizer so the
/// counter implementation is a run-time choice.
class StreamCounterFactory {
 public:
  virtual ~StreamCounterFactory() = default;

  /// Creates a counter for streams of length at most `horizon` with total
  /// privacy cost `rho`, drawing noise from substreams derived off
  /// `stream` (the counter keys per-level children via stream.Leaf).
  /// Returns InvalidArgument for horizon < 1 or rho <= 0 (rho == +infinity
  /// is the zero-noise test path).
  virtual Result<std::unique_ptr<StreamCounter>> Create(
      int64_t horizon, double rho, const util::SubstreamRng& stream) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace stream
}  // namespace longdp

#endif  // LONGDP_STREAM_STREAM_COUNTER_H_
