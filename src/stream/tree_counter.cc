#include "stream/tree_counter.h"

#include <cmath>

#include "stream/state_io.h"
#include "util/bits.h"
#include "util/mathutil.h"

namespace longdp {
namespace stream {

TreeCounter::TreeCounter(int64_t horizon, double rho,
                         const util::SubstreamRng& stream)
    : horizon_(horizon),
      rho_(rho),
      levels_(util::FloorLog2(static_cast<uint64_t>(horizon)) + 1),
      sigma2_(std::isinf(rho) ? 0.0
                              : static_cast<double>(levels_) / (2.0 * rho)),
      noise_(dp::NoiseSampler::Gaussian(sigma2_)),
      alpha_(static_cast<size_t>(levels_), 0),
      alpha_noisy_(static_cast<size_t>(levels_), 0) {
  level_streams_.reserve(static_cast<size_t>(levels_));
  for (int j = 0; j < levels_; ++j) {
    level_streams_.push_back(stream.Leaf(static_cast<uint64_t>(j)));
  }
}

Result<int64_t> TreeCounter::Observe(int64_t z) {
  if (t_ >= horizon_) {
    return Status::OutOfRange("tree counter past its horizon T=" +
                              std::to_string(horizon_));
  }
  return Step(z);
}

double TreeCounter::ErrorBound(double beta, int64_t t) const {
  if (sigma2_ == 0.0) return 0.0;
  if (t < 1) t = 1;
  if (beta <= 0.0) beta = 1e-12;
  // S~_t - S_t is a sum of popcount(t) independent discrete Gaussians, each
  // subgaussian with parameter sigma^2; two-sided tail bound.
  int m = util::Popcount(static_cast<uint64_t>(t));
  double var = static_cast<double>(m) * sigma2_;
  return std::sqrt(2.0 * var * std::log(2.0 / beta));
}

Status TreeCounter::SaveState(std::ostream& out) const {
  out << t_ << " ";
  state_io::WriteIntVector(out, alpha_);
  out << " ";
  state_io::WriteIntVector(out, alpha_noisy_);
  out << " ";
  std::vector<uint64_t> cursors;
  cursors.reserve(level_streams_.size());
  for (const auto& s : level_streams_) cursors.push_back(s.cursor());
  state_io::WriteCursorVector(out, cursors);
  out << "\n";
  return out.good() ? Status::OK() : Status::IOError("state write failed");
}

Status TreeCounter::RestoreState(std::istream& in) {
  LONGDP_ASSIGN_OR_RETURN(t_, state_io::ReadInt(in));
  LONGDP_RETURN_NOT_OK(state_io::ReadIntVector(in, &alpha_));
  LONGDP_RETURN_NOT_OK(state_io::ReadIntVector(in, &alpha_noisy_));
  std::vector<uint64_t> cursors;
  LONGDP_RETURN_NOT_OK(state_io::ReadCursorVector(in, &cursors));
  if (t_ < 0 || t_ > horizon_ ||
      alpha_.size() != static_cast<size_t>(levels_) ||
      alpha_noisy_.size() != static_cast<size_t>(levels_) ||
      cursors.size() != static_cast<size_t>(levels_)) {
    return Status::InvalidArgument("tree counter state inconsistent");
  }
  for (size_t j = 0; j < cursors.size(); ++j) {
    level_streams_[j].set_cursor(cursors[j]);
  }
  return Status::OK();
}

Result<std::unique_ptr<StreamCounter>> TreeCounterFactory::Create(
    int64_t horizon, double rho, const util::SubstreamRng& stream) const {
  if (horizon < 1) {
    return Status::InvalidArgument("stream horizon must be >= 1, got " +
                                   std::to_string(horizon));
  }
  if (!(rho > 0.0)) {
    return Status::InvalidArgument("stream counter rho must be > 0");
  }
  return std::unique_ptr<StreamCounter>(new TreeCounter(horizon, rho, stream));
}

}  // namespace stream
}  // namespace longdp
