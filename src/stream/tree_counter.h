// Tree-based aggregation stream counter (paper Algorithm 3; Dwork-Naor-
// Pitassi-Rothblum '10, Chan-Shi-Song '11), with discrete Gaussian noise.
//
// The streaming formulation keeps one pending partial sum alpha_j per binary
// level j. At step t, the lowest set bit of t determines the level i whose
// node completes: alpha_i absorbs all lower pending sums plus z_t, receives
// fresh noise, and the noisy prefix sum is the sum of noisy nodes at the set
// bits of t — the dyadic decomposition of [1, t], walked iteratively over
// the set bits rather than by scanning every level.
//
// Privacy: one user changes one z_t by 1, which touches at most L =
// floor(log2 T) + 1 noisy nodes (one per level containing leaf t). With
// per-node variance sigma^2 = L / (2 rho), composition gives rho-zCDP for
// the whole output sequence. (The paper states sigma^2 = log T / (2 rho);
// we use the exact level count.)
//
// Randomness: level j's noise comes from its own substream stream.Leaf(j),
// so the node completing at step t draws word number (completions of level
// j so far) of a stream addressed by (seed, ..., level) — independent of
// every other counter in a bank, which is what lets CounterBank advance its
// counters across ThreadPool shards without perturbing any release.
//
// Hot path: stream::CounterBank advances a whole bank of tree counters per
// round through the non-virtual Step() below, with the node noise scale
// precomputed once at construction (node_sigma2()).

#ifndef LONGDP_STREAM_TREE_COUNTER_H_
#define LONGDP_STREAM_TREE_COUNTER_H_

#include <bit>
#include <vector>

#include "dp/noise_sampler.h"
#include "stream/stream_counter.h"

namespace longdp {
namespace stream {

class TreeCounter : public StreamCounter {
 public:
  /// Prefer TreeCounterFactory::Create, which validates arguments.
  TreeCounter(int64_t horizon, double rho, const util::SubstreamRng& stream);

  Result<int64_t> Observe(int64_t z) override;
  int64_t steps() const override { return t_; }
  int64_t horizon() const override { return horizon_; }
  double rho() const override { return rho_; }
  double ErrorBound(double beta, int64_t t) const override;
  std::string name() const override { return "tree"; }
  Status SaveState(std::ostream& out) const override;
  Status RestoreState(std::istream& in) override;

  /// Non-virtual single-step advance used by CounterBank's batched observe
  /// path (and by Observe after its range check). The caller must ensure
  /// steps() < horizon(); behavior is identical to Observe. One discrete
  /// Gaussian draw per call from the completing level's substream, scale
  /// taken from the cached level sigmas.
  int64_t Step(int64_t z) {
    ++t_;
    const uint64_t ut = static_cast<uint64_t>(t_);
    // Level of the node that completes at time t: lowest set bit of t.
    const int i = std::countr_zero(ut);
    // alpha_i <- sum of all lower pending sums + z_t; lower levels reset.
    int64_t acc = z;
    for (int j = 0; j < i; ++j) {
      acc += alpha_[static_cast<size_t>(j)];
      alpha_[static_cast<size_t>(j)] = 0;
      alpha_noisy_[static_cast<size_t>(j)] = 0;
    }
    alpha_[static_cast<size_t>(i)] = acc;
    alpha_noisy_[static_cast<size_t>(i)] =
        acc + noise_.Draw(&level_streams_[static_cast<size_t>(i)]);
    // Prefix sum = dyadic decomposition of [1, t]: iterate the set bits of
    // t directly (bits &= bits - 1 clears the lowest one).
    int64_t s = 0;
    for (uint64_t bits = ut; bits != 0; bits &= bits - 1) {
      s += alpha_noisy_[static_cast<size_t>(std::countr_zero(bits))];
    }
    return s;
  }

  /// Number of binary levels L = floor(log2 T) + 1.
  int levels() const { return levels_; }
  /// The noise variance L / (2 rho) shared by every level, computed once
  /// at construction — the hot path never recomputes a scale.
  double node_sigma2() const { return sigma2_; }

 private:
  int64_t horizon_;
  double rho_;
  int levels_;
  double sigma2_;  // per-node noise scale, cached at construction
  // Batched sampler for sigma2_: same draws as the one-shot function, with
  // the scale constants and chunked word generation amortized (see
  // dp/noise_sampler.h).
  dp::NoiseSampler noise_;
  int64_t t_ = 0;
  std::vector<int64_t> alpha_;        // pending true partial sums per level
  std::vector<int64_t> alpha_noisy_;  // their released noisy values
  // Per-level noise substreams, keyed stream.Leaf(j) at construction.
  std::vector<util::SubstreamRng> level_streams_;
};

class TreeCounterFactory : public StreamCounterFactory {
 public:
  Result<std::unique_ptr<StreamCounter>> Create(
      int64_t horizon, double rho,
      const util::SubstreamRng& stream) const override;
  std::string name() const override { return "tree"; }
};

}  // namespace stream
}  // namespace longdp

#endif  // LONGDP_STREAM_TREE_COUNTER_H_
