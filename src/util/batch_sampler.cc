#include "util/batch_sampler.h"

namespace longdp {
namespace util {

namespace {

// 64x64 -> 128-bit multiply; returns the high word, stores the low word.
#if defined(__SIZEOF_INT128__)
inline uint64_t MulShift(uint64_t x, uint64_t bound, uint64_t* lo) {
  const unsigned __int128 m =
      static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
  *lo = static_cast<uint64_t>(m);
  return static_cast<uint64_t>(m >> 64);
}
#else
// Portable fallback via 32-bit limbs for toolchains without __int128.
inline uint64_t MulShift(uint64_t x, uint64_t bound, uint64_t* lo) {
  const uint64_t x_lo = x & 0xFFFFFFFFull, x_hi = x >> 32;
  const uint64_t b_lo = bound & 0xFFFFFFFFull, b_hi = bound >> 32;
  const uint64_t ll = x_lo * b_lo;
  const uint64_t lh = x_lo * b_hi;
  const uint64_t hl = x_hi * b_lo;
  const uint64_t hh = x_hi * b_hi;
  const uint64_t mid = (ll >> 32) + (lh & 0xFFFFFFFFull) + (hl & 0xFFFFFFFFull);
  *lo = (ll & 0xFFFFFFFFull) | (mid << 32);
  return hh + (lh >> 32) + (hl >> 32) + (mid >> 32);
}
#endif

}  // namespace

uint64_t BatchSampler::Bounded(uint64_t bound) {
  // A bound of 0 or 1 has one representable answer; consume nothing.
  if (bound <= 1) return 0;
  uint64_t lo;
  uint64_t hi = MulShift(rng_->Next(), bound, &lo);
  if (lo < bound) {
    // Possible-bias fringe: now (and only now) pay the division for the
    // exact rejection threshold 2^64 mod bound.
    const uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      hi = MulShift(rng_->Next(), bound, &lo);
    }
  }
  return hi;
}

void BatchSampler::BoundedBulk(uint64_t bound, uint64_t* out, size_t count) {
  if (bound <= 1) {
    std::fill(out, out + count, uint64_t{0});
    return;
  }
  uint64_t threshold = 0;
  bool have_threshold = false;
  uint64_t words[kChunkWords];
  size_t i = 0;
  while (i < count) {
    // Prefetch exactly the words still owed (one per remaining draw):
    // FillWords batches the word generation (SIMD for SubstreamRng, a tight
    // dependent loop for xoshiro) and the multiply/store conversion below
    // is independent work per element.
    const size_t c = std::min(kChunkWords, count - i);
    rng_->FillWords(words, c);
    for (size_t w = 0; w < c; ++w, ++i) {
      uint64_t lo;
      uint64_t hi = MulShift(words[w], bound, &lo);
      if (lo < bound) {
        if (!have_threshold) {
          threshold = (0 - bound) % bound;
          have_threshold = true;
        }
        while (lo < threshold) {
          hi = MulShift(rng_->Next(), bound, &lo);
        }
      }
      out[i] = hi;
    }
  }
}

size_t BatchSampler::FillDecreasingDraws(uint64_t n, uint64_t start,
                                         size_t count, uint64_t* out) {
  const size_t c = std::min(kChunkWords, count);
  uint64_t words[kChunkWords];
  rng_->FillWords(words, c);
  for (size_t w = 0; w < c; ++w) {
    const uint64_t bound = n - (start + static_cast<uint64_t>(w));
    uint64_t lo;
    uint64_t hi = MulShift(words[w], bound, &lo);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        hi = MulShift(rng_->Next(), bound, &lo);
      }
    }
    out[w] = hi;
  }
  return c;
}

}  // namespace util
}  // namespace longdp
