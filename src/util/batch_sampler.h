// Batched bounded-uniform sampling over a util::Rng word stream.
//
// Rng::UniformInt pays a 64-bit division per draw (the classic rejection
// threshold `(-bound) % bound` is computed up front, every time). Stage 2 of
// every synthesizer is a long run of such draws — per-group Fisher-Yates
// promotion selections and cohort partial shuffles — so the division
// dominates once stage 1 is word-parallel. BatchSampler replaces the hot
// path with Lemire's multiply-shift rejection (Lemire, "Fast random integer
// generation in an interval", TOMACS 2019):
//
//   m  = x * bound            (64x64 -> 128-bit product)
//   hi = m >> 64              (the candidate draw, already in [0, bound))
//   lo = m mod 2^64           (accept unless lo lands in the biased fringe)
//
// The division for the exact rejection threshold `2^64 mod bound` is only
// evaluated when `lo < bound` — probability bound / 2^64, i.e. essentially
// never for the group sizes stage 2 sees — so the common path is one
// multiply and one compare. Bulk fills additionally prefetch raw Rng words
// in chunks so the serially-dependent xoshiro state update is not
// interleaved with the multiply/store work of each conversion.
//
// Stream discipline: every method consumes Rng words in stream order and
// consumes EXACTLY one word per accepted draw plus one per rejection —
// prefetched chunks are sized by the number of draws still owed, so no word
// is ever fetched and discarded. Results are therefore a deterministic
// function of (seed, call sequence) on every platform, like everything else
// built on util::Rng.
//
// Edge semantics (the bounds the old hand-rolled loops special-cased):
//   * Bounded(0) == 0 and Bounded(1) == 0, consuming NO words — a
//     single-element range has one representable answer. (Rng::UniformInt(1)
//     consumes a word; BatchSampler deliberately does not.)
//   * PartialShuffle clamps k to n and skips the final bound-1 draw, so a
//     full shuffle (k == n) and a maximal partial shuffle (k == n-1) consume
//     identical streams and both leave a uniform permutation.

#ifndef LONGDP_UTIL_BATCH_SAMPLER_H_
#define LONGDP_UTIL_BATCH_SAMPLER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace longdp {
namespace util {

class BatchSampler {
 public:
  /// Non-owning; `rng` must outlive the sampler. The sampler holds no
  /// buffered words between calls — interleaving BatchSampler draws with
  /// direct Rng draws is safe and deterministic.
  explicit BatchSampler(Rng* rng) : rng_(rng) {}

  /// One uniform draw in [0, bound) via multiply-shift rejection.
  /// bound <= 1 returns 0 without consuming a word.
  uint64_t Bounded(uint64_t bound);

  /// Fills out[0..count) with iid uniform draws in [0, bound), prefetching
  /// Rng words in chunks. bound <= 1 zero-fills without consuming words.
  void BoundedBulk(uint64_t bound, uint64_t* out, size_t count);

  /// Partial Fisher-Yates: after the call, data[0..min(k, n)) is a
  /// uniformly chosen min(k, n)-subset of the n elements, in uniform
  /// order; data[min(k, n)..n) holds the remainder. Consumes
  /// min(k, n-1) draws (the final bound-1 draw of a full shuffle is
  /// skipped). k <= 0 or n <= 1 is a no-op.
  template <typename T>
  void PartialShuffle(T* data, int64_t n, int64_t k) {
    if (n <= 1 || k <= 0) return;
    if (k > n) k = n;
    const int64_t draws = std::min(k, n - 1);
    uint64_t js[kChunkWords];
    int64_t i = 0;
    while (i < draws) {
      const size_t c = FillDecreasingDraws(static_cast<uint64_t>(n),
                                           static_cast<uint64_t>(i),
                                           static_cast<size_t>(draws - i), js);
      for (size_t w = 0; w < c; ++w, ++i) {
        const int64_t j = i + static_cast<int64_t>(js[w]);
        std::swap(data[i], data[static_cast<size_t>(j)]);
      }
    }
  }

  /// Full Fisher-Yates shuffle of `v` (n-1 draws).
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    PartialShuffle(v->data(), static_cast<int64_t>(v->size()),
                   static_cast<int64_t>(v->size()));
  }

  Rng* rng() const { return rng_; }

 private:
  static constexpr size_t kChunkWords = 256;

  /// Fills out[c] ~ U[0, n - (start + c)) for c in [0, min(count, chunk))
  /// and returns how many it filled. Caller guarantees every bound >= 2.
  size_t FillDecreasingDraws(uint64_t n, uint64_t start, size_t count,
                             uint64_t* out);

  Rng* rng_;
};

}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_BATCH_SAMPLER_H_
