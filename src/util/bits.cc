#include "util/bits.h"

#include <bit>
#include <sstream>

namespace longdp {
namespace util {

int Popcount(Pattern p) { return std::popcount(p); }

std::string PatternToString(Pattern p, int k) {
  std::string out(static_cast<size_t>(k), '0');
  for (int j = 0; j < k; ++j) {
    if ((p >> (k - 1 - j)) & 1) out[static_cast<size_t>(j)] = '1';
  }
  return out;
}

Result<Pattern> PatternFromString(const std::string& s) {
  if (s.empty() || s.size() > static_cast<size_t>(kMaxWindow)) {
    return Status::InvalidArgument("pattern string length must be in [1, " +
                                   std::to_string(kMaxWindow) + "]");
  }
  Pattern p = 0;
  for (char c : s) {
    if (c != '0' && c != '1') {
      return Status::InvalidArgument("pattern string must be binary, got '" +
                                     s + "'");
    }
    p = (p << 1) | static_cast<Pattern>(c == '1');
  }
  return p;
}

bool HasOnesRun(Pattern p, int k, int run) {
  if (run <= 0) return true;
  if (run > k) return false;
  int current = 0;
  for (int j = 0; j < k; ++j) {
    if ((p >> j) & 1) {
      if (++current >= run) return true;
    } else {
      current = 0;
    }
  }
  return false;
}

bool HasAtLeastOnes(Pattern p, int k, int m) {
  (void)k;
  return Popcount(p) >= m;
}

Status ValidateWindow(int k) {
  if (k < 1 || k > 30) {
    return Status::InvalidArgument(
        "window width k must be in [1, 30] for 2^k-bin histograms, got " +
        std::to_string(k));
  }
  return Status::OK();
}

}  // namespace util
}  // namespace longdp
