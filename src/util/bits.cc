#include "util/bits.h"

#include <sstream>

// <version> itself is missing from the old standard libraries the portable
// fallback below targets, so probe for it before including.
#ifdef __has_include
#if __has_include(<version>)
#include <version>
#endif
#endif

#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
#include <bit>
#define LONGDP_HAVE_STD_POPCOUNT 1
#endif

namespace longdp {
namespace util {

#if defined(LONGDP_HAVE_STD_POPCOUNT)
int Popcount(Pattern p) { return std::popcount(p); }
#else
// Portable fallback (Kernighan) for toolchains whose standard library does
// not ship <bit> bit operations yet; same contract as std::popcount.
int Popcount(Pattern p) {
  int n = 0;
  for (; p != 0; p &= p - 1) ++n;
  return n;
}
#endif

std::string PatternToString(Pattern p, int k) {
  std::string out(static_cast<size_t>(k), '0');
  for (int j = 0; j < k; ++j) {
    if ((p >> (k - 1 - j)) & 1) out[static_cast<size_t>(j)] = '1';
  }
  return out;
}

Result<Pattern> PatternFromString(const std::string& s) {
  if (s.empty() || s.size() > static_cast<size_t>(kMaxWindow)) {
    return Status::InvalidArgument("pattern string length must be in [1, " +
                                   std::to_string(kMaxWindow) + "]");
  }
  Pattern p = 0;
  for (char c : s) {
    if (c != '0' && c != '1') {
      return Status::InvalidArgument("pattern string must be binary, got '" +
                                     s + "'");
    }
    p = (p << 1) | static_cast<Pattern>(c == '1');
  }
  return p;
}

bool HasOnesRun(Pattern p, int k, int run) {
  if (run <= 0) return true;
  if (run > k) return false;
  int current = 0;
  for (int j = 0; j < k; ++j) {
    if ((p >> j) & 1) {
      if (++current >= run) return true;
    } else {
      current = 0;
    }
  }
  return false;
}

bool HasAtLeastOnes(Pattern p, int k, int m) {
  (void)k;
  return Popcount(p) >= m;
}

Status ValidateWindow(int k) {
  if (k < 1 || k > 30) {
    return Status::InvalidArgument(
        "window width k must be in [1, 30] for 2^k-bin histograms, got " +
        std::to_string(k));
  }
  return Status::OK();
}

}  // namespace util
}  // namespace longdp
