// Bit-pattern helpers for length-k binary window patterns.
//
// A window pattern s = (s_1, ..., s_k), where s_1 is the OLDEST bit in the
// window and s_k the MOST RECENT, is encoded as the unsigned integer
//
//     code(s) = sum_j s_j << (k - j),
//
// i.e. the oldest bit is the most significant. Under this encoding the
// sliding-window transitions of Algorithm 1 become simple shifts:
//
//  * appending bit c to the overlap z (k-1 bits):  (z << 1) | c
//  * the overlap that pattern p hands to the next window: p & ((1<<(k-1))-1)
//  * "patterns ending in 0z / 1z": low k-1 bits equal z.

#ifndef LONGDP_UTIL_BITS_H_
#define LONGDP_UTIL_BITS_H_

// longdp is a C++20 codebase (bits.cc prefers std::popcount from <bit>, and
// other subsystems use C++20 library features freely). Fail loudly here, at
// the bottom of the include graph, so a toolchain configured for an older
// standard produces one actionable diagnostic instead of a template spew.
#if defined(_MSVC_LANG)
#if _MSVC_LANG < 202002L
#error "longdp requires C++20: compile with /std:c++20 (CMake sets this via CMAKE_CXX_STANDARD 20)"
#endif
#elif defined(__cplusplus) && __cplusplus < 202002L
#error "longdp requires C++20: compile with -std=c++20 (CMake sets this via CMAKE_CXX_STANDARD 20)"
#endif

#include <cstdint>
#include <string>

#include "util/status.h"

namespace longdp {
namespace util {

/// Pattern codes are 64-bit; windows up to k = 62 are supported (far beyond
/// the k <= ~20 regime where 2^k histograms are tractable).
using Pattern = uint64_t;

inline constexpr int kMaxWindow = 62;

/// Number of distinct patterns of width k, i.e. 2^k.
constexpr uint64_t NumPatterns(int k) { return uint64_t{1} << k; }

/// Mask with the low k bits set.
constexpr uint64_t LowMask(int k) { return (uint64_t{1} << k) - 1; }

/// Number of 1-bits in the pattern.
int Popcount(Pattern p);

/// Appends bit `c` to the k-wide pattern `p`, dropping the oldest bit:
/// result is again k bits wide.
constexpr Pattern SlideAppend(Pattern p, int k, int c) {
  return ((p << 1) | static_cast<Pattern>(c & 1)) & LowMask(k);
}

/// The (k-1)-bit overlap a k-bit pattern shares with the next window
/// (its k-1 most recent bits).
constexpr Pattern Overlap(Pattern p, int k) { return p & LowMask(k - 1); }

/// The most recent bit of the pattern.
constexpr int NewestBit(Pattern p) { return static_cast<int>(p & 1); }

/// The oldest bit of the k-wide pattern.
constexpr int OldestBit(Pattern p, int k) {
  return static_cast<int>((p >> (k - 1)) & 1);
}

/// The kp-bit suffix (most recent kp bits) of a k-wide pattern; kp <= k.
constexpr Pattern Suffix(Pattern p, int kp) { return p & LowMask(kp); }

/// Renders the pattern oldest-bit-first, e.g. k=3 code 0b011 -> "011".
std::string PatternToString(Pattern p, int k);

/// Parses an oldest-bit-first binary string such as "0110".
Result<Pattern> PatternFromString(const std::string& s);

/// True iff the k-wide pattern contains a run of at least `run` consecutive
/// 1-bits. run >= 1.
bool HasOnesRun(Pattern p, int k, int run);

/// True iff the k-wide pattern contains at least `m` 1-bits.
bool HasAtLeastOnes(Pattern p, int k, int m);

/// Validates a window width for histogram-based synthesis (1 <= k <= 30 so
/// that 2^k bins fit comfortably in memory); returns InvalidArgument
/// otherwise.
Status ValidateWindow(int k);

}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_BITS_H_
