#include "util/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/json.h"

namespace longdp {
namespace util {

namespace {
bool NeedsQuoting(const std::string& f) {
  return f.find_first_of(",\"\n\r") != std::string::npos;
}

std::string Quote(const std::string& f) {
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    if (NeedsQuoting(fields[i])) {
      *out_ << Quote(fields[i]);
    } else {
      *out_ << fields[i];
    }
  }
  *out_ << '\n';
}

std::string CsvWriter::Field(double v) {
  // Round-trip precision: CSV exports feed the stored-baseline diff
  // workflow, where %.12g-style truncation would register as deltas.
  return FormatDoubleRoundTrip(v);
}

std::string CsvWriter::Field(int64_t v) { return std::to_string(v); }
std::string CsvWriter::Field(uint64_t v) { return std::to_string(v); }

Result<int64_t> ParseInt64Field(const std::string& field) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("expected integer field, got '" + field +
                                   "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("integer field overflows int64: '" + field +
                              "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDoubleField(const std::string& field) {
  // ERANGE (overflow to inf, underflow to 0/denormal) is accepted: the
  // writer side round-trips inf/nan via FormatDoubleRoundTrip.
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("expected numeric field, got '" + field +
                                   "'");
  }
  return v;
}

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else {
      if (c == '"') {
        if (!cur.empty()) {
          return Status::InvalidArgument("stray quote mid-field in CSV line");
        }
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(cur));
        cur.clear();
      } else if (c == '\r') {
        // Ignore carriage returns (CRLF files).
      } else {
        cur += c;
      }
    }
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV line");
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open CSV file: " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    LONGDP_ASSIGN_OR_RETURN(auto fields, ParseCsvLine(line));
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace util
}  // namespace longdp
