// Minimal CSV reader/writer used by the data loaders and the benchmark
// harness (experiment outputs are emitted both as aligned text and CSV).

#ifndef LONGDP_UTIL_CSV_H_
#define LONGDP_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace longdp {
namespace util {

/// \brief Streaming CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream* out) : out_(out) {}

  /// Writes one row; fields containing commas, quotes, or newlines are
  /// quoted and inner quotes doubled.
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough digits to round-trip.
  static std::string Field(double v);
  static std::string Field(int64_t v);
  static std::string Field(uint64_t v);
  static std::string Field(int v) { return Field(static_cast<int64_t>(v)); }
  static std::string Field(const std::string& s) { return s; }

 private:
  std::ostream* out_;
};

/// Strictly parses a whole field as a base-10 int64. Unlike a bare
/// strtoll(field, nullptr, 10), trailing garbage, overflow, and empty
/// fields are errors instead of silently parsing to 0 — a corrupted CSV
/// must fail the load, not merge rows into record 0.
Result<int64_t> ParseInt64Field(const std::string& field);

/// Strictly parses a whole field as a double ("inf"/"nan" accepted, as
/// emitted by FormatDoubleRoundTrip). Same contract as ParseInt64Field.
Result<double> ParseDoubleField(const std::string& field);

/// Parses one CSV line into fields, honoring RFC-4180 quoting.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line);

/// Reads an entire CSV file into rows of fields.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_CSV_H_
