#include "util/flat_groups.h"

namespace longdp {
namespace util {

void FlatGroups::Reset(size_t num_groups) {
  cursor_.assign(num_groups, 0);
  offsets_.assign(num_groups + 1, 0);
}

void FlatGroups::BuildOffsets() {
  int64_t running = 0;
  const size_t groups = cursor_.size();
  for (size_t g = 0; g < groups; ++g) {
    offsets_[g] = running;
    running += cursor_[g];
    // Arm the scatter cursor at the group's start.
    cursor_[g] = offsets_[g];
  }
  offsets_[groups] = running;
  records_.resize(static_cast<size_t>(running));
}

}  // namespace util
}  // namespace longdp
