// Counting-sort record regrouping: the flat replacement for the ragged
// vector<vector<record>> "group index" the synthesizers rebuild every
// round.
//
// The stage-2 slide of the window synthesizers moves EVERY record to a new
// (k-1)-overlap group each round. With ragged vectors that is one
// capacity-checked push_back per record into A^{k-1} separately allocated
// vectors; with a counting sort it is the classic three-phase pass over one
// contiguous array:
//
//   1. count:   AddCount(g, c) — per-group totals, known arithmetically
//               from the slide targets before any record moves;
//   2. offsets: BuildOffsets() — one exclusive prefix sum;
//   3. scatter: Place(g, rec)  — each record written once at its group
//               cursor.
//
// Scatter order is whatever order the caller emits records in, so a
// deterministic emission order gives a deterministic regrouping. Two
// FlatGroups double-buffer across rounds (swap), and Reset keeps capacity,
// so the steady state allocates nothing.

#ifndef LONGDP_UTIL_FLAT_GROUPS_H_
#define LONGDP_UTIL_FLAT_GROUPS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace longdp {
namespace util {

class FlatGroups {
 public:
  /// Starts a new count phase with `num_groups` empty groups. Keeps
  /// capacity from prior rounds.
  void Reset(size_t num_groups);

  /// Count phase: group `g` will receive `c` more records. Only valid
  /// between Reset and BuildOffsets.
  void AddCount(size_t g, int64_t c) { cursor_[g] += c; }

  /// Prefix-sums the declared counts into group offsets and arms the
  /// per-group scatter cursors. Call exactly once per Reset, after all
  /// AddCount calls.
  void BuildOffsets();

  /// Scatter phase: appends `rec` to group `g`. The caller must not place
  /// more records into a group than it declared.
  void Place(size_t g, int64_t rec) {
    records_[static_cast<size_t>(cursor_[g]++)] = rec;
  }

  /// Scatter phase: appends `count` records from `recs` to group `g` in
  /// one ranged copy — same result as `count` Place calls in order.
  void PlaceRange(size_t g, const int64_t* recs, int64_t count) {
    std::copy(recs, recs + count,
              records_.data() + static_cast<size_t>(cursor_[g]));
    cursor_[g] += count;
  }

  /// Scatter phase: appends the consecutive record ids first, first + 1,
  /// ..., first + count - 1 to group `g`.
  void PlaceSequence(size_t g, int64_t first, int64_t count) {
    int64_t* dst = records_.data() + static_cast<size_t>(cursor_[g]);
    for (int64_t i = 0; i < count; ++i) dst[i] = first + i;
    cursor_[g] += count;
  }

  size_t num_groups() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  int64_t size(size_t g) const { return offsets_[g + 1] - offsets_[g]; }
  int64_t total() const { return offsets_.empty() ? 0 : offsets_.back(); }

  /// Mutable view of group g's records (valid after BuildOffsets; contents
  /// meaningful once the scatter phase has filled them).
  int64_t* group_data(size_t g) {
    return records_.data() + static_cast<size_t>(offsets_[g]);
  }
  const int64_t* group_data(size_t g) const {
    return records_.data() + static_cast<size_t>(offsets_[g]);
  }

  void swap(FlatGroups& other) {
    records_.swap(other.records_);
    offsets_.swap(other.offsets_);
    cursor_.swap(other.cursor_);
  }

 private:
  std::vector<int64_t> records_;  ///< all groups, concatenated
  std::vector<int64_t> offsets_;  ///< num_groups + 1 boundaries
  /// Counts during the count phase, then per-group write cursors.
  std::vector<int64_t> cursor_;
};

}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_FLAT_GROUPS_H_
