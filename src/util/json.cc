#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace longdp {
namespace util {

std::string FormatDoubleRoundTrip(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  return buf;  // %.17g always round-trips for IEEE-754 doubles
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_items()) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonNumberValue(const JsonValue& v, double* out) {
  if (v.is_number()) {
    *out = v.number_value();
    return true;
  }
  if (v.is_string()) {
    const std::string& s = v.string_value();
    if (s == "NaN") {
      *out = std::nan("");
      return true;
    }
    if (s == "Infinity") {
      *out = HUGE_VAL;
      return true;
    }
    if (s == "-Infinity") {
      *out = -HUGE_VAL;
      return true;
    }
  }
  return false;
}

// --- Parser ----------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    LONGDP_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        LONGDP_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return JsonValue(true);
        }
        return Error("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return JsonValue(false);
        }
        return Error("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return JsonValue();
        }
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      LONGDP_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      LONGDP_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue::Array items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(items));
    while (true) {
      LONGDP_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      items.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          LONGDP_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Combine a surrogate pair when present.
          if (cp >= 0xD800 && cp <= 0xDBFF &&
              text_.compare(pos_, 2, "\\u") == 0) {
            size_t saved = pos_;
            pos_ += 2;
            LONGDP_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              pos_ = saved;  // lone high surrogate; encode it as-is
            }
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return cp;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token == "-") {
      pos_ = start;
      return Error("malformed number '" + token + "'");
    }
    return JsonValue(v);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

// --- Writer ----------------------------------------------------------------

void JsonWriter::Indent() {
  *out_ << '\n' << std::string(2 * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the separator and indentation
  }
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (!top.first) *out_ << ',';
  top.first = false;
  Indent();
}

void JsonWriter::BeginObject() {
  BeforeValue();
  *out_ << '{';
  stack_.push_back(Frame{/*is_object=*/true, /*first=*/true});
}

void JsonWriter::EndObject() {
  bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) Indent();
  *out_ << '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  *out_ << '[';
  stack_.push_back(Frame{/*is_object=*/false, /*first=*/true});
}

void JsonWriter::EndArray() {
  bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) Indent();
  *out_ << ']';
}

void JsonWriter::Key(const std::string& key) {
  Frame& top = stack_.back();
  if (!top.first) *out_ << ',';
  top.first = false;
  Indent();
  *out_ << '"' << JsonEscape(key) << "\": ";
  pending_key_ = true;
}

void JsonWriter::Value(const std::string& v) {
  BeforeValue();
  *out_ << '"' << JsonEscape(v) << '"';
}

void JsonWriter::Value(double v) {
  if (std::isnan(v)) {
    Value(std::string("NaN"));
    return;
  }
  if (std::isinf(v)) {
    Value(std::string(v > 0 ? "Infinity" : "-Infinity"));
    return;
  }
  BeforeValue();
  *out_ << FormatDoubleRoundTrip(v);
}

void JsonWriter::Value(int64_t v) {
  BeforeValue();
  *out_ << v;
}

void JsonWriter::Value(uint64_t v) {
  BeforeValue();
  *out_ << v;
}

void JsonWriter::Value(bool v) {
  BeforeValue();
  *out_ << (v ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  *out_ << "null";
}

}  // namespace util
}  // namespace longdp
