// Minimal JSON support for the benchmark reporting subsystem: a streaming
// writer with stable formatting, a strict recursive-descent parser, and a
// shortest-round-trip double formatter shared with the CSV writer. The
// machine-readable outputs (BENCH_*.json, CSV exports) must preserve full
// double precision so stored baselines diff exactly.

#ifndef LONGDP_UTIL_JSON_H_
#define LONGDP_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.h"

namespace longdp {
namespace util {

/// Formats `v` with the fewest decimal digits (<= 17) that parse back to
/// exactly the same double. Non-finite values format as "nan"/"inf"/"-inf"
/// (callers emitting strict JSON must special-case them; JsonWriter does).
std::string FormatDoubleRoundTrip(double v);

/// Escapes `s` for inclusion in a JSON string literal (without the
/// surrounding quotes): quote, backslash, and control characters.
std::string JsonEscape(const std::string& s);

/// \brief Parsed JSON document node.
///
/// Objects preserve insertion order (serialization must be stable for
/// baseline diffs), with linear-scan lookup — report files are small.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : var_(nullptr) {}                            // null
  explicit JsonValue(bool b) : var_(b) {}
  explicit JsonValue(double d) : var_(d) {}
  explicit JsonValue(std::string s) : var_(std::move(s)) {}
  explicit JsonValue(Array a) : var_(std::move(a)) {}
  explicit JsonValue(Object o) : var_(std::move(o)) {}

  Type type() const {
    return static_cast<Type>(var_.index());
  }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool bool_value() const { return std::get<bool>(var_); }
  double number_value() const { return std::get<double>(var_); }
  const std::string& string_value() const {
    return std::get<std::string>(var_);
  }
  const Array& array_items() const { return std::get<Array>(var_); }
  const Object& object_items() const { return std::get<Object>(var_); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> var_;
};

/// Parses a complete JSON document. Strict: no trailing garbage, no
/// comments, no NaN/Infinity literals (non-finite doubles travel as the
/// strings "NaN"/"Infinity"/"-Infinity"; see JsonNumberValue).
Result<JsonValue> ParseJson(const std::string& text);

/// Reads `v` as a double, accepting either a JSON number or the special
/// strings "NaN"/"Infinity"/"-Infinity" that JsonWriter emits for
/// non-finite values. Returns false if `v` is neither.
bool JsonNumberValue(const JsonValue& v, double* out);

/// \brief Streaming JSON writer with 2-space indentation and stable output.
///
/// Usage mirrors a SAX emitter: BeginObject/Key/Value/EndObject. Doubles are
/// written with round-trip precision; non-finite doubles are written as the
/// strings "NaN"/"Infinity"/"-Infinity" so the document stays valid JSON.
class JsonWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit JsonWriter(std::ostream* out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes the key of the next object member; must be inside an object.
  void Key(const std::string& key);

  void Value(const std::string& v);
  void Value(const char* v) { Value(std::string(v)); }
  void Value(double v);
  void Value(int64_t v);
  void Value(uint64_t v);
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(bool v);
  void Null();

  /// Convenience for `Key(k); Value(v);`.
  template <typename T>
  void KeyValue(const std::string& k, const T& v) {
    Key(k);
    Value(v);
  }

 private:
  struct Frame {
    bool is_object = false;
    bool first = true;
  };

  void BeforeValue();  // separators + indentation for the next value
  void Indent();

  std::ostream* out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_JSON_H_
