#include "util/logging.h"

#include <cstdio>
#include <mutex>

namespace longdp {
namespace util {

namespace {
std::mutex g_mu;
LogLevel g_min_level = LogLevel::kInfo;
LogSink g_sink = [](LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[longdp %s] %s\n", LogLevelName(level), msg.c_str());
};
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mu);
  LogSink prev = g_sink;
  g_sink = std::move(sink);
  return prev;
}

void SetMinLogLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_min_level = level;
}

LogLevel MinLogLevel() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_min_level;
}

namespace internal {
void Emit(LogLevel level, const std::string& msg) {
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (level < g_min_level) return;
    sink = g_sink;
  }
  if (sink) sink(level, msg);
}
}  // namespace internal

}  // namespace util
}  // namespace longdp
