// Lightweight leveled logging. Experiments and library internals log through
// this; tests can capture or silence output by swapping the sink.

#ifndef LONGDP_UTIL_LOGGING_H_
#define LONGDP_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace longdp {
namespace util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// Sink invoked for each emitted record. Defaults to stderr.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the global sink; returns the previous one.
LogSink SetLogSink(LogSink sink);

/// Sets the minimum level that is emitted (default kInfo).
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal {
void Emit(LogLevel level, const std::string& msg);

/// Stream-style accumulator that emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Emit(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace util
}  // namespace longdp

#define LONGDP_LOG(level)                                          \
  if (::longdp::util::LogLevel::level < ::longdp::util::MinLogLevel()) { \
  } else                                                           \
    ::longdp::util::internal::LogMessage(::longdp::util::LogLevel::level)

#endif  // LONGDP_UTIL_LOGGING_H_
