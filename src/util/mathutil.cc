#include "util/mathutil.h"

#include <algorithm>
#include <cmath>

namespace longdp {
namespace util {

int CeilLog2(uint64_t x) {
  int l = 0;
  uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++l;
  }
  return l;
}

int FloorLog2(uint64_t x) {
  int l = 0;
  while (x > 1) {
    x >>= 1;
    ++l;
  }
  return l;
}

int TreeLevels(uint64_t x) { return std::max(CeilLog2(x), 1); }

void MomentAccumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double MomentAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double MomentAccumulator::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  if (p <= 0.0) return *std::min_element(values.begin(), values.end());
  if (p >= 1.0) return *std::max_element(values.begin(), values.end());
  std::sort(values.begin(), values.end());
  // R type-7: h = (n-1)p; interpolate between floor(h) and floor(h)+1.
  double h = static_cast<double>(values.size() - 1) * p;
  size_t lo = static_cast<size_t>(std::floor(h));
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = h - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double MaxAbs(const std::vector<double>& values) {
  double m = 0.0;
  for (double v : values) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace util
}  // namespace longdp
