// Small numeric helpers shared across the library: integer log2 ceilings,
// streaming moment accumulation (Welford), and quantiles (R type-7, matching
// the paper's R-based evaluation scripts).

#ifndef LONGDP_UTIL_MATHUTIL_H_
#define LONGDP_UTIL_MATHUTIL_H_

#include <cstdint>
#include <vector>

namespace longdp {
namespace util {

/// ceil(log2(x)) for x >= 1; returns 0 for x == 1.
int CeilLog2(uint64_t x);

/// floor(log2(x)) for x >= 1.
int FloorLog2(uint64_t x);

/// max(ceil(log2(x)), 1) — the "number of tree levels" quantity L_b used in
/// the paper's Corollary B.1 budget split.
int TreeLevels(uint64_t x);

/// \brief Numerically stable streaming mean/variance (Welford's algorithm).
class MomentAccumulator {
 public:
  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of `values` at probability p in [0,1] using R's default type-7
/// linear interpolation. Sorts a copy; empty input returns 0.
double Quantile(std::vector<double> values, double p);

/// Median shorthand.
double Median(std::vector<double> values);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Maximum absolute value; 0 for empty input.
double MaxAbs(const std::vector<double>& values);

}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_MATHUTIL_H_
