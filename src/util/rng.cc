#include "util/rng.h"

#include <algorithm>
#include <unordered_set>

namespace longdp {
namespace util {

uint64_t SplitMix64Finalize(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t SplitMix64Next(uint64_t* state) {
  return SplitMix64Finalize(*state += 0x9E3779B97F4A7C15ULL);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64Next(&sm);
  // xoshiro256++ requires a not-all-zero state; SplitMix64 cannot emit four
  // zeros in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

void Rng::FillWords(uint64_t* out, size_t count) {
  for (size_t i = 0; i < count; ++i) out[i] = Next();
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // The empty range has one representable answer; returning it (without
  // consuming a draw) beats the division-by-zero the rejection threshold
  // below would otherwise hit.
  if (bound == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  // An inverted range previously underflowed the span: hi = lo - 1 made
  // span == 0, which is indistinguishable from the legitimate full-64-bit
  // request below and silently returned arbitrary 64-bit values. Clamp to
  // the lower bound instead (no draw is consumed).
  if (hi < lo) return lo;
  // Unsigned subtraction: hi - lo as int64_t overflows for spans wider
  // than 2^63 (e.g. lo < 0 < hi at the extremes).
  uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(Next());
  }
  // Add the offset in unsigned arithmetic: for spans wider than 2^63 the
  // draw exceeds INT64_MAX and `lo + int64(draw)` would be signed
  // overflow, even though the mathematical result always lands in
  // [lo, hi]. Two's-complement wraparound delivers exactly that result.
  return static_cast<int64_t>(static_cast<uint64_t>(lo) +
                              UniformInt(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng Rng::Fork() {
  uint64_t seed = Next();
  // Mix once more so a fork and the parent's next draw are decorrelated.
  uint64_t sm = seed ^ 0xD1B54A32D192ED03ULL;
  return Rng(SplitMix64Next(&sm));
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t universe,
                                                  size_t count) {
  if (count > universe) count = universe;
  std::vector<size_t> out;
  out.reserve(count);
  if (count == 0) return out;

  if (count * 3 >= universe) {
    // Dense case: partial Fisher-Yates over the full index range.
    std::vector<size_t> idx(universe);
    for (size_t i = 0; i < universe; ++i) idx[i] = i;
    for (size_t i = 0; i < count; ++i) {
      size_t j = i + static_cast<size_t>(UniformInt(universe - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }

  // Sparse case: Floyd's algorithm, O(count) expected. The result is built
  // in insertion order — a deterministic function of the draw sequence —
  // NOT the unordered_set's iteration order, which differs across standard
  // libraries and would break cross-platform bit-for-bit reproducibility.
  // (When t collides, j itself is always fresh: every earlier insertion is
  // strictly below the current j.)
  std::unordered_set<size_t> chosen;
  chosen.reserve(count * 2);
  for (size_t j = universe - count; j < universe; ++j) {
    size_t t = static_cast<size_t>(UniformInt(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace util
}  // namespace longdp
