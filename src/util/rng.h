// Deterministic pseudo-random number generation for longdp.
//
// Every randomized component in the library draws from an explicitly passed
// util::Rng so that experiments are reproducible from a single seed. Two
// engines live behind the Rng surface:
//
//   * Rng itself — xoshiro256++ seeded via SplitMix64 (the construction
//     recommended by its authors), the library's original serial engine.
//     It survives as the reference stream for the legacy replay tests; new
//     code must NOT construct it directly (the longdp-substream-discipline
//     lint rule enforces this).
//   * util::SubstreamRng (util/substream.h) — a keyed counter-based engine
//     addressed by (seed, purpose, shard/round/level, draw index). All
//     production draws flow through substreams so that releases are
//     bit-identical at any shard x thread count by construction.
//
// The word source (Next) is virtual; every member helper (UniformInt,
// Bernoulli, Shuffle, ...) is defined in terms of it, so the sampling
// algorithms are shared verbatim by both engines and by anything else
// plugged in behind the surface (e.g. a CSPRNG for a real deployment).
//
// NOTE ON PRIVACY: a cryptographically secure generator would be required for
// a production privacy deployment. This library is a research reproduction;
// the sampling *algorithms* (exact discrete Gaussian etc.) are
// production-grade, and the engine is pluggable behind util::Rng if a CSPRNG
// is needed.

#ifndef LONGDP_UTIL_RNG_H_
#define LONGDP_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace longdp {
namespace util {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and for cheap stateless stream splitting.
uint64_t SplitMix64Next(uint64_t* state);

/// The SplitMix64 output (finalizer) function alone: a fixed bijective
/// 64-bit mix with full avalanche. SplitMix64Next(s) ==
/// SplitMix64Finalize(s += golden-gamma); SubstreamRng's keyed block
/// function and key derivation are built from it.
uint64_t SplitMix64Finalize(uint64_t z);

/// \brief xoshiro256++ engine with explicit seeding and stream jumps.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be used
/// with standard algorithms, but all longdp samplers use the member helpers.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds deterministically from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  virtual ~Rng() = default;
  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64 bits. Virtual so SubstreamRng (and any future engine) can
  /// replace the word source while sharing every helper below unchanged.
  uint64_t operator()() { return Next(); }
  virtual uint64_t Next();

  /// Fills out[0..count) with the next `count` raw words — exactly the
  /// sequence `count` successive Next() calls would return, advancing the
  /// stream identically. Virtual so counter-based engines can batch the
  /// word generation (SubstreamRng routes through the util/simd layer);
  /// the default is a plain Next() loop.
  virtual void FillWords(uint64_t* out, size_t count);

  /// Uniform integer in [0, bound) without modulo bias. bound == 0 (an
  /// empty range) returns 0 without consuming a draw.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. An inverted range (hi < lo) is
  /// clamped: lo is returned without consuming a draw.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Bernoulli(p) for p in [0, 1].
  bool Bernoulli(double p);

  /// Fair coin.
  bool Coin() { return (Next() >> 63) != 0; }

  /// Returns a new independent-stream Rng derived from this one.
  /// Implemented by drawing a fresh SplitMix64 seed; suitable for forking
  /// per-repetition generators in the experiment harness.
  Rng Fork();

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, universe) uniformly without
  /// replacement (partial Fisher-Yates over an index vector when count is a
  /// large fraction of universe; Floyd's algorithm otherwise). Both
  /// branches order the result deterministically from the draw sequence
  /// alone (selection order / Floyd insertion order), so the same seed
  /// yields the same vector on every platform and standard library.
  std::vector<size_t> SampleWithoutReplacement(size_t universe, size_t count);

 protected:
  /// For engine subclasses that override Next() and never touch the
  /// xoshiro state: skips the SplitMix64 seeding pass (the state is set to
  /// a fixed valid value and is unreachable through the subclass).
  struct SubclassTag {};
  explicit Rng(SubclassTag) : s_{1, 0, 0, 0} {}

 private:
  uint64_t s_[4];
};

}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_RNG_H_
