// Runtime backend selection and the forwarding entry points.

#include "util/simd/simd.h"

#include <cstdlib>

#include "util/simd/simd_internal.h"

namespace longdp {
namespace util {
namespace simd {
namespace {

// LONGDP_FORCE_SCALAR= / =0 means "not forced"; anything else forces the
// scalar backend (mirrors the usual boolean-env convention).
bool EnvForcesScalar() {
  const char* v = std::getenv("LONGDP_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

struct Dispatch {
  IsaLevel level;
  const internal::Backend* backend;
  bool forced;
};

Dispatch SelectBackend() {
#if defined(LONGDP_FORCE_SCALAR_BUILD)
  const bool forced = true;
#else
  const bool forced = EnvForcesScalar();
#endif
  if (!forced) {
#if LONGDP_SIMD_X86
    // Detection order: highest tier first. The AVX-512 backend needs all of
    // F/DQ/BW/VL (see simd_avx512.cc); partial support falls through.
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl")) {
      return {IsaLevel::kAvx512, &internal::kAvx512Backend, false};
    }
    if (__builtin_cpu_supports("avx2")) {
      return {IsaLevel::kAvx2, &internal::kAvx2Backend, false};
    }
#endif
  }
  return {IsaLevel::kScalar, &internal::kScalarBackend, forced};
}

const Dispatch& GetDispatch() {
  // Magic-static: probed once, race-free, before any kernel runs.
  static const Dispatch dispatch = SelectBackend();
  return dispatch;
}

}  // namespace

IsaLevel ActiveIsaLevel() { return GetDispatch().level; }

bool ScalarForced() { return GetDispatch().forced; }

const char* IsaLevelName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

void FillStreamWords(uint64_t key, uint64_t cursor, uint64_t* out,
                     size_t count) {
  GetDispatch().backend->fill_stream_words(key, cursor, out, count);
}

void PlaneHistogram(const uint64_t* const* planes, int num_planes,
                    const uint64_t* mask, size_t num_words, int64_t* hist) {
  GetDispatch().backend->plane_histogram(planes, num_planes, mask, num_words,
                                         hist);
}

void PlaneAdd(uint64_t* const* planes, int num_planes,
              const uint64_t* addend, size_t num_words) {
  GetDispatch().backend->plane_add(planes, num_planes, addend, num_words);
}

}  // namespace simd
}  // namespace util
}  // namespace longdp
