// Runtime-dispatched SIMD kernel layer (pgaccel-style trait dispatch).
//
// Three kernels back the hot loops of the noise path and the bit-plane
// synthesizer state:
//
//   * FillStreamWords — bulk evaluation of the SubstreamRng keyed block
//     function word(key, i) = SplitMix64Finalize(key + (i + 1) * gamma).
//     Every backend produces the exact word sequence the scalar engine
//     produces (the finalizer is pure integer arithmetic, so there is no
//     floating-point reassociation to diverge on).
//   * PlaneHistogram — histogram of b-bit codes stored bit-sliced across b
//     packed planes (plane j holds bit j of every lane's code, 64 lanes per
//     word), with an optional lane mask. Counts are exact integer popcounts,
//     so every backend and every word partition yields identical totals.
//   * PlaneAdd — bit-sliced ripple-carry increment: adds a packed 1-bit
//     addend to the b-plane codes in place. Pure bitwise logic, identical
//     across backends.
//
// Dispatch model: each backend (scalar, AVX2, AVX-512) is compiled in its
// own translation unit with the matching -m flags, instantiating the shared
// templated kernel bodies in simd_kernels.h over a per-ISA traits struct.
// One runtime CPU-feature probe (at first use) selects the backend; the
// entry points below forward through function pointers ever after.
//
// Determinism contract: all three kernels are bit-exact across backends by
// construction — integer-only arithmetic, no reassociation, no
// approximation. Forcing the scalar path (LONGDP_FORCE_SCALAR=1 in the
// environment, or the -DLONGDP_FORCE_SCALAR=ON build option) therefore
// never changes results, only speed; CI proves this by replaying the full
// golden/equivalence suites under the forced-scalar build.

#ifndef LONGDP_UTIL_SIMD_SIMD_H_
#define LONGDP_UTIL_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace longdp {
namespace util {
namespace simd {

/// Backend tiers in detection order (highest supported wins).
enum class IsaLevel {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,  ///< requires F + DQ + BW + VL
};

/// The backend selected for this process: the highest tier the CPU (and the
/// build) supports, unless the scalar path is forced. Decided once at first
/// call and stable thereafter.
IsaLevel ActiveIsaLevel();

/// Human-readable backend name ("scalar", "avx2", "avx512") for logs and
/// bench reports.
const char* IsaLevelName(IsaLevel level);

/// True when the scalar backend was forced: either the build was configured
/// with -DLONGDP_FORCE_SCALAR=ON or the environment variable
/// LONGDP_FORCE_SCALAR is set to anything other than "" or "0".
bool ScalarForced();

/// out[i] = SplitMix64Finalize(key + (cursor + 1 + i) * gamma) for
/// i in [0, count) — the next `count` words of the substream at (key,
/// cursor), without mutating any engine state. Matches
/// util::SubstreamRng::Next() word-for-word.
void FillStreamWords(uint64_t key, uint64_t cursor, uint64_t* out,
                     size_t count);

/// Accumulates (+=) into hist[v], for v in [0, 2^num_planes), the number of
/// lanes whose bit-sliced code equals v, over lanes [0, 64 * num_words).
/// planes[j] points at num_words packed words of bit j of the codes. When
/// `mask` is non-null only lanes with a 1 bit in mask are counted; when it
/// is null every lane counts, including any tail lanes past the logical
/// population size — those have all-zero planes by the packing invariant
/// (RoundView guarantees zero trailing bits), so the caller subtracts the
/// tail from hist[0]. hist must have 2^num_planes entries; num_planes <= 16.
void PlaneHistogram(const uint64_t* const* planes, int num_planes,
                    const uint64_t* mask, size_t num_words, int64_t* hist);

/// In-place bit-sliced add of a packed 1-bit addend to the b-plane codes:
/// for every lane with a 1 bit in `addend`, the lane's code across
/// planes[0..num_planes) is incremented. Ripple carry out of the top plane
/// is dropped; callers must size num_planes so the maximum code fits.
void PlaneAdd(uint64_t* const* planes, int num_planes,
              const uint64_t* addend, size_t num_words);

}  // namespace simd
}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_SIMD_SIMD_H_
