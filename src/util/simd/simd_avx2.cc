// AVX2 backend: 4 x uint64 lanes per vector. This TU is compiled with
// -mavx2 (see src/util/CMakeLists.txt); nothing in it executes unless the
// runtime probe in simd.cc saw avx2 support, so building it on any x86-64
// host is safe.

#include "util/simd/simd_internal.h"

#if LONGDP_SIMD_X86

#ifndef __AVX2__
#error "simd_avx2.cc must be compiled with -mavx2 (build misconfiguration)"
#endif

#include <immintrin.h>

#include "util/simd/simd_kernels.h"

namespace longdp {
namespace util {
namespace simd {
namespace internal {
namespace {

struct Avx2Traits {
  using V = __m256i;
  static constexpr size_t kWords = 4;
  static V Load(const uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void Store(uint64_t* p, V v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V Set1(uint64_t x) {
    return _mm256_set1_epi64x(static_cast<long long>(x));
  }
  static V Ones() { return _mm256_set1_epi64x(-1); }
  static V And(V a, V b) { return _mm256_and_si256(a, b); }
  static V AndNot(V a, V b) { return _mm256_andnot_si256(a, b); }
  static V Xor(V a, V b) { return _mm256_xor_si256(a, b); }
  static V Add(V a, V b) { return _mm256_add_epi64(a, b); }
  static bool IsZero(V v) { return _mm256_testz_si256(v, v) != 0; }

  static uint64_t PopcountSum(V v) {
    // Nibble-LUT popcount (Mula): per-byte counts via two shuffles, summed
    // into 4 x u64 by SAD against zero, then reduced horizontally.
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0F);
    const __m256i lo = _mm256_and_si256(v, low);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    const __m256i sums = _mm256_sad_epu8(cnt, _mm256_setzero_si256());
    const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(sums),
                                    _mm256_extracti128_si256(sums, 1));
    return static_cast<uint64_t>(_mm_cvtsi128_si64(s)) +
           static_cast<uint64_t>(_mm_extract_epi64(s, 1));
  }

  // 64-bit lanewise multiply-low from 32-bit partial products (AVX2 has no
  // vpmullq): a*b mod 2^64 = lo(a)lo(b) + ((hi(a)lo(b) + lo(a)hi(b)) << 32).
  static V MulLo64(V a, V b) {
    const __m256i lo = _mm256_mul_epu32(a, b);
    const __m256i cross =
        _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                         _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
  }

  static V SplitMixFinalize(V z) {
    z = MulLo64(Xor(z, _mm256_srli_epi64(z, 30)),
                Set1(0xBF58476D1CE4E5B9ULL));
    z = MulLo64(Xor(z, _mm256_srli_epi64(z, 27)),
                Set1(0x94D049BB133111EBULL));
    return Xor(z, _mm256_srli_epi64(z, 31));
  }
};

}  // namespace

const Backend kAvx2Backend = {
    &FillStreamWordsT<Avx2Traits>,
    &PlaneHistogramT<Avx2Traits>,
    &PlaneAddT<Avx2Traits>,
};

}  // namespace internal
}  // namespace simd
}  // namespace util
}  // namespace longdp

#endif  // LONGDP_SIMD_X86
