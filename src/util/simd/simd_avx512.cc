// AVX-512 backend: 8 x uint64 lanes per vector. Requires F+DQ+BW+VL — DQ
// for the native 64-bit multiply-low (vpmullq), BW for the byte shuffle and
// SAD in the popcount. Compiled with the matching -m flags (see
// src/util/CMakeLists.txt); only executed when the runtime probe saw all
// four features.

#include "util/simd/simd_internal.h"

#if LONGDP_SIMD_X86

#if !defined(__AVX512F__) || !defined(__AVX512DQ__) || \
    !defined(__AVX512BW__) || !defined(__AVX512VL__)
#error "simd_avx512.cc must be compiled with -mavx512{f,dq,bw,vl}"
#endif

#include <immintrin.h>

#include "util/simd/simd_kernels.h"

namespace longdp {
namespace util {
namespace simd {
namespace internal {
namespace {

struct Avx512Traits {
  using V = __m512i;
  static constexpr size_t kWords = 8;
  static V Load(const uint64_t* p) { return _mm512_loadu_si512(p); }
  static void Store(uint64_t* p, V v) { _mm512_storeu_si512(p, v); }
  static V Set1(uint64_t x) {
    return _mm512_set1_epi64(static_cast<long long>(x));
  }
  static V Ones() { return _mm512_set1_epi64(-1); }
  static V And(V a, V b) { return _mm512_and_si512(a, b); }
  static V AndNot(V a, V b) { return _mm512_andnot_si512(a, b); }
  static V Xor(V a, V b) { return _mm512_xor_si512(a, b); }
  static V Add(V a, V b) { return _mm512_add_epi64(a, b); }
  static bool IsZero(V v) { return _mm512_test_epi64_mask(v, v) == 0; }

  static uint64_t PopcountSum(V v) {
    // Same nibble-LUT scheme as AVX2, one 512-bit lane pass; VPOPCNTDQ is
    // deliberately not assumed (it is absent on most AVX-512 parts we run
    // on, e.g. Skylake-SP).
    const __m512i lut = _mm512_broadcast_i32x4(_mm_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
    const __m512i low = _mm512_set1_epi8(0x0F);
    const __m512i lo = _mm512_and_si512(v, low);
    const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low);
    const __m512i cnt = _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                                        _mm512_shuffle_epi8(lut, hi));
    const __m512i sums = _mm512_sad_epu8(cnt, _mm512_setzero_si512());
    return static_cast<uint64_t>(_mm512_reduce_add_epi64(sums));
  }

  static V SplitMixFinalize(V z) {
    z = _mm512_mullo_epi64(Xor(z, _mm512_srli_epi64(z, 30)),
                           Set1(0xBF58476D1CE4E5B9ULL));
    z = _mm512_mullo_epi64(Xor(z, _mm512_srli_epi64(z, 27)),
                           Set1(0x94D049BB133111EBULL));
    return Xor(z, _mm512_srli_epi64(z, 31));
  }
};

}  // namespace

const Backend kAvx512Backend = {
    &FillStreamWordsT<Avx512Traits>,
    &PlaneHistogramT<Avx512Traits>,
    &PlaneAddT<Avx512Traits>,
};

}  // namespace internal
}  // namespace simd
}  // namespace util
}  // namespace longdp

#endif  // LONGDP_SIMD_X86
