// Backend plumbing shared by the per-ISA translation units and the
// dispatcher. Not part of the public surface — include util/simd/simd.h.

#ifndef LONGDP_UTIL_SIMD_SIMD_INTERNAL_H_
#define LONGDP_UTIL_SIMD_SIMD_INTERNAL_H_

#include <cstddef>
#include <cstdint>

// The vector backends exist only for x86-64 GCC/Clang (runtime probing uses
// __builtin_cpu_supports; the TUs use -m flags). Everywhere else the layer
// is scalar-only and ActiveIsaLevel() reports kScalar.
#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define LONGDP_SIMD_X86 1
#else
#define LONGDP_SIMD_X86 0
#endif

namespace longdp {
namespace util {
namespace simd {
namespace internal {

/// One entry per kernel; each per-ISA TU exports a filled-in table and the
/// dispatcher picks exactly one at first use.
struct Backend {
  void (*fill_stream_words)(uint64_t key, uint64_t cursor, uint64_t* out,
                            size_t count);
  void (*plane_histogram)(const uint64_t* const* planes, int num_planes,
                          const uint64_t* mask, size_t num_words,
                          int64_t* hist);
  void (*plane_add)(uint64_t* const* planes, int num_planes,
                    const uint64_t* addend, size_t num_words);
};

extern const Backend kScalarBackend;
#if LONGDP_SIMD_X86
extern const Backend kAvx2Backend;
extern const Backend kAvx512Backend;
#endif

}  // namespace internal
}  // namespace simd
}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_SIMD_SIMD_INTERNAL_H_
