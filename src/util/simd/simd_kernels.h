// Shared templated kernel bodies, instantiated once per ISA translation
// unit over that ISA's traits struct (pgaccel's avx_traits idiom). A traits
// type T provides:
//
//   T::V                      vector of T::kWords uint64 lanes
//   T::kWords                 lanes per vector (1 for scalar)
//   T::Load / T::Store        unaligned load/store of kWords words
//   T::Set1 / T::Ones         broadcast / all-ones
//   T::And / T::AndNot / T::Xor / T::Add
//                             lanewise logic (AndNot(a, b) == ~a & b,
//                             matching the x86 intrinsic operand order)
//   T::IsZero                 whole-vector zero test
//   T::PopcountSum            total set bits across all lanes
//   T::SplitMixFinalize       lanewise SplitMix64 finalizer
//
// All kernels are integer-only, so every instantiation computes the exact
// same result; vector width only changes how many lanes move per iteration.

#ifndef LONGDP_UTIL_SIMD_SIMD_KERNELS_H_
#define LONGDP_UTIL_SIMD_SIMD_KERNELS_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace longdp {
namespace util {
namespace simd {
namespace internal {

/// The SplitMix64 golden-ratio increment; must match util/substream.cc's
/// kGamma (pinned by the FillStreamWords-vs-SubstreamRng equality test).
inline constexpr uint64_t kStreamGamma = 0x9E3779B97F4A7C15ULL;

/// Local inline mirror of util::SplitMix64Finalize (which lives out-of-line
/// in rng.cc); the stream-equality unit test pins the two functions equal.
inline uint64_t Finalize64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Scalar traits: the reference instantiation and the tail handler for the
/// vector backends' non-multiple-of-kWords remainders.
struct ScalarTraits {
  using V = uint64_t;
  static constexpr size_t kWords = 1;
  static V Load(const uint64_t* p) { return *p; }
  static void Store(uint64_t* p, V v) { *p = v; }
  static V Set1(uint64_t x) { return x; }
  static V Ones() { return ~uint64_t{0}; }
  static V And(V a, V b) { return a & b; }
  static V AndNot(V a, V b) { return ~a & b; }
  static V Xor(V a, V b) { return a ^ b; }
  static V Add(V a, V b) { return a + b; }
  static bool IsZero(V v) { return v == 0; }
  static uint64_t PopcountSum(V v) {
    return static_cast<uint64_t>(std::popcount(v));
  }
  static V SplitMixFinalize(V z) { return Finalize64(z); }
};

template <typename T>
void FillStreamWordsT(uint64_t key, uint64_t cursor, uint64_t* out,
                      size_t count) {
  size_t i = 0;
  if constexpr (T::kWords > 1) {
    // z_l = key + (cursor + 1 + i + l) * gamma, advanced by adding
    // kWords * gamma per iteration — no per-word index multiply.
    uint64_t lane[T::kWords];
    for (size_t l = 0; l < T::kWords; ++l) {
      lane[l] = key + (cursor + 1 + l) * kStreamGamma;
    }
    typename T::V z = T::Load(lane);
    const typename T::V step = T::Set1(T::kWords * kStreamGamma);
    for (; i + T::kWords <= count; i += T::kWords) {
      T::Store(out + i, T::SplitMixFinalize(z));
      z = T::Add(z, step);
    }
  }
  for (; i < count; ++i) {
    out[i] = Finalize64(key + (cursor + 1 + i) * kStreamGamma);
  }
}

/// Depth-first recursion over the planes: the live-lane mask m is split by
/// plane `depth`'s bits into the value|0 and value|2^depth subtrees, and
/// subtrees whose mask empties are pruned — sparse codes (the common case:
/// most users' window pattern or weight shares few distinct values per
/// word) cost far fewer than 2^b popcounts per vector.
template <typename T>
void PlaneHistogramRecurse(const uint64_t* const* planes, int num_planes,
                           size_t w, typename T::V m, int depth,
                           uint32_t value, int64_t* hist) {
  if (T::IsZero(m)) return;
  if (depth == num_planes) {
    hist[value] += static_cast<int64_t>(T::PopcountSum(m));
    return;
  }
  const typename T::V p = T::Load(planes[depth] + w);
  PlaneHistogramRecurse<T>(planes, num_planes, w, T::AndNot(p, m), depth + 1,
                           value, hist);
  PlaneHistogramRecurse<T>(planes, num_planes, w, T::And(p, m), depth + 1,
                           value | (uint32_t{1} << depth), hist);
}

template <typename T>
void PlaneHistogramT(const uint64_t* const* planes, int num_planes,
                     const uint64_t* mask, size_t num_words, int64_t* hist) {
  size_t w = 0;
  if constexpr (T::kWords > 1) {
    for (; w + T::kWords <= num_words; w += T::kWords) {
      const typename T::V m = mask ? T::Load(mask + w) : T::Ones();
      PlaneHistogramRecurse<T>(planes, num_planes, w, m, 0, 0, hist);
    }
  }
  for (; w < num_words; ++w) {
    const uint64_t m = mask ? mask[w] : ~uint64_t{0};
    PlaneHistogramRecurse<ScalarTraits>(planes, num_planes, w, m, 0, 0, hist);
  }
}

template <typename T>
void PlaneAddT(uint64_t* const* planes, int num_planes,
               const uint64_t* addend, size_t num_words) {
  size_t w = 0;
  if constexpr (T::kWords > 1) {
    for (; w + T::kWords <= num_words; w += T::kWords) {
      typename T::V carry = T::Load(addend + w);
      for (int j = 0; j < num_planes && !T::IsZero(carry); ++j) {
        const typename T::V p = T::Load(planes[j] + w);
        T::Store(planes[j] + w, T::Xor(p, carry));
        carry = T::And(p, carry);
      }
    }
  }
  for (; w < num_words; ++w) {
    uint64_t carry = addend[w];
    for (int j = 0; j < num_planes && carry != 0; ++j) {
      const uint64_t p = planes[j][w];
      planes[j][w] = p ^ carry;
      carry = p & carry;
    }
  }
}

}  // namespace internal
}  // namespace simd
}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_SIMD_SIMD_KERNELS_H_
