// Scalar backend: the reference instantiation of the shared kernel bodies.
// Always compiled, always correct; also the forced-scalar path CI replays
// the golden suites under to prove backend equivalence.

#include "util/simd/simd_internal.h"
#include "util/simd/simd_kernels.h"

namespace longdp {
namespace util {
namespace simd {
namespace internal {

const Backend kScalarBackend = {
    &FillStreamWordsT<ScalarTraits>,
    &PlaneHistogramT<ScalarTraits>,
    &PlaneAddT<ScalarTraits>,
};

}  // namespace internal
}  // namespace simd
}  // namespace util
}  // namespace longdp
