#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace longdp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

namespace internal {
void FatalResultAccess(const std::string& why) {
  std::fprintf(stderr, "[longdp] fatal Result misuse: %s\n", why.c_str());
  std::abort();
}
}  // namespace internal

}  // namespace longdp
