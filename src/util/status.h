// Status / Result error-handling primitives for longdp.
//
// Follows the Arrow/RocksDB idiom: fallible functions return a Status (or a
// Result<T> carrying a value), never throw across the public API boundary.
// Statuses are cheap to copy in the OK case (no allocation).

#ifndef LONGDP_UTIL_STATUS_H_
#define LONGDP_UTIL_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace longdp {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kResourceExhausted = 6,  // e.g. privacy budget exhausted
  kInternal = 7,
  kIOError = 8,
  kNotImplemented = 9,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// An OK status carries no message and no allocation. Error statuses carry a
/// code and a message describing what went wrong.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : state_(nullptr) {}

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// True iff this status represents success.
  bool ok() const noexcept { return state_ == nullptr; }

  StatusCode code() const noexcept {
    return state_ ? state_->code : StatusCode::kOk;
  }

  /// Error message; empty for OK statuses.
  const std::string& message() const noexcept {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeToString(code());
    out += ": ";
    out += message();
    return out;
  }

  // --- Factory helpers -----------------------------------------------------

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Shared (not unique) so Status is copyable; error paths are cold.
  std::shared_ptr<const State> state_;
};

/// \brief Either a value of type T or an error Status.
///
/// Accessing the value of an errored Result is a programming error and
/// aborts (in line with the "crash early on misuse" database-engine idiom).
template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    if (std::get<Status>(var_).ok()) {
      Fail("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(var_);
  }

  const T& value() const& {
    EnsureOk();
    return std::get<T>(var_);
  }
  T& value() & {
    EnsureOk();
    return std::get<T>(var_);
  }
  T&& value() && {
    EnsureOk();
    return std::move(std::get<T>(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `alt` if errored.
  T value_or(T alt) const {
    if (ok()) return std::get<T>(var_);
    return alt;
  }

 private:
  void EnsureOk() const {
    if (!ok()) Fail(std::get<Status>(var_).ToString());
  }
  [[noreturn]] static void Fail(const std::string& why);

  std::variant<T, Status> var_;
};

namespace internal {
[[noreturn]] void FatalResultAccess(const std::string& why);
}  // namespace internal

template <typename T>
[[noreturn]] void Result<T>::Fail(const std::string& why) {
  internal::FatalResultAccess(why);
}

/// Propagates a non-OK status to the caller.
#define LONGDP_RETURN_NOT_OK(expr)           \
  do {                                       \
    ::longdp::Status _st = (expr);           \
    if (!_st.ok()) return _st;               \
  } while (false)

#define LONGDP_INTERNAL_CONCAT_IMPL(a, b) a##b
#define LONGDP_INTERNAL_CONCAT(a, b) LONGDP_INTERNAL_CONCAT_IMPL(a, b)
#define LONGDP_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, rexpr) \
  auto&& tmp = (rexpr);                                   \
  if (!tmp.ok()) {                                        \
    return tmp.status();                                  \
  }                                                       \
  lhs = std::move(tmp).value()

/// Assigns the value of a Result to `lhs`, or propagates its error status.
#define LONGDP_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  LONGDP_INTERNAL_ASSIGN_OR_RETURN(                                      \
      LONGDP_INTERNAL_CONCAT(_longdp_result_, __LINE__), lhs, (rexpr))

}  // namespace longdp

#endif  // LONGDP_UTIL_STATUS_H_
