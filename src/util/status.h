// Status / Result error-handling primitives for longdp.
//
// Follows the Arrow/RocksDB idiom: fallible functions return a Status (or a
// Result<T> carrying a value), never throw across the public API boundary.
// Statuses are cheap to copy in the OK case (no allocation).

#ifndef LONGDP_UTIL_STATUS_H_
#define LONGDP_UTIL_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace longdp {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kResourceExhausted = 6,  // e.g. privacy budget exhausted
  kInternal = 7,
  kIOError = 8,
  kNotImplemented = 9,
  kDataLoss = 10,  // stored state is unrecoverable (checksum/torn write)
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// An OK status carries no message and no allocation. Error statuses carry a
/// code and a message describing what went wrong.
///
/// The class is [[nodiscard]]: a call site that ignores a returned Status is
/// a compile error under -Werror (and flagged by longdp-lint's
/// longdp-status-checked rule, which additionally rejects the (void)-cast
/// escape hatch — suppressions must be a justified NOLINT instead).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : state_(nullptr) {}

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// True iff this status represents success.
  [[nodiscard]] bool ok() const noexcept { return state_ == nullptr; }

  [[nodiscard]] StatusCode code() const noexcept {
    return state_ ? state_->code : StatusCode::kOk;
  }

  /// Error message; empty for OK statuses.
  const std::string& message() const noexcept {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeToString(code());
    out += ": ";
    out += message();
    return out;
  }

  // --- Factory helpers -----------------------------------------------------

  // ([[nodiscard]] on the class already covers these by-value returns; the
  // per-function attribute keeps the contract visible at the declaration.)
  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  /// Durable state failed an integrity check (bad checksum, truncated
  /// payload, torn frame). Distinct from InvalidArgument — the bytes were
  /// once valid and have been damaged — and from IOError — the read itself
  /// succeeded. Recovery code treats DataLoss as "stop and page a human",
  /// never "fall back to a plausible default state".
  [[nodiscard]] static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Shared (not unique) so Status is copyable; error paths are cold.
  std::shared_ptr<const State> state_;
};

/// \brief Either a value of type T or an error Status.
///
/// Accessing the value of an errored Result is a programming error and
/// aborts (in line with the "crash early on misuse" database-engine idiom).
///
/// [[nodiscard]] like Status: discarding a Result discards its error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return value;` is the Result idiom.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
  Result(T value) : var_(std::move(value)) {}
  /// Implicit from error status (`return Status::...`). Must not be OK.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
  Result(Status status) : var_(std::move(status)) {
    if (std::get<Status>(var_).ok()) {
      Fail("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(var_); }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(var_);
  }

  const T& value() const& {
    EnsureOk();
    return std::get<T>(var_);
  }
  T& value() & {
    EnsureOk();
    return std::get<T>(var_);
  }
  T&& value() && {
    EnsureOk();
    return std::move(std::get<T>(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `alt` if errored.
  T value_or(T alt) const {
    if (ok()) return std::get<T>(var_);
    return alt;
  }

 private:
  void EnsureOk() const {
    if (!ok()) Fail(std::get<Status>(var_).ToString());
  }
  [[noreturn]] static void Fail(const std::string& why);

  std::variant<T, Status> var_;
};

namespace internal {
[[noreturn]] void FatalResultAccess(const std::string& why);
}  // namespace internal

template <typename T>
[[noreturn]] void Result<T>::Fail(const std::string& why) {
  internal::FatalResultAccess(why);
}

/// Propagates a non-OK status to the caller.
#define LONGDP_RETURN_NOT_OK(expr)           \
  do {                                       \
    ::longdp::Status _st = (expr);           \
    if (!_st.ok()) return _st;               \
  } while (false)

#define LONGDP_INTERNAL_CONCAT_IMPL(a, b) a##b
#define LONGDP_INTERNAL_CONCAT(a, b) LONGDP_INTERNAL_CONCAT_IMPL(a, b)
#define LONGDP_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, rexpr) \
  auto&& tmp = (rexpr);                                   \
  if (!tmp.ok()) {                                        \
    return tmp.status();                                  \
  }                                                       \
  lhs = std::move(tmp).value()

/// Assigns the value of a Result to `lhs`, or propagates its error status.
#define LONGDP_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  LONGDP_INTERNAL_ASSIGN_OR_RETURN(                                      \
      LONGDP_INTERNAL_CONCAT(_longdp_result_, __LINE__), lhs, (rexpr))

}  // namespace longdp

#endif  // LONGDP_UTIL_STATUS_H_
