#include "util/substream.h"

#include "util/simd/simd.h"

namespace longdp {
namespace util {

namespace {

constexpr uint64_t kGamma = 0x9E3779B97F4A7C15ULL;

// Distinct odd salts, one per derivation edge, so the key tree's edges
// (seed->root, root->purpose, Derive, Leaf, Fork) live in disjoint hash
// families: Derive(i) on one stream can never alias Leaf(i) on the same
// stream, and no purpose key can collide with a seed key.
constexpr uint64_t kSeedSalt = 0xA24BAED4963EE407ULL;
constexpr uint64_t kPurposeSalt = 0x9FB21C651E98DF25ULL;
constexpr uint64_t kDeriveSalt = 0xD1B54A32D192ED03ULL;
constexpr uint64_t kLeafSalt = 0x8CB92BA72F3D8DD7ULL;
constexpr uint64_t kForkSalt = 0xEB44ACCAB455D165ULL;

// Two finalizer rounds: value is avalanched under its edge salt, folded
// into the parent key, then avalanched again so every child key bit
// depends on every (key, value, salt) bit.
inline uint64_t DeriveKey(uint64_t key, uint64_t value, uint64_t salt) {
  const uint64_t mixed = key ^ SplitMix64Finalize(value + salt);
  return SplitMix64Finalize(mixed + kGamma);
}

}  // namespace

SubstreamRng::SubstreamRng(uint64_t seed, uint64_t purpose)
    : Rng(SubclassTag{}),
      key_(DeriveKey(DeriveKey(seed, seed, kSeedSalt), purpose,
                     kPurposeSalt)),
      cursor_(0) {}

SubstreamRng SubstreamRng::Derive(uint64_t value) const {
  return SubstreamRng(RawKeyTag{}, DeriveKey(key_, value, kDeriveSalt));
}

SubstreamRng SubstreamRng::Leaf(uint64_t index) const {
  return SubstreamRng(RawKeyTag{}, DeriveKey(key_, index, kLeafSalt));
}

SubstreamRng SubstreamRng::ForkSubstream() {
  return SubstreamRng(RawKeyTag{}, DeriveKey(key_, Next(), kForkSalt));
}

uint64_t SubstreamRng::Next() {
  return SplitMix64Finalize(key_ + (++cursor_) * kGamma);
}

void SubstreamRng::FillWords(uint64_t* out, size_t count) {
  simd::FillStreamWords(key_, cursor_, out, count);
  cursor_ += count;
}

SubstreamRng SubstreamRng::FromState(uint64_t key, uint64_t cursor) {
  SubstreamRng out(RawKeyTag{}, key);
  out.cursor_ = cursor;
  return out;
}

}  // namespace util
}  // namespace longdp
