// Keyed counter-based RNG substreams — the library's production engine.
//
// A substream is a pair (key, cursor). The word stream is the stateless
// SplitMix64-keyed block function
//
//   word(key, i) = SplitMix64Finalize(key + (i + 1) * gamma)
//
// i.e. exactly the SplitMix64 output sequence whose initial state is `key`,
// evaluated by random access instead of by mutating shared state. Keys are
// derived, never chosen: starting from a user seed, every randomized
// component hashes its coordinates into the key via distinct-salt SplitMix64
// finalizer rounds:
//
//   root   = (seed, purpose)                   SubstreamRng(seed, purpose)
//   child  = parent key  #  value              Derive(value)   (round, shard)
//   leaf   = parent key  #  index              Leaf(index)     (bin, level)
//
// so the draw at (seed, purpose, round, bin, draw-index) is one pure
// function evaluation, independent of every other draw in the system. That
// is what makes releases bit-identical across shard and thread counts by
// construction: no draw order exists to perturb — only addresses.
//
// Draw-index discipline: the cursor advances by exactly one per Next() word
// consumed, and every helper on the Rng surface consumes a documented
// number of words (see util/rng.h and util/batch_sampler.h). A component
// that checkpoints mid-stream persists (cursor) — the key is always
// re-derivable from the construction parameters — and resumes by
// set_cursor(); stream/state_io.h carries the cursors inside counter state.
//
// SubstreamRng derives from util::Rng and overrides only the word source,
// so all sampling algorithms (UniformInt, discrete Gaussian chains,
// BatchSampler's Lemire rejection, ...) are shared verbatim with the legacy
// xoshiro engine.

#ifndef LONGDP_UTIL_SUBSTREAM_H_
#define LONGDP_UTIL_SUBSTREAM_H_

#include <cstdint>

#include "util/rng.h"

namespace longdp {
namespace util {

namespace substream {

/// Purpose labels: the first derivation step under the seed. Every
/// independent consumer of randomness gets its own purpose so no two
/// components can collide on a key even when they use equal round/bin
/// coordinates.
inline constexpr uint64_t kGeneric = 0;         ///< tests, examples, misc
inline constexpr uint64_t kDataset = 1;         ///< synthetic data generators
inline constexpr uint64_t kCounterNoise = 2;    ///< stream counter noise
inline constexpr uint64_t kHistogramNoise = 3;  ///< per-bin histogram noise
inline constexpr uint64_t kSelection = 4;       ///< stage-2 record selection
inline constexpr uint64_t kRounding = 5;        ///< randomized rounding
inline constexpr uint64_t kCohort = 6;          ///< cohort advance shuffles
inline constexpr uint64_t kLocal = 7;           ///< local-model reports
inline constexpr uint64_t kRepetition = 8;      ///< harness repetitions

}  // namespace substream

class SubstreamRng final : public Rng {
 public:
  /// Root substream for (seed, purpose). Purposes are the substream::k*
  /// constants; kGeneric is for code (tests, examples) with no coordinate
  /// structure to express.
  explicit SubstreamRng(uint64_t seed,
                        uint64_t purpose = substream::kGeneric);

  /// Child substream keyed by `value` (a round number, shard index, ...).
  /// Independent of this stream's cursor: deriving is addressing, not
  /// drawing.
  SubstreamRng Derive(uint64_t value) const;

  /// Sibling-space child keyed by `index` (a histogram bin, tree level,
  /// record id, ...). Same mechanics as Derive under a distinct salt, so
  /// Derive(i) and Leaf(i) never alias.
  SubstreamRng Leaf(uint64_t index) const;

  /// A child substream keyed by the next word of this stream (consumes one
  /// draw). For call sites that need an unbounded number of children and
  /// have no natural index — mirrors Rng::Fork's contract.
  SubstreamRng ForkSubstream();

  /// The keyed block function: word(key, cursor++).
  uint64_t Next() override;

  /// Bulk word generation through the util/simd layer: identical sequence
  /// and cursor advance to `count` Next() calls, several words per cycle on
  /// vector backends (the block function is random-access, so whole chunks
  /// are evaluated with no serial dependence).
  void FillWords(uint64_t* out, size_t count) override;

  uint64_t key() const { return key_; }
  /// Number of words consumed so far — the checkpointable stream position.
  uint64_t cursor() const { return cursor_; }
  void set_cursor(uint64_t cursor) { cursor_ = cursor; }

  /// Rebuilds a substream from persisted (key, cursor) state.
  static SubstreamRng FromState(uint64_t key, uint64_t cursor);

 private:
  struct RawKeyTag {};
  SubstreamRng(RawKeyTag, uint64_t key)
      : Rng(SubclassTag{}), key_(key), cursor_(0) {}

  uint64_t key_;
  uint64_t cursor_;
};

}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_SUBSTREAM_H_
