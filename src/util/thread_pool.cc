#include "util/thread_pool.h"

namespace longdp {
namespace util {

namespace {
// Observe-phase shards are tens of microseconds; a bounded spin before
// sleeping keeps dispatch latency low on a multicore machine instead of
// paying a condvar wakeup per round. The spin is deliberately short: on an
// oversubscribed host (CI containers are often 1-2 vCPUs) every spin cycle
// steals time from the thread doing real work, so workers fall back to
// blocking and the completion wait falls back to yielding almost
// immediately.
constexpr int kWorkerSpinIterations = 1 << 12;
constexpr int kCompletionSpinIterations = 1 << 8;
}  // namespace

ThreadPool::ThreadPool(int num_threads, int num_shards)
    : num_threads_(num_threads < 1 ? 1 : num_threads),
      num_shards_(num_shards <= 0 ? (num_threads < 1 ? 1 : num_threads)
                                  : num_shards) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  // Lane w owns shards w, w + P, w + 2P, ... forever; lane 0 belongs to the
  // caller.
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::RunLaneShards(
    int lane, const std::function<void(int, int64_t, int64_t)>& body,
    int64_t n) {
  const int64_t s_count = num_shards_;
  for (int s = lane; s < num_shards_; s += num_threads_) {
    const int64_t begin = static_cast<int64_t>(s) * n / s_count;
    const int64_t end = (static_cast<int64_t>(s) + 1) * n / s_count;
    body(s, begin, end);
  }
}

void ThreadPool::ParallelFor(
    int64_t n, const std::function<void(int, int64_t, int64_t)>& body) {
  if (n < 0) n = 0;
  if (num_threads_ == 1) {
    // Inline path still walks the full shard grid in order, so the work —
    // including any per-shard substream addressing — is identical to the
    // threaded run.
    RunLaneShards(0, body, n);
    return;
  }
  body_ = &body;
  n_ = n;
  pending_.store(num_threads_ - 1, std::memory_order_relaxed);
  {
    // The release bump publishes body_/n_/pending_; the mutex pairs with
    // the workers' condvar predicate so a sleeping worker cannot miss it.
    std::lock_guard<std::mutex> lock(mu_);
    generation_.fetch_add(1, std::memory_order_release);
  }
  start_cv_.notify_all();
  RunLaneShards(0, body, n);
  // Completion: spin briefly (lanes finish together by construction),
  // then yield rather than burn a core on a descheduled worker.
  int spins = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (spins <= kCompletionSpinIterations) {
      ++spins;  // stop counting once capped: a stalled worker must not
                // march this toward signed overflow
    } else {
      std::this_thread::yield();
    }
  }
  body_ = nullptr;
}

void ThreadPool::WorkerLoop(int lane) {
  uint64_t seen = 0;
  for (;;) {
    int spins = 0;
    while (generation_.load(std::memory_order_acquire) == seen) {
      if (shutdown_.load(std::memory_order_acquire)) return;
      if (++spins > kWorkerSpinIterations) {
        std::unique_lock<std::mutex> lock(mu_);
        start_cv_.wait(lock, [&] {
          return shutdown_.load(std::memory_order_acquire) ||
                 generation_.load(std::memory_order_acquire) != seen;
        });
        break;
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    seen = generation_.load(std::memory_order_acquire);
    const auto* body = body_;
    const int64_t n = n_;
    RunLaneShards(lane, *body, n);
    pending_.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace util
}  // namespace longdp
