// A small fixed-size worker pool for the deterministic, RNG-free shards of
// the synthesizers' observe phase.
//
// Determinism contract: ParallelFor partitions [0, n) into exactly
// num_threads() FIXED contiguous shards — shard s covers
// [s*n/P, (s+1)*n/P) — so the partition depends only on (n, P), never on
// scheduling. A body that (a) draws no randomness, (b) writes only to
// per-index slots or to per-shard scratch that is later reduced in shard
// order, therefore produces bit-identical state at any thread count,
// including the inline P = 1 path. All RNG-consuming work (noise draws,
// record selection) must stay OUTSIDE the pool, on the caller's thread.
//
// The pool keeps its workers alive between calls (observe phases invoke it
// once or twice per round over T rounds), and ParallelFor blocks until every
// shard has finished; the calling thread executes shard 0 itself instead of
// idling. The pool is NOT reentrant: ParallelFor must not be called from
// inside a shard body, and a pool must not be shared by concurrent callers.

#ifndef LONGDP_UTIL_THREAD_POOL_H_
#define LONGDP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace longdp {
namespace util {

class ThreadPool {
 public:
  /// A pool of `num_threads` total execution lanes: num_threads - 1 worker
  /// threads plus the caller's thread. num_threads < 1 is clamped to 1
  /// (no workers; ParallelFor runs inline); 0 is NOT hardware concurrency —
  /// callers that want that should pass
  /// std::thread::hardware_concurrency() explicitly.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(shard, begin, end) for every contiguous shard of [0, n),
  /// blocking until all shards complete. Shard s always covers
  /// [s*n/P, (s+1)*n/P) for P = num_threads(); empty shards still invoke
  /// the body (with begin == end) so per-shard scratch stays well-defined.
  void ParallelFor(int64_t n,
                   const std::function<void(int, int64_t, int64_t)>& body);

 private:
  void WorkerLoop(int shard);

  const int num_threads_;
  std::vector<std::thread> workers_;

  // Dispatch protocol: body_/n_/pending_ are written by the caller, then
  // published by a release increment of generation_; workers acquire the
  // new generation (spin first, condvar after a bounded spin), run their
  // fixed shard, and release-decrement pending_. The caller spins until
  // pending_ hits zero. The mutex exists only so a sleeping worker cannot
  // miss a generation bump.
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::atomic<uint64_t> generation_{0};
  std::atomic<int> pending_{0};
  std::atomic<bool> shutdown_{false};
  const std::function<void(int, int64_t, int64_t)>* body_ = nullptr;
  int64_t n_ = 0;
};

/// Shard count a caller should size per-shard scratch for: the pool's lane
/// count, or 1 when running serially (null pool).
inline int NumShards(const ThreadPool* pool) {
  return pool != nullptr ? pool->num_threads() : 1;
}

/// Runs `body(shard, begin, end)` over the fixed contiguous shards of
/// [0, n): inline (one shard) when `pool` is null or single-threaded,
/// through the pool otherwise. The serial path costs one direct call — no
/// std::function is materialized — so wiring a null pool through a hot loop
/// is free.
template <typename Body>
void ShardedFor(ThreadPool* pool, int64_t n, Body&& body) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    body(0, int64_t{0}, n);
    return;
  }
  pool->ParallelFor(n, std::forward<Body>(body));
}

}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_THREAD_POOL_H_
