// A small fixed-size worker pool for the deterministic shards of the
// synthesizers' observe phase.
//
// Determinism contract: ParallelFor partitions [0, n) into exactly
// num_shards() FIXED contiguous shards — shard s covers
// [s*n/S, (s+1)*n/S) — so the partition depends only on (n, S), never on
// the thread count or scheduling: lane w executes shards w, w+P, w+2P, ...
// in order, and S is decoupled from P so the same shard grid can be driven
// by any number of threads. A body that (a) draws randomness only from
// keyed substreams addressed by its shard/index (util/substream.h), or none
// at all, and (b) writes only to per-index slots or to per-shard scratch
// that is later reduced in shard order, therefore produces bit-identical
// state at any thread count, including the inline P = 1 path.
//
// The pool keeps its workers alive between calls (observe phases invoke it
// once or twice per round over T rounds), and ParallelFor blocks until every
// shard has finished; the calling thread executes shard 0 itself instead of
// idling. The pool is NOT reentrant: ParallelFor must not be called from
// inside a shard body, and a pool must not be shared by concurrent callers.

#ifndef LONGDP_UTIL_THREAD_POOL_H_
#define LONGDP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace longdp {
namespace util {

class ThreadPool {
 public:
  /// A pool of `num_threads` total execution lanes: num_threads - 1 worker
  /// threads plus the caller's thread. num_threads < 1 is clamped to 1
  /// (no workers; ParallelFor runs inline); 0 is NOT hardware concurrency —
  /// callers that want that should pass
  /// std::thread::hardware_concurrency() explicitly.
  ///
  /// `num_shards` fixes the shard grid independently of the lane count:
  /// ParallelFor always cuts [0, n) into num_shards pieces and lane w runs
  /// shards w, w+P, w+2P, ... in order. num_shards <= 0 defaults to
  /// num_threads (one shard per lane, the original behavior). Decoupling
  /// the two is what lets the shards-equality suite drive an identical
  /// shard grid with 1, 2, or 8 threads.
  explicit ThreadPool(int num_threads, int num_shards = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }
  int num_shards() const { return num_shards_; }

  /// Runs body(shard, begin, end) for every contiguous shard of [0, n),
  /// blocking until all shards complete. Shard s always covers
  /// [s*n/S, (s+1)*n/S) for S = num_shards(); empty shards still invoke
  /// the body (with begin == end) so per-shard scratch stays well-defined.
  void ParallelFor(int64_t n,
                   const std::function<void(int, int64_t, int64_t)>& body);

 private:
  void WorkerLoop(int lane);
  void RunLaneShards(int lane,
                     const std::function<void(int, int64_t, int64_t)>& body,
                     int64_t n);

  const int num_threads_;
  const int num_shards_;
  std::vector<std::thread> workers_;

  // Dispatch protocol: body_/n_/pending_ are written by the caller, then
  // published by a release increment of generation_; workers acquire the
  // new generation (spin first, condvar after a bounded spin), run their
  // fixed shard, and release-decrement pending_. The caller spins until
  // pending_ hits zero. The mutex exists only so a sleeping worker cannot
  // miss a generation bump.
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::atomic<uint64_t> generation_{0};
  std::atomic<int> pending_{0};
  std::atomic<bool> shutdown_{false};
  const std::function<void(int, int64_t, int64_t)>* body_ = nullptr;
  int64_t n_ = 0;
};

/// Shard count a caller should size per-shard scratch for: the pool's
/// shard-grid size, or 1 when running serially (null pool).
inline int NumShards(const ThreadPool* pool) {
  return pool != nullptr ? pool->num_shards() : 1;
}

/// Runs `body(shard, begin, end)` over the fixed contiguous shards of
/// [0, n): inline (one shard) when `pool` is null or a 1-thread, 1-shard
/// pool, through the pool otherwise. The serial path costs one direct call
/// — no std::function is materialized — so wiring a null pool through a
/// hot loop is free. A single-threaded pool with a multi-shard grid still
/// goes through ParallelFor so the shard partition (and any per-shard
/// scratch reduction) is identical to the threaded run.
template <typename Body>
void ShardedFor(ThreadPool* pool, int64_t n, Body&& body) {
  if (pool == nullptr ||
      (pool->num_threads() <= 1 && pool->num_shards() <= 1)) {
    body(0, int64_t{0}, n);
    return;
  }
  pool->ParallelFor(n, std::forward<Body>(body));
}

}  // namespace util
}  // namespace longdp

#endif  // LONGDP_UTIL_THREAD_POOL_H_
