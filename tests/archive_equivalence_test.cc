// Pins the PR's central contract: every analyst query served from the
// mmap'd archive is BIT-IDENTICAL (EXPECT_EQ on doubles, no tolerance) to
// the same query answered by ReleaseAnalyzer over the CSV-rehydrated
// ReleaseLog — for all three synthesizers, with real DP noise.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "archive/exec.h"
#include "archive/reader.h"
#include "archive/writer.h"
#include "core/categorical_synthesizer.h"
#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "core/release_analyzer.h"
#include "core/release_log.h"
#include "data/generators.h"
#include "query/spells.h"
#include "query/window_query.h"
#include "util/substream.h"

namespace longdp {
namespace archive {
namespace {

struct Paths {
  std::string csv;
  std::string ldpa;
  explicit Paths(const std::string& name)
      : csv(::testing::TempDir() + "/" + name + ".csv"),
        ldpa(::testing::TempDir() + "/" + name + ".ldpa") {}
  ~Paths() {
    std::remove(csv.c_str());
    std::remove(ldpa.c_str());
  }
};

// Writes `log` both ways and returns the archive-reader + CSV-analyzer pair
// inputs: the loaded log via out_log, the opened reader via out_reader.
void Persist(const core::ReleaseLog& log, const Paths& p,
             core::ReleaseLog* out_log, std::unique_ptr<ArchiveReader>* out) {
  ASSERT_TRUE(log.WriteCsv(p.csv).ok());
  auto writer = ArchiveWriter::Create(p.ldpa);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer.value().AppendReleaseLog("run", log).ok());
  ASSERT_TRUE(writer.value().Finish().ok());
  auto loaded = core::ReleaseLog::LoadCsv(p.csv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  *out_log = std::move(loaded).value();
  auto reader = ArchiveReader::Open(p.ldpa);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  *out = std::make_unique<ArchiveReader>(std::move(reader).value());
}

TEST(ArchiveEquivalenceTest, WindowQueriesMatchCsvPathBitForBit) {
  util::SubstreamRng rng(101, util::substream::kGeneric);
  auto ds = data::BernoulliIid(400, 12, 0.3, &rng).value();
  core::FixedWindowSynthesizer::Options opt;
  opt.horizon = 12;
  opt.window_k = 3;
  opt.rho = 0.05;  // real noise
  opt.seed = 9001;
  auto synth = core::FixedWindowSynthesizer::Create(opt).value();
  core::ReleaseLog log;
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    ASSERT_TRUE(log.Capture(*synth).ok());
  }

  Paths p("equiv_window");
  core::ReleaseLog csv_log;
  std::unique_ptr<ArchiveReader> reader;
  Persist(log, p, &csv_log, &reader);
  core::ReleaseAnalyzer analyzer(csv_log);
  Exec exec(*reader);

  std::vector<query::WindowPredicatePtr> preds;
  preds.push_back(query::MakeAllOnes(3));
  preds.push_back(query::MakeAtLeastOnes(3, 2));
  preds.push_back(query::MakeAllOnes(1));
  Exec::Filter windows;
  windows.kind = EntryKind::kWindow;
  auto entries = exec.Select(windows);
  ASSERT_EQ(entries.size(), 10u);  // t = 3..12
  for (const ArchiveEntry* e : entries) {
    for (const auto& pred : preds) {
      EXPECT_EQ(exec.DebiasedWindowFraction(*e, *pred).value(),
                analyzer.WindowFraction(e->t, *pred).value())
          << "t=" << e->t;
      EXPECT_EQ(exec.BiasedWindowFraction(*e, *pred).value(),
                analyzer.BiasedWindowFraction(e->t, *pred).value())
          << "t=" << e->t;
    }
  }
}

TEST(ArchiveEquivalenceTest, CumulativeQueriesMatchCsvPathBitForBit) {
  util::SubstreamRng rng(102, util::substream::kGeneric);
  auto ds = data::BernoulliIid(300, 10, 0.4, &rng).value();
  core::CumulativeSynthesizer::Options opt;
  opt.horizon = 10;
  opt.rho = 0.05;
  opt.seed = 4242;
  auto synth = core::CumulativeSynthesizer::Create(opt).value();
  core::ReleaseLog log;
  for (int64_t t = 1; t <= 10; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    ASSERT_TRUE(log.Capture(*synth).ok());
  }

  Paths p("equiv_cumulative");
  core::ReleaseLog csv_log;
  std::unique_ptr<ArchiveReader> reader;
  Persist(log, p, &csv_log, &reader);
  core::ReleaseAnalyzer analyzer(csv_log);
  Exec exec(*reader);

  Exec::Filter cumulative;
  cumulative.kind = EntryKind::kCumulative;
  auto entries = exec.Select(cumulative);
  ASSERT_EQ(entries.size(), 10u);
  for (const ArchiveEntry* e : entries) {
    for (int64_t b = 0; b <= 10; b += 2) {
      EXPECT_EQ(exec.CumulativeFraction(*e, b).value(),
                analyzer.CumulativeFraction(e->t, b).value())
          << "t=" << e->t << " b=" << b;
    }
  }
  for (size_t i = 0; i + 1 < entries.size(); i += 2) {
    const ArchiveEntry* e1 = entries[i];
    const ArchiveEntry* e2 = entries[i + 1];
    for (int64_t b = 1; b <= 4; ++b) {
      EXPECT_EQ(exec.CountOccExact(*e1, *e2, b).value(),
                analyzer.CountOccExact(e1->t, e2->t, b).value())
          << "t1=" << e1->t << " b=" << b;
    }
  }
}

TEST(ArchiveEquivalenceTest, CategoricalQueriesMatchCsvPathBitForBit) {
  util::SubstreamRng rng(77, util::substream::kGeneric);
  const int64_t n = 250;
  const int64_t horizon = 8;
  const int alphabet = 3;
  core::CategoricalWindowSynthesizer::Options opt;
  opt.horizon = horizon;
  opt.window_k = 2;
  opt.alphabet = alphabet;
  opt.rho = 0.05;
  opt.seed = 1717;
  auto synth = core::CategoricalWindowSynthesizer::Create(opt).value();
  core::ReleaseLog log;
  for (int64_t t = 0; t < horizon; ++t) {
    std::vector<uint8_t> round(static_cast<size_t>(n));
    for (auto& s : round) {
      s = static_cast<uint8_t>(
          rng.UniformInt(static_cast<uint64_t>(alphabet)));
    }
    ASSERT_TRUE(synth->ObserveRound(round).ok());
    ASSERT_TRUE(log.Capture(*synth).ok());
  }

  Paths p("equiv_categorical");
  core::ReleaseLog csv_log;
  std::unique_ptr<ArchiveReader> reader;
  Persist(log, p, &csv_log, &reader);
  core::ReleaseAnalyzer analyzer(csv_log);
  Exec exec(*reader);

  Exec::Filter categorical;
  categorical.kind = EntryKind::kCategorical;
  auto entries = exec.Select(categorical);
  ASSERT_EQ(entries.size(), 7u);  // t = 2..8
  for (const ArchiveEntry* e : entries) {
    for (uint64_t code = 0; code < 9; ++code) {
      EXPECT_EQ(exec.CategoricalBinFraction(*e, code).value(),
                analyzer.CategoricalBinFraction(e->t, code).value())
          << "t=" << e->t << " code=" << code;
    }
  }
}

TEST(ArchiveEquivalenceTest, CohortSpellsMatchMaterializedDataset) {
  // The synthesizer's live cohort, archived as packed round columns, must
  // answer the spell/window queries exactly as its materialized
  // LongitudinalDataset does — the "no rehydration" claim.
  util::SubstreamRng rng(103, util::substream::kGeneric);
  auto ds = data::BernoulliIid(350, 9, 0.5, &rng).value();
  core::FixedWindowSynthesizer::Options opt;
  opt.horizon = 9;
  opt.window_k = 3;
  opt.rho = 0.05;
  opt.seed = 31337;
  auto synth = core::FixedWindowSynthesizer::Create(opt).value();
  for (int64_t t = 1; t <= 9; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  auto panel = synth->cohort().ToDataset(9).value();

  Paths p("equiv_cohort");
  {
    auto writer = ArchiveWriter::Create(p.ldpa);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().AppendCohort("cohort", panel).ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  auto reader = ArchiveReader::Open(p.ldpa);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  Exec exec(reader.value());
  const ArchiveEntry& e = reader.value().entries()[0];
  ASSERT_EQ(e.rounds, panel.rounds());
  for (int64_t t = 3; t <= 9; t += 2) {
    EXPECT_EQ(exec.CohortWindowHistogram(e, t, 3).value(),
              panel.WindowHistogram(t, 3).value());
    EXPECT_EQ(exec.CohortEverHadSpell(e, t, 2).value(),
              query::EverHadSpell(panel, t, 2).value());
    EXPECT_EQ(exec.CohortOngoingSpellAtLeast(e, t, 2).value(),
              query::OngoingSpellAtLeast(panel, t, 2).value());
    EXPECT_EQ(exec.CohortSpellLengthHistogram(e, t).value(),
              query::SpellLengthHistogram(panel, t).value());
    EXPECT_EQ(exec.CohortMeanSpellLength(e, t).value(),
              query::MeanSpellLength(panel, t).value());
  }
}

}  // namespace
}  // namespace archive
}  // namespace longdp
