#include "archive/exec.h"
#include "archive/format.h"
#include "archive/reader.h"
#include "archive/writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/fixed_window_synthesizer.h"
#include "core/release_log.h"
#include "data/generators.h"
#include "data/longitudinal_dataset.h"
#include "query/spells.h"
#include "query/window_query.h"
#include "util/substream.h"

namespace longdp {
namespace archive {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string TempArchive(const std::string& name) {
  return ::testing::TempDir() + "/" + name + ".ldpa";
}

core::WindowRelease MakeWindow(int64_t t, int k, int64_t npad, int64_t n) {
  core::WindowRelease r;
  r.t = t;
  r.window_k = k;
  r.npad = npad;
  r.true_n = n;
  r.histogram.assign(size_t{1} << k, 0);
  for (size_t s = 0; s < r.histogram.size(); ++s) {
    r.histogram[s] = static_cast<int64_t>(t * 100 + s);
  }
  return r;
}

core::CumulativeRelease MakeCumulative(int64_t t, int64_t population) {
  core::CumulativeRelease r;
  r.t = t;
  r.thresholds = {population, population / 2, population / 4};
  return r;
}

core::CategoricalRelease MakeCategorical(int64_t t) {
  core::CategoricalRelease r;
  r.t = t;
  r.window_k = 2;
  r.alphabet = 3;
  r.npad = 7;
  r.true_n = 500;
  r.histogram.assign(9, 0);  // 3^2
  for (size_t s = 0; s < r.histogram.size(); ++s) {
    r.histogram[s] = static_cast<int64_t>(t * 10 + s + 7);
  }
  return r;
}

void ExpectLogsEqual(const core::ReleaseLog& a, const core::ReleaseLog& b) {
  ASSERT_EQ(a.window_releases().size(), b.window_releases().size());
  for (size_t i = 0; i < a.window_releases().size(); ++i) {
    const auto& x = a.window_releases()[i];
    const auto& y = b.window_releases()[i];
    EXPECT_EQ(x.t, y.t);
    EXPECT_EQ(x.window_k, y.window_k);
    EXPECT_EQ(x.npad, y.npad);
    EXPECT_EQ(x.true_n, y.true_n);
    EXPECT_EQ(x.histogram, y.histogram);
  }
  ASSERT_EQ(a.cumulative_releases().size(), b.cumulative_releases().size());
  for (size_t i = 0; i < a.cumulative_releases().size(); ++i) {
    EXPECT_EQ(a.cumulative_releases()[i].t, b.cumulative_releases()[i].t);
    EXPECT_EQ(a.cumulative_releases()[i].thresholds,
              b.cumulative_releases()[i].thresholds);
  }
  ASSERT_EQ(a.categorical_releases().size(), b.categorical_releases().size());
  for (size_t i = 0; i < a.categorical_releases().size(); ++i) {
    const auto& x = a.categorical_releases()[i];
    const auto& y = b.categorical_releases()[i];
    EXPECT_EQ(x.t, y.t);
    EXPECT_EQ(x.window_k, y.window_k);
    EXPECT_EQ(x.alphabet, y.alphabet);
    EXPECT_EQ(x.npad, y.npad);
    EXPECT_EQ(x.true_n, y.true_n);
    EXPECT_EQ(x.histogram, y.histogram);
  }
}

TEST(ArchiveTest, ReleaseLogRoundTripsFieldForField) {
  core::ReleaseLog log;
  ASSERT_TRUE(log.Append(MakeWindow(3, 3, 5, 100)).ok());
  ASSERT_TRUE(log.Append(MakeWindow(4, 3, 5, 100)).ok());
  ASSERT_TRUE(log.Append(MakeCumulative(3, 100)).ok());
  ASSERT_TRUE(log.Append(MakeCumulative(4, 100)).ok());
  ASSERT_TRUE(log.Append(MakeCategorical(3)).ok());

  const std::string path = TempArchive("roundtrip");
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(writer.value().AppendReleaseLog("run0", log).ok());
    EXPECT_EQ(writer.value().num_entries(), 5);
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto label = reader.value().FindLabel("run0");
  ASSERT_TRUE(label.ok());
  auto rebuilt = reader.value().ToReleaseLog(label.value());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  ExpectLogsEqual(log, rebuilt.value());
  std::remove(path.c_str());
}

TEST(ArchiveTest, DegenerateReleasesRoundTrip) {
  // The archive preserves whatever the log holds, including shapes no
  // synthesizer would emit: an empty histogram (zero-byte payload), a
  // single-round single-release log, a zero-threshold row.
  core::ReleaseLog log;
  core::WindowRelease empty;
  empty.t = 1;
  empty.window_k = 1;
  empty.npad = 0;
  empty.true_n = 0;
  ASSERT_TRUE(log.Append(empty).ok());  // empty histogram
  core::CumulativeRelease one;
  one.t = 1;
  one.thresholds = {0};
  ASSERT_TRUE(log.Append(one).ok());

  const std::string path = TempArchive("degenerate");
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().AppendReleaseLog("d", log).ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader.value().entries().size(), 2u);
  EXPECT_TRUE(reader.value().Values(reader.value().entries()[0]).empty());
  auto rebuilt = reader.value().ToReleaseLog(0);
  ASSERT_TRUE(rebuilt.ok());
  ExpectLogsEqual(log, rebuilt.value());
  std::remove(path.c_str());
}

TEST(ArchiveTest, HorizonOneSynthesizerLogRoundTrips) {
  // The smallest live synthesizer: horizon 1, k = 1, one observed round,
  // one release. Its captured log must survive the archive unchanged.
  util::SubstreamRng rng(11, util::substream::kGeneric);
  auto ds = data::BernoulliIid(40, 1, 0.5, &rng).value();
  core::FixedWindowSynthesizer::Options opt;
  opt.horizon = 1;
  opt.window_k = 1;
  opt.rho = kInf;
  opt.npad = 2;
  auto synth = core::FixedWindowSynthesizer::Create(opt).value();
  ASSERT_TRUE(synth->ObserveRound(ds.Round(1)).ok());
  core::ReleaseLog log;
  ASSERT_TRUE(log.Capture(*synth).ok());
  ASSERT_EQ(log.window_releases().size(), 1u);

  const std::string path = TempArchive("horizon1");
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().AppendReleaseLog("h1", log).ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto rebuilt = reader.value().ToReleaseLog(0);
  ASSERT_TRUE(rebuilt.ok());
  ExpectLogsEqual(log, rebuilt.value());
  std::remove(path.c_str());
}

TEST(ArchiveTest, CohortRoundTripsBitForBit) {
  util::SubstreamRng rng(7, util::substream::kGeneric);
  auto panel = data::BernoulliIid(130, 9, 0.4, &rng).value();  // 3 words/round
  const std::string path = TempArchive("cohort");
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().AppendCohort("panel", panel).ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader.value().entries().size(), 1u);
  const ArchiveEntry& e = reader.value().entries()[0];
  EXPECT_EQ(e.kind, EntryKind::kCohort);
  EXPECT_EQ(e.count, 130);
  EXPECT_EQ(e.rounds, 9);
  for (int64_t t = 1; t <= 9; ++t) {
    data::RoundView want = panel.Round(t);
    data::RoundView got = reader.value().CohortRound(e, t);
    ASSERT_EQ(got.size(), want.size());
    for (size_t w = 0; w < want.num_words(); ++w) {
      EXPECT_EQ(got.words()[w], want.words()[w]) << "t=" << t << " w=" << w;
    }
  }
  std::remove(path.c_str());
}

TEST(ArchiveTest, ZeroRecordCohortRoundTrips) {
  auto panel = data::LongitudinalDataset::Create(0, 3).value();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(panel.AppendRound({}).ok());
  }
  const std::string path = TempArchive("empty_cohort");
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().AppendCohort("none", panel).ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const ArchiveEntry& e = reader.value().entries()[0];
  EXPECT_EQ(e.count, 0);
  EXPECT_EQ(e.rounds, 3);
  EXPECT_EQ(e.bytes, 0u);
  EXPECT_EQ(reader.value().CohortRound(e, 1).size(), 0);
  // Spell queries on the empty panel answer their n == 0 conventions.
  Exec exec(reader.value());
  EXPECT_EQ(exec.CohortEverHadSpell(e, 3, 2).value(), 0.0);
  EXPECT_EQ(exec.CohortMeanSpellLength(e, 3).value(), 0.0);
  std::remove(path.c_str());
}

TEST(ArchiveTest, MissingFileIsNotFound) {
  EXPECT_TRUE(
      ArchiveReader::Open("/no/such/archive.ldpa").status().IsNotFound());
}

TEST(ArchiveTest, NonArchiveFileIsInvalidArgument) {
  const std::string path = TempArchive("notanarchive");
  {
    std::ofstream out(path);
    out << "kind,t,k,alphabet,npad,true_n,index,value\n";
    out << "this is a release log CSV, not an archive; it is long enough\n";
    out << "to clear the minimum size check and fail on the magic.\n";
  }
  EXPECT_TRUE(ArchiveReader::Open(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(ArchiveTest, UnfinishedArchiveDoesNotOpen) {
  const std::string path = TempArchive("unfinished");
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        writer.value().AppendWindowRelease("w", MakeWindow(3, 2, 1, 50)).ok());
    // No Finish(): the file has payload but no footer/tail.
  }
  EXPECT_TRUE(ArchiveReader::Open(path).status().IsDataLoss());
  std::remove(path.c_str());
}

TEST(ArchiveTest, PayloadCorruptionIsDataLoss) {
  const std::string path = TempArchive("corrupt");
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        writer.value().AppendWindowRelease("w", MakeWindow(3, 3, 1, 50)).ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  ASSERT_TRUE(ArchiveReader::Open(path).ok());
  {
    // Flip one byte inside the first payload block (offset kHeaderBytes).
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(kHeaderBytes) + 3);
    char b = 0;
    f.get(b);
    f.seekp(static_cast<std::streamoff>(kHeaderBytes) + 3);
    f.put(static_cast<char>(b ^ 0x40));
  }
  auto damaged = ArchiveReader::Open(path);
  ASSERT_FALSE(damaged.ok());
  EXPECT_TRUE(damaged.status().IsDataLoss()) << damaged.status().ToString();
  std::remove(path.c_str());
}

TEST(ArchiveTest, FooterCorruptionIsDataLoss) {
  const std::string path = TempArchive("corrupt_footer");
  uint64_t footer_offset = 0;
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        writer.value().AppendWindowRelease("w", MakeWindow(3, 3, 1, 50)).ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  {
    auto reader = ArchiveReader::Open(path);
    ASSERT_TRUE(reader.ok());
    footer_offset = reader.value().footer_offset();
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(footer_offset) + 1);
    f.put('\x7f');
  }
  auto damaged = ArchiveReader::Open(path);
  ASSERT_FALSE(damaged.ok());
  EXPECT_TRUE(damaged.status().IsDataLoss()) << damaged.status().ToString();
  std::remove(path.c_str());
}

TEST(ArchiveTest, OpenForAppendExtendsWithoutRewriting) {
  const std::string path = TempArchive("append");
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        writer.value().AppendWindowRelease("a", MakeWindow(3, 2, 1, 50)).ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  {
    auto writer = ArchiveWriter::OpenForAppend(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_EQ(writer.value().num_entries(), 1);
    ASSERT_TRUE(
        writer.value().AppendWindowRelease("b", MakeWindow(4, 2, 1, 50)).ok());
    ASSERT_TRUE(
        writer.value().AppendCumulativeRelease("a", MakeCumulative(4, 50)).ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader.value().entries().size(), 3u);
  EXPECT_EQ(reader.value().labels().size(), 2u);
  EXPECT_EQ(reader.value().label(reader.value().entries()[0].label_id), "a");
  EXPECT_EQ(reader.value().label(reader.value().entries()[1].label_id), "b");
  EXPECT_EQ(reader.value().entries()[2].kind, EntryKind::kCumulative);
  std::remove(path.c_str());
}

TEST(ArchiveTest, WriterRefusesUseAfterFinish) {
  const std::string path = TempArchive("finished");
  auto writer = ArchiveWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().Finish().ok());
  EXPECT_TRUE(writer.value()
                  .AppendWindowRelease("w", MakeWindow(3, 2, 1, 50))
                  .IsFailedPrecondition());
  EXPECT_TRUE(writer.value().Finish().IsFailedPrecondition());
  std::remove(path.c_str());
}

TEST(ArchiveExecTest, SelectCountAndGroupBy) {
  const std::string path = TempArchive("exec_select");
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    for (int64_t t = 3; t <= 6; ++t) {
      ASSERT_TRUE(
          writer.value().AppendWindowRelease("r0", MakeWindow(t, 3, 1, 50)).ok());
      ASSERT_TRUE(
          writer.value().AppendCumulativeRelease("r1", MakeCumulative(t, 50)).ok());
    }
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Exec exec(reader.value());

  Exec::Filter all;
  EXPECT_EQ(exec.CountEntries(all), 8);

  Exec::Filter windows;
  windows.kind = EntryKind::kWindow;
  EXPECT_EQ(exec.CountEntries(windows), 4);

  Exec::Filter late;
  late.t_min = 5;
  EXPECT_EQ(exec.CountEntries(late), 4);

  Exec::Filter range;
  range.kind = EntryKind::kCumulative;
  range.t_min = 4;
  range.t_max = 5;
  auto selected = exec.Select(range);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0]->t, 4);
  EXPECT_EQ(selected[1]->t, 5);

  auto by_label = exec.GroupCountByLabel(windows);
  ASSERT_EQ(by_label.size(), 2u);
  EXPECT_EQ(by_label[reader.value().FindLabel("r0").value()], 4);
  EXPECT_EQ(by_label[reader.value().FindLabel("r1").value()], 0);
  std::remove(path.c_str());
}

TEST(ArchiveExecTest, KindMismatchIsInvalidArgument) {
  const std::string path = TempArchive("exec_kind");
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        writer.value().AppendCumulativeRelease("c", MakeCumulative(3, 50)).ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Exec exec(reader.value());
  auto pred = query::MakeAllOnes(2);
  EXPECT_TRUE(exec.WindowCount(reader.value().entries()[0], *pred)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(exec.CohortWindowHistogram(reader.value().entries()[0], 3, 2)
                  .status()
                  .IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(ArchiveExecTest, CohortWindowHistogramMatchesDataset) {
  util::SubstreamRng rng(21, util::substream::kGeneric);
  auto panel = data::BernoulliIid(517, 10, 0.35, &rng).value();
  const std::string path = TempArchive("exec_hist");
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().AppendCohort("p", panel).ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Exec exec(reader.value());
  const ArchiveEntry& e = reader.value().entries()[0];
  for (int k : {1, 3, 5}) {
    for (int64_t t = k; t <= 10; t += 3) {
      auto got = exec.CohortWindowHistogram(e, t, k);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      auto want = panel.WindowHistogram(t, k);
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(got.value(), want.value()) << "t=" << t << " k=" << k;
    }
  }
  EXPECT_TRUE(exec.CohortWindowHistogram(e, 11, 3).status().IsOutOfRange());
  EXPECT_TRUE(exec.CohortWindowHistogram(e, 2, 3).status().IsOutOfRange());
  std::remove(path.c_str());
}

TEST(ArchiveExecTest, CohortSpellQueriesMatchDatasetPath) {
  util::SubstreamRng rng(22, util::substream::kGeneric);
  auto panel = data::BernoulliIid(201, 8, 0.6, &rng).value();
  const std::string path = TempArchive("exec_spells");
  {
    auto writer = ArchiveWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().AppendCohort("p", panel).ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Exec exec(reader.value());
  const ArchiveEntry& e = reader.value().entries()[0];
  for (int64_t t : {1, 5, 8}) {
    EXPECT_EQ(exec.CohortSpellLengthHistogram(e, t).value(),
              query::SpellLengthHistogram(panel, t).value());
    EXPECT_EQ(exec.CohortMeanSpellLength(e, t).value(),
              query::MeanSpellLength(panel, t).value());
    for (int64_t len : {1, 3}) {
      EXPECT_EQ(exec.CohortEverHadSpell(e, t, len).value(),
                query::EverHadSpell(panel, t, len).value());
      EXPECT_EQ(exec.CohortOngoingSpellAtLeast(e, t, len).value(),
                query::OngoingSpellAtLeast(panel, t, len).value());
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace archive
}  // namespace longdp
