#include "core/categorical_synthesizer.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/substream.h"

namespace longdp {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

CategoricalWindowSynthesizer::Options Opt(int64_t horizon, int k, int alphabet,
                                          double rho, int64_t npad = -1,
                                          uint64_t seed = 0) {
  CategoricalWindowSynthesizer::Options options;
  options.horizon = horizon;
  options.window_k = k;
  options.alphabet = alphabet;
  options.rho = rho;
  options.npad = npad;
  options.seed = seed;
  return options;
}

// Random categorical rounds over alphabet A.
std::vector<std::vector<uint8_t>> RandomRounds(int64_t n, int64_t horizon,
                                               int alphabet,
                                               util::Rng* rng) {
  std::vector<std::vector<uint8_t>> rounds;
  for (int64_t t = 0; t < horizon; ++t) {
    std::vector<uint8_t> round(static_cast<size_t>(n));
    for (auto& s : round) {
      s = static_cast<uint8_t>(
          rng->UniformInt(static_cast<uint64_t>(alphabet)));
    }
    rounds.push_back(std::move(round));
  }
  return rounds;
}

// True window histogram over base-A codes at round index t (0-based,
// t >= k-1).
std::vector<int64_t> TrueHistogram(
    const std::vector<std::vector<uint8_t>>& rounds, int64_t n, int k,
    int alphabet, int64_t t) {
  uint64_t bins = 1;
  for (int j = 0; j < k; ++j) bins *= static_cast<uint64_t>(alphabet);
  std::vector<int64_t> hist(bins, 0);
  for (int64_t i = 0; i < n; ++i) {
    uint64_t code = 0;
    for (int64_t tt = t - k + 1; tt <= t; ++tt) {
      code = code * static_cast<uint64_t>(alphabet) +
             rounds[static_cast<size_t>(tt)][static_cast<size_t>(i)];
    }
    ++hist[code];
  }
  return hist;
}

TEST(CategoricalTest, NumBinsValidation) {
  EXPECT_EQ(CategoricalWindowSynthesizer::NumBins(3, 3).value(), 27u);
  EXPECT_EQ(CategoricalWindowSynthesizer::NumBins(2, 5).value(), 25u);
  EXPECT_FALSE(CategoricalWindowSynthesizer::NumBins(0, 3).ok());
  EXPECT_FALSE(CategoricalWindowSynthesizer::NumBins(3, 1).ok());
  EXPECT_FALSE(CategoricalWindowSynthesizer::NumBins(30, 10).ok());
}

TEST(CategoricalTest, CreateValidates) {
  EXPECT_FALSE(CategoricalWindowSynthesizer::Create(Opt(2, 3, 3, 0.5)).ok());
  EXPECT_FALSE(
      CategoricalWindowSynthesizer::Create(Opt(12, 3, 3, 0.0)).ok());
  EXPECT_TRUE(CategoricalWindowSynthesizer::Create(Opt(12, 3, 3, 0.5)).ok());
}

TEST(CategoricalTest, BinaryCaseZeroNoiseMatchesTruth) {
  // A = 2 must reduce to Algorithm 1's behaviour.
  util::SubstreamRng rng(1, util::substream::kGeneric);
  const int64_t kN = 300, kT = 8;
  const int kK = 3, kA = 2;
  auto rounds = RandomRounds(kN, kT, kA, &rng);
  auto synth =
      CategoricalWindowSynthesizer::Create(Opt(kT, kK, kA, kInf, 0)).value();
  for (int64_t t = 0; t < kT; ++t) {
    ASSERT_TRUE(synth->ObserveRound(rounds[static_cast<size_t>(t)])
                    .ok());
    if (t + 1 >= kK) {
      EXPECT_EQ(synth->SyntheticHistogram(),
                TrueHistogram(rounds, kN, kK, kA, t))
          << "t=" << t;
    }
  }
}

TEST(CategoricalTest, TernaryZeroNoiseMatchesTruth) {
  util::SubstreamRng rng(2, util::substream::kGeneric);
  const int64_t kN = 400, kT = 7;
  const int kK = 2, kA = 3;
  auto rounds = RandomRounds(kN, kT, kA, &rng);
  auto synth =
      CategoricalWindowSynthesizer::Create(Opt(kT, kK, kA, kInf, 0)).value();
  for (int64_t t = 0; t < kT; ++t) {
    ASSERT_TRUE(synth->ObserveRound(rounds[static_cast<size_t>(t)])
                    .ok());
    if (t + 1 >= kK) {
      EXPECT_EQ(synth->SyntheticHistogram(),
                TrueHistogram(rounds, kN, kK, kA, t))
          << "t=" << t;
    }
  }
}

TEST(CategoricalTest, ConsistencyConstraintAcrossRounds) {
  // sum_a p^t_{z a} == sum_a p^{t-1}_{a z} for every overlap z, under noise.
  util::SubstreamRng rng(3, util::substream::kGeneric);
  const int64_t kN = 2000, kT = 10;
  const int kK = 2, kA = 4;
  auto rounds = RandomRounds(kN, kT, kA, &rng);
  auto synth =
      CategoricalWindowSynthesizer::Create(Opt(kT, kK, kA, 0.02, -1, 3)).value();
  std::vector<int64_t> prev;
  for (int64_t t = 0; t < kT; ++t) {
    ASSERT_TRUE(
        synth->ObserveRound(rounds[static_cast<size_t>(t)]).ok());
    if (!synth->has_release()) continue;
    auto cur = synth->SyntheticHistogram();
    if (!prev.empty()) {
      const uint64_t overlaps = 4;  // A^(k-1) = 4
      for (uint64_t z = 0; z < overlaps; ++z) {
        int64_t lhs = 0, rhs = 0;
        for (uint64_t a = 0; a < 4; ++a) {
          lhs += cur[z * 4 + a];      // patterns z then a
          rhs += prev[a * 4 + z];     // patterns a then z
        }
        EXPECT_EQ(lhs, rhs) << "t=" << t << " z=" << z;
      }
    }
    prev = cur;
  }
}

TEST(CategoricalTest, PopulationConstantUnderNoise) {
  util::SubstreamRng rng(5, util::substream::kGeneric);
  const int64_t kN = 1500, kT = 9;
  auto rounds = RandomRounds(kN, kT, 3, &rng);
  auto synth =
      CategoricalWindowSynthesizer::Create(Opt(kT, 2, 3, 0.05, -1, 5)).value();
  int64_t population = -1;
  for (int64_t t = 0; t < kT; ++t) {
    ASSERT_TRUE(
        synth->ObserveRound(rounds[static_cast<size_t>(t)]).ok());
    if (!synth->has_release()) continue;
    int64_t total = 0;
    for (int64_t c : synth->SyntheticHistogram()) total += c;
    if (population < 0) {
      population = total;
      EXPECT_EQ(population, synth->synthetic_population());
    } else {
      EXPECT_EQ(total, population) << "t=" << t;
    }
  }
}

TEST(CategoricalTest, DebiasedBinFractionsExactWithZeroNoise) {
  util::SubstreamRng rng(7, util::substream::kGeneric);
  const int64_t kN = 600, kT = 6;
  const int kK = 2, kA = 3;
  auto rounds = RandomRounds(kN, kT, kA, &rng);
  auto synth =
      CategoricalWindowSynthesizer::Create(Opt(kT, kK, kA, kInf, 25)).value();
  for (int64_t t = 0; t < kT; ++t) {
    ASSERT_TRUE(
        synth->ObserveRound(rounds[static_cast<size_t>(t)]).ok());
    if (!synth->has_release()) continue;
    auto truth = TrueHistogram(rounds, kN, kK, kA, t);
    for (uint64_t s = 0; s < truth.size(); ++s) {
      double expected =
          static_cast<double>(truth[s]) / static_cast<double>(kN);
      EXPECT_NEAR(synth->DebiasedBinFraction(s).value(), expected, 1e-12)
          << "t=" << t << " s=" << s;
    }
  }
}

TEST(CategoricalTest, RejectsOutOfAlphabetSymbol) {
  auto synth =
      CategoricalWindowSynthesizer::Create(Opt(5, 2, 3, kInf, 0)).value();
  std::vector<uint8_t> bad = {0, 3, 1};
  EXPECT_TRUE(synth->ObserveRound(bad).IsInvalidArgument());
}

TEST(CategoricalTest, HistoriesAppendOnly) {
  util::SubstreamRng rng(13, util::substream::kGeneric);
  const int64_t kN = 200, kT = 7;
  auto rounds = RandomRounds(kN, kT, 3, &rng);
  auto synth =
      CategoricalWindowSynthesizer::Create(Opt(kT, 2, 3, 0.1, -1, 13)).value();
  std::vector<std::vector<int>> prefixes;
  for (int64_t t = 0; t < kT; ++t) {
    ASSERT_TRUE(
        synth->ObserveRound(rounds[static_cast<size_t>(t)]).ok());
    if (!synth->has_release()) continue;
    if (prefixes.empty()) {
      prefixes.resize(static_cast<size_t>(synth->synthetic_population()));
    }
    for (int64_t r = 0; r < synth->synthetic_population(); ++r) {
      auto& p = prefixes[static_cast<size_t>(r)];
      for (size_t j = 0; j < p.size(); ++j) {
        ASSERT_EQ(synth->Symbol(r, static_cast<int64_t>(j + 1)), p[j]);
      }
      while (p.size() < static_cast<size_t>(t + 1)) {
        p.push_back(synth->Symbol(r, static_cast<int64_t>(p.size() + 1)));
      }
    }
  }
}

// Parameterized alphabet sweep.
class CategoricalAlphabetTest : public ::testing::TestWithParam<int> {};

TEST_P(CategoricalAlphabetTest, ZeroNoiseExactForAlphabet) {
  const int kA = GetParam();
  util::SubstreamRng rng(17 + static_cast<uint64_t>(kA), util::substream::kGeneric);
  const int64_t kN = 300, kT = 6;
  const int kK = 2;
  auto rounds = RandomRounds(kN, kT, kA, &rng);
  auto synth =
      CategoricalWindowSynthesizer::Create(Opt(kT, kK, kA, kInf, 0)).value();
  for (int64_t t = 0; t < kT; ++t) {
    ASSERT_TRUE(
        synth->ObserveRound(rounds[static_cast<size_t>(t)]).ok());
    if (t + 1 >= kK) {
      EXPECT_EQ(synth->SyntheticHistogram(),
                TrueHistogram(rounds, kN, kK, kA, t))
          << "A=" << kA << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Alphabets, CategoricalAlphabetTest,
                         ::testing::Values(2, 3, 4, 5, 8));

}  // namespace
}  // namespace core
}  // namespace longdp
