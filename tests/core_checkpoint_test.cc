#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "core/categorical_synthesizer.h"
#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "data/generators.h"
#include "query/window_query.h"
#include "stream/counter_factory.h"
#include "util/substream.h"

namespace longdp {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

FixedWindowSynthesizer::Options Opt(int64_t horizon, int k, double rho,
                                    int64_t npad = -1, uint64_t seed = 0) {
  FixedWindowSynthesizer::Options options;
  options.horizon = horizon;
  options.window_k = k;
  options.rho = rho;
  options.npad = npad;
  options.seed = seed;
  return options;
}

TEST(CheckpointTest, RoundTripPreservesEverything) {
  util::SubstreamRng rng(1, util::substream::kGeneric);
  auto ds = data::BernoulliIid(400, 12, 0.3, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(12, 3, 0.02, -1, 31)).value();
  for (int64_t t = 1; t <= 7; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  auto restored = FixedWindowSynthesizer::LoadCheckpoint(stream);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto& r = *restored.value();
  EXPECT_EQ(r.t(), 7);
  EXPECT_EQ(r.population(), 400);
  EXPECT_EQ(r.npad(), synth->npad());
  EXPECT_EQ(r.stats().releases, synth->stats().releases);
  EXPECT_NEAR(r.accountant().spent(), synth->accountant().spent(), 1e-12);
  EXPECT_EQ(r.SyntheticHistogram(), synth->SyntheticHistogram());
  // Cohort records identical bit for bit.
  ASSERT_EQ(r.cohort().num_records(), synth->cohort().num_records());
  for (int64_t rec = 0; rec < r.cohort().num_records(); ++rec) {
    for (int64_t t = 1; t <= r.cohort().rounds(); ++t) {
      ASSERT_EQ(r.cohort().Bit(rec, t), synth->cohort().Bit(rec, t));
    }
  }
}

TEST(CheckpointTest, RestoredRunContinuesCorrectly) {
  // Zero-noise path: a straight run and a checkpoint/restore run must end
  // with identical histograms (the consistency solve is deterministic at
  // the histogram level when sigma = 0).
  util::SubstreamRng rng(2, util::substream::kGeneric);
  auto ds = data::BernoulliIid(300, 10, 0.4, &rng).value();

  auto straight =
      FixedWindowSynthesizer::Create(Opt(10, 3, kInf, 20)).value();
  for (int64_t t = 1; t <= 10; ++t) {
    ASSERT_TRUE(straight->ObserveRound(ds.Round(t)).ok());
  }

  auto first_half =
      FixedWindowSynthesizer::Create(Opt(10, 3, kInf, 20)).value();
  for (int64_t t = 1; t <= 5; ++t) {
    ASSERT_TRUE(first_half->ObserveRound(ds.Round(t)).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(first_half->SaveCheckpoint(stream).ok());
  auto second_half = FixedWindowSynthesizer::LoadCheckpoint(stream).value();
  for (int64_t t = 6; t <= 10; ++t) {
    ASSERT_TRUE(second_half->ObserveRound(ds.Round(t)).ok());
  }
  EXPECT_EQ(second_half->SyntheticHistogram(),
            straight->SyntheticHistogram());
  EXPECT_EQ(second_half->t(), 10);
}

TEST(CheckpointTest, RestoredRunKeepsInvariantsUnderNoise) {
  util::SubstreamRng rng(3, util::substream::kGeneric);
  auto ds = data::BernoulliIid(1000, 12, 0.25, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(12, 3, 0.01, -1, 37)).value();
  for (int64_t t = 1; t <= 6; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  auto restored = FixedWindowSynthesizer::LoadCheckpoint(stream).value();
  std::vector<int64_t> prev = restored->SyntheticHistogram();
  int64_t population = restored->cohort().num_records();
  for (int64_t t = 7; t <= 12; ++t) {
    ASSERT_TRUE(restored->ObserveRound(ds.Round(t)).ok());
    auto cur = restored->SyntheticHistogram();
    // Consistency constraint across the restore boundary and beyond.
    for (util::Pattern z = 0; z < 4; ++z) {
      EXPECT_EQ(cur[(z << 1)] + cur[(z << 1) | 1], prev[z] + prev[z | 4])
          << "t=" << t << " z=" << z;
    }
    int64_t total = 0;
    for (int64_t c : cur) total += c;
    EXPECT_EQ(total, population);
    prev = cur;
  }
  // Budget fully consumed by the end, not double-charged.
  EXPECT_NEAR(restored->accountant().spent(), 0.01, 1e-10);
}

TEST(CheckpointTest, PreReleaseCheckpointWorks) {
  // Checkpointing before t = k (no cohort yet) must round-trip.
  util::SubstreamRng rng(4, util::substream::kGeneric);
  auto ds = data::BernoulliIid(50, 6, 0.5, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(6, 4, 0.1, -1, 41)).value();
  ASSERT_TRUE(synth->ObserveRound(ds.Round(1)).ok());
  ASSERT_TRUE(synth->ObserveRound(ds.Round(2)).ok());
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  auto restored = FixedWindowSynthesizer::LoadCheckpoint(stream).value();
  EXPECT_EQ(restored->t(), 2);
  EXPECT_FALSE(restored->has_release());
  for (int64_t t = 3; t <= 6; ++t) {
    ASSERT_TRUE(restored->ObserveRound(ds.Round(t)).ok());
  }
  EXPECT_TRUE(restored->has_release());
}

TEST(CheckpointTest, FreshSynthesizerCheckpointWorks) {
  auto synth = FixedWindowSynthesizer::Create(Opt(5, 2, 0.1, -1, 43)).value();
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  auto restored = FixedWindowSynthesizer::LoadCheckpoint(stream).value();
  EXPECT_EQ(restored->t(), 0);
  EXPECT_EQ(restored->population(), -1);
}

TEST(CheckpointTest, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_FALSE(FixedWindowSynthesizer::LoadCheckpoint(empty).ok());
  std::stringstream wrong("some other file\n1 2 3\n");
  EXPECT_FALSE(FixedWindowSynthesizer::LoadCheckpoint(wrong).ok());
  std::stringstream truncated(
      "longdp-fixed-window-checkpoint-v3\n12 3 0.005 124 0.05 7\n");
  EXPECT_FALSE(FixedWindowSynthesizer::LoadCheckpoint(truncated).ok());
  // v1 checkpoints predate substream cursors and v2 checkpoints predate
  // the persisted group order; both must be rejected by magic.
  std::stringstream v1(
      "longdp-fixed-window-checkpoint-v1\n12 3 0.005 124 0.05\n");
  EXPECT_FALSE(FixedWindowSynthesizer::LoadCheckpoint(v1).ok());
  std::stringstream v2(
      "longdp-fixed-window-checkpoint-v2\n12 3 0.005 124 0.05 7\n");
  EXPECT_FALSE(FixedWindowSynthesizer::LoadCheckpoint(v2).ok());
}

TEST(CheckpointTest, VersionSkewIsExplicitInvalidArgument) {
  // An old-version checkpoint must be refused with a message naming the
  // version problem — distinct from "this is not a checkpoint at all".
  std::stringstream v3(
      "longdp-fixed-window-checkpoint-v3\n12 3 0.005 124 0.05 7\n");
  auto restored = FixedWindowSynthesizer::LoadCheckpoint(v3);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsInvalidArgument())
      << restored.status().ToString();
  EXPECT_NE(restored.status().message().find("version"), std::string::npos)
      << restored.status().message();
}

TEST(CheckpointTest, MissingEndSentinelIsRejected) {
  // v4 checkpoints end in a sentinel token; a checkpoint cut anywhere —
  // including exactly at a clean token boundary, which every field-level
  // read survives — must still fail to load.
  util::SubstreamRng rng(21, util::substream::kGeneric);
  auto ds = data::BernoulliIid(60, 6, 0.5, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(6, 2, 0.1, -1, 83)).value();
  for (int64_t t = 1; t <= 4; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  std::string text = stream.str();
  const std::string sentinel = "end-longdp-fixed-window-checkpoint-v4";
  auto pos = text.rfind(sentinel);
  ASSERT_NE(pos, std::string::npos) << "checkpoint lacks its sentinel";
  std::stringstream truncated(text.substr(0, pos));
  EXPECT_FALSE(FixedWindowSynthesizer::LoadCheckpoint(truncated).ok());
  // And with the sentinel replaced by a forged token.
  std::string forged = text;
  forged.replace(pos, sentinel.size(), "end-of-some-other-file-entirely---");
  std::stringstream wrong(forged);
  EXPECT_FALSE(FixedWindowSynthesizer::LoadCheckpoint(wrong).ok());
}

// Replaces whitespace-separated token `tok_idx` (0-based) of line
// `line_idx` (0-based) with `replacement`, preserving everything else.
std::string CorruptToken(const std::string& text, int line_idx, int tok_idx,
                         const std::string& replacement) {
  std::istringstream in(text);
  std::string line, out;
  for (int l = 0; std::getline(in, line); ++l) {
    if (l == line_idx) {
      std::istringstream toks(line);
      std::string tok, rebuilt;
      for (int i = 0; toks >> tok; ++i) {
        if (!rebuilt.empty()) rebuilt += ' ';
        rebuilt += (i == tok_idx) ? replacement : tok;
      }
      line = rebuilt;
    }
    out += line;
    out += '\n';
  }
  return out;
}

TEST(CheckpointTest, CorruptSpentTokenIsRejectedNotZeroed) {
  // A garbage spent token used to restore as spent = 0.0: the accountant
  // forgot already-spent budget on restart. It must hard-fail instead.
  util::SubstreamRng rng(11, util::substream::kGeneric);
  auto ds = data::BernoulliIid(60, 6, 0.5, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(6, 2, 0.1, -1, 47)).value();
  for (int64_t t = 1; t <= 3; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  ASSERT_GT(synth->accountant().spent(), 0.0);
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  // Layout: line 0 magic, line 1 options header, line 2 state line whose
  // last (6th) token is the spent budget.
  for (const char* bad : {"garbage", "0.01junk", ""}) {
    std::stringstream corrupted(CorruptToken(stream.str(), 2, 5, bad));
    auto restored = FixedWindowSynthesizer::LoadCheckpoint(corrupted);
    ASSERT_FALSE(restored.ok()) << "spent token '" << bad << "' accepted";
  }
}

TEST(CheckpointTest, CorruptRhoTokenIsRejectedNotTruncated) {
  // "0.02zzz" used to strtod-truncate to 0.02 and silently restore with the
  // wrong privacy budget.
  util::SubstreamRng rng(12, util::substream::kGeneric);
  auto ds = data::BernoulliIid(40, 4, 0.5, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(4, 2, 0.1, -1, 53)).value();
  ASSERT_TRUE(synth->ObserveRound(ds.Round(1)).ok());
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  // Header line 1: horizon window_k rho npad beta.
  std::stringstream corrupt_rho(CorruptToken(stream.str(), 1, 2, "0.02zzz"));
  auto restored = FixedWindowSynthesizer::LoadCheckpoint(corrupt_rho);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsInvalidArgument())
      << restored.status().ToString();
  std::stringstream corrupt_beta(CorruptToken(stream.str(), 1, 4, "nope"));
  EXPECT_FALSE(FixedWindowSynthesizer::LoadCheckpoint(corrupt_beta).ok());
}

TEST(CheckpointTest, RejectsTamperedCohort) {
  util::SubstreamRng rng(5, util::substream::kGeneric);
  auto ds = data::BernoulliIid(40, 6, 0.5, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(6, 2, 0.1, -1, 59)).value();
  for (int64_t t = 1; t <= 4; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  std::string text = stream.str();
  // Corrupt one history bit into a non-binary character.
  auto pos = text.rfind('\n', text.size() - 6);
  text[pos - 1] = 'x';
  std::stringstream corrupted(text);
  EXPECT_FALSE(FixedWindowSynthesizer::LoadCheckpoint(corrupted).ok());
}

TEST(CheckpointTest, InfiniteRhoRoundTrips) {
  util::SubstreamRng rng(6, util::substream::kGeneric);
  auto ds = data::BernoulliIid(30, 4, 0.5, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(4, 2, kInf, 0)).value();
  for (int64_t t = 1; t <= 3; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  auto restored = FixedWindowSynthesizer::LoadCheckpoint(stream);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->SyntheticHistogram(),
            synth->SyntheticHistogram());
}

TEST(CheckpointTest, NoisyResumeReproducesRemainingReleaseLog) {
  // The checkpoint stores only the substream CURSORS (keys re-derive from
  // (seed, purpose, stream, round)), so a mid-run save/load must continue
  // the run byte-identically to the uninterrupted one even WITH noise.
  util::SubstreamRng rng(0xC0DE, util::substream::kGeneric);
  auto ds = data::BernoulliIid(600, 12, 0.3, &rng).value();
  auto straight =
      FixedWindowSynthesizer::Create(Opt(12, 3, 0.02, -1, 0xC0DE)).value();
  std::vector<std::vector<int64_t>> tail;
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(straight->ObserveRound(ds.Round(t)).ok());
    if (t >= 6) tail.push_back(straight->SyntheticHistogram());
  }

  auto half =
      FixedWindowSynthesizer::Create(Opt(12, 3, 0.02, -1, 0xC0DE)).value();
  for (int64_t t = 1; t <= 5; ++t) {
    ASSERT_TRUE(half->ObserveRound(ds.Round(t)).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(half->SaveCheckpoint(stream).ok());
  auto resumed = FixedWindowSynthesizer::LoadCheckpoint(stream).value();
  size_t i = 0;
  for (int64_t t = 6; t <= 12; ++t, ++i) {
    ASSERT_TRUE(resumed->ObserveRound(ds.Round(t)).ok());
    EXPECT_EQ(resumed->SyntheticHistogram(), tail[i]) << "t=" << t;
  }
  EXPECT_EQ(resumed->stats().rounding_draws, straight->stats().rounding_draws);
}

// ---------------------------------------------------------------------------
// Cumulative synthesizer checkpointing (stream counter noise state included)
// ---------------------------------------------------------------------------

CumulativeSynthesizer::Options COpt(int64_t horizon, double rho,
                                    const std::string& counter = "tree",
                                    uint64_t seed = 0) {
  CumulativeSynthesizer::Options options;
  options.horizon = horizon;
  options.rho = rho;
  options.counter_factory = stream::MakeCounterFactory(counter).value();
  options.seed = seed;
  return options;
}

TEST(CumulativeCheckpointTest, RoundTripPreservesState) {
  util::SubstreamRng rng(11, util::substream::kGeneric);
  auto ds = data::BernoulliIid(500, 12, 0.3, &rng).value();
  auto synth = CumulativeSynthesizer::Create(COpt(12, 0.02, "tree", 61)).value();
  for (int64_t t = 1; t <= 7; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  auto restored = CumulativeSynthesizer::LoadCheckpoint(stream);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto& r = *restored.value();
  EXPECT_EQ(r.t(), 7);
  EXPECT_EQ(r.population(), 500);
  EXPECT_EQ(r.released_thresholds(), synth->released_thresholds());
  EXPECT_EQ(r.SyntheticThresholdCounts(), synth->SyntheticThresholdCounts());
  for (int64_t rec = 0; rec < 500; ++rec) {
    for (int64_t t = 1; t <= 7; ++t) {
      ASSERT_EQ(r.Bit(rec, t), synth->Bit(rec, t));
    }
  }
  EXPECT_NEAR(r.accountant().spent(), 0.02, 1e-12);
}

TEST(CumulativeCheckpointTest, RestoredRunContinuesWithInvariants) {
  // Continue a restored run and require monotonization invariants across
  // the restore boundary — this exercises the serialized tree counter
  // internals (pending partial sums and their noisy values).
  util::SubstreamRng rng(13, util::substream::kGeneric);
  auto ds = data::BernoulliIid(800, 12, 0.25, &rng).value();
  auto synth = CumulativeSynthesizer::Create(COpt(12, 0.01, "tree", 67)).value();
  for (int64_t t = 1; t <= 6; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  auto restored = CumulativeSynthesizer::LoadCheckpoint(stream).value();
  std::vector<int64_t> prev = restored->released_thresholds();
  for (int64_t t = 7; t <= 12; ++t) {
    ASSERT_TRUE(restored->ObserveRound(ds.Round(t)).ok());
    const auto& row = restored->released_thresholds();
    for (int64_t b = 1; b <= 12; ++b) {
      ASSERT_GE(row[b], prev[b]) << "t=" << t << " b=" << b;
      ASSERT_LE(row[b], prev[b - 1]) << "t=" << t << " b=" << b;
    }
    ASSERT_EQ(restored->SyntheticThresholdCounts(), row);
    prev = row;
  }
}

TEST(CumulativeCheckpointTest, ZeroNoiseRestoredRunMatchesStraightRun) {
  util::SubstreamRng rng(17, util::substream::kGeneric);
  auto ds = data::BernoulliIid(300, 10, 0.4, &rng).value();
  auto straight = CumulativeSynthesizer::Create(COpt(10, kInf)).value();
  for (int64_t t = 1; t <= 10; ++t) {
    ASSERT_TRUE(straight->ObserveRound(ds.Round(t)).ok());
  }
  auto half = CumulativeSynthesizer::Create(COpt(10, kInf)).value();
  for (int64_t t = 1; t <= 5; ++t) {
    ASSERT_TRUE(half->ObserveRound(ds.Round(t)).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(half->SaveCheckpoint(stream).ok());
  auto resumed = CumulativeSynthesizer::LoadCheckpoint(stream).value();
  for (int64_t t = 6; t <= 10; ++t) {
    ASSERT_TRUE(resumed->ObserveRound(ds.Round(t)).ok());
  }
  EXPECT_EQ(resumed->released_thresholds(),
            straight->released_thresholds());
}

TEST(CumulativeCheckpointTest, AllCounterImplementationsRoundTrip) {
  util::SubstreamRng rng(19, util::substream::kGeneric);
  auto ds = data::BernoulliIid(200, 8, 0.3, &rng).value();
  for (const auto& name : stream::RegisteredCounterNames()) {
    auto synth = CumulativeSynthesizer::Create(COpt(8, 0.05, name, 71)).value();
    for (int64_t t = 1; t <= 4; ++t) {
      ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok()) << name;
    }
    std::stringstream stream;
    ASSERT_TRUE(synth->SaveCheckpoint(stream).ok()) << name;
    auto restored = CumulativeSynthesizer::LoadCheckpoint(stream);
    ASSERT_TRUE(restored.ok()) << name << ": "
                               << restored.status().ToString();
    EXPECT_EQ(restored.value()->released_thresholds(),
              synth->released_thresholds())
        << name;
    for (int64_t t = 5; t <= 8; ++t) {
      ASSERT_TRUE(restored.value()->ObserveRound(ds.Round(t)).ok())
          << name;
      ASSERT_EQ(restored.value()->SyntheticThresholdCounts(),
                restored.value()->released_thresholds())
          << name;
    }
  }
}

TEST(CumulativeCheckpointTest, FreshSynthesizerRoundTrips) {
  auto synth = CumulativeSynthesizer::Create(COpt(5, 0.1, "tree", 73)).value();
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  auto restored = CumulativeSynthesizer::LoadCheckpoint(stream);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->t(), 0);
}

TEST(CumulativeCheckpointTest, CorruptRhoTokenIsRejectedNotTruncated) {
  util::SubstreamRng rng(13, util::substream::kGeneric);
  auto ds = data::BernoulliIid(40, 5, 0.5, &rng).value();
  auto synth = CumulativeSynthesizer::Create(COpt(5, 0.2, "tree", 79)).value();
  ASSERT_TRUE(synth->ObserveRound(ds.Round(1)).ok());
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  // Header line 1: horizon rho split counter.
  std::stringstream corrupted(CorruptToken(stream.str(), 1, 1, "0.2zzz"));
  auto restored = CumulativeSynthesizer::LoadCheckpoint(corrupted);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsInvalidArgument())
      << restored.status().ToString();
}

TEST(CumulativeCheckpointTest, VersionSkewIsExplicitInvalidArgument) {
  std::stringstream v3("longdp-cumulative-checkpoint-v3\n12 0.02 0 tree\n");
  auto restored = CumulativeSynthesizer::LoadCheckpoint(v3);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsInvalidArgument())
      << restored.status().ToString();
  EXPECT_NE(restored.status().message().find("version"), std::string::npos)
      << restored.status().message();
}

TEST(CumulativeCheckpointTest, MissingEndSentinelIsRejected) {
  util::SubstreamRng rng(29, util::substream::kGeneric);
  auto ds = data::BernoulliIid(50, 6, 0.4, &rng).value();
  auto synth = CumulativeSynthesizer::Create(COpt(6, 0.05, "tree", 89)).value();
  for (int64_t t = 1; t <= 3; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  std::string text = stream.str();
  const std::string sentinel = "end-longdp-cumulative-checkpoint-v4";
  auto pos = text.rfind(sentinel);
  ASSERT_NE(pos, std::string::npos) << "checkpoint lacks its sentinel";
  std::stringstream truncated(text.substr(0, pos));
  EXPECT_FALSE(CumulativeSynthesizer::LoadCheckpoint(truncated).ok());
}

TEST(CumulativeCheckpointTest, RejectsGarbageAndTampering) {
  std::stringstream empty;
  EXPECT_FALSE(CumulativeSynthesizer::LoadCheckpoint(empty).ok());
  std::stringstream wrong("longdp-fixed-window-checkpoint-v1\n");
  EXPECT_FALSE(CumulativeSynthesizer::LoadCheckpoint(wrong).ok());

  // Tampering with a history line must be caught by the released-counts
  // consistency check.
  util::SubstreamRng rng(23, util::substream::kGeneric);
  auto ds = data::BernoulliIid(50, 6, 0.5, &rng).value();
  auto synth = CumulativeSynthesizer::Create(COpt(6, kInf)).value();
  for (int64_t t = 1; t <= 3; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  std::string text = stream.str();
  auto pos = text.find("histories");
  pos = text.find('\n', pos) + 1;  // first history line
  text[pos] = text[pos] == '0' ? '1' : '0';
  std::stringstream corrupted(text);
  EXPECT_FALSE(CumulativeSynthesizer::LoadCheckpoint(corrupted).ok());
}

TEST(CumulativeCheckpointTest, NoisyResumeReproducesRemainingReleaseLog) {
  // Same property as the fixed-window test, per counter implementation:
  // every counter's noise substream cursors round-trip, so the resumed
  // release rows match the uninterrupted run exactly under real noise.
  util::SubstreamRng rng(0xC0DF, util::substream::kGeneric);
  auto ds = data::BernoulliIid(300, 10, 0.35, &rng).value();
  for (const auto& name : stream::RegisteredCounterNames()) {
    auto straight =
        CumulativeSynthesizer::Create(COpt(10, 0.02, name, 0xC0DF)).value();
    std::vector<std::vector<int64_t>> tail;
    for (int64_t t = 1; t <= 10; ++t) {
      ASSERT_TRUE(straight->ObserveRound(ds.Round(t)).ok()) << name;
      if (t >= 6) tail.push_back(straight->released_thresholds());
    }
    auto half =
        CumulativeSynthesizer::Create(COpt(10, 0.02, name, 0xC0DF)).value();
    for (int64_t t = 1; t <= 5; ++t) {
      ASSERT_TRUE(half->ObserveRound(ds.Round(t)).ok()) << name;
    }
    std::stringstream stream;
    ASSERT_TRUE(half->SaveCheckpoint(stream).ok()) << name;
    auto resumed = CumulativeSynthesizer::LoadCheckpoint(stream).value();
    size_t i = 0;
    for (int64_t t = 6; t <= 10; ++t, ++i) {
      ASSERT_TRUE(resumed->ObserveRound(ds.Round(t)).ok()) << name;
      EXPECT_EQ(resumed->released_thresholds(), tail[i])
          << name << " t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Categorical window synthesizer checkpointing (new in v1: resolved npad,
// per-user base-A windows, synthetic symbol histories, overlap group order)
// ---------------------------------------------------------------------------

CategoricalWindowSynthesizer::Options KOpt(int64_t horizon, int k, int A,
                                           double rho, uint64_t seed = 0) {
  CategoricalWindowSynthesizer::Options options;
  options.horizon = horizon;
  options.window_k = k;
  options.alphabet = A;
  options.rho = rho;
  options.seed = seed;
  return options;
}

// Deterministic symbol rounds over alphabet A.
std::vector<std::vector<uint8_t>> SymbolRounds(int64_t n, int64_t T, int A,
                                               uint64_t seed) {
  util::SubstreamRng rng(seed, util::substream::kGeneric);
  std::vector<std::vector<uint8_t>> rounds;
  for (int64_t t = 0; t < T; ++t) {
    std::vector<uint8_t> round(static_cast<size_t>(n));
    for (auto& s : round) {
      s = static_cast<uint8_t>(rng.UniformInt(static_cast<uint64_t>(A)));
    }
    rounds.push_back(std::move(round));
  }
  return rounds;
}

TEST(CategoricalCheckpointTest, RoundTripPreservesState) {
  const auto rounds = SymbolRounds(300, 10, 3, 31);
  auto synth = CategoricalWindowSynthesizer::Create(KOpt(10, 2, 3, 0.05, 97))
                   .value();
  for (int64_t t = 1; t <= 6; ++t) {
    ASSERT_TRUE(synth->ObserveRound(rounds[static_cast<size_t>(t - 1)]).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  auto restored = CategoricalWindowSynthesizer::LoadCheckpoint(stream);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto& r = *restored.value();
  EXPECT_EQ(r.t(), 6);
  EXPECT_EQ(r.population(), 300);
  EXPECT_EQ(r.npad(), synth->npad());
  EXPECT_EQ(r.synthetic_population(), synth->synthetic_population());
  EXPECT_EQ(r.stats().releases, synth->stats().releases);
  EXPECT_NEAR(r.accountant().spent(), synth->accountant().spent(), 1e-12);
  EXPECT_EQ(r.SyntheticHistogram(), synth->SyntheticHistogram());
  for (int64_t rec = 0; rec < r.synthetic_population(); ++rec) {
    for (int64_t t = 1; t <= 6; ++t) {
      ASSERT_EQ(r.Symbol(rec, t), synth->Symbol(rec, t))
          << "rec=" << rec << " t=" << t;
    }
  }
}

TEST(CategoricalCheckpointTest, NoisyResumeReproducesRemainingReleaseLog) {
  // Keyed draws + checkpointed state: the resumed run's histograms equal
  // the uninterrupted run's bit for bit, under real noise.
  const auto rounds = SymbolRounds(400, 12, 3, 37);
  auto straight =
      CategoricalWindowSynthesizer::Create(KOpt(12, 2, 3, 0.05, 0xCA7)).value();
  std::vector<std::vector<int64_t>> tail;
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(
        straight->ObserveRound(rounds[static_cast<size_t>(t - 1)]).ok());
    if (t >= 6) tail.push_back(straight->SyntheticHistogram());
  }
  auto half =
      CategoricalWindowSynthesizer::Create(KOpt(12, 2, 3, 0.05, 0xCA7)).value();
  for (int64_t t = 1; t <= 5; ++t) {
    ASSERT_TRUE(half->ObserveRound(rounds[static_cast<size_t>(t - 1)]).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(half->SaveCheckpoint(stream).ok());
  auto resumed = CategoricalWindowSynthesizer::LoadCheckpoint(stream).value();
  size_t i = 0;
  for (int64_t t = 6; t <= 12; ++t, ++i) {
    ASSERT_TRUE(
        resumed->ObserveRound(rounds[static_cast<size_t>(t - 1)]).ok());
    EXPECT_EQ(resumed->SyntheticHistogram(), tail[i]) << "t=" << t;
  }
  EXPECT_EQ(resumed->stats().remainder_draws,
            straight->stats().remainder_draws);
}

TEST(CategoricalCheckpointTest, PreReleaseAndFreshCheckpointsWork) {
  const auto rounds = SymbolRounds(50, 6, 4, 41);
  auto synth =
      CategoricalWindowSynthesizer::Create(KOpt(6, 3, 4, 0.1, 101)).value();
  // Fresh (t = 0).
  {
    std::stringstream stream;
    ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
    auto restored = CategoricalWindowSynthesizer::LoadCheckpoint(stream);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored.value()->t(), 0);
    EXPECT_EQ(restored.value()->population(), -1);
  }
  // Pre-release (t < k: windows tracked, no cohort yet).
  ASSERT_TRUE(synth->ObserveRound(rounds[0]).ok());
  ASSERT_TRUE(synth->ObserveRound(rounds[1]).ok());
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  auto restored = CategoricalWindowSynthesizer::LoadCheckpoint(stream).value();
  EXPECT_EQ(restored->t(), 2);
  EXPECT_FALSE(restored->has_release());
  for (int64_t t = 3; t <= 6; ++t) {
    ASSERT_TRUE(
        restored->ObserveRound(rounds[static_cast<size_t>(t - 1)]).ok());
  }
  EXPECT_TRUE(restored->has_release());
}

TEST(CategoricalCheckpointTest, VersionSkewIsExplicitInvalidArgument) {
  std::stringstream v0("longdp-categorical-checkpoint-v0\n10 2 3 0.05\n");
  auto restored = CategoricalWindowSynthesizer::LoadCheckpoint(v0);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsInvalidArgument())
      << restored.status().ToString();
  EXPECT_NE(restored.status().message().find("version"), std::string::npos)
      << restored.status().message();
}

TEST(CategoricalCheckpointTest, RejectsGarbageTamperingAndMissingSentinel) {
  std::stringstream empty;
  EXPECT_FALSE(CategoricalWindowSynthesizer::LoadCheckpoint(empty).ok());
  std::stringstream foreign("longdp-cumulative-checkpoint-v4\n");
  EXPECT_FALSE(CategoricalWindowSynthesizer::LoadCheckpoint(foreign).ok());

  const auto rounds = SymbolRounds(80, 6, 3, 43);
  auto synth =
      CategoricalWindowSynthesizer::Create(KOpt(6, 2, 3, 0.1, 103)).value();
  for (int64_t t = 1; t <= 4; ++t) {
    ASSERT_TRUE(synth->ObserveRound(rounds[static_cast<size_t>(t - 1)]).ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(synth->SaveCheckpoint(stream).ok());
  const std::string text = stream.str();

  // Cut at the sentinel: every earlier field parses, the load still fails.
  const std::string sentinel = "end-longdp-categorical-checkpoint-v1";
  auto pos = text.rfind(sentinel);
  ASSERT_NE(pos, std::string::npos);
  std::stringstream truncated(text.substr(0, pos));
  EXPECT_FALSE(
      CategoricalWindowSynthesizer::LoadCheckpoint(truncated).ok());

  // A tampered histogram no longer sums to the synthetic population.
  auto cpos = text.find("counts ");
  ASSERT_NE(cpos, std::string::npos);
  std::string tampered = text;
  // First count token starts after "counts <len> ". Bump its first digit.
  auto tok = text.find(' ', cpos + 7) + 1;
  tampered[tok] = tampered[tok] == '9' ? '8' : tampered[tok] + 1;
  std::stringstream corrupted(tampered);
  EXPECT_FALSE(
      CategoricalWindowSynthesizer::LoadCheckpoint(corrupted).ok());

  // A corrupted spent token must hard-fail, not restore as 0.
  std::stringstream bad_spent(CorruptToken(text, 2, 7, "0.05zzz"));
  EXPECT_FALSE(
      CategoricalWindowSynthesizer::LoadCheckpoint(bad_spent).ok());
}

}  // namespace
}  // namespace core
}  // namespace longdp
