#include "core/synthetic_cohort.h"

#include <gtest/gtest.h>

#include "util/substream.h"

namespace longdp {
namespace core {
namespace {

TEST(CohortTest, CreateValidates) {
  EXPECT_FALSE(SyntheticCohort::Create(0, {}).ok());
  EXPECT_FALSE(SyntheticCohort::Create(2, {1, 2, 3}).ok());    // not 2^k
  EXPECT_FALSE(SyntheticCohort::Create(2, {1, -1, 0, 0}).ok());  // negative
  EXPECT_TRUE(SyntheticCohort::Create(2, {1, 2, 3, 4}).ok());
}

TEST(CohortTest, InitialHistogramMatchesCounts) {
  auto cohort = SyntheticCohort::Create(2, {3, 0, 2, 5}).value();
  EXPECT_EQ(cohort.num_records(), 10);
  EXPECT_EQ(cohort.rounds(), 2);
  EXPECT_EQ(cohort.WindowHistogram(), (std::vector<int64_t>{3, 0, 2, 5}));
}

TEST(CohortTest, InitialHistoriesSpellPatterns) {
  auto cohort = SyntheticCohort::Create(2, {1, 1, 1, 1}).value();
  // Records are created in pattern order 00, 01, 10, 11 (oldest bit first).
  EXPECT_EQ(cohort.Bit(0, 1), 0);
  EXPECT_EQ(cohort.Bit(0, 2), 0);
  EXPECT_EQ(cohort.Bit(1, 1), 0);
  EXPECT_EQ(cohort.Bit(1, 2), 1);
  EXPECT_EQ(cohort.Bit(2, 1), 1);
  EXPECT_EQ(cohort.Bit(2, 2), 0);
  EXPECT_EQ(cohort.Bit(3, 1), 1);
  EXPECT_EQ(cohort.Bit(3, 2), 1);
}

TEST(CohortTest, GroupSizesByOverlap) {
  auto cohort = SyntheticCohort::Create(2, {3, 1, 2, 4}).value();
  // Overlap = newest bit for k=2: patterns 00,10 end in 0 (3+2=5);
  // 01,11 end in 1 (1+4=5).
  EXPECT_EQ(cohort.GroupSize(0), 5);
  EXPECT_EQ(cohort.GroupSize(1), 5);
}

TEST(CohortTest, AdvanceValidatesTargets) {
  auto cohort = SyntheticCohort::Create(2, {3, 1, 2, 4}).value();
  const util::SubstreamRng stream(1, util::substream::kGeneric);
  EXPECT_TRUE(
      cohort.AdvanceRound({0, 0, 0}, stream).IsInvalidArgument());  // arity
  EXPECT_TRUE(cohort.AdvanceRound({6, 0}, stream)
                  .IsInvalidArgument());  // exceeds group
  EXPECT_TRUE(cohort.AdvanceRound({-1, 0}, stream).IsInvalidArgument());
}

TEST(CohortTest, AdvanceFullGroupAndEmptyTargetsEdges) {
  // target == group (every record extends by 1) and target == 0 (every
  // record extends by 0) are the whole-group edges the batched primitives
  // must honor without mis-selecting.
  auto cohort = SyntheticCohort::Create(2, {3, 1, 2, 4}).value();
  const util::SubstreamRng stream(7, util::substream::kGeneric);
  // Overlap 0 holds 5 records (patterns 00, 10), overlap 1 holds 5
  // (01, 11). Promote ALL of overlap 0, NONE of overlap 1.
  ASSERT_TRUE(cohort.AdvanceRound({5, 0}, stream).ok());
  // All former overlap-0 records now end in 1; all former overlap-1
  // records end in 0: histogram over (prev newest, new) pairs.
  EXPECT_EQ(cohort.WindowHistogram(), (std::vector<int64_t>{0, 5, 5, 0}));
  EXPECT_EQ(cohort.GroupSize(0), 5);
  EXPECT_EQ(cohort.GroupSize(1), 5);
}

TEST(CohortTest, AdvancePreservesPopulationAndConsistency) {
  auto cohort = SyntheticCohort::Create(3, {2, 1, 0, 3, 1, 0, 2, 1}).value();
  const util::SubstreamRng stream(2, util::substream::kGeneric);
  std::vector<int64_t> before = cohort.WindowHistogram();
  // Overlap z gets groups from patterns {0z, 1z}. Choose any valid targets.
  std::vector<int64_t> targets(4);
  for (util::Pattern z = 0; z < 4; ++z) {
    targets[z] = cohort.GroupSize(z) / 2;
  }
  ASSERT_TRUE(cohort.AdvanceRound(targets, stream).ok());
  std::vector<int64_t> after = cohort.WindowHistogram();
  // Consistency: p^{t}_{z0} + p^{t}_{z1} == group size at t-1 (= sum of
  // patterns ending in z).
  for (util::Pattern z = 0; z < 4; ++z) {
    int64_t group_before = before[z] + before[z | 4];  // 0z and 1z (k=3)
    EXPECT_EQ(after[(z << 1)] + after[(z << 1) | 1], group_before)
        << "z=" << z;
    EXPECT_EQ(after[(z << 1) | 1], targets[z]);
  }
  // Total population unchanged.
  int64_t total_before = 0, total_after = 0;
  for (auto c : before) total_before += c;
  for (auto c : after) total_after += c;
  EXPECT_EQ(total_before, total_after);
  EXPECT_EQ(cohort.rounds(), 4);
}

TEST(CohortTest, HistoriesAreAppendOnly) {
  // Record persistence: the prefix of every record is unchanged by
  // AdvanceRound (the paper's core consistency requirement).
  auto cohort = SyntheticCohort::Create(2, {2, 2, 2, 2}).value();
  const util::SubstreamRng root(3, util::substream::kGeneric);
  std::vector<std::vector<int>> prefixes(8);
  for (int64_t r = 0; r < 8; ++r) {
    prefixes[r] = {cohort.Bit(r, 1), cohort.Bit(r, 2)};
  }
  for (int round = 0; round < 5; ++round) {
    std::vector<int64_t> targets = {cohort.GroupSize(0) / 2,
                                    cohort.GroupSize(1) / 2};
    ASSERT_TRUE(cohort
                    .AdvanceRound(targets,
                                  root.Derive(static_cast<uint64_t>(round)))
                    .ok());
    for (int64_t r = 0; r < 8; ++r) {
      for (size_t j = 0; j < prefixes[r].size(); ++j) {
        ASSERT_EQ(cohort.Bit(r, static_cast<int64_t>(j + 1)), prefixes[r][j])
            << "record " << r << " round " << j + 1;
      }
      prefixes[r].push_back(cohort.Bit(r, cohort.rounds()));
    }
  }
}

TEST(CohortTest, HistogramTracksMaterializedRecords) {
  // The incrementally maintained histogram equals a recount from records.
  auto cohort = SyntheticCohort::Create(3, {5, 3, 2, 7, 1, 0, 4, 6}).value();
  const util::SubstreamRng root(4, util::substream::kGeneric);
  for (int round = 0; round < 6; ++round) {
    std::vector<int64_t> targets(4);
    for (util::Pattern z = 0; z < 4; ++z) {
      targets[z] = (cohort.GroupSize(z) * (round + 1)) / 7;
    }
    ASSERT_TRUE(cohort
                    .AdvanceRound(targets,
                                  root.Derive(static_cast<uint64_t>(round)))
                    .ok());
    std::vector<int64_t> recount(8, 0);
    int64_t t = cohort.rounds();
    for (int64_t r = 0; r < cohort.num_records(); ++r) {
      util::Pattern p = 0;
      for (int64_t tt = t - 2; tt <= t; ++tt) {
        p = (p << 1) | static_cast<util::Pattern>(cohort.Bit(r, tt));
      }
      ++recount[p];
    }
    EXPECT_EQ(cohort.WindowHistogram(), recount) << "round " << round;
  }
}

TEST(CohortTest, ToDatasetRoundTrip) {
  auto cohort = SyntheticCohort::Create(2, {1, 2, 3, 4}).value();
  const util::SubstreamRng stream(5, util::substream::kGeneric);
  ASSERT_TRUE(cohort.AdvanceRound({2, 3}, stream).ok());
  auto ds = cohort.ToDataset(10).value();
  EXPECT_EQ(ds.num_users(), 10);
  EXPECT_EQ(ds.rounds(), 3);
  for (int64_t r = 0; r < 10; ++r) {
    for (int64_t t = 1; t <= 3; ++t) {
      EXPECT_EQ(ds.Bit(r, t), cohort.Bit(r, t));
    }
  }
  EXPECT_FALSE(cohort.ToDataset(2).ok());  // horizon < rounds
}

TEST(CohortTest, EmptyCohortIsLegal) {
  auto cohort = SyntheticCohort::Create(2, {0, 0, 0, 0}).value();
  const util::SubstreamRng stream(6, util::substream::kGeneric);
  EXPECT_EQ(cohort.num_records(), 0);
  EXPECT_TRUE(cohort.AdvanceRound({0, 0}, stream).ok());
  EXPECT_EQ(cohort.rounds(), 3);
}

}  // namespace
}  // namespace core
}  // namespace longdp
