#include "core/cumulative_synthesizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/theory.h"
#include "data/generators.h"
#include "query/cumulative_query.h"
#include "stream/counter_factory.h"
#include "util/substream.h"

namespace longdp {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

CumulativeSynthesizer::Options Opt(int64_t horizon, double rho,
                                   uint64_t seed = 0) {
  CumulativeSynthesizer::Options options;
  options.horizon = horizon;
  options.rho = rho;
  options.seed = seed;
  return options;
}

Status FeedDataset(CumulativeSynthesizer* synth,
                   const data::LongitudinalDataset& ds) {
  for (int64_t t = 1; t <= ds.rounds(); ++t) {
    LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
  }
  return Status::OK();
}

TEST(CumulativeTest, CreateValidates) {
  EXPECT_FALSE(CumulativeSynthesizer::Create(Opt(0, 0.5)).ok());
  EXPECT_FALSE(CumulativeSynthesizer::Create(Opt(5, 0.0)).ok());
  EXPECT_TRUE(CumulativeSynthesizer::Create(Opt(5, 0.5)).ok());
}

TEST(CumulativeTest, ZeroNoiseReproducesTrueCounts) {
  util::SubstreamRng rng(1, util::substream::kGeneric);
  auto ds = data::BernoulliIid(400, 10, 0.3, &rng).value();
  auto synth = CumulativeSynthesizer::Create(Opt(10, kInf)).value();
  for (int64_t t = 1; t <= 10; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    auto truth = ds.CumulativeCounts(t).value();
    EXPECT_EQ(synth->released_thresholds(), truth) << "t=" << t;
  }
}

TEST(CumulativeTest, FullGroupPromotionEveryRoundZeroNoise) {
  // All-ones input under zero noise makes zhat == group at b == t every
  // round: the ENTIRE weight-(t-1) group promotes. This is the stage-2
  // edge the batched partial shuffle must handle (its final bound-1 draw
  // is skipped); the synthetic records must come out all-ones.
  const int64_t kN = 50, kT = 6;
  auto synth = CumulativeSynthesizer::Create(Opt(kT, kInf)).value();
  const std::vector<uint8_t> ones(static_cast<size_t>(kN), 1);
  util::SubstreamRng rng(3, util::substream::kGeneric);
  for (int64_t t = 1; t <= kT; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ones).ok());
    auto counts = synth->SyntheticThresholdCounts();
    for (int64_t b = 0; b <= t; ++b) {
      EXPECT_EQ(counts[static_cast<size_t>(b)], kN) << "t=" << t;
    }
  }
  for (int64_t r = 0; r < kN; ++r) {
    for (int64_t t = 1; t <= kT; ++t) {
      ASSERT_EQ(synth->Bit(r, t), 1);
    }
  }
}

TEST(CumulativeTest, ZeroNoiseAnswersAreExactFractions) {
  util::SubstreamRng rng(2, util::substream::kGeneric);
  auto ds = data::BernoulliIid(500, 8, 0.4, &rng).value();
  auto synth = CumulativeSynthesizer::Create(Opt(8, kInf)).value();
  for (int64_t t = 1; t <= 8; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    for (int64_t b = 0; b <= 8; ++b) {
      double truth = query::EvaluateCumulativeOnDataset(ds, t, b).value();
      EXPECT_DOUBLE_EQ(synth->Answer(b).value(), truth)
          << "t=" << t << " b=" << b;
    }
  }
}

TEST(CumulativeTest, SyntheticRecordsMatchReleasedCountsExactly) {
  // Invariant 4: #synthetic records with weight >= b equals Shat^t_b, even
  // under real noise.
  util::SubstreamRng rng(3, util::substream::kGeneric);
  auto ds = data::BernoulliIid(1000, 12, 0.25, &rng).value();
  auto synth = CumulativeSynthesizer::Create(Opt(12, 0.01, 3)).value();
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    EXPECT_EQ(synth->SyntheticThresholdCounts(),
              synth->released_thresholds())
        << "t=" << t;
  }
}

TEST(CumulativeTest, ReleasedRowsAreMonotone) {
  // Invariant 3 at the synthesizer level.
  util::SubstreamRng rng(5, util::substream::kGeneric);
  auto ds = data::BernoulliIid(2000, 12, 0.15, &rng).value();
  auto synth = CumulativeSynthesizer::Create(Opt(12, 0.005, 5)).value();
  std::vector<int64_t> prev(13, 0);
  prev[0] = 2000;
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    const auto& row = synth->released_thresholds();
    for (int64_t b = 1; b <= 12; ++b) {
      EXPECT_GE(row[b], prev[b]) << "t=" << t << " b=" << b;
      EXPECT_LE(row[b], prev[b - 1]) << "t=" << t << " b=" << b;
    }
    prev = row;
  }
}

TEST(CumulativeTest, SyntheticHistoriesAreAppendOnly) {
  util::SubstreamRng rng(7, util::substream::kGeneric);
  auto ds = data::BernoulliIid(300, 8, 0.3, &rng).value();
  auto synth = CumulativeSynthesizer::Create(Opt(8, 0.05, 7)).value();
  std::vector<std::vector<int>> prefixes(300);
  for (int64_t t = 1; t <= 8; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    for (int64_t r = 0; r < 300; ++r) {
      auto& p = prefixes[static_cast<size_t>(r)];
      for (size_t j = 0; j < p.size(); ++j) {
        ASSERT_EQ(synth->Bit(r, static_cast<int64_t>(j + 1)), p[j])
            << "record " << r;
      }
      p.push_back(synth->Bit(r, t));
    }
  }
}

TEST(CumulativeTest, AccountantChargesExactlyRho) {
  util::SubstreamRng rng(11, util::substream::kGeneric);
  auto ds = data::BernoulliIid(200, 12, 0.3, &rng).value();
  auto synth = CumulativeSynthesizer::Create(Opt(12, 0.005, 11)).value();
  ASSERT_TRUE(FeedDataset(synth.get(), ds).ok());
  EXPECT_NEAR(synth->accountant().spent(), 0.005, 1e-12);
  EXPECT_EQ(synth->accountant().ledger().size(), 12u);
}

TEST(CumulativeTest, PopulationPreserved) {
  util::SubstreamRng rng(13, util::substream::kGeneric);
  auto ds = data::BernoulliIid(750, 6, 0.5, &rng).value();
  auto synth = CumulativeSynthesizer::Create(Opt(6, 0.05, 13)).value();
  ASSERT_TRUE(FeedDataset(synth.get(), ds).ok());
  EXPECT_EQ(synth->population(), 750);
  auto synth_ds = synth->ToDataset().value();
  EXPECT_EQ(synth_ds.num_users(), 750);
  EXPECT_EQ(synth_ds.rounds(), 6);
}

TEST(CumulativeTest, ToDatasetMatchesAnswers) {
  // The materialized dataset's cumulative fractions equal the released
  // answers at the final time.
  util::SubstreamRng rng(17, util::substream::kGeneric);
  auto ds = data::BernoulliIid(600, 9, 0.35, &rng).value();
  auto synth = CumulativeSynthesizer::Create(Opt(9, 0.02, 17)).value();
  ASSERT_TRUE(FeedDataset(synth.get(), ds).ok());
  auto synth_ds = synth->ToDataset().value();
  for (int64_t b = 0; b <= 9; ++b) {
    double from_ds =
        query::EvaluateCumulativeOnDataset(synth_ds, 9, b).value();
    EXPECT_DOUBLE_EQ(from_ds, synth->Answer(b).value()) << "b=" << b;
  }
}

TEST(CumulativeTest, ErrorWithinCorollaryBound) {
  // Corollary B.1 bound with generous multiples: the max fraction error
  // over (t, b) should rarely exceed alpha*.
  util::SubstreamRng rng(19, util::substream::kGeneric);
  auto ds = data::SubpopulationMixture(
                23374, 12,
                {{0.07, {0.92, 0.6, 0.04}}, {0.93, {0.035, 0.02, 0.45}}},
                &rng)
                .value();
  double alpha =
      theory::CumulativeFractionErrorBound(12, 0.005, 0.05, 23374).value();
  int violations = 0;
  const int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto synth =
        CumulativeSynthesizer::Create(
            Opt(12, 0.005, 19 + static_cast<uint64_t>(trial)))
            .value();
    double max_err = 0.0;
    for (int64_t t = 1; t <= 12; ++t) {
      ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
      for (int64_t b = 1; b <= t; ++b) {
        double truth =
            query::EvaluateCumulativeOnDataset(ds, t, b).value();
        max_err = std::max(max_err,
                           std::fabs(synth->Answer(b).value() - truth));
      }
    }
    if (max_err > alpha) ++violations;
  }
  EXPECT_LE(violations, 2);
}

TEST(CumulativeTest, WorksWithAllCounterImplementations) {
  util::SubstreamRng rng(23, util::substream::kGeneric);
  auto ds = data::BernoulliIid(500, 8, 0.3, &rng).value();
  for (const auto& name : stream::RegisteredCounterNames()) {
    auto options = Opt(8, 0.05, 23);
    options.counter_factory = stream::MakeCounterFactory(name).value();
    auto synth = CumulativeSynthesizer::Create(options).value();
    ASSERT_TRUE(FeedDataset(synth.get(), ds).ok()) << name;
    EXPECT_EQ(synth->SyntheticThresholdCounts(),
              synth->released_thresholds())
        << name;
  }
}

TEST(CumulativeTest, UniformSplitAlsoWorks) {
  util::SubstreamRng rng(29, util::substream::kGeneric);
  auto ds = data::BernoulliIid(400, 10, 0.2, &rng).value();
  auto options = Opt(10, 0.01, 29);
  options.split = stream::BudgetSplit::kUniform;
  auto synth = CumulativeSynthesizer::Create(options).value();
  ASSERT_TRUE(FeedDataset(synth.get(), ds).ok());
  EXPECT_NEAR(synth->accountant().spent(), 0.01, 1e-12);
}

TEST(CumulativeTest, RejectsBadInputs) {
  auto synth = CumulativeSynthesizer::Create(Opt(2, kInf)).value();
  util::SubstreamRng rng(31, util::substream::kGeneric);
  std::vector<uint8_t> round = {0, 1, 0};
  ASSERT_TRUE(synth->ObserveRound(round).ok());
  std::vector<uint8_t> wrong_size = {0, 1};
  EXPECT_TRUE(synth->ObserveRound(wrong_size).IsInvalidArgument());
  std::vector<uint8_t> bad_bit = {0, 1, 7};
  EXPECT_TRUE(synth->ObserveRound(bad_bit).IsInvalidArgument());
  ASSERT_TRUE(synth->ObserveRound(round).ok());
  EXPECT_TRUE(synth->ObserveRound(round).IsOutOfRange());
}

TEST(CumulativeTest, AnswerValidation) {
  auto synth = CumulativeSynthesizer::Create(Opt(3, kInf)).value();
  EXPECT_TRUE(synth->Answer(1).status().IsFailedPrecondition());
  util::SubstreamRng rng(37, util::substream::kGeneric);
  std::vector<uint8_t> round = {1, 0};
  ASSERT_TRUE(synth->ObserveRound(round).ok());
  EXPECT_TRUE(synth->Answer(-1).status().IsOutOfRange());
  EXPECT_TRUE(synth->Answer(4).status().IsOutOfRange());
  EXPECT_DOUBLE_EQ(synth->Answer(0).value(), 1.0);
}

// Parameterized horizon sweep: invariants hold across stream lengths.
class CumulativeHorizonTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(CumulativeHorizonTest, InvariantsAcrossHorizons) {
  const int64_t kT = GetParam();
  util::SubstreamRng rng(41 + static_cast<uint64_t>(kT), util::substream::kGeneric);
  auto ds = data::BernoulliIid(200, kT, 0.3, &rng).value();
  auto synth = CumulativeSynthesizer::Create(Opt(kT, 0.05, 41 + static_cast<uint64_t>(kT))).value();
  for (int64_t t = 1; t <= kT; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    ASSERT_EQ(synth->SyntheticThresholdCounts(),
              synth->released_thresholds());
  }
  EXPECT_NEAR(synth->accountant().spent(), 0.05, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Horizons, CumulativeHorizonTest,
                         ::testing::Values(1, 2, 3, 5, 12, 16, 25));

}  // namespace
}  // namespace core
}  // namespace longdp
