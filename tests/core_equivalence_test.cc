// Reference-equivalence property tests for the zero-noise path.
//
// At rho = +infinity every noise draw is exactly 0, so the synthesizers'
// stage-1 releases must coincide with the plain (non-private) statistics of
// the input — which is exactly what core/recompute_baseline computes from
// scratch each round. These tests run randomized horizons, populations, and
// window widths (from a fixed meta-seed, so failures reproduce) and assert:
//
//   * FixedWindowSynthesizer (npad = 0) releases the true window histogram,
//     identical to RecomputeBaseline's fresh histogram every round;
//   * CategoricalWindowSynthesizer with A = 2 matches RecomputeBaseline
//     bin-for-bin (the base-2 pattern code equals util::Pattern's encoding);
//   * CumulativeSynthesizer releases the exact Hamming-weight threshold
//     counts, and its materialized records reproduce them.
//
// The optimized hot path must keep all of this exact: any scratch-buffer
// reuse bug that leaks state across rounds breaks equality immediately.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "core/categorical_synthesizer.h"
#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "core/recompute_baseline.h"
#include "util/substream.h"
#include "util/thread_pool.h"

namespace longdp {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Every equivalence property is re-checked under each of these observe-
// phase thread counts: the sharded stage-1 path must stay exact, not just
// the serial one.
const int kThreadCounts[] = {1, 2, 8};

std::unique_ptr<util::ThreadPool> MakePool(int threads) {
  if (threads <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(threads);
}

// One random (n, T, k, p) configuration per trial, small enough that 30
// trials stay well under a second but varied enough to hit k = 1 edge
// cases, tiny populations, and T ≫ k.
struct Config {
  int64_t n;
  int64_t T;
  int k;
  double p;
};

Config RandomConfig(util::Rng* meta) {
  Config c;
  c.k = static_cast<int>(meta->UniformInt(4)) + 1;       // 1..4
  c.T = c.k + static_cast<int64_t>(meta->UniformInt(14));  // k..k+13
  c.n = 1 + static_cast<int64_t>(meta->UniformInt(300));   // 1..300
  c.p = 0.05 + 0.9 * meta->UniformDouble();
  return c;
}

std::vector<std::vector<uint8_t>> RandomRounds(const Config& c,
                                               util::Rng* meta) {
  std::vector<std::vector<uint8_t>> rounds(static_cast<size_t>(c.T));
  for (auto& round : rounds) {
    round.resize(static_cast<size_t>(c.n));
    for (auto& b : round) b = meta->Bernoulli(c.p) ? 1 : 0;
  }
  return rounds;
}

TEST(ZeroNoiseEquivalenceTest, FixedWindowMatchesRecomputeBaseline) {
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto pool = MakePool(threads);
  util::SubstreamRng meta(0xE0E1u, util::substream::kGeneric);
  for (int trial = 0; trial < 30; ++trial) {
    Config c = RandomConfig(&meta);
    auto rounds = RandomRounds(c, &meta);

    FixedWindowSynthesizer::Options fopt;
    fopt.horizon = c.T;
    fopt.window_k = c.k;
    fopt.rho = kInf;
    fopt.npad = 0;
    fopt.pool = pool.get();
    auto synth = FixedWindowSynthesizer::Create(fopt).value();

    RecomputeBaseline::Options bopt;
    bopt.horizon = c.T;
    bopt.window_k = c.k;
    bopt.rho = kInf;
    auto baseline = RecomputeBaseline::Create(bopt).value();

    for (int64_t t = 1; t <= c.T; ++t) {
      const auto& bits = rounds[static_cast<size_t>(t - 1)];
      ASSERT_TRUE(synth->ObserveRound(bits).ok());
      ASSERT_TRUE(baseline->ObserveRound(bits).ok());
      if (t < c.k) continue;
      EXPECT_EQ(synth->SyntheticHistogram(), baseline->CurrentHistogram())
          << "trial " << trial << " (n=" << c.n << " T=" << c.T
          << " k=" << c.k << ") at t=" << t;
      EXPECT_EQ(synth->cohort().num_records(), c.n);
    }
    EXPECT_EQ(synth->stats().negative_clamps, 0);
  }
  }
}

TEST(ZeroNoiseEquivalenceTest, CategoricalBinaryMatchesRecomputeBaseline) {
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto pool = MakePool(threads);
  util::SubstreamRng meta(0xE0E2u, util::substream::kGeneric);
  for (int trial = 0; trial < 30; ++trial) {
    Config c = RandomConfig(&meta);
    auto rounds = RandomRounds(c, &meta);

    CategoricalWindowSynthesizer::Options copt;
    copt.horizon = c.T;
    copt.window_k = c.k;
    copt.alphabet = 2;
    copt.rho = kInf;
    copt.npad = 0;
    copt.pool = pool.get();
    auto synth = CategoricalWindowSynthesizer::Create(copt).value();

    RecomputeBaseline::Options bopt;
    bopt.horizon = c.T;
    bopt.window_k = c.k;
    bopt.rho = kInf;
    auto baseline = RecomputeBaseline::Create(bopt).value();

    for (int64_t t = 1; t <= c.T; ++t) {
      const auto& bits = rounds[static_cast<size_t>(t - 1)];
      ASSERT_TRUE(synth->ObserveRound(bits).ok());
      ASSERT_TRUE(baseline->ObserveRound(bits).ok());
      if (t < c.k) continue;
      // Base-2 categorical codes and util::Pattern both put the oldest
      // symbol in the most significant position, so bins align 1:1.
      EXPECT_EQ(synth->SyntheticHistogram(), baseline->CurrentHistogram())
          << "trial " << trial << " (n=" << c.n << " T=" << c.T
          << " k=" << c.k << ") at t=" << t;
      EXPECT_EQ(synth->synthetic_population(), c.n);
    }
    EXPECT_EQ(synth->stats().negative_clamps, 0);
  }
  }
}

// Categorical with a larger alphabet against a direct histogram recompute
// (RecomputeBaseline is binary-only, so the reference is computed inline).
TEST(ZeroNoiseEquivalenceTest, CategoricalMatchesExactHistogram) {
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto pool = MakePool(threads);
  util::SubstreamRng meta(0xE0E3u, util::substream::kGeneric);
  for (int trial = 0; trial < 20; ++trial) {
    const int A = 2 + static_cast<int>(meta.UniformInt(3));  // 2..4
    const int k = 1 + static_cast<int>(meta.UniformInt(3));  // 1..3
    const int64_t T = k + static_cast<int64_t>(meta.UniformInt(10));
    const int64_t n = 1 + static_cast<int64_t>(meta.UniformInt(200));

    std::vector<std::vector<uint8_t>> rounds(static_cast<size_t>(T));
    for (auto& round : rounds) {
      round.resize(static_cast<size_t>(n));
      for (auto& s : round) {
        s = static_cast<uint8_t>(
            meta.UniformInt(static_cast<uint64_t>(A)));
      }
    }

    CategoricalWindowSynthesizer::Options copt;
    copt.horizon = T;
    copt.window_k = k;
    copt.alphabet = A;
    copt.rho = kInf;
    copt.npad = 0;
    copt.pool = pool.get();
    auto synth = CategoricalWindowSynthesizer::Create(copt).value();
    const uint64_t bins =
        CategoricalWindowSynthesizer::NumBins(k, A).value();

    std::vector<uint64_t> window(static_cast<size_t>(n), 0);
    for (int64_t t = 1; t <= T; ++t) {
      const auto& symbols = rounds[static_cast<size_t>(t - 1)];
      ASSERT_TRUE(synth->ObserveRound(symbols).ok());
      for (int64_t i = 0; i < n; ++i) {
        window[static_cast<size_t>(i)] =
            (window[static_cast<size_t>(i)] * static_cast<uint64_t>(A) +
             symbols[static_cast<size_t>(i)]) %
            bins;
      }
      if (t < k) continue;
      std::vector<int64_t> want(bins, 0);
      for (uint64_t w : window) ++want[w];
      EXPECT_EQ(synth->SyntheticHistogram(), want)
          << "trial " << trial << " (n=" << n << " T=" << T << " k=" << k
          << " A=" << A << ") at t=" << t;
    }
  }
  }
}

TEST(ZeroNoiseEquivalenceTest, CumulativeMatchesExactThresholdCounts) {
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto pool = MakePool(threads);
  util::SubstreamRng meta(0xE0E4u, util::substream::kGeneric);
  for (int trial = 0; trial < 30; ++trial) {
    const int64_t T = 1 + static_cast<int64_t>(meta.UniformInt(16));
    const int64_t n = 1 + static_cast<int64_t>(meta.UniformInt(300));
    const double p = 0.05 + 0.9 * meta.UniformDouble();

    std::vector<std::vector<uint8_t>> rounds(static_cast<size_t>(T));
    for (auto& round : rounds) {
      round.resize(static_cast<size_t>(n));
      for (auto& b : round) b = meta.Bernoulli(p) ? 1 : 0;
    }

    CumulativeSynthesizer::Options opt;
    opt.horizon = T;
    opt.rho = kInf;
    opt.pool = pool.get();
    auto synth = CumulativeSynthesizer::Create(opt).value();

    std::vector<int64_t> weight(static_cast<size_t>(n), 0);
    for (int64_t t = 1; t <= T; ++t) {
      const auto& bits = rounds[static_cast<size_t>(t - 1)];
      ASSERT_TRUE(synth->ObserveRound(bits).ok());
      for (int64_t i = 0; i < n; ++i) {
        weight[static_cast<size_t>(i)] +=
            bits[static_cast<size_t>(i)];
      }
      // Exact threshold counts S^t_b = #{i : weight_i >= b}.
      std::vector<int64_t> want(static_cast<size_t>(T) + 1, 0);
      for (int64_t b = 0; b <= T; ++b) {
        int64_t count = 0;
        for (int64_t w : weight) {
          if (w >= b) ++count;
        }
        want[static_cast<size_t>(b)] = count;
      }
      EXPECT_EQ(synth->released_thresholds(), want)
          << "trial " << trial << " (n=" << n << " T=" << T << ") at t="
          << t;
      EXPECT_EQ(synth->SyntheticThresholdCounts(), want)
          << "trial " << trial << " at t=" << t;
    }
  }
  }
}

// A rejected round (bad entry anywhere in the batch) must leave the
// synthesizer state completely untouched: continuing with valid rounds
// must release exactly what a synthesizer that never saw the bad round
// releases. Regression test for a partial-mutation heap overflow where a
// mid-validation bailout left the true-weight state half-incremented and
// a later round indexed past the increment scratch.
TEST(ZeroNoiseEquivalenceTest, RejectedRoundLeavesStateUntouched) {
  const int64_t n = 50, T = 6;
  util::SubstreamRng meta(0xE0E5u, util::substream::kGeneric);
  std::vector<std::vector<uint8_t>> rounds(static_cast<size_t>(T));
  for (auto& round : rounds) {
    round.resize(static_cast<size_t>(n));
    for (auto& b : round) b = meta.Bernoulli(0.5) ? 1 : 0;
  }
  std::vector<uint8_t> bad(static_cast<size_t>(n), 0);
  bad.back() = 7;  // the prefix is valid; rejection happens at the end

  CumulativeSynthesizer::Options opt;
  opt.horizon = T;
  opt.rho = kInf;
  auto dirty = CumulativeSynthesizer::Create(opt).value();
  auto clean = CumulativeSynthesizer::Create(opt).value();
  for (int64_t t = 1; t <= T; ++t) {
    const auto& bits = rounds[static_cast<size_t>(t - 1)];
    ASSERT_TRUE(dirty->ObserveRound(bad).IsInvalidArgument());
    ASSERT_TRUE(dirty->ObserveRound(bits).ok());
    ASSERT_TRUE(clean->ObserveRound(bits).ok());
    EXPECT_EQ(dirty->released_thresholds(), clean->released_thresholds())
        << "at t=" << t;
  }

  FixedWindowSynthesizer::Options fopt;
  fopt.horizon = T;
  fopt.window_k = 2;
  fopt.rho = kInf;
  fopt.npad = 0;
  auto fdirty = FixedWindowSynthesizer::Create(fopt).value();
  auto fclean = FixedWindowSynthesizer::Create(fopt).value();
  for (int64_t t = 1; t <= T; ++t) {
    const auto& bits = rounds[static_cast<size_t>(t - 1)];
    ASSERT_TRUE(
        fdirty->ObserveRound(bad).IsInvalidArgument());
    ASSERT_TRUE(fdirty->ObserveRound(bits).ok());
    ASSERT_TRUE(fclean->ObserveRound(bits).ok());
    if (t < fopt.window_k) continue;
    EXPECT_EQ(fdirty->SyntheticHistogram(), fclean->SyntheticHistogram())
        << "at t=" << t;
  }
}

}  // namespace
}  // namespace core
}  // namespace longdp
