#include "core/fixed_window_synthesizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/theory.h"
#include "data/generators.h"
#include "query/window_query.h"
#include "util/substream.h"

namespace longdp {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

FixedWindowSynthesizer::Options Opt(int64_t horizon, int k, double rho,
                                    int64_t npad = -1, uint64_t seed = 0) {
  FixedWindowSynthesizer::Options options;
  options.horizon = horizon;
  options.window_k = k;
  options.rho = rho;
  options.npad = npad;
  options.seed = seed;
  return options;
}

Status FeedDataset(FixedWindowSynthesizer* synth,
                   const data::LongitudinalDataset& ds, int64_t upto = -1) {
  if (upto < 0) upto = ds.rounds();
  for (int64_t t = 1; t <= upto; ++t) {
    LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
  }
  return Status::OK();
}

TEST(FixedWindowTest, CreateValidates) {
  EXPECT_FALSE(FixedWindowSynthesizer::Create(Opt(2, 3, 0.5)).ok());
  EXPECT_FALSE(FixedWindowSynthesizer::Create(Opt(12, 0, 0.5)).ok());
  EXPECT_FALSE(FixedWindowSynthesizer::Create(Opt(12, 3, 0.0)).ok());
  EXPECT_TRUE(FixedWindowSynthesizer::Create(Opt(12, 3, 0.5)).ok());
}

TEST(FixedWindowTest, AutoNpadUsesTheoryFormula) {
  auto synth = FixedWindowSynthesizer::Create(Opt(12, 3, 0.005)).value();
  auto expected = theory::RecommendedNpad(12, 3, 0.005, 0.05).value();
  EXPECT_EQ(synth->npad(), expected);
}

TEST(FixedWindowTest, ExplicitNpadRespected) {
  auto synth =
      FixedWindowSynthesizer::Create(Opt(12, 3, 0.005, 123)).value();
  EXPECT_EQ(synth->npad(), 123);
}

TEST(FixedWindowTest, NoReleaseBeforeK) {
  auto synth = FixedWindowSynthesizer::Create(Opt(12, 3, kInf, 0)).value();
  std::vector<uint8_t> round(10, 1);
  ASSERT_TRUE(synth->ObserveRound(round).ok());
  EXPECT_FALSE(synth->has_release());
  ASSERT_TRUE(synth->ObserveRound(round).ok());
  EXPECT_FALSE(synth->has_release());
  ASSERT_TRUE(synth->ObserveRound(round).ok());
  EXPECT_TRUE(synth->has_release());
}

TEST(FixedWindowTest, ZeroNoiseReproducesTrueHistograms) {
  // With rho = infinity and npad = 0 the synthetic histogram equals the
  // true window histogram at every step (invariant 6 specialized to bins).
  util::SubstreamRng rng(2, util::substream::kGeneric);
  auto ds = data::BernoulliIid(500, 10, 0.3, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(10, 3, kInf, 0)).value();
  for (int64_t t = 1; t <= 10; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    if (t >= 3) {
      EXPECT_EQ(synth->SyntheticHistogram(),
                ds.WindowHistogram(t, 3).value());
    }
  }
}

TEST(FixedWindowTest, ZeroNoiseDebiasedAnswersAreExact) {
  util::SubstreamRng rng(3, util::substream::kGeneric);
  auto ds = data::BernoulliIid(800, 8, 0.25, &rng).value();
  // Nonzero padding but no noise: debiasing must recover exact truth.
  auto synth = FixedWindowSynthesizer::Create(Opt(8, 3, kInf, 40)).value();
  auto preds = {query::MakeAtLeastOnes(3, 1), query::MakeAtLeastOnes(3, 2),
                query::MakeConsecutiveOnes(3, 2), query::MakeAllOnes(3)};
  for (int64_t t = 1; t <= 8; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    if (t < 3) continue;
    for (const auto& pred : preds) {
      double truth = query::EvaluateOnDataset(*pred, ds, t).value();
      double estimate = synth->DebiasedAnswer(*pred).value();
      EXPECT_NEAR(estimate, truth, 1e-12)
          << "t=" << t << " pred=" << pred->name();
    }
  }
}

TEST(FixedWindowTest, ConsistencyConstraintHoldsEveryStep) {
  // Invariant 1: p^t_{z0} + p^t_{z1} == p^{t-1}_{0z} + p^{t-1}_{1z}, under
  // real noise.
  util::SubstreamRng rng(5, util::substream::kGeneric);
  auto ds = data::BernoulliIid(2000, 12, 0.2, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(12, 3, 0.01, -1, 5)).value();
  std::vector<int64_t> prev;
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    if (!synth->has_release()) continue;
    auto cur = synth->SyntheticHistogram();
    if (!prev.empty()) {
      for (util::Pattern z = 0; z < 4; ++z) {
        int64_t lhs = cur[(z << 1)] + cur[(z << 1) | 1];
        int64_t rhs = prev[z] + prev[z | 4];
        EXPECT_EQ(lhs, rhs) << "t=" << t << " z=" << z;
      }
    }
    prev = cur;
  }
}

TEST(FixedWindowTest, PopulationConstantOverTime) {
  util::SubstreamRng rng(7, util::substream::kGeneric);
  auto ds = data::BernoulliIid(1500, 10, 0.4, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(10, 3, 0.02, -1, 7)).value();
  int64_t population = -1;
  for (int64_t t = 1; t <= 10; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    if (!synth->has_release()) continue;
    if (population < 0) {
      population = synth->cohort().num_records();
    } else {
      EXPECT_EQ(synth->cohort().num_records(), population) << "t=" << t;
    }
  }
  // n* should be near n + 2^k * npad.
  int64_t expected = 1500 + 8 * synth->npad();
  EXPECT_NEAR(static_cast<double>(population), static_cast<double>(expected),
              6.0 * std::sqrt(8.0 * synth->sigma2()));
}

TEST(FixedWindowTest, AccountantChargesExactlyRho) {
  util::SubstreamRng rng(11, util::substream::kGeneric);
  auto ds = data::BernoulliIid(300, 12, 0.3, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(12, 3, 0.005, -1, 11)).value();
  ASSERT_TRUE(FeedDataset(synth.get(), ds).ok());
  EXPECT_NEAR(synth->accountant().spent(), 0.005, 1e-12);
  EXPECT_EQ(synth->stats().releases, 10);  // T - k + 1
  EXPECT_EQ(synth->accountant().ledger().size(), 10u);
}

TEST(FixedWindowTest, RejectsPastHorizonAndChangedPopulation) {
  auto synth = FixedWindowSynthesizer::Create(Opt(3, 2, kInf, 0)).value();
  std::vector<uint8_t> round(5, 0);
  ASSERT_TRUE(synth->ObserveRound(round).ok());
  std::vector<uint8_t> wrong(6, 0);
  EXPECT_TRUE(synth->ObserveRound(wrong).IsInvalidArgument());
  ASSERT_TRUE(synth->ObserveRound(round).ok());
  ASSERT_TRUE(synth->ObserveRound(round).ok());
  EXPECT_TRUE(synth->ObserveRound(round).IsOutOfRange());
}

TEST(FixedWindowTest, RejectsNonBinaryInput) {
  auto synth = FixedWindowSynthesizer::Create(Opt(3, 2, kInf, 0)).value();
  std::vector<uint8_t> bad = {0, 2, 1};
  EXPECT_TRUE(synth->ObserveRound(bad).IsInvalidArgument());
}

TEST(FixedWindowTest, QueriesBeforeReleaseFail) {
  auto synth = FixedWindowSynthesizer::Create(Opt(5, 3, kInf, 0)).value();
  auto pred = query::MakeAllOnes(3);
  EXPECT_TRUE(synth->SyntheticCount(*pred).status().IsFailedPrecondition());
}

TEST(FixedWindowTest, PaddingKeepsCountsNonNegativeWithHighProbability) {
  // With the recommended npad, a full run over the all-ones dataset (the
  // worst case for bins at zero) should virtually never clamp.
  auto ds = data::ExtremeAllOnes(25000, 12).value();
  int total_clamps = 0;
  for (int trial = 0; trial < 5; ++trial) {
    auto synth =
        FixedWindowSynthesizer::Create(
            Opt(12, 3, 0.005, -1, 19 + static_cast<uint64_t>(trial)))
            .value();
    ASSERT_TRUE(FeedDataset(synth.get(), ds).ok());
    total_clamps += static_cast<int>(synth->stats().negative_clamps);
  }
  EXPECT_EQ(total_clamps, 0);
}

TEST(FixedWindowTest, ErrorWithinTheoremBound) {
  // Theorem 3.2: max bin-count error <= lambda with prob >= 1 - beta. Check
  // empirically across repetitions on extreme data.
  auto ds = data::ExtremeAllOnes(25000, 12).value();
  const double kBeta = 0.05;
  double lambda =
      theory::MaxBinCountErrorBound(12, 3, 0.005, kBeta).value();
  int violations = 0;
  const int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto synth =
        FixedWindowSynthesizer::Create(
            Opt(12, 3, 0.005, -1, 23 + static_cast<uint64_t>(trial)))
            .value();
    bool violated = false;
    for (int64_t t = 1; t <= 12; ++t) {
      ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
      if (!synth->has_release()) continue;
      auto hist = synth->SyntheticHistogram();
      auto truth = ds.WindowHistogram(t, 3).value();
      for (util::Pattern s = 0; s < 8; ++s) {
        double err = std::fabs(static_cast<double>(
            hist[s] - (truth[s] + synth->npad())));
        if (err > lambda) violated = true;
      }
    }
    if (violated) ++violations;
  }
  EXPECT_LE(violations, static_cast<int>(kTrials * kBeta * 3) + 1);
}

TEST(FixedWindowTest, RecordsPersistAcrossReleases) {
  // Invariant 2 at the synthesizer level: prefixes never change.
  util::SubstreamRng rng(29, util::substream::kGeneric);
  auto ds = data::BernoulliIid(400, 8, 0.3, &rng).value();
  auto synth = FixedWindowSynthesizer::Create(Opt(8, 3, 0.05, -1, 29)).value();
  std::vector<std::vector<int>> prefixes;
  for (int64_t t = 1; t <= 8; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    if (!synth->has_release()) continue;
    const auto& cohort = synth->cohort();
    if (prefixes.empty()) {
      prefixes.resize(static_cast<size_t>(cohort.num_records()));
    }
    for (int64_t r = 0; r < cohort.num_records(); ++r) {
      auto& p = prefixes[static_cast<size_t>(r)];
      for (size_t j = 0; j < p.size(); ++j) {
        ASSERT_EQ(cohort.Bit(r, static_cast<int64_t>(j + 1)),
                  p[j]);
      }
      while (p.size() < static_cast<size_t>(cohort.rounds())) {
        p.push_back(cohort.Bit(r, static_cast<int64_t>(p.size() + 1)));
      }
    }
  }
}

// Parameterized sweep over (T, k): zero-noise exactness holds for every
// shape, including k = 1 and k = T edges.
struct ShapeCase {
  int64_t horizon;
  int k;
};

class FixedWindowShapeTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(FixedWindowShapeTest, ZeroNoiseExactHistograms) {
  const auto& shape = GetParam();
  util::SubstreamRng rng(31 + static_cast<uint64_t>(shape.horizon * 10 + shape.k), util::substream::kGeneric);
  auto ds = data::BernoulliIid(200, shape.horizon, 0.5, &rng).value();
  auto synth =
      FixedWindowSynthesizer::Create(Opt(shape.horizon, shape.k, kInf, 0))
          .value();
  for (int64_t t = 1; t <= shape.horizon; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    if (t >= shape.k) {
      EXPECT_EQ(synth->SyntheticHistogram(),
                ds.WindowHistogram(t, shape.k).value())
          << "T=" << shape.horizon << " k=" << shape.k << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FixedWindowShapeTest,
    ::testing::Values(ShapeCase{4, 1}, ShapeCase{4, 4}, ShapeCase{12, 3},
                      ShapeCase{12, 2}, ShapeCase{12, 5}, ShapeCase{7, 3},
                      ShapeCase{20, 4}));

}  // namespace
}  // namespace core
}  // namespace longdp
