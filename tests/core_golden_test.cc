// Seeded golden tests: each synthesizer runs its full horizon from a fixed
// Options::seed on a fixed dataset, and the complete release log — every
// per-round released row plus the final materialized synthetic records — is
// rendered as text and compared byte-for-byte against a checked-in golden
// file. Any behavioral drift in the hot path (an extra or reordered noise
// draw, a changed selection order, a different clamp) shows up as a diff,
// which is what makes refactoring the observe path routine instead of risky.
//
// The goldens under tests/golden/ were re-recorded ONCE when randomness
// moved from a mutable shared xoshiro stream to keyed counter-based
// substreams (every draw addressed by (seed, purpose, shard, round, index));
// the statistical acceptance suite passed on the new engine before the
// re-record, per the golden policy. Any future engine change needs the same
// two-step: statistical suite green first, then regenerate.
// To regenerate after an INTENTIONAL behavior change:
//
//   LONGDP_REGEN_GOLDEN=1 ./tests/core_golden_test
//
// which rewrites the files in the source tree (build must be configured
// from a checkout, not an installed tree).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/categorical_synthesizer.h"
#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "data/generators.h"
#include "stream/honaker_counter.h"
#include "util/substream.h"
#include "util/thread_pool.h"

namespace longdp {
namespace core {
namespace {

#ifndef LONGDP_TEST_GOLDEN_DIR
#error "tests/CMakeLists.txt must define LONGDP_TEST_GOLDEN_DIR"
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(LONGDP_TEST_GOLDEN_DIR) + "/" + name + ".golden";
}

void AppendRow(const std::string& tag, int64_t t,
               const std::vector<int64_t>& row, std::ostringstream* out) {
  *out << tag << " t=" << t;
  for (int64_t v : row) *out << " " << v;
  *out << "\n";
}

// Compares `actual` against the checked-in golden, or rewrites the golden
// when LONGDP_REGEN_GOLDEN is set.
void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (std::getenv("LONGDP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    ASSERT_TRUE(out.good()) << "write failed for " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with LONGDP_REGEN_GOLDEN=1 to record)";
  std::ostringstream expected;
  expected << in.rdbuf();
  // Compare line-by-line first so a drift points at the exact round.
  std::istringstream want(expected.str()), got(actual);
  std::string wline, gline;
  int64_t lineno = 0;
  while (std::getline(want, wline)) {
    ++lineno;
    ASSERT_TRUE(std::getline(got, gline))
        << name << ": output truncated at golden line " << lineno;
    ASSERT_EQ(wline, gline) << name << ": first drift at line " << lineno;
  }
  ASSERT_FALSE(std::getline(got, gline))
      << name << ": output has extra lines after golden line " << lineno;
  EXPECT_EQ(expected.str(), actual);
}

// Each golden log is rendered under every thread count in {1, 2, 8} and
// every rendering must match the SAME golden file: the sharded observe
// phase is required to be bit-identical to the serial recording.
template <typename BuildLog>
void CheckGoldenAtAllThreadCounts(const std::string& name,
                                  BuildLog&& build_log) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);
    CheckGolden(name, build_log(pool.get()));
  }
}

// ---------------------------------------------------------------------------
// Cumulative synthesizer: released + raw threshold rows every round, then
// the full synthetic record matrix.

TEST(GoldenTest, CumulativeReleaseLog) {
  const int64_t n = 400, T = 16;
  util::SubstreamRng data_rng(0xD5EEDu, util::substream::kGeneric);
  auto ds = data::BernoulliIid(n, T, 0.3, &data_rng).value();

  CheckGoldenAtAllThreadCounts(
      "cumulative_release_log", [&](util::ThreadPool* pool) {
        CumulativeSynthesizer::Options opt;
        opt.horizon = T;
        opt.rho = 0.5;
        opt.pool = pool;
        opt.seed = 20240611u;
        auto synth = CumulativeSynthesizer::Create(opt).value();

        std::ostringstream log;
        log << "cumulative n=" << n << " T=" << T << " rho=" << opt.rho
            << "\n";
        for (int64_t t = 1; t <= T; ++t) {
          EXPECT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
          AppendRow("raw", t, synth->raw_thresholds(), &log);
          AppendRow("released", t, synth->released_thresholds(), &log);
        }
        AppendRow("synthetic_thresholds", T,
                  synth->SyntheticThresholdCounts(), &log);
        log << "records\n";
        for (int64_t r = 0; r < synth->population(); ++r) {
          std::string line(static_cast<size_t>(T), '0');
          for (int64_t t = 1; t <= T; ++t) {
            if (synth->Bit(r, t)) line[static_cast<size_t>(t - 1)] = '1';
          }
          log << line << "\n";
        }
        return log.str();
      });
}

// ---------------------------------------------------------------------------
// Fixed-window synthesizer: the synthetic histogram after every release,
// stats counters, then the cohort's record matrix.

TEST(GoldenTest, FixedWindowReleaseLog) {
  const int64_t n = 400, T = 14;
  const int k = 3;
  util::SubstreamRng data_rng(0xF1DDu, util::substream::kGeneric);
  auto ds = data::BernoulliIid(n, T, 0.25, &data_rng).value();

  CheckGoldenAtAllThreadCounts(
      "fixed_window_release_log", [&](util::ThreadPool* pool) {
        FixedWindowSynthesizer::Options opt;
        opt.horizon = T;
        opt.window_k = k;
        opt.rho = 0.5;
        opt.pool = pool;
        opt.seed = 20240612u;
        auto synth = FixedWindowSynthesizer::Create(opt).value();

        std::ostringstream log;
        log << "fixed_window n=" << n << " T=" << T << " k=" << k
            << " rho=" << opt.rho << " npad=" << synth->npad() << "\n";
        for (int64_t t = 1; t <= T; ++t) {
          EXPECT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
          if (!synth->has_release()) continue;
          AppendRow("histogram", t, synth->SyntheticHistogram(), &log);
        }
        log << "stats releases=" << synth->stats().releases
            << " negative_clamps=" << synth->stats().negative_clamps
            << " rounding_draws=" << synth->stats().rounding_draws << "\n";
        const auto& cohort = synth->cohort();
        log << "records " << cohort.num_records() << " " << cohort.rounds()
            << "\n";
        for (int64_t r = 0; r < cohort.num_records(); ++r) {
          std::string line(static_cast<size_t>(cohort.rounds()), '0');
          for (int64_t t = 1; t <= cohort.rounds(); ++t) {
            if (cohort.Bit(r, t)) line[static_cast<size_t>(t - 1)] = '1';
          }
          log << line << "\n";
        }
        return log.str();
      });
}

// ---------------------------------------------------------------------------
// Categorical window synthesizer: histogram after every release, stats,
// then the record matrix (symbols as digits).

TEST(GoldenTest, CategoricalReleaseLog) {
  const int64_t n = 300, T = 10;
  const int k = 2, A = 3;
  // Deterministic symbol stream from its own rng.
  util::SubstreamRng data_rng(0xCA7u, util::substream::kGeneric);
  std::vector<std::vector<uint8_t>> rounds(static_cast<size_t>(T));
  for (auto& round : rounds) {
    round.resize(static_cast<size_t>(n));
    for (auto& s : round) {
      s = static_cast<uint8_t>(data_rng.UniformInt(static_cast<uint64_t>(A)));
    }
  }

  CheckGoldenAtAllThreadCounts(
      "categorical_release_log", [&](util::ThreadPool* pool) {
        CategoricalWindowSynthesizer::Options opt;
        opt.horizon = T;
        opt.window_k = k;
        opt.alphabet = A;
        opt.rho = 0.5;
        opt.pool = pool;
        opt.seed = 20240613u;
        auto synth = CategoricalWindowSynthesizer::Create(opt).value();

        std::ostringstream log;
        log << "categorical n=" << n << " T=" << T << " k=" << k
            << " A=" << A << " rho=" << opt.rho << " npad=" << synth->npad()
            << "\n";
        for (int64_t t = 1; t <= T; ++t) {
          EXPECT_TRUE(
              synth->ObserveRound(rounds[static_cast<size_t>(t - 1)])
                  .ok());
          if (!synth->has_release()) continue;
          AppendRow("histogram", t, synth->SyntheticHistogram(), &log);
        }
        log << "stats releases=" << synth->stats().releases
            << " negative_clamps=" << synth->stats().negative_clamps
            << " remainder_draws=" << synth->stats().remainder_draws
            << "\n";
        log << "records " << synth->synthetic_population() << " "
            << synth->t() << "\n";
        for (int64_t r = 0; r < synth->synthetic_population(); ++r) {
          std::string line;
          for (int64_t t = 1; t <= synth->t(); ++t) {
            line += static_cast<char>('0' + synth->Symbol(r, t));
          }
          log << line << "\n";
        }
        return log.str();
      });
}

// ---------------------------------------------------------------------------
// Non-default counter through the bank (honaker) so the batched observe
// path is pinned for the virtual-dispatch fallback too, not just the tree
// fast path.

TEST(GoldenTest, CumulativeHonakerReleaseLog) {
  const int64_t n = 200, T = 12;
  util::SubstreamRng dsrng(0xA0AAu, util::substream::kGeneric);
  auto ds = data::BernoulliIid(n, T, 0.4, &dsrng).value();

  CheckGoldenAtAllThreadCounts(
      "cumulative_honaker_release_log", [&](util::ThreadPool* pool) {
        CumulativeSynthesizer::Options opt;
        opt.horizon = T;
        opt.rho = 1.0;
        opt.counter_factory =
            std::make_shared<stream::HonakerCounterFactory>();
        opt.pool = pool;
        opt.seed = 20240614u;
        auto synth = CumulativeSynthesizer::Create(opt).value();

        std::ostringstream log;
        log << "cumulative_honaker n=" << n << " T=" << T
            << " rho=" << opt.rho << "\n";
        for (int64_t t = 1; t <= T; ++t) {
          EXPECT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
          AppendRow("released", t, synth->released_thresholds(), &log);
        }
        AppendRow("synthetic_thresholds", T,
                  synth->SyntheticThresholdCounts(), &log);
        return log.str();
      });
}

}  // namespace
}  // namespace core
}  // namespace longdp
