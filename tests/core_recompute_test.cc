#include "core/recompute_baseline.h"

#include <gtest/gtest.h>

#include <limits>

#include "data/generators.h"
#include "util/substream.h"

namespace longdp {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

RecomputeBaseline::Options Opt(int64_t horizon, int k, double rho,
                               uint64_t seed = 0) {
  RecomputeBaseline::Options options;
  options.horizon = horizon;
  options.window_k = k;
  options.rho = rho;
  options.seed = seed;
  return options;
}

TEST(RecomputeBaselineTest, CreateValidates) {
  EXPECT_FALSE(RecomputeBaseline::Create(Opt(2, 3, 0.5)).ok());
  EXPECT_FALSE(RecomputeBaseline::Create(Opt(12, 3, 0.0)).ok());
  EXPECT_TRUE(RecomputeBaseline::Create(Opt(12, 3, 0.5)).ok());
}

TEST(RecomputeBaselineTest, NoReleaseBeforeK) {
  auto baseline = RecomputeBaseline::Create(Opt(6, 3, kInf)).value();
  std::vector<uint8_t> round(10, 1);
  ASSERT_TRUE(baseline->ObserveRound(round).ok());
  ASSERT_TRUE(baseline->ObserveRound(round).ok());
  EXPECT_FALSE(baseline->has_release());
  ASSERT_TRUE(baseline->ObserveRound(round).ok());
  EXPECT_TRUE(baseline->has_release());
}

TEST(RecomputeBaselineTest, ZeroNoiseMatchesTrueHistogram) {
  util::SubstreamRng rng(2, util::substream::kGeneric);
  auto ds = data::BernoulliIid(400, 8, 0.3, &rng).value();
  auto baseline = RecomputeBaseline::Create(Opt(8, 3, kInf)).value();
  for (int64_t t = 1; t <= 8; ++t) {
    ASSERT_TRUE(baseline->ObserveRound(ds.Round(t)).ok());
    if (t >= 3) {
      EXPECT_EQ(baseline->CurrentHistogram(),
                ds.WindowHistogram(t, 3).value());
    }
  }
  EXPECT_EQ(baseline->clamped_bins(), 0);
}

TEST(RecomputeBaselineTest, ChargesFullBudget) {
  util::SubstreamRng rng(3, util::substream::kGeneric);
  auto ds = data::BernoulliIid(300, 12, 0.3, &rng).value();
  auto baseline = RecomputeBaseline::Create(Opt(12, 3, 0.005, 3)).value();
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(baseline->ObserveRound(ds.Round(t)).ok());
  }
  EXPECT_NEAR(baseline->accountant().spent(), 0.005, 1e-12);
}

TEST(RecomputeBaselineTest, ClampsNegativeBinsWithoutPadding) {
  // All-zeros data concentrates everything in bin 000; the other bins have
  // true count 0 and will go negative under noise roughly half the time —
  // the failure Algorithm 1's padding prevents.
  auto ds = data::ExtremeAllZeros(100, 12).value();
  auto baseline = RecomputeBaseline::Create(Opt(12, 3, 0.005, 5)).value();
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(baseline->ObserveRound(ds.Round(t)).ok());
  }
  EXPECT_GT(baseline->clamped_bins(), 0);
}

TEST(RecomputeBaselineTest, PopulationFluctuatesAcrossReleases) {
  // Unlike Algorithm 1's constant n*, the baseline's synthetic population
  // jumps release to release — one face of the inconsistency the paper
  // describes.
  util::SubstreamRng rng(7, util::substream::kGeneric);
  auto ds = data::BernoulliIid(5000, 12, 0.3, &rng).value();
  auto baseline = RecomputeBaseline::Create(Opt(12, 3, 0.005, 7)).value();
  std::vector<int64_t> populations;
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(baseline->ObserveRound(ds.Round(t)).ok());
    if (baseline->has_release()) {
      populations.push_back(baseline->SyntheticPopulation());
    }
  }
  bool all_same = true;
  for (size_t i = 1; i < populations.size(); ++i) {
    if (populations[i] != populations[0]) all_same = false;
  }
  EXPECT_FALSE(all_same);
}

TEST(RecomputeBaselineTest, RejectsBadInputs) {
  auto baseline = RecomputeBaseline::Create(Opt(3, 2, kInf)).value();
  std::vector<uint8_t> round = {0, 1};
  ASSERT_TRUE(baseline->ObserveRound(round).ok());
  std::vector<uint8_t> bad = {0, 2};
  EXPECT_TRUE(baseline->ObserveRound(bad).IsInvalidArgument());
  std::vector<uint8_t> wrong = {0, 1, 1};
  EXPECT_TRUE(baseline->ObserveRound(wrong).IsInvalidArgument());
  ASSERT_TRUE(baseline->ObserveRound(round).ok());
  ASSERT_TRUE(baseline->ObserveRound(round).ok());
  EXPECT_TRUE(baseline->ObserveRound(round).IsOutOfRange());
}

}  // namespace
}  // namespace core
}  // namespace longdp
