#include "core/recompute_baseline.h"

#include <gtest/gtest.h>

#include <limits>

#include "data/generators.h"
#include "util/rng.h"

namespace longdp {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

RecomputeBaseline::Options Opt(int64_t horizon, int k, double rho) {
  RecomputeBaseline::Options options;
  options.horizon = horizon;
  options.window_k = k;
  options.rho = rho;
  return options;
}

TEST(RecomputeBaselineTest, CreateValidates) {
  EXPECT_FALSE(RecomputeBaseline::Create(Opt(2, 3, 0.5)).ok());
  EXPECT_FALSE(RecomputeBaseline::Create(Opt(12, 3, 0.0)).ok());
  EXPECT_TRUE(RecomputeBaseline::Create(Opt(12, 3, 0.5)).ok());
}

TEST(RecomputeBaselineTest, NoReleaseBeforeK) {
  auto baseline = RecomputeBaseline::Create(Opt(6, 3, kInf)).value();
  util::Rng rng(1);
  std::vector<uint8_t> round(10, 1);
  ASSERT_TRUE(baseline->ObserveRound(round, &rng).ok());
  ASSERT_TRUE(baseline->ObserveRound(round, &rng).ok());
  EXPECT_FALSE(baseline->has_release());
  ASSERT_TRUE(baseline->ObserveRound(round, &rng).ok());
  EXPECT_TRUE(baseline->has_release());
}

TEST(RecomputeBaselineTest, ZeroNoiseMatchesTrueHistogram) {
  util::Rng rng(2);
  auto ds = data::BernoulliIid(400, 8, 0.3, &rng).value();
  auto baseline = RecomputeBaseline::Create(Opt(8, 3, kInf)).value();
  for (int64_t t = 1; t <= 8; ++t) {
    ASSERT_TRUE(baseline->ObserveRound(ds.Round(t), &rng).ok());
    if (t >= 3) {
      EXPECT_EQ(baseline->CurrentHistogram(),
                ds.WindowHistogram(t, 3).value());
    }
  }
  EXPECT_EQ(baseline->clamped_bins(), 0);
}

TEST(RecomputeBaselineTest, ChargesFullBudget) {
  util::Rng rng(3);
  auto ds = data::BernoulliIid(300, 12, 0.3, &rng).value();
  auto baseline = RecomputeBaseline::Create(Opt(12, 3, 0.005)).value();
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(baseline->ObserveRound(ds.Round(t), &rng).ok());
  }
  EXPECT_NEAR(baseline->accountant().spent(), 0.005, 1e-12);
}

TEST(RecomputeBaselineTest, ClampsNegativeBinsWithoutPadding) {
  // All-zeros data concentrates everything in bin 000; the other bins have
  // true count 0 and will go negative under noise roughly half the time —
  // the failure Algorithm 1's padding prevents.
  util::Rng rng(5);
  auto ds = data::ExtremeAllZeros(100, 12).value();
  auto baseline = RecomputeBaseline::Create(Opt(12, 3, 0.005)).value();
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(baseline->ObserveRound(ds.Round(t), &rng).ok());
  }
  EXPECT_GT(baseline->clamped_bins(), 0);
}

TEST(RecomputeBaselineTest, PopulationFluctuatesAcrossReleases) {
  // Unlike Algorithm 1's constant n*, the baseline's synthetic population
  // jumps release to release — one face of the inconsistency the paper
  // describes.
  util::Rng rng(7);
  auto ds = data::BernoulliIid(5000, 12, 0.3, &rng).value();
  auto baseline = RecomputeBaseline::Create(Opt(12, 3, 0.005)).value();
  std::vector<int64_t> populations;
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(baseline->ObserveRound(ds.Round(t), &rng).ok());
    if (baseline->has_release()) {
      populations.push_back(baseline->SyntheticPopulation());
    }
  }
  bool all_same = true;
  for (size_t i = 1; i < populations.size(); ++i) {
    if (populations[i] != populations[0]) all_same = false;
  }
  EXPECT_FALSE(all_same);
}

TEST(RecomputeBaselineTest, RejectsBadInputs) {
  auto baseline = RecomputeBaseline::Create(Opt(3, 2, kInf)).value();
  util::Rng rng(11);
  std::vector<uint8_t> round = {0, 1};
  ASSERT_TRUE(baseline->ObserveRound(round, &rng).ok());
  std::vector<uint8_t> bad = {0, 2};
  EXPECT_TRUE(baseline->ObserveRound(bad, &rng).IsInvalidArgument());
  std::vector<uint8_t> wrong = {0, 1, 1};
  EXPECT_TRUE(baseline->ObserveRound(wrong, &rng).IsInvalidArgument());
  ASSERT_TRUE(baseline->ObserveRound(round, &rng).ok());
  ASSERT_TRUE(baseline->ObserveRound(round, &rng).ok());
  EXPECT_TRUE(baseline->ObserveRound(round, &rng).IsOutOfRange());
}

}  // namespace
}  // namespace core
}  // namespace longdp
