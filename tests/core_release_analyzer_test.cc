#include "core/release_analyzer.h"

#include <gtest/gtest.h>

#include <limits>

#include "data/generators.h"
#include "query/cumulative_query.h"
#include "util/substream.h"

namespace longdp {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class ReleaseAnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::SubstreamRng rng(1, util::substream::kGeneric);
    ds_ = std::make_unique<data::LongitudinalDataset>(
        data::BernoulliIid(400, 8, 0.3, &rng).value());

    FixedWindowSynthesizer::Options fopt;
    fopt.horizon = 8;
    fopt.window_k = 3;
    fopt.rho = kInf;
    fopt.npad = 30;
    auto window_synth = FixedWindowSynthesizer::Create(fopt).value();
    CumulativeSynthesizer::Options copt;
    copt.horizon = 8;
    copt.rho = kInf;
    auto cumulative_synth = CumulativeSynthesizer::Create(copt).value();
    for (int64_t t = 1; t <= 8; ++t) {
      ASSERT_TRUE(window_synth->ObserveRound(ds_->Round(t)).ok());
      ASSERT_TRUE(cumulative_synth->ObserveRound(ds_->Round(t)).ok());
      ASSERT_TRUE(log_.Capture(*window_synth).ok());
      ASSERT_TRUE(log_.Capture(*cumulative_synth).ok());
    }
  }

  std::unique_ptr<data::LongitudinalDataset> ds_;
  ReleaseLog log_;
};

TEST_F(ReleaseAnalyzerTest, ListsReleaseTimes) {
  ReleaseAnalyzer analyzer(log_);
  EXPECT_EQ(analyzer.WindowTimes(),
            (std::vector<int64_t>{3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(analyzer.CumulativeTimes(),
            (std::vector<int64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST_F(ReleaseAnalyzerTest, WindowFractionsExactOnZeroNoisePath) {
  ReleaseAnalyzer analyzer(log_);
  auto pred = query::MakeAtLeastOnes(3, 2);
  for (int64_t t : analyzer.WindowTimes()) {
    double truth = query::EvaluateOnDataset(*pred, *ds_, t).value();
    EXPECT_NEAR(analyzer.WindowFraction(t, *pred).value(), truth, 1e-12)
        << "t=" << t;
  }
}

TEST_F(ReleaseAnalyzerTest, BiasedFractionExceedsDebiased) {
  ReleaseAnalyzer analyzer(log_);
  auto pred = query::MakeAtLeastOnes(3, 1);  // 7 matching bins
  double biased = analyzer.BiasedWindowFraction(8, *pred).value();
  double debiased = analyzer.WindowFraction(8, *pred).value();
  // The padding inflates the numerator by 7*npad against 8*npad added to
  // the denominator; for small true fractions the biased value is larger.
  EXPECT_GT(biased, debiased);
}

TEST_F(ReleaseAnalyzerTest, CumulativeFractionsExact) {
  ReleaseAnalyzer analyzer(log_);
  for (int64_t t : analyzer.CumulativeTimes()) {
    for (int64_t b = 0; b <= 4; ++b) {
      double truth =
          query::EvaluateCumulativeOnDataset(*ds_, t, b).value();
      EXPECT_NEAR(analyzer.CumulativeFraction(t, b).value(), truth, 1e-12)
          << "t=" << t << " b=" << b;
    }
  }
}

TEST_F(ReleaseAnalyzerTest, CountOccExactUsesReleasedRows) {
  ReleaseAnalyzer analyzer(log_);
  auto counts_t2 = ds_->CumulativeCounts(8).value();
  auto counts_t1 = ds_->CumulativeCounts(4).value();
  int64_t expected = counts_t2[2] - counts_t1[1];
  EXPECT_EQ(analyzer.CountOccExact(4, 8, 2).value(), expected);
}

TEST_F(ReleaseAnalyzerTest, MissingTimesAreNotFound) {
  ReleaseAnalyzer analyzer(log_);
  auto pred = query::MakeAllOnes(3);
  EXPECT_TRUE(analyzer.WindowFraction(1, *pred).status().IsNotFound());
  EXPECT_TRUE(analyzer.WindowFraction(99, *pred).status().IsNotFound());
  EXPECT_TRUE(analyzer.CumulativeFraction(99, 1).status().IsNotFound());
  EXPECT_TRUE(analyzer.CountOccExact(1, 99, 1).status().IsNotFound());
  EXPECT_TRUE(analyzer.CountOccExact(5, 5, 1).status().IsInvalidArgument());
}

TEST_F(ReleaseAnalyzerTest, RejectsOverWideQueries) {
  ReleaseAnalyzer analyzer(log_);
  auto wide = query::MakeAllOnes(4);
  EXPECT_FALSE(analyzer.WindowFraction(8, *wide).ok());
}

TEST_F(ReleaseAnalyzerTest, SurvivesCsvRoundTrip) {
  std::string path = ::testing::TempDir() + "/longdp_analyzer_log.csv";
  ASSERT_TRUE(log_.WriteCsv(path).ok());
  auto loaded = ReleaseLog::LoadCsv(path).value();
  ReleaseAnalyzer analyzer(loaded);
  auto pred = query::MakeConsecutiveOnes(3, 2);
  double truth = query::EvaluateOnDataset(*pred, *ds_, 6).value();
  EXPECT_NEAR(analyzer.WindowFraction(6, *pred).value(), truth, 1e-12);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace core
}  // namespace longdp
