#include "core/release_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>

#include "data/generators.h"
#include "util/substream.h"

namespace longdp {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ReleaseLogTest, CapturesWindowReleasesFromK) {
  util::SubstreamRng rng(1, util::substream::kGeneric);
  auto ds = data::BernoulliIid(100, 6, 0.3, &rng).value();
  FixedWindowSynthesizer::Options opt;
  opt.horizon = 6;
  opt.window_k = 3;
  opt.rho = kInf;
  opt.npad = 5;
  auto synth = FixedWindowSynthesizer::Create(opt).value();
  ReleaseLog log;
  for (int64_t t = 1; t <= 6; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    ASSERT_TRUE(log.Capture(*synth).ok());
  }
  // Releases exist only from t = 3 (no-op before).
  ASSERT_EQ(log.window_releases().size(), 4u);
  EXPECT_EQ(log.window_releases().front().t, 3);
  EXPECT_EQ(log.window_releases().back().t, 6);
  EXPECT_EQ(log.window_releases().front().npad, 5);
  EXPECT_EQ(log.window_releases().front().true_n, 100);
  EXPECT_EQ(log.window_releases().front().histogram.size(), 8u);
}

TEST(ReleaseLogTest, RejectsDoubleCapture) {
  util::SubstreamRng rng(2, util::substream::kGeneric);
  auto ds = data::BernoulliIid(50, 3, 0.5, &rng).value();
  FixedWindowSynthesizer::Options opt;
  opt.horizon = 3;
  opt.window_k = 2;
  opt.rho = kInf;
  opt.npad = 0;
  auto synth = FixedWindowSynthesizer::Create(opt).value();
  ReleaseLog log;
  ASSERT_TRUE(synth->ObserveRound(ds.Round(1)).ok());
  ASSERT_TRUE(synth->ObserveRound(ds.Round(2)).ok());
  ASSERT_TRUE(log.Capture(*synth).ok());
  EXPECT_EQ(log.Capture(*synth).code(), StatusCode::kAlreadyExists);
}

TEST(ReleaseLogTest, CapturesCumulativeReleases) {
  util::SubstreamRng rng(3, util::substream::kGeneric);
  auto ds = data::BernoulliIid(80, 5, 0.4, &rng).value();
  CumulativeSynthesizer::Options opt;
  opt.horizon = 5;
  opt.rho = kInf;
  auto synth = CumulativeSynthesizer::Create(opt).value();
  ReleaseLog log;
  EXPECT_TRUE(log.Capture(*synth).IsFailedPrecondition());  // before t=1
  for (int64_t t = 1; t <= 5; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    ASSERT_TRUE(log.Capture(*synth).ok());
  }
  ASSERT_EQ(log.cumulative_releases().size(), 5u);
  EXPECT_EQ(log.cumulative_releases().back().thresholds,
            ds.CumulativeCounts(5).value());  // zero-noise path is exact
}

TEST(ReleaseLogTest, CsvRoundTrip) {
  util::SubstreamRng rng(4, util::substream::kGeneric);
  auto ds = data::BernoulliIid(60, 4, 0.3, &rng).value();
  ReleaseLog log;
  {
    FixedWindowSynthesizer::Options opt;
    opt.horizon = 4;
    opt.window_k = 2;
    opt.rho = 0.1;
    auto synth = FixedWindowSynthesizer::Create(opt).value();
    CumulativeSynthesizer::Options copt;
    copt.horizon = 4;
    copt.rho = 0.1;
    auto cumulative = CumulativeSynthesizer::Create(copt).value();
    for (int64_t t = 1; t <= 4; ++t) {
      ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
      ASSERT_TRUE(cumulative->ObserveRound(ds.Round(t)).ok());
      ASSERT_TRUE(log.Capture(*synth).ok());
      ASSERT_TRUE(log.Capture(*cumulative).ok());
    }
  }
  std::string path = ::testing::TempDir() + "/longdp_release_log.csv";
  ASSERT_TRUE(log.WriteCsv(path).ok());
  auto loaded = ReleaseLog::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().window_releases().size(),
            log.window_releases().size());
  ASSERT_EQ(loaded.value().cumulative_releases().size(),
            log.cumulative_releases().size());
  for (size_t i = 0; i < log.window_releases().size(); ++i) {
    const auto& a = log.window_releases()[i];
    const auto& b = loaded.value().window_releases()[i];
    EXPECT_EQ(a.t, b.t);
    EXPECT_EQ(a.window_k, b.window_k);
    EXPECT_EQ(a.npad, b.npad);
    EXPECT_EQ(a.true_n, b.true_n);
    EXPECT_EQ(a.histogram, b.histogram);
  }
  for (size_t i = 0; i < log.cumulative_releases().size(); ++i) {
    EXPECT_EQ(log.cumulative_releases()[i].thresholds,
              loaded.value().cumulative_releases()[i].thresholds);
  }
  std::remove(path.c_str());
}

constexpr char kCsvHeader[] = "kind,t,k,alphabet,npad,true_n,index,value\n";

// Writes the 8-column header plus `body` and runs the strict loader.
Result<ReleaseLog> LoadFromRows(const std::string& body) {
  std::string path = ::testing::TempDir() + "/longdp_release_rows.csv";
  {
    std::ofstream out(path);
    out << kCsvHeader << body;
  }
  auto loaded = ReleaseLog::LoadCsv(path);
  std::remove(path.c_str());
  return loaded;
}

TEST(ReleaseLogTest, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/longdp_release_garbage.csv";
  {
    std::ofstream out(path);
    out << kCsvHeader;
    out << "mystery,1,2,0,3,4,5,6\n";
  }
  EXPECT_FALSE(ReleaseLog::LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(ReleaseLogTest, LoadRejectsOldSevenColumnSchema) {
  // Pre-categorical logs had no alphabet column; loading one through the
  // 8-column parser would shift every numeric field by one, so the header
  // is required to match exactly.
  std::string path = ::testing::TempDir() + "/longdp_release_old.csv";
  {
    std::ofstream out(path);
    out << "kind,t,k,npad,true_n,index,value\n";
    out << "window,1,1,5,100,0,6\n";
  }
  EXPECT_TRUE(ReleaseLog::LoadCsv(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(ReleaseLogTest, LoadRejectsNonNumericFields) {
  // Regression: numeric fields were parsed with strtoll(..., nullptr), so a
  // corrupted t field became 0 and the row was silently absorbed into a
  // bogus release t=0 instead of failing the load.
  const struct {
    const char* row;
    const char* what;
  } kCases[] = {
      {"window,abc,2,0,3,4,0,6", "garbage t"},
      {"window,1,2,0,3,4,0x,6", "garbage index"},
      {"window,1,2,0,3,4,0,6zz", "trailing garbage value"},
      {"window,1,2,0,3,4,-1,6", "negative index"},
      {"cumulative,1,0,0,0,0,,5", "empty index"},
  };
  for (const auto& c : kCases) {
    auto loaded = LoadFromRows(std::string(c.row) + "\n");
    EXPECT_FALSE(loaded.ok()) << c.what << " was accepted";
  }
}

TEST(ReleaseLogTest, LoadRejectsDuplicateRelease) {
  // Regression: a duplicated release block (e.g. a CSV concatenated with
  // itself) used to load as two releases at the same t; the analyzer then
  // silently answered from whichever the map kept.
  auto loaded = LoadFromRows(
      "window,3,1,0,5,100,0,10\n"
      "window,3,1,0,5,100,1,20\n"
      "window,3,1,0,5,100,0,10\n"
      "window,3,1,0,5,100,1,20\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().ToString().find("duplicate window release t=3"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().ToString().find("row 4"), std::string::npos)
      << loaded.status().ToString();
}

TEST(ReleaseLogTest, LoadRejectsOutOfOrderRelease) {
  auto loaded = LoadFromRows(
      "cumulative,5,0,0,0,0,0,80\n"
      "cumulative,5,0,0,0,0,1,30\n"
      "cumulative,4,0,0,0,0,0,80\n"
      "cumulative,4,0,0,0,0,1,25\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().ToString().find(
                "out-of-order cumulative release t=4 after t=5"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(ReleaseLogTest, LoadRejectsDuplicateBucketIndex) {
  auto loaded = LoadFromRows(
      "window,3,1,0,5,100,0,10\n"
      "window,3,1,0,5,100,1,20\n"
      "window,3,1,0,5,100,1,20\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("duplicate bucket index 1"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(ReleaseLogTest, LoadRejectsGapInBucketIndices) {
  // A dropped row inside a block: indices jump 0 -> 2.
  auto loaded = LoadFromRows(
      "window,3,2,0,5,100,0,10\n"
      "window,3,2,0,5,100,2,30\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("gap in bucket indices"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(ReleaseLogTest, LoadRejectsIncompleteWindowRelease) {
  // A k=2 window release needs 4 histogram rows; a truncated file with only
  // 2 must not load as a plausible smaller histogram.
  auto loaded = LoadFromRows(
      "window,3,2,0,5,100,0,10\n"
      "window,3,2,0,5,100,1,20\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("incomplete window release"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(ReleaseLogTest, CategoricalCsvRoundTrip) {
  ReleaseLog log;
  CategoricalRelease release;
  release.t = 4;
  release.window_k = 2;
  release.alphabet = 3;
  release.npad = 7;
  release.true_n = 200;
  release.histogram.assign(9, 0);  // 3^2 bins
  for (size_t s = 0; s < release.histogram.size(); ++s) {
    release.histogram[s] = static_cast<int64_t>(10 * s + 7);
  }
  ASSERT_TRUE(log.Append(release).ok());
  std::string path = ::testing::TempDir() + "/longdp_release_cat.csv";
  ASSERT_TRUE(log.WriteCsv(path).ok());
  auto loaded = ReleaseLog::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().categorical_releases().size(), 1u);
  const auto& got = loaded.value().categorical_releases()[0];
  EXPECT_EQ(got.t, release.t);
  EXPECT_EQ(got.window_k, release.window_k);
  EXPECT_EQ(got.alphabet, release.alphabet);
  EXPECT_EQ(got.npad, release.npad);
  EXPECT_EQ(got.true_n, release.true_n);
  EXPECT_EQ(got.histogram, release.histogram);
  std::remove(path.c_str());
}

TEST(ReleaseLogTest, FullDeviceWriteSurfacesAsIOError) {
  // Regression: WriteCsv checked out.good() without flushing, so rows still
  // sitting in the ofstream buffer could not have failed yet and a full
  // disk was reported as OK. /dev/full fails buffered writes at flush time.
  if (!std::ifstream("/dev/full").good()) {
    GTEST_SKIP() << "/dev/full not available";
  }
  util::SubstreamRng rng(4, util::substream::kGeneric);
  auto ds = data::BernoulliIid(60, 4, 0.3, &rng).value();
  ReleaseLog log;
  FixedWindowSynthesizer::Options opt;
  opt.horizon = 4;
  opt.window_k = 2;
  opt.rho = 0.1;
  auto synth = FixedWindowSynthesizer::Create(opt).value();
  for (int64_t t = 1; t <= 4; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    ASSERT_TRUE(log.Capture(*synth).ok());
  }
  EXPECT_TRUE(log.WriteCsv("/dev/full").IsIOError());
}

TEST(ReleaseLogTest, LoadMissingFileIsIOError) {
  EXPECT_TRUE(
      ReleaseLog::LoadCsv("/no/such/log.csv").status().IsIOError());
}

}  // namespace
}  // namespace core
}  // namespace longdp
