// Shard-grid invariance: with counter-based substreams, a release log is a
// pure function of (options, input data) — the shard count and the number
// of pool lanes executing those shards must both be invisible. Each
// synthesizer renders its complete release log (every round, every
// bin/threshold, plus the synthetic records) under every combination of
// shards {1, 4, 16} x threads {1, 2, 8} and the strings are compared
// byte-for-byte against the serial run. This is stronger than the
// thread-invariance suite: ThreadPool(threads, shards) fixes the shard
// grid independently of the lane count, so a lane can own several shards
// and the interleaving changes with every (threads, shards) pair.
//
// Also pins checkpoint/resume against the shard grid: a run interrupted
// mid-stream and resumed on a *different* grid must finish with the same
// log as the uninterrupted serial run, because checkpoints persist only
// substream cursors, never engine state.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/categorical_synthesizer.h"
#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "data/generators.h"
#include "util/substream.h"
#include "util/thread_pool.h"

namespace longdp {
namespace core {
namespace {

const int kShardCounts[] = {1, 4, 16};
const int kThreadCounts[] = {1, 2, 8};

// nullptr for the serial baseline (threads == 0); otherwise a pool whose
// shard grid is pinned to `shards` regardless of the lane count.
std::unique_ptr<util::ThreadPool> MakeGrid(int threads, int shards) {
  if (threads == 0) return nullptr;
  return std::make_unique<util::ThreadPool>(threads, shards);
}

void AppendRow(const std::string& tag, int64_t t,
               const std::vector<int64_t>& row, std::ostringstream* out) {
  *out << tag << " t=" << t;
  for (int64_t v : row) *out << " " << v;
  *out << "\n";
}

// ---------------------------------------------------------------------------

std::string FixedWindowLog(const data::LongitudinalDataset& ds, int64_t T,
                           int k, util::ThreadPool* pool) {
  FixedWindowSynthesizer::Options opt;
  opt.horizon = T;
  opt.window_k = k;
  opt.rho = 0.25;
  opt.pool = pool;
  opt.seed = 0x5AAD5u;
  auto synth = FixedWindowSynthesizer::Create(opt).value();
  std::ostringstream log;
  for (int64_t t = 1; t <= T; ++t) {
    EXPECT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    if (!synth->has_release()) continue;
    AppendRow("histogram", t, synth->SyntheticHistogram(), &log);
  }
  log << "clamps=" << synth->stats().negative_clamps
      << " draws=" << synth->stats().rounding_draws << "\n";
  const auto& cohort = synth->cohort();
  for (int64_t r = 0; r < cohort.num_records(); ++r) {
    for (int64_t t = 1; t <= cohort.rounds(); ++t) log << cohort.Bit(r, t);
    log << "\n";
  }
  return log.str();
}

TEST(ShardsEqualityTest, FixedWindowLogIdenticalOnEveryGrid) {
  const int64_t n = 1200, T = 13;
  const int k = 3;
  util::SubstreamRng data_rng(0xA11CEu, util::substream::kGeneric);
  auto ds = data::BernoulliIid(n, T, 0.3, &data_rng).value();
  const std::string serial = FixedWindowLog(ds, T, k, nullptr);
  for (int shards : kShardCounts) {
    for (int threads : kThreadCounts) {
      auto pool = MakeGrid(threads, shards);
      EXPECT_EQ(FixedWindowLog(ds, T, k, pool.get()), serial)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------

std::string CumulativeLog(const data::LongitudinalDataset& ds, int64_t T,
                          util::ThreadPool* pool) {
  CumulativeSynthesizer::Options opt;
  opt.horizon = T;
  opt.rho = 0.25;
  opt.pool = pool;
  opt.seed = 0xCAFEDu;
  auto synth = CumulativeSynthesizer::Create(opt).value();
  std::ostringstream log;
  for (int64_t t = 1; t <= T; ++t) {
    EXPECT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    AppendRow("released", t, synth->released_thresholds(), &log);
  }
  AppendRow("synthetic", T, synth->SyntheticThresholdCounts(), &log);
  for (int64_t r = 0; r < synth->population(); ++r) {
    for (int64_t t = 1; t <= T; ++t) log << synth->Bit(r, t);
    log << "\n";
  }
  return log.str();
}

TEST(ShardsEqualityTest, CumulativeLogIdenticalOnEveryGrid) {
  const int64_t n = 1000, T = 15;
  util::SubstreamRng data_rng(0xB22DFu, util::substream::kGeneric);
  auto ds = data::BernoulliIid(n, T, 0.35, &data_rng).value();
  const std::string serial = CumulativeLog(ds, T, nullptr);
  for (int shards : kShardCounts) {
    for (int threads : kThreadCounts) {
      auto pool = MakeGrid(threads, shards);
      EXPECT_EQ(CumulativeLog(ds, T, pool.get()), serial)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------

std::string CategoricalLog(const std::vector<std::vector<uint8_t>>& rounds,
                           int64_t T, int k, int A, util::ThreadPool* pool) {
  CategoricalWindowSynthesizer::Options opt;
  opt.horizon = T;
  opt.window_k = k;
  opt.alphabet = A;
  opt.rho = 0.25;
  opt.pool = pool;
  opt.seed = 0xC33E7u;
  auto synth = CategoricalWindowSynthesizer::Create(opt).value();
  std::ostringstream log;
  for (int64_t t = 1; t <= T; ++t) {
    EXPECT_TRUE(
        synth->ObserveRound(rounds[static_cast<size_t>(t - 1)]).ok());
    if (!synth->has_release()) continue;
    AppendRow("histogram", t, synth->SyntheticHistogram(), &log);
  }
  for (int64_t r = 0; r < synth->synthetic_population(); ++r) {
    for (int64_t t = 1; t <= synth->t(); ++t) log << synth->Symbol(r, t);
    log << "\n";
  }
  return log.str();
}

TEST(ShardsEqualityTest, CategoricalLogIdenticalOnEveryGrid) {
  const int64_t n = 900, T = 9;
  const int k = 2, A = 3;
  util::SubstreamRng data_rng(0xD44E1u, util::substream::kGeneric);
  std::vector<std::vector<uint8_t>> rounds(static_cast<size_t>(T));
  for (auto& round : rounds) {
    round.resize(static_cast<size_t>(n));
    for (auto& s : round) {
      s = static_cast<uint8_t>(
          data_rng.UniformInt(static_cast<uint64_t>(A)));
    }
  }
  const std::string serial = CategoricalLog(rounds, T, k, A, nullptr);
  for (int shards : kShardCounts) {
    for (int threads : kThreadCounts) {
      auto pool = MakeGrid(threads, shards);
      EXPECT_EQ(CategoricalLog(rounds, T, k, A, pool.get()), serial)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------

TEST(ShardsEqualityTest, FixedWindowResumeOnDifferentGridMatchesSerial) {
  const int64_t n = 1100, T = 12;
  const int k = 3;
  util::SubstreamRng data_rng(0xE55F2u, util::substream::kGeneric);
  auto ds = data::BernoulliIid(n, T, 0.4, &data_rng).value();
  const std::string serial = FixedWindowLog(ds, T, k, nullptr);

  // Interrupt a 16-shard run at T/2, then resume the checkpoint on a
  // 4-shard, 8-lane grid. The rendered log must still equal serial.
  FixedWindowSynthesizer::Options opt;
  opt.horizon = T;
  opt.window_k = k;
  opt.rho = 0.25;
  opt.seed = 0x5AAD5u;  // must match FixedWindowLog
  util::ThreadPool first_pool(2, 16);
  opt.pool = &first_pool;
  auto first = FixedWindowSynthesizer::Create(opt).value();
  std::ostringstream log;
  for (int64_t t = 1; t <= T / 2; ++t) {
    ASSERT_TRUE(first->ObserveRound(ds.Round(t)).ok());
    if (!first->has_release()) continue;
    AppendRow("histogram", t, first->SyntheticHistogram(), &log);
  }
  std::ostringstream ckpt;
  ASSERT_TRUE(first->SaveCheckpoint(ckpt).ok());
  first.reset();

  std::istringstream in(ckpt.str());
  util::ThreadPool second_pool(8, 4);
  auto resumed = FixedWindowSynthesizer::LoadCheckpoint(in).value();
  resumed->set_pool(&second_pool);
  for (int64_t t = T / 2 + 1; t <= T; ++t) {
    ASSERT_TRUE(resumed->ObserveRound(ds.Round(t)).ok());
    if (!resumed->has_release()) continue;
    AppendRow("histogram", t, resumed->SyntheticHistogram(), &log);
  }
  log << "clamps=" << resumed->stats().negative_clamps
      << " draws=" << resumed->stats().rounding_draws << "\n";
  const auto& cohort = resumed->cohort();
  for (int64_t r = 0; r < cohort.num_records(); ++r) {
    for (int64_t t = 1; t <= cohort.rounds(); ++t) log << cohort.Bit(r, t);
    log << "\n";
  }
  EXPECT_EQ(log.str(), serial);
}

TEST(ShardsEqualityTest, CumulativeResumeOnDifferentGridMatchesSerial) {
  const int64_t n = 950, T = 14;
  util::SubstreamRng data_rng(0xF66A3u, util::substream::kGeneric);
  auto ds = data::BernoulliIid(n, T, 0.45, &data_rng).value();
  const std::string serial = CumulativeLog(ds, T, nullptr);

  CumulativeSynthesizer::Options opt;
  opt.horizon = T;
  opt.rho = 0.25;
  opt.seed = 0xCAFEDu;  // must match CumulativeLog
  util::ThreadPool first_pool(8, 16);
  opt.pool = &first_pool;
  auto first = CumulativeSynthesizer::Create(opt).value();
  std::ostringstream log;
  for (int64_t t = 1; t <= T / 2; ++t) {
    ASSERT_TRUE(first->ObserveRound(ds.Round(t)).ok());
    AppendRow("released", t, first->released_thresholds(), &log);
  }
  std::ostringstream ckpt;
  ASSERT_TRUE(first->SaveCheckpoint(ckpt).ok());
  first.reset();

  std::istringstream in(ckpt.str());
  util::ThreadPool second_pool(1, 4);
  auto resumed = CumulativeSynthesizer::LoadCheckpoint(in).value();
  resumed->set_pool(&second_pool);
  for (int64_t t = T / 2 + 1; t <= T; ++t) {
    ASSERT_TRUE(resumed->ObserveRound(ds.Round(t)).ok());
    AppendRow("released", t, resumed->released_thresholds(), &log);
  }
  AppendRow("synthetic", T, resumed->SyntheticThresholdCounts(), &log);
  for (int64_t r = 0; r < resumed->population(); ++r) {
    for (int64_t t = 1; t <= T; ++t) log << resumed->Bit(r, t);
    log << "\n";
  }
  EXPECT_EQ(log.str(), serial);
}

}  // namespace
}  // namespace core
}  // namespace longdp
