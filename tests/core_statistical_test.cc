// Statistical property tests for the synthesizers — the distributional
// claims of the paper's analysis, checked over many repetitions:
//
//  * Theorem 3.2's key structural fact: the per-bin error of Algorithm 1 is
//    mean-zero with (approximately) TIME-UNIFORM variance — the noise does
//    not accumulate across update steps despite the incremental
//    projections.
//  * Determinism: identical seeds produce identical synthetic cohorts.
//  * Unbiasedness of debiased answers and of Algorithm 2's released
//    fractions.

#include <gtest/gtest.h>

#include <cmath>

#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "data/generators.h"
#include "query/cumulative_query.h"
#include "query/window_query.h"
#include "util/mathutil.h"
#include "util/substream.h"

namespace longdp {
namespace core {
namespace {

TEST(StatisticalTest, FixedWindowErrorIsTimeUniform) {
  // Collect the error of one fixed bin at the first release (t = k) and at
  // the last (t = T) over many runs; Theorem 3.2 says both are mean-zero
  // with the same variance sigma^2 = (T-k+1)/(2 rho) (plus the bounded
  // rounding term).
  const int64_t kN = 2000, kT = 12;
  const int kK = 3;
  const double kRho = 0.05;
  const int kTrials = 1200;
  util::SubstreamRng data_rng(1, util::substream::kGeneric);
  auto ds = data::BernoulliIid(kN, kT, 0.5, &data_rng).value();
  auto truth_first = ds.WindowHistogram(kK, kK).value();
  auto truth_last = ds.WindowHistogram(kT, kK).value();

  util::MomentAccumulator first, last;
  const util::Pattern kBin = 0b010;
  for (int trial = 0; trial < kTrials; ++trial) {
    FixedWindowSynthesizer::Options opt;
    opt.horizon = kT;
    opt.window_k = kK;
    opt.rho = kRho;
    opt.seed = 1000 + static_cast<uint64_t>(trial);
    auto synth = FixedWindowSynthesizer::Create(opt).value();
    for (int64_t t = 1; t <= kT; ++t) {
      ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
      if (t == kK) {
        first.Add(static_cast<double>(
            synth->SyntheticHistogram()[kBin] -
            (truth_first[kBin] + synth->npad())));
      }
      if (t == kT) {
        last.Add(static_cast<double>(
            synth->SyntheticHistogram()[kBin] -
            (truth_last[kBin] + synth->npad())));
      }
    }
  }
  const double sigma2 = (kT - kK + 1) / (2.0 * kRho);
  // Mean zero within 5 standard errors.
  EXPECT_NEAR(first.mean(), 0.0, 5.0 * std::sqrt(sigma2 / kTrials));
  EXPECT_NEAR(last.mean(), 0.0, 5.0 * std::sqrt(sigma2 / kTrials));
  // Variance at the last step within 25% of the first step's (both should
  // be ~sigma^2; tolerance covers sampling noise of a variance estimate).
  EXPECT_NEAR(last.variance(), first.variance(), 0.25 * first.variance());
  EXPECT_NEAR(first.variance(), sigma2, 0.25 * sigma2);
}

TEST(StatisticalTest, FixedWindowDeterministicGivenSeed) {
  const int64_t kN = 300, kT = 8;
  util::SubstreamRng data_rng(3, util::substream::kGeneric);
  auto ds = data::BernoulliIid(kN, kT, 0.3, &data_rng).value();
  auto run = [&](uint64_t seed) {
    FixedWindowSynthesizer::Options opt;
    opt.horizon = kT;
    opt.window_k = 3;
    opt.rho = 0.01;
    opt.seed = seed;
    auto synth = FixedWindowSynthesizer::Create(opt).value();
    for (int64_t t = 1; t <= kT; ++t) {
      EXPECT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    }
    return synth->cohort().ToDataset(kT).value();
  };
  auto a = run(99);
  auto b = run(99);
  ASSERT_EQ(a.num_users(), b.num_users());
  for (int64_t r = 0; r < a.num_users(); ++r) {
    for (int64_t t = 1; t <= a.rounds(); ++t) {
      ASSERT_EQ(a.Bit(r, t), b.Bit(r, t));
    }
  }
  // A different seed gives a different cohort (overwhelmingly likely).
  auto c = run(100);
  bool any_diff = c.num_users() != a.num_users();
  if (!any_diff) {
    for (int64_t r = 0; r < a.num_users() && !any_diff; ++r) {
      for (int64_t t = 1; t <= a.rounds() && !any_diff; ++t) {
        any_diff = a.Bit(r, t) != c.Bit(r, t);
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(StatisticalTest, DebiasedAnswersUnbiasedOverRuns) {
  const int64_t kN = 3000, kT = 10;
  const double kRho = 0.02;
  const int kTrials = 800;
  util::SubstreamRng data_rng(5, util::substream::kGeneric);
  auto ds = data::TwoStateMarkov(kN, kT, {0.15, 0.05, 0.3}, &data_rng)
                .value();
  auto pred = query::MakeConsecutiveOnes(3, 2);
  double truth = query::EvaluateOnDataset(*pred, ds, kT).value();

  util::MomentAccumulator acc;
  for (int trial = 0; trial < kTrials; ++trial) {
    FixedWindowSynthesizer::Options opt;
    opt.horizon = kT;
    opt.window_k = 3;
    opt.rho = kRho;
    opt.seed = 40000 + static_cast<uint64_t>(trial);
    auto synth = FixedWindowSynthesizer::Create(opt).value();
    for (int64_t t = 1; t <= kT; ++t) {
      ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    }
    acc.Add(synth->DebiasedAnswer(*pred).value());
  }
  double se = acc.stddev() / std::sqrt(static_cast<double>(kTrials));
  EXPECT_NEAR(acc.mean(), truth, 5.0 * se + 1e-5);
}

TEST(StatisticalTest, CumulativeAnswersUnbiasedMidStream) {
  // Check unbiasedness at an interior time (t = 7), not only at T, since
  // monotonization could in principle introduce drift.
  const int64_t kN = 3000, kT = 12;
  const double kRho = 0.02;
  const int kTrials = 800;
  util::SubstreamRng data_rng(11, util::substream::kGeneric);
  auto ds = data::TwoStateMarkov(kN, kT, {0.12, 0.04, 0.35}, &data_rng)
                .value();
  double truth = query::EvaluateCumulativeOnDataset(ds, 7, 2).value();

  util::MomentAccumulator acc;
  for (int trial = 0; trial < kTrials; ++trial) {
    CumulativeSynthesizer::Options opt;
    opt.horizon = kT;
    opt.rho = kRho;
    opt.seed = 50000 + static_cast<uint64_t>(trial);
    auto synth = CumulativeSynthesizer::Create(opt).value();
    for (int64_t t = 1; t <= 7; ++t) {
      ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    }
    acc.Add(synth->Answer(2).value());
  }
  double se = acc.stddev() / std::sqrt(static_cast<double>(kTrials));
  // Monotonization clamps rarely at this rho/n, so bias should be tiny.
  EXPECT_NEAR(acc.mean(), truth, 5.0 * se + 5e-5);
}

TEST(StatisticalTest, CumulativePromotionsArePermutationInvariant) {
  // Promotion selections must depend on records only through their weight
  // groups: relabeling the records of the input dataset permutes WHICH
  // synthetic records get promoted, but the released threshold rows and
  // the synthetic count distribution must be IDENTICAL for every seed
  // (stage 1's increment histogram is relabeling-invariant, so the bank —
  // and hence stage 2's targets — sees the same stream). A sampler that
  // peeked at record identity (e.g. an index-dependent bias in the batched
  // shuffle) would break this across seeds.
  const int64_t kN = 300, kT = 10;
  util::SubstreamRng data_rng(23, util::substream::kGeneric);
  auto ds = data::TwoStateMarkov(kN, kT, {0.2, 0.05, 0.3}, &data_rng).value();

  // Record relabeling: record r of the permuted dataset is record perm[r].
  std::vector<int64_t> perm(static_cast<size_t>(kN));
  for (int64_t r = 0; r < kN; ++r) perm[static_cast<size_t>(r)] = r;
  util::SubstreamRng perm_rng(29, util::substream::kGeneric);
  perm_rng.Shuffle(&perm);
  auto permuted = data::LongitudinalDataset::Create(kN, kT).value();
  for (int64_t t = 1; t <= kT; ++t) {
    std::vector<uint8_t> bits(static_cast<size_t>(kN));
    auto round = ds.Round(t);
    for (int64_t r = 0; r < kN; ++r) {
      bits[static_cast<size_t>(r)] = static_cast<uint8_t>(
          round.bit(perm[static_cast<size_t>(r)]));
    }
    ASSERT_TRUE(permuted.AppendRound(bits).ok());
  }

  auto run = [&](const data::LongitudinalDataset& data, uint64_t seed) {
    CumulativeSynthesizer::Options opt;
    opt.horizon = kT;
    opt.rho = 0.05;
    opt.seed = seed;
    auto synth = CumulativeSynthesizer::Create(opt).value();
    std::vector<std::vector<int64_t>> released;
    for (int64_t t = 1; t <= kT; ++t) {
      EXPECT_TRUE(synth->ObserveRound(data.Round(t)).ok());
      released.push_back(synth->released_thresholds());
    }
    released.push_back(synth->SyntheticThresholdCounts());
    return released;
  };

  for (uint64_t seed = 0; seed < 64; ++seed) {
    auto original_log = run(ds, 1000 + seed);
    auto permuted_log = run(permuted, 1000 + seed);
    ASSERT_EQ(original_log, permuted_log) << "seed=" << seed;
  }
}

TEST(StatisticalTest, RoundingTermsAreFair) {
  // The +-1/2 rounding draws must not introduce drift: over a long run on
  // symmetric data, the net difference between "extend by 1" and the
  // noisy-count target stays mean-zero. Proxy: the synthetic count of the
  // all-ones bin stays centered on truth + npad.
  const int64_t kN = 1000, kT = 16;
  const double kRho = 0.1;
  const int kTrials = 600;
  util::SubstreamRng data_rng(17, util::substream::kGeneric);
  auto ds = data::BernoulliIid(kN, kT, 0.5, &data_rng).value();
  util::MomentAccumulator acc;
  for (int trial = 0; trial < kTrials; ++trial) {
    FixedWindowSynthesizer::Options opt;
    opt.horizon = kT;
    opt.window_k = 2;
    opt.rho = kRho;
    opt.seed = 60000 + static_cast<uint64_t>(trial);
    auto synth = FixedWindowSynthesizer::Create(opt).value();
    for (int64_t t = 1; t <= kT; ++t) {
      ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    }
    auto truth = ds.WindowHistogram(kT, 2).value();
    acc.Add(static_cast<double>(synth->SyntheticHistogram()[0b11] -
                                (truth[0b11] + synth->npad())));
  }
  double sigma2 = (kT - 2 + 1) / (2.0 * kRho);
  EXPECT_NEAR(acc.mean(), 0.0, 5.0 * std::sqrt(sigma2 / kTrials));
}

}  // namespace
}  // namespace core
}  // namespace longdp
