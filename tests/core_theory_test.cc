#include "core/theory.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace longdp {
namespace core {
namespace theory {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(TheoryTest, FixedWindowSigma2Formula) {
  // sigma^2 = (T - k + 1) / (2 rho); the paper's SIPP setting: T=12, k=3,
  // rho=0.005 -> 10 / 0.01 = 1000.
  EXPECT_DOUBLE_EQ(FixedWindowSigma2(12, 3, 0.005).value(), 1000.0);
  EXPECT_DOUBLE_EQ(FixedWindowSigma2(12, 12, 0.5).value(), 1.0);
  EXPECT_EQ(FixedWindowSigma2(12, 3, kInf).value(), 0.0);
}

TEST(TheoryTest, FixedWindowValidation) {
  EXPECT_FALSE(FixedWindowSigma2(2, 3, 0.5).ok());   // T < k
  EXPECT_FALSE(FixedWindowSigma2(12, 0, 0.5).ok());  // bad k
  EXPECT_FALSE(FixedWindowSigma2(12, 3, 0.0).ok());  // bad rho
}

TEST(TheoryTest, MaxBinErrorBoundMatchesClosedForm) {
  const int64_t T = 12;
  const int k = 3;
  const double rho = 0.005, beta = 0.05;
  double steps = static_cast<double>(T - k + 1);
  double expected = (std::sqrt(steps / rho) + 1.0 / std::sqrt(2.0)) *
                    std::sqrt(std::log(8.0 * steps / beta));
  EXPECT_NEAR(MaxBinCountErrorBound(T, k, rho, beta).value(), expected,
              1e-9);
}

TEST(TheoryTest, BoundShrinksWithMoreBudget) {
  double loose = MaxBinCountErrorBound(12, 3, 0.001, 0.05).value();
  double mid = MaxBinCountErrorBound(12, 3, 0.005, 0.05).value();
  double tight = MaxBinCountErrorBound(12, 3, 0.05, 0.05).value();
  EXPECT_GT(loose, mid);
  EXPECT_GT(mid, tight);
}

TEST(TheoryTest, BoundGrowsWithHorizonAndWindow) {
  EXPECT_LT(MaxBinCountErrorBound(12, 3, 0.005, 0.05).value(),
            MaxBinCountErrorBound(24, 3, 0.005, 0.05).value());
  EXPECT_LT(MaxBinCountErrorBound(12, 3, 0.005, 0.05).value(),
            MaxBinCountErrorBound(12, 6, 0.005, 0.05).value() *
                2.0);  // wider window: more bins in the union bound
}

TEST(TheoryTest, RecommendedNpadCeilsTheBound) {
  auto bound = MaxBinCountErrorBound(12, 3, 0.005, 0.05).value();
  auto npad = RecommendedNpad(12, 3, 0.005, 0.05).value();
  EXPECT_EQ(npad, static_cast<int64_t>(std::ceil(bound)));
  EXPECT_EQ(RecommendedNpad(12, 3, kInf, 0.05).value(), 0);
}

TEST(TheoryTest, DebiasedFractionBoundScalesInverseN) {
  double n1 = DebiasedFractionErrorBound(12, 3, 0.005, 0.05, 1000).value();
  double n2 = DebiasedFractionErrorBound(12, 3, 0.005, 0.05, 2000).value();
  EXPECT_NEAR(n1 / n2, 2.0, 1e-9);
  EXPECT_FALSE(DebiasedFractionErrorBound(12, 3, 0.005, 0.05, 0).ok());
}

TEST(TheoryTest, BiasedBoundExceedsDebiasedBound) {
  double biased =
      BiasedFractionErrorBound(12, 3, 0.005, 0.05, 23374, 0.1).value();
  double debiased =
      DebiasedFractionErrorBound(12, 3, 0.005, 0.05, 23374).value();
  EXPECT_GT(biased, debiased);
  EXPECT_FALSE(BiasedFractionErrorBound(12, 3, 0.005, 0.05, 10, 1.5).ok());
}

TEST(TheoryTest, CumulativeBoundFormula) {
  // alpha* = (1/n) sqrt( sum_b L_b^3 / rho * log(1/beta) ).
  const int64_t T = 12;
  const double rho = 0.005, beta = 0.05;
  const int64_t n = 23374;
  double sum_l3 = 0.0;
  for (int64_t b = 1; b <= T; ++b) {
    int64_t len = T - b + 1;
    int l = 1;
    while ((int64_t{1} << l) < len) ++l;
    if (len == 1) l = 1;
    double dl = static_cast<double>(std::max(l, 1));
    sum_l3 += dl * dl * dl;
  }
  double expected =
      std::sqrt(sum_l3 / rho * std::log(1.0 / beta)) / static_cast<double>(n);
  EXPECT_NEAR(CumulativeFractionErrorBound(T, rho, beta, n).value(),
              expected, expected * 0.01);
}

TEST(TheoryTest, CumulativeBoundValidation) {
  EXPECT_FALSE(CumulativeFractionErrorBound(0, 0.5, 0.05, 10).ok());
  EXPECT_FALSE(CumulativeFractionErrorBound(5, 0.0, 0.05, 10).ok());
  EXPECT_FALSE(CumulativeFractionErrorBound(5, 0.5, 1.5, 10).ok());
  EXPECT_FALSE(CumulativeFractionErrorBound(5, 0.5, 0.05, 0).ok());
  EXPECT_EQ(CumulativeFractionErrorBound(5, kInf, 0.05, 10).value(), 0.0);
}

TEST(TheoryTest, CumulativeBeatsFixedWindowReduction) {
  // The paper's Section 2.1 reduction sets k = T and answers a cumulative
  // query by summing up to 2^T histogram bins, so its error bound is
  // 2^T times the per-bin bound. The dedicated Algorithm 2 bound must be
  // far smaller for the SIPP parameters.
  double cumulative =
      CumulativeFractionErrorBound(12, 0.005, 0.05, 23374).value();
  double per_bin =
      DebiasedFractionErrorBound(12, 12, 0.005, 0.05, 23374).value();
  double reduction = per_bin * 4096.0;  // 2^12 bins in the worst case
  EXPECT_LT(cumulative, reduction / 100.0);
}

TEST(TheoryTest, RecomputeSigmaMatchesAlg1Sigma) {
  double sigma = RecomputePerStepSigma(12, 3, 0.005).value();
  EXPECT_NEAR(sigma, std::sqrt(1000.0), 1e-9);
}

}  // namespace
}  // namespace theory
}  // namespace core
}  // namespace longdp
