// Thread-count invariance: the sharded observe phase must produce releases
// and synthetic records byte-identical to the serial path at every thread
// count, WITH noise enabled (finite rho exercises the full RNG sequence,
// which is stronger than the zero-noise equivalence suite). Each synthesizer
// renders its complete release log to text under pools of 1, 2, 3, and 8
// threads and the strings are compared against the serial run.
//
// Also pins the two ObserveRound entry points against each other: the
// byte-per-bit overload and the packed RoundView path must be
// indistinguishable.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/categorical_synthesizer.h"
#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "data/generators.h"
#include "data/round_view.h"
#include "util/substream.h"
#include "util/thread_pool.h"

namespace longdp {
namespace core {
namespace {

const int kThreadCounts[] = {1, 2, 3, 8};

void AppendRow(const std::string& tag, int64_t t,
               const std::vector<int64_t>& row, std::ostringstream* out) {
  *out << tag << " t=" << t;
  for (int64_t v : row) *out << " " << v;
  *out << "\n";
}

std::unique_ptr<util::ThreadPool> MakePool(int threads) {
  if (threads <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(threads);
}

// ---------------------------------------------------------------------------

std::string CumulativeLog(const data::LongitudinalDataset& ds, int64_t T,
                          util::ThreadPool* pool, bool use_byte_overload) {
  CumulativeSynthesizer::Options opt;
  opt.horizon = T;
  opt.rho = 0.25;
  opt.pool = pool;
  opt.seed = 0x7EADu;
  auto synth = CumulativeSynthesizer::Create(opt).value();
  std::ostringstream log;
  for (int64_t t = 1; t <= T; ++t) {
    if (use_byte_overload) {
      std::vector<uint8_t> bytes(static_cast<size_t>(ds.num_users()));
      for (int64_t i = 0; i < ds.num_users(); ++i) {
        bytes[static_cast<size_t>(i)] =
            static_cast<uint8_t>(ds.Bit(i, t));
      }
      EXPECT_TRUE(synth->ObserveRound(bytes).ok());
    } else {
      EXPECT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    }
    AppendRow("released", t, synth->released_thresholds(), &log);
  }
  AppendRow("synthetic", T, synth->SyntheticThresholdCounts(), &log);
  for (int64_t r = 0; r < synth->population(); ++r) {
    for (int64_t t = 1; t <= T; ++t) log << synth->Bit(r, t);
    log << "\n";
  }
  return log.str();
}

TEST(ThreadInvarianceTest, CumulativeReleaseLogIdenticalAtAnyThreadCount) {
  const int64_t n = 700, T = 15;
  util::SubstreamRng data_rng(0x11AAu, util::substream::kGeneric);
  auto ds = data::BernoulliIid(n, T, 0.35, &data_rng).value();
  const std::string serial =
      CumulativeLog(ds, T, nullptr, /*use_byte_overload=*/false);
  for (int threads : kThreadCounts) {
    auto pool = MakePool(threads);
    EXPECT_EQ(CumulativeLog(ds, T, pool.get(), false), serial)
        << "threads=" << threads;
  }
  // The byte-per-bit overload is the same machine.
  EXPECT_EQ(CumulativeLog(ds, T, nullptr, /*use_byte_overload=*/true),
            serial);
}

// ---------------------------------------------------------------------------

std::string FixedWindowLog(const data::LongitudinalDataset& ds, int64_t T,
                           int k, util::ThreadPool* pool) {
  FixedWindowSynthesizer::Options opt;
  opt.horizon = T;
  opt.window_k = k;
  opt.rho = 0.25;
  opt.pool = pool;
  opt.seed = 0xF00Du;
  auto synth = FixedWindowSynthesizer::Create(opt).value();
  std::ostringstream log;
  for (int64_t t = 1; t <= T; ++t) {
    EXPECT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    if (!synth->has_release()) continue;
    AppendRow("histogram", t, synth->SyntheticHistogram(), &log);
  }
  log << "clamps=" << synth->stats().negative_clamps
      << " draws=" << synth->stats().rounding_draws << "\n";
  const auto& cohort = synth->cohort();
  for (int64_t r = 0; r < cohort.num_records(); ++r) {
    for (int64_t t = 1; t <= cohort.rounds(); ++t) log << cohort.Bit(r, t);
    log << "\n";
  }
  return log.str();
}

TEST(ThreadInvarianceTest, FixedWindowReleaseLogIdenticalAtAnyThreadCount) {
  const int64_t n = 900, T = 13;
  const int k = 3;
  util::SubstreamRng data_rng(0x22BBu, util::substream::kGeneric);
  auto ds = data::BernoulliIid(n, T, 0.3, &data_rng).value();
  const std::string serial = FixedWindowLog(ds, T, k, nullptr);
  for (int threads : kThreadCounts) {
    auto pool = MakePool(threads);
    EXPECT_EQ(FixedWindowLog(ds, T, k, pool.get()), serial)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------

std::string CategoricalLog(const std::vector<std::vector<uint8_t>>& rounds,
                           int64_t T, int k, int A, util::ThreadPool* pool) {
  CategoricalWindowSynthesizer::Options opt;
  opt.horizon = T;
  opt.window_k = k;
  opt.alphabet = A;
  opt.rho = 0.25;
  opt.pool = pool;
  opt.seed = 0xCA7Eu;
  auto synth = CategoricalWindowSynthesizer::Create(opt).value();
  std::ostringstream log;
  for (int64_t t = 1; t <= T; ++t) {
    EXPECT_TRUE(
        synth->ObserveRound(rounds[static_cast<size_t>(t - 1)]).ok());
    if (!synth->has_release()) continue;
    AppendRow("histogram", t, synth->SyntheticHistogram(), &log);
  }
  for (int64_t r = 0; r < synth->synthetic_population(); ++r) {
    for (int64_t t = 1; t <= synth->t(); ++t) log << synth->Symbol(r, t);
    log << "\n";
  }
  return log.str();
}

TEST(ThreadInvarianceTest, CategoricalReleaseLogIdenticalAtAnyThreadCount) {
  const int64_t n = 800, T = 9;
  const int k = 2, A = 3;
  util::SubstreamRng data_rng(0x33CCu, util::substream::kGeneric);
  std::vector<std::vector<uint8_t>> rounds(static_cast<size_t>(T));
  for (auto& round : rounds) {
    round.resize(static_cast<size_t>(n));
    for (auto& s : round) {
      s = static_cast<uint8_t>(
          data_rng.UniformInt(static_cast<uint64_t>(A)));
    }
  }
  const std::string serial = CategoricalLog(rounds, T, k, A, nullptr);
  for (int threads : kThreadCounts) {
    auto pool = MakePool(threads);
    EXPECT_EQ(CategoricalLog(rounds, T, k, A, pool.get()), serial)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------

TEST(ThreadInvarianceTest, PopulationSmallerThanShardCount) {
  // n = 3 with an 8-lane pool leaves most shards empty; the run must still
  // match serial exactly (and not crash on empty ranges).
  const int64_t n = 3, T = 6;
  util::SubstreamRng data_rng(0x44DDu, util::substream::kGeneric);
  auto ds = data::BernoulliIid(n, T, 0.5, &data_rng).value();
  const std::string serial =
      CumulativeLog(ds, T, nullptr, /*use_byte_overload=*/false);
  auto pool = MakePool(8);
  EXPECT_EQ(CumulativeLog(ds, T, pool.get(), false), serial);
}

}  // namespace
}  // namespace core
}  // namespace longdp
