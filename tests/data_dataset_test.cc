#include "data/longitudinal_dataset.h"

#include <gtest/gtest.h>

#include "util/substream.h"

namespace longdp {
namespace data {
namespace {

LongitudinalDataset MakeSmall() {
  // 4 users x 5 rounds:
  //   u0: 1 1 1 1 1
  //   u1: 0 1 0 1 0
  //   u2: 0 0 0 0 0
  //   u3: 1 0 0 1 1
  auto ds = LongitudinalDataset::Create(4, 5).value();
  EXPECT_TRUE(ds.AppendRound({1, 0, 0, 1}).ok());
  EXPECT_TRUE(ds.AppendRound({1, 1, 0, 0}).ok());
  EXPECT_TRUE(ds.AppendRound({1, 0, 0, 0}).ok());
  EXPECT_TRUE(ds.AppendRound({1, 1, 0, 1}).ok());
  EXPECT_TRUE(ds.AppendRound({1, 0, 0, 1}).ok());
  return ds;
}

TEST(DatasetTest, CreateValidates) {
  EXPECT_FALSE(LongitudinalDataset::Create(-1, 5).ok());
  EXPECT_FALSE(LongitudinalDataset::Create(5, 0).ok());
  EXPECT_TRUE(LongitudinalDataset::Create(0, 1).ok());
}

TEST(DatasetTest, AppendRoundValidates) {
  auto ds = LongitudinalDataset::Create(3, 2).value();
  EXPECT_TRUE(ds.AppendRound({0, 1, 0}).ok());
  EXPECT_TRUE(ds.AppendRound({2, 0, 0}).IsInvalidArgument());
  EXPECT_TRUE(ds.AppendRound({0, 1}).IsInvalidArgument());
  EXPECT_TRUE(ds.AppendRound({1, 1, 1}).ok());
  EXPECT_TRUE(ds.AppendRound({0, 0, 0}).IsOutOfRange());
}

TEST(DatasetTest, BitAccess) {
  auto ds = MakeSmall();
  EXPECT_EQ(ds.Bit(0, 1), 1);
  EXPECT_EQ(ds.Bit(1, 1), 0);
  EXPECT_EQ(ds.Bit(1, 2), 1);
  EXPECT_EQ(ds.Bit(3, 5), 1);
  EXPECT_EQ(ds.rounds(), 5);
  EXPECT_EQ(ds.num_users(), 4);
}

TEST(DatasetTest, HammingWeights) {
  auto ds = MakeSmall();
  EXPECT_EQ(ds.HammingWeight(0, 5), 5);
  EXPECT_EQ(ds.HammingWeight(1, 5), 2);
  EXPECT_EQ(ds.HammingWeight(2, 5), 0);
  EXPECT_EQ(ds.HammingWeight(3, 5), 3);
  EXPECT_EQ(ds.HammingWeight(3, 1), 1);
  EXPECT_EQ(ds.HammingWeight(3, 0), 0);
}

TEST(DatasetTest, SuffixPatternOldestFirst) {
  auto ds = MakeSmall();
  // u1 = 0 1 0 1 0; window of 3 ending at t=4 is (0,1,0)... rounds 2..4 =
  // (1,0,1) -> "101" = 0b101.
  EXPECT_EQ(ds.SuffixPattern(1, 4, 3), util::Pattern{0b101});
  // u3 rounds 3..5 = (0,1,1) -> 0b011.
  EXPECT_EQ(ds.SuffixPattern(3, 5, 3), util::Pattern{0b011});
}

TEST(DatasetTest, SuffixPatternPadsBeforeStart) {
  auto ds = MakeSmall();
  // Window of 3 ending at t=1: bits (x^{-1}, x^0, x^1) = (0, 0, x^1).
  EXPECT_EQ(ds.SuffixPattern(0, 1, 3), util::Pattern{0b001});
  EXPECT_EQ(ds.SuffixPattern(2, 1, 3), util::Pattern{0b000});
}

TEST(DatasetTest, WindowHistogramCountsAllUsers) {
  auto ds = MakeSmall();
  auto hist = ds.WindowHistogram(3, 3);
  ASSERT_TRUE(hist.ok());
  int64_t total = 0;
  for (int64_t c : hist.value()) total += c;
  EXPECT_EQ(total, 4);
  // u0 window rounds 1-3 = 111; u1 = 010; u2 = 000; u3 = 100.
  EXPECT_EQ(hist.value()[0b111], 1);
  EXPECT_EQ(hist.value()[0b010], 1);
  EXPECT_EQ(hist.value()[0b000], 1);
  EXPECT_EQ(hist.value()[0b100], 1);
}

TEST(DatasetTest, WindowHistogramValidatesRange) {
  auto ds = MakeSmall();
  EXPECT_FALSE(ds.WindowHistogram(2, 3).ok());  // t < k
  EXPECT_FALSE(ds.WindowHistogram(6, 3).ok());  // t > rounds
  EXPECT_FALSE(ds.WindowHistogram(3, 0).ok());
}

TEST(DatasetTest, CumulativeCounts) {
  auto ds = MakeSmall();
  auto counts = ds.CumulativeCounts(5);
  ASSERT_TRUE(counts.ok());
  // Weights at t=5: 5, 2, 0, 3.
  EXPECT_EQ(counts.value()[0], 4);
  EXPECT_EQ(counts.value()[1], 3);
  EXPECT_EQ(counts.value()[2], 3);
  EXPECT_EQ(counts.value()[3], 2);
  EXPECT_EQ(counts.value()[4], 1);
  EXPECT_EQ(counts.value()[5], 1);
}

TEST(DatasetTest, WeightIncrementsMatchDefinition) {
  auto ds = MakeSmall();
  // Round 4 bits: u0=1 (weight 3->4), u1=1 (1->2), u2=0, u3=1 (1->2).
  auto z = ds.WeightIncrements(4);
  ASSERT_TRUE(z.ok());
  EXPECT_EQ(z.value()[3], 1);  // z_4: one user reached weight 4 (index b-1=3)
  EXPECT_EQ(z.value()[1], 2);  // z_2: two users reached weight 2
  EXPECT_EQ(z.value()[0], 0);
}

TEST(DatasetTest, IncrementsSumToCumulativeProperty) {
  // Property: for every b, sum_{j<=t} z^j_b == S^t_b (the Algorithm 2
  // representation S^t_b = sum z^j_b), on random data.
  util::SubstreamRng rng(42, util::substream::kGeneric);
  const int64_t kN = 200, kT = 10;
  auto ds = LongitudinalDataset::Create(kN, kT).value();
  std::vector<uint8_t> round(kN);
  for (int64_t t = 1; t <= kT; ++t) {
    for (auto& b : round) b = rng.Bernoulli(0.3) ? 1 : 0;
    ASSERT_TRUE(ds.AppendRound(round).ok());
  }
  std::vector<int64_t> running(kT, 0);
  for (int64_t t = 1; t <= kT; ++t) {
    auto z = ds.WeightIncrements(t);
    ASSERT_TRUE(z.ok());
    for (int64_t b = 1; b <= kT; ++b) {
      running[static_cast<size_t>(b - 1)] +=
          z.value()[static_cast<size_t>(b - 1)];
    }
    auto counts = ds.CumulativeCounts(t);
    ASSERT_TRUE(counts.ok());
    for (int64_t b = 1; b <= kT; ++b) {
      EXPECT_EQ(running[static_cast<size_t>(b - 1)],
                counts.value()[static_cast<size_t>(b)])
          << "t=" << t << " b=" << b;
    }
  }
}

TEST(DatasetTest, WindowHistogramMatchesSuffixPatternsProperty) {
  // Property: the histogram at (t, k) recounts SuffixPattern exactly.
  util::SubstreamRng rng(7, util::substream::kGeneric);
  const int64_t kN = 150, kT = 8;
  const int kK = 3;
  auto ds = LongitudinalDataset::Create(kN, kT).value();
  std::vector<uint8_t> round(kN);
  for (int64_t t = 1; t <= kT; ++t) {
    for (auto& b : round) b = rng.Bernoulli(0.5) ? 1 : 0;
    ASSERT_TRUE(ds.AppendRound(round).ok());
  }
  for (int64_t t = kK; t <= kT; ++t) {
    auto hist = ds.WindowHistogram(t, kK).value();
    std::vector<int64_t> expected(util::NumPatterns(kK), 0);
    for (int64_t i = 0; i < kN; ++i) {
      ++expected[ds.SuffixPattern(i, t, kK)];
    }
    EXPECT_EQ(hist, expected) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Bit-packed round representation.

TEST(DatasetTest, RoundViewBitsMatchAppendedBytes) {
  // A population that is not a multiple of 64 exercises the partial last
  // word; random bits exercise every position.
  const int64_t kN = 150, kT = 4;
  util::SubstreamRng rng(0xBEEFu, util::substream::kGeneric);
  auto ds = LongitudinalDataset::Create(kN, kT).value();
  std::vector<std::vector<uint8_t>> rounds;
  std::vector<uint8_t> round(static_cast<size_t>(kN));
  for (int64_t t = 1; t <= kT; ++t) {
    for (auto& b : round) b = rng.Bernoulli(0.4) ? 1 : 0;
    rounds.push_back(round);
    ASSERT_TRUE(ds.AppendRound(round).ok());
  }
  for (int64_t t = 1; t <= kT; ++t) {
    RoundView view = ds.Round(t);
    ASSERT_EQ(view.size(), kN);
    ASSERT_EQ(view.num_words(), static_cast<size_t>((kN + 63) / 64));
    int64_t ones = 0;
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(view.bit(i),
                rounds[static_cast<size_t>(t - 1)][static_cast<size_t>(i)])
          << "t=" << t << " i=" << i;
      EXPECT_EQ(view.bit(i), ds.Bit(i, t));
      ones += view.bit(i);
    }
    EXPECT_EQ(view.CountOnes(), ones) << "t=" << t;
  }
}

TEST(DatasetTest, RoundViewForEachOneVisitsExactlyTheSetBits) {
  const int64_t kN = 200;
  util::SubstreamRng rng(0xFACEu, util::substream::kGeneric);
  auto ds = LongitudinalDataset::Create(kN, 1).value();
  std::vector<uint8_t> round(static_cast<size_t>(kN));
  for (auto& b : round) b = rng.Bernoulli(0.25) ? 1 : 0;
  ASSERT_TRUE(ds.AppendRound(round).ok());

  RoundView view = ds.Round(1);
  std::vector<int64_t> visited;
  view.ForEachOne([&](int64_t i) { visited.push_back(i); });
  std::vector<int64_t> expected;
  for (int64_t i = 0; i < kN; ++i) {
    if (round[static_cast<size_t>(i)]) expected.push_back(i);
  }
  EXPECT_EQ(visited, expected);  // increasing order, every set bit once

  // Range iteration with unaligned bounds (masks on both end words).
  for (auto [lo, hi] : {std::pair<int64_t, int64_t>{3, 197},
                        {63, 65},
                        {64, 128},
                        {100, 100},
                        {0, 200}}) {
    std::vector<int64_t> got;
    view.ForEachOneInRange(lo, hi, [&](int64_t i) { got.push_back(i); });
    std::vector<int64_t> want;
    for (int64_t i = lo; i < hi; ++i) {
      if (round[static_cast<size_t>(i)]) want.push_back(i);
    }
    EXPECT_EQ(got, want) << "range [" << lo << ", " << hi << ")";
  }
}

TEST(DatasetTest, PackedRoundValidatesAndRoundTrips) {
  auto packed = PackedRound::FromBytes({1, 0, 1, 1, 0});
  ASSERT_TRUE(packed.ok());
  RoundView view = packed.value().view();
  EXPECT_EQ(view.size(), 5);
  EXPECT_EQ(view.bit(0), 1);
  EXPECT_EQ(view.bit(1), 0);
  EXPECT_EQ(view.bit(4), 0);
  EXPECT_EQ(view.CountOnes(), 3);

  EXPECT_TRUE(PackedRound::FromBytes({0, 1, 2}).status().IsInvalidArgument());

  // Assign reuses the buffer and handles exact word multiples.
  PackedRound reuse;
  std::vector<uint8_t> full(128, 1);
  ASSERT_TRUE(reuse.Assign(full).ok());
  EXPECT_EQ(reuse.view().CountOnes(), 128);
  ASSERT_TRUE(reuse.Assign({0, 0, 1}).ok());
  EXPECT_EQ(reuse.view().size(), 3);
  EXPECT_EQ(reuse.view().CountOnes(), 1);
}

TEST(DatasetTest, ForEachSuffixPatternMatchesSuffixPattern) {
  // Includes t < k (zero padding before the first round) and a population
  // spanning multiple words.
  const int64_t kN = 130, kT = 6;
  util::SubstreamRng rng(0xABCDu, util::substream::kGeneric);
  auto ds = LongitudinalDataset::Create(kN, kT).value();
  std::vector<uint8_t> round(static_cast<size_t>(kN));
  for (int64_t t = 1; t <= kT; ++t) {
    for (auto& b : round) b = rng.Bernoulli(0.5) ? 1 : 0;
    ASSERT_TRUE(ds.AppendRound(round).ok());
  }
  for (int k : {1, 3, 5}) {
    for (int64_t t = 1; t <= kT; ++t) {
      int64_t calls = 0;
      ds.ForEachSuffixPattern(t, k, [&](int64_t user, util::Pattern p) {
        EXPECT_EQ(p, ds.SuffixPattern(user, t, k))
            << "user=" << user << " t=" << t << " k=" << k;
        EXPECT_EQ(user, calls);  // increasing user order
        ++calls;
      });
      EXPECT_EQ(calls, kN);
    }
  }
}

}  // namespace
}  // namespace data
}  // namespace longdp
