#include "data/generators.h"

#include <gtest/gtest.h>

#include "query/cumulative_query.h"
#include "util/substream.h"
#include "util/thread_pool.h"

namespace longdp {
namespace data {
namespace {

TEST(GeneratorsTest, ExtremeAllOnes) {
  auto ds = ExtremeAllOnes(50, 6).value();
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(ds.HammingWeight(i, 6), 6);
  }
}

TEST(GeneratorsTest, ExtremeAllZeros) {
  auto ds = ExtremeAllZeros(50, 6).value();
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(ds.HammingWeight(i, 6), 0);
  }
}

TEST(GeneratorsTest, BernoulliValidatesP) {
  util::SubstreamRng rng(1, util::substream::kGeneric);
  EXPECT_FALSE(BernoulliIid(10, 3, -0.1, &rng).ok());
  EXPECT_FALSE(BernoulliIid(10, 3, 1.1, &rng).ok());
}

TEST(GeneratorsTest, BernoulliRateClose) {
  util::SubstreamRng rng(2, util::substream::kGeneric);
  auto ds = BernoulliIid(20000, 4, 0.25, &rng).value();
  int64_t ones = 0;
  for (int64_t i = 0; i < ds.num_users(); ++i) {
    ones += ds.HammingWeight(i, 4);
  }
  double rate = static_cast<double>(ones) /
                static_cast<double>(ds.num_users() * 4);
  EXPECT_NEAR(rate, 0.25, 0.01);
}

TEST(GeneratorsTest, MarkovValidation) {
  EXPECT_TRUE(ValidateMarkovParams({0.1, 0.05, 0.3}).ok());
  EXPECT_FALSE(ValidateMarkovParams({-0.1, 0.05, 0.3}).ok());
  EXPECT_FALSE(ValidateMarkovParams({0.1, 1.05, 0.3}).ok());
  EXPECT_FALSE(ValidateMarkovParams({0.1, 0.05, -0.3}).ok());
}

TEST(GeneratorsTest, MarkovAbsorbingStates) {
  util::SubstreamRng rng(3, util::substream::kGeneric);
  // entry=0, exit=0: everyone stays in the initial state forever.
  auto ds = TwoStateMarkov(5000, 8, {0.4, 0.0, 0.0}, &rng).value();
  for (int64_t i = 0; i < ds.num_users(); ++i) {
    int first = ds.Bit(i, 1);
    for (int64_t t = 2; t <= 8; ++t) {
      EXPECT_EQ(ds.Bit(i, t), first) << "user " << i;
    }
  }
}

TEST(GeneratorsTest, MarkovStationaryRate) {
  util::SubstreamRng rng(5, util::substream::kGeneric);
  // Start at the stationary rate entry/(entry+exit) = 0.2; the monthly rate
  // should stay near 0.2 at every t.
  MarkovParams p{0.2, 0.1, 0.4};
  auto ds = TwoStateMarkov(30000, 10, p, &rng).value();
  for (int64_t t = 1; t <= 10; ++t) {
    int64_t ones = 0;
    for (int64_t i = 0; i < ds.num_users(); ++i) ones += ds.Bit(i, t);
    double rate = static_cast<double>(ones) /
                  static_cast<double>(ds.num_users());
    EXPECT_NEAR(rate, 0.2, 0.015) << "t=" << t;
  }
}

TEST(GeneratorsTest, MixtureValidatesShares) {
  util::SubstreamRng rng(7, util::substream::kGeneric);
  std::vector<MixtureComponent> bad = {{0.5, {}}, {0.2, {}}};
  EXPECT_FALSE(SubpopulationMixture(100, 3, bad, &rng).ok());
  EXPECT_FALSE(SubpopulationMixture(100, 3, {}, &rng).ok());
  std::vector<MixtureComponent> negative = {{-0.5, {}}, {1.5, {}}};
  EXPECT_FALSE(SubpopulationMixture(100, 3, negative, &rng).ok());
}

TEST(GeneratorsTest, MixtureComponentsBehaveDistinctly) {
  util::SubstreamRng rng(11, util::substream::kGeneric);
  // Component 0: always-in (share 0.3); component 1: always-out.
  std::vector<MixtureComponent> comps = {
      {0.3, {1.0, 1.0, 0.0}},
      {0.7, {0.0, 0.0, 1.0}},
  };
  auto ds = SubpopulationMixture(1000, 5, comps, &rng).value();
  auto frac =
      query::EvaluateCumulativeOnDataset(ds, 5, 5).value();
  EXPECT_NEAR(frac, 0.3, 0.001);
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  util::SubstreamRng a(13, util::substream::kGeneric);
  util::SubstreamRng b(13, util::substream::kGeneric);
  auto d1 = TwoStateMarkov(100, 6, {0.2, 0.1, 0.3}, &a).value();
  auto d2 = TwoStateMarkov(100, 6, {0.2, 0.1, 0.3}, &b).value();
  for (int64_t i = 0; i < 100; ++i) {
    for (int64_t t = 1; t <= 6; ++t) {
      ASSERT_EQ(d1.Bit(i, t), d2.Bit(i, t));
    }
  }
}

TEST(GeneratorsTest, KeyedOverloadsShardAndScheduleInvariant) {
  // The keyed generators draw user i's round-t randomness from substream
  // (seed, kDataset, t).Leaf(i): the dataset is a pure function of the
  // seed, identical at any thread or shard count.
  const MarkovParams p{0.2, 0.1, 0.3};
  auto serial = TwoStateMarkov(3000, 6, p, uint64_t{12345}).value();
  util::ThreadPool pool_a(2, 4);
  util::ThreadPool pool_b(8, 16);
  auto sharded4 = TwoStateMarkov(3000, 6, p, 12345, &pool_a).value();
  auto sharded16 = TwoStateMarkov(3000, 6, p, 12345, &pool_b).value();
  for (int64_t i = 0; i < 3000; ++i) {
    for (int64_t t = 1; t <= 6; ++t) {
      ASSERT_EQ(serial.Bit(i, t), sharded4.Bit(i, t))
          << "user " << i << " t " << t;
      ASSERT_EQ(serial.Bit(i, t), sharded16.Bit(i, t))
          << "user " << i << " t " << t;
    }
  }
}

TEST(GeneratorsTest, KeyedBernoulliRateAndSeedSensitivity) {
  auto ds = BernoulliIid(20000, 4, 0.25, uint64_t{777}).value();
  int64_t ones = 0;
  for (int64_t i = 0; i < ds.num_users(); ++i) ones += ds.HammingWeight(i, 4);
  double rate = static_cast<double>(ones) /
                static_cast<double>(ds.num_users() * 4);
  EXPECT_NEAR(rate, 0.25, 0.01);
  // A different seed yields a different dataset.
  auto other = BernoulliIid(20000, 4, 0.25, uint64_t{778}).value();
  bool any_diff = false;
  for (int64_t i = 0; i < 20000 && !any_diff; ++i) {
    for (int64_t t = 1; t <= 4; ++t) {
      if (ds.Bit(i, t) != other.Bit(i, t)) { any_diff = true; break; }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorsTest, KeyedMixtureValidatesShares) {
  std::vector<MixtureComponent> bad = {{0.5, {}}, {0.2, {}}};
  EXPECT_FALSE(SubpopulationMixture(100, 3, bad, uint64_t{1}).ok());
  EXPECT_FALSE(SubpopulationMixture(100, 3, {}, uint64_t{1}).ok());
}

// Parameterized sweep over Markov parameter corners.
struct MarkovCase {
  MarkovParams params;
  double expected_rate_t1;
};

class MarkovSweep : public ::testing::TestWithParam<MarkovCase> {};

TEST_P(MarkovSweep, InitialRateMatches) {
  util::SubstreamRng rng(17, util::substream::kGeneric);
  auto ds = TwoStateMarkov(20000, 3, GetParam().params, &rng).value();
  int64_t ones = 0;
  for (int64_t i = 0; i < ds.num_users(); ++i) ones += ds.Bit(i, 1);
  EXPECT_NEAR(static_cast<double>(ones) / 20000.0,
              GetParam().expected_rate_t1, 0.015);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, MarkovSweep,
    ::testing::Values(MarkovCase{{0.0, 0.1, 0.1}, 0.0},
                      MarkovCase{{1.0, 0.1, 0.1}, 1.0},
                      MarkovCase{{0.5, 0.0, 0.0}, 0.5},
                      MarkovCase{{0.1, 0.9, 0.9}, 0.1}));

}  // namespace
}  // namespace data
}  // namespace longdp
