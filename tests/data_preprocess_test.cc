#include "data/sipp_preprocess.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

namespace longdp {
namespace data {
namespace {

SippRawRecord Rec(int64_t hh, int64_t person, int64_t month, double ratio) {
  return SippRawRecord{hh, person, month, ratio};
}

constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();

TEST(PreprocessTest, BinarizesRatioBelowOne) {
  std::vector<SippRawRecord> records;
  for (int64_t m = 1; m <= 3; ++m) {
    records.push_back(Rec(1, 1, m, m == 2 ? 0.8 : 1.5));
  }
  auto result = PreprocessSipp(records, 3).value();
  EXPECT_EQ(result.stats.households_kept, 1);
  EXPECT_EQ(result.dataset.Bit(0, 1), 0);
  EXPECT_EQ(result.dataset.Bit(0, 2), 1);  // ratio 0.8 < 1 -> in poverty
  EXPECT_EQ(result.dataset.Bit(0, 3), 0);
}

TEST(PreprocessTest, RatioExactlyOneIsNotPoverty) {
  std::vector<SippRawRecord> records = {Rec(1, 1, 1, 1.0)};
  auto result = PreprocessSipp(records, 1).value();
  EXPECT_EQ(result.dataset.Bit(0, 1), 0);
}

TEST(PreprocessTest, KeepsOneSeriesPerHousehold) {
  // Household 1 surveyed via two persons; only the first person's series
  // counts (paper step 1).
  std::vector<SippRawRecord> records;
  for (int64_t m = 1; m <= 2; ++m) {
    records.push_back(Rec(1, 101, m, 0.5));  // person 101: in poverty
    records.push_back(Rec(1, 102, m, 2.0));  // person 102: dropped
  }
  auto result = PreprocessSipp(records, 2).value();
  EXPECT_EQ(result.stats.households_kept, 1);
  EXPECT_EQ(result.stats.dropped_extra_person_series, 2);
  EXPECT_EQ(result.dataset.Bit(0, 1), 1);
  EXPECT_EQ(result.dataset.Bit(0, 2), 1);
}

TEST(PreprocessTest, DropsHouseholdsWithMissingValues) {
  std::vector<SippRawRecord> records;
  for (int64_t m = 1; m <= 2; ++m) records.push_back(Rec(1, 1, m, 0.5));
  records.push_back(Rec(2, 1, 1, 0.5));
  records.push_back(Rec(2, 1, 2, kMissing));  // household 2 has a missing
  auto result = PreprocessSipp(records, 2).value();
  EXPECT_EQ(result.stats.households_seen, 2);
  EXPECT_EQ(result.stats.households_kept, 1);
  EXPECT_EQ(result.stats.dropped_missing_value, 1);
  EXPECT_EQ(result.household_ids, (std::vector<int64_t>{1}));
}

TEST(PreprocessTest, DropsIncompleteSeries) {
  std::vector<SippRawRecord> records = {
      Rec(1, 1, 1, 0.5), Rec(1, 1, 2, 0.5), Rec(1, 1, 3, 0.5),
      Rec(2, 1, 1, 0.5), Rec(2, 1, 3, 0.5),  // household 2 misses month 2
  };
  auto result = PreprocessSipp(records, 3).value();
  EXPECT_EQ(result.stats.households_kept, 1);
  EXPECT_EQ(result.stats.dropped_incomplete_series, 1);
}

TEST(PreprocessTest, ToleratesExactDuplicates) {
  std::vector<SippRawRecord> records = {
      Rec(1, 1, 1, 0.5), Rec(1, 1, 1, 0.5),
  };
  auto result = PreprocessSipp(records, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.households_kept, 1);
}

TEST(PreprocessTest, RejectsConflictingDuplicates) {
  std::vector<SippRawRecord> records = {
      Rec(1, 1, 1, 0.5), Rec(1, 1, 1, 2.0),
  };
  EXPECT_TRUE(PreprocessSipp(records, 1).status().IsInvalidArgument());
}

TEST(PreprocessTest, RejectsOutOfRangeMonth) {
  EXPECT_TRUE(
      PreprocessSipp({Rec(1, 1, 13, 0.5)}, 12).status().IsOutOfRange());
  EXPECT_TRUE(
      PreprocessSipp({Rec(1, 1, 0, 0.5)}, 12).status().IsOutOfRange());
}

TEST(PreprocessTest, RecordsOrderIndependence) {
  std::vector<SippRawRecord> fwd = {
      Rec(1, 1, 1, 0.5), Rec(1, 1, 2, 1.5), Rec(1, 1, 3, 0.5),
  };
  std::vector<SippRawRecord> rev(fwd.rbegin(), fwd.rend());
  auto a = PreprocessSipp(fwd, 3).value();
  auto b = PreprocessSipp(rev, 3).value();
  for (int64_t t = 1; t <= 3; ++t) {
    EXPECT_EQ(a.dataset.Bit(0, t), b.dataset.Bit(0, t));
  }
}

TEST(PreprocessTest, EmptyInputYieldsEmptyPanel) {
  auto result = PreprocessSipp({}, 12).value();
  EXPECT_EQ(result.stats.households_kept, 0);
  EXPECT_EQ(result.dataset.num_users(), 0);
  EXPECT_EQ(result.dataset.rounds(), 12);
}

TEST(LoadSippLongCsvTest, ParsesHeaderByName) {
  std::string path = ::testing::TempDir() + "/longdp_sipp_long.csv";
  {
    std::ofstream out(path);
    out << "SSUID,EXTRA,MONTHCODE,PNUM,THINCPOVT2\n";
    out << "11,x,1,1,0.75\n";
    out << "11,x,2,1,\n";       // missing ratio
    out << "12,x,1,2,1.25\n";
  }
  auto records = LoadSippLongCsv(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records.value().size(), 3u);
  EXPECT_EQ(records.value()[0].household_id, 11);
  EXPECT_EQ(records.value()[0].month, 1);
  EXPECT_DOUBLE_EQ(records.value()[0].poverty_ratio, 0.75);
  EXPECT_TRUE(std::isnan(records.value()[1].poverty_ratio));
  EXPECT_EQ(records.value()[2].person_id, 2);
  std::remove(path.c_str());
}

TEST(LoadSippLongCsvTest, RejectsNonNumericFields) {
  // Regression: a garbage SSUID used to strtoll-parse to 0, silently
  // merging unrelated rows into household 0 (one privacy unit).
  const char* kRows[] = {
      "notanid,1,1,0.75",  // garbage household id
      "11,1,1x,0.75",      // trailing garbage person id
      "11,,1,0.75",        // empty month
      "11,1,1,0.75oops",   // trailing garbage ratio
  };
  for (const char* row : kRows) {
    std::string path = ::testing::TempDir() + "/longdp_sipp_badnum.csv";
    {
      std::ofstream out(path);
      out << "SSUID,MONTHCODE,PNUM,THINCPOVT2\n" << row << "\n";
    }
    auto records = LoadSippLongCsv(path);
    EXPECT_TRUE(records.status().IsInvalidArgument())
        << "row '" << row << "' was accepted";
    std::remove(path.c_str());
  }
}

TEST(LoadSippLongCsvTest, RejectsMissingColumns) {
  std::string path = ::testing::TempDir() + "/longdp_sipp_long_bad.csv";
  {
    std::ofstream out(path);
    out << "SSUID,MONTHCODE\n11,1\n";
  }
  EXPECT_TRUE(LoadSippLongCsv(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(PreprocessEndToEndTest, LongCsvThroughPipeline) {
  std::string path = ::testing::TempDir() + "/longdp_sipp_e2e.csv";
  {
    std::ofstream out(path);
    out << "SSUID,PNUM,MONTHCODE,THINCPOVT2\n";
    // Household 1: complete, poverty in month 2 only.
    out << "1,1,1,1.5\n1,1,2,0.4\n1,1,3,1.2\n";
    // Household 2: missing month 2 value.
    out << "2,1,1,0.9\n2,1,2,\n2,1,3,0.9\n";
    // Household 3: complete, never in poverty; second person ignored.
    out << "3,1,1,2.0\n3,1,2,2.0\n3,1,3,2.0\n";
    out << "3,9,1,0.1\n3,9,2,0.1\n3,9,3,0.1\n";
  }
  auto records = LoadSippLongCsv(path).value();
  auto result = PreprocessSipp(records, 3).value();
  EXPECT_EQ(result.stats.households_kept, 2);
  EXPECT_EQ(result.stats.dropped_missing_value, 1);
  EXPECT_EQ(result.stats.dropped_extra_person_series, 3);
  EXPECT_EQ(result.household_ids, (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(result.dataset.Bit(0, 2), 1);
  EXPECT_EQ(result.dataset.HammingWeight(1, 3), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace longdp
