// Million-user generator integrity. The keyed generators are the front
// door of the scale-out path (bench/scaling_users), so this suite pins
// them at n = 1e6 where packing and sharding bugs actually live:
//
//  * packed-word invariants — every round's tail bits past size() are
//    zero (word-level consumers like RoundView::CountOnes rely on it),
//  * per-round popcount totals — the word-popcount count, the per-bit
//    scan, and ForEachOne all agree,
//  * shard invariance — the pooled build is word-identical to the serial
//    build, so the dataset is a pure function of (n, T, params, seed).
//
// Labeled integration: ~1s, also runs under the sanitizer CI jobs.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "data/generators.h"
#include "data/round_view.h"
#include "util/thread_pool.h"

namespace longdp {
namespace data {
namespace {

constexpr int64_t kUsers = 1000000;
constexpr int64_t kHorizon = 12;
constexpr uint64_t kSeed = 0x1A7E5CA1Eu;

MarkovParams ScaleParams() {
  MarkovParams params;
  params.initial_rate = 0.12;
  params.entry_prob = 0.04;
  params.exit_prob = 0.3;
  return params;
}

TEST(DataScaleTest, MillionUserRoundsKeepPackedInvariants) {
  util::ThreadPool pool(8);
  auto ds = TwoStateMarkov(kUsers, kHorizon, ScaleParams(), kSeed, &pool)
                .value();
  ASSERT_EQ(ds.num_users(), kUsers);
  for (int64_t t = 1; t <= kHorizon; ++t) {
    RoundView round = ds.Round(t);
    ASSERT_EQ(round.size(), kUsers);
    // Tail invariant: bits past size() in the last word must be zero.
    const size_t last = round.num_words() - 1;
    const int tail_bits = static_cast<int>(round.size() & 63);
    if (tail_bits != 0) {
      EXPECT_EQ(round.words()[last] >> tail_bits, 0u) << "t=" << t;
    }
    // Popcount totals: word-level, per-bit, and iterator counts agree.
    const int64_t by_words = round.CountOnes();
    int64_t by_bits = 0;
    for (int64_t i = 0; i < kUsers; ++i) by_bits += round.bit(i);
    int64_t by_iter = 0;
    round.ForEachOne([&](int64_t) { ++by_iter; });
    EXPECT_EQ(by_words, by_bits) << "t=" << t;
    EXPECT_EQ(by_words, by_iter) << "t=" << t;
    // A round where nobody (or everybody) is in poverty at n = 1e6 means
    // the generator ignored its parameters.
    EXPECT_GT(by_words, 0) << "t=" << t;
    EXPECT_LT(by_words, kUsers) << "t=" << t;
  }
}

TEST(DataScaleTest, MillionUserPooledBuildMatchesSerialWordForWord) {
  util::ThreadPool pool(8);
  auto pooled =
      TwoStateMarkov(kUsers, kHorizon, ScaleParams(), kSeed, &pool).value();
  auto serial =
      TwoStateMarkov(kUsers, kHorizon, ScaleParams(), kSeed).value();
  for (int64_t t = 1; t <= kHorizon; ++t) {
    RoundView a = pooled.Round(t);
    RoundView b = serial.Round(t);
    ASSERT_EQ(a.num_words(), b.num_words());
    EXPECT_EQ(std::memcmp(a.words(), b.words(),
                          a.num_words() * sizeof(uint64_t)),
              0)
        << "t=" << t;
  }
}

TEST(DataScaleTest, MillionUserMixtureIsSeedPureAcrossGrids) {
  std::vector<MixtureComponent> components(2);
  components[0].share = 0.7;
  components[0].params = ScaleParams();
  components[1].share = 0.3;
  components[1].params.initial_rate = 0.4;
  components[1].params.entry_prob = 0.1;
  components[1].params.exit_prob = 0.15;
  util::ThreadPool wide(8, 16);
  util::ThreadPool narrow(2, 4);
  auto a = SubpopulationMixture(kUsers, kHorizon, components, kSeed, &wide)
               .value();
  auto b = SubpopulationMixture(kUsers, kHorizon, components, kSeed, &narrow)
               .value();
  for (int64_t t = 1; t <= kHorizon; ++t) {
    RoundView va = a.Round(t);
    RoundView vb = b.Round(t);
    ASSERT_EQ(va.num_words(), vb.num_words());
    EXPECT_EQ(std::memcmp(va.words(), vb.words(),
                          va.num_words() * sizeof(uint64_t)),
              0)
        << "t=" << t;
  }
}

}  // namespace
}  // namespace data
}  // namespace longdp
