#include "data/sipp_simulator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/sipp_csv.h"
#include "query/cumulative_query.h"
#include "query/window_query.h"
#include "util/substream.h"
#include "util/thread_pool.h"

namespace longdp {
namespace data {
namespace {

TEST(SippSimulatorTest, DefaultDimensionsMatchPaper) {
  util::SubstreamRng rng(1, util::substream::kGeneric);
  auto ds = SimulateSippDefault(&rng).value();
  EXPECT_EQ(ds.num_users(), 23374);
  EXPECT_EQ(ds.rounds(), 12);
}

TEST(SippSimulatorTest, KeyedOverloadMatchesDimensionsAndIsSeedPure) {
  util::ThreadPool pool(4, 8);
  auto serial = SimulateSippDefault(uint64_t{20240512}).value();
  auto sharded = SimulateSippDefault(20240512, &pool).value();
  EXPECT_EQ(serial.num_users(), 23374);
  EXPECT_EQ(serial.rounds(), 12);
  for (int64_t i = 0; i < serial.num_users(); i += 97) {
    for (int64_t t = 1; t <= 12; ++t) {
      ASSERT_EQ(serial.Bit(i, t), sharded.Bit(i, t))
          << "user " << i << " t " << t;
    }
  }
}

TEST(SippSimulatorTest, ValidatesChronicShare) {
  util::SubstreamRng rng(2, util::substream::kGeneric);
  SippOptions opt;
  opt.chronic_share = 1.5;
  EXPECT_FALSE(SimulateSipp(opt, &rng).ok());
}

TEST(SippSimulatorTest, CalibrationMatchesPaperGroundTruth) {
  // The quarterly statistics the paper's Figure 1 plots: roughly 0.15 /
  // 0.10 / 0.09 / 0.07 for the four query types, and Fig 2's ~0.10 for
  // ">= 3 months by December". Generous tolerances — the bands, not the
  // digits, are what the reproduction needs.
  util::SubstreamRng rng(3, util::substream::kGeneric);
  auto ds = SimulateSippDefault(&rng).value();

  auto at_least_1 = query::MakeAtLeastOnes(3, 1);
  auto at_least_2 = query::MakeAtLeastOnes(3, 2);
  auto consec_2 = query::MakeConsecutiveOnes(3, 2);
  auto all_3 = query::MakeAllOnes(3);

  for (int64_t quarter_end : {3, 6, 9, 12}) {
    double q1 = query::EvaluateOnDataset(*at_least_1, ds, quarter_end).value();
    double q2 = query::EvaluateOnDataset(*at_least_2, ds, quarter_end).value();
    double qc = query::EvaluateOnDataset(*consec_2, ds, quarter_end).value();
    double q3 = query::EvaluateOnDataset(*all_3, ds, quarter_end).value();
    EXPECT_NEAR(q1, 0.15, 0.04) << "quarter end " << quarter_end;
    EXPECT_NEAR(q2, 0.10, 0.03);
    EXPECT_NEAR(qc, 0.09, 0.03);
    EXPECT_NEAR(q3, 0.07, 0.025);
    // Logical ordering of the four query types.
    EXPECT_GE(q1, q2);
    EXPECT_GE(q2, qc);
    EXPECT_GE(qc, q3);
  }

  double dec_3mo = query::EvaluateCumulativeOnDataset(ds, 12, 3).value();
  EXPECT_NEAR(dec_3mo, 0.10, 0.035);
}

TEST(SippSimulatorTest, CumulativeSeriesShapeMatchesFig2) {
  // Zero for t < 3, jumps at t = 3, grows slowly afterwards.
  util::SubstreamRng rng(5, util::substream::kGeneric);
  auto ds = SimulateSippDefault(&rng).value();
  EXPECT_EQ(query::EvaluateCumulativeOnDataset(ds, 1, 3).value(), 0.0);
  EXPECT_EQ(query::EvaluateCumulativeOnDataset(ds, 2, 3).value(), 0.0);
  double prev = 0.0;
  for (int64_t t = 3; t <= 12; ++t) {
    double v = query::EvaluateCumulativeOnDataset(ds, t, 3).value();
    EXPECT_GE(v, prev) << "t=" << t;
    prev = v;
  }
  EXPECT_GT(query::EvaluateCumulativeOnDataset(ds, 3, 3).value(), 0.04);
}

TEST(SippCsvTest, RoundTripPreservesBits) {
  util::SubstreamRng rng(7, util::substream::kGeneric);
  SippOptions opt;
  opt.num_households = 200;
  auto ds = SimulateSipp(opt, &rng).value();
  std::string path = ::testing::TempDir() + "/longdp_sipp_roundtrip.csv";
  ASSERT_TRUE(WriteSippBitsCsv(ds, path).ok());
  auto loaded = LoadSippBitsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().num_users(), 200);
  ASSERT_EQ(loaded.value().rounds(), 12);
  for (int64_t i = 0; i < 200; ++i) {
    for (int64_t t = 1; t <= 12; ++t) {
      ASSERT_EQ(loaded.value().Bit(i, t), ds.Bit(i, t));
    }
  }
  std::remove(path.c_str());
}

TEST(SippCsvTest, FullDeviceWriteSurfacesAsIOError) {
  // Regression: WriteSippBitsCsv checked out.good() without flushing, so a
  // full disk was reported as OK while the panel never reached it.
  if (!std::ifstream("/dev/full").good()) {
    GTEST_SKIP() << "/dev/full not available";
  }
  util::SubstreamRng rng(7, util::substream::kGeneric);
  SippOptions opt;
  opt.num_households = 50;
  auto ds = SimulateSipp(opt, &rng).value();
  EXPECT_TRUE(WriteSippBitsCsv(ds, "/dev/full").IsIOError());
}

TEST(SippCsvTest, LoadsHeaderlessNoIdFile) {
  std::string path = ::testing::TempDir() + "/longdp_sipp_plain.csv";
  {
    std::ofstream out(path);
    out << "1,0,1\n0,0,0\n1,1,1\n";
  }
  auto ds = LoadSippBitsCsv(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds.value().num_users(), 3);
  EXPECT_EQ(ds.value().rounds(), 3);
  EXPECT_EQ(ds.value().Bit(0, 1), 1);
  EXPECT_EQ(ds.value().Bit(1, 2), 0);
  EXPECT_EQ(ds.value().Bit(2, 3), 1);
  std::remove(path.c_str());
}

TEST(SippCsvTest, HeaderWithNumericColumnNamesIsSkipped) {
  // "id,1,2,3": one non-numeric field is enough to mark the header even
  // when the period columns are named by bare numbers.
  std::string path = ::testing::TempDir() + "/longdp_sipp_numhdr.csv";
  {
    std::ofstream out(path);
    out << "id,1,2,3\n7,1,0,1\n9,0,0,0\n";
  }
  auto ds = LoadSippBitsCsv(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds.value().num_users(), 2);
  EXPECT_EQ(ds.value().rounds(), 3);
  EXPECT_EQ(ds.value().Bit(0, 1), 1);
  EXPECT_EQ(ds.value().Bit(0, 3), 1);
  EXPECT_EQ(ds.value().Bit(1, 2), 0);
  std::remove(path.c_str());
}

TEST(SippCsvTest, DashJoinedHeaderNamesAreNotNumeric) {
  // Regression: "2024-01" style names are digits and dashes only, which
  // the old any-mix check classified as numeric — the header row was then
  // ingested as data and the load failed on "non-binary value '2024-01'".
  std::string path = ::testing::TempDir() + "/longdp_sipp_datehdr.csv";
  {
    std::ofstream out(path);
    out << "2024-01,2024-02,2024-03\n1,0,1\n0,1,0\n";
  }
  auto ds = LoadSippBitsCsv(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds.value().num_users(), 2);
  EXPECT_EQ(ds.value().rounds(), 3);
  EXPECT_EQ(ds.value().Bit(0, 1), 1);
  EXPECT_EQ(ds.value().Bit(1, 2), 1);
  std::remove(path.c_str());
}

TEST(SippCsvTest, LoneDashAndDotFieldsMarkAHeader) {
  // Regression: "-" and "." contain no digit, yet the old check called
  // them numeric; a header row made only of such placeholders was ingested
  // as data instead of being skipped.
  std::string path = ::testing::TempDir() + "/longdp_sipp_punct.csv";
  {
    std::ofstream out(path);
    out << "-,.\n1,0\n0,1\n";
  }
  auto ds = LoadSippBitsCsv(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds.value().num_users(), 2);
  EXPECT_EQ(ds.value().rounds(), 2);
  EXPECT_EQ(ds.value().Bit(0, 1), 1);
  EXPECT_EQ(ds.value().Bit(1, 2), 1);
  std::remove(path.c_str());
}

TEST(SippCsvTest, AllBitRowsStillLoadHeaderless) {
  // Tightening the numeric check must not start misreading a headerless
  // all-bits file (or decimal data like "1.5", which stays numeric) as
  // having a header.
  std::string path = ::testing::TempDir() + "/longdp_sipp_nohdr2.csv";
  {
    std::ofstream out(path);
    out << "0,1\n1,1\n";
  }
  auto ds = LoadSippBitsCsv(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds.value().num_users(), 2);
  EXPECT_EQ(ds.value().rounds(), 2);
  EXPECT_EQ(ds.value().Bit(0, 2), 1);
  std::remove(path.c_str());
}

TEST(SippCsvTest, RejectsMalformedRows) {
  std::string path = ::testing::TempDir() + "/longdp_sipp_bad.csv";
  {
    std::ofstream out(path);
    out << "1,0,1\n0,0\n";  // ragged row
  }
  EXPECT_FALSE(LoadSippBitsCsv(path).ok());
  {
    std::ofstream out(path);
    out << "1,0,2\n";  // non-binary value
  }
  EXPECT_FALSE(LoadSippBitsCsv(path).ok());
  std::remove(path.c_str());
}

TEST(SippCsvTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      LoadSippBitsCsv("/no/such/sipp.csv").status().IsIOError());
}

}  // namespace
}  // namespace data
}  // namespace longdp
