#include "dp/discrete_gaussian.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/mathutil.h"
#include "util/substream.h"

namespace longdp {
namespace dp {
namespace {

TEST(BernoulliExpNegTest, GammaZeroAlwaysTrue) {
  util::SubstreamRng rng(1, util::substream::kGeneric);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(SampleBernoulliExpNeg(0.0, &rng));
    EXPECT_TRUE(SampleBernoulliExpNeg(-1.0, &rng));
  }
}

TEST(BernoulliExpNegTest, MatchesExpMinusGammaSmall) {
  util::SubstreamRng rng(2, util::substream::kGeneric);
  const int kDraws = 200000;
  for (double gamma : {0.1, 0.5, 1.0}) {
    int successes = 0;
    for (int i = 0; i < kDraws; ++i) {
      if (SampleBernoulliExpNeg(gamma, &rng)) ++successes;
    }
    double p_hat = static_cast<double>(successes) / kDraws;
    EXPECT_NEAR(p_hat, std::exp(-gamma), 0.005) << "gamma=" << gamma;
  }
}

TEST(BernoulliExpNegTest, MatchesExpMinusGammaLarge) {
  util::SubstreamRng rng(3, util::substream::kGeneric);
  const int kDraws = 200000;
  for (double gamma : {1.5, 2.3, 4.0}) {
    int successes = 0;
    for (int i = 0; i < kDraws; ++i) {
      if (SampleBernoulliExpNeg(gamma, &rng)) ++successes;
    }
    double p_hat = static_cast<double>(successes) / kDraws;
    EXPECT_NEAR(p_hat, std::exp(-gamma), 0.005) << "gamma=" << gamma;
  }
}

TEST(DiscreteLaplaceTest, SymmetricZeroMean) {
  util::SubstreamRng rng(5, util::substream::kGeneric);
  const int kDraws = 100000;
  for (double s : {0.7, 1.0, 3.3, 10.0}) {
    util::MomentAccumulator acc;
    for (int i = 0; i < kDraws; ++i) {
      acc.Add(static_cast<double>(SampleDiscreteLaplace(s, &rng)));
    }
    // Var = 2 e^{1/s} / (e^{1/s} - 1)^2; stderr of mean = sqrt(var/n).
    double e = std::exp(1.0 / s);
    double var = 2.0 * e / ((e - 1.0) * (e - 1.0));
    EXPECT_NEAR(acc.mean(), 0.0, 5.0 * std::sqrt(var / kDraws))
        << "s=" << s;
    EXPECT_NEAR(acc.variance(), var, 0.1 * var) << "s=" << s;
  }
}

TEST(DiscreteLaplaceTest, GeometricTailRatio) {
  // Pr[X = x+1] / Pr[X = x] = exp(-1/s) for x >= 0.
  util::SubstreamRng rng(7, util::substream::kGeneric);
  const double s = 2.0;
  const int kDraws = 300000;
  std::map<int64_t, int> hist;
  for (int i = 0; i < kDraws; ++i) ++hist[SampleDiscreteLaplace(s, &rng)];
  double expected_ratio = std::exp(-1.0 / s);
  for (int64_t x = 0; x <= 2; ++x) {
    ASSERT_GT(hist[x], 1000);
    double ratio = static_cast<double>(hist[x + 1]) / hist[x];
    EXPECT_NEAR(ratio, expected_ratio, 0.05) << "x=" << x;
  }
}

TEST(DiscreteGaussianTest, ZeroSigmaIsDeterministicZero) {
  util::SubstreamRng rng(11, util::substream::kGeneric);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleDiscreteGaussian(0.0, &rng), 0);
  }
}

TEST(DiscreteGaussianTest, MeanAndVarianceMatchTheory) {
  util::SubstreamRng rng(13, util::substream::kGeneric);
  const int kDraws = 200000;
  for (double sigma2 : {0.5, 1.0, 4.0, 25.0, 400.0}) {
    util::MomentAccumulator acc;
    for (int i = 0; i < kDraws; ++i) {
      acc.Add(static_cast<double>(SampleDiscreteGaussian(sigma2, &rng)));
    }
    EXPECT_NEAR(acc.mean(), 0.0, 5.0 * std::sqrt(sigma2 / kDraws))
        << "sigma2=" << sigma2;
    // Discrete Gaussian variance is at most sigma2 and close to it for
    // sigma2 >= 1 (CKS'20); allow 10% relative + small absolute slack.
    EXPECT_LT(acc.variance(), sigma2 * 1.05 + 0.05) << "sigma2=" << sigma2;
    EXPECT_GT(acc.variance(), sigma2 * 0.80 - 0.05) << "sigma2=" << sigma2;
  }
}

TEST(DiscreteGaussianTest, PmfNormalizes) {
  for (double sigma2 : {0.5, 2.0, 10.0}) {
    double total = 0.0;
    int64_t radius =
        static_cast<int64_t>(std::ceil(25.0 * std::sqrt(sigma2))) + 1;
    for (int64_t x = -radius; x <= radius; ++x) {
      total += DiscreteGaussianPmf(x, sigma2);
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "sigma2=" << sigma2;
  }
}

TEST(DiscreteGaussianTest, PmfSymmetric) {
  for (int64_t x = 0; x <= 5; ++x) {
    EXPECT_DOUBLE_EQ(DiscreteGaussianPmf(x, 3.0),
                     DiscreteGaussianPmf(-x, 3.0));
  }
}

TEST(DiscreteGaussianTest, ChiSquareGoodnessOfFit) {
  // Compare empirical frequencies against the exact pmf over a central
  // window; a crude chi-square with a generous threshold catches gross
  // sampler bugs without flaking.
  util::SubstreamRng rng(17, util::substream::kGeneric);
  const double sigma2 = 4.0;
  const int kDraws = 200000;
  std::map<int64_t, int> hist;
  for (int i = 0; i < kDraws; ++i) ++hist[SampleDiscreteGaussian(sigma2, &rng)];
  double chi2 = 0.0;
  int cells = 0;
  for (int64_t x = -5; x <= 5; ++x) {
    double expected = DiscreteGaussianPmf(x, sigma2) * kDraws;
    ASSERT_GT(expected, 50.0);
    double observed = static_cast<double>(hist[x]);
    chi2 += (observed - expected) * (observed - expected) / expected;
    ++cells;
  }
  // 11 cells -> 10 dof; 99.9th percentile ~ 29.6. Use 40 for slack.
  EXPECT_LT(chi2, 40.0) << "cells=" << cells;
}

TEST(DiscreteGaussianTest, TailBoundHolds) {
  util::SubstreamRng rng(19, util::substream::kGeneric);
  const double sigma2 = 9.0;
  const int kDraws = 100000;
  const double lambda = 9.0;  // 3 sigma
  int exceed = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (SampleDiscreteGaussian(sigma2, &rng) >= lambda) ++exceed;
  }
  double bound = DiscreteGaussianTailBound(lambda, sigma2);
  EXPECT_LE(static_cast<double>(exceed) / kDraws, bound * 1.5 + 1e-3);
}

TEST(DiscreteGaussianTest, TailBoundEdgeCases) {
  EXPECT_EQ(DiscreteGaussianTailBound(1.0, 0.0), 0.0);
  EXPECT_EQ(DiscreteGaussianTailBound(-1.0, 0.0), 1.0);
  EXPECT_EQ(DiscreteGaussianTailBound(0.0, 2.0), 1.0);
  EXPECT_LT(DiscreteGaussianTailBound(10.0, 1.0), 1e-20);
}

TEST(DiscreteGaussianTest, DeterministicGivenSeed) {
  util::SubstreamRng a(23, util::substream::kGeneric);
  util::SubstreamRng b(23, util::substream::kGeneric);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(SampleDiscreteGaussian(7.0, &a),
              SampleDiscreteGaussian(7.0, &b));
  }
}

// Parameterized sweep: the sampler stays well-behaved across the sigma
// range the experiments actually use (sigma^2 = (T-k+1)/(2 rho) for rho in
// {0.001..0.05}, T=12 -> sigma^2 in [100, 5000]).
class DiscreteGaussianSweep : public ::testing::TestWithParam<double> {};

TEST_P(DiscreteGaussianSweep, ExperimentRegimeMoments) {
  const double sigma2 = GetParam();
  util::SubstreamRng rng(static_cast<uint64_t>(sigma2 * 1000) + 31, util::substream::kGeneric);
  const int kDraws = 30000;
  util::MomentAccumulator acc;
  for (int i = 0; i < kDraws; ++i) {
    acc.Add(static_cast<double>(SampleDiscreteGaussian(sigma2, &rng)));
  }
  EXPECT_NEAR(acc.mean(), 0.0, 5.0 * std::sqrt(sigma2 / kDraws));
  EXPECT_NEAR(acc.variance(), sigma2, 0.1 * sigma2);
}

INSTANTIATE_TEST_SUITE_P(ExperimentSigmas, DiscreteGaussianSweep,
                         ::testing::Values(100.0, 500.0, 1000.0, 5000.0));

}  // namespace
}  // namespace dp
}  // namespace longdp
