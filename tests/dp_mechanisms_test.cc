#include "dp/mechanisms.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dp/accountant.h"
#include "util/mathutil.h"
#include "util/substream.h"

namespace longdp {
namespace dp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(CalibrationTest, GaussianSigmaForZCdp) {
  auto r = GaussianSigma2ForZCdp(0.5, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 1.0);  // 1 / (2 * 0.5)
  r = GaussianSigma2ForZCdp(0.005, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 100.0);
  r = GaussianSigma2ForZCdp(0.5, 2.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 4.0);
}

TEST(CalibrationTest, InfiniteRhoMeansZeroNoise) {
  auto r = GaussianSigma2ForZCdp(kInf, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0.0);
}

TEST(CalibrationTest, RejectsBadArgs) {
  EXPECT_FALSE(GaussianSigma2ForZCdp(0.0, 1.0).ok());
  EXPECT_FALSE(GaussianSigma2ForZCdp(-1.0, 1.0).ok());
  EXPECT_FALSE(GaussianSigma2ForZCdp(0.5, -1.0).ok());
}

TEST(CalibrationTest, CostInvertsCalibration) {
  double sigma2 = GaussianSigma2ForZCdp(0.02, 1.0).value();
  EXPECT_NEAR(ZCdpCostOfGaussian(sigma2, 1.0), 0.02, 1e-12);
  EXPECT_EQ(ZCdpCostOfGaussian(0.0, 1.0), kInf);
  EXPECT_EQ(ZCdpCostOfGaussian(0.0, 0.0), 0.0);
}

TEST(CalibrationTest, ZCdpToApproxDp) {
  // epsilon = rho + 2 sqrt(rho ln(1/delta)).
  double rho = 0.005, delta = 1e-6;
  double expected = rho + 2.0 * std::sqrt(rho * std::log(1.0 / delta));
  EXPECT_NEAR(ZCdpToApproxDpEpsilon(rho, delta), expected, 1e-12);
  EXPECT_EQ(ZCdpToApproxDpEpsilon(0.0, delta), 0.0);
  EXPECT_EQ(ZCdpToApproxDpEpsilon(rho, 0.0), kInf);
}

TEST(NoisyCountTest, ZeroNoiseIsExact) {
  NoisyCountMechanism mech(0.0);
  util::SubstreamRng rng(1, util::substream::kGeneric);
  EXPECT_EQ(mech.Release(1234, &rng), 1234);
}

TEST(NoisyCountTest, NoiseHasCalibratedSpread) {
  NoisyCountMechanism mech(/*sigma2=*/25.0);
  util::SubstreamRng rng(2, util::substream::kGeneric);
  util::MomentAccumulator acc;
  for (int i = 0; i < 50000; ++i) {
    acc.Add(static_cast<double>(mech.Release(100, &rng) - 100));
  }
  EXPECT_NEAR(acc.mean(), 0.0, 0.2);
  EXPECT_NEAR(acc.variance(), 25.0, 2.5);
}

TEST(NoisyHistogramTest, ZeroNoiseAppliesOffsetOnly) {
  NoisyHistogramMechanism mech(0.0);
  util::SubstreamRng rng(3, util::substream::kGeneric);
  auto out = mech.Release({1, 2, 3}, /*offset=*/10, &rng);
  EXPECT_EQ(out, (std::vector<int64_t>{11, 12, 13}));
}

TEST(NoisyHistogramTest, IndependentNoisePerBin) {
  NoisyHistogramMechanism mech(100.0);
  util::SubstreamRng rng(4, util::substream::kGeneric);
  auto out = mech.Release(std::vector<int64_t>(64, 0), 0, &rng);
  // All-equal output across 64 bins would indicate broken noise reuse.
  bool all_equal = true;
  for (size_t i = 1; i < out.size(); ++i) {
    if (out[i] != out[0]) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(AccountantTest, ChargesAccumulate) {
  ZCdpAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge(0.25, "a").ok());
  EXPECT_TRUE(acc.Charge(0.25, "b").ok());
  EXPECT_DOUBLE_EQ(acc.spent(), 0.5);
  EXPECT_DOUBLE_EQ(acc.remaining(), 0.5);
  EXPECT_EQ(acc.ledger().size(), 2u);
  EXPECT_EQ(acc.ledger()[0].label, "a");
}

TEST(AccountantTest, RejectsOverBudget) {
  ZCdpAccountant acc(0.1);
  EXPECT_TRUE(acc.Charge(0.1, "all").ok());
  Status st = acc.Charge(0.0001, "extra");
  EXPECT_TRUE(st.IsResourceExhausted());
  // The failed charge must not mutate the ledger.
  EXPECT_DOUBLE_EQ(acc.spent(), 0.1);
  EXPECT_EQ(acc.ledger().size(), 1u);
}

TEST(AccountantTest, RejectsNegativeCharge) {
  ZCdpAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge(-0.1, "bad").IsInvalidArgument());
}

TEST(AccountantTest, InfiniteBudgetNeverExhausts) {
  ZCdpAccountant acc(kInf);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(acc.Charge(1e6, "big").ok());
  }
  EXPECT_EQ(acc.remaining(), kInf);
}

TEST(AccountantTest, ToleratesSplitRounding) {
  // Splitting a budget 1000 ways and re-summing must not spuriously fail.
  ZCdpAccountant acc(0.005);
  double share = 0.005 / 1000.0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(acc.Charge(share, "share").ok()) << "i=" << i;
  }
  EXPECT_NEAR(acc.spent(), 0.005, 1e-12);
}

}  // namespace
}  // namespace dp
}  // namespace longdp
