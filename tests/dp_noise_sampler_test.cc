// Stream-compatibility tests for dp::NoiseSampler: the batched sampler
// must consume exactly the words the one-shot dp:: functions consume, from
// the same cursor positions, and produce the same values — that contract
// (dp/noise_sampler.h) is what lets every call site switch to batching
// with no golden re-record. Also pins the hardened degenerate-parameter
// contract of both the batched and the one-shot samplers.

#include "dp/noise_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "dp/discrete_gaussian.h"
#include "util/substream.h"
#include "util/thread_pool.h"

namespace longdp {
namespace dp {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(NoiseSamplerTest, GaussianDrawMatchesOneShotWordForWord) {
  for (double sigma2 : {0.5, 1.0, 7.0, 25.0, 900.0, 6000.0}) {
    const NoiseSampler sampler = NoiseSampler::Gaussian(sigma2);
    util::SubstreamRng batched(0x6A55u, util::substream::kGeneric);
    util::SubstreamRng serial(0x6A55u, util::substream::kGeneric);
    for (int i = 0; i < 300; ++i) {
      EXPECT_EQ(sampler.Draw(&batched),
                SampleDiscreteGaussian(sigma2, &serial))
          << "sigma2=" << sigma2 << " i=" << i;
      // Same words consumed: the cursors must track exactly, draw by draw.
      ASSERT_EQ(batched.cursor(), serial.cursor())
          << "sigma2=" << sigma2 << " i=" << i;
    }
  }
}

TEST(NoiseSamplerTest, LaplaceDrawMatchesOneShotWordForWord) {
  for (double s : {0.7, 1.0, 3.3, 10.0}) {
    const NoiseSampler sampler = NoiseSampler::Laplace(s);
    util::SubstreamRng batched(0x1AB5u, util::substream::kGeneric);
    util::SubstreamRng serial(0x1AB5u, util::substream::kGeneric);
    for (int i = 0; i < 300; ++i) {
      EXPECT_EQ(sampler.Draw(&batched), SampleDiscreteLaplace(s, &serial))
          << "s=" << s << " i=" << i;
      ASSERT_EQ(batched.cursor(), serial.cursor()) << "s=" << s << " i=" << i;
    }
  }
}

TEST(NoiseSamplerTest, FillLeavesMatchesPerLeafOneShot) {
  const double sigma2 = 49.0;
  const NoiseSampler sampler = NoiseSampler::Gaussian(sigma2);
  const util::SubstreamRng parent(0xF111u, util::substream::kHistogramNoise);
  const size_t count = 257;
  std::vector<int64_t> out(count);
  sampler.FillLeaves(parent, count, out.data());
  for (size_t i = 0; i < count; ++i) {
    util::SubstreamRng leaf = parent.Leaf(static_cast<uint64_t>(i));
    EXPECT_EQ(out[i], SampleDiscreteGaussian(sigma2, &leaf)) << "i=" << i;
  }
}

TEST(NoiseSamplerTest, FillLeavesShardingIsValueInvariant) {
  const NoiseSampler sampler = NoiseSampler::Gaussian(900.0);
  const util::SubstreamRng parent(0x5EEDu, util::substream::kHistogramNoise);
  const size_t count = 1000;
  std::vector<int64_t> serial_out(count), pooled_out(count);
  sampler.FillLeaves(parent, count, serial_out.data());
  util::ThreadPool pool(4);
  sampler.FillLeaves(parent, count, pooled_out.data(), &pool);
  EXPECT_EQ(serial_out, pooled_out);
}

TEST(NoiseSamplerTest, DegenerateParamsDrawZeroWithoutConsumingWords) {
  for (double param : {0.0, -3.5, kNan}) {
    for (const NoiseSampler& sampler :
         {NoiseSampler::Gaussian(param), NoiseSampler::Laplace(param)}) {
      EXPECT_TRUE(sampler.degenerate());
      util::SubstreamRng rng(0xDE6Eu, util::substream::kGeneric);
      const uint64_t cursor_before = rng.cursor();
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(sampler.Draw(&rng), 0);
      }
      EXPECT_EQ(rng.cursor(), cursor_before);
      std::vector<int64_t> out(64, -1);
      sampler.FillLeaves(rng, out.size(), out.data());
      for (int64_t v : out) EXPECT_EQ(v, 0);
    }
  }
}

TEST(NoiseSamplerTest, PositiveParamsAreNotDegenerate) {
  EXPECT_FALSE(NoiseSampler::Gaussian(1e-6).degenerate());
  EXPECT_FALSE(NoiseSampler::Laplace(1e-6).degenerate());
}

// Regression tests for the hardened one-shot guards: a non-positive or NaN
// scale is a documented no-op (returns 0, consumes no words) rather than
// undefined behavior, in every build mode.
TEST(DpEdgeCaseTest, OneShotGuardsReturnZeroAndConsumeNothing) {
  for (double param : {0.0, -1.0, kNan}) {
    util::SubstreamRng rng(0x6D6Du, util::substream::kGeneric);
    const uint64_t cursor_before = rng.cursor();
    EXPECT_EQ(SampleDiscreteGaussian(param, &rng), 0) << "param=" << param;
    EXPECT_EQ(SampleDiscreteLaplace(param, &rng), 0) << "param=" << param;
    EXPECT_EQ(rng.cursor(), cursor_before) << "param=" << param;
  }
  // Bernoulli(exp(-gamma)) with gamma <= 0 is certainly-true, no words.
  util::SubstreamRng rng(0x6D6Eu, util::substream::kGeneric);
  const uint64_t cursor_before = rng.cursor();
  EXPECT_TRUE(SampleBernoulliExpNeg(0.0, &rng));
  EXPECT_TRUE(SampleBernoulliExpNeg(-2.0, &rng));
  EXPECT_EQ(rng.cursor(), cursor_before);
}

}  // namespace
}  // namespace dp
}  // namespace longdp
