// Statistical acceptance tests for the DP noise primitives themselves.
// core_statistical_test checks END-TO-END error (synthesizer output vs
// truth), which would absorb a mildly wrong noise distribution into its
// generous tolerances; these tests pin the discrete Gaussian sampler's
// moments and both tails directly, at the sigma ranges the experiments
// actually run, so a sampling-chain regression (a flipped rejection, a
// scale mix-up) fails here first.
//
// Fixed seeds, generous bounds (5+ standard errors): deterministic for CI,
// sensitive to real defects.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "dp/discrete_gaussian.h"
#include "dp/noise_sampler.h"
#include "util/mathutil.h"
#include "util/substream.h"

namespace longdp {
namespace dp {
namespace {

// Exact tail mass Pr[X >= lambda] for X ~ N_Z(0, sigma2) by PMF summation
// (the PMF decays like exp(-x^2 / (2 sigma2)); truncate far out).
double ExactUpperTail(int64_t lambda, double sigma2) {
  const int64_t cutoff =
      lambda + static_cast<int64_t>(20.0 * std::sqrt(sigma2)) + 20;
  double mass = 0.0;
  for (int64_t x = lambda; x <= cutoff; ++x) {
    mass += DiscreteGaussianPmf(x, sigma2);
  }
  return mass;
}

TEST(DpStatisticalTest, DiscreteGaussianMeanAndVarianceWithinTolerance) {
  // sigma^2 spans the experiment regimes: rho = 0.5 small-T tests up to
  // the rho = 0.001 SIPP sweeps (sigma^2 ~ thousands).
  for (double sigma2 : {1.0, 25.0, 900.0, 6000.0}) {
    const int kDraws = 400000;
    util::SubstreamRng rng(0xD6A11 + static_cast<uint64_t>(sigma2), util::substream::kGeneric);
    util::MomentAccumulator acc;
    for (int i = 0; i < kDraws; ++i) {
      acc.Add(static_cast<double>(SampleDiscreteGaussian(sigma2, &rng)));
    }
    // Mean-zero within 5 standard errors of the sample mean.
    const double se = std::sqrt(sigma2 / kDraws);
    EXPECT_NEAR(acc.mean(), 0.0, 5.0 * se) << "sigma2=" << sigma2;
    // The discrete Gaussian's variance is close to (and below) sigma^2 for
    // sigma^2 >= 1; the sampling error of a variance estimate is about
    // sigma^2 * sqrt(2/n). Allow 5 of those plus 2% model slack.
    const double var_tol =
        5.0 * sigma2 * std::sqrt(2.0 / kDraws) + 0.02 * sigma2;
    EXPECT_NEAR(acc.variance(), sigma2, var_tol) << "sigma2=" << sigma2;
  }
}

TEST(DpStatisticalTest, DiscreteGaussianTwoSidedTailMass) {
  // Both tails must carry the exact PMF mass — a one-sided bias (sign
  // handling) or clipped tail (early rejection exit) shows up here and
  // nowhere in the end-to-end suites.
  const double sigma2 = 25.0;
  const int64_t lambda = 10;  // 2 sigma
  const int kDraws = 500000;
  util::SubstreamRng rng(0x7A11, util::substream::kGeneric);
  int64_t upper = 0, lower = 0;
  for (int i = 0; i < kDraws; ++i) {
    const int64_t x = SampleDiscreteGaussian(sigma2, &rng);
    if (x >= lambda) ++upper;
    if (x <= -lambda) ++lower;
  }
  const double expect = ExactUpperTail(lambda, sigma2);  // symmetric law
  const double se = std::sqrt(expect * (1.0 - expect) / kDraws);
  const double p_upper = static_cast<double>(upper) / kDraws;
  const double p_lower = static_cast<double>(lower) / kDraws;
  EXPECT_NEAR(p_upper, expect, 5.0 * se);
  EXPECT_NEAR(p_lower, expect, 5.0 * se);
  // And the subgaussian bound of Prop. 25 must hold empirically with slack.
  const double bound =
      DiscreteGaussianTailBound(static_cast<double>(lambda), sigma2);
  EXPECT_LT(p_upper, bound + 5.0 * se);
  EXPECT_LT(p_lower, bound + 5.0 * se);
}

TEST(DpStatisticalTest, DiscreteLaplaceMeanAndVarianceWithinTolerance) {
  // The Laplace stage feeds the Gaussian rejection sampler; pin its
  // moments too. Var[Lap_Z(s)] = 2 e^{1/s} / (e^{1/s} - 1)^2.
  for (double s : {1.0, 10.0}) {
    const int kDraws = 400000;
    util::SubstreamRng rng(0x1AB + static_cast<uint64_t>(s), util::substream::kGeneric);
    util::MomentAccumulator acc;
    for (int i = 0; i < kDraws; ++i) {
      acc.Add(static_cast<double>(SampleDiscreteLaplace(s, &rng)));
    }
    const double e = std::exp(1.0 / s);
    const double var = 2.0 * e / ((e - 1.0) * (e - 1.0));
    const double se = std::sqrt(var / kDraws);
    EXPECT_NEAR(acc.mean(), 0.0, 5.0 * se) << "s=" << s;
    EXPECT_NEAR(acc.variance(), var,
                5.0 * var * std::sqrt(2.0 / kDraws) + 0.02 * var)
        << "s=" << s;
  }
}

// ---------------------------------------------------------------------------
// Batched sampler gates: dp::NoiseSampler's bulk path must produce the same
// law as the one-shot chain it replaces. The stream-equality tests
// (dp_noise_sampler_test) prove word-for-word identity draw by draw; these
// gates independently pin the DISTRIBUTION of the bulk FillLeaves output at
// the experiment sigmas, so a batching bug that slipped past the equality
// pinning (e.g. a leaf-indexing mixup that still yields valid draws) fails
// a statistical test too.
// ---------------------------------------------------------------------------

TEST(DpStatisticalTest, BatchedGaussianMomentsAtExperimentSigmas) {
  for (double sigma2 : {1.0, 25.0, 900.0, 6000.0}) {
    const int kDraws = 400000;
    const NoiseSampler sampler = NoiseSampler::Gaussian(sigma2);
    const util::SubstreamRng parent(
        0xBA7C4 + static_cast<uint64_t>(sigma2),
        util::substream::kHistogramNoise);
    std::vector<int64_t> draws(kDraws);
    sampler.FillLeaves(parent, draws.size(), draws.data());
    util::MomentAccumulator acc;
    for (int64_t x : draws) acc.Add(static_cast<double>(x));
    const double se = std::sqrt(sigma2 / kDraws);
    EXPECT_NEAR(acc.mean(), 0.0, 5.0 * se) << "sigma2=" << sigma2;
    const double var_tol =
        5.0 * sigma2 * std::sqrt(2.0 / kDraws) + 0.02 * sigma2;
    EXPECT_NEAR(acc.variance(), sigma2, var_tol) << "sigma2=" << sigma2;
  }
}

TEST(DpStatisticalTest, BatchedGaussianChiSquareGoodnessOfFit) {
  const double sigma2 = 4.0;
  const int kDraws = 200000;
  const NoiseSampler sampler = NoiseSampler::Gaussian(sigma2);
  const util::SubstreamRng parent(0xC4150, util::substream::kHistogramNoise);
  std::vector<int64_t> draws(kDraws);
  sampler.FillLeaves(parent, draws.size(), draws.data());
  std::map<int64_t, int> hist;
  for (int64_t x : draws) ++hist[x];
  double chi2 = 0.0;
  for (int64_t x = -5; x <= 5; ++x) {
    const double expected = DiscreteGaussianPmf(x, sigma2) * kDraws;
    ASSERT_GT(expected, 50.0);
    const double observed = static_cast<double>(hist[x]);
    chi2 += (observed - expected) * (observed - expected) / expected;
  }
  // 11 cells -> 10 dof; 99.9th percentile ~ 29.6. Use 40 for slack.
  EXPECT_LT(chi2, 40.0);
}

TEST(DpStatisticalTest, BatchedGaussianTwoSidedTailMass) {
  const double sigma2 = 25.0;
  const int64_t lambda = 10;  // 2 sigma
  const int kDraws = 500000;
  const NoiseSampler sampler = NoiseSampler::Gaussian(sigma2);
  const util::SubstreamRng parent(0x7A12, util::substream::kHistogramNoise);
  std::vector<int64_t> draws(kDraws);
  sampler.FillLeaves(parent, draws.size(), draws.data());
  int64_t upper = 0, lower = 0;
  for (int64_t x : draws) {
    if (x >= lambda) ++upper;
    if (x <= -lambda) ++lower;
  }
  const double expect = ExactUpperTail(lambda, sigma2);
  const double se = std::sqrt(expect * (1.0 - expect) / kDraws);
  EXPECT_NEAR(static_cast<double>(upper) / kDraws, expect, 5.0 * se);
  EXPECT_NEAR(static_cast<double>(lower) / kDraws, expect, 5.0 * se);
}

TEST(DpStatisticalTest, BatchedLaplaceMomentsAndTailRatio) {
  for (double s : {1.0, 10.0}) {
    const int kDraws = 400000;
    const NoiseSampler sampler = NoiseSampler::Laplace(s);
    const util::SubstreamRng parent(0x1AC + static_cast<uint64_t>(s),
                                    util::substream::kCounterNoise);
    std::vector<int64_t> draws(kDraws);
    sampler.FillLeaves(parent, draws.size(), draws.data());
    util::MomentAccumulator acc;
    std::map<int64_t, int> hist;
    for (int64_t x : draws) {
      acc.Add(static_cast<double>(x));
      ++hist[x];
    }
    const double e = std::exp(1.0 / s);
    const double var = 2.0 * e / ((e - 1.0) * (e - 1.0));
    EXPECT_NEAR(acc.mean(), 0.0, 5.0 * std::sqrt(var / kDraws)) << "s=" << s;
    EXPECT_NEAR(acc.variance(), var,
                5.0 * var * std::sqrt(2.0 / kDraws) + 0.02 * var)
        << "s=" << s;
    // Pr[X = x+1] / Pr[X = x] = exp(-1/s) on the non-negative side.
    const double expected_ratio = std::exp(-1.0 / s);
    ASSERT_GT(hist[0], 1000) << "s=" << s;
    const double ratio = static_cast<double>(hist[1]) / hist[0];
    EXPECT_NEAR(ratio, expected_ratio, 0.05) << "s=" << s;
  }
}

}  // namespace
}  // namespace dp
}  // namespace longdp
