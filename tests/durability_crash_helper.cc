// Standalone crash-test worker for durability_crash_replay_test. Runs one
// durable synthesizer session in THIS process and, in "kill" mode, raises
// SIGKILL the instant the target round's WAL fsync has returned — an
// honest crash, with no destructors, stream flushes, or atexit handlers
// softening it. The parent test then re-launches the helper in "run" mode
// and demands the recovered WAL be byte-identical to an uninterrupted
// run's.
//
// Usage:
//   durability_crash_helper <kind> <dir> <last_round> <kill|run>
//                           <threads> <shards>
//
//   kind        cumulative | fixed-window | categorical
//   last_round  observe rounds up to this one (resuming from whatever the
//               session recovers to); "kill" raises SIGKILL right after it
//   threads     0 runs serially; otherwise a ThreadPool(threads, shards)
//
// Input data is regenerated from keyed substreams (fixed seeds below), so
// every invocation — first run, post-crash replay, different grid — feeds
// bit-identical rounds without any shared state between processes.
//
// Exit codes: 0 ok; 64 usage; 65 session open failed; 66 a round failed.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/generators.h"
#include "persist/bindings.h"
#include "persist/session.h"
#include "util/thread_pool.h"

namespace {

using longdp::Status;

constexpr int64_t kHorizon = 12;
constexpr int64_t kUsers = 400;
constexpr uint64_t kDataSeed = 20260808;
constexpr uint64_t kRunSeed = 424243;

// Round t's bits, regenerated deterministically by the keyed generator.
std::vector<uint8_t> RoundBits(int64_t t) {
  static const longdp::data::LongitudinalDataset ds =
      longdp::data::BernoulliIid(kUsers, kHorizon, 0.3, kDataSeed, nullptr)
          .value();
  std::vector<uint8_t> bits(static_cast<size_t>(kUsers));
  for (int64_t i = 0; i < kUsers; ++i) {
    bits[static_cast<size_t>(i)] = static_cast<uint8_t>(ds.Bit(i, t));
  }
  return bits;
}

// Categorical symbols over a 3-letter alphabet from two keyed bit streams.
std::vector<uint8_t> RoundSymbols(int64_t t) {
  static const longdp::data::LongitudinalDataset lo =
      longdp::data::BernoulliIid(kUsers, kHorizon, 0.5, kDataSeed + 1,
                                 nullptr)
          .value();
  static const longdp::data::LongitudinalDataset hi =
      longdp::data::BernoulliIid(kUsers, kHorizon, 0.5, kDataSeed + 2,
                                 nullptr)
          .value();
  std::vector<uint8_t> symbols(static_cast<size_t>(kUsers));
  for (int64_t i = 0; i < kUsers; ++i) {
    const int code = lo.Bit(i, t) + 2 * hi.Bit(i, t);
    symbols[static_cast<size_t>(i)] = static_cast<uint8_t>(code % 3);
  }
  return symbols;
}

template <typename Run, typename Opts, typename DataFn>
int Drive(const std::string& dir, int64_t last, bool kill, Opts opts,
          const DataFn& data) {
  longdp::persist::DurableSession::Options dopts;
  dopts.dir = dir;
  dopts.snapshot_every = 4;
  auto run = Run::Open(dopts, opts);
  if (!run.ok()) {
    std::fprintf(stderr, "open: %s\n", run.status().ToString().c_str());
    return 65;
  }
  for (int64_t t = (*run)->synth().t() + 1; t <= last; ++t) {
    Status round = (*run)->ObserveRound(data(t));
    if (!round.ok()) {
      std::fprintf(stderr, "round %lld: %s\n",
                   static_cast<long long>(t), round.ToString().c_str());
      return 66;
    }
    if (kill && t == last) {
      std::raise(SIGKILL);  // no return: the process dies mid-run
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 7) {
    std::fprintf(stderr,
                 "usage: %s <kind> <dir> <last_round> <kill|run> "
                 "<threads> <shards>\n",
                 argv[0]);
    return 64;
  }
  const std::string kind = argv[1];
  const std::string dir = argv[2];
  const int64_t last = std::strtoll(argv[3], nullptr, 10);
  const bool kill = std::strcmp(argv[4], "kill") == 0;
  const int threads = static_cast<int>(std::strtol(argv[5], nullptr, 10));
  const int shards = static_cast<int>(std::strtol(argv[6], nullptr, 10));

  std::unique_ptr<longdp::util::ThreadPool> pool;
  if (threads > 0) {
    pool = std::make_unique<longdp::util::ThreadPool>(threads, shards);
  }

  if (kind == "cumulative") {
    longdp::core::CumulativeSynthesizer::Options opts;
    opts.horizon = kHorizon;
    opts.rho = 0.25;
    opts.seed = kRunSeed;
    opts.pool = pool.get();
    return Drive<longdp::persist::DurableCumulative>(
        dir, last, kill, opts, [](int64_t t) { return RoundBits(t); });
  }
  if (kind == "fixed-window") {
    longdp::core::FixedWindowSynthesizer::Options opts;
    opts.horizon = kHorizon;
    opts.window_k = 3;
    opts.rho = 0.25;
    opts.seed = kRunSeed;
    opts.pool = pool.get();
    return Drive<longdp::persist::DurableFixedWindow>(
        dir, last, kill, opts, [](int64_t t) { return RoundBits(t); });
  }
  if (kind == "categorical") {
    longdp::core::CategoricalWindowSynthesizer::Options opts;
    opts.horizon = kHorizon;
    opts.window_k = 2;
    opts.alphabet = 3;
    opts.rho = 0.25;
    opts.seed = kRunSeed;
    opts.pool = pool.get();
    return Drive<longdp::persist::DurableCategorical>(
        dir, last, kill, opts, [](int64_t t) { return RoundSymbols(t); });
  }
  std::fprintf(stderr, "unknown kind '%s'\n", kind.c_str());
  return 64;
}
