// Real-crash acceptance suite: fork/exec the durability_crash_helper
// binary, let it SIGKILL itself mid-run (right after a round's WAL fsync),
// then relaunch it to recover and finish — and require the surviving WAL
// to be byte-identical to an uninterrupted run's. This is the ISSUE's
// acceptance bar, exercised with an actual dead process rather than an
// in-process simulation: no destructor, cache flush, or library goodwill
// can paper over a missing fsync here.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <vector>

#include "persist/session.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

#ifndef LONGDP_CRASH_HELPER
#error "LONGDP_CRASH_HELPER must point at the helper binary"
#endif

namespace longdp {
namespace persist {
namespace {

constexpr int64_t kHorizon = 12;  // must match the helper's kHorizon

struct HelperResult {
  bool signaled = false;
  int signal = 0;
  int exit_code = -1;
};

// Runs the helper to completion or death; never throws the test off by
// more than one waitpid.
HelperResult RunHelper(const std::string& kind, const std::string& dir,
                       int64_t last_round, bool kill, int threads,
                       int shards) {
  HelperResult result;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork failed";
    return result;
  }
  if (pid == 0) {
    const std::string last = std::to_string(last_round);
    const std::string threads_s = std::to_string(threads);
    const std::string shards_s = std::to_string(shards);
    ::execl(LONGDP_CRASH_HELPER, LONGDP_CRASH_HELPER, kind.c_str(),
            dir.c_str(), last.c_str(), kill ? "kill" : "run",
            threads_s.c_str(), shards_s.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);  // execl only returns on failure
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    ADD_FAILURE() << "waitpid failed";
    return result;
  }
  if (WIFSIGNALED(status)) {
    result.signaled = true;
    result.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  }
  return result;
}

class CrashReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/longdp_crash_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    root_ = tmpl;
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + root_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      ADD_FAILURE() << "cleanup of " << root_ << " failed";
    }
  }

  std::string Dir(const std::string& name) const {
    return root_ + "/" + name;
  }

  // The WAL must read back STRICTLY clean after recovery completed the
  // run — recovery repaired any torn tail on the way.
  static std::vector<std::string> WalRecords(const std::string& dir) {
    auto read =
        ReadWal(DurableSession::WalPath(dir), WalReadMode::kStrict);
    EXPECT_TRUE(read.ok()) << read.status().ToString();
    return read.ok() ? read->records : std::vector<std::string>{};
  }

  // Uninterrupted reference run for `kind`, serial grid.
  std::vector<std::string> Reference(const std::string& kind) {
    const std::string dir = Dir(kind + "-reference");
    HelperResult ref = RunHelper(kind, dir, kHorizon, /*kill=*/false,
                                 /*threads=*/0, /*shards=*/0);
    EXPECT_EQ(ref.exit_code, 0);
    return WalRecords(dir);
  }

  std::string root_;
};

TEST_F(CrashReplayTest, KillAtEveryRoundThenRecoverMatchesUninterrupted) {
  for (const char* kind : {"cumulative", "fixed-window", "categorical"}) {
    const std::vector<std::string> want = Reference(kind);
    ASSERT_EQ(want.size(), static_cast<size_t>(kHorizon)) << kind;
    for (int64_t kill_at = 1; kill_at <= kHorizon; ++kill_at) {
      const std::string dir =
          Dir(std::string(kind) + "-kill" + std::to_string(kill_at));
      HelperResult crashed = RunHelper(kind, dir, kill_at, /*kill=*/true,
                                       /*threads=*/0, /*shards=*/0);
      ASSERT_TRUE(crashed.signaled)
          << kind << " kill_at=" << kill_at
          << " exit=" << crashed.exit_code;
      ASSERT_EQ(crashed.signal, SIGKILL);

      HelperResult recovered =
          RunHelper(kind, dir, kHorizon, /*kill=*/false, /*threads=*/0,
                    /*shards=*/0);
      ASSERT_EQ(recovered.exit_code, 0)
          << kind << " kill_at=" << kill_at;
      EXPECT_EQ(WalRecords(dir), want)
          << kind << " kill_at=" << kill_at;
    }
  }
}

TEST_F(CrashReplayTest, DoubleCrashStillConverges) {
  // Crash at round 3, recover and crash again at round 9, then finish.
  const std::vector<std::string> want = Reference("cumulative");
  const std::string dir = Dir("double");
  HelperResult first =
      RunHelper("cumulative", dir, 3, true, 0, 0);
  ASSERT_TRUE(first.signaled);
  HelperResult second =
      RunHelper("cumulative", dir, 9, true, 0, 0);
  ASSERT_TRUE(second.signaled);
  HelperResult done =
      RunHelper("cumulative", dir, kHorizon, false, 0, 0);
  ASSERT_EQ(done.exit_code, 0);
  EXPECT_EQ(WalRecords(dir), want);
}

TEST_F(CrashReplayTest, RecoveryOntoDifferentGridIsByteIdentical) {
  // The killed run used 16 shards x 2 threads; recovery finishes the run
  // on 4 shards x 8 threads. Keyed substreams make the replayed and new
  // releases byte-identical anyway — the acceptance clause of the ISSUE.
  for (const char* kind : {"cumulative", "fixed-window", "categorical"}) {
    const std::vector<std::string> want = Reference(kind);
    const std::string dir = Dir(std::string(kind) + "-grid");
    HelperResult crashed = RunHelper(kind, dir, 7, /*kill=*/true,
                                     /*threads=*/2, /*shards=*/16);
    ASSERT_TRUE(crashed.signaled) << kind;
    HelperResult recovered = RunHelper(kind, dir, kHorizon, /*kill=*/false,
                                       /*threads=*/8, /*shards=*/4);
    ASSERT_EQ(recovered.exit_code, 0) << kind;
    EXPECT_EQ(WalRecords(dir), want) << kind;
  }
}

TEST_F(CrashReplayTest, RecoveredProcessKeepsSnapshotFresh) {
  // After a crash + recovery the snapshot file reads back clean and its
  // round never exceeds the WAL length (the ordering invariant held
  // across a real process death).
  const std::string dir = Dir("invariant");
  ASSERT_TRUE(RunHelper("cumulative", dir, 6, true, 0, 0).signaled);
  HelperResult done = RunHelper("cumulative", dir, kHorizon, false, 0, 0);
  ASSERT_EQ(done.exit_code, 0);
  auto snapshot = ReadSnapshot(DurableSession::SnapshotPath(dir));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_LE(snapshot->meta.round,
            static_cast<int64_t>(WalRecords(dir).size()));
}

}  // namespace
}  // namespace persist
}  // namespace longdp
