#include "harness/report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "harness/aggregate.h"

namespace longdp {
namespace harness {
namespace {

BenchReport MakeSampleReport() {
  BenchReport report("fig_test");
  report.set_description("test figure");
  report.SetParam("n", static_cast<int64_t>(23374));
  report.SetParam("rho", 0.005);
  report.SetParam("mode", "biased");
  report.RecordPhaseSeconds("repetitions", 1.25);
  auto& series = report.AddSeries("biased");
  auto s = Summarize({1.0, 2.0, 3.0, 4.0});
  series.AddRow()
      .Label("query", ">=1 month")
      .Label("quarter", "1")
      .Value("truth", 0.13698981774621374)
      .Summary(s);
  series.AddRow()
      .Label("query", "all 3 months")
      .Label("quarter", "4")
      .Value("truth", 1.0 / 3.0)
      .Summary(s);
  return report;
}

TEST(BenchReportTest, JsonRoundTrip) {
  BenchReport report = MakeSampleReport();
  auto loaded_result = BenchReport::FromJsonString(report.ToJsonString());
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status().ToString();
  const BenchReport& loaded = loaded_result.value();

  EXPECT_EQ(loaded.bench_name(), "fig_test");
  EXPECT_EQ(loaded.description(), "test figure");
  ASSERT_EQ(loaded.params().size(), 3u);
  EXPECT_EQ(loaded.params()[0].key, "n");
  EXPECT_EQ(loaded.params()[0].text, "23374");
  EXPECT_EQ(loaded.params()[1].text, "0.005");
  EXPECT_EQ(loaded.params()[2].text, "biased");
  EXPECT_TRUE(loaded.params()[2].quoted);
  ASSERT_EQ(loaded.phases().size(), 1u);
  EXPECT_EQ(loaded.phases()[0].name, "repetitions");
  EXPECT_DOUBLE_EQ(loaded.phases()[0].seconds, 1.25);

  const BenchReport::Series* series = loaded.FindSeries("biased");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->rows.size(), 2u);
  const auto& row = series->rows[0];
  ASSERT_EQ(row.labels.size(), 2u);
  EXPECT_EQ(row.labels[0].first, "query");
  EXPECT_EQ(row.labels[0].second, ">=1 month");
  // Values survive with exact round-trip double precision.
  BenchReport original = MakeSampleReport();
  const BenchReport::Series* orig = original.FindSeries("biased");
  ASSERT_NE(orig, nullptr);
  ASSERT_EQ(row.values.size(), orig->rows[0].values.size());
  for (size_t i = 0; i < row.values.size(); ++i) {
    EXPECT_EQ(row.values[i].first, orig->rows[0].values[i].first);
    EXPECT_EQ(row.values[i].second, orig->rows[0].values[i].second);
  }
  EXPECT_EQ(series->rows[1].values[0].second, 1.0 / 3.0);  // exact
}

TEST(BenchReportTest, SecondRoundTripIsByteStable) {
  BenchReport report = MakeSampleReport();
  std::string once = report.ToJsonString();
  auto loaded = BenchReport::FromJsonString(once);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().ToJsonString(), once);
}

TEST(BenchReportTest, EmptySeriesAndEmptyReport) {
  BenchReport report("empty_bench");
  report.AddSeries("nothing");
  auto loaded = BenchReport::FromJsonString(report.ToJsonString());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().bench_name(), "empty_bench");
  const BenchReport::Series* series = loaded.value().FindSeries("nothing");
  ASSERT_NE(series, nullptr);
  EXPECT_TRUE(series->rows.empty());
  EXPECT_TRUE(loaded.value().params().empty());
  EXPECT_TRUE(loaded.value().phases().empty());
}

TEST(BenchReportTest, NanAndInfRoundTrip) {
  BenchReport report("edge_bench");
  report.AddSeries("edges")
      .AddRow()
      .Label("case", "nonfinite")
      .Value("nan", std::nan(""))
      .Value("pinf", HUGE_VAL)
      .Value("ninf", -HUGE_VAL)
      .Value("tiny", 5e-324);
  auto loaded = BenchReport::FromJsonString(report.ToJsonString());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& values = loaded.value().FindSeries("edges")->rows[0].values;
  ASSERT_EQ(values.size(), 4u);
  EXPECT_TRUE(std::isnan(values[0].second));
  EXPECT_EQ(values[1].second, HUGE_VAL);
  EXPECT_EQ(values[2].second, -HUGE_VAL);
  EXPECT_EQ(values[3].second, 5e-324);
}

TEST(BenchReportTest, AddSeriesIsIdempotent) {
  BenchReport report("bench");
  auto& a = report.AddSeries("s");
  a.AddRow().Label("i", "0");
  auto& b = report.AddSeries("s");
  b.AddRow().Label("i", "1");
  ASSERT_EQ(report.series().size(), 1u);
  EXPECT_EQ(report.series()[0].rows.size(), 2u);
}

TEST(BenchReportTest, SetParamOverwrites) {
  BenchReport report("bench");
  report.SetParam("reps", static_cast<int64_t>(10));
  report.SetParam("reps", static_cast<int64_t>(20));
  ASSERT_EQ(report.params().size(), 1u);
  EXPECT_EQ(report.params()[0].text, "20");
}

TEST(BenchReportTest, WriteAndLoadFile) {
  BenchReport report = MakeSampleReport();
  std::string path = ::testing::TempDir() + "/longdp_report.json";
  ASSERT_TRUE(report.WriteJson(path).ok());
  auto loaded = BenchReport::FromJsonFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().ToJsonString(), report.ToJsonString());
  std::remove(path.c_str());
}

TEST(BenchReportTest, WriteJsonToUnwritablePathFails) {
  BenchReport report("bench");
  EXPECT_TRUE(
      report.WriteJson("/nonexistent-dir/report.json").IsIOError());
}

TEST(BenchReportTest, LoadRejectsForeignJson) {
  EXPECT_FALSE(BenchReport::FromJsonString("[1, 2, 3]").ok());
  EXPECT_FALSE(BenchReport::FromJsonString("{\"bench\": \"x\"}").ok());
  EXPECT_FALSE(BenchReport::FromJsonString(
                   "{\"schema\": \"something-else\", \"bench\": \"x\","
                   " \"series\": []}")
                   .ok());
  EXPECT_FALSE(BenchReport::FromJsonString("not json at all").ok());
  // Missing series array.
  EXPECT_FALSE(BenchReport::FromJsonString(
                   "{\"schema\": \"longdp-bench-report\", \"bench\": \"x\"}")
                   .ok());
}

TEST(BenchReportTest, FromJsonFileMissingFileIsIOError) {
  auto result = BenchReport::FromJsonFile("/nonexistent-dir/missing.json");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(BenchReportTest, PhaseTimerRecordsElapsed) {
  BenchReport report("bench");
  {
    BenchReport::PhaseTimer timer(&report, "phase1");
  }
  {
    BenchReport::PhaseTimer timer(&report, "phase2");
    timer.Stop();
    timer.Stop();  // idempotent
  }
  ASSERT_EQ(report.phases().size(), 2u);
  EXPECT_EQ(report.phases()[0].name, "phase1");
  EXPECT_GE(report.phases()[0].seconds, 0.0);
  EXPECT_EQ(report.phases()[1].name, "phase2");
}

}  // namespace
}  // namespace harness
}  // namespace longdp
